// Plan::verify(): the static validator over a compiled plan.
//
// The execution layer (exec_context.cpp) is deliberately check-free in its
// hot loop — it trusts the Plan. This pass is where that trust is earned:
// it re-derives, from nothing but the finished Plan, every invariant the
// runtime assumes, and throws a typed PlanVerifyError naming the first
// violation. It runs at the end of Plan::compile in debug builds and from
// the test suite in all builds (including against hand-corrupted plans, so
// a validator regression is itself caught).
//
// What is checked, and why the runtime needs it:
//   1. Slot dataflow. Steps address activations by arena slot; the
//      validator replays the step list over a slot-state machine (slot 0 =
//      the external input, read-only). Every read must hit a slot that is
//      live with exactly the byte size the step expects (kAdd reads BOTH
//      its operands, including the slot it accumulates into), and every
//      write must land inside the arena. This is the residual, physical
//      form of the compiler's virtual-buffer liveness: any slot-assignment
//      bug that makes two overlapping live ranges share a slot shows up
//      here as a dead read or a size break in the chain.
//   2. Arena geometry. slot_stride_ must cover every activation the steps
//      move at the compiled batch; the im2col/result scratch offsets must
//      tile the workspace exactly; every chunk-batched conv's unfold and
//      GEMM result must fit its per-chunk scratch slice.
//   3. Weight panels. Float steps must carry a weight matrix of exactly
//      the GEMM shape the kernel will read ([Co, Ci*K*K] conv rows,
//      [out, in] linear); shift-GEMM steps the packed [K*K, Co, Ci]
//      repacking and a geometry the strategy supports.
//   4. int8 lowering. A quantized step must carry the full quantized
//      panel, one finite positive scale per output channel, a grid width
//      in [2, 8] — and have released its float weights. Quantized plans
//      must have sized the int8 scratch; float plans must carry none.
//   5. Backend pinning. The plan's backend pointer must be live in the
//      kernel registry under its own name, and the plan's quantized flag
//      must match the backend's datapath.
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/plan.hpp"
#include "kernels/backend.hpp"

namespace alf {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw PlanVerifyError("Plan::verify: " + what);
}

std::string tag(size_t i, const Step& st) {
  return "step " + std::to_string(i) + " [" + op_kind_name(st.kind) + " '" +
         st.name + "']";
}

/// Per-slot replay state: whether the slot currently holds a live
/// activation, and its per-image element count when it does.
struct SlotState {
  bool live = false;
  size_t sz = 0;
};

}  // namespace

void Plan::verify() const {
  // --- Plan-level basics -------------------------------------------------
  if (steps_.empty()) fail("empty step list");
  if (batch_ < 1 || in_c_ < 1 || in_h_ < 1 || in_w_ < 1)
    fail("degenerate batch/input geometry");
  if (classes_ < 1) fail("plan produces no output features");
  if (nchunks_ < 1 || nchunks_ > batch_)
    fail("chunk grid " + std::to_string(nchunks_) + " outside [1, batch=" +
         std::to_string(batch_) + "]");

  // --- Backend pinning ---------------------------------------------------
  if (backend_ == nullptr) fail("no kernel backend pinned");
  if (kernels::find_backend(backend_->name) != backend_)
    fail(std::string("pinned backend '") + backend_->name +
         "' is not live in the kernel registry");
  if (quant_ != backend_->quantized_datapath)
    fail(std::string("quantized flag disagrees with backend '") +
         backend_->name + "' datapath");

  // --- Arena layout arithmetic ------------------------------------------
  if (slots_ < 1) fail("plan has no activation slots");
  if (col_off_ != slots_ * slot_stride_)
    fail("im2col scratch offset does not abut the activation slots");
  if (res_off_ != col_off_ + nchunks_ * col_sz_)
    fail("result scratch offset does not abut the im2col scratch");
  // Effective whole-chunk image count of one step: a tuned chunk override
  // coarsens the grid (fewer, larger chunks), so scratch bounds are
  // checked against each step's own partition — the same arithmetic the
  // compile-time sizing and the runtime (Plan::step_chunks) use.
  const auto step_imgs = [&](const Step& st) {
    const size_t nch = step_chunks(st);
    return (batch_ + nch - 1) / nch;
  };

  // --- Step replay -------------------------------------------------------
  // slot 0 is the external input; arena slots are 1..slots_.
  std::vector<SlotState> slot(slots_ + 1);
  slot[0] = SlotState{true, image_floats()};
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& st = steps_[i];
    if (st.in > slots_)
      fail(tag(i, st) + ": input slot " + std::to_string(st.in) +
           " out of range (slots=" + std::to_string(slots_) + ")");
    if (st.out < 1 || st.out > slots_)
      fail(tag(i, st) + ": output slot " + std::to_string(st.out) +
           " out of range (slot 0 is the read-only input)");
    if (st.in_sz < 1 || st.out_sz < 1)
      fail(tag(i, st) + ": empty activation");

    // Reads: the input slot must be live with the expected size. A stale
    // or size-mismatched read is exactly what an overlapping slot
    // assignment (two live buffers sharing a slot) degenerates into once
    // buffers are physical.
    if (!slot[st.in].live)
      fail(tag(i, st) + ": reads slot " + std::to_string(st.in) +
           " which holds no live activation");
    if (slot[st.in].sz != st.in_sz)
      fail(tag(i, st) + ": reads slot " + std::to_string(st.in) + " as " +
           std::to_string(st.in_sz) + " floats/image but the live value is " +
           std::to_string(slot[st.in].sz));
    if (st.kind == OpKind::kAdd) {
      // out = act(out + in): the destination is an operand too.
      if (!slot[st.out].live)
        fail(tag(i, st) + ": accumulates into dead slot " +
             std::to_string(st.out));
      if (slot[st.out].sz != st.out_sz || st.in_sz != st.out_sz)
        fail(tag(i, st) + ": residual operand shapes disagree");
      if (st.in == st.out)
        fail(tag(i, st) + ": residual add reads and writes the same slot");
    }

    // Arena coverage: every activation the step moves must fit its slot
    // at the compiled batch (slot 0 is the caller's buffer, not ours).
    if (st.in != 0 && batch_ * st.in_sz > slot_stride_)
      fail(tag(i, st) + ": input activation overflows the slot stride");
    if (batch_ * st.out_sz > slot_stride_)
      fail(tag(i, st) + ": output activation overflows the slot stride");

    // Per-kind geometry and weight-panel shape.
    switch (st.kind) {
      case OpKind::kConv: {
        const ConvGeom& g = st.geom;
        if (g.kernel < 1 || g.stride < 1) fail(tag(i, st) + ": bad geometry");
        if (g.in_h + 2 * g.pad < g.kernel || g.in_w + 2 * g.pad < g.kernel)
          fail(tag(i, st) + ": kernel larger than padded input");
        if (st.in_sz != g.in_c * g.in_h * g.in_w)
          fail(tag(i, st) + ": in_sz disagrees with conv geometry");
        if (st.out_sz != st.out_c * g.out_h() * g.out_w())
          fail(tag(i, st) + ": out_sz disagrees with conv geometry");
        if (st.quantized) {
          if (st.shift_gemm)
            fail(tag(i, st) + ": quantized conv on the shift-GEMM path");
        } else if (st.shift_gemm) {
          if (g.stride != 1 || g.kernel % 2 == 0 || g.pad != (g.kernel - 1) / 2)
            fail(tag(i, st) + ": shift-GEMM needs stride-1 same-size conv");
          if (g.kernel > 1 &&
              (st.w9.rank() != 3 || st.w9.dim(0) != g.kernel * g.kernel ||
               st.w9.dim(1) != st.out_c || st.w9.dim(2) != g.in_c))
            fail(tag(i, st) + ": shift-GEMM weight pack has the wrong shape");
        } else {
          // Chunk-batched im2col: the whole-chunk unfold and GEMM result
          // must fit the per-chunk scratch slices.
          if (g.col_rows() * g.col_cols() * step_imgs(st) > col_sz_)
            fail(tag(i, st) + ": im2col unfold overflows the col scratch");
          if (st.out_sz * step_imgs(st) > res_sz_)
            fail(tag(i, st) + ": GEMM result overflows the result scratch");
        }
        if (!st.quantized &&
            (st.w.rank() != 2 || st.w.dim(0) != st.out_c ||
             st.w.dim(1) != g.col_rows()))
          fail(tag(i, st) + ": weight matrix is not [Co, Ci*K*K]");
        if (!st.bias.empty() && st.bias.numel() != st.out_c)
          fail(tag(i, st) + ": bias length disagrees with out_c");
        break;
      }
      case OpKind::kLinear: {
        if (st.in_sz != st.in_features || st.out_sz != st.out_features)
          fail(tag(i, st) + ": in/out sizes disagree with features");
        if (!st.quantized &&
            (st.w.rank() != 2 || st.w.dim(0) != st.out_features ||
             st.w.dim(1) != st.in_features))
          fail(tag(i, st) + ": weight matrix is not [out, in]");
        if (!st.bias.empty() && st.bias.numel() != st.out_features)
          fail(tag(i, st) + ": bias length disagrees with out_features");
        break;
      }
      case OpKind::kMaxPool: {
        if (st.window < 1 || st.geom.in_h % st.window != 0 ||
            st.geom.in_w % st.window != 0)
          fail(tag(i, st) + ": window does not tile the input map");
        if (st.in_sz != st.geom.in_c * st.geom.in_h * st.geom.in_w ||
            st.out_sz != st.in_sz / (st.window * st.window))
          fail(tag(i, st) + ": pooled sizes disagree with geometry");
        break;
      }
      case OpKind::kGlobalAvgPool: {
        if (st.in_sz != st.geom.in_c * st.geom.in_h * st.geom.in_w ||
            st.out_sz != st.geom.in_c)
          fail(tag(i, st) + ": pooled sizes disagree with geometry");
        break;
      }
      case OpKind::kScaleShift: {
        if (st.in_sz != st.out_sz)
          fail(tag(i, st) + ": affine step changes activation size");
        if (st.scale.numel() != st.out_c || st.shift.numel() != st.out_c)
          fail(tag(i, st) + ": scale/shift length disagrees with channels");
        if (st.out_c == 0 || st.in_sz % st.out_c != 0)
          fail(tag(i, st) + ": channel count does not divide the activation");
        break;
      }
      case OpKind::kAdd:
      case OpKind::kActivation: {
        if (st.in_sz != st.out_sz)
          fail(tag(i, st) + ": elementwise step changes activation size");
        break;
      }
    }

    // int8 lowering completeness. Only conv/linear steps may be lowered;
    // a lowered step must carry the full panel + scales and have dropped
    // its float weights; an unlowered conv/linear on a quantized plan (or
    // vice versa) means compile and runtime disagree on the datapath.
    const bool lowerable =
        st.kind == OpKind::kConv || st.kind == OpKind::kLinear;
    if (st.quantized && !lowerable)
      fail(tag(i, st) + ": non-GEMM step marked quantized");
    if (lowerable && st.quantized != quant_)
      fail(tag(i, st) + (quant_ ? ": float step in a quantized plan"
                                : ": quantized step in a float plan"));
    if (st.quantized) {
      if (st.qbits < 2 || st.qbits > 8)
        fail(tag(i, st) + ": quantization grid outside [2, 8] bits");
      const size_t rows =
          st.kind == OpKind::kConv ? st.out_c : st.out_features;
      const size_t cols =
          st.kind == OpKind::kConv ? st.geom.col_rows() : st.in_features;
      if (st.qw.size() != rows * cols)
        fail(tag(i, st) + ": quantized panel has " +
             std::to_string(st.qw.size()) + " weights, geometry needs " +
             std::to_string(rows * cols));
      if (st.qw_scales.size() != rows)
        fail(tag(i, st) + ": expected one weight scale per output channel");
      for (const float s : st.qw_scales)
        if (!(s > 0.0f) || !std::isfinite(s))
          fail(tag(i, st) + ": non-finite or non-positive weight scale");
      if (!st.w.empty())
        fail(tag(i, st) + ": float weights not released after int8 lowering");
    }

    // Per-step algorithm choice. Conv/linear steps dispatch their GEMMs
    // through st.be, so it must be a live registry entry on the plan's
    // datapath; a tuned tile needs a backend that can actually consume it;
    // chunk overrides only make sense on chunk-batched convs.
    if (lowerable) {
      if (st.be == nullptr) fail(tag(i, st) + ": no step backend pinned");
      if (kernels::find_backend(st.be->name) != st.be)
        fail(tag(i, st) + ": step backend '" + st.be->name +
             "' is not live in the kernel registry");
      if (st.be->quantized_datapath != quant_)
        fail(tag(i, st) + ": step backend '" + st.be->name +
             "' is on the wrong datapath for this plan");
    }
    if (!st.tile.is_default() &&
        (st.be == nullptr || st.be->gemm_tiled == nullptr))
      fail(tag(i, st) + ": tuned tile on a backend without a tiled GEMM");
    if (st.chunk != 0) {
      if (st.kind != OpKind::kConv || st.shift_gemm)
        fail(tag(i, st) + ": chunk override on a non-chunk-batched step");
      if (st.chunk > batch_)
        fail(tag(i, st) + ": chunk override exceeds the batch");
    }

    // Write: the output slot now holds this step's activation.
    slot[st.out] = SlotState{true, st.out_sz};
  }

  // --- Final output ------------------------------------------------------
  if (steps_.back().out_sz != classes_)
    fail("final step produces " + std::to_string(steps_.back().out_sz) +
         " features, plan advertises " + std::to_string(classes_) +
         " classes");

  // --- int8 scratch sizing ----------------------------------------------
  if (quant_) {
    if (qws_sz_ < nchunks_ * col_sz_)
      fail("int8 activation scratch smaller than the quantized unfold");
    for (const Step& st : steps_) {
      if (st.kind == OpKind::kLinear && qws_sz_ < batch_ * st.in_features)
        fail("int8 activation scratch smaller than a linear input panel");
      if (st.kind == OpKind::kConv && !st.shift_gemm &&
          qbs_sz_ < st.geom.col_cols() * step_imgs(st))
        fail("per-image scale scratch smaller than a conv's GEMM columns");
    }
    if (qbs_sz_ < batch_)
      fail("per-image scale scratch smaller than the batch");
  } else if (qws_sz_ != 0 || qbs_sz_ != 0) {
    fail("float plan carries int8 scratch sizing");
  }

  // --- Weight arena & section table --------------------------------------
  // Steps read weights through non-owning views; the authority on where
  // the bytes live is the section table over the plan's single arena —
  // which is exactly what save/load serializes. Every section must sit
  // inside the arena, aligned and shape-consistent, and every non-empty
  // view must resolve to exactly one section at exactly its bytes. A
  // loaded blob whose table lies about geometry dies here, before any
  // kernel touches the data. (These checks run after the step replay so a
  // corrupted *shape* still reports its specific invariant above.)
  const auto view_bytes = [](const Step& st,
                             WeightField f) -> std::pair<const void*, size_t> {
    switch (f) {
      case WeightField::kW:
        return {st.w.data(), st.w.numel() * sizeof(float)};
      case WeightField::kBias:
        return {st.bias.data(), st.bias.numel() * sizeof(float)};
      case WeightField::kScale:
        return {st.scale.data(), st.scale.numel() * sizeof(float)};
      case WeightField::kShift:
        return {st.shift.data(), st.shift.numel() * sizeof(float)};
      case WeightField::kW9:
        return {st.w9.data(), st.w9.numel() * sizeof(float)};
      case WeightField::kQw:
        return {st.qw.data(), st.qw.size()};
      case WeightField::kQwScales:
        return {st.qw_scales.data(), st.qw_scales.size() * sizeof(float)};
    }
    return {nullptr, 0};
  };
  std::vector<uint8_t> bound(steps_.size() * kWeightFieldCount, 0);
  for (size_t s = 0; s < sections_.size(); ++s) {
    const WeightSection& sec = sections_[s];
    const std::string stag = "weight section " + std::to_string(s);
    if (sec.step >= steps_.size())
      fail(stag + ": step index out of range");
    if (static_cast<size_t>(sec.field) >= kWeightFieldCount)
      fail(stag + ": unknown weight field");
    if (sec.elem_size != 1 && sec.elem_size != sizeof(float))
      fail(stag + ": unsupported element size");
    if (sec.offset % kWeightAlign != 0)
      fail(stag + ": offset not " + std::to_string(kWeightAlign) +
           "-byte aligned");
    if (sec.offset + sec.bytes > arena_.bytes() ||
        sec.offset + sec.bytes < sec.offset)
      fail(stag + ": payload overflows the weight arena");
    if (sec.rank < 1 || sec.rank > TensorView::kMaxRank)
      fail(stag + ": rank outside [1, 3]");
    uint64_t numel = 1;
    for (uint32_t d = 0; d < sec.rank; ++d) numel *= sec.dims[d];
    if (numel * sec.elem_size != sec.bytes)
      fail(stag + ": byte count disagrees with dims");
    uint8_t& slot_bound =
        bound[sec.step * kWeightFieldCount + static_cast<size_t>(sec.field)];
    if (slot_bound != 0)
      fail(stag + ": duplicate section for one step field");
    slot_bound = 1;
    const auto [vptr, vbytes] = view_bytes(steps_[sec.step], sec.field);
    if (vptr != arena_.data() + sec.offset)
      fail(stag + ": step view does not point at its section");
    if (vbytes != sec.bytes)
      fail(stag + ": step view size disagrees with the section");
  }
  for (size_t i = 0; i < steps_.size(); ++i)
    for (size_t f = 0; f < kWeightFieldCount; ++f) {
      const auto [vptr, vbytes] =
          view_bytes(steps_[i], static_cast<WeightField>(f));
      if (vbytes != 0 && bound[i * kWeightFieldCount + f] == 0)
        fail(tag(i, steps_[i]) + ": weight view has no backing section");
      (void)vptr;
    }
}

}  // namespace alf
