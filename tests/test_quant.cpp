#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "alf/trainer.hpp"
#include "core/check.hpp"
#include "models/zoo.hpp"
#include "quant/quantize.hpp"

namespace alf {
namespace {

TEST(Quant, CalibrateScalesToMaxAbs) {
  Tensor t({4}, {0.5f, -1.0f, 0.25f, 0.75f});
  const QuantParams p = calibrate_quant(t, 8);
  EXPECT_EQ(p.bits, 8);
  EXPECT_FLOAT_EQ(p.scale, 1.0f / 127.0f);
  EXPECT_FLOAT_EQ(p.max_value(), 1.0f);
}

TEST(Quant, CalibrateRejectsBadBits) {
  Tensor t({1}, {1.0f});
  EXPECT_THROW(calibrate_quant(t, 1), CheckError);
  EXPECT_THROW(calibrate_quant(t, 17), CheckError);
}

TEST(Quant, ZeroTensorSafe) {
  Tensor t({3});
  const QuantParams p = calibrate_quant(t, 8);
  EXPECT_GT(p.scale, 0.0f);
  Tensor t2 = t;
  EXPECT_DOUBLE_EQ(quantize_dequantize(t2, p), 0.0);
}

TEST(Quant, RoundTripExactOnGrid) {
  QuantParams p;
  p.bits = 8;
  p.scale = 0.1f;
  Tensor t({3}, {0.1f, -0.5f, 1.2f});  // all multiples of scale
  const double err = quantize_dequantize(t, p);
  EXPECT_LT(err, 1e-12);
  EXPECT_FLOAT_EQ(t.at(1), -0.5f);
}

TEST(Quant, ErrorBoundedByHalfStep) {
  Rng rng(5);
  Tensor t({1000});
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantParams p = calibrate_quant(t, 8);
  Tensor q = t;
  quantize_dequantize(q, p);
  for (size_t i = 0; i < t.numel(); ++i)
    EXPECT_LE(std::abs(q.at(i) - t.at(i)), 0.5f * p.scale + 1e-7f);
}

TEST(Quant, ValueCountRespectsBits) {
  Rng rng(6);
  Tensor t({4096});
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantParams p = calibrate_quant(t, 4);
  quantize_dequantize(t, p);
  std::set<float> distinct(t.data(), t.data() + t.numel());
  // 4 bits symmetric: at most 2*7+1 = 15 levels.
  EXPECT_LE(distinct.size(), 15u);
}

TEST(Quant, FewerBitsMoreError) {
  Rng rng(7);
  Tensor t({2048});
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.normal(0.0, 0.3));
  Tensor t8 = t, t4 = t;
  const double e8 = quantize_dequantize(t8, calibrate_quant(t, 8));
  const double e4 = quantize_dequantize(t4, calibrate_quant(t, 4));
  EXPECT_LT(e8, e4);
}

TEST(Quant, PackIntoCallerStorageMatchesOwningPack) {
  // quantize_tensor_into is the arena-resident split the plan packer
  // uses; it must produce byte-identical payloads and the same metadata
  // as the owning quantize_tensor bundle.
  Rng rng(11);
  Tensor t({16, 9});
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-2.0, 2.0));
  for (const int bits : {8, 4, 2}) {
    const PackedInt8 owned = quantize_tensor(t, bits);
    std::vector<int8_t> dst(t.numel());
    const PackedInt8Meta meta = quantize_tensor_into(t, bits, dst.data());
    EXPECT_EQ(meta.params.bits, owned.params.bits);
    EXPECT_FLOAT_EQ(meta.params.scale, owned.params.scale);
    EXPECT_EQ(meta.shape, owned.shape);
    ASSERT_EQ(owned.data.size(), dst.size());
    EXPECT_EQ(std::memcmp(owned.data.data(), dst.data(), dst.size()), 0);
  }
}

TEST(Quant, ModelWeightsQuantizedBnSkipped) {
  Rng rng(8);
  ModelConfig mc;
  mc.base_width = 4;
  auto model = build_plain20(mc, rng, standard_conv_maker(mc.init, &rng));
  const ModelQuantStats stats = quantize_model_weights(*model, 8);
  EXPECT_GT(stats.tensors, 0u);
  EXPECT_GT(stats.mean_sq_error, 0.0);
  // Conv weights landed on the quantization grid.
  auto convs = collect_convs(*model);
  const QuantParams p = calibrate_quant(convs[0]->weight().value, 8);
  Tensor copy = convs[0]->weight().value;
  EXPECT_LT(quantize_dequantize(copy, p), 1e-10);
}

TEST(Quant, OrthogonalToAlf8BitKeepsAccuracy) {
  // The paper's claim: quantization composes with ALF. Train a small ALF
  // model, quantize the deployed weights to 8 bits, and verify accuracy is
  // essentially unchanged (4-bit should hurt more).
  DataConfig task;
  task.classes = 4;
  task.height = task.width = 16;
  task.seed = 77;
  SyntheticImageDataset train(task, 160, 1), test(task, 80, 2);
  Rng rng(9);
  AlfConfig acfg;
  acfg.wae_init = Init::kIdentity;
  acfg.lr_mask_mult = 150.0f;
  acfg.threshold = 0.15f;
  acfg.pr_max = 0.5f;
  acfg.mask_warmup_steps = 16;
  std::vector<AlfConv*> blocks;
  Sequential model("q");
  auto conv = make_alf_conv_maker(acfg, &rng, &blocks);
  model.add(conv("c1", 3, 8, 3, 1, 1));
  model.emplace<BatchNorm2d>("c1_bn", 8);
  model.emplace<Activation>("c1_relu", Act::kRelu);
  model.add(conv("c2", 8, 16, 3, 2, 1));
  model.emplace<BatchNorm2d>("c2_bn", 16);
  model.emplace<Activation>("c2_relu", Act::kRelu);
  model.emplace<GlobalAvgPool>("gap");
  model.emplace<Flatten>("fl");
  model.emplace<Linear>("fc", 16, task.classes, Init::kXavier, rng);

  TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.batch_size = 16;
  tcfg.ae_steps_per_batch = 2;
  Trainer(model, train, test, tcfg).run();
  bn_recalibrate(model, train);
  const double acc_fp = Trainer::evaluate(model, test);

  quantize_model_weights(model, 8);
  bn_recalibrate(model, train);
  const double acc_q8 = Trainer::evaluate(model, test);
  EXPECT_GT(acc_fp, 0.5);             // the model actually learned
  EXPECT_GT(acc_q8, acc_fp - 0.08);   // 8-bit costs almost nothing
}

}  // namespace
}  // namespace alf
