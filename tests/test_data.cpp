#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "data/cifar10.hpp"
#include "data/synthetic.hpp"

namespace alf {
namespace {

TEST(Dataset, SizesAndLabels) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 100, /*split_seed=*/1);
  EXPECT_EQ(ds.size(), 100u);
  std::map<int, int> counts;
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.label(i), 0);
    EXPECT_LT(ds.label(i), static_cast<int>(cfg.classes));
    counts[ds.label(i)]++;
  }
  // Round-robin labelling keeps classes balanced.
  for (const auto& [label, count] : counts) EXPECT_EQ(count, 10);
}

TEST(Dataset, DeterministicForSameSeeds) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset a(cfg, 20, 5), b(cfg, 20, 5);
  Tensor xa, xb;
  std::vector<int> ya, yb;
  a.full_batch(xa, ya);
  b.full_batch(xb, yb);
  EXPECT_EQ(ya, yb);
  for (size_t i = 0; i < xa.numel(); ++i) EXPECT_EQ(xa.at(i), xb.at(i));
}

TEST(Dataset, SplitSeedChangesSamplesNotTask) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset train(cfg, 20, 5), test(cfg, 20, 6);
  Tensor xa, xb;
  std::vector<int> ya, yb;
  train.full_batch(xa, ya);
  test.full_batch(xb, yb);
  EXPECT_EQ(ya, yb);  // same round-robin labels
  bool differs = false;
  for (size_t i = 0; i < xa.numel() && !differs; ++i)
    differs = xa.at(i) != xb.at(i);
  EXPECT_TRUE(differs);
}

TEST(Dataset, PixelsBounded) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 10, 3);
  Tensor x;
  std::vector<int> y;
  ds.full_batch(x, y);
  EXPECT_EQ(x.shape(), (Shape{10, 3, 32, 32}));
  for (size_t i = 0; i < x.numel(); ++i) {
    EXPECT_GE(x.at(i), -2.0f);
    EXPECT_LE(x.at(i), 2.0f);
  }
}

TEST(Dataset, ClassesAreSeparable) {
  // Same-class images correlate more with each other than cross-class —
  // the minimal condition for the task to be learnable.
  DataConfig cfg = DataConfig::cifar_like();
  cfg.noise_std = 0.1f;
  cfg.max_shift = 0;
  SyntheticImageDataset ds(cfg, 40, 7);
  Tensor x;
  std::vector<int> y;
  ds.full_batch(x, y);
  const size_t numel = 3 * 32 * 32;
  auto corr = [&](size_t a, size_t b) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    const float* pa = x.data() + a * numel;
    const float* pb = x.data() + b * numel;
    for (size_t i = 0; i < numel; ++i) {
      dot += static_cast<double>(pa[i]) * pb[i];
      na += static_cast<double>(pa[i]) * pa[i];
      nb += static_cast<double>(pb[i]) * pb[i];
    }
    return dot / std::sqrt(na * nb);
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (size_t a = 0; a < 40; ++a) {
    for (size_t b = a + 1; b < 40; ++b) {
      if (y[a] == y[b]) {
        same += corr(a, b);
        ++same_n;
      } else {
        cross += corr(a, b);
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.1);
}

TEST(BatchIterator, CoversDatasetOncePerEpoch) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 25, 1);
  BatchIterator it(ds, 8, /*seed=*/3);
  Tensor x;
  std::vector<int> y;
  size_t total = 0, batches = 0;
  while (it.next(x, y)) {
    total += y.size();
    ++batches;
  }
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(batches, 4u);  // 8+8+8+1
  EXPECT_EQ(it.batches_per_epoch(), 4u);
}

TEST(BatchIterator, ShuffleChangesOrderAcrossEpochs) {
  DataConfig cfg = DataConfig::cifar_like();
  cfg.classes = 5;
  SyntheticImageDataset ds(cfg, 30, 1);
  BatchIterator it(ds, 30, /*seed=*/3);
  Tensor x;
  std::vector<int> y1, y2;
  it.next(x, y1);
  it.reset();
  it.next(x, y2);
  EXPECT_NE(y1, y2);
}

TEST(BatchIterator, NoShuffleKeepsOrder) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 12, 1);
  BatchIterator it(ds, 12, /*seed=*/3, /*shuffle=*/false);
  Tensor x;
  std::vector<int> y;
  it.next(x, y);
  for (size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], ds.label(i));
}

TEST(DataConfig, ImagenetLikeHasMoreClasses) {
  const DataConfig c = DataConfig::cifar_like();
  const DataConfig i = DataConfig::imagenet_like();
  EXPECT_GT(i.classes, c.classes);
}

// --- CIFAR-10 binary loader -------------------------------------------------

/// Writes a CIFAR-10-format fixture (1 label byte + 3072 pixel bytes per
/// record) the test fully controls, and removes it on destruction.
class CifarFixture {
 public:
  explicit CifarFixture(const std::vector<uint8_t>& labels)
      : path_(std::string(::testing::TempDir()) + "alf_cifar_fixture_" +
              std::to_string(labels.size()) + ".bin") {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    for (size_t r = 0; r < labels.size(); ++r) {
      f.put(static_cast<char>(labels[r]));
      for (size_t i = 0; i < 3072; ++i)
        f.put(static_cast<char>(pixel(r, i)));
    }
  }
  ~CifarFixture() { std::remove(path_.c_str()); }

  /// Deterministic pixel pattern so the loader's output is predictable.
  static uint8_t pixel(size_t record, size_t i) {
    return static_cast<uint8_t>((record * 31 + i * 7) % 256);
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Cifar10, LoadsThreeRecordFixture) {
  const CifarFixture fx({3, 0, 9});
  const Cifar10Batch batch = load_cifar10_file(fx.path());
  ASSERT_EQ(batch.labels.size(), size_t{3});
  EXPECT_FALSE(batch.synthetic);
  EXPECT_EQ(batch.labels[0], 3);
  EXPECT_EQ(batch.labels[1], 0);
  EXPECT_EQ(batch.labels[2], 9);
  ASSERT_EQ(batch.images.shape(), (Shape{3, 3, 32, 32}));
  // Bytes land in NCHW order (the format is already channel-planar) scaled
  // to [-1, 1]: byte b -> b / 127.5 - 1.
  for (const size_t r : {size_t{0}, size_t{2}}) {
    for (const size_t i : {size_t{0}, size_t{1}, size_t{1024}, size_t{3071}}) {
      const float want =
          static_cast<float>(CifarFixture::pixel(r, i)) / 127.5f - 1.0f;
      EXPECT_FLOAT_EQ(batch.images.at(r * 3072 + i), want)
          << "record " << r << " byte " << i;
      EXPECT_GE(batch.images.at(r * 3072 + i), -1.0f);
      EXPECT_LE(batch.images.at(r * 3072 + i), 1.0f);
    }
  }
  // max_records caps the read.
  const Cifar10Batch capped = load_cifar10_file(fx.path(), 2);
  EXPECT_EQ(capped.labels.size(), size_t{2});
}

TEST(Cifar10, MalformedFilesFailLoudly) {
  EXPECT_THROW(load_cifar10_file("/nonexistent/cifar.bin"), CheckError);

  const std::string trunc =
      std::string(::testing::TempDir()) + "alf_cifar_truncated.bin";
  {
    std::ofstream f(trunc, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 100; ++i) f.put('\0');  // not a record multiple
  }
  EXPECT_THROW(load_cifar10_file(trunc), CheckError);
  std::remove(trunc.c_str());

  const CifarFixture bad_label({11});  // labels are 0..9
  EXPECT_THROW(load_cifar10_file(bad_label.path()), CheckError);
}

TEST(Cifar10, EnvGatedWithSyntheticFallback) {
  // Hermetic CI never sets the variable: the fallback must produce a
  // CIFAR-shaped synthetic batch and say so.
  ASSERT_EQ(unsetenv(kCifar10EnvVar), 0);
  EXPECT_FALSE(cifar10_available());
  EXPECT_THROW(load_cifar10_split(/*train=*/false), CheckError);
  const Cifar10Batch batch =
      load_cifar10_or_synthetic(/*train=*/false, /*count=*/20);
  EXPECT_TRUE(batch.synthetic);
  EXPECT_EQ(batch.labels.size(), size_t{20});
  EXPECT_EQ(batch.images.shape(), (Shape{20, 3, 32, 32}));
  for (const int label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }

  // With the variable set, the real loader reads from the directory (the
  // fixture stands in for an extracted download).
  const std::string dir = ::testing::TempDir();
  const CifarFixture fx({1, 2});
  // load_cifar10_split(test) expects <dir>/test_batch.bin.
  const std::string linked = dir + "/test_batch.bin";
  {
    std::ifstream src(fx.path(), std::ios::binary);
    std::ofstream dst(linked, std::ios::binary | std::ios::trunc);
    dst << src.rdbuf();
  }
  ASSERT_EQ(setenv(kCifar10EnvVar, dir.c_str(), 1), 0);
  EXPECT_TRUE(cifar10_available());
  const Cifar10Batch real = load_cifar10_or_synthetic(/*train=*/false, 2);
  EXPECT_FALSE(real.synthetic);
  EXPECT_EQ(real.labels, (std::vector<int>{1, 2}));
  ASSERT_EQ(unsetenv(kCifar10EnvVar), 0);
  std::remove(linked.c_str());
}

}  // namespace
}  // namespace alf
