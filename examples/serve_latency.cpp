// Serving latency: the layer tree vs direct Engine::run vs the real
// BatchServer (src/serve/) that wraps it vs a ModelServer hosting the SAME
// compiled Plan (the multi-tenant registry in its 1-model configuration,
// 2 shared workers).
//
// Compiles ResNet-20 once for the maximum batch, then replays the same
// bursty stream of variable-size requests through all four paths and
// reports nearest-rank latency percentiles (shared percentile() from
// bench_common.hpp) and throughput. The servers run with max_wait_us = 0 —
// a single closed-loop client gains nothing from waiting for batch-mates,
// so the knob is turned all the way toward latency; the `serve` load
// generator exercises the batching and multi-model sides under concurrent
// clients. Note the engine is compiled ONCE: the batch server wraps one
// Engine and the model server shares its immutable Plan — no duplicated
// weights anywhere.
//
// With --plan <file> the served plan is loaded from an alf_planc blob
// (engine/plan_io.hpp) instead of compiled — load-once/share-everywhere:
// the direct engine, the batch server, and the model server all host the
// one loaded Plan, and the cold-start cost drops from compile work to a
// checksummed mmap.
//
//   ./serve_latency [--quick|--full] [--requests N] [--plan <file>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "engine/plan_io.hpp"
#include "serve/batch_server.hpp"
#include "serve/model_server.hpp"

using namespace alf;
using alf::bench::percentile;
using alf::bench::random_input;
using alf::bench::warm_bn;

int main(int argc, char** argv) {
  size_t hw = 16, width = 8, requests = 200;
  std::string plan_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) requests = 40;
    if (std::strcmp(argv[i], "--full") == 0) {
      hw = 32;
      width = 16;
      requests = 400;
    }
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = static_cast<size_t>(std::max(1L, std::atol(argv[++i])));
    if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc)
      plan_path = argv[++i];
  }
  const size_t max_batch = 32;

  Rng rng(23);
  ModelConfig mc;
  mc.base_width = width;
  mc.in_hw = hw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, hw, rng);

  // Request stream: batch sizes mimic a bursty queue (mostly small, some
  // full batches after a backlog).
  std::vector<size_t> sizes(requests);
  for (size_t i = 0; i < requests; ++i) {
    const double u = rng.uniform();
    sizes[i] = u < 0.5 ? 1 + rng.uniform_index(4)
                       : (u < 0.85 ? 8 + rng.uniform_index(8) : max_batch);
  }
  std::vector<Tensor> reqs_by_n(max_batch + 1);
  for (const size_t n : sizes)
    if (reqs_by_n[n].empty())
      reqs_by_n[n] = random_input({n, mc.in_channels, hw, hw}, rng);
  // Compile once — or, with --plan, load the blob once; every serving
  // path below shares this single Plan either way.
  const auto t_cold = std::chrono::steady_clock::now();
  Engine eng = plan_path.empty()
                   ? Engine::compile(*model, max_batch, mc.in_channels, hw, hw)
                   : Engine(alf::plan::load(plan_path));
  const double cold_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_cold)
                             .count();
  if (!plan_path.empty() &&
      (eng.plan()->batch() != max_batch || eng.plan()->in_h() != hw)) {
    std::fprintf(stderr,
                 "serve_latency: %s was generated at a different scale "
                 "(batch %zu hw %zu); regenerate with alf_planc\n",
                 plan_path.c_str(), eng.plan()->batch(), eng.plan()->in_h());
    return 1;
  }
  std::printf("%s\n", eng.plan_str().c_str());
  std::printf("cold start (%s): %.2fms\n\n",
              plan_path.empty() ? "Plan::compile"
                                : ("plan::load " + plan_path).c_str(),
              cold_ms);
  // Output tensors preallocated per batch size outside the serving loop —
  // the direct engine path itself performs no allocations.
  std::vector<Tensor> outs(max_batch + 1);
  for (const size_t n : sizes)
    if (outs[n].empty()) outs[n] = Tensor({n, eng.classes()});

  BatchServer::Config cfg;
  cfg.max_wait_us = 0;  // lone closed-loop client: dispatch immediately
  // No recompilation: the batch server hosts the direct engine's Plan.
  BatchServer server(eng.plan(), cfg);

  // The multi-tenant registry in its simplest configuration: one model —
  // sharing the direct engine's Plan, not recompiling — on 2 workers.
  ModelServer::Config ms_cfg;
  ms_cfg.workers = 2;
  ModelServer multi(ms_cfg);
  ModelServer::ModelConfig mm_cfg;
  mm_cfg.max_wait_us = 0;
  multi.add_model("resnet20", eng.plan(), mm_cfg);
  multi.start();

  Table table("ResNet-20 serving latency over " + std::to_string(requests) +
              " requests (ms)");
  table.set_header({"path", "p50", "p95", "p99", "p99.9", "images/s"});
  enum Path { kLayers = 0, kEngine = 1, kServer = 2, kMulti = 3 };
  for (const int path : {kLayers, kEngine, kServer, kMulti}) {
    std::vector<double> lat;
    lat.reserve(requests);
    size_t images = 0;
    const auto t_begin = std::chrono::steady_clock::now();
    for (const size_t n : sizes) {
      const Tensor& req = reqs_by_n[n];
      const auto t0 = std::chrono::steady_clock::now();
      switch (path) {
        case kLayers:
          model->forward(req, false);
          break;
        case kEngine:
          eng.run(req, outs[n]);
          break;
        case kServer:
          server.submit(req).get();
          break;
        case kMulti:
          multi.submit("resnet20", req).get();
          break;
      }
      const auto t1 = std::chrono::steady_clock::now();
      lat.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
      images += n;
    }
    const double total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_begin)
            .count();
    table.add_row({path == kLayers   ? "layer tree"
                   : path == kEngine ? "engine (direct)"
                   : path == kServer ? "batch server"
                                     : "model server x2",
                   Table::fmt(percentile(lat, 0.50), 3),
                   Table::fmt(percentile(lat, 0.95), 3),
                   Table::fmt(percentile(lat, 0.99), 3),
                   // Nearest-rank p99.9 == p99 until the sample exceeds
                   // ~1000 requests; both are reported so bigger --requests
                   // runs resolve the extra digit.
                   Table::fmt(percentile(lat, 0.999), 3),
                   Table::fmt(static_cast<double>(images) / total_s, 0)});
  }
  server.stop();
  multi.stop();
  table.print();
  std::printf(
      "\nThe server rows include queue + dispatch overhead; run the "
      "`serve` load generator for dynamic batching and the multi-model "
      "mix under concurrent clients.\n");
  return 0;
}
