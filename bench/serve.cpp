// serve — closed-loop load generator for the batched inference servers.
//
// C client threads replay a bursty request stream (mostly small requests
// back-to-back, occasional think-time gaps) against three serving paths
// under the same offered load:
//
//   layer-tree : the pre-engine baseline — every request runs its own
//                Sequential::forward on a per-client model replica
//   engine     : one shared BatchServer — mutex/CV queue, dynamic batching
//                up to Engine::batch() images per tick, a single
//                Engine::run_rows per dispatch
//   multi-model: one ModelServer hosting the float ResNet-20 AND its int8
//                twin (two shared Plans, per-model queues, weighted
//                scheduling at --weight-f32/--weight-int8, K workers each
//                owning one ExecContext per plan); every request is
//                routed to one of the two models
//
// Reports per-request p50/p95/p99 latency (nearest-rank percentile() from
// bench_common.hpp) — per model on the multi-model path — sustained
// images/s, and the servers' batch-fill counters, which show the dynamic
// batchers aggregating bursts. With --json the record lands in
// BENCH_serve.json (row names deliberately include quoted policy strings —
// the writer must escape them).
//
// With --plan-dir DIR the two served plans are not compiled but loaded
// from DIR/resnet20_{f32,int8}.plan (blobs written by alf_planc at the
// same scale) — the deploy-many half of compile-once/deploy-many. The run
// then also records cold_start/* rows: the plan::load cost actually paid
// vs the Plan::compile cost avoided.
//
// Closed-loop latencies are reported BOTH ways (the coordinated-omission
// fix): service latency (send -> done) and response latency (intended
// send instant -> done, where intended_i = intended_{i-1} + think_i — the
// script's schedule, not the throttled reality). A meta/loop_model row
// flags the loop semantics of every latency row in the artifact.
//
// Unless --no-net, the run also forks three shard processes serving
// resnet20_f32 + resnet20_int8 over the ALFN wire protocol (src/net/):
// one solo port and a 2-process SO_REUSEPORT pair. An open-loop Poisson
// generator (bench/netload.hpp) sweeps offered rates around a measured
// closed-loop capacity probe and emits latency-vs-offered-load rows
// (p50/p95/p99/p99.9 per rate, the knee where p99 exceeds the wire
// deadline budget, and a closed-vs-open-loop p99 divergence row under
// overload). The shards are SIGTERMed afterwards and must drain cleanly.
// With --connect PORT the in-process benches are skipped and the sweep
// drives an already-running external server (e.g. alf_served) instead.
//
//   ./serve [--quick|--full] [--requests N] [--clients N] [--workers N]
//           [--weight-f32 W] [--weight-int8 W] [--plan-dir DIR]
//           [--no-net] [--connect PORT] [--host H] [--deadline-us D]
//           [--json <path>]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "engine/plan_io.hpp"
#include "kernels/backend.hpp"
#include "net/server.hpp"
#include "netload.hpp"
#include "serve/batch_server.hpp"
#include "serve/model_server.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

/// One scripted request of a client's closed loop.
struct PlannedRequest {
  size_t n = 0;            ///< images in the request
  unsigned think_us = 0;   ///< pause before submitting (burst gap)
  bool quant = false;      ///< multi-model path: route to the int8 twin
};

/// Bursty per-client script: ~75% of requests follow the previous one
/// back-to-back (a burst), the rest arrive after a 100-900us gap; request
/// sizes are mostly 1-4 images with an occasional 8-image straggler. Half
/// the stream targets the int8 twin on the multi-model path.
std::vector<std::vector<PlannedRequest>> make_plan(size_t clients,
                                                   size_t per_client,
                                                   Rng& rng) {
  std::vector<std::vector<PlannedRequest>> plan(clients);
  for (auto& reqs : plan) {
    reqs.resize(per_client);
    for (PlannedRequest& r : reqs) {
      const double u = rng.uniform();
      r.n = u < 0.8 ? 1 + rng.uniform_index(4) : 8;
      r.think_us = rng.uniform() < 0.75
                       ? 0
                       : static_cast<unsigned>(100 + rng.uniform_index(800));
      r.quant = rng.uniform() < 0.5;
    }
  }
  return plan;
}

struct LoadResult {
  std::vector<double> latencies_ms;  // service latency (send -> done)
  std::vector<double> response_ms;   // response latency (intended -> done)
  double images_per_s = 0.0;
};

/// Drives the scripted closed loop: each client thread issues its requests
/// in order, pacing itself against the script's intended schedule
/// (intended_i = intended_{i-1} + think_i). `serve_one(client, x)` must
/// block until the request completes. Two latencies per request: service
/// (actual send -> done, what a closed-loop bench traditionally reports,
/// prone to coordinated omission — a stalled server delays later sends
/// and the stall never lands in the sample) and response (INTENDED send
/// -> done, which charges schedule slippage to the requests that caused
/// it).
template <typename ServeOne>
LoadResult run_load(const std::vector<std::vector<PlannedRequest>>& plan,
                    const std::vector<Tensor>& inputs_by_n,
                    ServeOne&& serve_one) {
  const size_t clients = plan.size();
  std::vector<std::vector<double>> lat(clients), resp(clients);
  size_t images = 0;
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs) images += r.n;

  const auto t_begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(plan[c].size());
      resp[c].reserve(plan[c].size());
      auto intended = t_begin;
      for (const PlannedRequest& r : plan[c]) {
        intended += std::chrono::microseconds(r.think_us);
        if (std::chrono::steady_clock::now() < intended)
          std::this_thread::sleep_until(intended);
        const Tensor& x = inputs_by_n[r.n];
        const auto t0 = std::chrono::steady_clock::now();
        serve_one(c, x);
        const auto t1 = std::chrono::steady_clock::now();
        lat[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        resp[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - intended).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();

  LoadResult res;
  for (auto& v : lat)
    res.latencies_ms.insert(res.latencies_ms.end(), v.begin(), v.end());
  for (auto& v : resp)
    res.response_ms.insert(res.response_ms.end(), v.begin(), v.end());
  res.images_per_s = static_cast<double>(images) / total_s;
  return res;
}

/// Multi-model flavor of run_load: the same scripted closed loop, but each
/// request routes to the float or int8 model per its plan flag, and
/// latencies are collected per model (index 0 = f32, 1 = int8).
struct MixedResult {
  LoadResult per_model[2];
  double aggregate_images_per_s = 0.0;
};

MixedResult run_mixed_load(const std::vector<std::vector<PlannedRequest>>& plan,
                           const std::vector<Tensor>& inputs_by_n,
                           ModelServer& server, const char* f32_name,
                           const char* int8_name) {
  const size_t clients = plan.size();
  std::vector<std::vector<double>> lat_f(clients), lat_q(clients);
  std::vector<std::vector<double>> resp_f(clients), resp_q(clients);
  size_t images = 0, images_by_model[2] = {0, 0};
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs) {
      images += r.n;
      images_by_model[r.quant ? 1 : 0] += r.n;
    }

  const auto t_begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto intended = t_begin;
      for (const PlannedRequest& r : plan[c]) {
        intended += std::chrono::microseconds(r.think_us);
        if (std::chrono::steady_clock::now() < intended)
          std::this_thread::sleep_until(intended);
        const Tensor& x = inputs_by_n[r.n];
        const auto t0 = std::chrono::steady_clock::now();
        server.submit(r.quant ? int8_name : f32_name, x).get();
        const auto t1 = std::chrono::steady_clock::now();
        (r.quant ? lat_q : lat_f)[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        (r.quant ? resp_q : resp_f)[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - intended).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();

  MixedResult res;
  for (size_t c = 0; c < clients; ++c) {
    res.per_model[0].latencies_ms.insert(res.per_model[0].latencies_ms.end(),
                                         lat_f[c].begin(), lat_f[c].end());
    res.per_model[1].latencies_ms.insert(res.per_model[1].latencies_ms.end(),
                                         lat_q[c].begin(), lat_q[c].end());
    res.per_model[0].response_ms.insert(res.per_model[0].response_ms.end(),
                                        resp_f[c].begin(), resp_f[c].end());
    res.per_model[1].response_ms.insert(res.per_model[1].response_ms.end(),
                                        resp_q[c].begin(), resp_q[c].end());
  }
  for (int m = 0; m < 2; ++m)
    res.per_model[m].images_per_s =
        static_cast<double>(images_by_model[m]) / total_s;
  res.aggregate_images_per_s = static_cast<double>(images) / total_s;
  return res;
}

// --- network shards + open-loop sweep --------------------------------------

const char* kF32 = "resnet20_f32";
const char* kInt8 = "resnet20_int8";

std::atomic<net::NetServer*> g_shard_srv{nullptr};
std::atomic<bool> g_shard_term{false};

void shard_on_term(int) {
  g_shard_term.store(true, std::memory_order_release);
  net::NetServer* s = g_shard_srv.load(std::memory_order_acquire);
  if (s != nullptr) s->request_drain();  // async-signal-safe
}

/// One forked shard process: compiles (or blob-loads) the f32 + int8
/// ResNet-20 pair, serves them on the inherited listening socket, drains
/// on SIGTERM. Exit 0 iff the drain identity held (every accepted request
/// was answered).
int run_net_shard(int listen_fd, const Scale& s, size_t max_batch,
                  uint64_t max_wait_us, const std::string& plan_dir,
                  size_t workers) {
  struct sigaction sa{};
  sa.sa_handler = shard_on_term;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  try {
    ModelConfig mc;
    mc.base_width = s.width;
    mc.in_hw = s.hw;
    std::shared_ptr<const Plan> fplan, qplan;
    if (!plan_dir.empty()) {
      fplan = plan::load(plan_dir + "/resnet20_f32.plan");
      qplan = plan::load(plan_dir + "/resnet20_int8.plan");
    } else {
      Rng rng(17);  // same seed as the parent's replicas: same weights
      auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
      warm_bn(*model, mc.in_channels, s.hw, rng);
      fplan = Plan::compile(*model, max_batch, mc.in_channels, s.hw, s.hw);
      qplan = Plan::compile(*model, max_batch, mc.in_channels, s.hw, s.hw,
                            {.backend = "int8", .bits = 8, .name = ""});
    }
    ModelServer::Config cfg;
    cfg.workers = workers;
    ModelServer ms(cfg);
    ModelServer::ModelConfig qcfg;
    qcfg.max_wait_us = max_wait_us;
    qcfg.max_queue = 8192;
    ms.add_model(kF32, fplan, qcfg);
    ms.add_model(kInt8, qplan, qcfg);
    ms.start();
    net::NetServer srv(ms, listen_fd);
    g_shard_srv.store(&srv, std::memory_order_release);
    if (g_shard_term.load(std::memory_order_acquire)) srv.request_drain();
    srv.run();
    g_shard_srv.store(nullptr, std::memory_order_release);
    ms.stop();
    const net::NetStats st = srv.stats();
    return st.submitted == st.ok + st.shed + st.orphaned ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve[shard %d]: fatal: %s\n",
                 static_cast<int>(::getpid()), e.what());
    return 1;
  }
}

/// Where the sweep talks to: a solo shard and (optionally) a 2-process
/// SO_REUSEPORT pair, or one external --connect server.
struct NetEndpoints {
  std::string host = "127.0.0.1";
  uint16_t solo_port = 0;
  uint16_t shard_port = 0;  // 0 = no reuseport pair
  bool external = false;
};

/// Open-loop Poisson sweep + knee + closed-vs-open overload divergence.
/// Appends net/* rows to `json`.
void run_net_bench(BenchJson& json, const Scale& s, const NetEndpoints& ep,
                   size_t image_floats, const float* row,
                   uint64_t deadline_us) {
  const bool quick = std::strcmp(s.name, "quick") == 0;
  const auto pct = [](const std::vector<double>& v, double q) {
    return v.empty() ? 0.0 : percentile(v, q);
  };
  const auto base = [&](uint16_t port, const char* model) {
    NetLoadConfig c;
    c.port = port;
    c.host = ep.host;
    c.model = model;
    c.image_floats = image_floats;
    c.row = row;
    c.deadline_us = deadline_us;
    return c;
  };

  // Readiness: one generous round trip per model; connections queue in the
  // shard's accept backlog until its plans are compiled/loaded.
  net_warmup(base(ep.solo_port, kF32));
  net_warmup(base(ep.solo_port, kInt8));
  if (ep.shard_port != 0) net_warmup(base(ep.shard_port, kF32));

  // Capacity probe: closed loop, f32, generous budget (probes throughput,
  // must not shed).
  NetLoadConfig probe = base(ep.solo_port, kF32);
  probe.requests = quick ? 200 : 400;
  probe.deadline_us = 30ull * 1000 * 1000;
  const NetLoadResult cap = run_closed_loop(probe);
  const double cap_rps = std::max(cap.achieved_rps, 20.0);
  std::printf(
      "\nnet: closed-loop capacity probe %.0f req/s (p50 %.3fms p99 %.3fms "
      "over %zu requests)\n",
      cap.achieved_rps, pct(cap.latency_ms, 0.50), pct(cap.latency_ms, 0.99),
      cap.sent);
  {
    BenchRow& br = json.row("net/capacity_probe/resnet20_f32");
    br.wall_ms = pct(cap.latency_ms, 0.50);
    br.extra["p99_ms"] = pct(cap.latency_ms, 0.99);
    br.extra["achieved_rps"] = cap.achieved_rps;
    br.extra_str["loop"] = "closed";
  }

  // Offered-rate sweep, capacity-relative so the artifact is stable across
  // machines; the top rate deliberately exceeds capacity.
  const std::vector<double> mults =
      quick ? std::vector<double>{0.4, 0.8, 1.2}
            : std::vector<double>{0.4, 0.7, 1.0, 1.3};
  const double deadline_ms = static_cast<double>(deadline_us) / 1000.0;
  uint64_t seed = 1234;

  const auto sweep = [&](const char* model, uint16_t port,
                         const char* shards_label) {
    double knee_rps = 0.0;
    for (const double m : mults) {
      const double rate = m * cap_rps;
      NetLoadConfig olc = base(port, model);
      olc.offered_rps = rate;
      // ~2 s of traffic per rate, bounded for very slow/fast machines.
      olc.requests = static_cast<size_t>(
          std::clamp(rate * 2.0, 150.0, quick ? 600.0 : 1200.0));
      olc.seed = seed++;
      const NetLoadResult r = run_open_loop(olc);
      const double p99 = pct(r.latency_ms, 0.99);
      char name[96];
      std::snprintf(name, sizeof(name), "net/open_loop/%s/shards=%s/rate=%.1fx",
                    model, shards_label, m);
      BenchRow& br = json.row(name);
      br.wall_ms = pct(r.latency_ms, 0.50);
      br.extra["p95_ms"] = pct(r.latency_ms, 0.95);
      br.extra["p99_ms"] = p99;
      br.extra["p999_ms"] = pct(r.latency_ms, 0.999);
      br.extra["offered_rps"] = r.offered_rps;
      br.extra["achieved_rps"] = r.achieved_rps;
      br.extra["ok"] = static_cast<double>(r.ok);
      br.extra["errors"] = static_cast<double>(r.errors);
      br.extra["unanswered"] = static_cast<double>(r.unanswered);
      br.extra["expired"] = static_cast<double>(
          r.by_status[static_cast<size_t>(net::WireStatus::kDeadlineExpired)]);
      br.extra["queue_full"] = static_cast<double>(
          r.by_status[static_cast<size_t>(net::WireStatus::kQueueFull)]);
      br.extra_str["loop"] = "open";
      std::printf(
          "net: %s shards=%s offered %.0f req/s (%.1fx): p50 %.3f p99 %.3f "
          "p99.9 %.3f ms, ok %zu, shed %zu\n",
          model, shards_label, rate, m, br.wall_ms, p99, br.extra["p999_ms"],
          r.ok, r.errors);
      if (knee_rps == 0.0 &&
          (p99 > deadline_ms || r.error_fraction() > 0.005))
        knee_rps = rate;
    }
    char name[96];
    std::snprintf(name, sizeof(name), "net/knee/%s/shards=%s", model,
                  shards_label);
    BenchRow& br = json.row(name);
    br.extra["knee_rps"] = knee_rps;  // 0 = not reached in this sweep
    br.extra["deadline_ms"] = deadline_ms;
    br.extra["capacity_rps"] = cap_rps;
  };

  const char* solo_label = ep.external ? "external" : "1";
  sweep(kF32, ep.solo_port, solo_label);
  sweep(kInt8, ep.solo_port, solo_label);
  if (ep.shard_port != 0) sweep(kF32, ep.shard_port, "2");

  // Overload divergence: at 1.2x capacity with a budget so large nothing
  // sheds, the closed loop throttles itself to capacity and reports rosy
  // service latencies, while the open loop charges the growing queue to
  // every intended arrival. Open p99 must be strictly worse — that gap IS
  // coordinated omission.
  NetLoadConfig closed = base(ep.solo_port, kF32);
  closed.requests = quick ? 240 : 400;
  closed.deadline_us = 30ull * 1000 * 1000;
  const NetLoadResult cl = run_closed_loop(closed);
  NetLoadConfig open = base(ep.solo_port, kF32);
  open.offered_rps = 1.2 * cap_rps;
  open.requests = static_cast<size_t>(
      std::clamp(open.offered_rps * 2.0, 150.0, quick ? 600.0 : 1200.0));
  open.deadline_us = 30ull * 1000 * 1000;
  open.seed = seed++;
  const NetLoadResult op = run_open_loop(open);
  const double closed_p99 = pct(cl.latency_ms, 0.99);
  const double open_p99 = pct(op.latency_ms, 0.99);
  BenchRow& div = json.row("net/overload/closed_vs_open");
  div.extra["closed_p99_ms"] = closed_p99;
  div.extra["open_p99_ms"] = open_p99;
  div.extra["open_offered_rps"] = op.offered_rps;
  div.extra["closed_achieved_rps"] = cl.achieved_rps;
  if (closed_p99 > 0.0) div.extra["open_over_closed"] = open_p99 / closed_p99;
  std::printf(
      "net: overload (%.0f req/s offered): closed-loop p99 %.3fms vs "
      "open-loop p99 %.3fms (%s)\n",
      op.offered_rps, closed_p99, open_p99,
      open_p99 > closed_p99 ? "open worse — CO visible" : "UNEXPECTED");
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::string json_path = parse_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_serve.json";

  size_t per_client = 100, clients = 6;
  if (std::strcmp(s.name, "quick") == 0) {
    per_client = 40;
    clients = 4;
  } else if (std::strcmp(s.name, "full") == 0) {
    per_client = 200;
    clients = 8;
  }
  size_t workers = 2;
  double weight_f32 = 3.0, weight_int8 = 1.0;
  std::string plan_dir, net_host = "127.0.0.1";
  bool no_net = false;
  int connect_port = 0;
  uint64_t deadline_us = 50'000;  // wire budget for the open-loop sweep
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--no-net") == 0) no_net = true;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0)
      per_client = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
    if (std::strcmp(argv[i], "--clients") == 0)
      clients = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
    if (std::strcmp(argv[i], "--workers") == 0)
      workers = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
    if (std::strcmp(argv[i], "--weight-f32") == 0)
      weight_f32 = std::max(0.001, std::atof(argv[i + 1]));
    if (std::strcmp(argv[i], "--weight-int8") == 0)
      weight_int8 = std::max(0.001, std::atof(argv[i + 1]));
    if (std::strcmp(argv[i], "--plan-dir") == 0) plan_dir = argv[i + 1];
    if (std::strcmp(argv[i], "--connect") == 0)
      connect_port = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--host") == 0) net_host = argv[i + 1];
    if (std::strcmp(argv[i], "--deadline-us") == 0)
      deadline_us = static_cast<uint64_t>(std::max(1L, std::atol(argv[i + 1])));
  }
  const size_t max_batch = 32;
  const uint64_t max_wait_us = 200;

  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;
  const size_t image_floats = mc.in_channels * s.hw * s.hw;

  // --connect PORT: skip the in-process benches entirely and run the
  // open-loop sweep against an already-running external server (e.g.
  // alf_served) — the CI net-smoke path.
  if (connect_port > 0) {
    Rng net_rng(29);
    const Tensor one = random_input({1, mc.in_channels, s.hw, s.hw}, net_rng);
    NetEndpoints ep;
    ep.host = net_host;
    ep.solo_port = static_cast<uint16_t>(connect_port);
    ep.external = true;
    BenchJson json("serve", s.name);
    try {
      run_net_bench(json, s, ep, image_floats, one.data(), deadline_us);
    } catch (const std::exception& e) {
      // The external server died or refused us mid-sweep (e.g. it was
      // SIGTERMed — exactly what the CI drain check does on purpose).
      // Report and exit nonzero, but never abort.
      std::fprintf(stderr, "serve --connect: external server failed: %s\n",
                   e.what());
      return 1;
    }
    if (json.write(json_path)) {
      std::printf("wrote %s\n", json_path.c_str());
      return 0;
    }
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }

  // Fork the network shards FIRST — before any code spawns a thread
  // (forking a multithreaded process can inherit held mutexes). Three
  // children: one solo port, plus a 2-process SO_REUSEPORT pair on a
  // shared port. All listening sockets exist before the forks, so the
  // sweep's connections queue in the backlog while shards compile.
  NetEndpoints ep;
  std::vector<pid_t> shard_pids;
  if (!no_net) {
    try {
      const int solo_fd = net::listen_on(0);
      ep.solo_port = net::local_port(solo_fd);
      const int pair_fd0 = net::listen_on(0, /*reuseport=*/true);
      ep.shard_port = net::local_port(pair_fd0);
      const int pair_fd1 = net::listen_on(ep.shard_port, /*reuseport=*/true);
      const int fds[3] = {solo_fd, pair_fd0, pair_fd1};
      for (int k = 0; k < 3; ++k) {
        const pid_t pid = ::fork();
        if (pid < 0) {
          std::perror("serve: fork");
          return 1;
        }
        if (pid == 0) {
          for (int j = 0; j < 3; ++j)
            if (j != k) ::close(fds[j]);
          ::_exit(run_net_shard(fds[k], s, max_batch, max_wait_us, plan_dir,
                                /*workers=*/2));
        }
        shard_pids.push_back(pid);
      }
      for (const int fd : fds) ::close(fd);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: net setup failed (%s); running --no-net\n",
                   e.what());
      no_net = true;
    }
  }

  // One model replica per layer-tree client (forward caches per-layer state,
  // so replicas keep the baseline race-free); identical weights everywhere
  // via the fixed seed. The engine compiles from replica 0.
  std::vector<std::unique_ptr<Sequential>> replicas(clients);
  for (auto& m : replicas) {
    Rng rng(17);
    m = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
    warm_bn(*m, mc.in_channels, s.hw, rng);
  }

  Rng rng(29);
  std::vector<Tensor> inputs_by_n(max_batch + 1);
  const auto plan = make_plan(clients, per_client, rng);
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs)
      if (inputs_by_n[r.n].empty())
        inputs_by_n[r.n] =
            random_input({r.n, mc.in_channels, s.hw, s.hw}, rng);

  std::printf(
      "serve: %zu clients x %zu closed-loop requests, engine batch %zu, "
      "max_wait %lluus (scale=%s)\n\n",
      clients, per_client, max_batch,
      static_cast<unsigned long long>(max_wait_us), s.name);

  // --- Baseline: per-request layer-tree forward on the client thread. ---
  for (size_t c = 0; c < clients; ++c)  // untimed warmup
    replicas[c]->forward(inputs_by_n[1], false);
  const LoadResult layers = run_load(
      plan, inputs_by_n,
      [&](size_t c, const Tensor& x) { replicas[c]->forward(x, false); });

  // --- Engine path: shared BatchServer, dynamic batching. The float plan
  // is created ONCE and shared with the multi-model path below (the whole
  // point of the Plan/ExecContext split) — compiled from the model, or
  // with --plan-dir loaded from its alf_planc blob. The compile runs (and
  // is timed) either way, so the cold_start rows always have a baseline.
  const auto dur_ms = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  const auto load_blob = [&](const char* stem, double* load_ms,
                             double* blob_kib) {
    const std::string path = plan_dir + "/" + stem + ".plan";
    const auto t0 = std::chrono::steady_clock::now();
    auto loaded = plan::load(path);
    *load_ms = dur_ms(t0);
    *blob_kib =
        static_cast<double>(std::filesystem::file_size(path)) / 1024.0;
    if (loaded->batch() != max_batch || loaded->in_h() != s.hw ||
        loaded->in_c() != mc.in_channels) {
      std::fprintf(stderr,
                   "serve: %s was generated at a different scale (batch %zu "
                   "hw %zu); regenerate with alf_planc at --%s\n",
                   path.c_str(), loaded->batch(), loaded->in_h(), s.name);
      std::exit(1);
    }
    return loaded;
  };
  const auto t_cf = std::chrono::steady_clock::now();
  auto fplan =
      Plan::compile(*replicas[0], max_batch, mc.in_channels, s.hw, s.hw);
  const double compile_f32_ms = dur_ms(t_cf);
  double load_f32_ms = 0.0, blob_f32_kib = 0.0;
  if (!plan_dir.empty())
    fplan = load_blob("resnet20_f32", &load_f32_ms, &blob_f32_kib);
  BatchServer::Config cfg;
  cfg.max_wait_us = max_wait_us;
  BatchServer server(fplan, cfg);
  server.submit(inputs_by_n[1]).get();  // untimed warmup
  const ServeStats warm = server.stats();
  const LoadResult engine = run_load(
      plan, inputs_by_n,
      [&](size_t, const Tensor& x) { server.submit(x).get(); });
  ServeStats st = server.stats();
  server.stop();
  st.batches -= warm.batches;  // exclude the warmup dispatch
  st.requests -= warm.requests;
  st.images -= warm.images;

  // --- Multi-model path: ModelServer hosting the float net + its int8
  // twin on a shared worker pool (one ExecContext per worker per plan),
  // weighted scheduling between the two queues. ---
  const char* kF32 = "resnet20_f32";
  const char* kInt8 = "resnet20_int8";
  const auto t_cq = std::chrono::steady_clock::now();
  auto qplan = Plan::compile(*replicas[0], max_batch, mc.in_channels, s.hw,
                             s.hw, {.backend = "int8", .bits = 8, .name = ""});
  const double compile_int8_ms = dur_ms(t_cq);
  double load_int8_ms = 0.0, blob_int8_kib = 0.0;
  if (!plan_dir.empty())
    qplan = load_blob("resnet20_int8", &load_int8_ms, &blob_int8_kib);
  ModelServer::Config ms_cfg;
  ms_cfg.workers = workers;
  ModelServer multi(ms_cfg);
  ModelServer::ModelConfig f32_cfg, int8_cfg;
  f32_cfg.max_wait_us = max_wait_us;
  f32_cfg.weight = weight_f32;
  int8_cfg.max_wait_us = max_wait_us;
  int8_cfg.weight = weight_int8;
  multi.add_model(kF32, fplan, f32_cfg);
  multi.add_model(kInt8, qplan, int8_cfg);
  multi.start();
  multi.submit(kF32, inputs_by_n[1]).get();  // untimed warmups
  multi.submit(kInt8, inputs_by_n[1]).get();
  const ServeStats warm_f = multi.stats(kF32);
  const ServeStats warm_q = multi.stats(kInt8);
  const MixedResult mixed =
      run_mixed_load(plan, inputs_by_n, multi, kF32, kInt8);
  ServeStats st_f = multi.stats(kF32);
  ServeStats st_q = multi.stats(kInt8);
  multi.stop();
  st_f.batches -= warm_f.batches;  // exclude the warmup dispatches
  st_f.images -= warm_f.images;
  st_q.batches -= warm_q.batches;
  st_q.images -= warm_q.images;

  Table table("Closed-loop serving latency per request (ms)");
  table.set_header({"path", "p50", "p95", "p99", "p99.9", "images/s"});
  // Request-to-model routing is random, so a tiny --requests run can leave
  // one model with no traffic; percentile() throws on an empty sample.
  const auto pct = [](const std::vector<double>& v, double q) {
    return v.empty() ? 0.0 : percentile(v, q);
  };
  const auto add = [&](const char* name, const LoadResult& r) {
    table.add_row({name, Table::fmt(pct(r.latencies_ms, 0.50), 3),
                   Table::fmt(pct(r.latencies_ms, 0.95), 3),
                   Table::fmt(pct(r.latencies_ms, 0.99), 3),
                   Table::fmt(pct(r.latencies_ms, 0.999), 3),
                   Table::fmt(r.images_per_s, 0)});
  };
  add("layer tree", layers);
  add("engine+batching", engine);
  add("multi f32", mixed.per_model[0]);
  add("multi int8", mixed.per_model[1]);
  table.print();
  std::printf(
      "\nmulti-model: %zu workers, weights f32=%.1f int8=%.1f, aggregate "
      "%.0f images/s (f32: %zu batches avg fill %.1f | int8: %zu batches "
      "avg fill %.1f)\n",
      workers, weight_f32, weight_int8, mixed.aggregate_images_per_s,
      st_f.batches, st_f.avg_fill(), st_q.batches, st_q.avg_fill());
  std::printf(
      "\nbatcher: %zu dispatches for %zu requests (%zu images), avg fill "
      "%.1f/%zu images, %zu full batches, max fill %zu\n",
      st.batches, st.requests, st.images, st.avg_fill(), max_batch,
      st.full_batches, st.max_fill);
  const double p50_layers = percentile(layers.latencies_ms, 0.50);
  const double p50_engine = percentile(engine.latencies_ms, 0.50);
  std::printf("engine-path p50 %.3fms vs layer-tree p50 %.3fms (%s)\n",
              p50_engine, p50_layers,
              p50_engine <= p50_layers ? "OK: no worse" : "SLOWER");

  BenchJson json("serve", s.name);
  // Both latency views on every closed-loop row (the CO fix): service
  // (p*_ms) and schedule-relative response (resp_p*_ms); the meta row
  // below documents the semantics once for the whole artifact.
  const auto co_extras = [&](BenchRow& br, const LoadResult& r) {
    br.extra["p999_ms"] = pct(r.latencies_ms, 0.999);
    br.extra["resp_p50_ms"] = pct(r.response_ms, 0.50);
    br.extra["resp_p99_ms"] = pct(r.response_ms, 0.99);
    br.extra["resp_p999_ms"] = pct(r.response_ms, 0.999);
  };
  {
    BenchRow& meta = json.row("meta/loop_model");
    meta.extra_str["closed_loop"] =
        "p*_ms = service latency (send->done; coordinated-omission-prone); "
        "resp_p*_ms = response latency from the intended send instant "
        "(intended_i = intended_{i-1} + think_i)";
    meta.extra_str["open_loop"] =
        "net/open_loop/* rows: Poisson arrivals drawn ahead of time; "
        "latency measured from the intended arrival instant";
  }
  BenchRow& lt = json.row("layer_tree/per_request");
  lt.wall_ms = p50_layers;
  lt.extra["p95_ms"] = percentile(layers.latencies_ms, 0.95);
  lt.extra["p99_ms"] = percentile(layers.latencies_ms, 0.99);
  lt.extra["images_per_s"] = layers.images_per_s;
  co_extras(lt, layers);
  // The policy string carries quotes on purpose: the JSON writer must
  // escape row names or the trajectory diff breaks (see json_escape).
  char name[96];
  std::snprintf(name, sizeof(name),
                "engine/policy=\"batch=%zu,max_wait=%lluus\"", max_batch,
                static_cast<unsigned long long>(max_wait_us));
  BenchRow& en = json.row(name);
  en.wall_ms = p50_engine;
  en.extra["p95_ms"] = percentile(engine.latencies_ms, 0.95);
  en.extra["p99_ms"] = percentile(engine.latencies_ms, 0.99);
  en.extra["images_per_s"] = engine.images_per_s;
  en.extra["avg_fill"] = st.avg_fill();
  en.extra["full_batches"] = static_cast<double>(st.full_batches);
  en.extra["dispatches"] = static_cast<double>(st.batches);
  en.extra["speedup_p50_vs_layers"] = p50_layers / p50_engine;
  co_extras(en, engine);
  // Per-model multi-tenant rows + the aggregate. Row names carry the
  // scheduling weight as a quoted policy string (escaping regression
  // check, like the engine row above).
  const auto add_model_row = [&](const char* model, const LoadResult& r,
                                 double weight, const ServeStats& mst) {
    char row[96];
    std::snprintf(row, sizeof(row), "model_server/%s policy=\"w=%.1f\"",
                  model, weight);
    BenchRow& br = json.row(row);
    br.wall_ms = pct(r.latencies_ms, 0.50);
    br.extra["p95_ms"] = pct(r.latencies_ms, 0.95);
    br.extra["p99_ms"] = pct(r.latencies_ms, 0.99);
    br.extra["images_per_s"] = r.images_per_s;
    br.extra["avg_fill"] = mst.avg_fill();
    br.extra["dispatches"] = static_cast<double>(mst.batches);
    co_extras(br, r);
  };
  add_model_row(kF32, mixed.per_model[0], weight_f32, st_f);
  add_model_row(kInt8, mixed.per_model[1], weight_int8, st_q);
  // Explicit float-vs-int8 comparison under the same mixed load: per-tail
  // latency ratios (f32 / int8 — > 1 means the quantized twin is faster)
  // plus which qgemm kernel served it, so the serving-path effect of a
  // kernel change is diffable without cross-referencing the per-model rows.
  {
    const double f50 = pct(mixed.per_model[0].latencies_ms, 0.50);
    const double q50 = pct(mixed.per_model[1].latencies_ms, 0.50);
    BenchRow& cmp = json.row("model_server/int8_vs_float");
    cmp.extra["p50_f32_ms"] = f50;
    cmp.extra["p50_int8_ms"] = q50;
    cmp.extra["p95_f32_ms"] = pct(mixed.per_model[0].latencies_ms, 0.95);
    cmp.extra["p95_int8_ms"] = pct(mixed.per_model[1].latencies_ms, 0.95);
    cmp.extra["p99_f32_ms"] = pct(mixed.per_model[0].latencies_ms, 0.99);
    cmp.extra["p99_int8_ms"] = pct(mixed.per_model[1].latencies_ms, 0.99);
    if (q50 > 0.0) cmp.extra["p50_speedup_int8"] = f50 / q50;
    cmp.extra_str["qgemm_backend"] =
        kernels::best_quantized_backend()->name;
    cmp.extra_str["cpu_allowed"] =
        kernels::cpu_feature_names(kernels::allowed_cpu_features());
  }
  // Aggregate latency is the p50 over BOTH models' requests merged, not a
  // per-model alias.
  std::vector<double> all_lat = mixed.per_model[0].latencies_ms;
  all_lat.insert(all_lat.end(), mixed.per_model[1].latencies_ms.begin(),
                 mixed.per_model[1].latencies_ms.end());
  BenchRow& agg = json.row("model_server/aggregate");
  agg.wall_ms = pct(all_lat, 0.50);
  agg.extra["p95_ms"] = pct(all_lat, 0.95);
  agg.extra["p99_ms"] = pct(all_lat, 0.99);
  agg.extra["p999_ms"] = pct(all_lat, 0.999);
  agg.extra["images_per_s"] = mixed.aggregate_images_per_s;
  agg.extra["workers"] = static_cast<double>(workers);
  agg.extra["models"] = 2.0;
  if (!plan_dir.empty()) {
    // Cold start actually paid on this run (plan::load of the served
    // blobs) vs the Plan::compile cost it replaced. Budget: < 10ms/model.
    const auto cold = [&](const char* model, double load_ms,
                          double compile_ms, double blob_kib) {
      char row[64];
      std::snprintf(row, sizeof(row), "cold_start/%s", model);
      BenchRow& br = json.row(row);
      br.wall_ms = load_ms;
      br.extra["plan_load_ms"] = load_ms;
      br.extra["compile_ms"] = compile_ms;
      br.extra["speedup_vs_compile"] = compile_ms / load_ms;
      br.extra["blob_kib"] = blob_kib;
    };
    cold(kF32, load_f32_ms, compile_f32_ms, blob_f32_kib);
    cold(kInt8, load_int8_ms, compile_int8_ms, blob_int8_kib);
    std::printf(
        "plan-dir cold start: f32 %.2fms (compile %.2fms), int8 %.2fms "
        "(compile %.2fms) — budget 10ms/model\n",
        load_f32_ms, compile_f32_ms, load_int8_ms, compile_int8_ms);
  }
  // --- Over the wire: open-loop Poisson sweep against the forked shards,
  // then SIGTERM them and demand a clean drain (exit 0 from every shard =
  // its submitted == ok + shed + orphaned identity held). ---
  bool drain_clean = true;
  if (!no_net) {
    Rng net_rng(31);
    const Tensor one = random_input({1, mc.in_channels, s.hw, s.hw}, net_rng);
    try {
      run_net_bench(json, s, ep, image_floats, one.data(), deadline_us);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: net bench failed: %s\n", e.what());
      drain_clean = false;
    }
    for (const pid_t pid : shard_pids) ::kill(pid, SIGTERM);
    int worst = 0;
    for (const pid_t pid : shard_pids) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      const int rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
      worst = std::max(worst, rc);
    }
    if (worst != 0) drain_clean = false;
    BenchRow& dr = json.row("net/drain");
    dr.extra["shards"] = static_cast<double>(shard_pids.size());
    dr.extra["drain_clean"] = drain_clean ? 1.0 : 0.0;
    std::printf("net: SIGTERM drain across %zu shards: %s\n",
                shard_pids.size(), drain_clean ? "clean" : "NOT CLEAN");
  }

  if (json.write(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }
  return drain_clean ? 0 : 1;
}
