#include "optim/sgd.hpp"

#include <cmath>

#include "core/check.hpp"

namespace alf {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    ALF_CHECK(p != nullptr);
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const float wd = p.decay ? config_.weight_decay : 0.0f;
    float* pv = v.data();
    float* pw = p.value.data();
    const float* pg = p.grad.data();
    for (size_t j = 0; j < p.value.numel(); ++j) {
      const float g = pg[j] + wd * pw[j];
      pv[j] = config_.momentum * pv[j] + g;
      pw[j] -= config_.lr * pv[j];
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

StepLrSchedule::StepLrSchedule(float base_lr, std::vector<size_t> milestones,
                               float factor)
    : base_lr_(base_lr), milestones_(std::move(milestones)), factor_(factor) {}

float StepLrSchedule::lr_at(size_t epoch) const {
  float lr = base_lr_;
  for (size_t m : milestones_)
    if (epoch >= m) lr *= factor_;
  return lr;
}

}  // namespace alf
