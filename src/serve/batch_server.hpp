// Batched inference server: dynamic batching over a compiled Engine.
//
// The engine executes one batch per call as fast as the hardware allows;
// the server turns that into a serving system. Clients submit requests of
// 1..Engine::batch() images into a mutex/condition-variable queue; a
// dispatcher thread gathers requests per tick:
//
//   - The first queued request opens a tick. The dispatcher then waits at
//     most `max_wait_us` for more arrivals, leaving early the moment the
//     queue holds a full batch — so bursts fill batches and a lone request
//     is never starved past the wait budget.
//   - The longest queue prefix whose images fit Engine::batch() is packed
//     into contiguous rows of one preallocated input buffer and executed
//     with a single Engine::run_rows (partial batches run on the same
//     compiled plan; see engine/engine.hpp).
//   - Per-request logit rows are scattered back and delivered through the
//     request's completion callback (std::future via the other submit()
//     overload). Callbacks run on the dispatcher thread; keep them light.
//
// Admission control: Config::max_queue bounds the backlog. When the queue
// already holds that many requests, submit() fails fast with QueueFullError
// (a typed error, so callers distinguish overload — retry/shed upstream —
// from misuse, which stays CheckError). 0 = unbounded, the pre-existing
// behavior.
//
// stop() (and the destructor) drains every queued request before joining,
// so no accepted request is ever dropped. Submissions after stop() fail
// with CheckError.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "engine/engine.hpp"

namespace alf {

/// Typed overload signal: submit() found the queue at Config::max_queue.
/// Deliberately NOT a CheckError — overload is an operating condition the
/// caller handles (shed, retry with backoff, degrade), not a programming
/// error.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Dispatch counters, aggregated under the queue lock at batch-formation
/// time (so they are final for a request as soon as its result is
/// delivered).
struct ServeStats {
  size_t requests = 0;      ///< requests dispatched to the engine
  size_t images = 0;        ///< images dispatched
  size_t batches = 0;       ///< engine invocations
  size_t full_batches = 0;  ///< invocations that filled Engine::batch()
  size_t max_fill = 0;      ///< largest images-per-invocation seen
  size_t rejected = 0;      ///< submits refused by admission control

  /// Mean images per engine invocation (0 before the first dispatch).
  double avg_fill() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(images) /
                              static_cast<double>(batches);
  }
};

/// Owns a compiled Engine plus the request queue and dispatcher thread.
class BatchServer {
 public:
  struct Config {
    /// How long a tick waits for the queue to fill once it holds at least
    /// one request. 0 dispatches whatever is queued immediately (lowest
    /// lone-request latency, least batching).
    uint64_t max_wait_us = 200;
    /// Admission control: maximum requests the queue may hold. A submit()
    /// arriving at a full queue fails fast with QueueFullError instead of
    /// growing the backlog (and its tail latency) without bound. 0 =
    /// unbounded.
    size_t max_queue = 0;
    /// Start with the dispatcher paused (see pause()/resume()); used by
    /// tests and replay harnesses to stage a backlog deterministically.
    bool start_paused = false;
  };

  /// Receives the per-request logits [n, classes] on the dispatcher thread.
  using Callback = std::function<void(Tensor&&)>;

  /// Takes ownership of the compiled engine; starts the dispatcher.
  /// (Two overloads instead of a defaulted Config argument: a nested
  /// class's member initializers are not available for in-class default
  /// arguments of its enclosing class.)
  explicit BatchServer(Engine engine);
  BatchServer(Engine engine, Config cfg);
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueues `x` [n, Ci, H, W] (1 <= n <= engine().batch()); `done` fires
  /// once with the logits. Throws CheckError on shape mismatch or after
  /// stop(), QueueFullError when admission control refuses the request
  /// (Config::max_queue; the callback is never invoked in either case).
  void submit(Tensor x, Callback done);

  /// Future-returning form of submit(). Same error behavior — the errors
  /// are thrown from the call, never stuffed into the future.
  std::future<Tensor> submit(Tensor x);

  /// Suspends batch formation: a batch already packed keeps executing, but
  /// once pause() returns no new batch forms — queued and newly submitted
  /// requests are held (an open tick waiting for batch-mates is abandoned
  /// back to the queue). resume() restarts dispatch. stop() overrides a
  /// pause to drain.
  void pause();
  void resume();

  /// Drains the queue, then joins the dispatcher. Idempotent; called by the
  /// destructor.
  void stop();

  /// Requests currently queued (not yet dispatched).
  size_t pending() const;

  ServeStats stats() const;
  const Engine& engine() const { return engine_; }
  const Config& config() const { return cfg_; }

 private:
  struct Request {
    Tensor x;
    size_t n = 0;
    Callback done;
  };

  void dispatch_loop();

  Engine engine_;
  Config cfg_;
  Tensor in_;   ///< [batch, Ci, H, W] packing buffer (dispatcher-only)
  Tensor out_;  ///< [batch, classes] logits buffer (dispatcher-only)

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  size_t queued_images_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  ServeStats stats_;
  std::thread dispatcher_;
};

}  // namespace alf
