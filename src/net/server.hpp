// NetServer: the epoll TCP front end over ModelServer::submit — the wire
// that turns the in-process multi-tenant server into a network service.
//
// One NetServer owns one listening socket and one edge-triggered epoll
// event loop (run(), blocking; typically a dedicated thread or the whole
// process). Connections are nonblocking with per-connection read/write
// buffers; complete request frames (net/wire.hpp) are validated, routed to
// the named model, and submitted to the ModelServer with the wire deadline
// budget minus observed time-on-wire propagated into
// SubmitOptions::deadline_us. Completions arrive on ModelServer worker
// threads, get queued through an eventfd-signalled completion queue, and
// the event loop serializes the response frames — all socket I/O happens
// on the ONE loop thread, so connection state needs no locking.
//
// Drain (the SIGTERM path): request_drain() is async-signal-safe (an
// atomic store plus an eventfd write). The loop then stops accepting
// (closes the listen socket), stops parsing new frames on every
// connection, waits for every submitted request to complete and every
// response byte to flush, closes the connections, and run() returns. No
// accepted (= submitted) request is dropped without a response frame:
// after a drain, stats().submitted == stats().ok + stats().shed (+
// stats().orphaned for clients that vanished mid-request).
//
// Process-level sharding: bind N listening sockets to the SAME port with
// SO_REUSEPORT (listen_on(port, /*reuseport=*/true)) and give each to a
// NetServer in its own process — the kernel hash-balances incoming
// connections across the shards, and mmap-loaded plan blobs
// (engine/plan_io.hpp) keep one physical copy of the weights across all
// of them. tools/alf_served.cpp packages exactly this.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"
#include "net/wire.hpp"
#include "serve/model_server.hpp"

namespace alf::net {

/// Syscall-level failure (socket/bind/listen/epoll/eventfd); carries
/// errno text. Protocol-level rejections are WireStatus, not exceptions.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// Creates a nonblocking TCP listening socket on 127.0.0.1-any:`port`
/// (0 = ephemeral; read it back with local_port). With `reuseport`,
/// SO_REUSEPORT is set before bind so N sockets — typically one per
/// process shard — can share the port. Throws NetError on failure.
int listen_on(uint16_t port, bool reuseport = false, int backlog = 128);

/// The bound port of a listening socket (resolves port 0). Throws
/// NetError.
uint16_t local_port(int fd);

struct NetServerConfig {
  /// Hard per-frame payload cap; a header claiming more is kTooLarge and
  /// fatal to the connection (the server refuses to buffer it).
  uint64_t max_frame_bytes = 16ull << 20;
  /// Upper bound on deadline_us (protocol default: kMaxDeadlineUs).
  uint64_t max_deadline_us = kMaxDeadlineUs;
};

/// Event-loop counters. by_status[s] counts every response frame sent
/// with that status; the drain identity is
///   submitted == ok + shed + orphaned.
struct NetStats {
  uint64_t connections = 0;  ///< accepted connections
  uint64_t frames = 0;       ///< complete request frames parsed
  uint64_t submitted = 0;    ///< frames accepted into the ModelServer
  uint64_t ok = 0;           ///< kOk responses for submitted frames
  uint64_t shed = 0;         ///< error responses for submitted frames
                             ///< (drop-oldest, deadline, internal)
  uint64_t rejected = 0;     ///< error responses for never-submitted frames
  uint64_t orphaned = 0;     ///< completions whose connection had closed
  uint64_t truncated = 0;    ///< connections that died mid-frame
  std::array<uint64_t, kNumStatus> by_status{};

  uint64_t responses() const { return ok + shed + rejected; }
};

class NetServer {
 public:
  /// Takes ownership of `listen_fd` (a socket from listen_on; already
  /// listening, possibly shared via SO_REUSEPORT). `server` must be
  /// started and outlive the NetServer. Throws NetError on epoll/eventfd
  /// setup failure.
  NetServer(ModelServer& server, int listen_fd, NetServerConfig cfg = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Runs the event loop on the calling thread until a drain completes.
  /// Call at most once.
  void run();

  /// Initiates graceful drain; run() returns once every submitted request
  /// has been answered and flushed. Async-signal-safe (atomic store +
  /// eventfd write) — safe to call from a SIGTERM handler — and safe to
  /// call from any thread, repeatedly.
  void request_drain();

  bool draining() const { return drain_.load(std::memory_order_acquire); }

  /// Coherent snapshot (counters are mutated only by the loop thread,
  /// under the same mutex the copy takes).
  NetStats stats() const;

  uint16_t port() const { return port_; }

 private:
  struct Conn;
  struct Completion;
  struct CompletionQueue;
  struct Loop;  ///< epoll/connection state, alive only inside run()

  void handle_frame(Loop& loop, Conn& conn, const RequestHeader& hdr,
                    const char* name, const uint8_t* payload);

  ModelServer& server_;
  NetServerConfig cfg_;
  int listen_fd_;
  uint16_t port_ = 0;
  std::atomic<bool> drain_{false};
  std::atomic<bool> ran_{false};
  /// Shared with in-flight ModelServer callbacks: they only touch the
  /// queue, so a callback completing after run() returned (it cannot
  /// after a drain, by the drain identity — but belt and braces) never
  /// dereferences the server.
  std::shared_ptr<CompletionQueue> completions_;

  mutable Mutex stats_m_;
  NetStats stats_ ALF_GUARDED_BY(stats_m_);
};

}  // namespace alf::net
