#include "hwmodel/mapping.hpp"

#include <algorithm>
#include <sstream>

#include "core/check.hpp"

namespace alf {
namespace {

/// Datatypes moving through the hierarchy.
enum class Dt { kWeight, kIfmap, kOfmap };

/// Loop dims (R and S are handled implicitly: R spatial, S innermost RF).
enum class Dim { kM, kC, kP, kQ, kN };

bool relevant(Dim d, Dt t) {
  switch (t) {
    case Dt::kWeight:
      return d == Dim::kM || d == Dim::kC;
    case Dt::kIfmap:
      return d == Dim::kN || d == Dim::kC || d == Dim::kP || d == Dim::kQ;
    case Dt::kOfmap:
      return d == Dim::kN || d == Dim::kM || d == Dim::kP || d == Dim::kQ;
  }
  return true;
}

size_t factor_of(const Mapping::Levels& l, Dim d) {
  switch (d) {
    case Dim::kM:
      return l.m;
    case Dim::kC:
      return l.c;
    case Dim::kP:
      return l.p;
    case Dim::kQ:
      return l.q;
    case Dim::kN:
      return l.n;
  }
  return 1;
}

// Canonical loop order per level, innermost first. Chosen to favour
// row-stationary reuse: spatial-adjacent dims (Q, P) iterate innermost at
// the GB level; batch and output channels iterate outermost at DRAM.
constexpr Dim kGbOrder[5] = {Dim::kQ, Dim::kP, Dim::kN, Dim::kC, Dim::kM};
constexpr Dim kDramOrder[5] = {Dim::kQ, Dim::kP, Dim::kC, Dim::kM, Dim::kN};

/// Times the child tile of datatype `t` must be refetched across one level's
/// loop nest: innermost loops irrelevant to `t` reuse the resident tile;
/// any loop outside the first relevant one forces a refetch.
unsigned long long refetch(const Mapping::Levels& l, const Dim order[5],
                           Dt t) {
  unsigned long long mult = 1;
  bool seen_relevant = false;
  for (int i = 0; i < 5; ++i) {
    const Dim d = order[i];
    const size_t f = factor_of(l, d);
    if (relevant(d, t)) seen_relevant = true;
    if (seen_relevant) mult *= f;
  }
  return mult;
}

}  // namespace

std::string Mapping::to_string() const {
  std::ostringstream os;
  os << "spatial[e=" << e << " ms=" << ms << " cs=" << cs << "]"
     << " rf[m=" << t0.m << " c=" << t0.c << " q=" << t0.q << " n=" << t0.n
     << "]"
     << " gb[m=" << t1.m << " c=" << t1.c << " p=" << t1.p << " q=" << t1.q
     << " n=" << t1.n << "]"
     << " dram[m=" << t2.m << " c=" << t2.c << " p=" << t2.p << " q=" << t2.q
     << " n=" << t2.n << "]";
  return os.str();
}

bool mapping_valid(const ConvWorkload& w, const EyerissConfig& arch,
                   const Mapping& map) {
  if (map.t0.p != 1) return false;
  // Array geometry: a set occupies R rows x e columns; ms*cs sets must pack.
  if (w.r > arch.pe_rows || map.e > arch.pe_cols) return false;
  const size_t sets_max =
      (arch.pe_rows / w.r) * (arch.pe_cols / map.e);
  if (map.ms * map.cs > sets_max) return false;

  // Coverage of every dimension.
  if (map.covered_m() < w.m || map.covered_c() < w.c ||
      map.covered_p() < w.p || map.covered_q() < w.q ||
      map.covered_n() < w.n)
    return false;

  // RF capacity per PE: one filter row (S wide) per (t0.c, t0.m), one ifmap
  // row segment, one psum row segment.
  const size_t w_rf = w.s * map.t0.c * map.t0.m;
  const size_t if_rf =
      map.t0.n * map.t0.c * ((map.t0.q - 1) * w.stride + w.s);
  const size_t of_rf = map.t0.n * map.t0.m * map.t0.q;
  if (w_rf + if_rf + of_rf > arch.rf_words_per_pe) return false;

  // GB capacity: ifmap tile + ofmap tile (weights bypass the GB).
  const size_t m_gb = map.ms * map.t0.m * map.t1.m;
  const size_t c_gb = map.cs * map.t0.c * map.t1.c;
  const size_t p_gb = map.e * map.t1.p;
  const size_t q_gb = map.t0.q * map.t1.q;
  const size_t n_gb = map.t0.n * map.t1.n;
  const unsigned long long if_gb = static_cast<unsigned long long>(n_gb) *
                                   c_gb * ((p_gb - 1) * w.stride + w.r) *
                                   ((q_gb - 1) * w.stride + w.s);
  const unsigned long long of_gb =
      static_cast<unsigned long long>(n_gb) * m_gb * p_gb * q_gb;
  if (if_gb + of_gb > arch.gb_words) return false;
  return true;
}

LayerEval evaluate_mapping(const ConvWorkload& w, const EyerissConfig& arch,
                           const Mapping& map) {
  LayerEval ev;
  ev.name = w.name;
  ev.mapping = map;
  if (!mapping_valid(w, arch, map)) return ev;
  ev.valid = true;

  // ---- Tile sizes. ----
  // Array tile: union of all PE-resident data across the spatial extent.
  const unsigned long long w_arr = static_cast<unsigned long long>(w.r) *
                                   w.s * (map.cs * map.t0.c) *
                                   (map.ms * map.t0.m);
  const size_t h_arr = (map.e - 1) * w.stride + w.r;
  const size_t w_row = (map.t0.q - 1) * w.stride + w.s;
  const unsigned long long if_arr = static_cast<unsigned long long>(map.t0.n) *
                                    (map.cs * map.t0.c) * h_arr * w_row;
  const unsigned long long of_arr = static_cast<unsigned long long>(map.t0.n) *
                                    (map.ms * map.t0.m) * map.e * map.t0.q;

  // GB tile (ifmap / ofmap only).
  const size_t c_gb = map.cs * map.t0.c * map.t1.c;
  const size_t p_gb = map.e * map.t1.p;
  const size_t q_gb = map.t0.q * map.t1.q;
  const size_t n_gb = map.t0.n * map.t1.n;
  const unsigned long long if_gb = static_cast<unsigned long long>(n_gb) *
                                   c_gb * ((p_gb - 1) * w.stride + w.r) *
                                   ((q_gb - 1) * w.stride + w.s);

  // ---- Refetch counts. ----
  const unsigned long long fills_arr_w =
      refetch(map.t1, kGbOrder, Dt::kWeight) *
      refetch(map.t2, kDramOrder, Dt::kWeight);
  const unsigned long long fills_arr_if =
      refetch(map.t1, kGbOrder, Dt::kIfmap) *
      refetch(map.t2, kDramOrder, Dt::kIfmap);
  const unsigned long long fills_arr_of =
      refetch(map.t1, kGbOrder, Dt::kOfmap) *
      refetch(map.t2, kDramOrder, Dt::kOfmap);
  const unsigned long long fills_gb_if =
      refetch(map.t2, kDramOrder, Dt::kIfmap);

  // ---- DRAM traffic (words). ----
  // Weights bypass the GB: every array fill streams them from DRAM.
  const unsigned long long dram_w = fills_arr_w * w_arr;
  const unsigned long long dram_if = fills_gb_if * if_gb;
  // Ofmaps: written once; if C is tiled at the DRAM level the partial sums
  // spill and are re-read + re-written per extra C pass.
  const unsigned long long of_total = w.ofmap_words();
  const unsigned long long dram_of =
      (map.t2.c > 1) ? of_total * (2 * map.t2.c - 1) : of_total;
  ev.dram_words = dram_w + dram_if + dram_of;

  // ---- GB traffic (words). ----
  const unsigned long long gb_if_fill = fills_gb_if * if_gb;  // DRAM -> GB
  const unsigned long long gb_if_read = fills_arr_if * if_arr;  // GB -> array
  const unsigned long long gb_of_acc = 2ull * fills_arr_of * of_arr;
  const unsigned long long gb_of_drain = dram_of;
  ev.gb_words = gb_if_fill + gb_if_read + gb_of_acc + gb_of_drain;

  // ---- Register-level traffic. ----
  // Latency accounts for the rounding waste of imperfect factorizations
  // (idle PE slots still take cycles); energy counts only algorithmic MACs
  // (idle PEs are clock-gated — Timeloop's convention).
  const unsigned long long modeled_macs =
      static_cast<unsigned long long>(map.covered_m()) * map.covered_c() *
      map.covered_p() * map.covered_q() * map.covered_n() * w.r * w.s;
  // Per MAC: ifmap read, weight read, psum read + write.
  const double rf_accesses = 4.0 * static_cast<double>(w.macs());
  // Inter-PE / array-ingress traffic crosses the NoC once per word.
  const double noc_words = static_cast<double>(gb_if_read) +
                           static_cast<double>(dram_w) +
                           static_cast<double>(gb_of_acc);

  // ---- Energy (normalized to one RF read). ----
  ev.e_rf = rf_accesses * arch.e_rf + noc_words * arch.e_noc;
  ev.e_gb = static_cast<double>(ev.gb_words) * arch.e_gb;
  ev.e_dram = static_cast<double>(ev.dram_words) * arch.e_dram;

  // ---- Latency. ----
  const size_t used = map.used_pes(w);
  const double compute_cycles =
      static_cast<double>(modeled_macs) / static_cast<double>(used);
  const double dram_cycles =
      static_cast<double>(ev.dram_words) / arch.dram_bw;
  const double gb_cycles = static_cast<double>(ev.gb_words) / arch.gb_bw;
  ev.cycles = std::max({compute_cycles, dram_cycles, gb_cycles});
  ev.utilization =
      static_cast<double>(used) / static_cast<double>(arch.num_pes());
  return ev;
}

}  // namespace alf
