// Shared infrastructure for the experiment harnesses (one binary per paper
// table/figure).
//
// Every harness runs at a reduced default scale so the whole suite finishes
// in minutes on a laptop-class single core (see EXPERIMENTS.md for the
// scaled-vs-paper hyper-parameter mapping). Flags:
//   --quick   even smaller (CI smoke run)
//   --full    closer to paper scale (minutes -> hours)
// Params/OPs columns are ALWAYS computed on the full-scale architecture via
// the analytic cost models; only *training* runs are scaled.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "alf/deploy.hpp"
#include "alf/trainer.hpp"
#include "core/check.hpp"
#include "core/table.hpp"
#include "models/cost.hpp"
#include "models/zoo.hpp"

namespace alf::bench {

// ---------------------------------------------------------------------------
// Machine-readable benchmark emission (--json <path>). Every harness prints
// human tables; with --json it additionally writes a BENCH_*.json record so
// the perf trajectory is diffable per-PR (see ROADMAP).
// ---------------------------------------------------------------------------

/// Escapes `s` for embedding inside a JSON string literal: `"` and `\`
/// get a backslash, common control characters use their short forms, and
/// the rest of C0 is emitted as \u00XX. Every string field of BenchJson
/// goes through this — row names carry free-form config descriptions
/// (quotes included), and an unescaped one would corrupt the BENCH_*.json
/// trajectory record.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Nearest-rank percentile of the sample `v`, p in [0, 1]: the smallest
/// element such that at least ceil(p * n) values are <= it (p = 0 gives the
/// minimum, p = 1 the maximum). Shared by serve_latency and the serve load
/// generator; takes the sample by value and sorts the copy.
inline double percentile(std::vector<double> v, double p) {
  ALF_CHECK(!v.empty()) << "percentile of an empty sample";
  ALF_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  std::sort(v.begin(), v.end());
  size_t rank =
      static_cast<size_t>(std::ceil(p * static_cast<double>(v.size())));
  if (rank == 0) rank = 1;
  return v[std::min(v.size(), rank) - 1];
}

/// Uniform [-1, 1) input tensor — the stand-in image batch every engine
/// and serving harness replays.
inline Tensor random_input(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// Runs a few training-mode forwards so BatchNorm running statistics move
/// off their (0, 1) initialization — BN folding is trivial otherwise.
inline void warm_bn(Sequential& model, size_t in_c, size_t hw, Rng& rng,
                    int passes = 2, size_t batch = 8) {
  for (int p = 0; p < passes; ++p) {
    Tensor x = random_input({batch, in_c, hw, hw}, rng);
    model.forward(x, /*train=*/true);
  }
}

/// One benchmark measurement. NaN columns are omitted from the JSON.
struct BenchRow {
  std::string name;
  double wall_ms = std::nan("");
  double gmadds_per_s = std::nan("");
  double accuracy = std::nan("");     ///< fraction in [0, 1]
  double compression = std::nan("");  ///< remaining-parameter fraction
  std::map<std::string, double> extra;
  /// Free-form string annotations (CPU features, backend names, ...);
  /// emitted as JSON string fields alongside the numeric extras.
  std::map<std::string, std::string> extra_str;
};

/// Collects rows and writes `{"bench":..., "scale":..., "rows":[...]}`.
class BenchJson {
 public:
  BenchJson(std::string bench, std::string scale)
      : bench_(std::move(bench)), scale_(std::move(scale)) {}

  /// Appends a row and returns it for field assignment.
  BenchRow& row(std::string name) {
    rows_.push_back(BenchRow{});
    rows_.back().name = std::move(name);
    return rows_.back();
  }

  bool empty() const { return rows_.empty(); }

  /// Writes the JSON file; returns false on I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\"bench\": \"%s\", \"scale\": \"%s\", \"rows\": [",
                 json_escape(bench_).c_str(), json_escape(scale_).c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const BenchRow& r = rows_[i];
      std::fprintf(f, "%s\n  {\"name\": \"%s\"", i == 0 ? "" : ",",
                   json_escape(r.name).c_str());
      const auto field = [f](const std::string& key, double v) {
        if (!std::isnan(v))
          std::fprintf(f, ", \"%s\": %.6g", json_escape(key).c_str(), v);
      };
      field("wall_ms", r.wall_ms);
      field("gmadds_per_s", r.gmadds_per_s);
      field("accuracy", r.accuracy);
      field("compression", r.compression);
      for (const auto& [key, v] : r.extra) field(key, v);
      for (const auto& [key, v] : r.extra_str)
        std::fprintf(f, ", \"%s\": \"%s\"", json_escape(key).c_str(),
                     json_escape(v).c_str());
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::string bench_, scale_;
  std::vector<BenchRow> rows_;
};

/// Returns the value of `--json <path>` (empty if absent).
inline std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  return "";
}

/// Like parse_json_path, but also removes the flag pair from argv — needed
/// by bench_micro, whose remaining flags go to google-benchmark.
inline std::string take_json_flag(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return "";
}

/// Experiment scale selected by command-line flags.
struct Scale {
  const char* name = "default";
  size_t train_n = 512;
  size_t test_n = 256;
  size_t hw = 16;          ///< training resolution (paper: 32)
  size_t width = 8;        ///< base width of the CIFAR models (paper: 16)
  size_t epochs = 24;
  size_t batch = 32;
  size_t sweep_train_n = 256;  ///< smaller set for many-config sweeps
  size_t sweep_epochs = 8;
  size_t ae_steps = 2;       ///< autoencoder steps per task step
  float lr_ae = 1e-3f;       ///< autoencoder lr (paper value)
  float lr_mask_mult = 80.0f;  ///< mask-lr multiplier (scaled schedule)
  float threshold = 0.15f;   ///< scaled clipping threshold (paper: 1e-4)
  float pr_max = 0.62f;      ///< scaled pruning ceiling (paper: 0.85)
  size_t mask_warmup = 64;   ///< AE steps before mask updates begin
};

inline Scale parse_scale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s.name = "quick";
      s.train_n = 256;
      s.test_n = 128;
      s.epochs = 10;
      s.sweep_train_n = 128;
      s.sweep_epochs = 4;
      // Few optimizer steps: compensate with a faster mask descent so the
      // pruning equilibrium is still reached.
      s.lr_mask_mult = 200.0f;
      s.mask_warmup = 24;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      s.name = "full";
      s.train_n = 2048;
      s.test_n = 512;
      s.hw = 32;
      s.width = 16;
      s.epochs = 48;
      s.sweep_train_n = 1024;
      s.sweep_epochs = 16;
      s.lr_mask_mult = 40.0f;
      s.threshold = 0.1f;
      s.pr_max = 0.7f;
      s.mask_warmup = 256;
    }
  }
  return s;
}

/// The CIFAR-10 substitute at the selected resolution.
inline DataConfig cifar_task(const Scale& s) {
  DataConfig cfg = DataConfig::cifar_like();
  cfg.height = cfg.width = s.hw;
  cfg.max_shift = static_cast<int>(s.hw / 16);
  return cfg;
}

/// The ImageNet substitute (more classes) at the selected resolution.
inline DataConfig imagenet_task(const Scale& s) {
  DataConfig cfg = DataConfig::imagenet_like();
  cfg.height = cfg.width = s.hw;
  cfg.max_shift = static_cast<int>(s.hw / 16);
  return cfg;
}

/// ALF hyper-parameters at the selected scale (paper defaults otherwise).
/// Near-identity autoencoder init keeps the STE a descent direction (see
/// DESIGN.md "STE validity"); the Fig. 2b harness sweeps the paper's
/// rand/he/xavier alternatives explicitly.
inline AlfConfig alf_config(const Scale& s) {
  AlfConfig cfg;
  cfg.lr_ae = s.lr_ae;
  cfg.lr_mask_mult = s.lr_mask_mult;
  cfg.threshold = s.threshold;
  cfg.pr_max = s.pr_max;
  cfg.mask_warmup_steps = s.mask_warmup;
  cfg.wae_init = Init::kIdentity;
  return cfg;
}

/// Task-training hyper-parameters at the selected scale.
inline TrainConfig train_config(const Scale& s, uint64_t seed = 7) {
  TrainConfig cfg;
  cfg.epochs = s.epochs;
  cfg.batch_size = s.batch;
  cfg.task.lr = 0.05f;
  cfg.lr_milestones = {s.epochs / 2, (3 * s.epochs) / 4};
  cfg.ae_steps_per_batch = s.ae_steps;
  cfg.seed = seed;
  return cfg;
}

/// Per-layer remaining-filter fractions keyed by conv name.
inline std::map<std::string, double> fractions_by_name(
    const std::vector<AlfConv*>& blocks) {
  std::map<std::string, double> out;
  for (AlfConv* b : blocks) out[b->name()] = b->remaining_fraction();
  return out;
}

/// Keep fractions for baseline pruning keyed by conv name.
inline std::map<std::string, double> keep_by_name(
    const std::vector<Conv2d*>& convs, const std::vector<double>& fracs) {
  std::map<std::string, double> out;
  for (size_t i = 0; i < convs.size(); ++i) out[convs[i]->name()] = fracs[i];
  return out;
}

/// Signed " (+N%)"/" (-N%)" delta-vs-baseline suffix shared by params_cell
/// and ops_cell. Negative is the compression direction (value < base); a
/// model that *grew* past baseline reports "(+N%)", not "(--N%)".
inline std::string delta_suffix(double value, double base) {
  const double delta = 100.0 * (value / base - 1.0);
  return std::string(" (") + (delta < 0.0 ? "-" : "+") +
         Table::fmt(std::abs(delta), 0) + "%)";
}

/// "0.07M (-70%)"-style cell.
inline std::string params_cell(unsigned long long params,
                               unsigned long long base) {
  std::string cell = Table::fmt(params / 1e6, 2) + "M";
  if (base != 0 && params != base)
    cell += delta_suffix(static_cast<double>(params),
                         static_cast<double>(base));
  return cell;
}

/// "31.5 (-61%)"-style OPs cell in millions.
inline std::string ops_cell(unsigned long long ops, unsigned long long base) {
  std::string cell = Table::fmt(ops / 1e6, 1);
  if (base != 0 && ops != base)
    cell += delta_suffix(static_cast<double>(ops), static_cast<double>(base));
  return cell;
}

}  // namespace alf::bench
