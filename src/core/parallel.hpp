// Deterministic data-parallel helper.
//
// parallel_for splits [begin, end) into contiguous chunks, one per worker.
// Each index is processed by exactly one thread, so elementwise writes are
// race-free and results are bit-identical regardless of thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace alf {

/// Number of worker threads used by parallel_for (defaults to hardware
/// concurrency, capped at 16). Thread-safe to read; set once at startup.
int parallel_threads();

/// Override the worker count (0 restores the default). Intended for tests.
void set_parallel_threads(int n);

/// True while the calling thread is inside a parallel region (pool worker
/// or dispatching caller). Kernels use this to skip the dispatch machinery
/// (std::function construction, chunk math) and run inline: nested regions
/// run inline anyway, so the round trip is pure overhead.
bool in_parallel_region();

/// RAII: marks the calling thread as already inside a parallel region for
/// the guard's lifetime, so every parallel_for it issues runs inline on
/// this thread instead of entering the shared pool. This is how a serving
/// worker pool turns K concurrent batches into K-way *inter*-batch
/// parallelism: without the guard the workers' engine runs would all
/// serialize on the pool's one-job-at-a-time dispatch. Results are
/// unchanged — chunk grids are fixed at compile time and every backend's
/// accumulation order is thread-partition-independent — only the thread
/// that executes each chunk differs. Nestable; restores the previous state
/// on destruction.
class InlineExecutionGuard {
 public:
  InlineExecutionGuard();
  ~InlineExecutionGuard();
  InlineExecutionGuard(const InlineExecutionGuard&) = delete;
  InlineExecutionGuard& operator=(const InlineExecutionGuard&) = delete;

 private:
  bool prev_;
};

/// Runs fn(i) for every i in [begin, end), split into contiguous chunks
/// across workers. Falls back to serial execution for small ranges.
/// fn must not throw; exceptions escaping fn terminate the program.
void parallel_for(size_t begin, size_t end,
                  const std::function<void(size_t)>& fn);

/// Chunked variant: fn(chunk_begin, chunk_end) per worker. Lower overhead
/// for tight loops since fn amortizes call cost over the whole chunk.
/// `min_per_worker` is the serial cutoff: ranges smaller than this run
/// inline. Pass 1 for coarse-grained items (e.g. images of a batch).
/// fn must not throw; exceptions escaping fn terminate the program.
void parallel_for_chunked(size_t begin, size_t end,
                          const std::function<void(size_t, size_t)>& fn,
                          size_t min_per_worker = 256);

}  // namespace alf
