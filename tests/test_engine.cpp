// Plan-based inference engine: numerical equivalence with the layer tree,
// determinism across thread counts, arena reuse (including a global
// operator-new counter proving single-chunk runs allocate nothing), and BN
// folding.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "alf/deploy.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "engine/engine.hpp"
#include "grad_check.hpp"
#include "kernels/backend.hpp"
#include "models/zoo.hpp"

// Heap instrumentation for Engine::run's zero-allocation contract. The
// replacement operators serve the whole test binary; counting is gated so
// only the probed region pays attention.
namespace {
std::atomic<size_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched pair;
// the replacement set below is complete and malloc/free-consistent.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t sz) {
  if (g_alloc_tracking.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(sz ? sz : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz) { return operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace alf {
namespace {

using testing::random_input;

/// Runs a few training-mode forwards so BatchNorm running statistics move
/// away from their (0, 1) initialization — otherwise BN folding is trivial.
void warm_bn(Sequential& model, size_t in_c, size_t hw, Rng& rng) {
  for (int pass = 0; pass < 3; ++pass) {
    Tensor x = random_input({4, in_c, hw, hw}, rng);
    model.forward(x, /*train=*/true);
  }
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(same_shape(a, b));
  float m = 0.0f;
  for (size_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::abs(a.at(i) - b.at(i)));
  return m;
}

constexpr size_t kHw = 16;
constexpr float kTol = 1e-5f;

TEST(Engine, ResNet20MatchesLayerTree) {
  Rng rng(31);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);

  Tensor x = random_input({5, mc.in_channels, kHw, kHw}, rng);
  const Tensor ref = model->forward(x, /*train=*/false);

  Engine eng = Engine::compile(*model, /*batch=*/8, mc.in_channels, kHw, kHw);
  EXPECT_EQ(eng.classes(), mc.classes);
  Tensor out({5, mc.classes});
  eng.run(x, out);
  EXPECT_LT(max_abs_diff(ref, out), kTol);

  // BN is folded and every ReLU rides a kernel epilogue: the compiled plan
  // contains no standalone normalization or activation steps.
  for (const Step& st : eng.steps()) {
    EXPECT_NE(st.kind, OpKind::kScaleShift) << st.name;
    EXPECT_NE(st.kind, OpKind::kActivation) << st.name;
  }
}

TEST(Engine, Plain20MatchesLayerTree) {
  Rng rng(32);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_plain20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);

  Tensor x = random_input({4, mc.in_channels, kHw, kHw}, rng);
  const Tensor ref = model->forward(x, /*train=*/false);
  Engine eng = Engine::compile(*model, 4, mc.in_channels, kHw, kHw);
  Tensor out = eng.run(x);
  EXPECT_LT(max_abs_diff(ref, out), kTol);
}

TEST(Engine, AlfDeployedModelMatchesEvalForward) {
  Rng rng(33);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  AlfConfig acfg;
  std::vector<AlfConv*> blocks;
  auto model =
      build_resnet20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
  ASSERT_FALSE(blocks.empty());
  // Force a nontrivial pruning pattern: clip a third of each block's mask
  // below the threshold so the deployed code conv really shrinks.
  for (AlfConv* b : blocks)
    for (size_t i = 0; i < b->mask().numel(); i += 3) b->mask().at(i) = 0.0f;
  for (AlfConv* b : blocks) EXPECT_GT(b->zero_filters(), size_t{0});
  warm_bn(*model, mc.in_channels, kHw, rng);

  Tensor x = random_input({3, mc.in_channels, kHw, kHw}, rng);
  const Tensor ref = model->forward(x, /*train=*/false);
  Engine eng = compile_deployed(*model, /*batch=*/4, mc.in_channels, kHw);
  Tensor out = eng.run(x);
  EXPECT_LT(max_abs_diff(ref, out), kTol);

  // The plan contains the lowered dense pair per ALF block.
  size_t code_steps = 0, exp_steps = 0;
  for (const Step& st : eng.steps()) {
    if (st.name.find("_code") != std::string::npos) ++code_steps;
    if (st.name.find("_exp") != std::string::npos) ++exp_steps;
  }
  EXPECT_EQ(code_steps, blocks.size());
  EXPECT_EQ(exp_steps, blocks.size());
}

TEST(Engine, BitIdenticalAcrossThreadCounts) {
  Rng rng(34);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  Tensor x = random_input({6, mc.in_channels, kHw, kHw}, rng);

  set_parallel_threads(4);
  Engine eng = Engine::compile(*model, 6, mc.in_channels, kHw, kHw);
  Tensor out4 = eng.run(x);
  set_parallel_threads(1);
  Tensor out1 = eng.run(x);
  // A plan compiled under a different thread setting partitions the batch
  // differently but must still produce the same bits per element.
  Engine eng1 = Engine::compile(*model, 6, mc.in_channels, kHw, kHw);
  Tensor out1c = eng1.run(x);
  set_parallel_threads(0);

  for (size_t i = 0; i < out4.numel(); ++i) {
    EXPECT_EQ(out4.at(i), out1.at(i)) << i;
    EXPECT_EQ(out4.at(i), out1c.at(i)) << i;
  }
}

TEST(Engine, RepeatedRunsReuseArenaWithNoGrowth) {
  Rng rng(35);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  Engine eng = Engine::compile(*model, 4, mc.in_channels, kHw, kHw);

  const float* arena = eng.workspace_data();
  const size_t floats = eng.workspace_floats();
  ASSERT_GT(floats, size_t{0});

  Tensor x = random_input({4, mc.in_channels, kHw, kHw}, rng);
  Tensor first = eng.run(x);
  for (int i = 0; i < 3; ++i) {
    Tensor again = eng.run(x);
    for (size_t j = 0; j < first.numel(); ++j)
      EXPECT_EQ(first.at(j), again.at(j));
    EXPECT_EQ(eng.workspace_data(), arena);
    EXPECT_EQ(eng.workspace_floats(), floats);
  }
}

TEST(Engine, SharedPlanAcrossEnginesIsBitIdenticalAndNotDuplicated) {
  // The Plan/ExecContext split: two engines built from ONE compiled plan
  // must (a) share the immutable plan object (same steps storage, no
  // weight duplication), (b) own distinct arenas, and (c) produce the
  // same bits as the engine that compiled it.
  Rng rng(45);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);

  Engine original = Engine::compile(*model, 4, mc.in_channels, kHw, kHw);
  Engine alias_a(original.plan());
  Engine alias_b(original.plan());
  EXPECT_EQ(&alias_a.steps(), &original.steps());  // shared, not copied
  EXPECT_EQ(alias_a.plan().get(), alias_b.plan().get());
  EXPECT_NE(alias_a.workspace_data(), alias_b.workspace_data());
  EXPECT_EQ(alias_a.workspace_floats(), alias_b.workspace_floats());
  EXPECT_EQ(alias_a.workspace_floats(), original.plan()->workspace_floats());

  Tensor x = random_input({4, mc.in_channels, kHw, kHw}, rng);
  const Tensor want = original.run(x);
  const Tensor got_a = alias_a.run(x);
  const Tensor got_b = alias_b.run(x);
  for (size_t i = 0; i < want.numel(); ++i) {
    EXPECT_EQ(want.at(i), got_a.at(i)) << i;
    EXPECT_EQ(want.at(i), got_b.at(i)) << i;
  }
}

TEST(Engine, SharedPlanOutlivesTheCompilingEngine) {
  // A served model's lifetime is the Plan's, not any one engine's: the
  // compiling Engine may be destroyed while contexts on its plan live on.
  Rng rng(46);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);

  Tensor x = random_input({2, mc.in_channels, kHw, kHw}, rng);
  std::shared_ptr<const Plan> plan;
  Tensor want;
  {
    Engine compiler_engine =
        Engine::compile(*model, 2, mc.in_channels, kHw, kHw);
    plan = compiler_engine.plan();
    want = compiler_engine.run(x);
  }  // compiling engine (and its context) destroyed here
  ExecContext ctx(plan);
  const Tensor got = ctx.run(x);
  for (size_t i = 0; i < want.numel(); ++i) EXPECT_EQ(want.at(i), got.at(i));
}

TEST(Engine, SmallerBatchesRunOnTheSamePlan) {
  Rng rng(36);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  Engine eng = Engine::compile(*model, 8, mc.in_channels, kHw, kHw);

  for (size_t n : {size_t{1}, size_t{3}, size_t{8}}) {
    Tensor x = random_input({n, mc.in_channels, kHw, kHw}, rng);
    const Tensor ref = model->forward(x, false);
    EXPECT_LT(max_abs_diff(ref, eng.run(x)), kTol) << "batch " << n;
  }
  Tensor too_big = random_input({9, mc.in_channels, kHw, kHw}, rng);
  EXPECT_THROW(eng.run(too_big), CheckError);
}

TEST(Engine, PartialBatchesBitIdenticalToExactlySizedPlan) {
  // A partial batch on a big-batch plan (the BatchServer's steady state)
  // must produce the same bits as a plan compiled exactly for that n —
  // including n == 1 and n == batch-1, where the compile-time chunk grid
  // of the two plans differs the most.
  Rng rng(43);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);

  for (const int threads : {1, 4}) {
    set_parallel_threads(threads);
    Engine big = Engine::compile(*model, 8, mc.in_channels, kHw, kHw);
    for (const size_t n : {size_t{1}, size_t{7}, size_t{8}}) {
      Engine exact = Engine::compile(*model, n, mc.in_channels, kHw, kHw);
      Tensor x = random_input({n, mc.in_channels, kHw, kHw}, rng);
      const Tensor from_big = big.run(x);
      const Tensor from_exact = exact.run(x);
      ASSERT_TRUE(same_shape(from_big, from_exact));
      for (size_t i = 0; i < from_big.numel(); ++i)
        EXPECT_EQ(from_big.at(i), from_exact.at(i))
            << "threads " << threads << " n " << n << " elem " << i;
    }
  }
  set_parallel_threads(0);
}

TEST(Engine, MisShapedOutputTensorFailsLoudly) {
  // A wrong caller-provided `out` must throw before anything is written —
  // silently scribbling past a too-small buffer is the failure mode the
  // row-packed serving path cannot afford.
  Rng rng(44);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  Engine eng = Engine::compile(*model, 4, mc.in_channels, kHw, kHw);
  Tensor x = random_input({3, mc.in_channels, kHw, kHw}, rng);

  Tensor wrong_rows({2, eng.classes()});
  EXPECT_THROW(eng.run(x, wrong_rows), CheckError);
  Tensor wrong_cols({3, eng.classes() + 1});
  EXPECT_THROW(eng.run(x, wrong_cols), CheckError);
  Tensor wrong_rank({3 * eng.classes()});
  EXPECT_THROW(eng.run(x, wrong_rank), CheckError);

  Tensor ok({3, eng.classes()});
  EXPECT_NO_THROW(eng.run(x, ok));
}

TEST(Engine, BnFoldingMatchesUnfusedBn) {
  Rng rng(37);
  BatchNorm2d bn("bn", 6);
  // Move gamma/beta and the running stats off their initialization.
  for (size_t c = 0; c < 6; ++c) {
    bn.gamma().value.at(c) = 0.5f + 0.2f * static_cast<float>(c);
    bn.beta().value.at(c) = -0.3f + 0.1f * static_cast<float>(c);
    bn.mutable_running_mean().at(c) = 0.2f * static_cast<float>(c) - 0.5f;
    bn.mutable_running_var().at(c) = 0.5f + 0.3f * static_cast<float>(c);
  }
  Tensor x = random_input({2, 6, 5, 5}, rng);
  const Tensor ref = bn.forward(x, /*train=*/false);

  Tensor scale, shift;
  bn_fold_scale_shift(bn, scale, shift);
  float max_err = 0.0f;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t c = 0; c < 6; ++c) {
      for (size_t j = 0; j < 25; ++j) {
        const size_t idx = (i * 6 + c) * 25 + j;
        const float folded = x.at(idx) * scale.at(c) + shift.at(c);
        max_err = std::max(max_err, std::abs(folded - ref.at(idx)));
      }
    }
  }
  EXPECT_LT(max_err, kTol);
}

TEST(Engine, MaxPoolAndScaleShiftStepsLower) {
  // A topology the zoo does not cover: BN with no preceding conv (emits a
  // kScaleShift step) and a max-pool stage.
  Rng rng(38);
  auto model = std::make_unique<Sequential>("toy");
  model->emplace<BatchNorm2d>("bn0", 3);
  model->emplace<Conv2d>("c1", 3, 4, 3, 1, 1, Init::kHe, rng);
  model->emplace<BatchNorm2d>("c1_bn", 4);
  model->emplace<Activation>("c1_relu", Act::kRelu);
  model->emplace<MaxPool2d>("pool", 2);
  model->emplace<Flatten>("flatten");
  model->emplace<Linear>("fc", 4 * 8 * 8, 7, Init::kHe, rng);
  warm_bn(*model, 3, kHw, rng);

  Tensor x = random_input({3, 3, kHw, kHw}, rng);
  const Tensor ref = model->forward(x, false);
  Engine eng = Engine::compile(*model, 3, 3, kHw, kHw);
  Tensor out = eng.run(x);
  EXPECT_LT(max_abs_diff(ref, out), kTol);

  bool has_scale_shift = false, has_maxpool = false;
  for (const Step& st : eng.steps()) {
    has_scale_shift |= st.kind == OpKind::kScaleShift;
    has_maxpool |= st.kind == OpKind::kMaxPool;
  }
  EXPECT_TRUE(has_scale_shift);
  EXPECT_TRUE(has_maxpool);
}

TEST(Engine, PreActivationResidualBodyDoesNotFuseAcrossBlockInput) {
  // The body starts with BN + ReLU (pre-activation style): folding that BN
  // into the conv *before* the block would corrupt the tensor the identity
  // shortcut reads. The compiler's fusion fence must keep them separate.
  Rng rng(41);
  const size_t c = 6;
  auto model = std::make_unique<Sequential>("preact");
  model->emplace<Conv2d>("stem", 3, c, 3, 1, 1, Init::kHe, rng);
  auto body = std::make_unique<Sequential>("body");
  body->emplace<BatchNorm2d>("body_bn", c);
  body->emplace<Activation>("body_relu", Act::kRelu);
  body->emplace<Conv2d>("body_conv", c, c, 3, 1, 1, Init::kHe, rng);
  model->emplace<ResidualBlock>("block", std::move(body), nullptr);
  warm_bn(*model, 3, kHw, rng);

  Tensor x = random_input({2, 3, kHw, kHw}, rng);
  const Tensor ref = model->forward(x, /*train=*/false);
  Engine eng = Engine::compile(*model, 2, 3, kHw, kHw);
  // ref is [N, C, H, W]; the engine reports the final buffer as classes.
  Tensor out({2, eng.classes()});
  eng.run(x, out);
  float max_err = 0.0f;
  for (size_t i = 0; i < ref.numel(); ++i)
    max_err = std::max(max_err, std::abs(ref.at(i) - out.at(i)));
  EXPECT_LT(max_err, kTol);
}

TEST(Engine, SingleChunkRunPerformsZeroHeapAllocations) {
  Rng rng(42);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  set_parallel_threads(1);  // single-chunk partition at compile
  Engine eng = Engine::compile(*model, 8, mc.in_channels, kHw, kHw);
  Tensor x = random_input({8, mc.in_channels, kHw, kHw}, rng);
  Tensor out({8, eng.classes()});
  eng.run(x, out);  // warm

  g_alloc_count.store(0);
  g_alloc_tracking.store(true);
  eng.run(x, out);
  g_alloc_tracking.store(false);
  set_parallel_threads(0);
  EXPECT_EQ(g_alloc_count.load(), size_t{0});
}

TEST(Engine, PlanStrNamesEveryStep) {
  Rng rng(39);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  Engine eng = Engine::compile(*model, 2, mc.in_channels, kHw, kHw);
  const std::string plan = eng.plan_str();
  EXPECT_NE(plan.find("conv1"), std::string::npos);
  EXPECT_NE(plan.find("fc"), std::string::npos);
  EXPECT_EQ(eng.steps().front().name.rfind("conv1", 0), size_t{0});
}

TEST(Engine, ExplicitBackendSelectionAtCompileTime) {
  Rng rng(41);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  Tensor x = random_input({4, mc.in_channels, kHw, kHw}, rng);

  Engine scalar_eng =
      Engine::compile(*model, 4, mc.in_channels, kHw, kHw,
                      {.backend = "scalar", .bits = 8, .name = ""});
  EXPECT_STREQ(scalar_eng.backend_name(), "scalar");
  EXPECT_FALSE(scalar_eng.quantized());
  const Tensor ref = scalar_eng.run(x);

  if (kernels::find_backend("simd") != nullptr) {
    Engine simd_eng =
        Engine::compile(*model, 4, mc.in_channels, kHw, kHw,
                        {.backend = "simd", .bits = 8, .name = ""});
    EXPECT_STREQ(simd_eng.backend_name(), "simd");
    const Tensor got = simd_eng.run(x);
    // Different float kernels, same math: agreement to a loose epsilon.
    EXPECT_LE(max_abs_diff(ref, got), 1e-3f);
  }

  EXPECT_THROW(
      Engine::compile(*model, 4, mc.in_channels, kHw, kHw,
                      {.backend = "no-such-backend", .bits = 8, .name = ""}),
      CheckError);
}

TEST(Engine, Int8PlanLowersConvAndLinearToQgemm) {
  Rng rng(43);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  Engine eng = Engine::compile(*model, 4, mc.in_channels, kHw, kHw,
                               {.backend = "int8", .bits = 8, .name = ""});
  EXPECT_TRUE(eng.quantized());
  EXPECT_STREQ(eng.backend_name(), "int8");
  size_t quantized_steps = 0;
  for (const Step& st : eng.steps()) {
    if (st.kind == OpKind::kConv || st.kind == OpKind::kLinear) {
      EXPECT_TRUE(st.quantized) << st.name;
      EXPECT_FALSE(st.shift_gemm) << st.name;  // im2col path only
      const size_t rows = st.kind == OpKind::kConv ? st.out_c
                                                   : st.out_features;
      const size_t cols = st.kind == OpKind::kConv ? st.geom.col_rows()
                                                   : st.in_features;
      EXPECT_EQ(st.qw.size(), rows * cols) << st.name;
      ASSERT_EQ(st.qw_scales.size(), rows) << st.name;
      for (const float sc : st.qw_scales) EXPECT_GT(sc, 0.0f) << st.name;
      // The float weights are released — the plan carries int8 only.
      EXPECT_TRUE(st.w.empty()) << st.name;
      ++quantized_steps;
    } else {
      EXPECT_FALSE(st.quantized) << st.name;
    }
  }
  EXPECT_GE(quantized_steps, size_t{20});  // 19+ convs and the FC head
  EXPECT_NE(eng.plan_str().find("qgemm-int8"), std::string::npos);
}

TEST(Engine, Int8EngineAgreesWithFloatEngineOnTop1) {
  Rng rng(45);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  const size_t n = 32;
  Tensor x = random_input({n, mc.in_channels, kHw, kHw}, rng);

  Engine fp = Engine::compile(*model, n, mc.in_channels, kHw, kHw);
  Engine q8 = Engine::compile(*model, n, mc.in_channels, kHw, kHw,
                              {.backend = "int8", .bits = 8, .name = ""});
  const Tensor ref = fp.run(x);
  const Tensor got = q8.run(x);
  size_t agree = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t ra = 0, ga = 0;
    for (size_t c = 1; c < fp.classes(); ++c) {
      if (ref.at(i, c) > ref.at(i, ra)) ra = c;
      if (got.at(i, c) > got.at(i, ga)) ga = c;
    }
    if (ra == ga) ++agree;
  }
  // 8-bit dynamic activation quantization is near-lossless on an untrained
  // net's logits; allow at most one near-tie flip on this batch so the
  // test is robust to compiler codegen differences (the bench measures the
  // strict >= 99% criterion on a trained model at 256 images).
  EXPECT_GE(agree + 1, n);
}

TEST(Engine, Int8EngineBitIdenticalAcrossThreadCounts) {
  Rng rng(47);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  Tensor x = random_input({6, mc.in_channels, kHw, kHw}, rng);

  set_parallel_threads(1);
  Engine eng = Engine::compile(*model, 6, mc.in_channels, kHw, kHw,
                               {.backend = "int8", .bits = 8, .name = ""});
  const Tensor ref = eng.run(x);
  for (const int threads : {2, 4}) {
    set_parallel_threads(threads);
    // The chunk grid (and thus every activation scale) is fixed at compile
    // time, so a plan compiled at 1 thread must reproduce exactly.
    const Tensor got = eng.run(x);
    EXPECT_EQ(max_abs_diff(ref, got), 0.0f) << threads << " threads";
  }
  set_parallel_threads(0);
}

TEST(Engine, NarrowBitWidthsDegradeGracefully) {
  Rng rng(49);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  Tensor x = random_input({4, mc.in_channels, kHw, kHw}, rng);
  Engine fp = Engine::compile(*model, 4, mc.in_channels, kHw, kHw);
  const Tensor ref = fp.run(x);
  double err8 = 0.0, err4 = 0.0;
  for (const int bits : {8, 4}) {
    Engine q = Engine::compile(*model, 4, mc.in_channels, kHw, kHw,
                               {.backend = "int8", .bits = bits, .name = ""});
    const Tensor got = q.run(x);
    double err = 0.0;
    for (size_t i = 0; i < ref.numel(); ++i) {
      const double d = static_cast<double>(ref.at(i)) - got.at(i);
      err += d * d;
    }
    (bits == 8 ? err8 : err4) = err;
  }
  EXPECT_GT(err8, 0.0);   // a real integer datapath is not exact
  EXPECT_GT(err4, err8);  // and fewer bits hurt more (Table 3 direction)
  EXPECT_THROW(Engine::compile(*model, 4, mc.in_channels, kHw, kHw,
                               {.backend = "int8", .bits = 1, .name = ""}),
               CheckError);
}

}  // namespace

/// Test-only friend of Plan (declared in plan.hpp): corruption fixtures
/// need a mutable view of a compiled plan's internals to prove verify()
/// rejects each broken invariant. Nothing outside the tests defines this.
struct PlanTestPeer {
  static Plan& mut(const std::shared_ptr<const Plan>& p) {
    return const_cast<Plan&>(*p);
  }
  static std::vector<Step>& steps(Plan& p) { return p.steps_; }
  static size_t& slots(Plan& p) { return p.slots_; }
  static size_t& slot_stride(Plan& p) { return p.slot_stride_; }
  static size_t& col_off(Plan& p) { return p.col_off_; }
  static size_t& res_off(Plan& p) { return p.res_off_; }
  static size_t& res_sz(Plan& p) { return p.res_sz_; }
  static size_t& classes(Plan& p) { return p.classes_; }
  static size_t& qws_sz(Plan& p) { return p.qws_sz_; }
  static bool& quantized(Plan& p) { return p.quant_; }
  static const kernels::KernelBackend*& backend(Plan& p) {
    return p.backend_;
  }
};

namespace {

/// One compiled ResNet-20 fixture per corruption case (the mutations are
/// destructive, so every case starts from a fresh compile).
std::shared_ptr<const Plan> verify_fixture(const char* backend = "") {
  Rng rng(53);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  return Plan::compile(*model, 4, mc.in_channels, kHw, kHw,
                       {.backend = backend, .bits = 8, .name = ""});
}

/// EXPECT wrapper asserting the typed error and the invariant it names.
void expect_verify_rejects(const std::shared_ptr<const Plan>& plan,
                           const char* needle) {
  try {
    plan->verify();
    FAIL() << "verify() accepted a plan corrupted at: " << needle;
  } catch (const PlanVerifyError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "wrong invariant reported: " << e.what();
  }
}

TEST(PlanVerify, AcceptsEveryZooModelFloatAndInt8) {
  Rng rng(57);
  struct Case {
    const char* name;
    std::unique_ptr<Sequential> model;
    ModelConfig mc;
  };
  std::vector<Case> cases;
  {
    ModelConfig mc;
    mc.base_width = 8;
    mc.in_hw = kHw;
    cases.push_back({"plain20",
                     build_plain20(mc, rng,
                                   standard_conv_maker(mc.init, &rng)),
                     mc});
    cases.push_back({"resnet20",
                     build_resnet20(mc, rng,
                                    standard_conv_maker(mc.init, &rng)),
                     mc});
  }
  {
    ModelConfig mc;
    mc.base_width = 4;  // keep the 4-stage net small; in_hw stays 32
    cases.push_back({"resnet18",
                     build_resnet18(mc, rng,
                                    standard_conv_maker(mc.init, &rng)),
                     mc});
  }
  for (Case& c : cases) {
    warm_bn(*c.model, c.mc.in_channels, c.mc.in_hw, rng);
    for (const char* backend : {"", "int8"}) {
      auto plan =
          Plan::compile(*c.model, 4, c.mc.in_channels, c.mc.in_hw, c.mc.in_hw,
                        {.backend = backend, .bits = 8, .name = ""});
      EXPECT_NO_THROW(plan->verify())
          << c.name << " backend='" << backend << "'";
    }
  }
}

TEST(PlanVerify, RejectsEmptyStepList) {
  auto plan = verify_fixture();
  PlanTestPeer::steps(PlanTestPeer::mut(plan)).clear();
  expect_verify_rejects(plan, "empty step list");
}

TEST(PlanVerify, RejectsOutOfRangeSlot) {
  auto plan = verify_fixture();
  Plan& p = PlanTestPeer::mut(plan);
  PlanTestPeer::steps(p)[0].out = plan->activation_slots() + 5;
  expect_verify_rejects(plan, "out of range");
}

TEST(PlanVerify, RejectsReadOfDeadSlot) {
  auto plan = verify_fixture();
  Plan& p = PlanTestPeer::mut(plan);
  // The first step's input is the external image (slot 0); pointing it at
  // its own not-yet-written output slot is a use-before-def.
  Step& st = PlanTestPeer::steps(p)[0];
  st.in = st.out;
  expect_verify_rejects(plan, "no live activation");
}

TEST(PlanVerify, RejectsBrokenShapeChain) {
  auto plan = verify_fixture();
  Plan& p = PlanTestPeer::mut(plan);
  // Step 1 consumes step 0's activation; shrinking its declared input
  // breaks the producer/consumer size chain.
  PlanTestPeer::steps(p)[1].in_sz -= 1;
  expect_verify_rejects(plan, "live value");
}

TEST(PlanVerify, RejectsResidualAliasedOperands) {
  auto plan = verify_fixture();
  Plan& p = PlanTestPeer::mut(plan);
  bool found = false;
  for (Step& st : PlanTestPeer::steps(p)) {
    if (st.kind != OpKind::kAdd) continue;
    st.in = st.out;  // out = act(out + in) degenerates to doubling
    found = true;
    break;
  }
  ASSERT_TRUE(found) << "ResNet plan compiled without a residual add";
  expect_verify_rejects(plan, "same slot");
}

TEST(PlanVerify, RejectsArenaLayoutBreaks) {
  {
    auto plan = verify_fixture();
    PlanTestPeer::col_off(PlanTestPeer::mut(plan)) += 64;
    expect_verify_rejects(plan, "does not abut");
  }
  {
    auto plan = verify_fixture();
    Plan& p = PlanTestPeer::mut(plan);
    // Shrink every slot below one batch of the first activation, keeping
    // the scratch offsets consistent so the stride check itself fires.
    PlanTestPeer::slot_stride(p) = 1;
    PlanTestPeer::col_off(p) = plan->activation_slots();
    PlanTestPeer::res_off(p) =
        plan->activation_slots() + plan->chunks() * plan->col_floats();
    expect_verify_rejects(plan, "slot stride");
  }
  {
    auto plan = verify_fixture();
    PlanTestPeer::res_sz(PlanTestPeer::mut(plan)) = 0;
    expect_verify_rejects(plan, "scratch");
  }
}

TEST(PlanVerify, RejectsWrongWeightPanelShape) {
  auto plan = verify_fixture();
  Plan& p = PlanTestPeer::mut(plan);
  Step& st = PlanTestPeer::steps(p)[0];
  ASSERT_EQ(st.kind, OpKind::kConv);
  // Same arena bytes, lying dims: the view/section cross-check would also
  // object, but the shape replay must name the specific invariant first.
  st.w = TensorView(st.w.data(), {st.out_c, st.geom.col_rows() + 1});
  expect_verify_rejects(plan, "Co, Ci*K*K");
}

TEST(PlanVerify, RejectsTruncatedBias) {
  auto plan = verify_fixture();
  Plan& p = PlanTestPeer::mut(plan);
  Step& st = PlanTestPeer::steps(p)[0];
  ASSERT_EQ(st.kind, OpKind::kConv);
  st.bias = TensorView(st.bias.data(), {st.out_c + 1});
  expect_verify_rejects(plan, "bias");
}

TEST(PlanVerify, RejectsUnpinnedOrStaleBackend) {
  auto plan = verify_fixture();
  PlanTestPeer::backend(PlanTestPeer::mut(plan)) = nullptr;
  expect_verify_rejects(plan, "no kernel backend");
}

TEST(PlanVerify, RejectsDatapathFlagMismatch) {
  auto plan = verify_fixture();
  PlanTestPeer::quantized(PlanTestPeer::mut(plan)) = true;
  expect_verify_rejects(plan, "datapath");
}

TEST(PlanVerify, RejectsWrongClassCount) {
  auto plan = verify_fixture();
  PlanTestPeer::classes(PlanTestPeer::mut(plan)) += 1;
  expect_verify_rejects(plan, "classes");
}

TEST(PlanVerify, RejectsInt8StepWithoutScales) {
  auto plan = verify_fixture("int8");
  Plan& p = PlanTestPeer::mut(plan);
  Step& st = PlanTestPeer::steps(p)[0];
  ASSERT_TRUE(st.quantized);
  st.qw_scales = ConstSpan<float>(st.qw_scales.data(),
                                  st.qw_scales.size() - 1);
  expect_verify_rejects(plan, "scale");
}

TEST(PlanVerify, RejectsInt8NonFiniteScale) {
  auto plan = verify_fixture("int8");
  Plan& p = PlanTestPeer::mut(plan);
  Step& st = PlanTestPeer::steps(p)[0];
  ASSERT_TRUE(st.quantized);
  // Freshly compiled plans own their (writable) arena; scribble through
  // the const view the way a corrupted blob would arrive.
  const_cast<float*>(st.qw_scales.data())[0] = 0.0f;
  expect_verify_rejects(plan, "scale");
}

TEST(PlanVerify, RejectsInt8TruncatedPanel) {
  auto plan = verify_fixture("int8");
  Plan& p = PlanTestPeer::mut(plan);
  Step& st = PlanTestPeer::steps(p)[0];
  ASSERT_TRUE(st.quantized);
  st.qw = ConstSpan<int8_t>(st.qw.data(), st.qw.size() - 1);
  expect_verify_rejects(plan, "panel");
}

TEST(PlanVerify, RejectsInt8RetainedFloatWeights) {
  auto plan = verify_fixture("int8");
  Plan& p = PlanTestPeer::mut(plan);
  Step& st = PlanTestPeer::steps(p)[0];
  ASSERT_TRUE(st.quantized);
  // Any non-empty float view marks the weights as retained; verify must
  // object before ever dereferencing it.
  st.w = TensorView(st.qw_scales.data(), {st.out_c, st.geom.col_rows()});
  expect_verify_rejects(plan, "not released");
}

TEST(PlanVerify, RejectsInt8UndersizedScratch) {
  auto plan = verify_fixture("int8");
  PlanTestPeer::qws_sz(PlanTestPeer::mut(plan)) = 1;
  expect_verify_rejects(plan, "scratch");
}

TEST(PlanVerify, RejectsBadQuantBits) {
  auto plan = verify_fixture("int8");
  Plan& p = PlanTestPeer::mut(plan);
  PlanTestPeer::steps(p)[0].qbits = 11;
  expect_verify_rejects(plan, "bits");
}

}  // namespace
}  // namespace alf
