// Fig. 2a — design-space exploration of the expansion layer:
// configuration [Wexp init | sigma_inter | BN_inter], accuracy of Plain-20
// ALF on the CIFAR-10 substitute, >= 2 repeats per configuration.
//
// Paper finding to reproduce: Xavier init slightly better than He; BN_inter
// brings no perceivable advantage; sigma_inter = none is competitive.
#include <cstdio>

#include "bench_common.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

struct Config {
  Init wexp;
  Act inter;
  bool bn;
  std::string label() const {
    return std::string(init_name(wexp)) + "|" +
           (inter == Act::kNone ? "nc" : act_name(inter)) + "|" +
           (bn ? "bn" : "nc");
  }
};

double run_once(const Scale& s, const Config& cfg, uint64_t seed) {
  const DataConfig task = cifar_task(s);
  SyntheticImageDataset train(task, s.sweep_train_n, 1);
  SyntheticImageDataset test(task, s.test_n, 2);
  Rng rng(seed);

  AlfConfig acfg = alf_config(s);
  acfg.wexp_init = cfg.wexp;
  acfg.sigma_inter = cfg.inter;
  acfg.bn_inter = cfg.bn;

  std::vector<AlfConv*> blocks;
  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;
  auto model = build_plain20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
  TrainConfig tcfg = train_config(s, seed);
  tcfg.epochs = s.sweep_epochs;
  const auto hist = Trainer(*model, train, test, tcfg).run();
  return hist.back().test_acc;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::printf("Fig. 2a: expansion-layer configuration sweep "
              "[Wexp,init | sigma_inter | BN_inter] (scale=%s)\n\n",
              s.name);

  const Config configs[] = {
      {Init::kHe, Act::kNone, false},   {Init::kXavier, Act::kNone, false},
      {Init::kHe, Act::kRelu, false},   {Init::kXavier, Act::kRelu, false},
      {Init::kHe, Act::kRelu, true},    {Init::kXavier, Act::kRelu, true},
  };
  constexpr int kRepeats = 2;

  Table table("Fig. 2a — Plain-20 (ALF) accuracy per expansion config");
  table.set_header({"config", "acc_mean[%]", "acc_min[%]", "acc_max[%]"});
  for (const Config& cfg : configs) {
    double sum = 0.0, mn = 1.0, mx = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
      const double acc = run_once(s, cfg, 100 + 17 * r);
      sum += acc;
      mn = std::min(mn, acc);
      mx = std::max(mx, acc);
    }
    table.add_row({cfg.label(), Table::fmt(100.0 * sum / kRepeats, 1),
                   Table::fmt(100.0 * mn, 1), Table::fmt(100.0 * mx, 1)});
    std::printf("done: %s\n", cfg.label().c_str());
    std::fflush(stdout);
  }
  std::printf("\n");
  table.print();
  table.write_csv("fig2a.csv");
  return 0;
}
