// Fig. 2b — design-space exploration of the autoencoder:
// configuration [Wae init | sigma_ae], with the pruning mask DISABLED
// (paper Setup 2), for sigma_inter in {none, ReLU}.
//
// Paper finding to reproduce: tanh outperforms sigmoid/ReLU as sigma_ae;
// Xavier init preferred; sigma_inter = none better than ReLU.
#include <cstdio>

#include "bench_common.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

double run_once(const Scale& s, Init wae, Act sae, Act inter, uint64_t seed) {
  const DataConfig task = cifar_task(s);
  SyntheticImageDataset train(task, s.sweep_train_n, 1);
  SyntheticImageDataset test(task, s.test_n, 2);
  Rng rng(seed);

  AlfConfig acfg = alf_config(s);
  acfg.wae_init = wae;
  acfg.sigma_ae = sae;
  acfg.sigma_inter = inter;
  acfg.mask_enabled = false;  // Setup 2: no pruning

  std::vector<AlfConv*> blocks;
  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;
  auto model = build_plain20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
  TrainConfig tcfg = train_config(s, seed);
  tcfg.epochs = s.sweep_epochs;
  const auto hist = Trainer(*model, train, test, tcfg).run();
  return hist.back().test_acc;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::printf("Fig. 2b: autoencoder configuration sweep [Wae,init | sigma_ae]"
              " with mask disabled (scale=%s)\n\n", s.name);

  // The paper sweeps rand/he/xavier; "identity" is this reproduction's
  // addition (near-identity encoders keep the STE a descent direction —
  // see DESIGN.md), included for comparison.
  const Init inits[] = {Init::kRand, Init::kHe, Init::kXavier,
                        Init::kIdentity};
  const Act acts[] = {Act::kTanh, Act::kSigmoid, Act::kRelu};
  // One repeat at quick (CI) scale; >=2 otherwise, per the paper.
  const int kRepeats = std::string(s.name) == "quick" ? 1 : 2;

  Table table("Fig. 2b — Plain-20 (ALF, no mask) accuracy per AE config");
  table.set_header({"config", "acc (sigma_inter=none)[%]",
                    "acc (sigma_inter=relu)[%]"});
  for (Act act : acts) {
    for (Init init : inits) {
      double acc_none = 0.0, acc_relu = 0.0;
      for (int r = 0; r < kRepeats; ++r) {
        acc_none += run_once(s, init, act, Act::kNone, 300 + 13 * r);
        acc_relu += run_once(s, init, act, Act::kRelu, 300 + 13 * r);
      }
      const std::string label =
          std::string(init_name(init)) + "|" + act_name(act);
      table.add_row({label, Table::fmt(100.0 * acc_none / kRepeats, 1),
                     Table::fmt(100.0 * acc_relu / kRepeats, 1)});
      std::printf("done: %s\n", label.c_str());
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv("fig2b.csv");
  return 0;
}
