#include "alf/alf_conv.hpp"

#include <cmath>

#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace alf {

AlfConv::AlfConv(std::string name, size_t in_c, size_t out_c, size_t kernel,
                 size_t stride, size_t pad, const AlfConfig& config, Rng& rng)
    : name_(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      config_(config),
      // Per Sec. III-B, no L2 regularization on W inside ALF blocks.
      w_(name_ + ".w", {out_c, in_c, kernel, kernel}, /*apply_decay=*/false),
      wexp_(name_ + ".wexp", {out_c, out_c}),
      wenc_({out_c, out_c}),
      wdec_({out_c, out_c}),
      mask_({out_c}),
      vel_enc_({out_c, out_c}),
      vel_dec_({out_c, out_c}),
      vel_mask_({out_c}) {
  size_t fan_in = 0, fan_out = 0;
  conv_fans(w_.value.shape(), fan_in, fan_out);
  init_tensor(w_.value, Init::kHe, fan_in, fan_out, rng);
  // Expansion is a 1x1 conv Ccode -> Co: fans are the channel counts.
  init_tensor(wexp_.value, config_.wexp_init, out_c, out_c, rng);
  init_tensor(wenc_, config_.wae_init, out_c, out_c, rng);
  init_tensor(wdec_, config_.wae_init, out_c, out_c, rng);
  // All filters start active, comfortably above the clipping threshold.
  mask_.fill(1.0f);
  if (config_.bn_inter) bn_inter_.emplace(name_ + ".bn_inter", out_c);
}

Tensor AlfConv::w_matrix() const {
  return w_.value.reshaped({out_c_, in_c_ * kernel_ * kernel_});
}

Tensor AlfConv::compute_mprune() const {
  Tensor mprune({out_c_});
  if (!config_.mask_enabled) {
    mprune.fill(1.0f);
    return mprune;
  }
  // Clip(M, t) = I{|m_i| > t} * m_i — zeroes sub-threshold entries but lets
  // the optimizer recover a channel later (the underlying m_i keeps training).
  for (size_t i = 0; i < out_c_; ++i) {
    const float m = mask_.at(i);
    mprune.at(i) = std::abs(m) > config_.threshold ? m : 0.0f;
  }
  return mprune;
}

Tensor AlfConv::compute_wcode() const {
  // W~code = E^T * Wmat, code filter cc = sum_co E[co,cc] * W[co,:].
  const Tensor wmat = w_matrix();
  Tensor wtilde = matmul(wenc_, wmat, /*trans_a=*/true, /*trans_b=*/false);
  // Apply the pruning gate per code filter, then sigma_ae (Eq. 3).
  const Tensor mprune = compute_mprune();
  const size_t cols = wtilde.dim(1);
  for (size_t cc = 0; cc < out_c_; ++cc) {
    const float g = mprune.at(cc);
    float* row = wtilde.data() + cc * cols;
    for (size_t j = 0; j < cols; ++j) row[j] *= g;
  }
  return act_forward(config_.sigma_ae, wtilde);
}

Tensor AlfConv::forward(const Tensor& x, bool train) {
  ALF_CHECK_EQ(x.dim(1), in_c_);
  const ConvGeom g{in_c_, x.dim(2), x.dim(3), kernel_, stride_, pad_};
  last_out_h_ = g.out_h();
  last_out_w_ = g.out_w();

  Tensor wcode = compute_wcode();
  Tensor a_tilde = conv2d_forward(x, wcode, g, out_c_);

  Tensor inter = a_tilde;
  if (bn_inter_) inter = bn_inter_->forward(inter, train);
  Tensor activated = act_forward(config_.sigma_inter, inter);

  // Expansion: 1x1 conv realized as GEMM over flattened spatial dims.
  const ConvGeom ge{out_c_, g.out_h(), g.out_w(), 1, 1, 0};
  Tensor out = conv2d_forward(activated, wexp_.value, ge, out_c_);

  if (train) {
    cached_x_ = x;
    cached_wcode_ = std::move(wcode);
    cached_a_tilde_ = std::move(a_tilde);
    cached_inter_ = std::move(activated);
  }
  return out;
}

Tensor AlfConv::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_x_.empty()) << name_ << ": backward before forward";
  const ConvGeom g{in_c_, cached_x_.dim(2), cached_x_.dim(3), kernel_,
                   stride_, pad_};
  const ConvGeom ge{out_c_, g.out_h(), g.out_w(), 1, 1, 0};

  // Expansion conv: gradients for Wexp and for its input.
  Tensor grad_inter = conv2d_backward(cached_inter_, wexp_.value, ge, out_c_,
                                      grad_out, &wexp_.grad);

  // sigma_inter (derivative via its output, which is cached_inter_).
  Tensor grad_a = act_backward(config_.sigma_inter, cached_inter_, grad_inter);
  if (bn_inter_) grad_a = bn_inter_->backward(grad_a);

  // Code conv: gradient w.r.t. Wcode and the layer input.
  Tensor grad_wcode({out_c_, in_c_ * kernel_ * kernel_});
  Tensor grad_x = conv2d_backward(cached_x_, cached_wcode_, g, out_c_, grad_a,
                                  &grad_wcode);

  Tensor grad_w_mat;
  if (config_.use_ste) {
    // Eq. 5: the STE substitutes the autoencoder chain
    // (sigma_ae', mask gate, encoder matmul) with identity, so the gradient
    // that reaches W is exactly dL/dWcode.
    grad_w_mat = std::move(grad_wcode);
  } else {
    // Ablation: exact chain rule through sigma_ae, Mprune and the encoder.
    Tensor grad_z =
        act_backward(config_.sigma_ae, cached_wcode_, grad_wcode);
    const Tensor mprune = compute_mprune();
    const size_t cols = grad_z.dim(1);
    for (size_t cc = 0; cc < out_c_; ++cc) {
      const float m = mprune.at(cc);
      float* row = grad_z.data() + cc * cols;
      for (size_t j = 0; j < cols; ++j) row[j] *= m;
    }
    // dWmat = E * dW~code  ([Co, Ccode] x [Ccode, CiKK])
    grad_w_mat = matmul(wenc_, grad_z, /*trans_a=*/false, /*trans_b=*/false);
  }
  Tensor acc = w_.grad.reshaped({out_c_, in_c_ * kernel_ * kernel_});
  acc += grad_w_mat;
  w_.grad = acc.reshaped(w_.grad.shape());
  return grad_x;
}

std::vector<Param*> AlfConv::params() {
  std::vector<Param*> out{&w_, &wexp_};
  if (bn_inter_) {
    for (Param* p : bn_inter_->params()) out.push_back(p);
  }
  return out;
}

AeStepStats AlfConv::autoencoder_step() {
  AeStepStats stats;
  stats.total_filters = out_c_;
  if (!config_.mask_enabled) {
    // Setup-2 mode: the autoencoder still trains (reconstruction only), so
    // the code stays a faithful low-rank view of W, but nothing is pruned.
    stats.nu_prune = 0.0;
  }

  // ---- Forward through the autoencoder (W is a constant input). ----
  const Tensor wmat = w_matrix();
  Tensor wtilde = matmul(wenc_, wmat, true, false);  // [Ccode, CiKK]
  const Tensor mprune = compute_mprune();
  Tensor z = wtilde;
  const size_t cols = z.dim(1);
  for (size_t cc = 0; cc < out_c_; ++cc) {
    const float gate = mprune.at(cc);
    float* row = z.data() + cc * cols;
    for (size_t j = 0; j < cols; ++j) row[j] *= gate;
  }
  Tensor wcode = act_forward(config_.sigma_ae, z);
  Tensor rec_pre = matmul(wdec_, wcode, true, false);  // [Co, CiKK]
  Tensor wrec = act_forward(config_.sigma_ae, rec_pre);

  // ---- Losses. ----
  stats.l_rec = mse(wmat, wrec);
  double sum_abs_m = 0.0;
  size_t zeros = 0;
  for (size_t i = 0; i < out_c_; ++i) {
    sum_abs_m += std::abs(mask_.at(i));
    if (mprune.at(i) == 0.0f) ++zeros;
  }
  stats.zero_filters = zeros;
  stats.l_prune = sum_abs_m / static_cast<double>(out_c_);
  // nu_prune = max(0, 1 - exp(m * (theta - pr_max))): full pressure while
  // theta << pr_max, zero pressure at/after the target pruning rate.
  const double theta = static_cast<double>(zeros) / out_c_;
  const double nu =
      config_.mask_enabled
          ? std::max(0.0, 1.0 - std::exp(config_.m_slope *
                                         (theta - config_.pr_max)))
          : 0.0;
  stats.nu_prune = nu;

  // ---- Backward. ----
  // dLrec/dWrec = 2 (Wrec - Wmat) / numel.
  Tensor grad_wrec(wrec.shape());
  const float inv_n = 2.0f / static_cast<float>(wrec.numel());
  for (size_t i = 0; i < wrec.numel(); ++i)
    grad_wrec.at(i) = inv_n * (wrec.at(i) - wmat.at(i));
  Tensor grad_rec_pre = act_backward(config_.sigma_ae, wrec, grad_wrec);

  // dD[cc,co] = sum_j Wcode[cc,j] * dRecPre[co,j].
  Tensor grad_dec = matmul(wcode, grad_rec_pre, false, true);
  // dWcode = D * dRecPre.
  Tensor grad_wcode = matmul(wdec_, grad_rec_pre, false, false);
  Tensor grad_z = act_backward(config_.sigma_ae, wcode, grad_wcode);

  // Mask gradient with STE through the clip (Eq. 6): d z[cc,:] / d mprune_cc
  // = W~code[cc,:], and dMprune/dM = 1 under the STE.
  Tensor grad_mask({out_c_});
  for (size_t cc = 0; cc < out_c_; ++cc) {
    double acc = 0.0;
    const float* gz = grad_z.data() + cc * cols;
    const float* wt = wtilde.data() + cc * cols;
    for (size_t j = 0; j < cols; ++j) acc += static_cast<double>(gz[j]) * wt[j];
    // L1 pruning pressure: nu_prune * sign(m) / Co.
    const float m = mask_.at(cc);
    const double sign = (m > 0.0f) ? 1.0 : (m < 0.0f ? -1.0 : 0.0);
    grad_mask.at(cc) =
        static_cast<float>(acc + nu * sign / static_cast<double>(out_c_));
  }

  // Encoder gradient: dW~code = dZ * mprune (gate), dE = Wmat * dW~code^T.
  Tensor grad_wtilde = grad_z;
  for (size_t cc = 0; cc < out_c_; ++cc) {
    const float gate = mprune.at(cc);
    float* row = grad_wtilde.data() + cc * cols;
    for (size_t j = 0; j < cols; ++j) row[j] *= gate;
  }
  Tensor grad_enc = matmul(wmat, grad_wtilde, false, true);

  // ---- SGD update (dedicated autoencoder optimizer). ----
  auto sgd_update = [this](Tensor& value, Tensor& vel, const Tensor& grad,
                           float lr) {
    const float mom = config_.ae_momentum;
    for (size_t i = 0; i < value.numel(); ++i) {
      vel.at(i) = mom * vel.at(i) + grad.at(i);
      value.at(i) -= lr * vel.at(i);
    }
  };
  sgd_update(wenc_, vel_enc_, grad_enc, config_.lr_ae);
  sgd_update(wdec_, vel_dec_, grad_dec, config_.lr_ae);
  ++ae_steps_taken_;
  if (config_.mask_enabled && ae_steps_taken_ > config_.mask_warmup_steps) {
    sgd_update(mask_, vel_mask_, grad_mask,
               config_.lr_ae * config_.lr_mask_mult);
  }
  return stats;
}

size_t AlfConv::zero_filters() const {
  const Tensor mprune = compute_mprune();
  size_t zeros = 0;
  for (size_t i = 0; i < out_c_; ++i)
    if (mprune.at(i) == 0.0f) ++zeros;
  return zeros;
}

double AlfConv::remaining_fraction() const {
  return 1.0 - static_cast<double>(zero_filters()) / out_c_;
}

size_t AlfConv::ccode_max() const {
  // Eq. 2: floor(Ci*Co*K^2 / (Ci*K^2 + Co)).
  const unsigned long long num = static_cast<unsigned long long>(in_c_) *
                                 out_c_ * kernel_ * kernel_;
  const unsigned long long den =
      static_cast<unsigned long long>(in_c_) * kernel_ * kernel_ + out_c_;
  return static_cast<size_t>(num / den);
}

std::function<LayerPtr(const std::string&, size_t, size_t, size_t, size_t,
                       size_t)>
make_alf_conv_maker(const AlfConfig& config, Rng* rng,
                    std::vector<AlfConv*>* registry) {
  ALF_CHECK(rng != nullptr);
  return [config, rng, registry](const std::string& name, size_t ci,
                                 size_t co, size_t k, size_t stride,
                                 size_t pad) -> LayerPtr {
    auto layer =
        std::make_unique<AlfConv>(name, ci, co, k, stride, pad, config, *rng);
    if (registry != nullptr) registry->push_back(layer.get());
    return layer;
  };
}

std::vector<AlfConv*> collect_alf_convs(Sequential& model) {
  std::vector<AlfConv*> blocks;
  model.visit([&blocks](Layer& l) {
    if (auto* b = dynamic_cast<AlfConv*>(&l)) blocks.push_back(b);
  });
  return blocks;
}

}  // namespace alf
