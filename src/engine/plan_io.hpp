// Compiled-plan artifacts: alf::plan::save/load.
//
// A Plan is the expensive half of deployment — BN folding, MSE-clipped
// per-channel quantization, panel packing, strategy choices. save() writes
// the finished Plan as ONE versioned little-endian blob whose weight arena
// sits page-aligned at the tail; load() is open + mmap + validate + view
// fixup. No re-quantize, no re-pack, no re-fold: cold start is bounded by
// checksum bandwidth, not compile work, and N processes loading the same
// blob share one page-cache copy of the weights.
//
// Blob layout (offsets in the header; all integers little-endian):
//
//   [0,          328)        FileHeader (fixed size, self-describing)
//   [steps_off,  ...)        nsteps x StepRecord (fixed 176 B each)
//   [names_off,  ...)        step-name string blob (StepRecord offsets)
//   ...pad to 8...
//   [sections_off, ...)      nsections x SectionRecord (fixed 64 B each,
//                            8-aligned so the loader reads them in place)
//   ...pad to 4096...
//   [arena_off,  arena_off + arena_bytes)   the weight arena, verbatim
//
// Integrity and compatibility are checked in this order, all before any
// kernel touches data: magic -> endianness/header size -> format version
// -> header CRC -> file size vs header -> packing-geometry stamps
// (kernels::kPanelLayoutVersion, kMaxShiftH, kWeightAlign) -> region
// offsets -> meta CRC (steps + names + sections) -> per-record structural
// validation -> CPU-feature mask vs this host -> backend liveness ->
// per-section payload CRCs -> Plan::verify() on the assembled plan.
// Every rejection throws PlanIoError with a typed code.
//
// Mapping choice: PROT_READ + MAP_PRIVATE. A read-only private file
// mapping never copies-on-write (nothing ever writes), so it is
// physically equivalent to MAP_SHARED here — every process mapping the
// same blob reads the same page-cache pages — while guaranteeing at the
// VM level that a stray write faults instead of corrupting a blob other
// processes are serving from.
//
// Versioning policy: kFormatVersion bumps on ANY layout change (no
// in-place migration — blobs are cheap to regenerate with alf_planc);
// kernels::kPanelLayoutVersion bumps when a kernel changes its packed
// panel ABI, so stale blobs are rejected rather than mis-read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/plan.hpp"

namespace alf::plan {

/// Typed error for every blob rejection path. code() tells a deployer
/// apart "file is damaged" (kTruncated/kBadCrc) from "file is from a
/// different build or machine" (kBadVersion/kCpuFeatures/kBackend).
class PlanIoError : public std::runtime_error {
 public:
  enum class Code {
    kOpen,         ///< open/stat/mmap/write syscall failure
    kTruncated,    ///< file shorter than the header claims
    kBadMagic,     ///< not a plan blob
    kBadVersion,   ///< format/panel-layout/geometry stamp mismatch
    kBadHeader,    ///< header fields structurally inconsistent
    kBadCrc,       ///< header/meta/section checksum mismatch
    kBadSection,   ///< step/section record structurally invalid
    kCpuFeatures,  ///< blob needs CPU features this host lacks
    kBackend,      ///< stamped kernel backend not in this registry
  };

  PlanIoError(Code code, const std::string& what)
      : std::runtime_error("plan blob: " + what), code_(code) {}

  Code code() const { return code_; }

 private:
  Code code_;
};

constexpr char kMagic[8] = {'A', 'L', 'F', 'P', 'L', 'A', 'N', '\0'};
// v2: StepRecord grew the per-step algorithm choice (backend name, tile
// blocking, chunk override) so tuned plans replay their decisions on load
// with zero re-tuning. v1 blobs are rejected (reject-don't-migrate; blobs
// are cheap to regenerate with alf_planc).
constexpr uint32_t kFormatVersion = 2;
/// Arena file offset alignment: one page, so the mmap'd arena base meets
/// kArenaAlign without copying.
constexpr uint64_t kBlobPageAlign = 4096;
constexpr uint32_t kEndianTag = 0x01020304;  ///< read back as written only on
                                             ///< a same-endian host

/// On-disk header. A packed POD with no padding bytes (statically
/// asserted in plan_io.cpp) so the CRCs are well-defined; public —
/// together with restamp_header — so hostile-blob tests and tools can
/// forge headers without a private seam.
struct FileHeader {
  char magic[8];
  uint32_t endian;        ///< kEndianTag
  uint32_t version;       ///< kFormatVersion
  uint32_t header_bytes;  ///< sizeof(FileHeader)
  uint32_t panel_layout;  ///< kernels::kPanelLayoutVersion at save
  uint64_t file_bytes;    ///< total blob size
  char model_name[64];    ///< NUL-terminated, truncated if longer
  char backend_name[32];  ///< kernel backend the plan is pinned to
  uint32_t cpu_features;  ///< backend->required_features at save
  uint32_t quantized;
  uint32_t qbits;         ///< grid width of lowered steps (0 on float plans)
  uint32_t max_shift_h;   ///< kMaxShiftH at save (shift-GEMM geometry)
  uint64_t batch, in_c, in_h, in_w, classes;
  // Arena layout (Plan's ExecContext geometry, verbatim).
  uint64_t slots, slot_stride, col_off, col_sz, res_off, res_sz, nchunks,
      qws_sz, qbs_sz;
  uint32_t weight_align;  ///< kWeightAlign at save
  uint32_t nsteps;
  uint32_t nsections;
  uint32_t reserved0;
  uint64_t steps_off;
  uint64_t names_off;
  uint64_t names_bytes;
  uint64_t sections_off;
  uint64_t arena_off;    ///< page-aligned
  uint64_t arena_bytes;
  uint32_t meta_crc;     ///< crc32 over [header_bytes, arena_off)
  uint32_t header_crc;   ///< crc32 over this struct with header_crc = 0
};

/// One Step's metadata (weight payloads live in the section table).
struct StepRecord {
  uint32_t kind;
  uint32_t act;
  uint64_t in, out, in_sz, out_sz;
  uint64_t g_in_c, g_in_h, g_in_w, g_kernel, g_stride, g_pad;
  uint64_t out_c, window, in_features, out_features;
  uint64_t name_off;   ///< into the names region
  uint64_t name_len;
  int32_t qbits;
  uint8_t shift_gemm, quantized, in_nonneg, reserved0;
  // v2: the step's algorithm choice. backend_name is NUL-terminated; ""
  // means "the plan's backend". Tile fields of 0 select the backend's
  // built-in blocking; chunk 0 the plan's compile-time grid.
  char backend_name[16];
  uint32_t tile_mc, tile_kc, tile_nc, chunk;
};

/// One WeightSection plus the payload checksum.
struct SectionRecord {
  uint32_t step;
  uint32_t field;
  uint64_t offset;
  uint64_t bytes;
  uint32_t elem_size;
  uint32_t rank;
  uint64_t dims[3];
  uint32_t align;  ///< kWeightAlign the offsets were laid out under
  uint32_t crc32;  ///< payload checksum over [offset, offset + bytes)
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// stamped on every blob region. In-repo table implementation, no deps.
uint32_t crc32(const void* data, size_t n, uint32_t seed = 0);

/// Recomputes meta_crc and header_crc of an in-memory blob image (after a
/// test or tool mutates header/meta fields). Per-section payload CRCs are
/// left alone. `bytes` must cover at least the header.
void restamp_header(void* blob, size_t bytes);

/// Serializes `plan` to `path` (written to a temp sibling, then renamed,
/// so readers never see a half-written blob). Throws PlanIoError(kOpen)
/// on filesystem failure.
void save(const Plan& plan, const std::string& path);

/// Maps and validates a blob; returns the ready-to-run plan. The arena
/// stays backed by the read-only mapping for the plan's lifetime. Throws
/// PlanIoError (see Code) on any rejection; the assembled plan also runs
/// Plan::verify(), so a structurally valid blob with inconsistent
/// geometry throws PlanVerifyError.
std::shared_ptr<const Plan> load(const std::string& path);

/// Loads every "*.plan" file in `dir`, lexicographically; returns
/// (file stem, plan) pairs. Throws PlanIoError(kOpen) if `dir` is not a
/// readable directory, and propagates per-blob load errors.
std::vector<std::pair<std::string, std::shared_ptr<const Plan>>> load_dir(
    const std::string& dir);

}  // namespace alf::plan
