// Structured (filter-level) pruning baselines.
//
// Two saliency rules from the paper's comparison set:
//  * magnitude (Han et al. [3], applied filter-wise): smallest L1-norm
//    filters are pruned;
//  * FPGM (He et al. [13]): filters closest to the layer's geometric median
//    — i.e. with the smallest total distance to all other filters — are the
//    most redundant and are pruned.
//
// Pruning is realized as zeroing whole filters and keeping them zero during
// fine-tuning (projected SGD), which preserves tensor shapes at training
// time exactly like ALF's masking; the *deployed* cost is computed
// analytically with the pruned channels removed (apply_filter_pruning).
#pragma once

#include <map>

#include "models/cost.hpp"
#include "models/zoo.hpp"
#include "nn/conv2d.hpp"

namespace alf {

/// Filter-saliency rule.
enum class PruneRule {
  kMagnitude,  ///< L1 norm of the filter
  kFpgm,       ///< distance-to-all-others (geometric-median criterion)
};

/// Per-filter saliency of a conv filter bank [Co, Ci, K, K]; higher = keep.
std::vector<double> filter_saliency(const Tensor& w, PruneRule rule);

/// Keep-mask retaining the ceil(keep_frac * Co) most salient filters
/// (at least one filter is always kept).
std::vector<bool> select_filters(const Tensor& w, double keep_frac,
                                 PruneRule rule);

/// Zeroes all weights of filters with keep[i] == false.
void zero_pruned_filters(Conv2d& conv, const std::vector<bool>& keep);

/// A pruning decision for a whole model: keep-mask per conv layer,
/// aligned with collect_convs() order.
struct PrunePlan {
  std::vector<std::vector<bool>> keep;

  /// Fraction of filters kept overall.
  double kept_fraction() const;
};

/// Builds a plan with a uniform keep fraction for every conv layer
/// (optionally skipping the first conv, which is conventionally kept dense).
PrunePlan uniform_plan(const std::vector<Conv2d*>& convs, double keep_frac,
                       PruneRule rule, bool skip_first = true);

/// Builds a plan from per-layer keep fractions (AMC-lite output).
PrunePlan per_layer_plan(const std::vector<Conv2d*>& convs,
                         const std::vector<double>& keep_fracs,
                         PruneRule rule);

/// Applies (zeroes) the plan to the convs.
void apply_plan(const std::vector<Conv2d*>& convs, const PrunePlan& plan);

/// Analytic deployed cost of a filter-pruned model. For every conv layer
/// named in `keep_frac_by_name`, Co shrinks to the kept count; the *input*
/// channels of the next conv in the layer list shrink accordingly when the
/// channel counts chain up (sequential topologies). FC layers following a
/// global pool shrink their input features proportionally.
ModelCost apply_filter_pruning(
    const ModelCost& vanilla,
    const std::map<std::string, double>& keep_frac_by_name,
    const std::string& new_name);

}  // namespace alf
