#include "nn/pooling.hpp"

#include "core/check.hpp"

namespace alf {

void global_avg_pool_view(const float* x, size_t n, size_t c, size_t hw,
                          float* y) {
  for (size_t i = 0; i < n; ++i) {
    for (size_t ch = 0; ch < c; ++ch) {
      const float* p = x + (i * c + ch) * hw;
      double s = 0.0;
      for (size_t j = 0; j < hw; ++j) s += p[j];
      y[i * c + ch] = static_cast<float>(s / static_cast<double>(hw));
    }
  }
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  if (train) cached_shape_ = x.shape();
  const size_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  ALF_CHECK(hw > 0);
  Tensor out({n, c, 1, 1});
  global_avg_pool_view(x.data(), n, c, hw, out.data());
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_shape_.empty()) << "backward before forward";
  const size_t n = cached_shape_[0], c = cached_shape_[1];
  const size_t hw = cached_shape_[2] * cached_shape_[3];
  Tensor grad_x(cached_shape_);
  const float scale = 1.0f / static_cast<float>(hw);
  for (size_t i = 0; i < n; ++i) {
    for (size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at4(i, ch, 0, 0) * scale;
      float* p = grad_x.data() + (i * c + ch) * hw;
      for (size_t j = 0; j < hw; ++j) p[j] = g;
    }
  }
  return grad_x;
}

void maxpool_view(const float* x, size_t n, size_t c, size_t h, size_t w,
                  size_t window, float* y, size_t* argmax) {
  const size_t ho = h / window, wo = w / window;
  size_t oidx = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t ch = 0; ch < c; ++ch) {
      const float* plane = x + (i * c + ch) * h * w;
      for (size_t oh = 0; oh < ho; ++oh) {
        for (size_t ow = 0; ow < wo; ++ow, ++oidx) {
          float best = plane[oh * window * w + ow * window];
          size_t best_idx = oh * window * w + ow * window;
          for (size_t kh = 0; kh < window; ++kh) {
            for (size_t kw = 0; kw < window; ++kw) {
              const size_t idx = (oh * window + kh) * w + ow * window + kw;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          y[oidx] = best;
          if (argmax != nullptr) argmax[oidx] = (i * c + ch) * h * w + best_idx;
        }
      }
    }
  }
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  ALF_CHECK(h % window_ == 0 && w % window_ == 0)
      << "input " << h << "x" << w << " not divisible by window " << window_;
  const size_t ho = h / window_, wo = w / window_;
  Tensor out({n, c, ho, wo});
  if (train) {
    cached_shape_ = x.shape();
    argmax_.assign(n * c * ho * wo, 0);
  }
  maxpool_view(x.data(), n, c, h, w, window_, out.data(),
               train ? argmax_.data() : nullptr);
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_shape_.empty()) << "backward before forward";
  ALF_CHECK_EQ(grad_out.numel(), argmax_.size());
  Tensor grad_x(cached_shape_);
  for (size_t i = 0; i < argmax_.size(); ++i)
    grad_x.at(argmax_[i]) += grad_out.at(i);
  return grad_x;
}

}  // namespace alf
