// Quickstart: compress a small CNN with ALF in ~30 seconds.
//
//   1. Build a 4-layer CNN where every conv is an ALF block.
//   2. Train it on a synthetic classification task — the task optimizer
//      learns the weights while each block's autoencoder prunes filters.
//   3. Deploy: strip the autoencoders, drop the zeroed filters, and verify
//      the dense deployed unit computes exactly what the block computed.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "alf/deploy.hpp"
#include "alf/trainer.hpp"
#include "core/table.hpp"
#include "models/zoo.hpp"

using namespace alf;

int main() {
  // ---- 1. The task: 4-class synthetic images, 16x16 RGB. ----
  DataConfig task;
  task.classes = 4;
  task.height = task.width = 16;
  task.seed = 7;
  SyntheticImageDataset train_set(task, 256, /*split_seed=*/1);
  SyntheticImageDataset test_set(task, 128, /*split_seed=*/2);

  // ---- 2. The model: every conv is an AlfConv block. ----
  Rng rng(42);
  AlfConfig alf;                       // paper defaults, plus:
  alf.wae_init = Init::kIdentity;      // near-identity AE => healthy STE
  alf.lr_mask_mult = 300.0f;           // fast pruning schedule (short run)
  alf.threshold = 0.15f;
  alf.pr_max = 0.6f;                   // prune at most 60% of each layer
  alf.mask_warmup_steps = 16;

  std::vector<AlfConv*> blocks;
  auto conv = make_alf_conv_maker(alf, &rng, &blocks);

  Sequential model("quickstart");
  auto unit = [&](const std::string& name, size_t ci, size_t co,
                  size_t stride) {
    model.add(conv(name, ci, co, 3, stride, 1));
    model.emplace<BatchNorm2d>(name + "_bn", co);
    model.emplace<Activation>(name + "_relu", Act::kRelu);
  };
  unit("c1", 3, 16, 1);
  unit("c2", 16, 16, 2);
  unit("c3", 16, 32, 2);
  unit("c4", 32, 32, 1);
  model.emplace<GlobalAvgPool>("gap");
  model.emplace<Flatten>("flat");
  model.emplace<Linear>("fc", 32, task.classes, Init::kXavier, rng);

  // ---- 3. Two-player training: task SGD + per-block autoencoder SGD. ----
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 32;
  cfg.task.lr = 0.05f;
  cfg.lr_milestones = {8, 10};
  cfg.ae_steps_per_batch = 2;
  cfg.verbose = true;
  std::printf("training (watch 'filters' shrink as the masks prune)...\n");
  Trainer trainer(model, train_set, test_set, cfg);
  const auto history = trainer.run();

  // ---- 4. Inspect the compression and deploy. ----
  Table t("per-layer compression");
  t.set_header({"layer", "Co", "kept", "Ccode,max (Eq.2)", "deploy err"});
  Rng drng(9);
  for (AlfConv* b : blocks) {
    const CompressedConvDesc d = describe_block(*b);
    Tensor probe({1, b->in_channels(), 8, 8});
    for (size_t i = 0; i < probe.numel(); ++i)
      probe.at(i) = static_cast<float>(drng.uniform(-1, 1));
    const float err = deployment_error(*b, probe, drng);
    t.add_row({d.name, std::to_string(d.co), std::to_string(d.ccode),
               std::to_string(d.ccode_max), Table::fmt(err, 7)});
  }
  std::printf("\n");
  t.print();

  std::printf(
      "\nfinal: test accuracy %.1f%%, remaining filters %.1f%%\n"
      "Each deployed unit (dense conv pair, autoencoder discarded) matches\n"
      "its training-time block to float precision.\n",
      100.0 * history.back().test_acc,
      100.0 * history.back().remaining_filters);
  return 0;
}
