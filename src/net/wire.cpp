#include "net/wire.hpp"

namespace alf::net {

const char* status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kBadMagic: return "bad_magic";
    case WireStatus::kBadVersion: return "bad_version";
    case WireStatus::kBadHeader: return "bad_header";
    case WireStatus::kTooLarge: return "too_large";
    case WireStatus::kUnknownModel: return "unknown_model";
    case WireStatus::kBadShape: return "bad_shape";
    case WireStatus::kBadDeadline: return "bad_deadline";
    case WireStatus::kQueueFull: return "queue_full";
    case WireStatus::kDeadlineExpired: return "deadline_expired";
    case WireStatus::kShuttingDown: return "shutting_down";
    case WireStatus::kInternal: return "internal";
    case WireStatus::kTruncated: return "truncated";
  }
  return "unknown";
}

bool status_closes_connection(WireStatus s) {
  switch (s) {
    case WireStatus::kBadMagic:
    case WireStatus::kBadVersion:
    case WireStatus::kBadHeader:
    case WireStatus::kTooLarge:
    case WireStatus::kTruncated:
      return true;
    default:
      return false;
  }
}

}  // namespace alf::net
