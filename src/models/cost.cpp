#include "models/cost.hpp"

#include <array>

#include "core/check.hpp"

namespace alf {

unsigned long long ModelCost::total_params() const {
  unsigned long long s = 0;
  for (const auto& l : layers) s += l.params;
  return s;
}

unsigned long long ModelCost::total_macs() const {
  unsigned long long s = 0;
  for (const auto& l : layers) s += l.macs;
  return s;
}

unsigned long long ModelCost::conv_params() const {
  unsigned long long s = 0;
  for (const auto& l : layers)
    if (l.kind != "fc") s += l.params;
  return s;
}

CostBuilder::CostBuilder(std::string model_name, size_t in_c, size_t in_h,
                         size_t in_w)
    : c_(in_c), h_(in_h), w_(in_w) {
  cost_.name = std::move(model_name);
}

CostBuilder& CostBuilder::conv(const std::string& name, size_t co, size_t k,
                               size_t stride, size_t pad) {
  ALF_CHECK(h_ + 2 * pad >= k) << name;
  const size_t ho = (h_ + 2 * pad - k) / stride + 1;
  const size_t wo = (w_ + 2 * pad - k) / stride + 1;
  LayerCost l;
  l.name = name;
  l.kind = "conv";
  l.ci = c_;
  l.co = co;
  l.k = k;
  l.stride = stride;
  l.out_h = ho;
  l.out_w = wo;
  l.params = static_cast<unsigned long long>(k) * k * c_ * co;
  l.macs = l.params * ho * wo;
  cost_.layers.push_back(l);
  c_ = co;
  h_ = ho;
  w_ = wo;
  return *this;
}

CostBuilder& CostBuilder::alf_conv(const std::string& name, size_t ccode,
                                   size_t co, size_t k, size_t stride,
                                   size_t pad) {
  ALF_CHECK(ccode > 0 && ccode <= co) << name;
  conv(name, ccode, k, stride, pad);
  cost_.layers.back().kind = "conv_code";
  // 1x1 expansion back to co channels at the post-conv resolution.
  conv(name + "_exp", co, 1, 1, 0);
  cost_.layers.back().kind = "conv_exp";
  return *this;
}

CostBuilder& CostBuilder::pool(size_t k, size_t stride, size_t pad) {
  ALF_CHECK(h_ + 2 * pad >= k);
  h_ = (h_ + 2 * pad - k) / stride + 1;
  w_ = (w_ + 2 * pad - k) / stride + 1;
  return *this;
}

CostBuilder& CostBuilder::global_pool() {
  h_ = 1;
  w_ = 1;
  return *this;
}

CostBuilder& CostBuilder::fc(const std::string& name, size_t out_features) {
  LayerCost l;
  l.name = name;
  l.kind = "fc";
  l.ci = c_ * h_ * w_;
  l.co = out_features;
  l.k = 1;
  l.out_h = 1;
  l.out_w = 1;
  l.params = static_cast<unsigned long long>(l.ci) * out_features;
  l.macs = l.params;
  cost_.layers.push_back(l);
  c_ = out_features;
  h_ = w_ = 1;
  return *this;
}

CostBuilder& CostBuilder::add_layer(LayerCost layer) {
  cost_.layers.push_back(std::move(layer));
  return *this;
}

namespace {

/// Computes the cost of a single conv applied at explicit input dims,
/// without a running-shape builder (for parallel branches / shortcuts).
LayerCost conv_at(const std::string& name, size_t ci, size_t h, size_t w,
                  size_t co, size_t k, size_t stride, size_t pad) {
  CostBuilder b("tmp", ci, h, w);
  b.conv(name, co, k, stride, pad);
  return b.finish().layers.front();
}

/// Shared body of Plain-20 / ResNet-20: conv1 + 18 stage convs. ResNet-20
/// additionally has two 1x1 projection shortcuts at the stage transitions.
ModelCost cost_cifar20(const std::string& name, bool residual, size_t classes,
                       size_t base_width, size_t in_hw) {
  CostBuilder b(name, 3, in_hw, in_hw);
  b.conv("conv1", base_width, 3, 1, 1);
  const size_t widths[3] = {base_width, 2 * base_width, 4 * base_width};
  for (size_t s = 0; s < 3; ++s) {
    for (size_t blk = 1; blk <= 3; ++blk) {
      for (size_t j = 1; j <= 2; ++j) {
        const bool down = (s > 0 && blk == 1 && j == 1);
        const std::string lname = "conv" + std::to_string(s + 2) +
                                  std::to_string(blk) + std::to_string(j);
        if (down && residual) {
          b.add_layer(conv_at("shortcut" + std::to_string(s + 2), b.cur_c(),
                              b.cur_h(), b.cur_w(), widths[s], 1, 2, 0));
        }
        b.conv(lname, widths[s], 3, down ? 2 : 1, 1);
      }
    }
  }
  b.global_pool();
  b.fc("fc", classes);
  return b.finish();
}

}  // namespace

ModelCost cost_plain20(size_t classes, size_t base_width, size_t in_hw) {
  return cost_cifar20("Plain-20", /*residual=*/false, classes, base_width,
                      in_hw);
}

ModelCost cost_resnet20(size_t classes, size_t base_width, size_t in_hw) {
  return cost_cifar20("ResNet-20", /*residual=*/true, classes, base_width,
                      in_hw);
}

ModelCost cost_resnet18_imagenet() {
  CostBuilder b("ResNet-18", 3, 224, 224);
  b.conv("conv1", 64, 7, 2, 3);
  b.pool(3, 2, 1);  // 56x56
  const size_t widths[4] = {64, 128, 256, 512};
  for (size_t s = 0; s < 4; ++s) {
    for (size_t blk = 1; blk <= 2; ++blk) {
      const bool down = (s > 0 && blk == 1);
      const std::string base =
          "conv" + std::to_string(s + 2) + "_" + std::to_string(blk);
      if (down) {
        b.add_layer(conv_at("shortcut" + std::to_string(s + 2), b.cur_c(),
                            b.cur_h(), b.cur_w(), widths[s], 1, 2, 0));
      }
      b.conv(base + "_1", widths[s], 3, down ? 2 : 1, 1);
      b.conv(base + "_2", widths[s], 3, 1, 1);
    }
  }
  b.global_pool();
  b.fc("fc", 1000);
  return b.finish();
}

ModelCost cost_squeezenet_imagenet() {
  // SqueezeNet v1.0 with the original 227x227 AlexNet-style input.
  CostBuilder b("SqueezeNet", 3, 227, 227);
  b.conv("conv1", 96, 7, 2, 0);  // 111x111
  b.pool(3, 2);                  // 55x55
  auto fire = [&b](const std::string& name, size_t squeeze, size_t expand) {
    b.conv(name + "/squeeze1x1", squeeze, 1, 1, 0);
    const size_t c = b.cur_c(), h = b.cur_h(), w = b.cur_w();
    b.add_layer(conv_at(name + "/expand1x1", c, h, w, expand, 1, 1, 0));
    b.add_layer(conv_at(name + "/expand3x3", c, h, w, expand, 3, 1, 1));
    b.set_c(2 * expand);  // concat of the two expand branches
  };
  fire("fire2", 16, 64);
  fire("fire3", 16, 64);
  fire("fire4", 32, 128);
  b.pool(3, 2);  // 27x27
  fire("fire5", 32, 128);
  fire("fire6", 48, 192);
  fire("fire7", 48, 192);
  fire("fire8", 64, 256);
  b.pool(3, 2);  // 13x13
  fire("fire9", 64, 256);
  b.conv("conv10", 1000, 1, 1, 0);
  b.global_pool();
  return b.finish();
}

ModelCost cost_googlenet_imagenet() {
  CostBuilder b("GoogLeNet", 3, 224, 224);
  b.conv("conv1", 64, 7, 2, 3);  // 112
  b.pool(3, 2, 1);               // 56
  b.conv("conv2_reduce", 64, 1, 1, 0);
  b.conv("conv2", 192, 3, 1, 1);
  b.pool(3, 2, 1);  // 28

  auto inception = [&b](const std::string& name, size_t c1, size_t c3r,
                        size_t c3, size_t c5r, size_t c5, size_t pp) {
    const size_t c = b.cur_c(), h = b.cur_h(), w = b.cur_w();
    b.add_layer(conv_at(name + "/1x1", c, h, w, c1, 1, 1, 0));
    b.add_layer(conv_at(name + "/3x3_reduce", c, h, w, c3r, 1, 1, 0));
    b.add_layer(conv_at(name + "/3x3", c3r, h, w, c3, 3, 1, 1));
    b.add_layer(conv_at(name + "/5x5_reduce", c, h, w, c5r, 1, 1, 0));
    b.add_layer(conv_at(name + "/5x5", c5r, h, w, c5, 5, 1, 2));
    b.add_layer(conv_at(name + "/pool_proj", c, h, w, pp, 1, 1, 0));
    b.set_c(c1 + c3 + c5 + pp);  // branch concat
  };

  inception("3a", 64, 96, 128, 16, 32, 32);
  inception("3b", 128, 128, 192, 32, 96, 64);
  b.pool(3, 2, 1);  // 14
  inception("4a", 192, 96, 208, 16, 48, 64);
  inception("4b", 160, 112, 224, 24, 64, 64);
  inception("4c", 128, 128, 256, 24, 64, 64);
  inception("4d", 112, 144, 288, 32, 64, 64);
  inception("4e", 256, 160, 320, 32, 128, 128);
  b.pool(3, 2, 1);  // 7
  inception("5a", 256, 160, 320, 32, 128, 128);
  inception("5b", 384, 192, 384, 48, 128, 128);
  b.global_pool();
  b.fc("fc", 1000);
  return b.finish();
}

}  // namespace alf
