#include "nn/activations.hpp"

#include <cmath>

#include "core/check.hpp"

namespace alf {

Act parse_act(const std::string& name) {
  if (name == "none" || name == "nc") return Act::kNone;
  if (name == "relu") return Act::kRelu;
  if (name == "tanh") return Act::kTanh;
  if (name == "sigmoid") return Act::kSigmoid;
  ALF_CHECK(false) << "unknown activation: " << name;
  return Act::kNone;  // unreachable
}

const char* act_name(Act act) {
  switch (act) {
    case Act::kNone:
      return "none";
    case Act::kRelu:
      return "relu";
    case Act::kTanh:
      return "tanh";
    case Act::kSigmoid:
      return "sigmoid";
  }
  return "?";
}

Tensor act_forward(Act act, const Tensor& x) {
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const size_t n = x.numel();
  switch (act) {
    case Act::kNone:
      for (size_t i = 0; i < n; ++i) py[i] = px[i];
      break;
    case Act::kRelu:
      for (size_t i = 0; i < n; ++i) py[i] = px[i] > 0.0f ? px[i] : 0.0f;
      break;
    case Act::kTanh:
      for (size_t i = 0; i < n; ++i) py[i] = std::tanh(px[i]);
      break;
    case Act::kSigmoid:
      for (size_t i = 0; i < n; ++i) py[i] = 1.0f / (1.0f + std::exp(-px[i]));
      break;
  }
  return y;
}

Tensor act_backward(Act act, const Tensor& y, const Tensor& grad_y) {
  ALF_CHECK(same_shape(y, grad_y));
  Tensor gx(y.shape());
  const float* py = y.data();
  const float* pg = grad_y.data();
  float* px = gx.data();
  const size_t n = y.numel();
  switch (act) {
    case Act::kNone:
      for (size_t i = 0; i < n; ++i) px[i] = pg[i];
      break;
    case Act::kRelu:
      for (size_t i = 0; i < n; ++i) px[i] = py[i] > 0.0f ? pg[i] : 0.0f;
      break;
    case Act::kTanh:
      for (size_t i = 0; i < n; ++i) px[i] = pg[i] * (1.0f - py[i] * py[i]);
      break;
    case Act::kSigmoid:
      for (size_t i = 0; i < n; ++i) px[i] = pg[i] * py[i] * (1.0f - py[i]);
      break;
  }
  return gx;
}

void act_inplace(Act act, float* data, size_t n) {
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu:
      for (size_t i = 0; i < n; ++i) data[i] = data[i] > 0.0f ? data[i] : 0.0f;
      break;
    case Act::kTanh:
      for (size_t i = 0; i < n; ++i) data[i] = std::tanh(data[i]);
      break;
    case Act::kSigmoid:
      for (size_t i = 0; i < n; ++i)
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
      break;
  }
}

void bias_act_inplace(float* data, size_t rows, size_t cols,
                      const float* bias, Act act) {
  if (bias != nullptr) {
    for (size_t r = 0; r < rows; ++r) {
      const float b = bias[r];
      float* row = data + r * cols;
      for (size_t j = 0; j < cols; ++j) row[j] += b;
    }
  }
  act_inplace(act, data, rows * cols);
}

Tensor Activation::forward(const Tensor& x, bool train) {
  Tensor y = act_forward(act_, x);
  if (train) cached_y_ = y;
  return y;
}

Tensor Activation::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_y_.empty()) << "backward before forward";
  return act_backward(act_, cached_y_, grad_out);
}

}  // namespace alf
