// ExecContext: the mutable half of the compiled-model split (see plan.hpp).
//
// One ExecContext is everything a single in-flight batch needs that a Plan
// deliberately does not own: the activation arena, the per-chunk im2col and
// GEMM-result scratch, and (for quantized plans) the int8 activation and
// per-image scale scratch. Construction is cheap — a handful of vector
// allocations sized by the Plan's layout, no weight copies — so a serving
// worker pool hands one context per hosted plan to every worker and runs N
// batches of the same compiled model concurrently.
//
// Concurrency contract: a context is single-threaded (one run at a time;
// the run itself may fan out over the process worker pool exactly as
// before), but any number of contexts may run the SAME Plan from different
// threads simultaneously — runs read the Plan and write only their own
// context, and the kernel backends keep per-thread scratch only. Results
// are bit-identical across contexts, thread counts, and batch packings:
// the chunk grid is frozen in the Plan and every per-image quantization
// scale depends only on image content.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/plan.hpp"

namespace alf {

class ExecContext {
 public:
  /// Allocates arena + scratch for `plan` (shared, kept alive by the
  /// context). All storage is allocated here, never during run.
  explicit ExecContext(std::shared_ptr<const Plan> plan);

  ExecContext(ExecContext&&) = default;
  ExecContext& operator=(ExecContext&&) = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Executes the plan on x [n, Ci, H, W] with n <= plan().batch(); writes
  /// the logits into `out` [n, classes] (preallocated by the caller).
  /// Performs zero heap allocations when the batch runs as a single chunk.
  void run(const Tensor& x, Tensor& out);

  /// Convenience overload that allocates the output tensor.
  Tensor run(const Tensor& x);

  /// Raw row-range form of run(): executes the plan on the first `n` images
  /// at `x` (n * image_floats() floats, NCHW) and writes n * classes()
  /// logit floats to `out`. No shape objects are consulted, so a caller can
  /// pack several requests into contiguous rows of one preallocated buffer
  /// and serve a partial batch without reshaping tensors — this is the
  /// serving dispatch path. Pointer extents are the caller's contract; n is
  /// checked against the compiled batch.
  void run_rows(const float* x, size_t n, float* out);

  const Plan& plan() const { return *plan_; }
  const std::shared_ptr<const Plan>& plan_ptr() const { return plan_; }

  /// Total arena floats (activation slots + im2col scratch).
  size_t workspace_floats() const { return workspace_.size(); }
  /// Arena base pointer; stable across run() calls (tests assert no growth).
  const float* workspace_data() const { return workspace_.data(); }

 private:
  /// Executes one batched conv step (fixed compile-time chunk grid).
  void run_conv(const Step& st, const float* in, float* out, size_t n);

  std::shared_ptr<const Plan> plan_;
  std::vector<float> workspace_;
  std::vector<int8_t> qws_;  ///< int8 activation scratch (quantized plans)
  std::vector<float> qbs_;   ///< per-image scale/inverse scratch (2 slices
                             ///< of Plan::qbs_stride() per chunk)
  /// ASan builds only (core/asan.hpp): index of the last step that reads
  /// or writes each arena slot (entry 0 = the external input, unused; the
  /// final step's output extends to steps().size() — the logit copy reads
  /// it). run_rows poisons a slot the moment its last toucher retires and
  /// unpoisons exactly the rows a step is about to write, so a kernel
  /// reading a DEAD slot — stale activations the allocator recycled —
  /// faults as use-after-poison instead of silently producing numbers.
  /// Empty in uninstrumented builds.
  std::vector<size_t> slot_last_touch_;
};

}  // namespace alf
