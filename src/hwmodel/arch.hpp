// Eyeriss-like accelerator description (the paper's Sec. IV-B setup).
//
// 16x16 PE array executing a row-stationary dataflow; each PE holds three
// register files (inputs / weights / partial sums) totalling 220 16-bit
// words; a 128KB global buffer holds ifmaps and ofmaps while *weights bypass
// the global buffer* and stream from DRAM into the PE register files.
// Energy is normalized to the cost of a single register-file read; latency
// to a register bandwidth of one word (2 bytes) per cycle.
#pragma once

#include <cstddef>

#include "core/check.hpp"

namespace alf {

/// Architecture parameters; defaults reproduce the paper's Eyeriss model.
struct EyerissConfig {
  size_t pe_rows = 16;
  size_t pe_cols = 16;
  size_t rf_words_per_pe = 220;  ///< combined input+weight+psum RFs
  size_t gb_words = 64 * 1024;   ///< 128KB of 16-bit words

  // Per-word access energy, normalized to one RF read (Eyeriss ISCA'16).
  double e_rf = 1.0;
  double e_noc = 2.0;
  double e_gb = 6.0;
  double e_dram = 200.0;

  // Sustained bandwidths in words/cycle (latency normalized to a register
  // bandwidth of 2 bytes/cycle = 1 word/cycle).
  double dram_bw = 1.0;
  double gb_bw = 4.0;

  size_t num_pes() const { return pe_rows * pe_cols; }
};

/// Derives the energy/capacity tables for a narrower datapath word — the
/// hardware-side counterpart of the engine's int8 lowering, so Table 3's
/// bit-width sweeps can be costed on the accelerator model, not just timed
/// on the CPU (bench_gemm reports both side by side). Relative to the
/// 16-bit baseline words:
///   - per-word access energies scale linearly with word bits (wires and
///     sense amps moved per access shrink proportionally),
///   - RF/GB capacities in *words* grow by 16/bits (same SRAM bytes),
///   - sustained bandwidths in words/cycle grow by 16/bits (same
///     bytes/cycle) — which is exactly where a measured int8 GEMM speedup
///     shows up on the CPU too.
/// bits must be in [2, 16].
inline EyerissConfig scaled_to_bits(const EyerissConfig& base, int bits) {
  ALF_CHECK(bits >= 2 && bits <= 16) << "scaled_to_bits: bits=" << bits;
  EyerissConfig c = base;
  const double ratio = static_cast<double>(bits) / 16.0;
  c.e_rf = base.e_rf * ratio;
  c.e_noc = base.e_noc * ratio;
  c.e_gb = base.e_gb * ratio;
  c.e_dram = base.e_dram * ratio;
  c.rf_words_per_pe =
      static_cast<size_t>(static_cast<double>(base.rf_words_per_pe) / ratio);
  c.gb_words =
      static_cast<size_t>(static_cast<double>(base.gb_words) / ratio);
  c.dram_bw = base.dram_bw / ratio;
  c.gb_bw = base.gb_bw / ratio;
  return c;
}

/// Mapper search controls (paper: exhaustive, 100K timeout, 1K victory).
///
/// The victory default is higher than the paper's 1K because this mapper
/// enumerates systematically (not randomly): early candidates are all
/// spatially-serial, so a small victory window would terminate before any
/// parallel mapping is visited. 100K evaluations take ~0.1s per layer.
struct MapperConfig {
  size_t max_iterations = 100000;  ///< hard cap on evaluated mappings
  size_t victory = 50000;          ///< stop after this many non-improvements
  /// Objective: energy * delay (EDP) if true, else energy only.
  bool edp_objective = true;
};

}  // namespace alf
