// Annotated mutex wrapper + scoped lock for Clang Thread Safety Analysis.
//
// std::mutex and std::lock_guard carry no thread-safety attributes, so a
// codebase using them directly gets nothing from -Wthread-safety: the
// analysis never sees a lock acquired and flags every guarded access.
// These two thin wrappers cost nothing at runtime (one std::mutex, one
// std::unique_lock — both inlined) and make every lock/unlock event
// visible to the analysis (thread_annotations.hpp).
//
// MutexLock is a *relockable* scoped capability: unlock()/lock() let a
// holder release the mutex across a blocking region (an engine run, a
// callback) and reacquire it, with the analysis tracking the held state
// through both — exactly the worker-loop shape in serve/ and the pool
// dispatch in core/parallel.cpp. Condition-variable waits go through the
// wait*() members: the lock is released and reacquired inside, and the
// analysis (correctly, for invariant purposes) treats the capability as
// held across the call, since it is held again whenever wait returns.
#pragma once

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

namespace alf {

/// Annotated exclusive mutex. Use with MutexLock; lock()/unlock() are
/// public for the rare manual pairing but the scoped form is preferred.
class ALF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ALF_ACQUIRE() { m_.lock(); }
  void unlock() ALF_RELEASE() { m_.unlock(); }

  /// The wrapped std::mutex, for std::condition_variable interop inside
  /// MutexLock. Raw lock/unlock through this pointer bypasses the
  /// analysis — don't.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII scoped lock over Mutex, relockable and condition-variable-aware.
class ALF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ALF_ACQUIRE(mu) : lk_(mu.native()) {}
  ~MutexLock() ALF_RELEASE() {}  // releases iff currently held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release / reacquire the mutex mid-scope.
  void unlock() ALF_RELEASE() { lk_.unlock(); }
  void lock() ALF_ACQUIRE() { lk_.lock(); }

  /// Condition-variable waits. The lock is held again when these return;
  /// re-check the predicate in the CALLING scope (a predicate lambda would
  /// read guarded state outside the analysis's view of this function).
  void wait(std::condition_variable& cv) { cv.wait(lk_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      std::condition_variable& cv,
      const std::chrono::time_point<Clock, Duration>& tp) {
    return cv.wait_until(lk_, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(std::condition_variable& cv,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv.wait_for(lk_, d);
  }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace alf
