// Plan-based inference engine: the deployment execution substrate.
//
// The training framework walks the Layer tree and allocates a fresh Tensor
// per layer per call — right for autograd, wasteful for serving. The engine
// instead compiles a model once into a flat plan:
//
//   Engine eng = Engine::compile(model, batch, in_c, h, w);
//   eng.run(x, logits);   // zero heap allocations per call
//
// Compilation walks the model (descending into Sequential and
// ResidualBlock, and lowering AlfConv blocks to their deployed dense
// code-conv + 1x1-expansion pair), folds inference-mode BatchNorm into the
// preceding conv/linear weights and bias, fuses trailing activations into
// the kernel epilogues, and binds every step to a slot of one preallocated
// workspace arena. Activation slots are reused by a linear-scan register
// allocator (ping-pong for straight-line stretches, a third slot across
// residual shortcuts); per-chunk im2col scratch lives at the end of the
// arena so the batched conv steps never allocate.
//
// All kernels are the free functions the nn/ layers themselves forward
// through (conv2d_image_forward, linear_forward_view, pooling views), so
// there is no duplicated math. Results are bit-identical for any thread
// count: the batch partition is fixed at compile time and each image is
// written by exactly one worker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace alf {

namespace kernels {
struct KernelBackend;
}  // namespace kernels

/// Kernel selector of one compiled step.
enum class OpKind {
  kConv,          ///< im2col+GEMM conv, folded-BN bias + activation epilogue
  kLinear,        ///< fully-connected, bias + activation epilogue
  kGlobalAvgPool, ///< [N,C,H,W] -> [N,C]
  kMaxPool,       ///< non-overlapping window max
  kAdd,           ///< residual merge: out = act(out + in)
  kScaleShift,    ///< per-channel affine (BatchNorm that could not be folded)
  kActivation,    ///< standalone activation (could not be fused)
};

/// Printable kind tag.
const char* op_kind_name(OpKind kind);

/// One stateless kernel invocation. Weights are compile-time copies (with
/// BN already folded in); activations are addressed by arena slot index.
/// Slot 0 is the external input tensor of run() and is never written.
struct Step {
  OpKind kind = OpKind::kConv;
  std::string name;      ///< source layer name(s), for plan dumps
  size_t in = 0;         ///< arena slot holding the input activation
  size_t out = 0;        ///< arena slot receiving the output activation
  Act act = Act::kNone;  ///< fused epilogue activation

  // Per-image element counts of the in/out activations.
  size_t in_sz = 0;
  size_t out_sz = 0;

  // kConv / kMaxPool / kGlobalAvgPool / kScaleShift geometry.
  ConvGeom geom;
  size_t out_c = 0;
  size_t window = 0;  ///< kMaxPool

  // kLinear geometry.
  size_t in_features = 0;
  size_t out_features = 0;

  Tensor w;     ///< [Co, Ci*K*K] (kConv) or [out, in] (kLinear); released
                ///< (empty) on int8-lowered steps, which read only qw
  Tensor bias;  ///< folded bias [Co]/[out]; empty = no bias
  Tensor scale, shift;  ///< kScaleShift per-channel affine

  /// Conv execution strategy, chosen at compile time per layer:
  /// - shift_gemm (wide maps and all 1x1s): no im2col at all — K*K GEMMs of
  ///   per-offset weight slices against shifted views of the input planes,
  ///   then the `pad` border columns are recomputed directly. `w9` holds
  ///   the compile-time repacking [K*K, Co, Ci] of `w` (empty for 1x1).
  /// - chunk-batched im2col (narrow maps, strided convs): all images of a
  ///   batch chunk unfold side by side into one [Ci*K*K, G*Ho*Wo] matrix,
  ///   one GEMM computes the chunk, and the result scatters back to NCHW.
  /// Both exploit what only a compiled plan has: pre-packed weights and
  /// arena scratch sized once for the whole batch.
  bool shift_gemm = false;
  Tensor w9;

  /// int8 lowering (plans compiled with a quantized-datapath backend):
  /// the step runs the backend's qgemm instead of a float GEMM. `qw` is
  /// the pre-quantized weight panel — [Co, Ci*K*K] for kConv, the
  /// transposed [in, out] B panel for kLinear — on the symmetric `qbits`
  /// grid with one step size per output channel (`qw_scales`; BN folding
  /// runs first and leaves rows with very different ranges, so per-tensor
  /// weight calibration would burn most of the grid). Activations are
  /// quantized per run into arena scratch with one max-abs scale PER
  /// IMAGE — the scales depend only on image content, never on the chunk
  /// grid, which is what keeps quantized runs bit-identical across thread
  /// counts and batch packings.
  bool quantized = false;
  std::vector<int8_t> qw;
  std::vector<float> qw_scales;
  int qbits = 8;
  /// Compile-time proof that this step's input activation is non-negative
  /// (produced through a ReLU/sigmoid chain). Quantized steps then use an
  /// asymmetric activation grid (zero-point at the bottom of the int8
  /// range), doubling the resolution the symmetric grid would spend on
  /// values that cannot occur.
  bool in_nonneg = false;
};

/// Compile-time options of a plan.
struct EngineOptions {
  /// Kernel-backend name ("scalar" / "simd" / "int8" / a registered
  /// plugin); "" resolves the process default (ALF_BACKEND env or best
  /// available). The registry is consulted exactly once, here: the plan
  /// holds the backend pointer for its lifetime. Selecting "int8" also
  /// lowers every conv/linear step to the quantized datapath, e.g.
  ///   Engine::compile(model, batch, c, h, w, {.backend = "int8"});
  std::string backend;
  /// Quantization grid width for int8-lowered steps (2..8; the paper's
  /// Table 3 bit-width sweeps narrow this while storage stays int8).
  int bits = 8;
};

/// Compiled model: flat step list + workspace arena. Movable, not copyable
/// (the arena is large and a compiled plan is cheap to rebuild).
class Engine {
 public:
  /// Compiles `model` for inference at the given maximum batch size and
  /// input geometry. The model is read, not mutated; weights are copied
  /// (with BN folded), so the Engine outlives the model. Layers the engine
  /// cannot lower (e.g. AlfConv with BN_inter) fail with a CheckError.
  static Engine compile(const Sequential& model, size_t batch, size_t in_c,
                        size_t in_h, size_t in_w);

  /// As above with explicit options: kernel backend (resolved against the
  /// registry once, at compile time) and, for backend "int8", the
  /// quantization bit width of the lowered conv/linear steps.
  static Engine compile(const Sequential& model, size_t batch, size_t in_c,
                        size_t in_h, size_t in_w, const EngineOptions& opts);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the plan on x [n, Ci, H, W] with n <= batch(); writes the
  /// logits into `out` [n, classes] (preallocated by the caller). Performs
  /// zero heap allocations when the batch runs as a single chunk (1-core
  /// host, 1 compile-time thread, or n == 1); multi-chunk runs pay one
  /// pool-dispatch closure per conv step.
  void run(const Tensor& x, Tensor& out);

  /// Convenience overload that allocates the output tensor.
  Tensor run(const Tensor& x);

  /// Raw row-range form of run(): executes the plan on the first `n` images
  /// at `x` (n * in_c()*in_h()*in_w() floats, NCHW) and writes n * classes()
  /// logit floats to `out`. No shape objects are consulted, so a caller can
  /// pack several requests into contiguous rows of one preallocated buffer
  /// and serve a partial batch without reshaping tensors — this is the
  /// BatchServer dispatch path. Pointer extents are the caller's contract;
  /// n is checked against the compiled batch.
  void run_rows(const float* x, size_t n, float* out);

  // --- Introspection --------------------------------------------------------

  const std::vector<Step>& steps() const { return steps_; }
  size_t batch() const { return batch_; }
  size_t classes() const { return classes_; }
  size_t in_c() const { return in_c_; }
  size_t in_h() const { return in_h_; }
  size_t in_w() const { return in_w_; }
  /// Floats of one input image (= in_c * in_h * in_w).
  size_t image_floats() const { return in_c_ * in_h_ * in_w_; }
  /// Total arena floats (activation slots + im2col scratch).
  size_t workspace_floats() const { return workspace_.size(); }
  /// Arena base pointer; stable across run() calls (tests assert no growth).
  const float* workspace_data() const { return workspace_.data(); }
  size_t activation_slots() const { return slots_; }
  /// Kernel backend the plan was compiled against.
  const kernels::KernelBackend* backend() const { return backend_; }
  const char* backend_name() const;
  /// True when conv/linear steps were lowered to the int8 qgemm datapath.
  bool quantized() const { return quant_; }

  /// Human-readable plan: one line per step with fused ops and slots.
  std::string plan_str() const;

 private:
  Engine() = default;

  /// Executes one batched conv step (fixed compile-time chunk grid).
  void run_conv(const Step& st, const float* in, float* out, size_t n);

  std::vector<Step> steps_;
  std::vector<float> workspace_;
  std::vector<int8_t> qws_;  ///< int8 activation scratch (quantized plans)
  std::vector<float> qbs_;   ///< per-image scale/inverse scratch (2 slices
                             ///< of qbs_sz_ per chunk)
  size_t qbs_sz_ = 0;        ///< floats per scale slice (max GEMM columns)

  const kernels::KernelBackend* backend_ = nullptr;
  bool quant_ = false;  ///< conv/linear steps lowered to qgemm

  size_t batch_ = 0;
  size_t in_c_ = 0, in_h_ = 0, in_w_ = 0;
  size_t classes_ = 0;
  size_t slots_ = 0;        ///< number of activation slots
  size_t slot_stride_ = 0;  ///< floats per activation slot
  size_t col_off_ = 0;      ///< arena offset of the im2col scratch block
  size_t col_sz_ = 0;       ///< floats per per-chunk im2col scratch slice
  size_t res_off_ = 0;      ///< arena offset of the GEMM-result scratch
  size_t res_sz_ = 0;       ///< floats per per-chunk result scratch slice
  size_t nchunks_ = 0;      ///< fixed batch partition (determinism)
};

}  // namespace alf
