// serve — closed-loop load generator for the batched inference servers.
//
// C client threads replay a bursty request stream (mostly small requests
// back-to-back, occasional think-time gaps) against three serving paths
// under the same offered load:
//
//   layer-tree : the pre-engine baseline — every request runs its own
//                Sequential::forward on a per-client model replica
//   engine     : one shared BatchServer — mutex/CV queue, dynamic batching
//                up to Engine::batch() images per tick, a single
//                Engine::run_rows per dispatch
//   multi-model: one ModelServer hosting the float ResNet-20 AND its int8
//                twin (two shared Plans, per-model queues, weighted
//                scheduling at --weight-f32/--weight-int8, K workers each
//                owning one ExecContext per plan); every request is
//                routed to one of the two models
//
// Reports per-request p50/p95/p99 latency (nearest-rank percentile() from
// bench_common.hpp) — per model on the multi-model path — sustained
// images/s, and the servers' batch-fill counters, which show the dynamic
// batchers aggregating bursts. With --json the record lands in
// BENCH_serve.json (row names deliberately include quoted policy strings —
// the writer must escape them).
//
// With --plan-dir DIR the two served plans are not compiled but loaded
// from DIR/resnet20_{f32,int8}.plan (blobs written by alf_planc at the
// same scale) — the deploy-many half of compile-once/deploy-many. The run
// then also records cold_start/* rows: the plan::load cost actually paid
// vs the Plan::compile cost avoided.
//
//   ./serve [--quick|--full] [--requests N] [--clients N] [--workers N]
//           [--weight-f32 W] [--weight-int8 W] [--plan-dir DIR]
//           [--json <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "engine/plan_io.hpp"
#include "kernels/backend.hpp"
#include "serve/batch_server.hpp"
#include "serve/model_server.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

/// One scripted request of a client's closed loop.
struct PlannedRequest {
  size_t n = 0;            ///< images in the request
  unsigned think_us = 0;   ///< pause before submitting (burst gap)
  bool quant = false;      ///< multi-model path: route to the int8 twin
};

/// Bursty per-client script: ~75% of requests follow the previous one
/// back-to-back (a burst), the rest arrive after a 100-900us gap; request
/// sizes are mostly 1-4 images with an occasional 8-image straggler. Half
/// the stream targets the int8 twin on the multi-model path.
std::vector<std::vector<PlannedRequest>> make_plan(size_t clients,
                                                   size_t per_client,
                                                   Rng& rng) {
  std::vector<std::vector<PlannedRequest>> plan(clients);
  for (auto& reqs : plan) {
    reqs.resize(per_client);
    for (PlannedRequest& r : reqs) {
      const double u = rng.uniform();
      r.n = u < 0.8 ? 1 + rng.uniform_index(4) : 8;
      r.think_us = rng.uniform() < 0.75
                       ? 0
                       : static_cast<unsigned>(100 + rng.uniform_index(800));
      r.quant = rng.uniform() < 0.5;
    }
  }
  return plan;
}

struct LoadResult {
  std::vector<double> latencies_ms;  // per request, all clients merged
  double images_per_s = 0.0;
};

/// Drives the scripted closed loop: each client thread issues its requests
/// in order (sleep think_us, call serve_one, measure). `serve_one(client,
/// x)` must block until the request completes.
template <typename ServeOne>
LoadResult run_load(const std::vector<std::vector<PlannedRequest>>& plan,
                    const std::vector<Tensor>& inputs_by_n,
                    ServeOne&& serve_one) {
  const size_t clients = plan.size();
  std::vector<std::vector<double>> lat(clients);
  size_t images = 0;
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs) images += r.n;

  const auto t_begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(plan[c].size());
      for (const PlannedRequest& r : plan[c]) {
        if (r.think_us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(r.think_us));
        const Tensor& x = inputs_by_n[r.n];
        const auto t0 = std::chrono::steady_clock::now();
        serve_one(c, x);
        const auto t1 = std::chrono::steady_clock::now();
        lat[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();

  LoadResult res;
  for (auto& v : lat)
    res.latencies_ms.insert(res.latencies_ms.end(), v.begin(), v.end());
  res.images_per_s = static_cast<double>(images) / total_s;
  return res;
}

/// Multi-model flavor of run_load: the same scripted closed loop, but each
/// request routes to the float or int8 model per its plan flag, and
/// latencies are collected per model (index 0 = f32, 1 = int8).
struct MixedResult {
  LoadResult per_model[2];
  double aggregate_images_per_s = 0.0;
};

MixedResult run_mixed_load(const std::vector<std::vector<PlannedRequest>>& plan,
                           const std::vector<Tensor>& inputs_by_n,
                           ModelServer& server, const char* f32_name,
                           const char* int8_name) {
  const size_t clients = plan.size();
  std::vector<std::vector<double>> lat_f(clients), lat_q(clients);
  size_t images = 0, images_by_model[2] = {0, 0};
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs) {
      images += r.n;
      images_by_model[r.quant ? 1 : 0] += r.n;
    }

  const auto t_begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (const PlannedRequest& r : plan[c]) {
        if (r.think_us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(r.think_us));
        const Tensor& x = inputs_by_n[r.n];
        const auto t0 = std::chrono::steady_clock::now();
        server.submit(r.quant ? int8_name : f32_name, x).get();
        const auto t1 = std::chrono::steady_clock::now();
        (r.quant ? lat_q : lat_f)[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();

  MixedResult res;
  for (size_t c = 0; c < clients; ++c) {
    res.per_model[0].latencies_ms.insert(res.per_model[0].latencies_ms.end(),
                                         lat_f[c].begin(), lat_f[c].end());
    res.per_model[1].latencies_ms.insert(res.per_model[1].latencies_ms.end(),
                                         lat_q[c].begin(), lat_q[c].end());
  }
  for (int m = 0; m < 2; ++m)
    res.per_model[m].images_per_s =
        static_cast<double>(images_by_model[m]) / total_s;
  res.aggregate_images_per_s = static_cast<double>(images) / total_s;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::string json_path = parse_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_serve.json";

  size_t per_client = 100, clients = 6;
  if (std::strcmp(s.name, "quick") == 0) {
    per_client = 40;
    clients = 4;
  } else if (std::strcmp(s.name, "full") == 0) {
    per_client = 200;
    clients = 8;
  }
  size_t workers = 2;
  double weight_f32 = 3.0, weight_int8 = 1.0;
  std::string plan_dir;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0)
      per_client = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
    if (std::strcmp(argv[i], "--clients") == 0)
      clients = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
    if (std::strcmp(argv[i], "--workers") == 0)
      workers = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
    if (std::strcmp(argv[i], "--weight-f32") == 0)
      weight_f32 = std::max(0.001, std::atof(argv[i + 1]));
    if (std::strcmp(argv[i], "--weight-int8") == 0)
      weight_int8 = std::max(0.001, std::atof(argv[i + 1]));
    if (std::strcmp(argv[i], "--plan-dir") == 0) plan_dir = argv[i + 1];
  }
  const size_t max_batch = 32;
  const uint64_t max_wait_us = 200;

  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;

  // One model replica per layer-tree client (forward caches per-layer state,
  // so replicas keep the baseline race-free); identical weights everywhere
  // via the fixed seed. The engine compiles from replica 0.
  std::vector<std::unique_ptr<Sequential>> replicas(clients);
  for (auto& m : replicas) {
    Rng rng(17);
    m = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
    warm_bn(*m, mc.in_channels, s.hw, rng);
  }

  Rng rng(29);
  std::vector<Tensor> inputs_by_n(max_batch + 1);
  const auto plan = make_plan(clients, per_client, rng);
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs)
      if (inputs_by_n[r.n].empty())
        inputs_by_n[r.n] =
            random_input({r.n, mc.in_channels, s.hw, s.hw}, rng);

  std::printf(
      "serve: %zu clients x %zu closed-loop requests, engine batch %zu, "
      "max_wait %lluus (scale=%s)\n\n",
      clients, per_client, max_batch,
      static_cast<unsigned long long>(max_wait_us), s.name);

  // --- Baseline: per-request layer-tree forward on the client thread. ---
  for (size_t c = 0; c < clients; ++c)  // untimed warmup
    replicas[c]->forward(inputs_by_n[1], false);
  const LoadResult layers = run_load(
      plan, inputs_by_n,
      [&](size_t c, const Tensor& x) { replicas[c]->forward(x, false); });

  // --- Engine path: shared BatchServer, dynamic batching. The float plan
  // is created ONCE and shared with the multi-model path below (the whole
  // point of the Plan/ExecContext split) — compiled from the model, or
  // with --plan-dir loaded from its alf_planc blob. The compile runs (and
  // is timed) either way, so the cold_start rows always have a baseline.
  const auto dur_ms = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  const auto load_blob = [&](const char* stem, double* load_ms,
                             double* blob_kib) {
    const std::string path = plan_dir + "/" + stem + ".plan";
    const auto t0 = std::chrono::steady_clock::now();
    auto loaded = plan::load(path);
    *load_ms = dur_ms(t0);
    *blob_kib =
        static_cast<double>(std::filesystem::file_size(path)) / 1024.0;
    if (loaded->batch() != max_batch || loaded->in_h() != s.hw ||
        loaded->in_c() != mc.in_channels) {
      std::fprintf(stderr,
                   "serve: %s was generated at a different scale (batch %zu "
                   "hw %zu); regenerate with alf_planc at --%s\n",
                   path.c_str(), loaded->batch(), loaded->in_h(), s.name);
      std::exit(1);
    }
    return loaded;
  };
  const auto t_cf = std::chrono::steady_clock::now();
  auto fplan =
      Plan::compile(*replicas[0], max_batch, mc.in_channels, s.hw, s.hw);
  const double compile_f32_ms = dur_ms(t_cf);
  double load_f32_ms = 0.0, blob_f32_kib = 0.0;
  if (!plan_dir.empty())
    fplan = load_blob("resnet20_f32", &load_f32_ms, &blob_f32_kib);
  BatchServer::Config cfg;
  cfg.max_wait_us = max_wait_us;
  BatchServer server(fplan, cfg);
  server.submit(inputs_by_n[1]).get();  // untimed warmup
  const ServeStats warm = server.stats();
  const LoadResult engine = run_load(
      plan, inputs_by_n,
      [&](size_t, const Tensor& x) { server.submit(x).get(); });
  ServeStats st = server.stats();
  server.stop();
  st.batches -= warm.batches;  // exclude the warmup dispatch
  st.requests -= warm.requests;
  st.images -= warm.images;

  // --- Multi-model path: ModelServer hosting the float net + its int8
  // twin on a shared worker pool (one ExecContext per worker per plan),
  // weighted scheduling between the two queues. ---
  const char* kF32 = "resnet20_f32";
  const char* kInt8 = "resnet20_int8";
  const auto t_cq = std::chrono::steady_clock::now();
  auto qplan = Plan::compile(*replicas[0], max_batch, mc.in_channels, s.hw,
                             s.hw, {.backend = "int8", .bits = 8, .name = ""});
  const double compile_int8_ms = dur_ms(t_cq);
  double load_int8_ms = 0.0, blob_int8_kib = 0.0;
  if (!plan_dir.empty())
    qplan = load_blob("resnet20_int8", &load_int8_ms, &blob_int8_kib);
  ModelServer::Config ms_cfg;
  ms_cfg.workers = workers;
  ModelServer multi(ms_cfg);
  ModelServer::ModelConfig f32_cfg, int8_cfg;
  f32_cfg.max_wait_us = max_wait_us;
  f32_cfg.weight = weight_f32;
  int8_cfg.max_wait_us = max_wait_us;
  int8_cfg.weight = weight_int8;
  multi.add_model(kF32, fplan, f32_cfg);
  multi.add_model(kInt8, qplan, int8_cfg);
  multi.start();
  multi.submit(kF32, inputs_by_n[1]).get();  // untimed warmups
  multi.submit(kInt8, inputs_by_n[1]).get();
  const ServeStats warm_f = multi.stats(kF32);
  const ServeStats warm_q = multi.stats(kInt8);
  const MixedResult mixed =
      run_mixed_load(plan, inputs_by_n, multi, kF32, kInt8);
  ServeStats st_f = multi.stats(kF32);
  ServeStats st_q = multi.stats(kInt8);
  multi.stop();
  st_f.batches -= warm_f.batches;  // exclude the warmup dispatches
  st_f.images -= warm_f.images;
  st_q.batches -= warm_q.batches;
  st_q.images -= warm_q.images;

  Table table("Closed-loop serving latency per request (ms)");
  table.set_header({"path", "p50", "p95", "p99", "images/s"});
  // Request-to-model routing is random, so a tiny --requests run can leave
  // one model with no traffic; percentile() throws on an empty sample.
  const auto pct = [](const std::vector<double>& v, double q) {
    return v.empty() ? 0.0 : percentile(v, q);
  };
  const auto add = [&](const char* name, const LoadResult& r) {
    table.add_row({name, Table::fmt(pct(r.latencies_ms, 0.50), 3),
                   Table::fmt(pct(r.latencies_ms, 0.95), 3),
                   Table::fmt(pct(r.latencies_ms, 0.99), 3),
                   Table::fmt(r.images_per_s, 0)});
  };
  add("layer tree", layers);
  add("engine+batching", engine);
  add("multi f32", mixed.per_model[0]);
  add("multi int8", mixed.per_model[1]);
  table.print();
  std::printf(
      "\nmulti-model: %zu workers, weights f32=%.1f int8=%.1f, aggregate "
      "%.0f images/s (f32: %zu batches avg fill %.1f | int8: %zu batches "
      "avg fill %.1f)\n",
      workers, weight_f32, weight_int8, mixed.aggregate_images_per_s,
      st_f.batches, st_f.avg_fill(), st_q.batches, st_q.avg_fill());
  std::printf(
      "\nbatcher: %zu dispatches for %zu requests (%zu images), avg fill "
      "%.1f/%zu images, %zu full batches, max fill %zu\n",
      st.batches, st.requests, st.images, st.avg_fill(), max_batch,
      st.full_batches, st.max_fill);
  const double p50_layers = percentile(layers.latencies_ms, 0.50);
  const double p50_engine = percentile(engine.latencies_ms, 0.50);
  std::printf("engine-path p50 %.3fms vs layer-tree p50 %.3fms (%s)\n",
              p50_engine, p50_layers,
              p50_engine <= p50_layers ? "OK: no worse" : "SLOWER");

  BenchJson json("serve", s.name);
  BenchRow& lt = json.row("layer_tree/per_request");
  lt.wall_ms = p50_layers;
  lt.extra["p95_ms"] = percentile(layers.latencies_ms, 0.95);
  lt.extra["p99_ms"] = percentile(layers.latencies_ms, 0.99);
  lt.extra["images_per_s"] = layers.images_per_s;
  // The policy string carries quotes on purpose: the JSON writer must
  // escape row names or the trajectory diff breaks (see json_escape).
  char name[96];
  std::snprintf(name, sizeof(name),
                "engine/policy=\"batch=%zu,max_wait=%lluus\"", max_batch,
                static_cast<unsigned long long>(max_wait_us));
  BenchRow& en = json.row(name);
  en.wall_ms = p50_engine;
  en.extra["p95_ms"] = percentile(engine.latencies_ms, 0.95);
  en.extra["p99_ms"] = percentile(engine.latencies_ms, 0.99);
  en.extra["images_per_s"] = engine.images_per_s;
  en.extra["avg_fill"] = st.avg_fill();
  en.extra["full_batches"] = static_cast<double>(st.full_batches);
  en.extra["dispatches"] = static_cast<double>(st.batches);
  en.extra["speedup_p50_vs_layers"] = p50_layers / p50_engine;
  // Per-model multi-tenant rows + the aggregate. Row names carry the
  // scheduling weight as a quoted policy string (escaping regression
  // check, like the engine row above).
  const auto add_model_row = [&](const char* model, const LoadResult& r,
                                 double weight, const ServeStats& mst) {
    char row[96];
    std::snprintf(row, sizeof(row), "model_server/%s policy=\"w=%.1f\"",
                  model, weight);
    BenchRow& br = json.row(row);
    br.wall_ms = pct(r.latencies_ms, 0.50);
    br.extra["p95_ms"] = pct(r.latencies_ms, 0.95);
    br.extra["p99_ms"] = pct(r.latencies_ms, 0.99);
    br.extra["images_per_s"] = r.images_per_s;
    br.extra["avg_fill"] = mst.avg_fill();
    br.extra["dispatches"] = static_cast<double>(mst.batches);
  };
  add_model_row(kF32, mixed.per_model[0], weight_f32, st_f);
  add_model_row(kInt8, mixed.per_model[1], weight_int8, st_q);
  // Explicit float-vs-int8 comparison under the same mixed load: per-tail
  // latency ratios (f32 / int8 — > 1 means the quantized twin is faster)
  // plus which qgemm kernel served it, so the serving-path effect of a
  // kernel change is diffable without cross-referencing the per-model rows.
  {
    const double f50 = pct(mixed.per_model[0].latencies_ms, 0.50);
    const double q50 = pct(mixed.per_model[1].latencies_ms, 0.50);
    BenchRow& cmp = json.row("model_server/int8_vs_float");
    cmp.extra["p50_f32_ms"] = f50;
    cmp.extra["p50_int8_ms"] = q50;
    cmp.extra["p95_f32_ms"] = pct(mixed.per_model[0].latencies_ms, 0.95);
    cmp.extra["p95_int8_ms"] = pct(mixed.per_model[1].latencies_ms, 0.95);
    cmp.extra["p99_f32_ms"] = pct(mixed.per_model[0].latencies_ms, 0.99);
    cmp.extra["p99_int8_ms"] = pct(mixed.per_model[1].latencies_ms, 0.99);
    if (q50 > 0.0) cmp.extra["p50_speedup_int8"] = f50 / q50;
    cmp.extra_str["qgemm_backend"] =
        kernels::best_quantized_backend()->name;
    cmp.extra_str["cpu_allowed"] =
        kernels::cpu_feature_names(kernels::allowed_cpu_features());
  }
  // Aggregate latency is the p50 over BOTH models' requests merged, not a
  // per-model alias.
  std::vector<double> all_lat = mixed.per_model[0].latencies_ms;
  all_lat.insert(all_lat.end(), mixed.per_model[1].latencies_ms.begin(),
                 mixed.per_model[1].latencies_ms.end());
  BenchRow& agg = json.row("model_server/aggregate");
  agg.wall_ms = pct(all_lat, 0.50);
  agg.extra["p95_ms"] = pct(all_lat, 0.95);
  agg.extra["p99_ms"] = pct(all_lat, 0.99);
  agg.extra["images_per_s"] = mixed.aggregate_images_per_s;
  agg.extra["workers"] = static_cast<double>(workers);
  agg.extra["models"] = 2.0;
  if (!plan_dir.empty()) {
    // Cold start actually paid on this run (plan::load of the served
    // blobs) vs the Plan::compile cost it replaced. Budget: < 10ms/model.
    const auto cold = [&](const char* model, double load_ms,
                          double compile_ms, double blob_kib) {
      char row[64];
      std::snprintf(row, sizeof(row), "cold_start/%s", model);
      BenchRow& br = json.row(row);
      br.wall_ms = load_ms;
      br.extra["plan_load_ms"] = load_ms;
      br.extra["compile_ms"] = compile_ms;
      br.extra["speedup_vs_compile"] = compile_ms / load_ms;
      br.extra["blob_kib"] = blob_kib;
    };
    cold(kF32, load_f32_ms, compile_f32_ms, blob_f32_kib);
    cold(kInt8, load_int8_ms, compile_int8_ms, blob_int8_kib);
    std::printf(
        "plan-dir cold start: f32 %.2fms (compile %.2fms), int8 %.2fms "
        "(compile %.2fms) — budget 10ms/model\n",
        load_f32_ms, compile_f32_ms, load_int8_ms, compile_int8_ms);
  }
  if (json.write(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
