// Fully-connected layer (with bias) — used as the classifier head.
#pragma once

#include "nn/activations.hpp"
#include "nn/layer.hpp"
#include "tensor/init.hpp"

namespace alf {

namespace kernels {
struct KernelBackend;
}  // namespace kernels

/// Free fully-connected kernel used by Linear::forward and the engine:
/// y = act(x * W^T + b) with x [n, in], W [out, in], b [out] (may be
/// nullptr), y [n, out]. Allocation-free; y may alias an arena slot. `be`
/// pins the kernel backend for the GEMM (nullptr = the process default).
void linear_forward_view(const float* x, size_t n, size_t in_features,
                         const float* w, size_t out_features, const float* b,
                         Act act, float* y,
                         const kernels::KernelBackend* be = nullptr);

/// y = x * W^T + b, x: [N, in], W: [out, in], b: [out].
class Linear : public Layer {
 public:
  Linear(std::string name, size_t in_features, size_t out_features,
         Init scheme, Rng& rng);

  const char* kind() const override { return "linear"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }
  Param& weight() { return w_; }
  const Param& weight() const { return w_; }
  Param& bias() { return b_; }
  const Param& bias() const { return b_; }

 private:
  std::string name_;
  size_t in_, out_;
  Param w_, b_;
  Tensor cached_x_;
};

/// Flattens [N, C, H, W] -> [N, C*H*W]; inverse in backward.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : name_(std::move(name)) {}

  const char* kind() const override { return "flatten"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  Shape cached_shape_;
};

}  // namespace alf
