// Non-owning weight views: how compiled plans reference their payloads.
//
// A compiled Plan (engine/plan.hpp) stores every weight payload — folded
// float matrices, shift-GEMM packs, int8 panels, per-channel scales — in
// ONE page-aligned arena, and its steps address them through the two view
// types here instead of owning containers. The payoff is that a plan's
// weights are relocatable: alf::plan::save writes the arena as a single
// blob section and load mmaps it back read-only, rebinding the views by
// (offset, dims) fixup with no copy, no re-quantize, no re-pack
// (engine/plan_io.hpp). The kernels never notice — the view API mirrors
// the Tensor/std::vector subset they already consumed.
//
// Both types are trivially copyable handles (pointer + extents) with
// reference semantics; they never allocate and never free. Lifetime is the
// caller's problem by design: inside the engine every view points into the
// plan's arena, which outlives every ExecContext that runs it.
#pragma once

#include <cstddef>

#include "core/check.hpp"

namespace alf {

/// Non-owning, read-only view of a contiguous row-major float tensor of
/// rank <= 3. Mirrors the const subset of Tensor that the execution layer
/// uses (data/empty/numel/rank/dim/at), so a Step field can change from
/// `Tensor` to `TensorView` without touching the kernels.
class TensorView {
 public:
  static constexpr size_t kMaxRank = 3;

  /// Empty view (rank 0, no data) — the "this step has no such weight"
  /// state, matching Tensor's default construction.
  TensorView() = default;

  /// View of `data` with the given dims (rank = count of dims, <= 3).
  /// `data` may be null only when the element count is zero.
  TensorView(const float* data, const size_t* dims, size_t rank)
      : data_(data), rank_(rank) {
    ALF_CHECK(rank <= kMaxRank) << "TensorView rank " << rank;
    numel_ = rank > 0 ? 1 : 0;
    for (size_t d = 0; d < rank; ++d) {
      dims_[d] = dims[d];
      numel_ *= dims[d];
    }
    ALF_CHECK(data_ != nullptr || numel_ == 0) << "null TensorView data";
  }

  TensorView(const float* data, std::initializer_list<size_t> dims)
      : TensorView(data, dims.begin(), dims.size()) {}

  const float* data() const { return data_; }
  bool empty() const { return numel_ == 0; }
  size_t numel() const { return numel_; }
  size_t rank() const { return rank_; }

  /// Size of dimension `d`; checked.
  size_t dim(size_t d) const {
    ALF_CHECK(d < rank_) << "TensorView dim " << d << " of rank " << rank_;
    return dims_[d];
  }

  /// Bounds-checked flat element access.
  float at(size_t i) const {
    ALF_CHECK(i < numel_) << "TensorView index " << i << " of " << numel_;
    return data_[i];
  }

  /// Bounds-checked 2-D access; requires rank()==2.
  float at(size_t r, size_t c) const {
    ALF_CHECK(rank_ == 2 && r < dims_[0] && c < dims_[1])
        << "TensorView at(" << r << ", " << c << ")";
    return data_[r * dims_[1] + c];
  }

 private:
  const float* data_ = nullptr;
  size_t dims_[kMaxRank] = {0, 0, 0};
  size_t rank_ = 0;
  size_t numel_ = 0;
};

/// Non-owning, read-only view of a contiguous element run — the
/// std::vector stand-in for a Step's int8 panel (`qw`) and per-channel
/// scales (`qw_scales`). Iterable so range-for call sites keep compiling.
template <typename T>
class ConstSpan {
 public:
  ConstSpan() = default;

  ConstSpan(const T* data, size_t size) : data_(data), size_(size) {
    ALF_CHECK(data_ != nullptr || size_ == 0) << "null ConstSpan data";
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T operator[](size_t i) const {
    ALF_CHECK(i < size_) << "ConstSpan index " << i << " of " << size_;
    return data_[i];
  }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace alf
