// Kernel-backend microbenchmark + the PR's acceptance recorder.
//
// Times the f32 GEMM of every registered float backend (scalar vs simd)
// and the int8 qgemm across square (64..512) and conv-shaped (skinny-K,
// wide-N) problems, single-threaded so the numbers are kernel quality, not
// core count. Then compiles an ALF-deployed ResNet-20 twice — float and
// backend="int8" — replays a 256-image synthetic batch through both, and
// records the top-1 agreement plus the measured int8/f32 engine ratio.
// Finally the measured ratio is wired next to the hwmodel's energy tables:
// the same ResNet-20 conv stack mapped on the Eyeriss model at 16-bit and
// int8 word widths (hwmodel/arch.hpp scaled_to_bits).
//
// Acceptance criteria recorded in BENCH_gemm.json:
//   - gemm/256x256x256/simd: extra.speedup_vs_scalar >= 2
//   - engine/resnet20_alf/int8: accuracy (top-1 agreement vs float) >= 0.99
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "engine/engine.hpp"
#include "hwmodel/mapper.hpp"
#include "kernels/backend.hpp"
#include "quant/quantize.hpp"
#include "tune/tuner.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

/// Best-of-reps wall milliseconds.
template <typename Fn>
double time_ms(size_t reps, Fn&& fn) {
  double best = 1e30;
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Problem {
  const char* tag;
  size_t m, k, n;
};

/// Human-readable tag of one tuner candidate, e.g.
/// "im2col/simd/t64x256x256/c1" — what the "winner" column reports.
std::string describe_choice(const AlgoChoice& c) {
  std::string out;
  switch (c.strategy) {
    case AlgoChoice::Strategy::kAuto: out = "auto"; break;
    case AlgoChoice::Strategy::kShiftGemm: out = "shift"; break;
    case AlgoChoice::Strategy::kIm2col: out = "im2col"; break;
  }
  out += "/" + (c.backend.empty() ? std::string("default") : c.backend);
  if (!c.tile.is_default()) {
    char t[40];
    std::snprintf(t, sizeof(t), "/t%ux%ux%u", c.tile.mc, c.tile.kc,
                  c.tile.nc);
    out += t;
  }
  if (c.chunk != 0) out += "/c" + std::to_string(c.chunk);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --list-backends: registered backend names, one per line (lets CI loop
  // test_kernels over every backend via ALF_BACKEND without hardcoding the
  // list).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-backends") == 0) {
      for (const auto& name : kernels::backend_names())
        std::printf("%s\n", name.c_str());
      return 0;
    }
  }
  const Scale s = parse_scale(argc, argv);
  std::string json_path = parse_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_gemm.json";
  const bool quick = std::strcmp(s.name, "quick") == 0;
  const size_t reps = quick ? 3 : 7;

  std::printf("Kernel backends: f32 GEMM + int8 qgemm (scale=%s)\n\n",
              s.name);
  std::printf("registered backends:");
  for (const auto& name : kernels::backend_names())
    std::printf(" %s", name.c_str());
  std::printf("\ncpu features: detected [%s], allowed [%s]\n",
              kernels::cpu_feature_names(kernels::detected_cpu_features())
                  .c_str(),
              kernels::cpu_feature_names(kernels::allowed_cpu_features())
                  .c_str());
  std::printf("dispatch: default=%s best_quantized=%s\n\n",
              kernels::default_backend()->name,
              kernels::best_quantized_backend()->name);

  BenchJson json("bench_gemm", s.name);
  Rng rng(61);

  // Stamp the machine and the dispatch decisions into the record: a perf
  // trajectory across PRs is only comparable when the ISA the kernels ran
  // on rides along with the numbers.
  {
    BenchRow& meta = json.row("meta/kernel_dispatch");
    meta.extra_str["cpu_detected"] =
        kernels::cpu_feature_names(kernels::detected_cpu_features());
    meta.extra_str["cpu_allowed"] =
        kernels::cpu_feature_names(kernels::allowed_cpu_features());
    meta.extra_str["default_backend"] = kernels::default_backend()->name;
    meta.extra_str["best_quantized_backend"] =
        kernels::best_quantized_backend()->name;
  }

  // --- 1. Raw GEMM problems, single-threaded. -----------------------------
  std::vector<Problem> problems = {
      {"64x64x64", 64, 64, 64},
      {"128x128x128", 128, 128, 128},
      {"256x256x256", 256, 256, 256},
      {"512x512x512", 512, 512, 512},
      // conv1 of the CIFAR stack: few filters over a long unfolded image.
      {"skinnyK-16x27x1024", 16, 27, 1024},
      // wide mid-stack conv: one chunk-batched im2col GEMM at batch 4.
      {"wideN-64x576x4096", 64, 576, 4096},
  };
  if (quick) problems.pop_back();  // keep CI smoke fast

  const kernels::KernelBackend* scalar = kernels::find_backend("scalar");
  const kernels::KernelBackend* simd = kernels::find_backend("simd");
  const kernels::KernelBackend* int8 = kernels::find_backend("int8");

  Table table("f32 GEMM + int8 qgemm, single thread (best of reps)");
  table.set_header(
      {"problem", "backend", "wall[ms]", "G madds/s", "vs scalar"});
  set_parallel_threads(1);
  double simd_speedup_256 = 0.0;

  for (const Problem& p : problems) {
    Tensor a = random_input({p.m, p.k}, rng);
    Tensor b = random_input({p.k, p.n}, rng);
    Tensor c({p.m, p.n});
    const double gmadds = static_cast<double>(p.m) * p.k * p.n / 1e9;
    // Small problems finish in microseconds, where scheduler noise swamps
    // a best-of-3: take the min over many more runs so the recorded number
    // is the kernel, not the jitter.
    const bool small = p.m * p.k * p.n <= size_t{256} * 256 * 256;
    const size_t preps = small ? reps * 8 : reps;

    const auto bench_f32 = [&](const kernels::KernelBackend* be) {
      return time_ms(preps, [&] {
        be->gemm(a.data(), p.k, false, b.data(), p.n, false, c.data(), p.n,
                 p.m, p.k, p.n, 1.0f, 0.0f);
      });
    };
    const double scalar_ms = bench_f32(scalar);

    const PackedInt8 qa = quantize_tensor(a, 8);
    const PackedInt8 qb = quantize_tensor(b, 8);
    kernels::QgemmParams qp;
    qp.a_scale = qa.params.scale;
    qp.b_scale = qb.params.scale;
    const auto bench_q8 = [&](const kernels::KernelBackend* be) {
      return time_ms(preps, [&] {
        be->qgemm(qa.data.data(), p.k, qb.data.data(), p.n, c.data(), p.n,
                  p.m, p.k, p.n, qp);
      });
    };

    struct Entry {
      const char* backend;
      double ms;
    };
    std::vector<Entry> entries = {{"scalar", scalar_ms}};
    if (simd != nullptr) entries.push_back({"simd", bench_f32(simd)});
    entries.push_back({"int8", bench_q8(int8)});
    // The ISA-specific qgemm backends, when this host registered them —
    // their rows make regressions attributable to one kernel rather than
    // to whatever "int8" happened to dispatch to.
    for (const char* qname : {"int8-avx2", "int8-vnni"}) {
      const kernels::KernelBackend* qbe = kernels::find_backend(qname);
      if (qbe != nullptr) entries.push_back({qname, bench_q8(qbe)});
    }

    for (const Entry& e : entries) {
      const double speedup = scalar_ms / e.ms;
      if (std::strcmp(p.tag, "256x256x256") == 0 &&
          std::strcmp(e.backend, "simd") == 0)
        simd_speedup_256 = speedup;
      table.add_row({p.tag, e.backend, Table::fmt(e.ms, 3),
                     Table::fmt(gmadds / (e.ms / 1e3), 2),
                     Table::fmt(speedup, 2)});
      char row_name[64];
      std::snprintf(row_name, sizeof(row_name), "gemm/%s/%s", p.tag,
                    e.backend);
      BenchRow& row = json.row(row_name);
      row.wall_ms = e.ms;
      row.gmadds_per_s = gmadds / (e.ms / 1e3);
      row.extra["speedup_vs_scalar"] = speedup;
    }
  }
  set_parallel_threads(0);
  table.print();

  // --- 1b. Per-shape autotuner: tuned choice vs heuristic per conv shape. --
  // The tuner's own microbenchmark (tune::measure_choice — forced
  // single-layer compile + min-of-K forward passes) over the conv shapes
  // the CIFAR zoo actually executes at this scale. The heuristic row is
  // candidate 0 by construction; challengers must beat it by >3% to win,
  // so tuned >= heuristic holds for every row.
  {
    struct ConvShape {
      const char* tag;
      size_t c, hw, k, stride, pad, o;
      bool quant;
    };
    const size_t w = s.width;
    const std::vector<ConvShape> shapes = {
        {"conv3x3_in", 3, s.hw, 3, 1, 1, w, false},  // RGB stem conv
        {"conv3x3_stage1", w, s.hw, 3, 1, 1, w, false},
        {"conv3x3_down", w, s.hw, 3, 2, 1, 2 * w, false},
        {"conv1x1_skip", w, s.hw, 1, 2, 0, 2 * w, false},
        {"conv3x3_stage2", 2 * w, s.hw / 2, 3, 1, 1, 2 * w, false},
        {"conv3x3_stage2_q8", 2 * w, s.hw / 2, 3, 1, 1, 2 * w, true},
    };
    tune::set_reps(quick ? 2 : 5);
    Table ttab("autotuner: tuned vs heuristic per conv shape (batch 32)");
    ttab.set_header(
        {"shape", "heuristic[ms]", "tuned[ms]", "speedup", "winner"});
    for (const ConvShape& cs : shapes) {
      tune::TuneShape ts;
      ts.is_conv = true;
      ts.geom = ConvGeom{cs.c, cs.hw, cs.hw, cs.k, cs.stride, cs.pad};
      ts.out_c = cs.o;
      ts.quantized = cs.quant;
      ts.qbits = 8;
      ts.batch = 32;
      ts.chunks = std::min<size_t>(
          32, static_cast<size_t>(std::max(1, parallel_threads())));
      ts.plan_backend = cs.quant ? "int8" : "";
      const std::vector<AlgoChoice> cands = tune::candidates(ts);
      const double heur_ms = tune::measure_choice(ts, cands[0]);
      double best_ms = heur_ms;
      AlgoChoice best = cands[0];
      for (size_t ci = 1; ci < cands.size(); ++ci) {
        const double ms = tune::measure_choice(ts, cands[ci]);
        if (ms < best_ms * 0.97) {
          best_ms = ms;
          best = cands[ci];
        }
      }
      const std::string winner =
          best_ms == heur_ms ? "heuristic" : describe_choice(best);
      ttab.add_row({cs.tag, Table::fmt(heur_ms, 3), Table::fmt(best_ms, 3),
                    Table::fmt(heur_ms / best_ms, 2), winner});
      char row_name[96];
      std::snprintf(row_name, sizeof(row_name), "tune/%s", cs.tag);
      BenchRow& row = json.row(row_name);
      row.wall_ms = best_ms;
      row.extra["heuristic_ms"] = heur_ms;
      row.extra["speedup_vs_heuristic"] = heur_ms / best_ms;
      row.extra["candidates"] = static_cast<double>(cands.size());
      row.extra_str["winner"] = winner;
    }
    ttab.print();
  }

  // --- 2. ALF-deployed ResNet-20: int8 engine vs float engine. ------------
  // The model is TRAINED (briefly, at bench scale) before comparing: top-1
  // agreement between a quantized and a float net is only meaningful when
  // the logits carry real class structure — an untrained net's argmax is a
  // coin toss between near-tied logits and flips on quantization noise no
  // matter how faithful the int8 path is.
  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;
  AlfConfig acfg = alf_config(s);
  std::vector<AlfConv*> blocks;
  auto model = build_resnet20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
  {
    const DataConfig task = cifar_task(s);
    SyntheticImageDataset train_set(task, 512, /*split_seed=*/1);
    SyntheticImageDataset test_set(task, 128, /*split_seed=*/2);
    TrainConfig tc = train_config(s);
    tc.epochs = quick ? 16 : 24;
    const auto hist = Trainer(*model, train_set, test_set, tc).run();
    std::printf("\ntrained ALF ResNet-20 for %zu epochs: test acc %.1f%%, "
                "remaining filters %.0f%%\n",
                tc.epochs, 100.0 * hist.back().test_acc,
                100.0 * hist.back().remaining_filters);
  }

  const size_t images = 256;  // the acceptance batch, also under --quick
  const size_t batch = 32;
  SyntheticImageDataset ds(cifar_task(s), images, /*split_seed=*/3);
  Tensor x;
  std::vector<int> labels;
  ds.full_batch(x, labels);

  Engine fp = Engine::compile(*model, batch, mc.in_channels, s.hw, s.hw);
  Engine q8 = Engine::compile(*model, batch, mc.in_channels, s.hw, s.hw,
                              {.backend = "int8", .bits = 8, .name = ""});
  const size_t img_floats = fp.image_floats();
  Tensor out_fp({images, fp.classes()});
  Tensor out_q8({images, q8.classes()});
  const auto replay = [&](Engine& eng, Tensor& out) {
    for (size_t i0 = 0; i0 < images; i0 += batch) {
      const size_t n = std::min(batch, images - i0);
      eng.run_rows(x.data() + i0 * img_floats, n,
                   out.data() + i0 * eng.classes());
    }
  };
  replay(fp, out_fp);  // warm
  const double fp_ms = time_ms(reps, [&] { replay(fp, out_fp); });
  const double q8_ms = time_ms(reps, [&] { replay(q8, out_q8); });

  size_t agree = 0;
  for (size_t i = 0; i < images; ++i) {
    size_t af = 0, aq = 0;
    for (size_t cls = 1; cls < fp.classes(); ++cls) {
      if (out_fp.at(i, cls) > out_fp.at(i, af)) af = cls;
      if (out_q8.at(i, cls) > out_q8.at(i, aq)) aq = cls;
    }
    if (af == aq) ++agree;
  }
  const double agreement =
      static_cast<double>(agree) / static_cast<double>(images);
  const double int8_vs_float = fp_ms / q8_ms;

  std::printf("\nALF-deployed ResNet-20, %zu synthetic images, batch %zu:\n",
              images, batch);
  std::printf("  float engine  %.3f ms (%.1f img/s)\n", fp_ms,
              images / (fp_ms / 1e3));
  std::printf("  int8 engine   %.3f ms (%.1f img/s, %.2fx vs float)\n", q8_ms,
              images / (q8_ms / 1e3), int8_vs_float);
  std::printf("  top-1 agreement: %zu/%zu = %.4f (target >= 0.99)\n", agree,
              images, agreement);

  BenchRow& fp_row = json.row("engine/resnet20_alf/float");
  fp_row.wall_ms = fp_ms;
  fp_row.extra["images_per_s"] = images / (fp_ms / 1e3);
  BenchRow& q8_row = json.row("engine/resnet20_alf/int8");
  q8_row.wall_ms = q8_ms;
  q8_row.accuracy = agreement;  // top-1 agreement with the float engine
  q8_row.extra["images_per_s"] = images / (q8_ms / 1e3);
  q8_row.extra["speedup_vs_float"] = int8_vs_float;
  q8_row.extra["bits"] = 8.0;
  q8_row.extra["images"] = static_cast<double>(images);
  q8_row.extra_str["qgemm_backend"] = kernels::best_quantized_backend()->name;

  // --- 3. Measured int8 timing wired into the hwmodel energy tables. ------
  // The same conv stack costed on the Eyeriss model at 16-bit words and at
  // the int8 word width the engine just executed; the measured CPU ratio
  // rides along so the analytic and the measured speedups can be compared
  // per PR.
  const ModelCost cost = cost_resnet20(/*classes=*/10, mc.base_width, s.hw);
  const EyerissConfig fp16_arch;
  const EyerissConfig int8_arch = scaled_to_bits(fp16_arch, 8);
  MapperConfig mcfg;
  mcfg.max_iterations = quick ? 10000 : 50000;
  mcfg.victory = mcfg.max_iterations / 2;
  double e16 = 0.0, e8 = 0.0, cyc16 = 0.0, cyc8 = 0.0;
  for (const LayerEval& ev : map_model(cost, /*batch=*/1, fp16_arch, mcfg)) {
    e16 += ev.energy();
    cyc16 += ev.cycles;
  }
  for (const LayerEval& ev : map_model(cost, /*batch=*/1, int8_arch, mcfg)) {
    e8 += ev.energy();
    cyc8 += ev.cycles;
  }
  std::printf("\nEyeriss model, ResNet-20 conv stack (per image):\n");
  std::printf("  16-bit words: %.3e RF-read units, %.3e cycles\n", e16, cyc16);
  std::printf("  int8 words:   %.3e RF-read units, %.3e cycles "
              "(%.2fx energy, measured CPU int8 ratio %.2fx)\n",
              e8, cyc8, e16 / e8, int8_vs_float);
  BenchRow& hw16 = json.row("hwmodel/resnet20/fp16");
  hw16.extra["energy_rf_units"] = e16;
  hw16.extra["cycles"] = cyc16;
  BenchRow& hw8 = json.row("hwmodel/resnet20/int8");
  hw8.extra["energy_rf_units"] = e8;
  hw8.extra["cycles"] = cyc8;
  hw8.extra["energy_ratio_vs_fp16"] = e16 / e8;
  hw8.extra["measured_cpu_int8_speedup"] = int8_vs_float;

  if (!json.write(json_path)) {
    std::printf("\nFAILED to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  if (simd != nullptr)
    std::printf("simd speedup at 256^3 single-thread: %.2fx (target 2x)\n",
                simd_speedup_256);
  return 0;
}
