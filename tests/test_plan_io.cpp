// Plan artifacts (engine/plan_io.hpp): round-trip bit-identity across
// every registered backend and thread count, typed rejection of hostile
// blobs (truncation, flipped bytes, forged headers), and the fork-twice
// smoke proving two processes serve bit-identical logits from one
// read-only mapped blob directory.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "engine/exec_context.hpp"
#include "engine/plan.hpp"
#include "engine/plan_io.hpp"
#include "grad_check.hpp"
#include "kernels/backend.hpp"
#include "models/zoo.hpp"
#include "serve/model_server.hpp"

namespace alf {
namespace {

namespace fs = std::filesystem;
using plan::FileHeader;
using plan::PlanIoError;
using plan::SectionRecord;
using testing::random_input;

constexpr size_t kHw = 16;

/// Moves BatchNorm running statistics off their (0, 1) init so folding is
/// non-trivial (same warm-up the engine tests use).
void warm_bn(Sequential& model, size_t in_c, size_t hw, Rng& rng) {
  for (int pass = 0; pass < 3; ++pass) {
    Tensor x = random_input({4, in_c, hw, hw}, rng);
    model.forward(x, /*train=*/true);
  }
}

/// Unique scratch directory, recursively removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "alf_plan_io_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr) << "mkdtemp: " << std::strerror(errno);
    path = made != nullptr ? fs::path(made) : fs::path();
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) fs::remove_all(path, ec);
  }
};

/// Fresh compiled ResNet-20 (bw = 8) on the given backend, name stamped.
std::shared_ptr<const Plan> compile_fixture(const std::string& backend,
                                            const std::string& name,
                                            size_t batch = 4) {
  Rng rng(71);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  warm_bn(*model, mc.in_channels, kHw, rng);
  return Plan::compile(*model, batch, mc.in_channels, kHw, kHw,
                       {.backend = backend, .bits = 8, .name = name});
}

std::vector<uint8_t> read_file(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.good()) << p;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(f),
                              std::istreambuf_iterator<char>());
}

void write_file(const fs::path& p, const std::vector<uint8_t>& bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << p;
}

/// Asserts that loading `p` throws PlanIoError with exactly `code`.
void expect_load_rejects(const fs::path& p, PlanIoError::Code code,
                         const char* label) {
  try {
    plan::load(p.string());
    FAIL() << label << ": hostile blob was accepted";
  } catch (const PlanIoError& e) {
    EXPECT_EQ(static_cast<int>(e.code()), static_cast<int>(code))
        << label << ": wrong code, message: " << e.what();
  } catch (const std::exception& e) {
    FAIL() << label << ": wrong exception type: " << e.what();
  }
}

bool bits_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(PlanIo, RoundTripBitIdenticalAcrossBackendsAndThreads) {
  TempDir td;
  Rng rng(73);
  const Tensor x = random_input({4, 3, kHw, kHw}, rng);
  for (const std::string& be : kernels::backend_names()) {
    SCOPED_TRACE("backend=" + be);
    auto compiled = compile_fixture(be, "resnet20_" + be);
    const fs::path file = td.path / (be + ".plan");
    plan::save(*compiled, file.string());
    auto loaded = plan::load(file.string());

    // Load is mmap + fixup: the arena stays backed by the file mapping.
    EXPECT_TRUE(loaded->weight_arena().mapped());
    EXPECT_FALSE(compiled->weight_arena().mapped());
    EXPECT_EQ(loaded->name(), compiled->name());
    EXPECT_STREQ(loaded->backend_name(), compiled->backend_name());
    EXPECT_EQ(loaded->quantized(), compiled->quantized());
    EXPECT_EQ(loaded->batch(), compiled->batch());
    EXPECT_EQ(loaded->chunks(), compiled->chunks());
    EXPECT_EQ(loaded->workspace_floats(), compiled->workspace_floats());
    EXPECT_EQ(loaded->steps().size(), compiled->steps().size());
    EXPECT_NO_THROW(loaded->verify());

    // Every packed weight section is bit-exact — no re-quantize, no
    // re-pack, no re-fold happened on the load path.
    ASSERT_EQ(loaded->weight_sections().size(),
              compiled->weight_sections().size());
    for (size_t i = 0; i < compiled->weight_sections().size(); ++i) {
      const WeightSection& a = compiled->weight_sections()[i];
      const WeightSection& b = loaded->weight_sections()[i];
      ASSERT_EQ(a.step, b.step);
      ASSERT_EQ(static_cast<uint32_t>(a.field), static_cast<uint32_t>(b.field));
      ASSERT_EQ(a.offset, b.offset);
      ASSERT_EQ(a.bytes, b.bytes);
      EXPECT_EQ(std::memcmp(compiled->weight_arena().data() + a.offset,
                            loaded->weight_arena().data() + b.offset,
                            a.bytes),
                0)
          << "section " << i << " payload differs";
    }

    // Loaded plans produce bit-identical logits to the compiled original,
    // at every thread count.
    ExecContext ref_ctx(compiled);
    const Tensor ref = ref_ctx.run(x);
    for (const int threads : {1, 2, 4}) {
      set_parallel_threads(threads);
      ExecContext ctx(loaded);
      const Tensor got = ctx.run(x);
      EXPECT_TRUE(bits_equal(ref, got)) << "threads=" << threads;
    }
    set_parallel_threads(0);
  }
}

TEST(PlanIo, RoundTripEveryZooModelFloatAndInt8) {
  TempDir td;
  Rng rng(79);
  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = kHw;
  struct Case {
    const char* name;
    std::unique_ptr<Sequential> model;
  };
  std::vector<Case> cases;
  cases.push_back({"plain20", build_plain20(
                                  mc, rng, standard_conv_maker(mc.init, &rng))});
  cases.push_back({"resnet20", build_resnet20(
                                   mc, rng, standard_conv_maker(mc.init, &rng))});
  cases.push_back({"resnet18", build_resnet18(
                                   mc, rng, standard_conv_maker(mc.init, &rng))});
  const Tensor x = random_input({2, mc.in_channels, kHw, kHw}, rng);
  for (Case& c : cases) {
    warm_bn(*c.model, mc.in_channels, kHw, rng);
    for (const char* backend : {"", "int8"}) {
      SCOPED_TRACE(std::string(c.name) + " backend=" + backend);
      auto compiled =
          Plan::compile(*c.model, 2, mc.in_channels, kHw, kHw,
                        {.backend = backend, .bits = 8, .name = c.name});
      const fs::path file =
          td.path / (std::string(c.name) + (*backend ? "_int8" : "_f32") +
                     ".plan");
      plan::save(*compiled, file.string());
      auto loaded = plan::load(file.string());
      EXPECT_NO_THROW(loaded->verify());
      ExecContext a(compiled), b(loaded);
      EXPECT_TRUE(bits_equal(a.run(x), b.run(x)));
    }
  }
}

TEST(PlanIo, LoadDirReturnsStemsSorted) {
  TempDir td;
  auto f32 = compile_fixture("", "resnet20_f32");
  auto i8 = compile_fixture("int8", "resnet20_int8");
  plan::save(*i8, (td.path / "resnet20_int8.plan").string());
  plan::save(*f32, (td.path / "resnet20_f32.plan").string());
  // Non-plan files are ignored.
  write_file(td.path / "notes.txt", {'h', 'i'});

  auto models = plan::load_dir(td.path.string());
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].first, "resnet20_f32");
  EXPECT_EQ(models[1].first, "resnet20_int8");
  EXPECT_FALSE(models[0].second->quantized());
  EXPECT_TRUE(models[1].second->quantized());

  EXPECT_THROW(plan::load_dir((td.path / "nosuch").string()), PlanIoError);
}

// ---------------------------------------------------------------------------
// Hostile blobs
// ---------------------------------------------------------------------------

/// One saved scalar-backend blob all corruption cases copy from (the
/// mutations are per-case, so a single save suffices).
class PlanIoHostile : public ::testing::Test {
 protected:
  void SetUp() override {
    auto plan = compile_fixture("scalar", "hostile_fixture");
    source_ = td_.path / "source.plan";
    plan::save(*plan, source_.string());
    image_ = read_file(source_);
    ASSERT_GE(image_.size(), sizeof(FileHeader));
  }

  FileHeader* header() {
    return reinterpret_cast<FileHeader*>(image_.data());
  }

  /// Writes the (mutated) image under `name` and asserts load throws
  /// `code`. `restamp` re-seals meta/header CRCs so the corruption under
  /// test — not the tampering itself — is what the loader sees.
  void expect_rejects(const char* name, PlanIoError::Code code,
                      bool restamp) {
    if (restamp) plan::restamp_header(image_.data(), image_.size());
    const fs::path p = td_.path / name;
    write_file(p, image_);
    expect_load_rejects(p, code, name);
  }

  TempDir td_;
  fs::path source_;
  std::vector<uint8_t> image_;
};

TEST_F(PlanIoHostile, PristineBlobLoads) {
  EXPECT_NO_THROW(plan::load(source_.string()));
}

TEST_F(PlanIoHostile, RejectsTruncatedFile) {
  image_.resize(image_.size() - 7);
  expect_rejects("truncated.plan", PlanIoError::Code::kTruncated,
                 /*restamp=*/false);
}

TEST_F(PlanIoHostile, RejectsHeaderShorterThanHeader) {
  image_.resize(sizeof(FileHeader) / 2);
  expect_rejects("stub.plan", PlanIoError::Code::kTruncated,
                 /*restamp=*/false);
}

TEST_F(PlanIoHostile, RejectsBadMagic) {
  image_[0] ^= 0xFF;
  expect_rejects("magic.plan", PlanIoError::Code::kBadMagic,
                 /*restamp=*/false);
}

TEST_F(PlanIoHostile, RejectsWrongFormatVersion) {
  header()->version = plan::kFormatVersion + 17;
  expect_rejects("version.plan", PlanIoError::Code::kBadVersion,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsWrongPanelLayoutStamp) {
  header()->panel_layout = kernels::kPanelLayoutVersion + 1;
  expect_rejects("panel.plan", PlanIoError::Code::kBadVersion,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsWrongGeometryStamp) {
  header()->max_shift_h = static_cast<uint32_t>(kMaxShiftH) * 2;
  expect_rejects("geometry.plan", PlanIoError::Code::kBadVersion,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsTamperedHeaderWithoutRestamp) {
  // A header edit that is NOT re-sealed dies on the header CRC — the
  // first line of defense against bit rot in the header itself.
  header()->batch += 1;
  expect_rejects("header_crc.plan", PlanIoError::Code::kBadCrc,
                 /*restamp=*/false);
}

TEST_F(PlanIoHostile, RejectsFlippedMetaByte) {
  // Flip one byte inside the step-record region: meta CRC mismatch.
  ASSERT_GT(header()->names_off, header()->steps_off);
  image_[header()->steps_off + 5] ^= 0x40;
  expect_rejects("meta_crc.plan", PlanIoError::Code::kBadCrc,
                 /*restamp=*/false);
}

TEST_F(PlanIoHostile, RejectsFlippedArenaByte) {
  // Flip the last payload byte: the owning section's CRC mismatches.
  image_.back() ^= 0x01;
  expect_rejects("payload_crc.plan", PlanIoError::Code::kBadCrc,
                 /*restamp=*/false);
}

TEST_F(PlanIoHostile, RejectsWrongCpuFeatureStamp) {
  // A feature bit no host advertises: the blob must be refused on this
  // machine even though every checksum is intact.
  header()->cpu_features |= 0x80000000u;
  expect_rejects("cpu.plan", PlanIoError::Code::kCpuFeatures,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsUnknownBackendStamp) {
  std::strncpy(header()->backend_name, "nosuch-backend",
               sizeof(header()->backend_name) - 1);
  expect_rejects("backend.plan", PlanIoError::Code::kBackend,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsMisalignedSectionOffset) {
  auto* sec = reinterpret_cast<SectionRecord*>(image_.data() +
                                               header()->sections_off);
  sec[0].offset += 1;  // no longer kWeightAlign-aligned
  expect_rejects("misaligned.plan", PlanIoError::Code::kBadSection,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsSectionOutsideArena) {
  auto* sec = reinterpret_cast<SectionRecord*>(image_.data() +
                                               header()->sections_off);
  sec[0].offset = header()->arena_bytes;  // aligned, but past the end
  expect_rejects("overflow.plan", PlanIoError::Code::kBadSection,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsBogusStepRecord) {
  auto* steps = reinterpret_cast<plan::StepRecord*>(image_.data() +
                                                    header()->steps_off);
  steps[0].kind = 250;  // past kActivation
  expect_rejects("step_kind.plan", PlanIoError::Code::kBadSection,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsUnknownStepBackendStamp) {
  // v2: a step may pin its own backend (tuned plans). An unknown per-step
  // name must be refused exactly like an unknown plan backend.
  auto* steps = reinterpret_cast<plan::StepRecord*>(image_.data() +
                                                    header()->steps_off);
  std::strncpy(steps[0].backend_name, "nosuch-backend",
               sizeof(steps[0].backend_name) - 1);
  expect_rejects("step_backend.plan", PlanIoError::Code::kBackend,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsUnterminatedStepBackendName) {
  auto* steps = reinterpret_cast<plan::StepRecord*>(image_.data() +
                                                    header()->steps_off);
  std::memset(steps[0].backend_name, 'x', sizeof(steps[0].backend_name));
  expect_rejects("step_backend_nul.plan", PlanIoError::Code::kBadSection,
                 /*restamp=*/true);
}

TEST_F(PlanIoHostile, RejectsMissingFile) {
  expect_load_rejects(td_.path / "does_not_exist.plan",
                      PlanIoError::Code::kOpen, "missing");
}

// ---------------------------------------------------------------------------
// Multi-process page sharing
// ---------------------------------------------------------------------------

/// True when /proc/self/maps shows `needle` mapped read-only and private
/// ("r--p"): the blob pages can never be written by this process, and —
/// being a never-written private file mapping — are physically the shared
/// page-cache copy every loading process reads.
bool blob_mapped_read_only(const std::string& needle) {
  std::ifstream maps("/proc/self/maps");
  std::string line;
  bool found = false;
  while (std::getline(maps, line)) {
    if (line.find(needle) == std::string::npos) continue;
    found = true;
    if (line.find(" r--p ") == std::string::npos) return false;
  }
  return found;
}

TEST(PlanIo, ForkedProcessesServeBitIdenticalLogitsFromOneBlobDir) {
  TempDir td;
  auto f32 = compile_fixture("", "resnet20_f32");
  auto i8 = compile_fixture("int8", "resnet20_int8");
  plan::save(*f32, (td.path / "resnet20_f32.plan").string());
  plan::save(*i8, (td.path / "resnet20_int8.plan").string());

  Rng rng(83);
  const Tensor x = random_input({4, 3, kHw, kHw}, rng);

  // Parent reference: run both plans from freshly loaded blobs.
  std::vector<Tensor> ref;
  for (auto& [stem, p] : plan::load_dir(td.path.string())) {
    ExecContext ctx(p);
    ref.push_back(ctx.run(x));
  }
  ASSERT_EQ(ref.size(), 2u);
  const size_t logit_floats = ref[0].numel();

  // Two children, each loading the same blob directory. Child protocol on
  // its pipe: one status byte (1 = blob mapped "r--p"), then the logits of
  // every model in load_dir order. No gtest in the child; _exit only.
  const int kids = 2;
  int fds[kids][2];
  pid_t pids[kids];
  for (int k = 0; k < kids; ++k) {
    ASSERT_EQ(pipe(fds[k]), 0);
    pids[k] = fork();
    ASSERT_GE(pids[k], 0);
    if (pids[k] == 0) {
      close(fds[k][0]);
      int rc = 0;
      try {
        // The parent's pool threads did not survive the fork; pin every
        // engine run inline on this (the only) thread.
        InlineExecutionGuard inline_only;
        auto models = plan::load_dir(td.path.string());
        uint8_t ok = blob_mapped_read_only("resnet20_f32.plan") &&
                             blob_mapped_read_only("resnet20_int8.plan")
                         ? 1
                         : 0;
        if (write(fds[k][1], &ok, 1) != 1) rc = 2;
        for (auto& [stem, p] : models) {
          ExecContext ctx(p);
          const Tensor out = ctx.run(x);
          const auto bytes =
              static_cast<ssize_t>(out.numel() * sizeof(float));
          if (write(fds[k][1], out.data(), bytes) != bytes) rc = 2;
        }
      } catch (...) {
        rc = 3;
      }
      close(fds[k][1]);
      _exit(rc);
    }
    close(fds[k][1]);
  }

  for (int k = 0; k < kids; ++k) {
    uint8_t ok = 0;
    ASSERT_EQ(read(fds[k][0], &ok, 1), 1) << "child " << k;
    EXPECT_EQ(ok, 1) << "child " << k << ": blob not mapped r--p";
    for (size_t m = 0; m < ref.size(); ++m) {
      std::vector<float> got(logit_floats);
      size_t off = 0;
      const size_t want = logit_floats * sizeof(float);
      while (off < want) {
        const ssize_t n = read(fds[k][0],
                               reinterpret_cast<char*>(got.data()) + off,
                               want - off);
        ASSERT_GT(n, 0) << "child " << k << " model " << m;
        off += static_cast<size_t>(n);
      }
      EXPECT_EQ(std::memcmp(got.data(), ref[m].data(), want), 0)
          << "child " << k << " model " << m << ": logits differ";
    }
    close(fds[k][0]);
    int status = 0;
    ASSERT_EQ(waitpid(pids[k], &status, 0), pids[k]);
    ASSERT_TRUE(WIFEXITED(status)) << "child " << k << " crashed";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child " << k;
  }
}

// ---------------------------------------------------------------------------
// ModelServer integration (the serve --plan-dir path)
// ---------------------------------------------------------------------------

TEST(PlanIo, ModelServerRegistersFromBlobDirectory) {
  TempDir td;
  auto f32 = compile_fixture("", "resnet20_f32");
  auto i8 = compile_fixture("int8", "resnet20_int8");
  plan::save(*f32, (td.path / "resnet20_f32.plan").string());
  plan::save(*i8, (td.path / "resnet20_int8.plan").string());

  Rng rng(89);
  const Tensor x = random_input({2, 3, kHw, kHw}, rng);
  ExecContext ref_f(f32), ref_q(i8);
  const Tensor want_f = ref_f.run(x), want_q = ref_q.run(x);

  ModelServer server;
  const auto names = server.add_models_from_dir(td.path.string());
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "resnet20_f32");
  EXPECT_EQ(names[1], "resnet20_int8");
  server.start();
  const Tensor got_f = server.submit("resnet20_f32", x).get();
  const Tensor got_q = server.submit("resnet20_int8", x).get();
  server.stop();
  EXPECT_TRUE(bits_equal(want_f, got_f));
  EXPECT_TRUE(bits_equal(want_q, got_q));

  ModelServer empty;
  TempDir empty_dir;
  EXPECT_THROW(empty.add_models_from_dir(empty_dir.path.string()),
               CheckError);
}

}  // namespace
}  // namespace alf
