// Kernel-backend seam: registry selection and env override, cross-backend
// equivalence (simd vs scalar within 1e-4 of the matrix scale), per-backend
// bit-identity across thread counts, the real int8 qgemm against the
// fake-quant float reference, and the packed-int8 export round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "kernels/backend.hpp"
#include "quant/quantize.hpp"
#include "tensor/ops.hpp"

namespace alf {
namespace {

Tensor random2d(size_t r, size_t c, Rng& rng, float scale = 1.0f) {
  Tensor t({r, c});
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = scale * static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// Runs `be` over op(A)*op(B) into a dense [m, n] buffer.
std::vector<float> run_gemm(const kernels::KernelBackend* be, const Tensor& a,
                            bool ta, const Tensor& b, bool tb, size_t m,
                            size_t k, size_t n, float alpha = 1.0f,
                            float beta = 0.0f, float c_init = 0.0f) {
  std::vector<float> c(m * n, c_init);
  be->gemm(a.data(), a.dim(1), ta, b.data(), b.dim(1), tb, c.data(), n, m, k,
           n, alpha, beta);
  return c;
}

double max_abs_diff(const std::vector<float>& x, const std::vector<float>& y) {
  double d = 0.0;
  for (size_t i = 0; i < x.size(); ++i)
    d = std::max(d, static_cast<double>(std::fabs(x[i] - y[i])));
  return d;
}

double max_abs(const std::vector<float>& x) {
  double m = 0.0;
  for (const float v : x) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

TEST(KernelRegistry, BuiltinsPresent) {
  ASSERT_NE(kernels::scalar_backend(), nullptr);
  EXPECT_STREQ(kernels::scalar_backend()->name, "scalar");
  EXPECT_EQ(kernels::find_backend("scalar"), kernels::scalar_backend());
  EXPECT_EQ(kernels::find_backend("int8"), kernels::int8_backend());
  EXPECT_EQ(kernels::find_backend("no-such-backend"), nullptr);
  const auto names = kernels::backend_names();
  EXPECT_GE(names.size(), size_t{2});
  EXPECT_EQ(names.front(), "scalar");
  ASSERT_NE(kernels::default_backend(), nullptr);
  // default_backend never returns a quantized backend implicitly — unless
  // the run forces one by name (CI loops the suite over ALF_BACKEND).
  if (std::getenv("ALF_BACKEND") == nullptr) {
    EXPECT_FALSE(kernels::default_backend()->quantized_datapath);
  }
}

TEST(KernelRegistry, RegisterAndFind) {
  static const kernels::KernelBackend custom{
      .name = "test-custom",
      .gemm = kernels::scalar_backend()->gemm,
      .qgemm = kernels::scalar_backend()->qgemm};
  kernels::register_backend(&custom);
  EXPECT_EQ(kernels::find_backend("test-custom"), &custom);
  EXPECT_EQ(kernels::backend_names().back(), "test-custom");
}

TEST(KernelRegistry, SetDefaultBackendOverridesAndResets) {
  kernels::set_default_backend("scalar");
  EXPECT_STREQ(kernels::default_backend()->name, "scalar");
  EXPECT_THROW(kernels::set_default_backend("no-such-backend"), CheckError);
  // The failed set leaves the previous override in place.
  EXPECT_STREQ(kernels::default_backend()->name, "scalar");
  kernels::set_default_backend("");  // back to auto resolution
  ASSERT_NE(kernels::default_backend(), nullptr);
}

TEST(KernelRegistry, EnvSelection) {
  // Save whatever the run was launched with (CI forces ALF_BACKEND to loop
  // the suite over every backend) and restore it on the way out.
  const char* prev = std::getenv("ALF_BACKEND");
  const std::string saved = prev != nullptr ? prev : "";
  ASSERT_EQ(setenv("ALF_BACKEND", "scalar", 1), 0);
  kernels::set_default_backend("");  // force re-resolution from the env
  EXPECT_STREQ(kernels::default_backend()->name, "scalar");
  ASSERT_EQ(setenv("ALF_BACKEND", "no-such-backend", 1), 0);
  kernels::set_default_backend("");
  EXPECT_THROW(kernels::default_backend(), CheckError);
  if (prev != nullptr) {
    ASSERT_EQ(setenv("ALF_BACKEND", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("ALF_BACKEND"), 0);
  }
  kernels::set_default_backend("");
  ASSERT_NE(kernels::default_backend(), nullptr);
}

TEST(KernelRegistry, EnvForcingSelectsVectorQgemmBackends) {
  // ALF_BACKEND forcing must work for the ISA-specific quantized backends
  // exactly like for the built-ins (forcing bypasses the feature mask, but
  // registration already guaranteed the host can execute them).
  const char* prev = std::getenv("ALF_BACKEND");
  const std::string saved = prev != nullptr ? prev : "";
  for (const char* name : {"int8-avx2", "int8-vnni"}) {
    if (kernels::find_backend(name) == nullptr) continue;
    ASSERT_EQ(setenv("ALF_BACKEND", name, 1), 0);
    kernels::set_default_backend("");
    EXPECT_STREQ(kernels::default_backend()->name, name);
    EXPECT_TRUE(kernels::default_backend()->quantized_datapath);
  }
  if (prev != nullptr) {
    ASSERT_EQ(setenv("ALF_BACKEND", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("ALF_BACKEND"), 0);
  }
  kernels::set_default_backend("");
}

TEST(KernelDispatch, FeatureMaskGatesAutoSelection) {
  // Auto-selection must never hand out a backend whose required features
  // the mask forbids. With everything masked off, the quantized pick falls
  // back to the baseline "int8" dispatcher and the process default (when
  // not name-forced) to "scalar".
  kernels::set_cpu_feature_mask(0);
  EXPECT_EQ(kernels::allowed_cpu_features(), 0u);
  const kernels::KernelBackend* best = kernels::best_quantized_backend();
  EXPECT_EQ(best->required_features, 0u);
  EXPECT_STREQ(best->name, "int8");
  if (std::getenv("ALF_BACKEND") == nullptr) {
    kernels::set_default_backend("");
    EXPECT_EQ(kernels::default_backend()->required_features, 0u);
    EXPECT_STREQ(kernels::default_backend()->name, "scalar");
  }

  // With only AVX2+FMA allowed, the VNNI kernel stays forbidden but the
  // AVX2 one (when this host registered it) becomes the best pick.
  kernels::set_cpu_feature_mask(kernels::kCpuAvx2 | kernels::kCpuFma);
  const kernels::KernelBackend* avx_best = kernels::best_quantized_backend();
  EXPECT_EQ(avx_best->required_features &
                ~static_cast<uint32_t>(kernels::kCpuAvx2 | kernels::kCpuFma),
            0u);
  if (kernels::find_backend("int8-avx2") != nullptr &&
      (kernels::allowed_cpu_features() & kernels::kCpuAvx2) != 0u) {
    EXPECT_STREQ(avx_best->name, "int8-avx2");
  }

  // Lift the cap: the best pick must be the widest registered kernel.
  kernels::set_cpu_feature_mask(~0u);
  const kernels::KernelBackend* full = kernels::best_quantized_backend();
  if (kernels::find_backend("int8-vnni") != nullptr) {
    EXPECT_STREQ(full->name, "int8-vnni");
  } else if (kernels::find_backend("int8-avx2") != nullptr) {
    EXPECT_STREQ(full->name, "int8-avx2");
  } else {
    EXPECT_STREQ(full->name, "int8");
  }
  kernels::set_default_backend("");
}

TEST(KernelEquivalence, SimdMatchesScalarAllVariants) {
  const kernels::KernelBackend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "simd backend unavailable on this CPU";
  const kernels::KernelBackend* scalar = kernels::scalar_backend();
  Rng rng(7);
  // Odd shapes exercise the packing edge panels and the column tail; the
  // conv-shaped cases mirror the engine's real GEMMs.
  struct Shape {
    size_t m, k, n;
  };
  const Shape shapes[] = {{37, 53, 29},  {64, 64, 64},   {16, 27, 1024},
                          {128, 576, 60}, {4, 3, 17},    {100, 1, 40},
                          {1, 130, 257}};
  for (const auto& s : shapes) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        Tensor a = ta ? random2d(s.k, s.m, rng) : random2d(s.m, s.k, rng);
        Tensor b = tb ? random2d(s.n, s.k, rng) : random2d(s.k, s.n, rng);
        const auto ref =
            run_gemm(scalar, a, ta, b, tb, s.m, s.k, s.n, 1.3f, 0.5f, 0.25f);
        const auto got =
            run_gemm(simd, a, ta, b, tb, s.m, s.k, s.n, 1.3f, 0.5f, 0.25f);
        const double tol = 1e-4 * std::max(1.0, max_abs(ref));
        EXPECT_LE(max_abs_diff(ref, got), tol)
            << "m=" << s.m << " k=" << s.k << " n=" << s.n << " ta=" << ta
            << " tb=" << tb;
      }
    }
  }
}

TEST(KernelEquivalence, StridedCOutput) {
  const kernels::KernelBackend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "simd backend unavailable on this CPU";
  // ldc > n (the engine's shifted-GEMM writes column windows): untouched
  // gutter columns must stay exactly as initialized.
  Rng rng(11);
  const size_t m = 33, k = 40, n = 21, ldc = 30;
  Tensor a = random2d(m, k, rng);
  Tensor b = random2d(k, n, rng);
  std::vector<float> ref(m * ldc, 7.0f), got(m * ldc, 7.0f);
  kernels::scalar_backend()->gemm(a.data(), k, false, b.data(), n, false,
                                  ref.data(), ldc, m, k, n, 1.0f, 0.0f);
  simd->gemm(a.data(), k, false, b.data(), n, false, got.data(), ldc, m, k, n,
             1.0f, 0.0f);
  double tol = 1e-4 * std::max(1.0, max_abs(ref));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < ldc; ++j) {
      if (j >= n) {
        EXPECT_EQ(got[i * ldc + j], 7.0f) << "gutter clobbered at " << j;
      } else {
        EXPECT_NEAR(got[i * ldc + j], ref[i * ldc + j], tol);
      }
    }
  }
}

TEST(KernelDeterminism, BitIdenticalAcrossThreadCounts) {
  Rng rng(13);
  // First shape: large enough that the row partition actually splits (k*n
  // madds per row is small against the per-worker floor). Second shape:
  // wide-N, so the simd backend takes its packed B-panel path.
  const size_t shapes[][3] = {{96, 80, 72}, {24, 48, 1024}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    Tensor a = random2d(m, k, rng);
    Tensor b = random2d(k, n, rng);
    for (const std::string& name : kernels::backend_names()) {
      const kernels::KernelBackend* be = kernels::find_backend(name);
      set_parallel_threads(1);
      const auto ref = run_gemm(be, a, false, b, false, m, k, n);
      for (const int threads : {2, 3, 5}) {
        set_parallel_threads(threads);
        const auto got = run_gemm(be, a, false, b, false, m, k, n);
        EXPECT_EQ(
            std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)), 0)
            << name << " not bit-identical at " << threads << " threads, n="
            << n;
      }
      set_parallel_threads(0);
    }
  }
}

TEST(Qgemm, MatchesFakeQuantFloatReference) {
  Rng rng(17);
  const size_t m = 24, k = 96, n = 32;
  Tensor a = random2d(m, k, rng, 0.8f);
  Tensor b = random2d(k, n, rng, 1.4f);
  const PackedInt8 qa = quantize_tensor(a, 8);
  const PackedInt8 qb = quantize_tensor(b, 8);
  // Reference: the fake-quant float path — dequantize both operands and
  // run the float oracle.
  Tensor da({m, k}), db({k, n});
  for (size_t i = 0; i < da.numel(); ++i) da.at(i) = qa.dequant(i);
  for (size_t i = 0; i < db.numel(); ++i) db.at(i) = qb.dequant(i);
  Tensor cref({m, n});
  gemm_naive(da, false, db, false, cref);

  kernels::QgemmParams params;
  params.a_scale = qa.params.scale;
  params.b_scale = qb.params.scale;
  for (const char* name : {"scalar", "int8"}) {
    const kernels::KernelBackend* be = kernels::find_backend(name);
    std::vector<float> c(m * n, 0.0f);
    be->qgemm(qa.data.data(), k, qb.data.data(), n, c.data(), n, m, k, n,
              params);
    // int32 accumulation is exact; the float reference rounds per add, so
    // the tolerance covers only the reference's error.
    double scale = 0.0;
    for (size_t i = 0; i < cref.numel(); ++i)
      scale = std::max(scale, static_cast<double>(std::fabs(cref.at(i))));
    for (size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], cref.at(i), 1e-4 * std::max(1.0, scale))
          << name << " element " << i;
  }
}

TEST(Qgemm, ZeroPointsApplied) {
  // 2x2x2 with nonzero zero-points, checked against hand math:
  // C[i,j] = sa*sb * sum_k (A-azp)(B-bzp).
  const int8_t a[] = {10, 20, 30, 40};  // [2, 2]
  const int8_t b[] = {1, 2, 3, 4};      // [2, 2]
  kernels::QgemmParams p;
  p.a_scale = 0.5f;
  p.b_scale = 0.25f;
  p.a_zp = 10;
  p.b_zp = 1;
  std::vector<float> c(4, -1.0f);
  kernels::int8_backend()->qgemm(a, 2, b, 2, c.data(), 2, 2, 2, 2, p);
  // Row 0: A-azp = {0, 10}; B-bzp cols: {(0,2),(1,3)}.
  EXPECT_FLOAT_EQ(c[0], 0.125f * (0 * 0 + 10 * 2));
  EXPECT_FLOAT_EQ(c[1], 0.125f * (0 * 1 + 10 * 3));
  // Row 1: A-azp = {20, 30}.
  EXPECT_FLOAT_EQ(c[2], 0.125f * (20 * 0 + 30 * 2));
  EXPECT_FLOAT_EQ(c[3], 0.125f * (20 * 1 + 30 * 3));
}

TEST(Qgemm, PerChannelScalesOverridePerTensor) {
  // Per-row A scales and per-column B scales only touch requantization:
  // against a per-tensor call on the same integer panels the result must
  // differ exactly by the row/column scale ratios.
  Rng rng(19);
  const size_t m = 8, k = 32, n = 12;
  Tensor a = random2d(m, k, rng);
  Tensor b = random2d(k, n, rng);
  const PackedInt8 qa = quantize_tensor(a, 8);
  const PackedInt8 qb = quantize_tensor(b, 8);
  kernels::QgemmParams pt;
  pt.a_scale = qa.params.scale;
  pt.b_scale = qb.params.scale;
  std::vector<float> base(m * n);
  kernels::int8_backend()->qgemm(qa.data.data(), k, qb.data.data(), n,
                                 base.data(), n, m, k, n, pt);

  std::vector<float> arow(m), bcol(n);
  for (size_t i = 0; i < m; ++i)
    arow[i] = qa.params.scale * (1.0f + 0.5f * static_cast<float>(i));
  for (size_t j = 0; j < n; ++j)
    bcol[j] = qb.params.scale * (2.0f - 0.1f * static_cast<float>(j));
  kernels::QgemmParams pc = pt;
  pc.a_scales = arow.data();
  pc.b_scales = bcol.data();
  std::vector<float> got(m * n);
  kernels::int8_backend()->qgemm(qa.data.data(), k, qb.data.data(), n,
                                 got.data(), n, m, k, n, pc);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const float ratio = (arow[i] / qa.params.scale) *
                          (bcol[j] / qb.params.scale);
      EXPECT_NEAR(got[i * n + j], base[i * n + j] * ratio,
                  1e-4f * std::max(1.0f, std::fabs(base[i * n + j] * ratio)))
          << i << "," << j;
    }
  }
}

TEST(Qgemm, DeterministicAcrossThreadCounts) {
  Rng rng(23);
  const size_t m = 64, k = 48, n = 56;
  Tensor a = random2d(m, k, rng);
  Tensor b = random2d(k, n, rng);
  const PackedInt8 qa = quantize_tensor(a, 8);
  const PackedInt8 qb = quantize_tensor(b, 8);
  kernels::QgemmParams params;
  params.a_scale = qa.params.scale;
  params.b_scale = qb.params.scale;
  const auto run = [&] {
    std::vector<float> c(m * n, 0.0f);
    kernels::int8_backend()->qgemm(qa.data.data(), k, qb.data.data(), n,
                                   c.data(), n, m, k, n, params);
    return c;
  };
  set_parallel_threads(1);
  const auto ref = run();
  set_parallel_threads(4);
  const auto got = run();
  set_parallel_threads(0);
  EXPECT_EQ(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)),
            0);
}

// Full-range int8 panel with a deliberate sprinkle of the ±127 saturation
// edges, so the widening multiplies in the vector kernels see their worst
// case (e.g. -127*-127 pairs that would overflow a 16-bit accumulator if a
// kernel widened too late).
std::vector<int8_t> random_i8(size_t numel, Rng& rng) {
  std::vector<int8_t> v(numel);
  for (size_t i = 0; i < numel; ++i) {
    const double u = rng.uniform(0.0, 1.0);
    if (u < 0.05) {
      v[i] = 127;
    } else if (u < 0.10) {
      v[i] = -127;
    } else {
      v[i] = static_cast<int8_t>(
          static_cast<int>(std::lrint(rng.uniform(-127.0, 127.0))));
    }
  }
  return v;
}

TEST(QgemmBitIdentity, VectorBackendsMatchScalarOracle) {
  // The ISA backends must reproduce the scalar qgemm oracle bit for bit:
  // integer accumulation is exact and the float store pairs its multiplies
  // 1:1 with the scalar epilogue. Covers zero-point combinations, odd
  // shapes (nothing aligned to the 4x16 register tile), per-channel
  // scales, and a strided C; memcmp over the full strided buffer also
  // proves the kernels never write the ldc padding.
  Rng rng(41);
  const kernels::KernelBackend* oracle = kernels::find_backend("scalar");
  ASSERT_NE(oracle, nullptr);
  struct Shape {
    size_t m, k, n;
  };
  // Mix of below-cutoff (delegates to scalar), odd, tile-aligned, and
  // wide-N shapes; the larger ones exceed the scalar-delegation cutoff so
  // the vector drivers genuinely run.
  const Shape shapes[] = {{1, 1, 1},    {3, 7, 5},     {5, 31, 47},
                          {17, 64, 129}, {8, 192, 512}, {4, 80, 2048}};
  const int32_t zps[][2] = {
      {0, 0}, {-127, 0}, {0, -127}, {-127, -127}, {5, -3}};
  for (const char* name : {"int8-avx2", "int8-vnni"}) {
    const kernels::KernelBackend* be = kernels::find_backend(name);
    if (be == nullptr) continue;  // host lacks the ISA; registration skipped
    for (const Shape& sh : shapes) {
      const auto a = random_i8(sh.m * sh.k, rng);
      const auto b = random_i8(sh.k * sh.n, rng);
      std::vector<float> as(sh.m), bs(sh.n);
      for (size_t i = 0; i < sh.m; ++i)
        as[i] = 0.03f + 0.01f * static_cast<float>(i % 7);
      for (size_t j = 0; j < sh.n; ++j)
        bs[j] = 0.11f - 0.005f * static_cast<float>(j % 13);
      for (const auto& zp : zps) {
        for (const bool per_channel : {false, true}) {
          kernels::QgemmParams p;
          p.a_scale = 0.0625f;
          p.b_scale = 0.125f;
          p.a_zp = zp[0];
          p.b_zp = zp[1];
          if (per_channel) {
            p.a_scales = as.data();
            p.b_scales = bs.data();
          }
          const size_t ldc = sh.n + 3;  // strided C with poisoned padding
          std::vector<float> ref(sh.m * ldc, -7.0f);
          std::vector<float> got(sh.m * ldc, -7.0f);
          oracle->qgemm(a.data(), sh.k, b.data(), sh.n, ref.data(), ldc,
                        sh.m, sh.k, sh.n, p);
          be->qgemm(a.data(), sh.k, b.data(), sh.n, got.data(), ldc, sh.m,
                    sh.k, sh.n, p);
          ASSERT_EQ(std::memcmp(ref.data(), got.data(),
                                ref.size() * sizeof(float)),
                    0)
              << name << " m=" << sh.m << " k=" << sh.k << " n=" << sh.n
              << " azp=" << zp[0] << " bzp=" << zp[1]
              << " per_channel=" << per_channel;
        }
      }
    }
  }
}

TEST(QgemmBitIdentity, WideNAcrossThreadCounts) {
  // Wide-N quantized matmul, per backend, across thread counts: the k-block
  // accumulation grid is fixed by the shape, so the partition must not leak
  // into results. Integer accumulation makes this exact.
  Rng rng(43);
  const size_t m = 64, k = 96, n = 2048;
  const auto a = random_i8(m * k, rng);
  const auto b = random_i8(k * n, rng);
  kernels::QgemmParams p;
  p.a_scale = 0.01f;
  p.b_scale = 0.02f;
  p.a_zp = -5;
  p.b_zp = 7;
  for (const std::string& name : kernels::backend_names()) {
    const kernels::KernelBackend* be = kernels::find_backend(name);
    const auto run = [&] {
      std::vector<float> c(m * n, 0.0f);
      be->qgemm(a.data(), k, b.data(), n, c.data(), n, m, k, n, p);
      return c;
    };
    set_parallel_threads(1);
    const auto ref = run();
    for (const int threads : {2, 5}) {
      set_parallel_threads(threads);
      const auto got = run();
      EXPECT_EQ(
          std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)), 0)
          << name << " qgemm not bit-identical at " << threads << " threads";
    }
    set_parallel_threads(0);
  }
}

TEST(PackedInt8, RoundTripWithinHalfStep) {
  Rng rng(29);
  Tensor t({5, 33});
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-2.5, 2.5));
  for (const int bits : {8, 6, 4}) {
    const PackedInt8 q = quantize_tensor(t, bits);
    const int qmax = (1 << (bits - 1)) - 1;
    ASSERT_EQ(q.data.size(), t.numel());
    EXPECT_EQ(q.params.bits, bits);
    for (size_t i = 0; i < t.numel(); ++i) {
      EXPECT_LE(std::abs(static_cast<int>(q.data[i])), qmax);
      // Max-abs calibration never saturates, so every element sits within
      // half a grid step of its dequantized value.
      EXPECT_LE(std::fabs(t.at(i) - q.dequant(i)),
                0.5f * q.params.scale + 1e-6f)
          << "bits=" << bits << " i=" << i;
    }
  }
  EXPECT_THROW(quantize_tensor(t, 16), CheckError);
}

TEST(PackedInt8, ViewHelpers) {
  const float src[] = {-1.5f, 0.25f, 3.0f, -0.75f};
  EXPECT_FLOAT_EQ(max_abs_view(src, 4), 3.0f);
  EXPECT_FLOAT_EQ(max_abs_view(src, 0), 0.0f);
  QuantParams qp;
  qp.bits = 8;
  qp.scale = 3.0f / 127.0f;
  int8_t dst[4];
  quantize_view(src, 4, qp, dst);
  EXPECT_EQ(dst[2], 127);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(static_cast<float>(dst[i]) * qp.scale, src[i],
                0.5f * qp.scale + 1e-6f);
}

TEST(Int8Backend, FloatGemmForwardsToBestFloatBackend) {
  Rng rng(31);
  const size_t m = 20, k = 24, n = 28;
  Tensor a = random2d(m, k, rng);
  Tensor b = random2d(k, n, rng);
  const kernels::KernelBackend* simd = kernels::simd_backend();
  const kernels::KernelBackend* want =
      simd != nullptr ? simd : kernels::scalar_backend();
  const auto ref = run_gemm(want, a, false, b, false, m, k, n);
  const auto got =
      run_gemm(kernels::int8_backend(), a, false, b, false, m, k, n);
  EXPECT_EQ(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace alf
