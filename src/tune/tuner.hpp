// Per-shape autotuner: enumerate candidate (strategy, backend, tile,
// chunk) choices for one conv/linear shape, microbenchmark each on
// realistic data, and return the winner.
//
// The tuner plugs into Plan::compile (TuneMode::kCached / kFull): compile
// extracts a TuneShape per GEMM-bearing step, asks choose(), and bakes the
// returned AlgoChoice into the Step. Decisions persist in the AlgoCache
// (tune/algo_cache.hpp) keyed by shape_key(), so a shape is measured once
// per host; a warm cache means a kCached compile performs ZERO measurement
// runs (asserted by tests on tune::stats().measure_runs).
//
// Measurement builds a throwaway single-layer model of the exact shape,
// compiles it with the candidate FORCED (EngineOptions::force_choices) and
// tuning disabled (kHeuristic — the recursion guard), then times min-of-K
// forward passes on fixed-seed random data. min-of-K because the noise on
// a shared machine is one-sided; K is set_reps() (alf_planc --quick lowers
// it).
//
// Winner selection starts from the heuristic choice and requires a >3%
// improvement to move off it, so `tuned >= heuristic` holds modulo noise
// by construction — the tuner can only ever confirm or beat the built-in
// predicates, never regress them.
#pragma once

#include <string>
#include <vector>

#include "engine/plan.hpp"
#include "tensor/ops.hpp"
#include "tune/algo_cache.hpp"

namespace alf::tune {

/// Everything that determines which candidates are legal for one step and
/// how fast each runs — the microbenchmark reproduces exactly this shape.
struct TuneShape {
  bool is_conv = true;
  ConvGeom geom;            ///< conv geometry (is_conv)
  size_t out_c = 0;         ///< conv output channels
  size_t in_features = 0;   ///< linear (is_conv == false)
  size_t out_features = 0;
  bool quantized = false;   ///< step lowered to the int8 datapath
  int qbits = 8;
  bool in_nonneg = false;   ///< asymmetric activation grid (quantized)
  size_t batch = 1;         ///< plan batch size
  size_t chunks = 1;        ///< the plan's compile-time chunk grid
  std::string plan_backend; ///< plan backend name (datapath anchor)
};

/// Stable cache key of a shape, e.g.
///   conv:c16:h32:w32:k3:s1:p1:o16:q0:nn0:b8:t4
///   linear:i256:o10:q1:nn1:b8
/// The backend SET is in the cache stamp, not the key; the datapath is in
/// the key via q/nn/qbits.
std::string shape_key(const TuneShape& shape);

/// Legal candidates for the shape under the current feature mask: the
/// heuristic default first, then per-backend strategy/tile/chunk variants.
/// Every candidate is bit-reproducible on its own; candidates may differ
/// from each other in float rounding (different k-blocking), which is why
/// the choice is cached — one choice, one result.
std::vector<AlgoChoice> candidates(const TuneShape& shape);

/// Times one candidate on the shape: forced compile + warmup + min-of-reps
/// forward passes. Returns milliseconds per batch.
double measure_choice(const TuneShape& shape, const AlgoChoice& choice);

/// The decision for a shape under `mode` (kCached consults and fills
/// `cache`; kFull re-measures and overwrites). The caller saves the cache
/// once after all steps (AlgoCache::save).
AlgoChoice choose(const TuneShape& shape, TuneMode mode, AlgoCache& cache);

/// Measurement repetitions per candidate (min-of-K); default 3.
void set_reps(int reps);
int reps();

}  // namespace alf::tune
