// Clang Thread Safety Analysis macros (no-ops on other compilers).
//
// These turn the locking discipline of the serving stack — which used to
// live only in comments ("runs under the server's mutex") — into contracts
// the compiler checks at every call site and member access. The CI leg
// building with clang and -Werror=thread-safety fails the build on any
// access to an ALF_GUARDED_BY member without its mutex held, any call to an
// ALF_REQUIRES function without the named capability, and any scoped-lock
// misuse (double release, missing release path).
//
// How to guard a new member:
//   1. Give the owning class an alf::Mutex (core/mutex.hpp), not a bare
//      std::mutex — the std:: types carry no annotations, so the analysis
//      cannot see their lock/unlock events.
//   2. Declare the member `T x_ ALF_GUARDED_BY(m_);`.
//   3. Touch it only inside a MutexLock scope (or a method annotated
//      ALF_REQUIRES(m_)). Keep guarded reads out of lambda bodies: the
//      analysis is per-function and does not know a lambda runs with the
//      enclosing scope's locks held.
//
// Cross-object contracts (a helper class whose state is protected by its
// OWNER's mutex, like serve::ModelQueue under ModelServer::m_) pass the
// mutex as a parameter: `void admit(Mutex& m, ...) ALF_REQUIRES(m);`. At
// the call site clang substitutes the argument, so `q.admit(m_, ...)`
// requires m_ to be held — precise checking with no aliasing guesswork.
#pragma once

#if defined(__clang__)
#define ALF_THREAD_ANNOTATION(x) __attribute__((x))  // NOLINT(bugprone-macro-parentheses)
#else
#define ALF_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define ALF_CAPABILITY(x) ALF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define ALF_SCOPED_CAPABILITY ALF_THREAD_ANNOTATION(scoped_lockable)

/// Member access requires the capability held (exclusive for writes).
#define ALF_GUARDED_BY(x) ALF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the POINTED-TO data requires the capability held.
#define ALF_PT_GUARDED_BY(x) ALF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release).
#define ALF_REQUIRES(...) \
  ALF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (must not already be held).
#define ALF_ACQUIRE(...) ALF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define ALF_RELEASE(...) ALF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `val`.
#define ALF_TRY_ACQUIRE(val, ...) \
  ALF_THREAD_ANNOTATION(try_acquire_capability(val, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define ALF_EXCLUDES(...) ALF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Accessor returning the mutex that guards something.
#define ALF_RETURN_CAPABILITY(x) ALF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the function is safe without it.
#define ALF_NO_THREAD_SAFETY_ANALYSIS \
  ALF_THREAD_ANNOTATION(no_thread_safety_analysis)
