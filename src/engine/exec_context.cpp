#include "engine/exec_context.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/asan.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "kernels/backend.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "quant/quantize.hpp"

namespace alf {
namespace {

// kMaxShiftH (the shifted-GEMM border-repair height bound) comes from
// plan.hpp: one definition shared with the compiler and the blob stamp.

/// One row of an image's im2col unfold: dst[oh*wo + ow] = the (c, kh, kw)
/// tap of output position (oh, ow), zero where the tap lands in padding.
/// Identical values to the matching row of im2col_view — the quantized
/// conv path assembles rows one at a time (into an L2-resident staging
/// buffer) instead of materializing the whole float unfold.
void unfold_row_view(const float* src, const ConvGeom& g, size_t c, size_t kh,
                     size_t kw, float* dst) {
  const size_t ho = g.out_h(), wo = g.out_w();
  const size_t hw = g.in_h * g.in_w;
  const long base = static_cast<long>(kw) - static_cast<long>(g.pad);
  size_t lo = 0;
  if (base < 0) lo = (static_cast<size_t>(-base) + g.stride - 1) / g.stride;
  size_t hi = 0;
  const long top = static_cast<long>(g.in_w) - base;
  if (top > 0)
    hi = std::min(wo, (static_cast<size_t>(top) + g.stride - 1) / g.stride);
  lo = std::min(lo, hi);
  for (size_t oh = 0; oh < ho; ++oh) {
    const long ih =
        static_cast<long>(oh * g.stride + kh) - static_cast<long>(g.pad);
    float* d = dst + oh * wo;
    if (ih < 0 || ih >= static_cast<long>(g.in_h)) {
      std::memset(d, 0, wo * sizeof(float));
      continue;
    }
    const float* srow = src + c * hw + static_cast<size_t>(ih) * g.in_w;
    if (lo > 0) std::memset(d, 0, lo * sizeof(float));
    if (g.stride == 1) {
      std::memcpy(d + lo, srow + (static_cast<long>(lo) + base),
                  (hi - lo) * sizeof(float));
    } else {
      const float* s = srow + (static_cast<long>(lo * g.stride) + base);
      for (size_t ow = lo; ow < hi; ++ow, s += g.stride) d[ow] = *s;
    }
    if (hi < wo) std::memset(d + hi, 0, (wo - hi) * sizeof(float));
  }
}


/// Single-image shifted-GEMM convolution (stride 1, pad = (K-1)/2, output
/// size == input size). For each kernel offset (kh, kw) the valid output
/// range is a contiguous window of the flattened [H*W] plane, so the
/// contribution is one GEMM of w9[kh,kw] [Co, Ci] against the raw input
/// planes at a flat offset — no im2col materialization at all. Column
/// wrap-around at the left/right borders is repaired afterwards by
/// recomputing the `pad` edge columns directly from `w`.
void conv2d_image_shift(const Step& st, const kernels::KernelBackend* be,
                        const float* x_img, float* out_img) {
  const ConvGeom& g = st.geom;
  const size_t hh = g.in_h, ww = g.in_w, hw = hh * ww;
  const size_t ci = g.in_c, co = st.out_c, k = g.kernel;
  const long pad = static_cast<long>(g.pad);
  if (k == 1) {
    kernels::gemm_dispatch(be, st.tile, st.w.data(), ci, false, x_img, hw,
                           false, out_img, hw, co, ci, hw, 1.0f, 0.0f);
    bias_act_inplace(out_img, co, hw, st.bias.empty() ? nullptr : st.bias.data(),
                     st.act);
    return;
  }
  std::memset(out_img, 0, co * hw * sizeof(float));
  for (size_t kh = 0; kh < k; ++kh) {
    for (size_t kw = 0; kw < k; ++kw) {
      const long shift = (static_cast<long>(kh) - pad) * static_cast<long>(ww) +
                         (static_cast<long>(kw) - pad);
      const size_t c0 = shift < 0 ? static_cast<size_t>(-shift) : 0;
      const size_t c1 = shift > 0 ? hw - static_cast<size_t>(shift) : hw;
      if (c0 >= c1) continue;
      const float* a = st.w9.data() + (kh * k + kw) * co * ci;
      kernels::gemm_dispatch(be, st.tile, a, ci, false,
                             x_img + static_cast<long>(c0) + shift, hw, false,
                             out_img + c0, hw, co, ci, c1 - c0, 1.0f, 1.0f);
    }
  }
  // Repair the `pad` left/right border columns (their shifted reads wrapped
  // into the neighboring row): direct convolution, overwriting. The y loop
  // is innermost over a contiguous column buffer so the accumulations are
  // independent (no loop-carried dependency chain).
  const size_t p = g.pad;
  float tmp[kMaxShiftH];
  for (size_t o = 0; o < co; ++o) {
    const float* wrow = st.w.data() + o * ci * k * k;
    float* oplane = out_img + o * hw;
    for (size_t e = 0; e < 2 * p; ++e) {
      const size_t x = e < p ? e : ww - 2 * p + e;
      for (size_t y = 0; y < hh; ++y) tmp[y] = 0.0f;
      for (size_t c = 0; c < ci; ++c) {
        const float* xplane = x_img + c * hw;
        for (size_t dy = 0; dy < k; ++dy) {
          const size_t y0 = p > dy ? p - dy : 0;
          const size_t y1 = std::min(hh, hh + p - dy);
          for (size_t dx = 0; dx < k; ++dx) {
            const long ix = static_cast<long>(x + dx) - pad;
            if (ix < 0 || ix >= static_cast<long>(ww)) continue;
            const float wv = wrow[(c * k + dy) * k + dx];
            const float* src = xplane +
                               (static_cast<long>(dy) - pad) *
                                   static_cast<long>(ww) +
                               ix;
            for (size_t y = y0; y < y1; ++y) tmp[y] += wv * src[y * ww];
          }
        }
      }
      for (size_t y = 0; y < hh; ++y) oplane[y * ww + x] = tmp[y];
    }
  }
  bias_act_inplace(out_img, co, hw, st.bias.empty() ? nullptr : st.bias.data(),
                   st.act);
}

}  // namespace

ExecContext::ExecContext(std::shared_ptr<const Plan> plan)
    : plan_(std::move(plan)) {
  ALF_CHECK(plan_ != nullptr) << "ExecContext: null plan";
  workspace_.assign(plan_->workspace_floats(), 0.0f);
  if (plan_->quantized()) {
    qws_.assign(plan_->qws_bytes(), 0);
    qbs_.assign(plan_->qbs_floats(), 0.0f);
  }
  if constexpr (asan_enabled()) {
    // Arena-slot lifetime enforcement: record, per physical slot, the last
    // step that touches it (the loop runs in step order, so each entry
    // ends at its maximum). All activation slots start poisoned; run_rows
    // unpoisons rows as their writer executes and re-poisons each slot the
    // moment its last toucher retires, so the arena is fully poisoned
    // between runs and a cross-lifetime read faults immediately. The conv
    // scratch past the slots stays unpoisoned: GEMMs legitimately read
    // their result region (beta accumulation) before first writing it.
    const auto& steps = plan_->steps();
    slot_last_touch_.assign(plan_->activation_slots() + 1, 0);
    for (size_t i = 0; i < steps.size(); ++i) {
      slot_last_touch_[steps[i].in] = i;
      slot_last_touch_[steps[i].out] = i;
    }
    // The final activation outlives the step list: run_rows copies it to
    // the caller's logit buffer after the last step.
    slot_last_touch_[steps.back().out] = steps.size();
    for (size_t s = 1; s <= plan_->activation_slots(); ++s)
      asan_poison(workspace_.data() + (s - 1) * plan_->slot_stride(),
                  plan_->slot_stride() * sizeof(float));
  }
}

void ExecContext::run_conv(const Step& st, const float* in, float* out,
                           size_t n) {
  // The batch partition is frozen in the Plan (chunks()), so results are
  // bit-identical for any runtime thread count; each chunk owns one im2col
  // + result scratch slice at the arena tail of THIS context.
  const Plan& p = *plan_;
  const size_t nch = std::min(p.step_chunks(st), n);
  const size_t chunk = (n + nch - 1) / nch;
  const size_t nchunks = (n + chunk - 1) / chunk;
  const float* bias = st.bias.empty() ? nullptr : st.bias.data();
  const ConvGeom& g = st.geom;
  const auto process = [&](size_t lo, size_t hi) {
        for (size_t ci = lo; ci < hi; ++ci) {
          const size_t i0 = ci * chunk;
          const size_t i1 = std::min(n, i0 + chunk);
          if (st.shift_gemm) {
            for (size_t i = i0; i < i1; ++i)
              conv2d_image_shift(st, st.be, in + i * st.in_sz,
                                 out + i * st.out_sz);
            continue;
          }
          // Chunk-batched: unfold the chunk's images side by side, run one
          // GEMM + fused epilogue, then scatter the channel rows to NCHW.
          const size_t imgs = i1 - i0;
          const size_t cols = g.col_cols();
          const size_t ld = imgs * cols;
          float* col = workspace_.data() + p.col_offset() + ci * p.col_floats();
          float* res =
              workspace_.data() + p.result_offset() + ci * p.result_floats();
          if (st.quantized) {
            // Quantize the chunk's im2col matrix with one max-abs scale
            // PER IMAGE (image j owns columns [j*cols, (j+1)*cols)); the
            // scales depend only on image content, so the result is
            // independent of both the thread count and the chunk grid.
            // Then run the real int8 GEMM: int32 accumulate, float store.
            const size_t rows = g.col_rows();
            int8_t* qcol = qws_.data() + ci * p.col_floats();
            float* bscales = qbs_.data() + ci * 2 * p.qbs_stride();
            float* binv = bscales + p.qbs_stride();
            const float levels =
                static_cast<float>((1 << (st.qbits - 1)) - 1);
            // Provably non-negative inputs (post-ReLU) take the asymmetric
            // grid: zero-point at the bottom of the range, twice the
            // resolution of the symmetric grid on [0, max].
            const float span = st.in_nonneg ? 2.0f * levels : levels;
            const float zp = st.in_nonneg ? -levels : 0.0f;
            // Per-image dynamic range from the *input image*, not the col
            // matrix: every col entry is an input pixel or a padding zero,
            // so the image max always bounds the col max (it can exceed it
            // only when stride > kernel skips pixels — still a valid, just
            // coarser, grid). One contiguous scan of in_sz floats instead
            // of K*K times that over the unfolded matrix; this scan was
            // the hottest part of the int8 path. Knowing the scale before
            // unfolding also lets each image quantize right after its own
            // im2col, while the stripe is still cache-hot, instead of
            // re-reading the whole chunk's col matrix in a second pass.
            thread_local std::vector<float> imax;
            imax.resize(imgs);
            kernels::max_abs_col_blocks(in + i0 * st.in_sz, /*rows=*/1,
                                        /*ld=*/0, st.in_sz, imgs,
                                        imax.data());
            for (size_t j = 0; j < imgs; ++j) {
              const float scale = imax[j] > 0.0f ? imax[j] / span : 1.0f;
              for (size_t jj = j * cols; jj < (j + 1) * cols; ++jj) {
                bscales[jj] = scale;
                binv[jj] = 1.0f / scale;
              }
            }
            // Assemble and quantize the unfold ROW-major through a staging
            // buffer of one row (ld floats — L2-resident), instead of
            // materializing the full float col matrix: the float taps are
            // quantized while still in cache, so the only full-matrix
            // traffic is the int8 write.
            thread_local std::vector<float> rowbuf;
            rowbuf.resize(ld);
            size_t r = 0;
            for (size_t ch = 0; ch < g.in_c; ++ch)
              for (size_t kh = 0; kh < g.kernel; ++kh)
                for (size_t kw = 0; kw < g.kernel; ++kw, ++r) {
                  for (size_t j = 0; j < imgs; ++j)
                    unfold_row_view(in + (i0 + j) * st.in_sz, g, ch, kh, kw,
                                    rowbuf.data() + j * cols);
                  kernels::quantize_cols_i8(rowbuf.data(), qcol + r * ld, ld,
                                            binv, static_cast<int32_t>(zp),
                                            static_cast<int32_t>(levels));
                }
            kernels::QgemmParams params;
            params.a_scales = st.qw_scales.data();  // per-output-channel
            params.b_scales = bscales;              // per-image
            params.b_zp = static_cast<int32_t>(zp);
            st.be->qgemm(st.qw.data(), rows, qcol, ld, res, ld, st.out_c,
                         rows, ld, params);
          } else {
            for (size_t j = 0; j < imgs; ++j)
              im2col_view(in + (i0 + j) * st.in_sz, g, col + j * cols, ld);
            kernels::gemm_dispatch(st.be, st.tile, st.w.data(), g.col_rows(),
                                   false, col, ld, false, res, ld, st.out_c,
                                   g.col_rows(), ld, 1.0f, 0.0f);
          }
          bias_act_inplace(res, st.out_c, ld, bias, st.act);
          for (size_t j = 0; j < imgs; ++j)
            for (size_t o = 0; o < st.out_c; ++o)
              std::memcpy(out + (i0 + j) * st.out_sz + o * cols,
                          res + o * ld + j * cols, cols * sizeof(float));
        }
  };
  if (nchunks == 1) {
    // Single-chunk plans (batch <= threads at compile, or a 1-core host)
    // bypass the dispatcher entirely: no std::function conversion, so
    // run() performs zero heap allocations. Multi-chunk dispatch costs one
    // closure allocation per conv step.
    process(0, 1);
    return;
  }
  parallel_for_chunked(0, nchunks, process, /*min_per_worker=*/1);
}

void ExecContext::run(const Tensor& x, Tensor& out) {
  const Plan& p = *plan_;
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t n = x.dim(0);
  ALF_CHECK_EQ(x.dim(1), p.in_c());
  ALF_CHECK_EQ(x.dim(2), p.in_h());
  ALF_CHECK_EQ(x.dim(3), p.in_w());
  ALF_CHECK_EQ(out.rank(), size_t{2});
  ALF_CHECK_EQ(out.dim(0), n);
  ALF_CHECK_EQ(out.dim(1), p.classes());
  run_rows(x.data(), n, out.data());
}

void ExecContext::run_rows(const float* x, size_t n, float* out) {
  const Plan& p = *plan_;
  ALF_CHECK(x != nullptr && out != nullptr);
  ALF_CHECK(n >= 1 && n <= p.batch())
      << "engine compiled for batch <= " << p.batch() << ", got " << n;

  float* ws = workspace_.data();
  const size_t stride = p.slot_stride();
  const auto in_ptr = [&](const Step& st) -> const float* {
    return st.in == 0 ? x : ws + (st.in - 1) * stride;
  };
  const auto out_ptr = [&](const Step& st) -> float* {
    return ws + (st.out - 1) * stride;
  };

  for (size_t si = 0; si < p.steps().size(); ++si) {
    const Step& st = p.steps()[si];
    const float* src = in_ptr(st);
    float* dst = out_ptr(st);
    // Open exactly the rows this step writes; the rest of the slot (unused
    // batch tail included) stays poisoned, so partial-batch overreads
    // fault too. For kAdd the destination rows are already open — its
    // producer unpoisoned them — and the unpoison is idempotent.
    if constexpr (asan_enabled())
      asan_unpoison(dst, n * st.out_sz * sizeof(float));
    switch (st.kind) {
      case OpKind::kConv:
        run_conv(st, src, dst, n);
        break;
      case OpKind::kLinear: {
        if (st.quantized) {
          // Dynamic per-image input quantization into the int8 scratch
          // (conv chunks are done by the time the head runs, so the
          // buffer is free), then qgemm against the pre-transposed weight
          // panel. One scale per batch row keeps every image's grid tight.
          const float levels = static_cast<float>((1 << (st.qbits - 1)) - 1);
          const float span = st.in_nonneg ? 2.0f * levels : levels;
          const float zp = st.in_nonneg ? -levels : 0.0f;
          float* ascales = qbs_.data();
          for (size_t i = 0; i < n; ++i) {
            const float* row = src + i * st.in_features;
            const float amax = max_abs_view(row, st.in_features);
            const float scale = amax > 0.0f ? amax / span : 1.0f;
            const float inv = 1.0f / scale;
            ascales[i] = scale;
            int8_t* qrow = qws_.data() + i * st.in_features;
            kernels::quantize_row_i8(row, qrow, st.in_features, inv,
                                     static_cast<int32_t>(zp),
                                     static_cast<int32_t>(levels));
          }
          kernels::QgemmParams params;
          params.a_scales = ascales;              // per-image
          params.b_scales = st.qw_scales.data();  // per-output-feature
          params.a_zp = static_cast<int32_t>(zp);
          st.be->qgemm(qws_.data(), st.in_features, st.qw.data(),
                       st.out_features, dst, st.out_features, n,
                       st.in_features, st.out_features, params);
          const float* b = st.bias.empty() ? nullptr : st.bias.data();
          if (b != nullptr) {
            for (size_t i = 0; i < n; ++i) {
              float* row = dst + i * st.out_features;
              for (size_t j = 0; j < st.out_features; ++j) row[j] += b[j];
            }
          }
          act_inplace(st.act, dst, n * st.out_features);
        } else {
          linear_forward_view(src, n, st.in_features, st.w.data(),
                              st.out_features,
                              st.bias.empty() ? nullptr : st.bias.data(),
                              st.act, dst, st.be);
        }
        break;
      }
      case OpKind::kGlobalAvgPool:
        global_avg_pool_view(src, n, st.geom.in_c,
                             st.geom.in_h * st.geom.in_w, dst);
        act_inplace(st.act, dst, n * st.out_sz);
        break;
      case OpKind::kMaxPool:
        maxpool_view(src, n, st.geom.in_c, st.geom.in_h, st.geom.in_w,
                     st.window, dst, /*argmax=*/nullptr);
        act_inplace(st.act, dst, n * st.out_sz);
        break;
      case OpKind::kAdd: {
        const size_t total = n * st.out_sz;
        if (st.act == Act::kRelu) {
          // The residual hot path: merge + block ReLU in one pass.
          for (size_t i = 0; i < total; ++i) {
            const float v = dst[i] + src[i];
            dst[i] = v > 0.0f ? v : 0.0f;
          }
        } else {
          for (size_t i = 0; i < total; ++i) dst[i] += src[i];
          act_inplace(st.act, dst, total);
        }
        break;
      }
      case OpKind::kScaleShift: {
        const size_t hw = st.geom.in_h * st.geom.in_w;
        for (size_t i = 0; i < n; ++i) {
          for (size_t ch = 0; ch < st.out_c; ++ch) {
            const float s = st.scale.at(ch), b = st.shift.at(ch);
            const float* pp = src + (i * st.out_c + ch) * hw;
            float* q = dst + (i * st.out_c + ch) * hw;
            for (size_t j = 0; j < hw; ++j) q[j] = pp[j] * s + b;
          }
        }
        act_inplace(st.act, dst, n * st.out_sz);
        break;
      }
      case OpKind::kActivation: {
        const size_t total = n * st.out_sz;
        std::memcpy(dst, src, total * sizeof(float));
        act_inplace(st.act, dst, total);
        break;
      }
    }
    // Kill slots whose last toucher just retired: any later read of them
    // is a lifetime bug and now faults as use-after-poison.
    if constexpr (asan_enabled()) {
      if (st.in != 0 && slot_last_touch_[st.in] == si)
        asan_poison(ws + (st.in - 1) * stride, stride * sizeof(float));
      if (slot_last_touch_[st.out] == si)
        asan_poison(ws + (st.out - 1) * stride, stride * sizeof(float));
    }
  }
  const Step& last = p.steps().back();
  std::memcpy(out, ws + (last.out - 1) * stride,
              n * p.classes() * sizeof(float));
  // The logits are delivered; the final slot dies too, restoring the
  // fully-poisoned between-runs state the constructor established.
  if constexpr (asan_enabled())
    asan_poison(ws + (last.out - 1) * stride, stride * sizeof(float));
}

Tensor ExecContext::run(const Tensor& x) {
  Tensor out({x.dim(0), plan_->classes()});
  run(x, out);
  return out;
}

}  // namespace alf
