#include "prune/finetune.hpp"

#include <cstdio>

#include "alf/trainer.hpp"
#include "core/check.hpp"
#include "nn/loss.hpp"

namespace alf {

double finetune_pruned(Sequential& model, const std::vector<Conv2d*>& convs,
                       const PrunePlan& plan,
                       const SyntheticImageDataset& train_set,
                       const SyntheticImageDataset& test_set,
                       const FinetuneConfig& config) {
  ALF_CHECK_EQ(convs.size(), plan.keep.size());
  apply_plan(convs, plan);

  Sgd opt(model.params(), config.sgd);
  BatchIterator it(train_set, config.batch_size, config.seed,
                   /*shuffle=*/true);
  Tensor x;
  std::vector<int> y;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    it.reset();
    double loss_sum = 0.0;
    size_t batches = 0;
    while (it.next(x, y)) {
      opt.zero_grad();
      Tensor logits = model.forward(x, /*train=*/true);
      LossResult res = softmax_cross_entropy(logits, y);
      model.backward(res.grad_logits);
      opt.step();
      // Projection: pruned filters stay exactly zero.
      apply_plan(convs, plan);
      loss_sum += res.loss;
      ++batches;
    }
    if (config.verbose) {
      std::printf("finetune epoch %zu  loss %.4f\n", epoch,
                  loss_sum / static_cast<double>(batches));
      std::fflush(stdout);
    }
  }
  // Zeroed filters shift every layer's activation statistics; refresh BN
  // running averages before the final evaluation.
  bn_recalibrate(model, train_set);
  return Trainer::evaluate(model, test_set);
}

}  // namespace alf
