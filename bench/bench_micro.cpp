// Microbenchmarks (google-benchmark) of the computational substrates:
// GEMM, im2col, convolution forward/backward, ALF block forward and
// autoencoder step, Eyeriss mapper search, dataset synthesis.
//
// `--json <path>` additionally writes the per-benchmark wall time and
// G madds/s (from SetItemsProcessed) in the shared BENCH_*.json schema;
// all other flags go to google-benchmark untouched.
#include <benchmark/benchmark.h>

#include "alf/alf_conv.hpp"
#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "hwmodel/mapper.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace alf;

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1, 1));
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Serial textbook triple loop — the checked-in baseline the blocked
// parallel kernel is measured against.
void BM_GemmNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Tensor a = random_tensor({n, n}, rng);
  Tensor b = random_tensor({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_naive(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_GemmNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  Rng rng(2);
  const ConvGeom g{16, 32, 32, 3, 1, 1};
  Tensor img = random_tensor({16, 32, 32}, rng);
  Tensor col({g.col_rows(), g.col_cols()});
  for (auto _ : state) {
    im2col(img, g, col);
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  Conv2d conv("c", 16, 32, 3, 1, 1, Init::kHe, rng);
  Tensor x = random_tensor({4, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  Conv2d conv("c", 16, 32, 3, 1, 1, Init::kHe, rng);
  Tensor x = random_tensor({4, 16, 16, 16}, rng);
  Tensor y = conv.forward(x, true);
  Tensor g = random_tensor(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_AlfForward(benchmark::State& state) {
  Rng rng(5);
  AlfConfig cfg;
  AlfConv block("b", 16, 32, 3, 1, 1, cfg, rng);
  Tensor x = random_tensor({4, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = block.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AlfForward);

void BM_AutoencoderStep(benchmark::State& state) {
  Rng rng(6);
  AlfConfig cfg;
  AlfConv block("b", 16, 32, 3, 1, 1, cfg, rng);
  for (auto _ : state) {
    const AeStepStats st = block.autoencoder_step();
    benchmark::DoNotOptimize(st.l_rec);
  }
}
BENCHMARK(BM_AutoencoderStep);

void BM_MapperSearch(benchmark::State& state) {
  ConvWorkload w;
  w.name = "conv321";
  w.r = w.s = 3;
  w.p = w.q = 16;
  w.c = 16;
  w.m = 32;
  w.n = 16;
  const EyerissConfig arch;
  MapperConfig cfg;
  for (auto _ : state) {
    const LayerEval ev = map_layer(w, arch, cfg);
    benchmark::DoNotOptimize(ev.cycles);
  }
}
BENCHMARK(BM_MapperSearch);

void BM_DatasetSynthesis(benchmark::State& state) {
  const DataConfig cfg = DataConfig::cifar_like();
  for (auto _ : state) {
    SyntheticImageDataset ds(cfg, 64, 1);
    benchmark::DoNotOptimize(ds.size());
  }
}
BENCHMARK(BM_DatasetSynthesis);

// Console reporter that also collects rows for the --json record.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollector(bench::BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.iterations <= 0) continue;
      bench::BenchRow& row = json_->row(run.benchmark_name());
      row.wall_ms = 1000.0 * run.real_accumulated_time /
                    static_cast<double>(run.iterations);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end())
        row.gmadds_per_s = it->second.value / 1e9;
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchJson* json_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = alf::bench::take_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  alf::bench::BenchJson json("bench_micro", "default");
  JsonCollector reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !json.empty()) {
    if (!json.write(json_path)) {
      std::fprintf(stderr, "FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
