#include "models/zoo.hpp"

#include "core/check.hpp"
#include "nn/activations.hpp"

namespace alf {

ConvMaker standard_conv_maker(Init init, Rng* rng) {
  ALF_CHECK(rng != nullptr);
  return [init, rng](const std::string& name, size_t ci, size_t co, size_t k,
                     size_t stride, size_t pad) -> LayerPtr {
    return std::make_unique<Conv2d>(name, ci, co, k, stride, pad, init, *rng);
  };
}

namespace {

/// Appends conv + BN (+ optional ReLU) to `seq`.
void add_conv_bn(Sequential& seq, const ConvMaker& make_conv,
                 const std::string& name, size_t ci, size_t co, size_t k,
                 size_t stride, size_t pad, bool relu) {
  seq.add(make_conv(name, ci, co, k, stride, pad));
  seq.emplace<BatchNorm2d>(name + "_bn", co);
  if (relu) seq.emplace<Activation>(name + "_relu", Act::kRelu);
}

void add_head(Sequential& seq, const ModelConfig& cfg, size_t features,
              Rng& rng) {
  seq.emplace<GlobalAvgPool>("gap");
  seq.emplace<Flatten>("flatten");
  seq.emplace<Linear>("fc", features, cfg.classes, cfg.init, rng);
}

}  // namespace

std::unique_ptr<Sequential> build_plain20(const ModelConfig& cfg, Rng& rng,
                                          const ConvMaker& make_conv) {
  auto seq = std::make_unique<Sequential>("plain20");
  add_conv_bn(*seq, make_conv, "conv1", cfg.in_channels, cfg.base_width, 3, 1,
              1, /*relu=*/true);
  const size_t widths[3] = {cfg.base_width, 2 * cfg.base_width,
                            4 * cfg.base_width};
  size_t ci = cfg.base_width;
  for (size_t s = 0; s < 3; ++s) {
    for (size_t blk = 1; blk <= 3; ++blk) {
      for (size_t j = 1; j <= 2; ++j) {
        const bool down = (s > 0 && blk == 1 && j == 1);
        const std::string name = "conv" + std::to_string(s + 2) +
                                 std::to_string(blk) + std::to_string(j);
        add_conv_bn(*seq, make_conv, name, ci, widths[s], 3, down ? 2 : 1, 1,
                    /*relu=*/true);
        ci = widths[s];
      }
    }
  }
  add_head(*seq, cfg, widths[2], rng);
  return seq;
}

std::unique_ptr<Sequential> build_resnet20(const ModelConfig& cfg, Rng& rng,
                                           const ConvMaker& make_conv) {
  auto seq = std::make_unique<Sequential>("resnet20");
  add_conv_bn(*seq, make_conv, "conv1", cfg.in_channels, cfg.base_width, 3, 1,
              1, /*relu=*/true);
  const size_t widths[3] = {cfg.base_width, 2 * cfg.base_width,
                            4 * cfg.base_width};
  size_t ci = cfg.base_width;
  for (size_t s = 0; s < 3; ++s) {
    for (size_t blk = 1; blk <= 3; ++blk) {
      const bool down = (s > 0 && blk == 1);
      const std::string base =
          "conv" + std::to_string(s + 2) + std::to_string(blk);
      auto body = std::make_unique<Sequential>(base + "_body");
      add_conv_bn(*body, make_conv, base + "1", ci, widths[s], 3,
                  down ? 2 : 1, 1, /*relu=*/true);
      add_conv_bn(*body, make_conv, base + "2", widths[s], widths[s], 3, 1, 1,
                  /*relu=*/false);
      std::unique_ptr<Sequential> shortcut;
      if (down || ci != widths[s]) {
        shortcut = std::make_unique<Sequential>(base + "_shortcut");
        // Projection shortcuts stay plain convs (they are not ALF-compressed
        // in the paper; they carry <2% of the parameters).
        add_conv_bn(*shortcut, standard_conv_maker(cfg.init, &rng),
                    base + "_proj", ci, widths[s], 1, down ? 2 : 1, 0,
                    /*relu=*/false);
      }
      seq->emplace<ResidualBlock>(base, std::move(body), std::move(shortcut));
      ci = widths[s];
    }
  }
  add_head(*seq, cfg, widths[2], rng);
  return seq;
}

std::unique_ptr<Sequential> build_resnet18(const ModelConfig& cfg, Rng& rng,
                                           const ConvMaker& make_conv) {
  auto seq = std::make_unique<Sequential>("resnet18");
  add_conv_bn(*seq, make_conv, "conv1", cfg.in_channels, cfg.base_width, 3, 1,
              1, /*relu=*/true);
  const size_t widths[4] = {cfg.base_width, 2 * cfg.base_width,
                            4 * cfg.base_width, 8 * cfg.base_width};
  size_t ci = cfg.base_width;
  for (size_t s = 0; s < 4; ++s) {
    for (size_t blk = 1; blk <= 2; ++blk) {
      const bool down = (s > 0 && blk == 1);
      const std::string base =
          "conv" + std::to_string(s + 2) + "_" + std::to_string(blk);
      auto body = std::make_unique<Sequential>(base + "_body");
      add_conv_bn(*body, make_conv, base + "_1", ci, widths[s], 3,
                  down ? 2 : 1, 1, /*relu=*/true);
      add_conv_bn(*body, make_conv, base + "_2", widths[s], widths[s], 3, 1,
                  1, /*relu=*/false);
      std::unique_ptr<Sequential> shortcut;
      if (down || ci != widths[s]) {
        shortcut = std::make_unique<Sequential>(base + "_shortcut");
        add_conv_bn(*shortcut, standard_conv_maker(cfg.init, &rng),
                    base + "_proj", ci, widths[s], 1, down ? 2 : 1, 0,
                    /*relu=*/false);
      }
      seq->emplace<ResidualBlock>(base, std::move(body), std::move(shortcut));
      ci = widths[s];
    }
  }
  add_head(*seq, cfg, widths[3], rng);
  return seq;
}

std::vector<Conv2d*> collect_convs(Sequential& model) {
  std::vector<Conv2d*> convs;
  model.visit([&convs](Layer& l) {
    if (auto* c = dynamic_cast<Conv2d*>(&l)) convs.push_back(c);
  });
  return convs;
}

}  // namespace alf
