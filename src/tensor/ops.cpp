#include "tensor/ops.hpp"

#include <algorithm>
#include <cstring>

#include "core/check.hpp"
#include "kernels/backend.hpp"

namespace alf {

namespace {

struct GemmShape {
  size_t m, k, n;
};

GemmShape gemm_check(const Tensor& a, bool trans_a, const Tensor& b,
                     bool trans_b, const Tensor& c) {
  ALF_CHECK_EQ(a.rank(), size_t{2});
  ALF_CHECK_EQ(b.rank(), size_t{2});
  ALF_CHECK_EQ(c.rank(), size_t{2});
  const size_t m = trans_a ? a.dim(1) : a.dim(0);
  const size_t k = trans_a ? a.dim(0) : a.dim(1);
  const size_t kb = trans_b ? b.dim(1) : b.dim(0);
  const size_t n = trans_b ? b.dim(0) : b.dim(1);
  ALF_CHECK_EQ(k, kb) << "inner dims";
  ALF_CHECK_EQ(c.dim(0), m);
  ALF_CHECK_EQ(c.dim(1), n);
  return {m, k, n};
}

}  // namespace

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  const auto [m, k, n] = gemm_check(a, trans_a, b, trans_b, c);
  gemm_view(a.data(), a.dim(1), trans_a, b.data(), b.dim(1), trans_b,
            c.data(), n, m, k, n, alpha, beta);
}

void gemm_view(const float* pa, size_t lda, bool trans_a, const float* pb,
               size_t ldb, bool trans_b, float* pc, size_t ldc, size_t m,
               size_t k, size_t n, float alpha, float beta) {
  // Thin forward into the kernel-backend layer (cached pointer read; the
  // blocked kernel itself lives in src/kernels/). Callers that pin a
  // backend per plan — the engine — hold their own KernelBackend pointer
  // instead of going through here.
  kernels::default_backend()->gemm(pa, lda, trans_a, pb, ldb, trans_b, pc,
                                   ldc, m, k, n, alpha, beta);
}

void gemm_naive(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
                Tensor& c, float alpha, float beta) {
  const auto [m, k, n] = gemm_check(a, trans_a, b, trans_b, c);
  const size_t lda = a.dim(1);
  const size_t ldb = b.dim(1);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? pa[kk * lda + i] : pa[i * lda + kk];
        const float bv = trans_b ? pb[j * ldb + kk] : pb[kk * ldb + j];
        acc += av * bv;
      }
      pc[i * n + j] =
          alpha * acc + (beta == 0.0f ? 0.0f : beta * pc[i * n + j]);
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  const size_t m = trans_a ? a.dim(1) : a.dim(0);
  const size_t n = trans_b ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  gemm(a, trans_a, b, trans_b, c);
  return c;
}

void im2col(const Tensor& img, const ConvGeom& g, Tensor& col) {
  ALF_CHECK_EQ(img.rank(), size_t{3});
  ALF_CHECK_EQ(img.dim(0), g.in_c);
  ALF_CHECK_EQ(img.dim(1), g.in_h);
  ALF_CHECK_EQ(img.dim(2), g.in_w);
  ALF_CHECK_EQ(col.dim(0), g.col_rows());
  ALF_CHECK_EQ(col.dim(1), g.col_cols());
  im2col_view(img.data(), g, col.data());
}

void im2col(const Tensor& x, size_t image, const ConvGeom& g, Tensor& col) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  ALF_CHECK(image < x.dim(0));
  ALF_CHECK_EQ(x.dim(1), g.in_c);
  ALF_CHECK_EQ(x.dim(2), g.in_h);
  ALF_CHECK_EQ(x.dim(3), g.in_w);
  ALF_CHECK_EQ(col.dim(0), g.col_rows());
  ALF_CHECK_EQ(col.dim(1), g.col_cols());
  im2col_view(x.data() + image * g.in_c * g.in_h * g.in_w, g, col.data());
}

void im2col_view(const float* src, const ConvGeom& g, float* dst) {
  im2col_view(src, g, dst, g.col_cols());
}

void im2col_view(const float* src, const ConvGeom& g, float* dst,
                 size_t ld_col) {
  const size_t ho = g.out_h(), wo = g.out_w();
  const size_t hw = g.in_h * g.in_w;
  for (size_t c = 0; c < g.in_c; ++c) {
    for (size_t kh = 0; kh < g.kernel; ++kh) {
      for (size_t kw = 0; kw < g.kernel; ++kw) {
        float* drow = dst + ((c * g.kernel + kh) * g.kernel + kw) * ld_col;
        // Padding only touches the ends of each output row, so hoist the
        // bounds out of the inner loop: iw = ow*stride + base is in
        // [0, in_w) iff ow is in [lo, hi). The interior is then a straight
        // copy (memcpy at stride 1, branchless gather otherwise).
        const long base = static_cast<long>(kw) - static_cast<long>(g.pad);
        size_t lo = 0;
        if (base < 0)
          lo = (static_cast<size_t>(-base) + g.stride - 1) / g.stride;
        size_t hi = 0;
        const long top = static_cast<long>(g.in_w) - base;
        if (top > 0)
          hi = std::min(wo, (static_cast<size_t>(top) + g.stride - 1) /
                                g.stride);
        lo = std::min(lo, hi);
        for (size_t oh = 0; oh < ho; ++oh) {
          const long ih = static_cast<long>(oh * g.stride + kh) -
                          static_cast<long>(g.pad);
          float* d = drow + oh * wo;
          if (ih < 0 || ih >= static_cast<long>(g.in_h)) {
            std::memset(d, 0, wo * sizeof(float));
            continue;
          }
          const float* srow = src + c * hw + static_cast<size_t>(ih) * g.in_w;
          if (lo > 0) std::memset(d, 0, lo * sizeof(float));
          if (g.stride == 1) {
            std::memcpy(d + lo, srow + (static_cast<long>(lo) + base),
                        (hi - lo) * sizeof(float));
          } else {
            const float* s =
                srow + (static_cast<long>(lo * g.stride) + base);
            for (size_t ow = lo; ow < hi; ++ow, s += g.stride) d[ow] = *s;
          }
          if (hi < wo) std::memset(d + hi, 0, (wo - hi) * sizeof(float));
        }
      }
    }
  }
}

void col2im(const Tensor& col, const ConvGeom& g, Tensor& img) {
  ALF_CHECK_EQ(img.rank(), size_t{3});
  ALF_CHECK_EQ(img.dim(0), g.in_c);
  ALF_CHECK_EQ(col.dim(0), g.col_rows());
  ALF_CHECK_EQ(col.dim(1), g.col_cols());
  col2im_view(col.data(), g, img.data());
}

void col2im(const Tensor& col, const ConvGeom& g, Tensor& x, size_t image) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  ALF_CHECK(image < x.dim(0));
  ALF_CHECK_EQ(x.dim(1), g.in_c);
  ALF_CHECK_EQ(col.dim(0), g.col_rows());
  ALF_CHECK_EQ(col.dim(1), g.col_cols());
  col2im_view(col.data(), g, x.data() + image * g.in_c * g.in_h * g.in_w);
}

void col2im_view(const float* src, const ConvGeom& g, float* dst) {
  const size_t ho = g.out_h(), wo = g.out_w();
  const size_t hw = g.in_h * g.in_w;
  for (size_t c = 0; c < g.in_c; ++c) {
    for (size_t kh = 0; kh < g.kernel; ++kh) {
      for (size_t kw = 0; kw < g.kernel; ++kw) {
        const float* srow =
            src + ((c * g.kernel + kh) * g.kernel + kw) * ho * wo;
        for (size_t oh = 0; oh < ho; ++oh) {
          const long ih = static_cast<long>(oh * g.stride + kh) -
                          static_cast<long>(g.pad);
          if (ih < 0 || ih >= static_cast<long>(g.in_h)) continue;
          float* drow = dst + c * hw + static_cast<size_t>(ih) * g.in_w;
          for (size_t ow = 0; ow < wo; ++ow) {
            const long iw = static_cast<long>(ow * g.stride + kw) -
                            static_cast<long>(g.pad);
            if (iw < 0 || iw >= static_cast<long>(g.in_w)) continue;
            drow[static_cast<size_t>(iw)] += srow[oh * wo + ow];
          }
        }
      }
    }
  }
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  ALF_CHECK(same_shape(a, b));
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (size_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * pb[i];
  return out;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  ALF_CHECK(same_shape(x, y));
  const float* px = x.data();
  float* py = y.data();
  for (size_t i = 0; i < x.numel(); ++i) py[i] += alpha * px[i];
}

double mse(const Tensor& a, const Tensor& b) {
  ALF_CHECK(same_shape(a, b));
  ALF_CHECK(a.numel() > 0);
  double s = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    s += d * d;
  }
  return s / static_cast<double>(a.numel());
}

Tensor transpose2d(const Tensor& a) {
  ALF_CHECK_EQ(a.rank(), size_t{2});
  Tensor out({a.dim(1), a.dim(0)});
  for (size_t i = 0; i < a.dim(0); ++i)
    for (size_t j = 0; j < a.dim(1); ++j) out.at(j, i) = a.at(i, j);
  return out;
}

}  // namespace alf
