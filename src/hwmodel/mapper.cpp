#include "hwmodel/mapper.hpp"

#include <algorithm>
#include <vector>

#include "core/check.hpp"

namespace alf {
namespace {

/// Candidate tiling factors for a dimension of size n: all divisors plus
/// powers of two (ceil-covered remainders are allowed), ascending.
std::vector<size_t> candidates(size_t n) {
  std::vector<size_t> out;
  for (size_t d = 1; d <= n; ++d)
    if (n % d == 0) out.push_back(d);
  for (size_t p = 1; p < n; p *= 2)
    if (n % p != 0) out.push_back(p);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t ceil_div(size_t a, size_t b) { return (a + b - 1) / b; }

double objective(const LayerEval& ev, const MapperConfig& cfg) {
  return cfg.edp_objective ? ev.energy() * ev.cycles : ev.energy();
}

/// One spatial configuration of the PE array.
struct SpatialConfig {
  size_t e, ms, cs;
};

}  // namespace

LayerEval map_layer(const ConvWorkload& w, const EyerissConfig& arch,
                    const MapperConfig& mapper, MapperStats* stats) {
  ALF_CHECK(w.r <= arch.pe_rows)
      << w.name << ": kernel height exceeds PE rows";
  MapperStats local;
  LayerEval best;
  double best_obj = 0.0;
  size_t since_improvement = 0;

  // ---- Enumerate all legal spatial configurations first, largest PE
  // occupancy first, so the iteration budget is spent evenly across the
  // spatial space instead of exhausting it on serial mappings. ----
  std::vector<SpatialConfig> spatials;
  for (size_t e : candidates(std::min(w.p, arch.pe_cols))) {
    const size_t sets_max = (arch.pe_rows / w.r) * (arch.pe_cols / e);
    for (size_t ms : candidates(w.m)) {
      if (ms > sets_max) break;
      for (size_t cs : candidates(w.c)) {
        if (ms * cs > sets_max) break;
        spatials.push_back({e, ms, cs});
      }
    }
  }
  ALF_CHECK(!spatials.empty());
  std::stable_sort(spatials.begin(), spatials.end(),
                   [&w](const SpatialConfig& a, const SpatialConfig& b) {
                     return a.e * a.ms * a.cs * w.r > b.e * b.ms * b.cs * w.r;
                   });
  const size_t per_spatial_budget =
      std::max<size_t>(64, mapper.max_iterations / spatials.size());

  bool done_all = false;
  for (const SpatialConfig& sp : spatials) {
    if (done_all) break;
    size_t budget = per_spatial_budget;
    bool done_spatial = false;

    auto consider = [&](const Mapping& map) {
      if (done_spatial || done_all) return;
      ++local.evaluated;
      if (local.evaluated >= mapper.max_iterations) {
        local.hit_cap = true;
        done_all = true;
      }
      if (--budget == 0) done_spatial = true;
      LayerEval ev = evaluate_mapping(w, arch, map);
      if (!ev.valid) return;
      ++local.valid;
      const double obj = objective(ev, mapper);
      if (!best.valid || obj < best_obj) {
        best = ev;
        best_obj = obj;
        since_improvement = 0;
      } else if (++since_improvement >= mapper.victory && best.valid) {
        done_all = true;
      }
    };

    const size_t m_after_s = ceil_div(w.m, sp.ms);
    const size_t c_after_s = ceil_div(w.c, sp.cs);
    const size_t p_after_s = ceil_div(w.p, sp.e);
    // Small fixed RF-level candidates — larger tiles exceed Eyeriss-like RFs
    // anyway.
    for (size_t t0m : {size_t{1}, size_t{2}, size_t{4}}) {
      if (done_spatial || done_all || t0m > m_after_s) break;
      for (size_t t0c : {size_t{1}, size_t{2}, size_t{4}}) {
        if (done_spatial || done_all || t0c > c_after_s) break;
        for (size_t t0q : candidates(w.q)) {
          if (done_spatial || done_all) break;
          // RF capacity pre-check.
          const size_t w_rf = w.s * t0c * t0m;
          const size_t if_rf = t0c * ((t0q - 1) * w.stride + w.s);
          const size_t of_rf = t0m * t0q;
          if (w_rf + if_rf + of_rf > arch.rf_words_per_pe) continue;

          Mapping map;
          map.e = sp.e;
          map.ms = sp.ms;
          map.cs = sp.cs;
          map.t0.m = t0m;
          map.t0.c = t0c;
          map.t0.q = t0q;
          const size_t m1 = ceil_div(m_after_s, t0m);
          const size_t c1 = ceil_div(c_after_s, t0c);
          const size_t q1 = ceil_div(w.q, t0q);
          for (size_t t1m : candidates(m1)) {
            if (done_spatial || done_all) break;
            for (size_t t1c : candidates(c1)) {
              if (done_spatial || done_all) break;
              for (size_t t1p : candidates(p_after_s)) {
                if (done_spatial || done_all) break;
                for (size_t t1q : candidates(q1)) {
                  if (done_spatial || done_all) break;
                  for (size_t t1n : candidates(w.n)) {
                    if (done_spatial || done_all) break;
                    map.t1 = {t1m, t1c, t1p, t1q, t1n};
                    map.t2 = {ceil_div(m1, t1m), ceil_div(c1, t1c),
                              ceil_div(p_after_s, t1p), ceil_div(q1, t1q),
                              ceil_div(w.n, t1n)};
                    consider(map);
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  if (stats != nullptr) *stats = local;
  ALF_CHECK(best.valid) << w.name << ": no valid mapping found";
  return best;
}

std::vector<LayerEval> map_model(const ModelCost& cost, size_t batch,
                                 const EyerissConfig& arch,
                                 const MapperConfig& mapper) {
  std::vector<LayerEval> out;
  for (const ConvWorkload& w : workloads_from_model(cost, batch))
    out.push_back(map_layer(w, arch, mapper));
  return out;
}

}  // namespace alf
