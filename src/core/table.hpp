// Console table / CSV emission used by the benchmark harnesses.
//
// Every bench prints paper-style rows with this formatter so the output of
// `bench_table2` etc. can be compared side-by-side with the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace alf {

/// Column-aligned text table with an optional title, printable to stdout
/// and dumpable as CSV.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Sets the header row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header width if a header is set.
  void add_row(std::vector<std::string> row);

  /// Renders the aligned table.
  std::string to_string() const;

  /// Renders as CSV (no alignment padding).
  std::string to_csv() const;

  /// Prints to stdout.
  void print() const;

  /// Writes the CSV form to `path`. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Convenience numeric formatting helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace alf
