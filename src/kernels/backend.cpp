#include "kernels/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#endif

#include "core/check.hpp"
#include "kernels/internal.hpp"

namespace alf::kernels {

namespace {

struct FeatureName {
  const char* name;
  uint32_t bit;
};

constexpr FeatureName kFeatureNames[] = {
    {"avx2", kCpuAvx2},
    {"fma", kCpuFma},
    {"avxvnni", kCpuAvxVnni},
    {"avx512vnni", kCpuAvx512Vnni},
};

uint32_t probe_cpu_features() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  uint32_t f = 0;
  if (__builtin_cpu_supports("avx2")) f |= kCpuAvx2;
  if (__builtin_cpu_supports("fma")) f |= kCpuFma;
  if (__builtin_cpu_supports("avx512vnni") && __builtin_cpu_supports("avx512vl"))
    f |= kCpuAvx512Vnni;
  // VEX-encoded AVX-VNNI: cpuid leaf 7 subleaf 1, EAX bit 4. It only needs
  // YMM state, which a usable AVX2 already proves, so no extra xgetbv.
  if ((f & kCpuAvx2) != 0) {
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (__get_cpuid_count(7, 1, &a, &b, &c, &d) != 0 && (a & (1u << 4)) != 0)
      f |= kCpuAvxVnni;
  }
  return f;
#else
  return 0;
#endif
}

/// Features struck out by $ALF_CPU_DISABLE (comma-separated names from
/// kFeatureNames). Parsed once; unknown names are ignored so a typo
/// degrades to "nothing disabled" rather than aborting startup.
uint32_t env_disabled_features() {
  static const uint32_t disabled = [] {
    uint32_t mask = 0;
    const char* env = std::getenv("ALF_CPU_DISABLE");
    if (env == nullptr) return mask;
    const char* p = env;
    while (*p != '\0') {
      const char* comma = std::strchr(p, ',');
      const size_t len = comma != nullptr ? static_cast<size_t>(comma - p)
                                          : std::strlen(p);
      for (const FeatureName& fn : kFeatureNames)
        if (std::strlen(fn.name) == len && std::strncmp(fn.name, p, len) == 0)
          mask |= fn.bit;
      p += len;
      if (*p == ',') ++p;
    }
    return mask;
  }();
  return disabled;
}

/// Test-seam cap over detection; ~0u = no cap.
std::atomic<uint32_t> g_feature_mask{~0u};

struct Registry {
  std::mutex m;
  std::vector<const KernelBackend*> backends;

  Registry() {
    // Built-ins register eagerly so lookup order (and backend_names()) is
    // deterministic: scalar, simd, int8, then the ISA-specific int8
    // kernels. No static-initialization-order hazard — each factory owns
    // a function-local static. Registration is gated on the *detected*
    // CPU (the binary must be able to execute what it registers); the
    // feature mask only steers auto-selection.
    backends.push_back(scalar_backend());
    if (simd_backend() != nullptr) backends.push_back(simd_backend());
    backends.push_back(int8_backend());
    if (int8_avx2_backend() != nullptr)
      backends.push_back(int8_avx2_backend());
    if (int8_vnni_backend() != nullptr)
      backends.push_back(int8_vnni_backend());
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

// Cached default; nullptr = not yet resolved. set_default_backend() stores
// directly (or resets to nullptr for re-resolution).
std::atomic<const KernelBackend*> g_default{nullptr};

const KernelBackend* find_locked(Registry& r, const std::string& name) {
  // Reverse scan: later registrations shadow built-ins of the same name.
  for (auto it = r.backends.rbegin(); it != r.backends.rend(); ++it)
    if (name == (*it)->name) return *it;
  return nullptr;
}

/// True when every feature `be` needs is currently allowed.
bool mask_allows(const KernelBackend* be) {
  return (be->required_features & ~allowed_cpu_features()) == 0;
}

const KernelBackend* resolve_default() {
  const char* env = std::getenv("ALF_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    const KernelBackend* be = find_backend(env);
    ALF_CHECK(be != nullptr)
        << "ALF_BACKEND=" << env << ": unknown kernel backend";
    return be;
  }
  const KernelBackend* simd = find_backend("simd");
  return simd != nullptr && mask_allows(simd) ? simd : scalar_backend();
}

}  // namespace

uint32_t detected_cpu_features() {
  static const uint32_t detected = probe_cpu_features();
  return detected;
}

uint32_t allowed_cpu_features() {
  return detected_cpu_features() & ~env_disabled_features() &
         g_feature_mask.load(std::memory_order_acquire);
}

void set_cpu_feature_mask(uint32_t mask) {
  g_feature_mask.store(mask, std::memory_order_release);
  // Every cached selection was made under the old mask: drop the process
  // default back to auto-resolution and flush the int8 kernel pick.
  g_default.store(nullptr, std::memory_order_release);
  detail::reset_int8_dispatch_cache();
}

std::string cpu_feature_names(uint32_t features) {
  std::string out;
  for (const FeatureName& fn : kFeatureNames) {
    if ((features & fn.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += fn.name;
  }
  return out;
}

void register_backend(const KernelBackend* backend) {
  ALF_CHECK(backend != nullptr && backend->name != nullptr &&
            backend->gemm != nullptr && backend->qgemm != nullptr)
      << "register_backend: incomplete backend";
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  r.backends.push_back(backend);
}

const KernelBackend* find_backend(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  return find_locked(r, name);
}

std::vector<std::string> backend_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  std::vector<std::string> names;
  names.reserve(r.backends.size());
  for (const KernelBackend* be : r.backends) names.emplace_back(be->name);
  return names;
}

const KernelBackend* default_backend() {
  const KernelBackend* be = g_default.load(std::memory_order_acquire);
  if (be != nullptr) return be;
  be = resolve_default();
  g_default.store(be, std::memory_order_release);
  return be;
}

void set_default_backend(const std::string& name) {
  if (name.empty()) {
    g_default.store(nullptr, std::memory_order_release);
    return;
  }
  const KernelBackend* be = find_backend(name);
  ALF_CHECK(be != nullptr) << "set_default_backend: unknown backend '" << name
                           << "'";
  g_default.store(be, std::memory_order_release);
}

const KernelBackend* best_quantized_backend() {
  for (const char* name : {"int8-vnni", "int8-avx2"}) {
    const KernelBackend* be = find_backend(name);
    if (be != nullptr && mask_allows(be)) return be;
  }
  return int8_backend();
}

}  // namespace alf::kernels
