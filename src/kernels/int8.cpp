// The generic "int8" backend: a real quantized GEMM, not fake-quant
// floats, and the stable name scripts/plans can always select.
//
// qgemm multiplies pre-quantized int8 panels (symmetric per-tensor scheme;
// see quant/quantize.hpp for the packing helpers) accumulating in int32
// and requantizes to float on store: C[i,j] = a_scale * b_scale *
// sum_k (A[i,k] - a_zp) * (B[k,j] - b_zp). Integer accumulation is exact,
// so the result is independent of any blocking or thread partition by
// construction — the determinism contract comes for free.
//
// Overflow headroom: |a - zp|, |b - zp| <= 255, so the int32 accumulator
// holds k up to ~2^15 exactly even in the asymmetric worst case; the
// engine's largest reduction (Ci*K*K of a wide conv) is orders of
// magnitude below that.
//
// Its qgemm entry is a dispatcher: it resolves (once, cached) the fastest
// quantized kernel the feature mask allows — int8-vnni, then int8-avx2,
// then the simd TU's wide instantiation of the portable body, then the
// baseline instantiation — all bit-identical, so the pick only moves
// speed. The f32 gemm entry likewise forwards to the best float backend so
// a plan compiled with a quantized backend still runs its non-lowered
// steps (pooling epilogues, repair passes, any layer the lowering keeps in
// float) at full speed. set_cpu_feature_mask() flushes both caches via
// reset_int8_dispatch_cache().
#include <atomic>
#include <cmath>

#include "kernels/internal.hpp"

namespace alf::kernels {

namespace {

using GemmFn = void (*)(const float*, size_t, bool, const float*, size_t,
                        bool, float*, size_t, size_t, size_t, size_t, float,
                        float);

std::atomic<detail::QgemmFn> g_qgemm{nullptr};
std::atomic<GemmFn> g_float_gemm{nullptr};

/// Same subset rule auto-selection uses in backend.cpp.
bool mask_allows(const KernelBackend* be) {
  return (be->required_features & ~allowed_cpu_features()) == 0;
}

/// The simd backend when it is both registered and allowed by the mask.
const KernelBackend* usable_simd() {
  const KernelBackend* simd = simd_backend();
  return simd != nullptr && mask_allows(simd) ? simd : nullptr;
}

}  // namespace

namespace detail {

// Baseline-ISA instantiation of the shared body; the simd backend carries
// a second instantiation compiled with wider vector flags (identical
// integer math, so the two are bit-equal). Every other quantized kernel
// treats this as its oracle and small-shape fallback.
void qgemm_int8(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p) {
  qgemm_int8_body(a, lda, b, ldb, c, ldc, m, k, n, p);
}

void gemm_forward_best_float(const float* a, size_t lda, bool trans_a,
                             const float* b, size_t ldb, bool trans_b,
                             float* c, size_t ldc, size_t m, size_t k,
                             size_t n, float alpha, float beta) {
  GemmFn fn = g_float_gemm.load(std::memory_order_acquire);
  if (fn == nullptr) {
    const KernelBackend* simd = usable_simd();
    fn = simd != nullptr ? simd->gemm : &gemm_scalar;
    g_float_gemm.store(fn, std::memory_order_release);
  }
  fn(a, lda, trans_a, b, ldb, trans_b, c, ldc, m, k, n, alpha, beta);
}

void reset_int8_dispatch_cache() {
  g_qgemm.store(nullptr, std::memory_order_release);
  g_float_gemm.store(nullptr, std::memory_order_release);
}

}  // namespace detail

namespace {

/// qgemm entry of the generic backend: resolve-once dispatch to the best
/// allowed kernel. A race on first use just resolves the same value twice.
void qgemm_dispatch(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                    float* c, size_t ldc, size_t m, size_t k, size_t n,
                    const QgemmParams& p) {
  detail::QgemmFn fn = g_qgemm.load(std::memory_order_acquire);
  if (fn == nullptr) {
    const KernelBackend* best = best_quantized_backend();
    if (best != int8_backend()) {
      fn = best->qgemm;
    } else {
      // No dot-product kernel allowed: the wide instantiation of the
      // portable body still beats baseline codegen when usable.
      const KernelBackend* simd = usable_simd();
      fn = simd != nullptr ? simd->qgemm : &detail::qgemm_int8;
    }
    g_qgemm.store(fn, std::memory_order_release);
  }
  fn(a, lda, b, ldb, c, ldc, m, k, n, p);
}

}  // namespace

const KernelBackend* int8_backend() {
  static const KernelBackend be{.name = "int8",
                                .quantized_datapath = true,
                                .gemm = &detail::gemm_forward_best_float,
                                .qgemm = &qgemm_dispatch};
  return &be;
}

namespace {

// Baseline bodies of the quantize helpers: the same rint-based expression
// as the AVX2 path's scalar tail, so the two agree bit for bit. Compiled
// in this TU (never with wide flags) so they execute on any CPU.

void quantize_row_i8_base(const float* src, int8_t* dst, size_t n, float inv,
                          int32_t zp, int32_t levels) {
  for (size_t i = 0; i < n; ++i) {
    int32_t v = static_cast<int32_t>(std::rintf(src[i] * inv)) + zp;
    v = std::min(levels, std::max(-levels, v));
    dst[i] = static_cast<int8_t>(v);
  }
}

void quantize_cols_i8_base(const float* src, int8_t* dst, size_t n,
                           const float* inv, int32_t zp, int32_t levels) {
  for (size_t i = 0; i < n; ++i) {
    int32_t v = static_cast<int32_t>(std::rintf(src[i] * inv[i])) + zp;
    v = std::min(levels, std::max(-levels, v));
    dst[i] = static_cast<int8_t>(v);
  }
}

void max_abs_col_blocks_base(const float* src, size_t rows, size_t ld,
                             size_t block, size_t nblocks, float* out) {
  for (size_t j = 0; j < nblocks; ++j) out[j] = 0.0f;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = src + r * ld;
    for (size_t j = 0; j < nblocks; ++j) {
      const float* p = row + j * block;
      float m = out[j];
      for (size_t cidx = 0; cidx < block; ++cidx)
        m = std::max(m, std::fabs(p[cidx]));
      out[j] = m;
    }
  }
}

}  // namespace

void quantize_row_i8(const float* src, int8_t* dst, size_t n, float inv,
                     int32_t zp, int32_t levels) {
  // Pure element-wise work: the pick depends only on the detected CPU
  // (never the feature mask — there is no selection semantics to test).
  static const detail::QuantizeRowFn fn =
      detail::quantize_row_i8_vec() != nullptr ? detail::quantize_row_i8_vec()
                                               : &quantize_row_i8_base;
  fn(src, dst, n, inv, zp, levels);
}

void quantize_cols_i8(const float* src, int8_t* dst, size_t n,
                      const float* inv, int32_t zp, int32_t levels) {
  static const detail::QuantizeColsFn fn =
      detail::quantize_cols_i8_vec() != nullptr
          ? detail::quantize_cols_i8_vec()
          : &quantize_cols_i8_base;
  fn(src, dst, n, inv, zp, levels);
}

void max_abs_col_blocks(const float* src, size_t rows, size_t ld, size_t block,
                        size_t nblocks, float* out) {
  static const detail::MaxAbsBlocksFn fn =
      detail::max_abs_col_blocks_vec() != nullptr
          ? detail::max_abs_col_blocks_vec()
          : &max_abs_col_blocks_base;
  fn(src, rows, ld, block, nblocks, out);
}

}  // namespace alf::kernels
