// Wire protocol of the TCP serving front end (src/net/server.hpp):
// length-prefixed little-endian binary frames over a byte stream.
//
// Request frame:
//
//   RequestHeader (40 B, layout below)
//   model name    (header.model_len bytes, NOT NUL-terminated)
//   payload       (header.payload_bytes bytes: `rows` NCHW float32 images,
//                  exactly rows * image_floats * 4 bytes for the model)
//
// Response frame:
//
//   ResponseHeader (32 B)
//   payload        (kOk: rows * classes float32 logits; any error status:
//                   a short human-readable message, safe to ignore)
//
// `seq` is chosen by the client and echoed verbatim in the response, so a
// client may pipeline any number of requests per connection; responses to
// DIFFERENT models can complete out of order.
//
// `deadline_us` is the client's latency budget measured from the moment it
// sends the frame. It is mandatory: 0 and anything above kMaxDeadlineUs
// are rejected as kBadDeadline (a serving tier without per-request budgets
// cannot shed honestly under overload). The server propagates the budget
// minus observed time-on-wire (first byte of the frame to full receipt)
// into ModelServer::SubmitOptions::deadline_us; a request still queued
// when the remaining budget runs out comes back as kDeadlineExpired.
//
// Reject codes are typed (WireStatus, mirroring the PlanIoError style of
// engine/plan_io.hpp) and split into two classes, per
// status_closes_connection():
//
//   frame-level errors    connection survives; the offending frame is
//                         consumed and answered with an error frame
//                         (kUnknownModel, kBadShape, kBadDeadline,
//                         kQueueFull, kDeadlineExpired, kShuttingDown)
//   framing-fatal errors  the byte stream can no longer be trusted (or is
//                         hostile); the server answers with an error frame
//                         and closes after flushing in-flight responses
//                         (kBadMagic, kBadVersion, kBadHeader, kTooLarge)
//
// kTruncated never travels on the wire: it counts connections that died
// mid-frame (EOF with a partial header or payload buffered) in NetStats.
//
// All integers are little-endian; the header structs below are packed PODs
// with no padding (statically asserted), memcpy'd to and from the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace alf::net {

/// "ALFN" as the first four bytes on the wire (little-endian u32).
constexpr uint32_t kMagic = 0x4E464C41u;
constexpr uint16_t kWireVersion = 1;
/// Longest accepted model name; longer model_len fields are kBadHeader.
constexpr size_t kMaxModelName = 64;
/// Largest accepted deadline_us (10 minutes); anything above is absurd for
/// an inference request and rejected as kBadDeadline, like 0.
constexpr uint64_t kMaxDeadlineUs = 600ull * 1000 * 1000;

/// Typed verdict of one frame (and of the connection carrying it).
enum class WireStatus : uint16_t {
  kOk = 0,
  kBadMagic = 1,         ///< not an ALFN frame (fatal)
  kBadVersion = 2,       ///< protocol version mismatch (fatal)
  kBadHeader = 3,        ///< header structurally broken, e.g. model_len
                         ///< 0 or > kMaxModelName (fatal)
  kTooLarge = 4,         ///< payload_bytes above the server cap (fatal)
  kUnknownModel = 5,     ///< no such model hosted
  kBadShape = 6,         ///< rows/payload_bytes inconsistent with the model
  kBadDeadline = 7,      ///< deadline_us zero or above kMaxDeadlineUs
  kQueueFull = 8,        ///< admission control rejected or shed the request
  kDeadlineExpired = 9,  ///< budget ran out (on the wire or in the queue)
  kShuttingDown = 10,    ///< server is draining; request was not accepted
  kInternal = 11,        ///< unexpected server-side failure
  kTruncated = 12,       ///< stats-only: connection died mid-frame
};
constexpr size_t kNumStatus = 13;

/// Short stable name ("ok", "bad_magic", ...) for logs and error payloads.
const char* status_name(WireStatus s);

/// True for the framing-fatal class: the server closes the connection
/// after sending the error frame and flushing in-flight responses.
bool status_closes_connection(WireStatus s);

/// On-wire request header. Packed POD, no padding; all fields LE.
struct RequestHeader {
  uint32_t magic;          ///< kMagic
  uint16_t version;        ///< kWireVersion
  uint16_t model_len;      ///< 1..kMaxModelName name bytes follow
  uint32_t rows;           ///< images in the payload, 1..Plan::batch()
  uint32_t reserved;       ///< must-ignore (send 0)
  uint64_t seq;            ///< client-chosen, echoed in the response
  uint64_t deadline_us;    ///< latency budget from client send; mandatory
  uint64_t payload_bytes;  ///< rows * image_floats * 4
};
static_assert(sizeof(RequestHeader) == 40, "packed layout is the protocol");

/// On-wire response header. Packed POD, no padding; all fields LE.
struct ResponseHeader {
  uint32_t magic;          ///< kMagic
  uint16_t version;        ///< kWireVersion
  uint16_t status;         ///< WireStatus
  uint32_t rows;           ///< logit rows in the payload (kOk only)
  uint32_t reserved;       ///< must-ignore (sent 0)
  uint64_t seq;            ///< echo of the request's seq
  uint64_t payload_bytes;  ///< logits (kOk) or message bytes (errors)
};
static_assert(sizeof(ResponseHeader) == 32, "packed layout is the protocol");

/// Typed wire rejection, thrown by client-side helpers when the peer
/// answers with an error status or violates the framing itself — the
/// PlanIoError idiom applied to the socket: status() tells a caller apart
/// "my request was bad" (kBadShape, kUnknownModel) from "the server is
/// overloaded or going away" (kQueueFull, kDeadlineExpired,
/// kShuttingDown).
class WireError : public std::runtime_error {
 public:
  WireError(WireStatus status, const std::string& what)
      : std::runtime_error("wire: " + what), status_(status) {}

  WireStatus status() const { return status_; }

 private:
  WireStatus status_;
};

}  // namespace alf::net
