#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/linear.hpp"
#include "optim/sgd.hpp"

namespace alf {
namespace {

Param make_param(const std::string& name, std::vector<float> value,
                 std::vector<float> grad, bool decay = true) {
  Param p(name, {value.size()}, decay);
  for (size_t i = 0; i < value.size(); ++i) {
    p.value.at(i) = value[i];
    p.grad.at(i) = grad[i];
  }
  return p;
}

TEST(Sgd, PlainStepWithoutMomentum) {
  Param p = make_param("w", {1.0f, -2.0f}, {0.5f, 0.25f});
  p.decay = false;
  SgdConfig cfg{0.1f, 0.0f, 0.0f};
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value.at(1), -2.0f - 0.1f * 0.25f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p = make_param("w", {0.0f}, {1.0f});
  p.decay = false;
  SgdConfig cfg{1.0f, 0.5f, 0.0f};
  Sgd opt({&p}, cfg);
  opt.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0f);
  p.grad.at(0) = 1.0f;
  opt.step();  // v = 0.5 + 1 = 1.5, w = -2.5
  EXPECT_FLOAT_EQ(p.value.at(0), -2.5f);
}

TEST(Sgd, WeightDecayOnlyOnDecayParams) {
  Param decayed = make_param("w", {2.0f}, {0.0f}, /*decay=*/true);
  Param plain = make_param("m", {2.0f}, {0.0f}, /*decay=*/false);
  SgdConfig cfg{0.1f, 0.0f, 0.5f};
  Sgd opt({&decayed, &plain}, cfg);
  opt.step();
  EXPECT_FLOAT_EQ(decayed.value.at(0), 2.0f - 0.1f * (0.5f * 2.0f));
  EXPECT_FLOAT_EQ(plain.value.at(0), 2.0f);
}

TEST(Sgd, ZeroGradClearsAll) {
  Param a = make_param("a", {1.0f}, {3.0f});
  Param b = make_param("b", {1.0f}, {4.0f});
  Sgd opt({&a, &b}, SgdConfig{});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(a.grad.at(0), 0.0f);
  EXPECT_FLOAT_EQ(b.grad.at(0), 0.0f);
}

TEST(Sgd, SetLrTakesEffect) {
  Param p = make_param("w", {0.0f}, {1.0f});
  p.decay = false;
  SgdConfig cfg{0.1f, 0.0f, 0.0f};
  Sgd opt({&p}, cfg);
  opt.set_lr(0.5f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), -0.5f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by feeding grad = 2(w - 3).
  Param p = make_param("w", {0.0f}, {0.0f});
  p.decay = false;
  SgdConfig cfg{0.1f, 0.9f, 0.0f};
  Sgd opt({&p}, cfg);
  for (int i = 0; i < 200; ++i) {
    p.grad.at(0) = 2.0f * (p.value.at(0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 1e-3);
}

TEST(StepLrSchedule, PiecewiseConstant) {
  StepLrSchedule sched(1.0f, {10, 20}, 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(9), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(10), 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_at(19), 0.1f);
  EXPECT_NEAR(sched.lr_at(20), 0.01f, 1e-7);
  EXPECT_NEAR(sched.lr_at(100), 0.01f, 1e-7);
}

TEST(StepLrSchedule, NoMilestonesConstant) {
  StepLrSchedule sched(0.05f, {});
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.05f);
  EXPECT_FLOAT_EQ(sched.lr_at(1000), 0.05f);
}

TEST(Sgd, TrainsLinearRegression) {
  // End-to-end sanity: fit y = 2x + 1 with a Linear layer.
  Rng rng(3);
  Linear fc("fc", 1, 1, Init::kXavier, rng);
  SgdConfig cfg{0.05f, 0.9f, 0.0f};
  Sgd opt(fc.params(), cfg);
  for (int it = 0; it < 500; ++it) {
    const float xv = static_cast<float>(rng.uniform(-1.0, 1.0));
    Tensor x({1, 1}, {xv});
    Tensor y = fc.forward(x, true);
    const float target = 2.0f * xv + 1.0f;
    Tensor grad({1, 1}, {2.0f * (y.at(0) - target)});
    opt.zero_grad();
    fc.backward(grad);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value.at(0), 2.0f, 0.05f);
  EXPECT_NEAR(fc.bias().value.at(0), 1.0f, 0.05f);
}

}  // namespace
}  // namespace alf
