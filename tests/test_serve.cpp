// Serving-layer tests, the ThreadSanitizer CI target:
//  - BatchServer: dynamic batching correctness (batched results
//    bit-identical to direct per-request Engine::run), queue/CV behavior
//    under concurrent producers, starvation bounds, drain-on-stop, loud
//    rejection of malformed submissions, shed policies, deadlines.
//  - ModelServer: multi-model bit-identity (float + int8 plans on one
//    shared worker pool), weighted-share convergence under saturation,
//    concurrent submits to different models, drain-on-stop across all
//    model queues, coherent stats snapshots (conservation identity).
//  - Plan/ExecContext: concurrent contexts on one immutable Plan are
//    race-free and bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/asan.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "grad_check.hpp"
#include "models/zoo.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "serve/batch_server.hpp"
#include "serve/model_server.hpp"

namespace alf {
namespace {

using testing::random_input;

constexpr size_t kHw = 8;
constexpr size_t kInC = 3;
constexpr size_t kClasses = 5;
constexpr size_t kBatch = 8;

/// Small conv net — big enough to exercise conv/BN-fold/linear steps,
/// small enough that serve tests stay fast under TSan.
std::unique_ptr<Sequential> toy_model(Rng& rng) {
  auto m = std::make_unique<Sequential>("toy");
  m->emplace<Conv2d>("c1", kInC, 8, 3, 1, 1, Init::kHe, rng);
  m->emplace<BatchNorm2d>("c1_bn", 8);
  m->emplace<Activation>("c1_relu", Act::kRelu);
  m->emplace<GlobalAvgPool>("gap");
  m->emplace<Flatten>("flatten");
  m->emplace<Linear>("fc", 8, kClasses, Init::kHe, rng);
  return m;
}

void warm_bn(Sequential& model, Rng& rng) {
  bench::warm_bn(model, kInC, kHw, rng, /*passes=*/3, /*batch=*/4);
}

Engine toy_engine(const Sequential& model) {
  return Engine::compile(model, kBatch, kInC, kHw, kHw);
}

TEST(BatchServer, BatchedResultsBitIdenticalToDirectEngineRun) {
  Rng rng(51);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  // Two engines compiled from the same model produce identical plans; one
  // serves, the other is the per-request reference.
  Engine ref = toy_engine(*model);

  BatchServer::Config cfg;
  cfg.start_paused = true;  // stage the whole backlog, then release it
  cfg.max_wait_us = 1000;
  BatchServer server(toy_engine(*model), cfg);

  // Prefix batching over a staged queue is deterministic: [3,2,1] = 6 (the
  // 8 does not fit), [8] full, [4,4] full, [2,1,1] = 4 on the tail tick.
  const std::vector<size_t> sizes = {3, 2, 1, 8, 4, 4, 2, 1, 1};
  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (const size_t n : sizes) {
    inputs.push_back(random_input({n, kInC, kHw, kHw}, rng));
    futures.push_back(server.submit(inputs.back()));
  }
  EXPECT_EQ(server.pending(), sizes.size());
  server.resume();
  for (size_t i = 0; i < sizes.size(); ++i) {
    Tensor got = futures[i].get();
    ASSERT_EQ(got.dim(0), sizes[i]);
    ASSERT_EQ(got.dim(1), kClasses);
    const Tensor want = ref.run(inputs[i]);
    for (size_t j = 0; j < want.numel(); ++j)
      EXPECT_EQ(want.at(j), got.at(j)) << "request " << i << " elem " << j;
  }
  const ServeStats st = server.stats();
  EXPECT_EQ(st.requests, sizes.size());
  EXPECT_EQ(st.images, size_t{26});
  EXPECT_EQ(st.batches, size_t{4});
  EXPECT_EQ(st.full_batches, size_t{2});
  EXPECT_EQ(st.max_fill, kBatch);
  EXPECT_DOUBLE_EQ(st.avg_fill(), 26.0 / 4.0);
}

TEST(BatchServer, ConcurrentProducersAllServedCorrectly) {
  Rng rng(52);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  Engine ref = toy_engine(*model);
  set_parallel_threads(2);  // engine dispatch exercises the worker pool
  BatchServer server(toy_engine(*model));

  constexpr size_t kProducers = 4, kPerProducer = 20;
  struct Issued {
    Tensor x;
    std::future<Tensor> fut;
  };
  std::vector<std::vector<Issued>> issued(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng prng(100 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        const size_t n = 1 + prng.uniform_index(4);
        Tensor x = random_input({n, kInC, kHw, kHw}, prng);
        std::future<Tensor> fut = server.submit(x);
        issued[p].push_back(Issued{std::move(x), std::move(fut)});
      }
    });
  }
  for (auto& t : producers) t.join();

  for (auto& per_producer : issued) {
    for (Issued& rq : per_producer) {
      Tensor got = rq.fut.get();
      const Tensor want = ref.run(rq.x);
      ASSERT_TRUE(same_shape(want, got));
      for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
    }
  }
  server.stop();
  set_parallel_threads(0);
  const ServeStats st = server.stats();
  EXPECT_EQ(st.requests, kProducers * kPerProducer);
  EXPECT_EQ(server.pending(), size_t{0});
  EXPECT_GE(st.batches, size_t{1});
  EXPECT_LE(st.batches, st.requests);
}

TEST(BatchServer, RuntimePauseHoldsTheBacklogUntilResume) {
  // pause() on a live server (not just start_paused) must stop new batch
  // formation: requests stay queued — even one submitted just before the
  // pause, whose tick the dispatcher abandons — until resume().
  Rng rng(57);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.max_wait_us = 200000;  // 200ms: the open tick outlives the pause below
  BatchServer server(toy_engine(*model), cfg);

  std::vector<std::future<Tensor>> futures;
  // The first submission opens a tick that waits for batch-mates; pause()
  // lands inside that wait and must abandon the tick, not dispatch it.
  futures.push_back(server.submit(random_input({1, kInC, kHw, kHw}, rng)));
  server.pause();
  for (int i = 0; i < 4; ++i)
    futures.push_back(server.submit(random_input({1, kInC, kHw, kHw}, rng)));
  // Sleep past the abandoned tick's deadline: nothing may have dispatched.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(server.pending(), size_t{5});
  EXPECT_EQ(server.stats().batches, size_t{0});
  server.resume();
  for (auto& fut : futures) EXPECT_EQ(fut.get().dim(0), size_t{1});
  EXPECT_EQ(server.pending(), size_t{0});
  EXPECT_EQ(server.stats().images, size_t{5});
}

TEST(BatchServer, LoneRequestIsNotStarvedPastTheWaitBudget) {
  Rng rng(53);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.max_wait_us = 500;
  BatchServer server(toy_engine(*model), cfg);

  Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  std::future<Tensor> fut = server.submit(x);
  // Generous bound: the tick closes after max_wait_us, not a full batch.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_EQ(fut.get().dim(0), size_t{1});
  EXPECT_EQ(server.stats().batches, size_t{1});
}

TEST(BatchServer, StopDrainsEveryQueuedRequest) {
  Rng rng(54);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.start_paused = true;
  BatchServer server(toy_engine(*model), cfg);

  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(server.submit(random_input({2, kInC, kHw, kHw}, rng)));
  EXPECT_EQ(server.pending(), size_t{10});
  server.stop();  // overrides the pause and drains before joining
  EXPECT_EQ(server.pending(), size_t{0});
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(fut.get().dim(0), size_t{2});
  }
  EXPECT_EQ(server.stats().requests, size_t{10});
}

TEST(BatchServer, CallbackOverloadDeliversLogits) {
  Rng rng(55);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer server(toy_engine(*model));

  std::promise<Tensor> done;
  std::future<Tensor> fut = done.get_future();
  server.submit(random_input({3, kInC, kHw, kHw}, rng),
                [&done](Tensor&& logits) { done.set_value(std::move(logits)); });
  Tensor got = fut.get();
  EXPECT_EQ(got.dim(0), size_t{3});
  EXPECT_EQ(got.dim(1), kClasses);
}

TEST(BatchServer, MalformedSubmissionsFailLoudly) {
  Rng rng(56);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer server(toy_engine(*model));

  // Oversized request, wrong channel count, wrong spatial size, wrong rank.
  EXPECT_THROW(server.submit(Tensor({kBatch + 1, kInC, kHw, kHw})),
               CheckError);
  EXPECT_THROW(server.submit(Tensor({1, kInC + 1, kHw, kHw})), CheckError);
  EXPECT_THROW(server.submit(Tensor({1, kInC, kHw, kHw + 2})), CheckError);
  EXPECT_THROW(server.submit(Tensor({kInC, kHw, kHw})), CheckError);
  EXPECT_THROW(server.submit(Tensor({1, kInC, kHw, kHw}), nullptr),
               CheckError);

  server.stop();
  EXPECT_THROW(server.submit(Tensor({1, kInC, kHw, kHw})), CheckError);
  // stop() is idempotent.
  server.stop();
}

TEST(BatchServer, AdmissionControlRejectsPastMaxQueue) {
  Rng rng(57);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  Engine ref = toy_engine(*model);

  BatchServer::Config cfg;
  cfg.start_paused = true;  // hold the backlog so the bound is hit exactly
  cfg.max_queue = 3;
  BatchServer server(toy_engine(*model), cfg);

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> accepted;
  for (size_t i = 0; i < cfg.max_queue; ++i) {
    inputs.push_back(random_input({1, kInC, kHw, kHw}, rng));
    accepted.push_back(server.submit(inputs.back()));
  }
  EXPECT_EQ(server.pending(), cfg.max_queue);

  // The bound is on requests held, and the error is the typed overload
  // signal — not CheckError, which stays reserved for misuse.
  Tensor extra = random_input({1, kInC, kHw, kHw}, rng);
  EXPECT_THROW(server.submit(extra), QueueFullError);
  try {
    server.submit(extra);
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
  }
  EXPECT_EQ(server.pending(), cfg.max_queue);  // rejects never enqueue
  EXPECT_EQ(server.stats().rejected, size_t{2});

  // Draining the backlog reopens admission; every accepted request is
  // still served exactly (rejection sheds load, it never corrupts).
  server.resume();
  for (size_t i = 0; i < accepted.size(); ++i) {
    Tensor got = accepted[i].get();
    const Tensor want = ref.run(inputs[i]);
    for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
  }
  std::future<Tensor> reopened = server.submit(extra);
  const Tensor want = ref.run(extra);
  Tensor got = reopened.get();
  for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
  const ServeStats st = server.stats();
  EXPECT_EQ(st.requests, cfg.max_queue + 1);
  EXPECT_EQ(st.rejected, size_t{2});
}

TEST(BatchServer, PlanConstructorAndLazyEngineAccessorShareOnePlan) {
  // The facade can be built straight from a shared Plan (no transient
  // ExecContext), and engine() materializes its view lazily on the same
  // plan object — no recompilation anywhere.
  Rng rng(62);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto plan = Plan::compile(*model, kBatch, kInC, kHw, kHw);
  Engine ref(plan);
  BatchServer server(plan);
  EXPECT_EQ(server.plan().get(), plan.get());
  const Engine& view = server.engine();
  EXPECT_EQ(view.plan().get(), plan.get());
  EXPECT_EQ(&view, &server.engine());  // one lazy instance
  EXPECT_EQ(view.batch(), kBatch);
  Tensor x = random_input({2, kInC, kHw, kHw}, rng);
  Tensor got = server.submit(x).get();
  const Tensor want = ref.run(x);
  for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
}

TEST(BatchServer, DropOldestShedsTheStaleHeadNotTheNewSubmit) {
  Rng rng(59);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  Engine ref = toy_engine(*model);

  BatchServer::Config cfg;
  cfg.start_paused = true;  // hold the backlog so the bound is hit exactly
  cfg.max_queue = 2;
  cfg.shed = BatchServer::Config::ShedPolicy::kDropOldest;
  BatchServer server(toy_engine(*model), cfg);

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (size_t i = 0; i < 3; ++i) {
    inputs.push_back(random_input({1, kInC, kHw, kHw}, rng));
    futures.push_back(server.submit(inputs.back()));
  }
  // The third submit found the queue full: it was ADMITTED and the oldest
  // (request 0) was shed — its future completes with QueueFullError, the
  // typed overload signal, not CheckError.
  EXPECT_EQ(server.pending(), size_t{2});
  EXPECT_THROW(futures[0].get(), QueueFullError);
  ServeStats st = server.stats();
  EXPECT_EQ(st.accepted, size_t{3});
  EXPECT_EQ(st.dropped_oldest, size_t{1});
  EXPECT_EQ(st.rejected, size_t{0});

  // The survivors still serve exactly.
  server.resume();
  for (size_t i = 1; i < 3; ++i) {
    Tensor got = futures[i].get();
    const Tensor want = ref.run(inputs[i]);
    for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
  }
  server.stop();  // joins: the delivered bookkeeping is final
  st = server.stats();
  EXPECT_EQ(st.completed, size_t{2});
  EXPECT_EQ(st.accepted,
            st.completed + st.dropped_oldest + st.expired + st.queued +
                st.in_flight);
}

TEST(BatchServer, ExpiredDeadlinesAreShedBeforeBatchFormation) {
  Rng rng(60);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.start_paused = true;  // the pause guarantees the deadline passes
  BatchServer server(toy_engine(*model), cfg);

  BatchServer::SubmitOptions slo;
  slo.deadline_us = 1;  // expires while the server is paused
  std::future<Tensor> doomed =
      server.submit(random_input({1, kInC, kHw, kHw}, rng), slo);
  std::future<Tensor> unbounded =
      server.submit(random_input({2, kInC, kHw, kHw}, rng));
  BatchServer::SubmitOptions generous;
  generous.deadline_us = 60'000'000;  // far future: must NOT be shed
  std::future<Tensor> within =
      server.submit(random_input({1, kInC, kHw, kHw}, rng), generous);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.resume();

  EXPECT_THROW(doomed.get(), DeadlineExpiredError);
  EXPECT_EQ(unbounded.get().dim(0), size_t{2});
  EXPECT_EQ(within.get().dim(0), size_t{1});
  server.stop();  // joins: the delivered bookkeeping is final
  const ServeStats st = server.stats();
  EXPECT_EQ(st.expired, size_t{1});
  EXPECT_EQ(st.completed, size_t{2});
  // Expired requests never reach the engine.
  EXPECT_EQ(st.images, size_t{3});
  EXPECT_EQ(st.accepted,
            st.completed + st.dropped_oldest + st.expired + st.queued +
                st.in_flight);
}

TEST(BatchServer, StatsSnapshotConservesRequestsUnderConcurrentLoad) {
  // stats() copies one struct under the queue mutex, so the conservation
  // identity must hold at EVERY instant — snapshot repeatedly while
  // producers and the dispatcher race.
  Rng rng(61);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer server(toy_engine(*model));

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<Tensor>>> futs(3);
  for (size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      Rng prng(200 + p);
      for (size_t i = 0; i < 30; ++i)
        futs[p].push_back(
            server.submit(random_input({1 + prng.uniform_index(3), kInC,
                                        kHw, kHw}, prng)));
    });
  }
  for (int snap = 0; snap < 200; ++snap) {
    const ServeStats st = server.stats();
    ASSERT_EQ(st.accepted, st.completed + st.dropped_oldest + st.expired +
                               st.queued + st.in_flight)
        << "snapshot " << snap;
    if (done.load()) break;
  }
  for (auto& t : producers) t.join();
  done = true;
  for (auto& per : futs)
    for (auto& f : per) f.get();
  server.stop();
  const ServeStats st = server.stats();
  EXPECT_EQ(st.accepted, size_t{90});
  EXPECT_EQ(st.completed, size_t{90});
  EXPECT_EQ(st.in_flight, size_t{0});
  EXPECT_EQ(st.queued, size_t{0});
}

// --- ModelServer: the multi-tenant layer the BatchServer facade sits on ---

TEST(ModelServer, MultiModelBitIdenticalToDirectEngineRunOnSharedPool) {
  // A float toy net and its int8 twin served concurrently from one
  // 2-worker pool must produce exactly the bits of a direct
  // single-threaded Engine::run per model — the Plans are SHARED between
  // the server's worker contexts and the reference engines.
  Rng rng(70);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto fplan = Plan::compile(*model, kBatch, kInC, kHw, kHw);
  auto qplan = Plan::compile(*model, kBatch, kInC, kHw, kHw,
                             {.backend = "int8", .bits = 8, .name = ""});
  ASSERT_FALSE(fplan->quantized());
  ASSERT_TRUE(qplan->quantized());
  Engine fref(fplan);
  Engine qref(qplan);

  ModelServer::Config cfg;
  cfg.workers = 2;
  ModelServer server(cfg);
  server.add_model("toy_f32", fplan);
  server.add_model("toy_int8", qplan);
  server.start();

  struct Issued {
    const char* model;
    Tensor x;
    std::future<Tensor> fut;
  };
  std::vector<Issued> issued;
  for (size_t i = 0; i < 24; ++i) {
    const char* name = i % 2 == 0 ? "toy_f32" : "toy_int8";
    Tensor x = random_input({1 + rng.uniform_index(4), kInC, kHw, kHw}, rng);
    std::future<Tensor> fut = server.submit(name, x);
    issued.push_back(Issued{name, std::move(x), std::move(fut)});
  }
  for (Issued& rq : issued) {
    Tensor got = rq.fut.get();
    Engine& ref = std::string(rq.model) == "toy_f32" ? fref : qref;
    const Tensor want = ref.run(rq.x);
    ASSERT_TRUE(same_shape(want, got)) << rq.model;
    for (size_t j = 0; j < want.numel(); ++j)
      EXPECT_EQ(want.at(j), got.at(j)) << rq.model << " elem " << j;
  }
  server.stop();
  EXPECT_EQ(server.stats("toy_f32").completed, size_t{12});
  EXPECT_EQ(server.stats("toy_int8").completed, size_t{12});
}

TEST(ModelServer, ConcurrentSubmitsToDifferentModelsAllServed) {
  Rng rng(71);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto fplan = Plan::compile(*model, kBatch, kInC, kHw, kHw);
  auto qplan = Plan::compile(*model, kBatch, kInC, kHw, kHw,
                             {.backend = "int8", .bits = 8, .name = ""});
  Engine fref(fplan);
  Engine qref(qplan);

  ModelServer::Config cfg;
  cfg.workers = 3;
  ModelServer server(cfg);
  server.add_model("f32", fplan);
  server.add_model("int8", qplan);
  server.start();

  constexpr size_t kProducers = 4, kPerProducer = 12;
  struct Issued {
    bool quant;
    Tensor x;
    std::future<Tensor> fut;
  };
  std::vector<std::vector<Issued>> issued(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng prng(300 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        const bool quant = prng.uniform() < 0.5;
        Tensor x =
            random_input({1 + prng.uniform_index(4), kInC, kHw, kHw}, prng);
        std::future<Tensor> fut =
            server.submit(quant ? "int8" : "f32", x);
        issued[p].push_back(Issued{quant, std::move(x), std::move(fut)});
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& per : issued) {
    for (Issued& rq : per) {
      Tensor got = rq.fut.get();
      const Tensor want = (rq.quant ? qref : fref).run(rq.x);
      ASSERT_TRUE(same_shape(want, got));
      for (size_t j = 0; j < want.numel(); ++j)
        EXPECT_EQ(want.at(j), got.at(j));
    }
  }
  server.stop();
  const ServeStats total = server.stats();
  EXPECT_EQ(total.completed, kProducers * kPerProducer);
  EXPECT_EQ(total.accepted, total.completed);
}

TEST(ModelServer, WeightedSharesConvergeUnderSaturation) {
  // Weights 3:1 on two saturated queues: while BOTH are backlogged the
  // scheduler must hand model A ~3x the images of model B. Single worker +
  // full staged backlog makes the dispatch order deterministic; the
  // callbacks record it, and the share is measured at the moment B's last
  // request completes (afterwards A drains alone, which would wash the
  // ratio out to the queue lengths).
  Rng rng(72);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto plan = Plan::compile(*model, kBatch, kInC, kHw, kHw);

  ModelServer::Config cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  ModelServer server(cfg);
  ModelServer::ModelConfig heavy, light;
  heavy.weight = 3.0;
  heavy.max_wait_us = 0;  // saturated queues need no batching wait
  light.weight = 1.0;
  light.max_wait_us = 0;
  server.add_model("heavy", plan, heavy);
  server.add_model("light", plan, light);
  server.start();

  // Full-batch requests so every dispatch moves exactly kBatch images.
  constexpr size_t kHeavyBatches = 40, kLightBatches = 10;
  std::mutex order_m;
  std::vector<char> order;  // 'h' / 'l' per completed batch
  std::vector<std::future<void>> sync;
  Tensor x = random_input({kBatch, kInC, kHw, kHw}, rng);
  const auto submit_batches = [&](const char* name, char tag, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      server.submit(name, x, [&order_m, &order, tag](Tensor&&) {
        std::lock_guard<std::mutex> lk(order_m);
        order.push_back(tag);
      });
    }
  };
  submit_batches("heavy", 'h', kHeavyBatches);
  submit_batches("light", 'l', kLightBatches);
  server.resume();
  server.stop();  // drains everything; `order` is final

  ASSERT_EQ(order.size(), kHeavyBatches + kLightBatches);
  size_t last_l = 0;
  for (size_t i = 0; i < order.size(); ++i)
    if (order[i] == 'l') last_l = i;
  size_t h_before = 0;
  for (size_t i = 0; i < last_l; ++i)
    if (order[i] == 'h') ++h_before;
  // While both queues were saturated, heavy got ~3x light's share. The
  // exact deficit sequence gives 27..30 heavy batches before the 10th
  // light one; the window tolerates scheduler tie-break changes.
  const double ratio = static_cast<double>(h_before) /
                       static_cast<double>(kLightBatches);
  EXPECT_GE(ratio, 2.2) << "heavy " << h_before << " before light "
                        << kLightBatches;
  EXPECT_LE(ratio, 3.8) << "heavy " << h_before << " before light "
                        << kLightBatches;
  EXPECT_EQ(server.stats("heavy").images, kHeavyBatches * kBatch);
  EXPECT_EQ(server.stats("light").images, kLightBatches * kBatch);
}

TEST(ModelServer, StopDrainsEveryModelQueue) {
  Rng rng(73);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto fplan = Plan::compile(*model, kBatch, kInC, kHw, kHw);
  auto qplan = Plan::compile(*model, kBatch, kInC, kHw, kHw,
                             {.backend = "int8", .bits = 8, .name = ""});

  ModelServer::Config cfg;
  cfg.workers = 2;
  cfg.start_paused = true;
  ModelServer server(cfg);
  server.add_model("a", fplan);
  server.add_model("b", qplan);
  server.start();

  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.submit("a", random_input({2, kInC, kHw, kHw},
                                                      rng)));
    futures.push_back(server.submit("b", random_input({1, kInC, kHw, kHw},
                                                      rng)));
  }
  EXPECT_EQ(server.pending(), size_t{16});
  EXPECT_EQ(server.pending("a"), size_t{8});
  server.stop();  // overrides the pause and drains BOTH queues
  EXPECT_EQ(server.pending(), size_t{0});
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    fut.get();
  }
  EXPECT_EQ(server.stats("a").completed, size_t{8});
  EXPECT_EQ(server.stats("b").completed, size_t{8});
  EXPECT_THROW(server.submit("a", random_input({1, kInC, kHw, kHw}, rng)),
               CheckError);
}

TEST(ModelServer, RegistryMisuseFailsLoudly) {
  Rng rng(74);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto plan = Plan::compile(*model, kBatch, kInC, kHw, kHw);

  ModelServer server;
  EXPECT_THROW(server.start(), CheckError);  // no models
  EXPECT_THROW(server.submit("toy", Tensor({1, kInC, kHw, kHw})),
               CheckError);  // before start
  server.add_model("toy", plan);
  EXPECT_THROW(server.add_model("toy", plan), CheckError);  // duplicate
  EXPECT_THROW(server.add_model("", plan), CheckError);     // empty name
  EXPECT_THROW(server.add_model("null", nullptr), CheckError);
  server.start();
  EXPECT_THROW(server.add_model("late", plan), CheckError);  // after start
  EXPECT_THROW(server.submit("unknown", Tensor({1, kInC, kHw, kHw})),
               CheckError);
  EXPECT_THROW(server.stats("unknown"), CheckError);
  // The hosted model still works after all that shouting.
  EXPECT_EQ(server.submit("toy", random_input({1, kInC, kHw, kHw}, rng))
                .get()
                .dim(0),
            size_t{1});
  server.stop();
}

// --- Plan/ExecContext: the split the server is built on -------------------

TEST(ExecContext, ConcurrentContextsOnOneImmutablePlanAreRaceFree) {
  // The multi-tenant contract in one test: N threads, each with its OWN
  // ExecContext, hammer the SAME Plan concurrently (this suite runs under
  // TSan in CI — a mutable Plan would be flagged immediately) and every
  // run must reproduce the single-threaded reference bits.
  Rng rng(75);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  for (const char* backend : {"", "int8"}) {
    EngineOptions opts;
    opts.backend = backend;
    auto plan = Plan::compile(*model, kBatch, kInC, kHw, kHw, opts);

    Tensor x = random_input({kBatch, kInC, kHw, kHw}, rng);
    ExecContext ref_ctx(plan);
    const Tensor want = ref_ctx.run(x);

    constexpr size_t kThreads = 4, kIters = 16;
    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        // Inline execution, like the server's workers: the contexts race
        // on the Plan only, never on the process pool's chunk handout.
        InlineExecutionGuard inline_guard;
        ExecContext ctx(plan);
        Tensor out({kBatch, plan->classes()});
        for (size_t it = 0; it < kIters; ++it) {
          ctx.run(x, out);
          for (size_t j = 0; j < want.numel(); ++j)
            if (out.at(j) != want.at(j)) ++mismatches;
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), size_t{0}) << "backend '" << backend << "'";
  }
}

TEST(BatchServer, UnboundedQueueByDefault) {
  Rng rng(58);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.start_paused = true;
  BatchServer server(toy_engine(*model), cfg);
  // Far past any batch multiple: nothing rejects with max_queue = 0.
  std::vector<std::future<Tensor>> futs;
  for (size_t i = 0; i < 4 * kBatch; ++i)
    futs.push_back(server.submit(random_input({1, kInC, kHw, kHw}, rng)));
  EXPECT_EQ(server.pending(), 4 * kBatch);
  EXPECT_EQ(server.stats().rejected, size_t{0});
  server.resume();
  for (auto& f : futs) f.get();
}

// --- Arena-slot poisoning (src/core/asan.hpp, exec_context.cpp) ------------
// Under ASan the engine poisons every arena slot between runs and re-kills
// each slot the moment its last reader retires, so a kernel consuming a
// DEAD slot faults instead of silently reading stale activations. These
// tests pin the contract from both sides: the arena really is poisoned
// when instrumented (and really is not when not), results are unaffected,
// and a deliberate dead-slot read dies with a use-after-poison report.

TEST(ExecContext, ArenaIsPoisonedBetweenRunsExactlyWhenInstrumented) {
  Rng rng(61);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto plan = Plan::compile(*model, kBatch, kInC, kHw, kHw);
  ExecContext ctx(plan);
  // Freshly constructed: every activation slot starts dead.
  EXPECT_EQ(asan_is_poisoned(ctx.workspace_data()), asan_enabled());

  Tensor x = random_input({kBatch, kInC, kHw, kHw}, rng);
  const Tensor got = ctx.run(x);
  // Poisoning must be invisible in the results: a second context (and the
  // reference Engine path) agrees bit-for-bit.
  Engine ref = toy_engine(*model);
  const Tensor want = ref.run(x);
  for (size_t i = 0; i < want.numel(); ++i)
    ASSERT_EQ(got.at(i), want.at(i)) << i;
  // Between runs the whole slot region is dead again — first byte of
  // every activation slot, not just the arena base.
  for (size_t s = 0; s < plan->activation_slots(); ++s)
    EXPECT_EQ(
        asan_is_poisoned(ctx.workspace_data() + s * plan->slot_stride()),
        asan_enabled())
        << "slot " << s + 1;
  // The conv scratch past the slots is never poisoned (GEMMs may read
  // their result region before first writing it).
  EXPECT_FALSE(asan_is_poisoned(ctx.workspace_data() + plan->col_offset()));
}

using ExecContextDeathTest = ::testing::Test;

TEST(ExecContextDeathTest, DeadSlotReadFaultsUnderAsan) {
  if (!asan_enabled()) {
    GTEST_SKIP() << "arena poisoning is armed only in ASan builds";
  }
  Rng rng(62);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  auto plan = Plan::compile(*model, kBatch, kInC, kHw, kHw);
  ExecContext ctx(plan);
  Tensor x = random_input({kBatch, kInC, kHw, kHw}, rng);
  (void)ctx.run(x);
  // Every slot is dead after the run; touching one is exactly the bug the
  // poisoning exists to catch, and must die with a use-after-poison
  // report, not return stale activations.
  EXPECT_DEATH(
      {
        volatile float stale = ctx.workspace_data()[0];
        (void)stale;
      },
      "use-after-poison");
}

}  // namespace
}  // namespace alf
