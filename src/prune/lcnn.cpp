#include "prune/lcnn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.hpp"

namespace alf {

LcnnLayerResult lcnn_compress_layer(const Tensor& w, const LcnnConfig& config,
                                    Rng& rng) {
  ALF_CHECK_EQ(w.rank(), size_t{4});
  const size_t co = w.dim(0);
  const size_t fsize = w.numel() / co;
  const size_t d = std::max(
      config.min_dict,
      static_cast<size_t>(std::lround(config.dict_frac * co)));
  ALF_CHECK(d <= co) << "dictionary larger than the filter bank";

  LcnnLayerResult res;
  res.dictionary = Tensor({d, fsize});
  res.assignment.assign(co, 0);

  // k-means++-style seeding, deterministic via rng.
  std::vector<size_t> seeds;
  seeds.push_back(rng.uniform_index(co));
  std::vector<double> dist2(co, std::numeric_limits<double>::max());
  auto filter = [&w, fsize](size_t f) { return w.data() + f * fsize; };
  auto sq_dist = [fsize](const float* a, const float* b) {
    double s = 0.0;
    for (size_t j = 0; j < fsize; ++j) {
      const double diff = static_cast<double>(a[j]) - b[j];
      s += diff * diff;
    }
    return s;
  };
  while (seeds.size() < d) {
    const float* last = filter(seeds.back());
    double total = 0.0;
    for (size_t f = 0; f < co; ++f) {
      dist2[f] = std::min(dist2[f], sq_dist(filter(f), last));
      total += dist2[f];
    }
    // Sample proportional to squared distance (deterministic stream).
    double target = rng.uniform() * total;
    size_t chosen = co - 1;
    for (size_t f = 0; f < co; ++f) {
      target -= dist2[f];
      if (target <= 0.0) {
        chosen = f;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  for (size_t k = 0; k < d; ++k) {
    const float* src = filter(seeds[k]);
    std::copy(src, src + fsize, res.dictionary.data() + k * fsize);
  }

  // Lloyd iterations.
  std::vector<double> centroid(fsize);
  for (size_t iter = 0; iter < config.kmeans_iters; ++iter) {
    bool changed = false;
    for (size_t f = 0; f < co; ++f) {
      double best = std::numeric_limits<double>::max();
      size_t arg = 0;
      for (size_t k = 0; k < d; ++k) {
        const double dd =
            sq_dist(filter(f), res.dictionary.data() + k * fsize);
        if (dd < best) {
          best = dd;
          arg = k;
        }
      }
      if (res.assignment[f] != arg) {
        res.assignment[f] = arg;
        changed = true;
      }
    }
    for (size_t k = 0; k < d; ++k) {
      std::fill(centroid.begin(), centroid.end(), 0.0);
      size_t count = 0;
      for (size_t f = 0; f < co; ++f) {
        if (res.assignment[f] != k) continue;
        const float* p = filter(f);
        for (size_t j = 0; j < fsize; ++j) centroid[j] += p[j];
        ++count;
      }
      if (count == 0) continue;  // empty cluster keeps its previous atom
      float* atom = res.dictionary.data() + k * fsize;
      for (size_t j = 0; j < fsize; ++j)
        atom[j] = static_cast<float>(centroid[j] / count);
    }
    if (!changed && iter > 0) break;
  }

  double err = 0.0;
  for (size_t f = 0; f < co; ++f) {
    err += sq_dist(filter(f),
                   res.dictionary.data() + res.assignment[f] * fsize);
  }
  res.recon_mse = err / static_cast<double>(w.numel());
  return res;
}

void lcnn_apply(Conv2d& conv, const LcnnLayerResult& result) {
  Tensor& w = conv.weight().value;
  const size_t co = w.dim(0);
  ALF_CHECK_EQ(result.assignment.size(), co);
  const size_t fsize = w.numel() / co;
  ALF_CHECK_EQ(result.dictionary.dim(1), fsize);
  for (size_t f = 0; f < co; ++f) {
    const float* atom =
        result.dictionary.data() + result.assignment[f] * fsize;
    std::copy(atom, atom + fsize, w.data() + f * fsize);
  }
}

ModelCost apply_lcnn_cost(
    const ModelCost& vanilla,
    const std::map<std::string, size_t>& dict_size_by_name,
    size_t lookup_terms, const std::string& new_name) {
  ModelCost out;
  out.name = new_name;
  for (const LayerCost& l : vanilla.layers) {
    auto it = dict_size_by_name.find(l.name);
    if (l.kind != "conv" || it == dict_size_by_name.end()) {
      out.layers.push_back(l);
      continue;
    }
    const size_t d = it->second;
    ALF_CHECK(d >= 1 && d <= l.co) << l.name;
    // Dictionary conv: D filters of the original geometry.
    LayerCost dict = l;
    dict.kind = "conv_code";
    dict.co = d;
    dict.params = static_cast<unsigned long long>(l.k) * l.k * l.ci * d;
    dict.macs = dict.params * l.out_h * l.out_w;
    out.layers.push_back(dict);
    // Lookup/recombination: s MACs per output channel and position; the
    // table itself stores s (index, weight) pairs per output channel.
    LayerCost lut;
    lut.name = l.name + "_lut";
    lut.kind = "conv_exp";
    lut.ci = d;
    lut.co = l.co;
    lut.k = 1;
    lut.out_h = l.out_h;
    lut.out_w = l.out_w;
    lut.params = static_cast<unsigned long long>(lookup_terms) * l.co;
    lut.macs = lut.params * l.out_h * l.out_w;
    out.layers.push_back(lut);
  }
  return out;
}

}  // namespace alf
