#include "engine/engine.hpp"

namespace alf {

Engine Engine::compile(const Sequential& model, size_t batch, size_t in_c,
                       size_t in_h, size_t in_w) {
  return compile(model, batch, in_c, in_h, in_w, EngineOptions{});
}

Engine Engine::compile(const Sequential& model, size_t batch, size_t in_c,
                       size_t in_h, size_t in_w, const EngineOptions& opts) {
  return Engine(Plan::compile(model, batch, in_c, in_h, in_w, opts));
}

Engine::Engine(std::shared_ptr<const Plan> plan)
    : plan_(std::move(plan)), ctx_(plan_) {}

}  // namespace alf
