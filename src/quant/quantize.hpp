// Post-training weight quantization — the paper's Sec. II notes that
// quantization "is orthogonal to this work and can be applied in
// conjunction with the proposed ALF method"; this module demonstrates that
// claim (see tests/test_quant.cpp and examples/compare_pruners.cpp).
//
// Scheme: uniform symmetric fake-quantization. Weights are mapped to the
// integer grid [-2^(bits-1)+1, 2^(bits-1)-1] with a per-tensor max-abs
// scale and immediately de-quantized, so the rest of the float pipeline is
// unchanged while the values carry exactly `bits` bits of information.
#pragma once

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace alf {

/// Per-tensor quantization parameters.
struct QuantParams {
  int bits = 8;
  float scale = 1.0f;  ///< float value of one integer step

  /// Largest representable magnitude.
  float max_value() const {
    return scale * static_cast<float>((1 << (bits - 1)) - 1);
  }
};

/// Chooses a symmetric max-abs scale for `t`. bits must be in [2, 16].
QuantParams calibrate_quant(const Tensor& t, int bits);

/// In-place fake quantization of `t` with the given parameters.
/// Returns the mean squared quantization error.
double quantize_dequantize(Tensor& t, const QuantParams& params);

/// Result of quantizing a whole model.
struct ModelQuantStats {
  size_t tensors = 0;
  double mean_sq_error = 0.0;  ///< averaged over quantized tensors
};

/// Fake-quantizes every task parameter of the model (conv/FC weights and
/// biases; BatchNorm scale/shift are left in float, the usual practice).
ModelQuantStats quantize_model_weights(Sequential& model, int bits);

}  // namespace alf
