// The ALF block (Sec. III of the paper): a convolution whose filter bank is
// compressed during training by a sparse autoencoder.
//
// Training-time dataflow (Fig. 1):
//
//   W  --(encoder Wenc)-->  W~code  --(x Mprune, sigma_ae)-->  Wcode
//   Wcode --(decoder Wdec, sigma_ae)--> Wrec           (autoencoder only)
//   A_l = sigma_inter(A_{l-1} * Wcode) * Wexp          (task path, Eq. 1)
//
// Two optimizers touch this block:
//  * the task optimizer updates W and Wexp; gradients flow to W through a
//    straight-through estimator that bypasses encoder, mask and sigma_ae
//    (Eq. 5);
//  * a per-block autoencoder optimizer updates Wenc, Wdec and the mask M
//    against Lae = Lrec + nu_prune * Lprune, with an STE through the
//    non-differentiable mask clipping (Eq. 6).
//
// At deployment (Sec. III-C) the autoencoder is discarded, zero filters of
// Wcode are removed, and the block becomes a dense conv pair
// (code conv -> sigma_inter -> 1x1 expansion); see alf/deploy.hpp.
#pragma once

#include <functional>
#include <optional>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"
#include "nn/sequential.hpp"
#include "tensor/init.hpp"

namespace alf {

/// Hyper-parameters of an ALF block (defaults = the paper's final choices
/// from the Sec. IV-A design-space exploration).
struct AlfConfig {
  Act sigma_ae = Act::kTanh;      ///< autoencoder activation (Fig. 2b: tanh)
  Act sigma_inter = Act::kNone;   ///< activation on A~ (Fig. 2b: none)
  bool bn_inter = false;          ///< BatchNorm on A~ (Fig. 2a: none)
  Init wexp_init = Init::kXavier; ///< expansion init (Fig. 2a: Xavier)
  Init wae_init = Init::kXavier;  ///< Wenc/Wdec init (Fig. 2b: Xavier)
  float threshold = 1e-4f;        ///< mask clipping threshold t
  float lr_ae = 1e-3f;            ///< autoencoder SGD learning rate
  /// Learning-rate multiplier for the mask M only (mask lr = lr_ae * mult).
  /// 1.0 reproduces the paper exactly; scaled runs raise it so the pruning
  /// schedule compresses into the reduced optimizer-step budget without
  /// destabilizing the encoder/decoder (see EXPERIMENTS.md).
  float lr_mask_mult = 1.0f;
  float ae_momentum = 0.0f;       ///< autoencoder SGD momentum
  float m_slope = 8.0f;           ///< sensitivity slope m in nu_prune
  float pr_max = 0.85f;           ///< maximum pruning rate
  bool mask_enabled = true;       ///< false = Setup-2 mode (no pruning)
  bool use_ste = true;            ///< false = ablation: exact gradients
  /// Autoencoder steps before mask updates start. With the paper's schedule
  /// (lr_ae=1e-3 over 200 epochs) the mask moves negligibly early on; scaled
  /// runs with a faster lr_ae use an explicit warmup to preserve that
  /// "task settles first, pruning follows" dynamic.
  size_t mask_warmup_steps = 0;
};

/// Telemetry of one autoencoder step.
struct AeStepStats {
  double l_rec = 0.0;    ///< reconstruction MSE
  double l_prune = 0.0;  ///< mean |m|
  double nu_prune = 0.0; ///< current pruning-pressure scale
  size_t zero_filters = 0;
  size_t total_filters = 0;
};

/// Convolution layer compressed by an autoencoder during training.
class AlfConv : public Layer {
 public:
  AlfConv(std::string name, size_t in_c, size_t out_c, size_t kernel,
          size_t stride, size_t pad, const AlfConfig& config, Rng& rng);

  const char* kind() const override { return "alf_conv"; }
  const std::string& name() const override { return name_; }

  /// Task-path forward: conv with Wcode, sigma_inter/BN, 1x1 expansion.
  Tensor forward(const Tensor& x, bool train) override;

  /// Task-path backward; applies the STE of Eq. 5 for dL/dW.
  Tensor backward(const Tensor& grad_out) override;

  /// Task-optimizer parameters: W, Wexp (+ BN_inter scale/shift if enabled).
  std::vector<Param*> params() override;

  /// One autoencoder optimization step (Eq. 6); updates Wenc, Wdec, M.
  AeStepStats autoencoder_step();

  // --- Introspection -------------------------------------------------------

  size_t in_channels() const { return in_c_; }
  size_t out_channels() const { return out_c_; }
  size_t kernel() const { return kernel_; }
  size_t stride() const { return stride_; }
  size_t pad() const { return pad_; }
  const AlfConfig& config() const { return config_; }

  /// Number of code filters currently zeroed by the pruning mask.
  size_t zero_filters() const;
  /// Fraction of code filters still active (non-zero), in (0, 1].
  double remaining_fraction() const;
  /// Eq. 2: max code filters for which the ALF pair beats the plain conv.
  size_t ccode_max() const;

  /// Current code weights [Co, Ci*K*K] (after mask and sigma_ae).
  Tensor compute_wcode() const;
  /// The pruning mask after clipping, [Co].
  Tensor compute_mprune() const;

  /// Raw parameter access (used by deployment and tests).
  Param& w() { return w_; }
  const Param& w() const { return w_; }
  Param& wexp() { return wexp_; }
  const Param& wexp() const { return wexp_; }
  Tensor& wenc() { return wenc_; }
  Tensor& wdec() { return wdec_; }
  Tensor& mask() { return mask_; }
  const Tensor& mask() const { return mask_; }
  BatchNorm2d* bn_inter() { return bn_inter_ ? &*bn_inter_ : nullptr; }
  const BatchNorm2d* bn_inter() const { return bn_inter_ ? &*bn_inter_ : nullptr; }

  /// Spatial geometry observed at the last forward (for cost accounting).
  size_t last_out_h() const { return last_out_h_; }
  size_t last_out_w() const { return last_out_w_; }

 private:
  /// W viewed as the matrix [Co, Ci*K*K].
  Tensor w_matrix() const;

  std::string name_;
  size_t in_c_, out_c_, kernel_, stride_, pad_;
  AlfConfig config_;

  // Task-optimizer parameters. Per Sec. III-B no weight decay on W.
  Param w_;     ///< original filter bank [Co, Ci, K, K]
  Param wexp_;  ///< expansion filters [Co, Ccode=Co] (1x1 conv)

  // Autoencoder parameters (updated only by autoencoder_step()).
  Tensor wenc_;  ///< encoder matrix E [Co, Ccode]
  Tensor wdec_;  ///< decoder matrix D [Ccode, Co]
  Tensor mask_;  ///< trainable mask M [Ccode]
  Tensor vel_enc_, vel_dec_, vel_mask_;  ///< SGD momentum buffers

  std::optional<BatchNorm2d> bn_inter_;

  // Forward caches (task path).
  Tensor cached_x_;        ///< layer input
  Tensor cached_wcode_;    ///< code weights used in the conv
  Tensor cached_a_tilde_;  ///< conv output before sigma_inter
  Tensor cached_inter_;    ///< input of the expansion conv
  size_t last_out_h_ = 0, last_out_w_ = 0;
  size_t ae_steps_taken_ = 0;
};

/// ConvMaker producing AlfConv blocks, for use with the model builders.
/// `rng` and `registry` must outlive the maker; each created block is
/// appended to `registry`.
std::function<LayerPtr(const std::string&, size_t, size_t, size_t, size_t,
                       size_t)>
make_alf_conv_maker(const AlfConfig& config, Rng* rng,
                    std::vector<AlfConv*>* registry);

/// Collects all AlfConv blocks of a model in build order.
std::vector<AlfConv*> collect_alf_convs(Sequential& model);

}  // namespace alf
