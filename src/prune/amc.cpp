#include "prune/amc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/check.hpp"
#include "core/rng.hpp"
#include "nn/loss.hpp"

namespace alf {
namespace {

/// Snapshot / restore of conv weights so candidate evaluations are
/// non-destructive.
std::vector<Tensor> snapshot(const std::vector<Conv2d*>& convs) {
  std::vector<Tensor> out;
  out.reserve(convs.size());
  for (Conv2d* c : convs) out.push_back(c->weight().value);
  return out;
}

void restore(const std::vector<Conv2d*>& convs,
             const std::vector<Tensor>& snap) {
  for (size_t i = 0; i < convs.size(); ++i) convs[i]->weight().value = snap[i];
}

double ops_fraction(const ModelCost& vanilla,
                    const std::vector<Conv2d*>& convs,
                    const std::vector<double>& keep) {
  std::map<std::string, double> by_name;
  for (size_t i = 0; i < convs.size(); ++i)
    by_name[convs[i]->name()] = keep[i];
  const ModelCost pruned =
      apply_filter_pruning(vanilla, by_name, "candidate");
  return static_cast<double>(pruned.total_ops()) /
         static_cast<double>(vanilla.total_ops());
}

}  // namespace

AmcResult amc_search(Sequential& model, const std::vector<Conv2d*>& convs,
                     const ModelCost& vanilla_cost,
                     const SyntheticImageDataset& val_set,
                     const AmcConfig& config) {
  ALF_CHECK(!convs.empty());
  Rng rng(config.seed);
  const size_t n_layers = convs.size();

  // Validation subset used for every reward evaluation.
  const size_t eval_n = std::min(config.eval_samples, val_set.size());
  std::vector<size_t> eval_idx(eval_n);
  std::iota(eval_idx.begin(), eval_idx.end(), size_t{0});
  Tensor eval_x;
  std::vector<int> eval_y;
  val_set.fill_batch(eval_idx, eval_x, eval_y);

  const std::vector<Tensor> snap = snapshot(convs);
  auto eval_candidate = [&](const std::vector<double>& keep, double& acc,
                            double& ops) {
    PrunePlan plan = per_layer_plan(convs, keep, config.rule);
    apply_plan(convs, plan);
    Tensor logits = model.forward(eval_x, /*train=*/false);
    acc = accuracy(logits, eval_y);
    restore(convs, snap);
    ops = ops_fraction(vanilla_cost, convs, keep);
    return acc - config.lambda * std::max(0.0, ops - config.target_ops_frac);
  };

  // CEM state: per-layer Gaussian over keep fractions.
  std::vector<double> mean(n_layers, config.init_keep_mean);
  std::vector<double> stddev(n_layers, config.init_keep_std);

  AmcResult best;
  best.reward = -1e30;
  for (size_t iter = 0; iter < config.iterations; ++iter) {
    struct Cand {
      std::vector<double> keep;
      double reward, acc, ops;
    };
    std::vector<Cand> pop;
    pop.reserve(config.population);
    for (size_t p = 0; p < config.population; ++p) {
      Cand c;
      c.keep.resize(n_layers);
      for (size_t l = 0; l < n_layers; ++l) {
        c.keep[l] = std::clamp(rng.normal(mean[l], stddev[l]),
                               config.min_keep, 1.0);
      }
      c.reward = eval_candidate(c.keep, c.acc, c.ops);
      pop.push_back(std::move(c));
    }
    std::stable_sort(pop.begin(), pop.end(),
                     [](const Cand& a, const Cand& b) {
                       return a.reward > b.reward;
                     });
    if (pop.front().reward > best.reward) {
      best.reward = pop.front().reward;
      best.keep_fracs = pop.front().keep;
      best.accuracy = pop.front().acc;
      best.ops_frac = pop.front().ops;
    }
    // Refit the Gaussian on the elites.
    const size_t n_el = std::min(config.elites, pop.size());
    for (size_t l = 0; l < n_layers; ++l) {
      double m = 0.0;
      for (size_t e = 0; e < n_el; ++e) m += pop[e].keep[l];
      m /= static_cast<double>(n_el);
      double v = 0.0;
      for (size_t e = 0; e < n_el; ++e) {
        const double d = pop[e].keep[l] - m;
        v += d * d;
      }
      v /= static_cast<double>(n_el);
      mean[l] = m;
      stddev[l] = std::max(0.02, std::sqrt(v));
    }
    if (config.verbose) {
      std::printf("amc iter %zu  best reward %.4f  acc %.3f  ops %.3f\n",
                  iter, best.reward, best.accuracy, best.ops_frac);
      std::fflush(stdout);
    }
  }
  return best;
}

}  // namespace alf
