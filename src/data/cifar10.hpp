// Real CIFAR-10 binary loader (the "dataset realism" ROADMAP item).
//
// Parses the canonical binary batch format of the CIFAR-10 download
// (cifar-10-binary.tar.gz): each record is 1 label byte followed by 3072
// pixel bytes (1024 R, then G, then B, row-major 32x32), 3073 bytes per
// record, 10000 records per file.
//
// No download happens anywhere: availability is gated on the ALF_CIFAR10_DIR
// environment variable pointing at an already-extracted directory
// (data_batch_1..5.bin + test_batch.bin). CI and tests never set it, so
// everything stays hermetic via the synthetic fallback; a developer with
// the real set exports the variable and the same experiment binaries run
// on actual CIFAR-10 to validate accuracy against the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace alf {

/// Directory of the extracted CIFAR-10 binary batches; unset = synthetic.
inline constexpr const char* kCifar10EnvVar = "ALF_CIFAR10_DIR";

/// A labelled CIFAR-10 batch: NCHW float images scaled to [-1, 1].
struct Cifar10Batch {
  Tensor images;            ///< [N, 3, 32, 32]
  std::vector<int> labels;  ///< N entries in [0, 9]
  bool synthetic = false;   ///< true when the fallback generator produced it
};

/// Parses one CIFAR-10 binary file. `max_records` 0 = all. Throws
/// CheckError when the file is missing, empty, not a whole number of
/// 3073-byte records, or contains an out-of-range label.
Cifar10Batch load_cifar10_file(const std::string& path,
                               size_t max_records = 0);

/// True when ALF_CIFAR10_DIR is set (non-empty).
bool cifar10_available();

/// Loads the train (data_batch_1..5.bin, concatenated) or test
/// (test_batch.bin) split from $ALF_CIFAR10_DIR. `max_records` 0 = all.
/// Throws CheckError when the variable is unset or a file is malformed.
Cifar10Batch load_cifar10_split(bool train, size_t max_records = 0);

/// Real CIFAR-10 when available, otherwise `count` samples of the
/// class-conditional synthetic CIFAR-like task (see data/synthetic.hpp) —
/// the hermetic path CI takes. `count` also caps the real split.
Cifar10Batch load_cifar10_or_synthetic(bool train, size_t count,
                                       uint64_t seed = 42);

}  // namespace alf
