// Weight initialization schemes.
//
// The paper's design-space exploration (Fig. 2a/2b) sweeps He vs Xavier vs
// plain random initialization for the expansion layer and the autoencoder
// weights; these are the exact schemes referenced there.
#pragma once

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace alf {

/// Initialization scheme identifiers used across the configuration sweeps.
enum class Init {
  kHe,      ///< He et al. 2015: N(0, sqrt(2 / fan_in))
  kXavier,  ///< Glorot & Bengio 2010: U(+-sqrt(6 / (fan_in + fan_out)))
  kRand,    ///< plain U(-0.05, 0.05)
  /// Identity + small uniform noise; requires a square rank-2 tensor.
  /// Used for the ALF autoencoder: near-identity encoders make the
  /// straight-through estimator of Eq. 5 a valid descent direction
  /// (see DESIGN.md "STE validity").
  kIdentity,
};

/// Parses "he" / "xavier" / "rand"; throws CheckError otherwise.
Init parse_init(const std::string& name);

/// Name of a scheme ("he", "xavier", "rand").
const char* init_name(Init init);

/// Fills `t` in place. fan_in / fan_out must be > 0 for He / Xavier.
void init_tensor(Tensor& t, Init scheme, size_t fan_in, size_t fan_out,
                 Rng& rng);

/// Fan-in/out for a conv filter bank [Co, Ci, K, K].
void conv_fans(const Shape& filter_shape, size_t& fan_in, size_t& fan_out);

}  // namespace alf
