// Benchmark-reporting infrastructure: signed delta cells (both directions),
// JSON string escaping end-to-end through BenchJson::write, and the shared
// nearest-rank percentile helper.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/check.hpp"

namespace alf::bench {
namespace {

TEST(BenchCells, ParamsCellSignsBothDirections) {
  // Compression: 0.30M vs a 1.00M baseline is -70%.
  EXPECT_EQ(params_cell(300000, 1000000), "0.30M (-70%)");
  // Growth past the baseline must read (+12%), not (--12%).
  EXPECT_EQ(params_cell(1120000, 1000000), "1.12M (+12%)");
  EXPECT_EQ(params_cell(1000000, 1000000), "1.00M");  // equal: no suffix
  EXPECT_EQ(params_cell(1000000, 0), "1.00M");        // no baseline
}

TEST(BenchCells, OpsCellSignsBothDirections) {
  EXPECT_EQ(ops_cell(39000000, 100000000), "39.0 (-61%)");
  EXPECT_EQ(ops_cell(150000000, 100000000), "150.0 (+50%)");
  EXPECT_EQ(ops_cell(100000000, 100000000), "100.0");
}

TEST(JsonEscape, QuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain name_123"), "plain name_123");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(json_escape("\r\b\f"), "\\r\\b\\f");
}

/// Minimal JSON well-formedness scan: every '"' inside a string must be
/// escaped, strings terminate, and braces/brackets balance outside strings.
bool json_well_formed(const std::string& s) {
  bool in_string = false, escaped = false;
  long depth = 0;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return !in_string && !escaped && depth == 0;
}

TEST(BenchJson, WriteEscapesEveryStringField) {
  BenchJson json("bench\"quoted", "scale\\back");
  BenchRow& row = json.row("resnet/policy=\"batch=32\"\nline2");
  row.wall_ms = 1.5;
  row.extra["images\"per\"s"] = 42.0;
  row.extra_str["qgemm_backend"] = "int8-vnni";
  row.extra_str["cpu\"mask"] = "avx2\\fma";  // both key and value escaped
  BenchRow& plain = json.row("plain_row");
  plain.accuracy = 0.75;

  const std::string path = "test_bench_json_tmp.json";
  ASSERT_TRUE(json.write(path));
  std::string content;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
      content.append(buf, got);
    std::fclose(f);
  }
  std::remove(path.c_str());

  EXPECT_TRUE(json_well_formed(content)) << content;
  EXPECT_NE(content.find("\"bench\": \"bench\\\"quoted\""), std::string::npos)
      << content;
  EXPECT_NE(content.find("\"scale\": \"scale\\\\back\""), std::string::npos);
  EXPECT_NE(content.find("policy=\\\"batch=32\\\"\\nline2"),
            std::string::npos);
  EXPECT_NE(content.find("\"images\\\"per\\\"s\": 42"), std::string::npos);
  // String-valued extras come out quoted AND escaped.
  EXPECT_NE(content.find("\"qgemm_backend\": \"int8-vnni\""),
            std::string::npos);
  EXPECT_NE(content.find("\"cpu\\\"mask\": \"avx2\\\\fma\""),
            std::string::npos);
  EXPECT_NE(content.find("\"name\": \"plain_row\", \"accuracy\": 0.75"),
            std::string::npos);
}

TEST(Percentile, NearestRankIsUnbiased) {
  // 1..100: the nearest-rank p-th percentile of n=100 is element ceil(p*n).
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(i);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.50), 50.0);  // the biased p*n gave 51
  EXPECT_DOUBLE_EQ(percentile(v, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 100.0);

  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 0.5), 1.0);   // ceil(1.0) = rank 1
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 0.51), 3.0);  // ceil(1.02) = rank 2
}

TEST(Percentile, RejectsEmptySamplesAndBadP) {
  EXPECT_THROW(percentile({}, 0.5), CheckError);
  EXPECT_THROW(percentile({1.0}, -0.1), CheckError);
  EXPECT_THROW(percentile({1.0}, 1.1), CheckError);
}

TEST(Percentile, P999CollapsesToP99OnSmallSamples) {
  // Nearest rank: ceil(0.99 n) == ceil(0.999 n) for every n <= 99, so a
  // small latency sample CANNOT resolve p99.9 — it merely repeats p99.
  // Guard the identity so reporting both on small runs (serve,
  // serve_latency) stays honest rather than silently fabricating a tail.
  std::vector<double> v;
  for (int n = 1; n <= 99; ++n) {
    v.push_back(n);  // v = 1..n
    EXPECT_DOUBLE_EQ(percentile(v, 0.99), percentile(v, 0.999)) << "n=" << n;
  }
  // n = 100 is the first sample size where the two ranks separate:
  // ceil(99.0) = 99 but ceil(99.9) = 100.
  v.push_back(100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.999), 100.0);
  // And with n = 1000 they are a full order of tail apart.
  std::vector<double> big;
  for (int i = 1; i <= 1000; ++i) big.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(big, 0.99), 990.0);
  EXPECT_DOUBLE_EQ(percentile(big, 0.999), 999.0);
}

}  // namespace
}  // namespace alf::bench
