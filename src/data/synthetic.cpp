#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/check.hpp"

namespace alf {
namespace {

/// Per-class generative parameters, derived deterministically from the seed.
struct ClassProto {
  double freq_x, freq_y;      // grating frequencies
  double orient;              // grating orientation
  double color[3];            // per-channel bias
  double blob_x, blob_y;      // normalized blob center
  double blob_sigma;
};

std::vector<ClassProto> make_protos(const DataConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<ClassProto> protos(cfg.classes);
  for (size_t k = 0; k < cfg.classes; ++k) {
    ClassProto& p = protos[k];
    p.freq_x = rng.uniform(1.5, 5.5);
    p.freq_y = rng.uniform(1.5, 5.5);
    p.orient = rng.uniform(0.0, std::numbers::pi);
    for (double& c : p.color) c = rng.uniform(-0.4, 0.4);
    p.blob_x = rng.uniform(0.25, 0.75);
    p.blob_y = rng.uniform(0.25, 0.75);
    p.blob_sigma = rng.uniform(0.08, 0.2);
  }
  return protos;
}

}  // namespace

DataConfig DataConfig::cifar_like() { return DataConfig{}; }

DataConfig DataConfig::imagenet_like() {
  DataConfig cfg;
  cfg.classes = 20;
  cfg.height = 32;
  cfg.width = 32;
  cfg.noise_std = 0.4f;
  cfg.seed = 1337;
  return cfg;
}

SyntheticImageDataset::SyntheticImageDataset(const DataConfig& config,
                                             size_t count,
                                             uint64_t split_seed)
    : config_(config) {
  ALF_CHECK(config.classes >= 2);
  ALF_CHECK(config.channels >= 1 && config.channels <= 3);
  const auto protos = make_protos(config);
  sample_numel_ = config.channels * config.height * config.width;
  pixels_.resize(count * sample_numel_);
  labels_.resize(count);

  Rng rng(split_seed ^ (config.seed * 0x9E3779B97F4A7C15ull));
  const double h = static_cast<double>(config.height);
  const double w = static_cast<double>(config.width);

  for (size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % config.classes);
    labels_[i] = label;
    const ClassProto& p = protos[static_cast<size_t>(label)];

    // Per-sample nuisance parameters.
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double amp = rng.uniform(0.6, 1.0);
    const int dx = static_cast<int>(
        rng.uniform_index(2 * config.max_shift + 1)) - config.max_shift;
    const int dy = static_cast<int>(
        rng.uniform_index(2 * config.max_shift + 1)) - config.max_shift;
    const double co = std::cos(p.orient), so = std::sin(p.orient);

    float* img = pixels_.data() + i * sample_numel_;
    for (size_t c = 0; c < config.channels; ++c) {
      for (size_t y = 0; y < config.height; ++y) {
        for (size_t x = 0; x < config.width; ++x) {
          const double xn = (static_cast<double>(x) + dx) / w - 0.5;
          const double yn = (static_cast<double>(y) + dy) / h - 0.5;
          // Oriented grating.
          const double u = co * xn - so * yn;
          const double v = so * xn + co * yn;
          double val = amp * std::sin(2.0 * std::numbers::pi *
                                          (p.freq_x * u + p.freq_y * v) +
                                      phase);
          // Class-specific Gaussian blob (sign alternates per channel so the
          // color structure carries information too).
          const double bx = xn + 0.5 - p.blob_x;
          const double by = yn + 0.5 - p.blob_y;
          const double blob =
              std::exp(-(bx * bx + by * by) / (2.0 * p.blob_sigma *
                                               p.blob_sigma));
          val += (c % 2 == 0 ? 1.0 : -1.0) * blob;
          val += p.color[c];
          val += rng.normal(0.0, config.noise_std);
          img[(c * config.height + y) * config.width + x] =
              static_cast<float>(std::clamp(val, -2.0, 2.0));
        }
      }
    }
  }
}

void SyntheticImageDataset::fill_batch(const std::vector<size_t>& indices,
                                       Tensor& x, std::vector<int>& y) const {
  const size_t b = indices.size();
  const Shape want{b, config_.channels, config_.height, config_.width};
  if (x.shape() != want) x = Tensor(want);
  y.resize(b);
  for (size_t i = 0; i < b; ++i) {
    const size_t idx = indices[i];
    ALF_CHECK(idx < labels_.size());
    const float* src = pixels_.data() + idx * sample_numel_;
    std::copy(src, src + sample_numel_, x.data() + i * sample_numel_);
    y[i] = labels_[idx];
  }
}

void SyntheticImageDataset::full_batch(Tensor& x, std::vector<int>& y) const {
  std::vector<size_t> idx(size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  fill_batch(idx, x, y);
}

BatchIterator::BatchIterator(const SyntheticImageDataset& ds,
                             size_t batch_size, uint64_t seed, bool shuffle)
    : ds_(ds), batch_size_(batch_size), shuffle_(shuffle), rng_(seed) {
  ALF_CHECK(batch_size_ > 0);
  reset();
}

void BatchIterator::reset() {
  if (shuffle_) {
    order_ = rng_.permutation(ds_.size());
  } else {
    order_.resize(ds_.size());
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  }
  cursor_ = 0;
}

bool BatchIterator::next(Tensor& x, std::vector<int>& y) {
  if (cursor_ >= order_.size()) return false;
  const size_t end = std::min(order_.size(), cursor_ + batch_size_);
  std::vector<size_t> idx(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  ds_.fill_batch(idx, x, y);
  return true;
}

size_t BatchIterator::batches_per_epoch() const {
  return (ds_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace alf
