#include "kernels/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "core/check.hpp"

namespace alf::kernels {

namespace {

struct Registry {
  std::mutex m;
  std::vector<const KernelBackend*> backends;

  Registry() {
    // Built-ins register eagerly so lookup order (and backend_names()) is
    // deterministic: scalar, simd, int8. No static-initialization-order
    // hazard — each factory owns a function-local static.
    backends.push_back(scalar_backend());
    if (simd_backend() != nullptr) backends.push_back(simd_backend());
    backends.push_back(int8_backend());
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

// Cached default; nullptr = not yet resolved. set_default_backend() stores
// directly (or resets to nullptr for re-resolution).
std::atomic<const KernelBackend*> g_default{nullptr};

const KernelBackend* find_locked(Registry& r, const std::string& name) {
  // Reverse scan: later registrations shadow built-ins of the same name.
  for (auto it = r.backends.rbegin(); it != r.backends.rend(); ++it)
    if (name == (*it)->name) return *it;
  return nullptr;
}

const KernelBackend* resolve_default() {
  const char* env = std::getenv("ALF_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    const KernelBackend* be = find_backend(env);
    ALF_CHECK(be != nullptr)
        << "ALF_BACKEND=" << env << ": unknown kernel backend";
    return be;
  }
  const KernelBackend* simd = find_backend("simd");
  return simd != nullptr ? simd : scalar_backend();
}

}  // namespace

void register_backend(const KernelBackend* backend) {
  ALF_CHECK(backend != nullptr && backend->name != nullptr &&
            backend->gemm != nullptr && backend->qgemm != nullptr)
      << "register_backend: incomplete backend";
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  r.backends.push_back(backend);
}

const KernelBackend* find_backend(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  return find_locked(r, name);
}

std::vector<std::string> backend_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.m);
  std::vector<std::string> names;
  names.reserve(r.backends.size());
  for (const KernelBackend* be : r.backends) names.emplace_back(be->name);
  return names;
}

const KernelBackend* default_backend() {
  const KernelBackend* be = g_default.load(std::memory_order_acquire);
  if (be != nullptr) return be;
  be = resolve_default();
  g_default.store(be, std::memory_order_release);
  return be;
}

void set_default_backend(const std::string& name) {
  if (name.empty()) {
    g_default.store(nullptr, std::memory_order_release);
    return;
  }
  const KernelBackend* be = find_backend(name);
  ALF_CHECK(be != nullptr) << "set_default_backend: unknown backend '" << name
                           << "'";
  g_default.store(be, std::memory_order_release);
}

}  // namespace alf::kernels
