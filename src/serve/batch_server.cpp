#include "serve/batch_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace alf {

BatchServer::BatchServer(Engine engine)
    : BatchServer(std::move(engine), Config()) {}

BatchServer::BatchServer(Engine engine, Config cfg)
    : engine_(std::move(engine)),
      cfg_(cfg),
      in_({engine_.batch(), engine_.in_c(), engine_.in_h(), engine_.in_w()}),
      out_({engine_.batch(), engine_.classes()}),
      paused_(cfg.start_paused) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

BatchServer::~BatchServer() { stop(); }

void BatchServer::submit(Tensor x, Callback done) {
  ALF_CHECK(done != nullptr) << "BatchServer: null completion callback";
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t n = x.dim(0);
  ALF_CHECK(n >= 1 && n <= engine_.batch())
      << "BatchServer: request of " << n << " images, engine batch "
      << engine_.batch();
  ALF_CHECK_EQ(x.dim(1), engine_.in_c());
  ALF_CHECK_EQ(x.dim(2), engine_.in_h());
  ALF_CHECK_EQ(x.dim(3), engine_.in_w());
  {
    std::lock_guard<std::mutex> lk(m_);
    ALF_CHECK(!stop_) << "BatchServer: submit after stop";
    if (cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue) {
      // Fail fast under overload: counting happens under the same lock, so
      // stats().rejected is exact, and the request is never owned by the
      // server (no callback, nothing to drain).
      ++stats_.rejected;
      throw QueueFullError("BatchServer: queue full (" +
                           std::to_string(queue_.size()) + " of max " +
                           std::to_string(cfg_.max_queue) +
                           " requests queued)");
    }
    queue_.push_back(Request{std::move(x), n, std::move(done)});
    queued_images_ += n;
  }
  cv_.notify_all();
}

std::future<Tensor> BatchServer::submit(Tensor x) {
  auto promise = std::make_shared<std::promise<Tensor>>();
  std::future<Tensor> fut = promise->get_future();
  submit(std::move(x),
         [promise](Tensor&& logits) { promise->set_value(std::move(logits)); });
  return fut;
}

void BatchServer::pause() {
  std::lock_guard<std::mutex> lk(m_);
  paused_ = true;
}

void BatchServer::resume() {
  {
    std::lock_guard<std::mutex> lk(m_);
    paused_ = false;
  }
  cv_.notify_all();
}

void BatchServer::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
    paused_ = false;  // a paused server still drains on shutdown
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

size_t BatchServer::pending() const {
  std::lock_guard<std::mutex> lk(m_);
  return queue_.size();
}

ServeStats BatchServer::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

void BatchServer::dispatch_loop() {
  const size_t batch = engine_.batch();
  const size_t img_floats = engine_.image_floats();
  std::vector<Request> take;
  take.reserve(batch);

  std::unique_lock<std::mutex> lk(m_);
  while (true) {
    cv_.wait(lk, [&] { return stop_ || (!paused_ && !queue_.empty()); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;  // woken by stop-then-resume races; re-arm the wait
    }
    // A tick is open: give arrivals max_wait_us to fill the batch, leaving
    // early once enough images are queued. During shutdown the deadline is
    // skipped so the drain runs back-to-back.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(cfg_.max_wait_us);
    while (!stop_ && !paused_ && queued_images_ < batch) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    // pause() landed mid-tick: abandon the tick and hold the backlog. Both
    // flags are checked under m_, so once pause() returns no new batch can
    // form until resume().
    if (paused_ && !stop_) continue;
    // Longest queue prefix that fits the compiled batch. The head always
    // fits (submit() bounds every request by the batch size).
    take.clear();
    size_t n = 0;
    while (!queue_.empty() && n + queue_.front().n <= batch) {
      n += queue_.front().n;
      take.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queued_images_ -= n;
    stats_.batches += 1;
    stats_.requests += take.size();
    stats_.images += n;
    stats_.max_fill = std::max(stats_.max_fill, n);
    if (n == batch) stats_.full_batches += 1;
    lk.unlock();

    // Pack request rows contiguously, one engine dispatch, scatter back.
    float* dst = in_.data();
    for (const Request& r : take) {
      std::memcpy(dst, r.x.data(), r.n * img_floats * sizeof(float));
      dst += r.n * img_floats;
    }
    engine_.run_rows(in_.data(), n, out_.data());
    const float* src = out_.data();
    const size_t classes = engine_.classes();
    for (Request& r : take) {
      Tensor logits({r.n, classes});
      std::memcpy(logits.data(), src, r.n * classes * sizeof(float));
      src += r.n * classes;
      r.done(std::move(logits));
    }
    take.clear();
    lk.lock();
  }
}

}  // namespace alf
