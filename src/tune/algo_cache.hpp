// AlgoCache: the persistent per-shape algorithm cache behind the tuner.
//
// The tuner (tune/tuner.hpp) measures candidate (strategy, backend, tile,
// chunk) choices per distinct conv/linear shape; this cache is where the
// winners live between processes, so a shape is measured once per machine
// and every later Plan::compile replays the decision with zero
// microbenchmark runs.
//
// On-disk format: a small line-oriented text file —
//
//   ALFALGO 1
//   cpu 0x<allowed-feature-mask>
//   geom panel=<kPanelLayoutVersion> shift=<kMaxShiftH> align=<kWeightAlign>
//   backends <sorted,comma,joined,registry names>
//   entry <shape-key> <strategy> <backend|-> <mc> <kc> <nc> <chunk> <best_ms>
//   ...
//   crc 0x<crc32 of everything above>
//
// Validity policy mirrors PlanIoError's reject-don't-migrate stance:
//   - A damaged file (bad magic/version/crc, malformed line) throws a
//     typed TuneError — never a silent partial read.
//   - A *stale* file (stamp lines disagree with this host's CPU-feature
//     mask, packing geometry, or backend set) is structurally fine but its
//     decisions are meaningless here: every entry is discarded and the
//     shapes re-measured. Nothing is migrated.
//
// The stamps are also enforced per lookup against the LIVE process state,
// so narrowing the feature mask mid-process (set_cpu_feature_mask, the
// test seam) invalidates in-memory entries exactly like on-disk ones.
//
// Concurrency: one AlgoCache instance per resolved path (cache_for), all
// state behind one mutex; concurrent Plan::compile calls share the
// instance. Saves go through a temp sibling + rename, so a concurrent
// reader sees the old file or the new one, never a prefix.
#pragma once

#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "engine/plan.hpp"

namespace alf::tune {

/// Typed error for every corrupt-cache rejection path (stale caches are
/// not errors — they simply re-tune).
class TuneError : public std::runtime_error {
 public:
  enum class Code {
    kOpen,        ///< filesystem failure writing the cache
    kBadMagic,    ///< not an algo-cache file
    kBadVersion,  ///< format version this build does not read
    kBadCrc,      ///< content checksum mismatch
    kParse,       ///< stamp/entry line malformed
  };

  TuneError(Code code, const std::string& what)
      : std::runtime_error("algo cache: " + what), code_(code) {}

  Code code() const { return code_; }

 private:
  Code code_;
};

constexpr uint32_t kAlgoCacheVersion = 1;

/// Default cache file when neither EngineOptions::algo_cache nor the
/// ALF_ALGO_CACHE environment variable names one.
constexpr const char* kDefaultAlgoCachePath = ".alf_algo_cache";

/// One cached decision: the winning choice and its measured time.
struct AlgoEntry {
  AlgoChoice choice;
  double best_ms = 0.0;
};

class AlgoCache {
 public:
  /// Binds the cache to `path`. The file is read lazily on first use;
  /// a missing file is an empty cache, a corrupt one throws TuneError.
  explicit AlgoCache(std::string path);

  /// Cached decision for `key` under the CURRENT host stamps; false on
  /// miss (including "the whole file is stale for this host").
  bool lookup(const std::string& key, AlgoChoice* out);

  /// Records a decision measured under the current stamps. If the held
  /// entries were taken under different stamps they are discarded first
  /// (reject, don't migrate). Marks the cache dirty; call save().
  void insert(const std::string& key, const AlgoChoice& choice,
              double best_ms);

  /// Writes the cache file (temp + rename) if any insert happened since
  /// the last save. Throws TuneError(kOpen) on filesystem failure.
  void save();

  /// Drops the in-memory state so the next use re-reads the file — the
  /// test seam for proving decisions survive a round trip through disk.
  void reload();

  /// Entries currently valid for this host (loads if needed).
  size_t size();

  const std::string& path() const { return path_; }

 private:
  void ensure_loaded_locked();
  void parse_locked(const std::string& text);

  std::mutex mu_;
  std::string path_;
  std::unordered_map<std::string, AlgoEntry> entries_;
  std::string stamp_;  ///< host stamp the entries are valid under
  bool loaded_ = false;
  bool dirty_ = false;
};

/// The process-wide cache instance for `path` ("" resolves ALF_ALGO_CACHE,
/// then kDefaultAlgoCachePath). One instance per resolved path, created on
/// first use and kept for the process, so concurrent compiles against the
/// same file share one mutex and one in-memory map.
AlgoCache& cache_for(const std::string& path);

/// The stamp string of this host right now (feature mask + packing
/// geometry + backend set) — what lookups compare against. Exposed for
/// tests that forge stale cache files.
std::string host_stamp();

// --- Tuning counters -------------------------------------------------------
//
// Process-wide, monotonic, atomic. Tests assert "a warm-cache compile
// performs zero microbenchmark runs" on measure_runs; alf_planc prints
// them so CI can assert a 100% cache hit on the second run.

struct TuneStats {
  uint64_t measure_runs = 0;  ///< candidate measurements executed
  uint64_t cache_hits = 0;    ///< kCached lookups served from the cache
  uint64_t cache_misses = 0;  ///< kCached lookups that had to measure
};

TuneStats stats();
void reset_stats();

/// Internal: counter bumps (tuner.cpp).
void note_measure_run();
void note_cache_hit();
void note_cache_miss();

}  // namespace alf::tune
