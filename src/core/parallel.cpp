#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/check.hpp"
#include "core/mutex.hpp"

namespace alf {
namespace {

std::atomic<int> g_threads{0};

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

// True while this thread is inside a parallel region (as a pool worker or as
// the dispatching caller). Nested parallel_for calls run inline instead of
// re-entering the pool, which would deadlock the single-job dispatch.
thread_local bool t_in_parallel_region = false;

// Hard cap on spawned workers regardless of set_parallel_threads(). Chunks
// beyond the pool size still execute (workers and the caller claim chunks
// from a shared counter), just with less physical parallelism.
constexpr size_t kMaxPoolThreads = 64;

// Persistent worker pool. Threads are spawned lazily on the first parallel
// dispatch and then parked on a condition variable between jobs, so steady
// state costs one notify + one wait per parallel region instead of a
// thread-create/join per call.
//
// Locking discipline (machine-checked via core/mutex.hpp annotations):
//   job_mutex_ — serializes whole jobs; held across run() only.
//   m_        — guards epoch_/stop_/workers_ and pairs with the two CVs.
// The job_* fields are deliberately NOT mutex-guarded: they are written
// under m_ before the epoch-tagged claim_ word is release-published, and
// workers read them only after an acquire load of claim_ commits them to a
// chunk of that exact epoch — the claim protocol, not the mutex, is what
// makes those reads safe (verified by the TSan CI leg).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs fn over `nchunks` chunks of size `chunk` tiling [begin, end).
  // Blocks until every chunk has executed. The caller participates in the
  // work, so a pool of N-1 threads serves N-way parallelism.
  void run(size_t begin, size_t end, size_t chunk, size_t nchunks,
           const std::function<void(size_t, size_t)>& fn) {
    // One job at a time; concurrent top-level callers serialize here.
    MutexLock job_lock(job_mutex_);
    uint64_t my_epoch;
    {
      MutexLock lk(m_);
      ensure_workers_locked(std::min(nchunks - 1, kMaxPoolThreads));
      job_begin_ = begin;
      job_end_ = end;
      job_chunk_ = chunk;
      job_nchunks_ = nchunks;
      job_fn_ = &fn;
      remaining_.store(nchunks, std::memory_order_relaxed);
      my_epoch = ++epoch_;
      // Epoch-tagged claim word holding the count of unclaimed chunks,
      // release-published after the job fields. The claim protocol reads
      // ONLY this word before committing (acquire + epoch check make the
      // fields visible afterwards): a drained job leaves (tag, 0) behind,
      // so a worker that slept through this job's completion bounces off
      // the zero count — or, once this store lands, off the tag — and can
      // never claim a chunk of a job it wasn't woken for.
      claim_.store(((my_epoch & kChunkMask) << kChunkBits) | nchunks,
                   std::memory_order_release);
    }
    wake_cv_.notify_all();
    work_on_job(my_epoch);
    MutexLock lk(m_);
    while (remaining_.load(std::memory_order_acquire) != 0)
      lk.wait(done_cv_);
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    std::vector<std::thread> workers;
    {
      MutexLock lk(m_);
      stop_ = true;
      workers.swap(workers_);
    }
    wake_cv_.notify_all();
    for (auto& t : workers) t.join();
  }

  void ensure_workers_locked(size_t n) ALF_REQUIRES(m_) {
    while (workers_.size() < n) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  // Claims and executes chunks of the job published as `my_epoch`. noexcept
  // enforces the documented contract (an exception escaping fn terminates):
  // letting one propagate would abandon chunks mid-job and dangle job_fn_.
  void work_on_job(uint64_t my_epoch) noexcept {
    // The claim word carries the epoch's low 32 bits; a tag collision would
    // need a worker to sleep through exactly 2^32 jobs.
    const uint64_t tag = my_epoch & kChunkMask;
    while (true) {
      uint64_t cur = claim_.load(std::memory_order_acquire);
      if ((cur >> kChunkBits) != tag) return;  // superseded by a later job
      const size_t left = static_cast<size_t>(cur & kChunkMask);
      if (left == 0) return;  // job fully claimed (possibly long ago)
      if (!claim_.compare_exchange_weak(cur, cur - 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        continue;
      }
      // Chunks are handed out from the back; `left` came from the claim
      // word itself, so no job field is read before the CAS commits.
      const size_t c = left - 1;
      const size_t lo = job_begin_ + c * job_chunk_;
      const size_t hi = std::min(job_end_, lo + job_chunk_);
      (*job_fn_)(lo, hi);
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk done: lock pairs with the dispatcher's predicate check
        // so the notification cannot be missed.
        MutexLock lk(m_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    uint64_t seen_epoch = 0;
    MutexLock lk(m_);
    while (true) {
      while (!stop_ && epoch_ == seen_epoch) lk.wait(wake_cv_);
      if (stop_) return;
      seen_epoch = epoch_;
      lk.unlock();
      work_on_job(seen_epoch);
      lk.lock();
    }
  }

  Mutex job_mutex_;  // serializes whole jobs
  Mutex m_;          // guards the members below and pairs with the cv pair
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_ ALF_GUARDED_BY(m_);
  bool stop_ ALF_GUARDED_BY(m_) = false;
  uint64_t epoch_ ALF_GUARDED_BY(m_) = 0;

  // (epoch-tag << kChunkBits) | unclaimed-chunk-count. nchunks <=
  // parallel_threads() (an int), so the count always fits in 32 bits.
  static constexpr int kChunkBits = 32;
  static constexpr uint64_t kChunkMask = (uint64_t{1} << kChunkBits) - 1;

  // Claim-protocol state: published under m_, read lock-free by workers
  // after an acquire on claim_ (see the class comment — intentionally not
  // ALF_GUARDED_BY).
  size_t job_begin_ = 0;
  size_t job_end_ = 0;
  size_t job_chunk_ = 0;
  size_t job_nchunks_ = 0;
  const std::function<void(size_t, size_t)>* job_fn_ = nullptr;
  std::atomic<uint64_t> claim_{0};
  std::atomic<size_t> remaining_{0};
};

}  // namespace

int parallel_threads() {
  const int n = g_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : default_threads();
}

void set_parallel_threads(int n) {
  g_threads.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

InlineExecutionGuard::InlineExecutionGuard() : prev_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

InlineExecutionGuard::~InlineExecutionGuard() { t_in_parallel_region = prev_; }

void parallel_for_chunked(size_t begin, size_t end,
                          const std::function<void(size_t, size_t)>& fn,
                          size_t min_per_worker) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t workers = std::min<size_t>(total, parallel_threads());
  if (t_in_parallel_region || workers <= 1 ||
      total < std::max<size_t>(2, min_per_worker)) {
    fn(begin, end);
    return;
  }
  const size_t chunk = (total + workers - 1) / workers;
  const size_t nchunks = (total + chunk - 1) / chunk;
  // The chunk grid must tile [begin, end) exactly with no empty slots: the
  // last chunk starts inside the range and the grid reaches the end.
  ALF_CHECK(nchunks >= 2 && nchunks <= workers);
  ALF_CHECK((nchunks - 1) * chunk < total);
  ALF_CHECK(nchunks * chunk >= total);
  t_in_parallel_region = true;
  ThreadPool::instance().run(begin, end, chunk, nchunks, fn);
  t_in_parallel_region = false;
}

void parallel_for(size_t begin, size_t end,
                  const std::function<void(size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace alf
