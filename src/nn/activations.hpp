// Elementwise activation functions, both as Layers (network graph) and as
// free functions with derivatives (used inside the ALF autoencoder where
// sigma_ae is applied to weight tensors, not feature maps).
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace alf {

/// Activation identifiers used in the Fig. 2 configuration sweeps.
enum class Act {
  kNone,     ///< identity
  kRelu,
  kTanh,
  kSigmoid,
};

/// Parses "none" / "relu" / "tanh" / "sigmoid".
Act parse_act(const std::string& name);

/// Name of an activation.
const char* act_name(Act act);

/// y = act(x), elementwise.
Tensor act_forward(Act act, const Tensor& x);

/// dL/dx from dL/dy given y = act(x) (derivative expressed in terms of the
/// *output* y, which all four supported activations allow).
Tensor act_backward(Act act, const Tensor& y, const Tensor& grad_y);

/// In-place kernel epilogue over a row-major [rows, cols] block:
/// data[r, j] = act(data[r, j] + bias[r]). `bias` may be nullptr (no bias).
/// This is how the engine fuses folded-BN bias and a trailing activation
/// into the GEMM output of a conv/linear step without another pass.
void bias_act_inplace(float* data, size_t rows, size_t cols,
                      const float* bias, Act act);

/// In-place elementwise activation over `n` floats.
void act_inplace(Act act, float* data, size_t n);

/// Generic activation layer.
class Activation : public Layer {
 public:
  Activation(std::string name, Act act) : name_(std::move(name)), act_(act) {}

  const char* kind() const override { return act_name(act_); }
  const std::string& name() const override { return name_; }
  Act act() const { return act_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  Act act_;
  Tensor cached_y_;
};

}  // namespace alf
