#include "engine/plan.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "alf/alf_conv.hpp"
#include "alf/deploy.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "kernels/backend.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "quant/quantize.hpp"
#include "tune/tuner.hpp"

namespace alf {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv:
      return "conv";
    case OpKind::kLinear:
      return "linear";
    case OpKind::kGlobalAvgPool:
      return "gap";
    case OpKind::kMaxPool:
      return "maxpool";
    case OpKind::kAdd:
      return "add";
    case OpKind::kScaleShift:
      return "scale_shift";
    case OpKind::kActivation:
      return "act";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// WeightArena: the plan's single weight allocation (owned or mapped).
// ---------------------------------------------------------------------------

WeightArena::~WeightArena() {
  if (owned_ && data_ != nullptr)
    ::operator delete(data_, std::align_val_t(kArenaAlign));
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
}

WeightArena::WeightArena(WeightArena&& o) noexcept
    : data_(std::exchange(o.data_, nullptr)),
      bytes_(std::exchange(o.bytes_, 0)),
      map_base_(std::exchange(o.map_base_, nullptr)),
      map_bytes_(std::exchange(o.map_bytes_, 0)),
      owned_(std::exchange(o.owned_, false)) {}

WeightArena& WeightArena::operator=(WeightArena&& o) noexcept {
  if (this != &o) {
    WeightArena tmp(std::move(o));
    std::swap(data_, tmp.data_);
    std::swap(bytes_, tmp.bytes_);
    std::swap(map_base_, tmp.map_base_);
    std::swap(map_bytes_, tmp.map_bytes_);
    std::swap(owned_, tmp.owned_);
  }
  return *this;
}

WeightArena WeightArena::allocate(size_t bytes) {
  WeightArena a;
  a.bytes_ = bytes;
  if (bytes > 0) {
    // Aligned operator new (not aligned_alloc): the project bans the
    // malloc family, and the aligned delete in the dtor pairs exactly.
    a.data_ = static_cast<uint8_t*>(
        ::operator new(bytes, std::align_val_t(kArenaAlign)));
    std::memset(a.data_, 0, bytes);
    a.owned_ = true;
  }
  return a;
}

WeightArena WeightArena::adopt_mapping(void* base, size_t map_bytes,
                                       size_t data_off, size_t bytes) {
  ALF_CHECK(base != nullptr && data_off + bytes <= map_bytes);
  WeightArena a;
  a.map_base_ = base;
  a.map_bytes_ = map_bytes;
  a.data_ = static_cast<uint8_t*>(base) + data_off;
  a.bytes_ = bytes;
  return a;
}

uint8_t* WeightArena::mutable_data() {
  ALF_CHECK(owned_) << "WeightArena: mapped arenas are read-only";
  return data_;
}

void Plan::bind_weight_views(std::vector<Step>& steps,
                             const std::vector<WeightSection>& sections,
                             const WeightArena& arena) {
  for (const WeightSection& sec : sections) {
    ALF_CHECK(sec.step < steps.size()) << "weight section step index";
    ALF_CHECK(sec.offset % kWeightAlign == 0 &&
              sec.offset + sec.bytes <= arena.bytes())
        << "weight section outside the arena";
    ALF_CHECK(sec.rank <= TensorView::kMaxRank) << "weight section rank";
    const uint8_t* p = arena.data() + sec.offset;
    size_t dims[TensorView::kMaxRank] = {0, 0, 0};
    for (size_t d = 0; d < sec.rank; ++d)
      dims[d] = static_cast<size_t>(sec.dims[d]);
    Step& st = steps[sec.step];
    switch (sec.field) {
      case WeightField::kW:
        st.w = TensorView(reinterpret_cast<const float*>(p), dims, sec.rank);
        break;
      case WeightField::kBias:
        st.bias =
            TensorView(reinterpret_cast<const float*>(p), dims, sec.rank);
        break;
      case WeightField::kScale:
        st.scale =
            TensorView(reinterpret_cast<const float*>(p), dims, sec.rank);
        break;
      case WeightField::kShift:
        st.shift =
            TensorView(reinterpret_cast<const float*>(p), dims, sec.rank);
        break;
      case WeightField::kW9:
        st.w9 = TensorView(reinterpret_cast<const float*>(p), dims, sec.rank);
        break;
      case WeightField::kQw:
        st.qw = ConstSpan<int8_t>(reinterpret_cast<const int8_t*>(p),
                                  static_cast<size_t>(sec.bytes));
        break;
      case WeightField::kQwScales:
        st.qw_scales =
            ConstSpan<float>(reinterpret_cast<const float*>(p),
                             static_cast<size_t>(sec.bytes) / sizeof(float));
        break;
    }
  }
}

namespace {

/// Compile-time staging form of a Step: the same metadata, but with
/// OWNING weight payloads the passes below mutate freely (BN folding
/// rewrites `w` in place, int8 lowering fills `qw` and releases `w`).
/// The freeze pass at the end of compile() packs every payload into the
/// plan's arena and emits the final Steps, whose weight fields are views.
struct BuildStep {
  OpKind kind = OpKind::kConv;
  std::string name;
  size_t in = 0;
  size_t out = 0;
  Act act = Act::kNone;
  size_t in_sz = 0;
  size_t out_sz = 0;
  ConvGeom geom;
  size_t out_c = 0;
  size_t window = 0;
  size_t in_features = 0;
  size_t out_features = 0;
  Tensor w;
  Tensor bias;
  Tensor scale, shift;
  bool shift_gemm = false;
  Tensor w9;
  bool quantized = false;
  std::vector<int8_t> qw;
  std::vector<float> qw_scales;
  int qbits = 8;
  bool in_nonneg = false;
  // Per-step algorithm decision (tuner/forced/heuristic), applied by
  // compile() after strategy selection and copied into the final Step.
  const kernels::KernelBackend* be = nullptr;
  kernels::TileParams tile;
  uint32_t chunk = 0;
};

/// How Plan::compile actually selects per-step algorithms once kDefault
/// has been resolved: $ALF_TUNE ("off" / "cached" / "full"); unset or
/// unrecognized keeps the hand-written heuristics.
TuneMode resolve_tune_mode(TuneMode mode) {
  if (mode != TuneMode::kDefault) return mode;
  if (const char* env = std::getenv("ALF_TUNE"); env != nullptr) {
    if (std::strcmp(env, "cached") == 0) return TuneMode::kCached;
    if (std::strcmp(env, "full") == 0) return TuneMode::kFull;
  }
  return TuneMode::kHeuristic;
}

/// The geometric constraints the shifted-GEMM runtime hard-requires
/// (beyond these it would read out of bounds or overflow the border-repair
/// stack buffer). The compile-time heuristic ADDS a profitability test on
/// top; a forced kShiftGemm choice is honored exactly up to this bound.
bool shift_hard_eligible(const ConvGeom& g) {
  return g.stride == 1 && g.kernel % 2 == 1 && g.pad == (g.kernel - 1) / 2 &&
         g.in_w > 2 * g.pad && (g.kernel == 1 || g.in_h <= kMaxShiftH);
}

/// Walk state of Plan::compile. Activations are tracked as *virtual*
/// buffers (one per producing step, plus id 0 = external input); a
/// linear-scan pass afterwards maps virtual buffers to physical arena slots
/// by live range, so straight-line stretches ping-pong between two slots
/// and a residual shortcut holds a third.
struct Compiler {
  std::vector<BuildStep> steps;
  std::vector<size_t> vnumel{0};  // per-image numel per virtual buffer
  size_t cur = 0;                 // virtual buffer holding the activation
  size_t c = 0, h = 0, w = 0;     // per-image shape of `cur`
  // Steps below this index are immutable for fusion/folding: a residual
  // block raises the fence over its input so a body/shortcut that *starts*
  // with BN or an activation cannot rewrite the step that produced the
  // block input (which the other branch still reads).
  size_t fence = 0;

  size_t fresh(size_t numel) {
    vnumel.push_back(numel);
    return vnumel.size() - 1;
  }

  /// True if a trailing activation can ride the previous step's epilogue.
  bool fuse_act(Act act) {
    if (act == Act::kNone) return true;
    if (steps.size() <= fence) return false;
    BuildStep& last = steps.back();
    if (last.out != cur || last.act != Act::kNone) return false;
    last.act = act;
    last.name += "+" + std::string(act_name(act));
    return true;
  }

  /// Folds an inference-mode BatchNorm into the conv/linear step that
  /// produced the current activation: W[r,:] *= scale[r], bias' = bias *
  /// scale + shift. Returns false if no such step is available.
  bool fold_bn(const BatchNorm2d& bn) {
    if (steps.size() <= fence) return false;
    BuildStep& last = steps.back();
    if (last.out != cur || last.act != Act::kNone) return false;
    if (last.kind != OpKind::kConv && last.kind != OpKind::kLinear)
      return false;
    const size_t rows = last.w.dim(0);
    if (rows != bn.channels()) return false;
    Tensor scale, shift;
    bn_fold_scale_shift(bn, scale, shift);
    const size_t cols = last.w.dim(1);
    float* pw = last.w.data();
    for (size_t r = 0; r < rows; ++r) {
      const float s = scale.at(r);
      for (size_t j = 0; j < cols; ++j) pw[r * cols + j] *= s;
    }
    if (last.bias.empty()) {
      last.bias = std::move(shift);
    } else {
      for (size_t r = 0; r < rows; ++r)
        last.bias.at(r) = last.bias.at(r) * scale.at(r) + shift.at(r);
    }
    last.name += "+" + bn.name();
    return true;
  }

  void conv_step(const std::string& name, Tensor w_mat, size_t out_c,
                 size_t k, size_t stride, size_t pad, Act act) {
    BuildStep st;
    st.kind = OpKind::kConv;
    st.name = name;
    st.geom = ConvGeom{c, h, w, k, stride, pad};
    st.out_c = out_c;
    st.act = act;
    st.w = std::move(w_mat);
    ALF_CHECK_EQ(st.w.dim(0), out_c);
    ALF_CHECK_EQ(st.w.dim(1), st.geom.col_rows());
    st.in = cur;
    st.in_sz = c * h * w;
    c = out_c;
    h = st.geom.out_h();
    w = st.geom.out_w();
    st.out_sz = c * h * w;
    st.out = fresh(st.out_sz);
    cur = st.out;
    steps.push_back(std::move(st));
  }

  void lower(const Layer& layer);
};

void Compiler::lower(const Layer& layer) {
  if (const auto* seq = dynamic_cast<const Sequential*>(&layer)) {
    for (size_t i = 0; i < seq->size(); ++i) lower(*seq->layer(i));
    return;
  }
  if (const auto* res = dynamic_cast<const ResidualBlock*>(&layer)) {
    const size_t in_buf = cur, ic = c, ih = h, iw = w;
    const size_t outer_fence = fence;
    fence = steps.size();  // protect the block-input producer
    lower(res->body());
    const size_t body_out = cur, bc = c, bh = h, bw = w;
    size_t skip = in_buf;
    if (res->shortcut() != nullptr) {
      cur = in_buf;
      c = ic;
      h = ih;
      w = iw;
      fence = steps.size();
      lower(*res->shortcut());
      skip = cur;
    }
    fence = outer_fence;
    ALF_CHECK(c == bc && h == bh && w == bw)
        << res->name() << ": body/shortcut shape mismatch";
    ALF_CHECK_EQ(vnumel[skip], vnumel[body_out]) << res->name();
    BuildStep st;
    st.kind = OpKind::kAdd;
    st.name = res->name() + "_add+relu";
    st.in = skip;
    st.out = body_out;  // accumulates in place into the body activation
    st.in_sz = st.out_sz = bc * bh * bw;
    st.act = Act::kRelu;  // the block's final ReLU, fused
    steps.push_back(std::move(st));
    cur = body_out;
    c = bc;
    h = bh;
    w = bw;
    return;
  }
  if (const auto* conv = dynamic_cast<const Conv2d*>(&layer)) {
    conv_step(conv->name(),
              conv->weight().value.reshaped(
                  {conv->out_channels(), conv->in_channels() * conv->kernel() *
                                             conv->kernel()}),
              conv->out_channels(), conv->kernel(), conv->stride(),
              conv->pad(), Act::kNone);
    return;
  }
  if (const auto* alf = dynamic_cast<const AlfConv*>(&layer)) {
    ALF_CHECK(alf->bn_inter() == nullptr)
        << alf->name() << ": BN_inter blocks are a training-only config";
    const std::vector<size_t> kept = deployed_filters(*alf);
    const size_t ccode = kept.size();
    const size_t row = alf->in_channels() * alf->kernel() * alf->kernel();
    // Code conv: the surviving rows of Wcode (post mask & sigma_ae).
    const Tensor wcode = alf->compute_wcode();
    Tensor wc({ccode, row});
    for (size_t r = 0; r < ccode; ++r)
      std::memcpy(wc.data() + r * row, wcode.data() + kept[r] * row,
                  row * sizeof(float));
    conv_step(alf->name() + "_code", std::move(wc), ccode, alf->kernel(),
              alf->stride(), alf->pad(), alf->config().sigma_inter);
    // 1x1 expansion: Wexp restricted to the surviving input channels.
    const Tensor& wexp = alf->wexp().value;
    const size_t co = alf->out_channels();
    Tensor we({co, ccode});
    for (size_t o = 0; o < co; ++o)
      for (size_t r = 0; r < ccode; ++r)
        we.at(o, r) = wexp.at(o, kept[r]);
    conv_step(alf->name() + "_exp", std::move(we), co, 1, 1, 0, Act::kNone);
    return;
  }
  if (const auto* bn = dynamic_cast<const BatchNorm2d*>(&layer)) {
    ALF_CHECK_EQ(c, bn->channels()) << bn->name();
    if (fold_bn(*bn)) return;
    BuildStep st;
    st.kind = OpKind::kScaleShift;
    st.name = bn->name();
    bn_fold_scale_shift(*bn, st.scale, st.shift);
    st.out_c = bn->channels();
    st.geom = ConvGeom{c, h, w, 1, 1, 0};
    st.in = cur;
    st.in_sz = st.out_sz = c * h * w;
    st.out = fresh(st.out_sz);
    cur = st.out;
    steps.push_back(std::move(st));
    return;
  }
  if (const auto* act = dynamic_cast<const Activation*>(&layer)) {
    if (fuse_act(act->act())) return;
    BuildStep st;
    st.kind = OpKind::kActivation;
    st.name = act->name();
    st.act = act->act();
    st.in = cur;
    st.in_sz = st.out_sz = c * h * w;
    st.out = fresh(st.out_sz);
    cur = st.out;
    steps.push_back(std::move(st));
    return;
  }
  if (const auto* gap = dynamic_cast<const GlobalAvgPool*>(&layer)) {
    BuildStep st;
    st.kind = OpKind::kGlobalAvgPool;
    st.name = gap->name();
    st.geom = ConvGeom{c, h, w, 1, 1, 0};
    st.in = cur;
    st.in_sz = c * h * w;
    st.out_sz = c;
    st.out = fresh(st.out_sz);
    cur = st.out;
    h = w = 1;
    steps.push_back(std::move(st));
    return;
  }
  if (const auto* mp = dynamic_cast<const MaxPool2d*>(&layer)) {
    ALF_CHECK(h % mp->window() == 0 && w % mp->window() == 0)
        << mp->name() << ": input " << h << "x" << w
        << " not divisible by window " << mp->window();
    BuildStep st;
    st.kind = OpKind::kMaxPool;
    st.name = mp->name();
    st.geom = ConvGeom{c, h, w, 1, 1, 0};
    st.window = mp->window();
    st.in = cur;
    st.in_sz = c * h * w;
    h /= mp->window();
    w /= mp->window();
    st.out_sz = c * h * w;
    st.out = fresh(st.out_sz);
    cur = st.out;
    steps.push_back(std::move(st));
    return;
  }
  if (dynamic_cast<const Flatten*>(&layer) != nullptr) {
    // Row-major [C, H, W] is already the flattened feature vector.
    c = c * h * w;
    h = w = 1;
    return;
  }
  if (const auto* lin = dynamic_cast<const Linear*>(&layer)) {
    ALF_CHECK_EQ(c * h * w, lin->in_features()) << lin->name();
    BuildStep st;
    st.kind = OpKind::kLinear;
    st.name = lin->name();
    st.in_features = lin->in_features();
    st.out_features = lin->out_features();
    st.w = lin->weight().value;
    st.bias = lin->bias().value;
    st.in = cur;
    st.in_sz = lin->in_features();
    st.out_sz = lin->out_features();
    st.out = fresh(st.out_sz);
    cur = st.out;
    c = lin->out_features();
    h = w = 1;
    steps.push_back(std::move(st));
    return;
  }
  ALF_CHECK(false) << "engine: cannot compile layer '" << layer.name()
                   << "' of kind '" << layer.kind() << "'";
}

}  // namespace

std::shared_ptr<const Plan> Plan::compile(const Sequential& model,
                                          size_t batch, size_t in_c,
                                          size_t in_h, size_t in_w,
                                          const EngineOptions& opts) {
  ALF_CHECK(batch >= 1 && in_c >= 1 && in_h >= 1 && in_w >= 1);
  // The registry is consulted exactly once per plan, here; every kernel of
  // the compiled plan dispatches through this pointer.
  const kernels::KernelBackend* backend =
      opts.backend.empty() ? kernels::default_backend()
                           : kernels::find_backend(opts.backend);
  ALF_CHECK(backend != nullptr)
      << "engine: unknown kernel backend '" << opts.backend << "'";
  // Selecting a quantized-datapath backend (explicitly or via ALF_BACKEND)
  // lowers every conv/linear step to its qgemm.
  const bool quantize = backend->quantized_datapath;
  ALF_CHECK(!quantize || (opts.bits >= 2 && opts.bits <= 8))
      << "engine: int8 lowering bits=" << opts.bits;

  Compiler cc;
  cc.vnumel[0] = in_c * in_h * in_w;
  cc.c = in_c;
  cc.h = in_h;
  cc.w = in_w;
  cc.lower(model);
  ALF_CHECK(!cc.steps.empty()) << "engine: model compiled to an empty plan";

  // Non-negativity propagation over the (still virtual-buffer-addressed)
  // plan: a buffer is provably non-negative when its producer ends in
  // ReLU/sigmoid, and max-pool / global-avg-pool / residual-add preserve
  // the property. Quantized steps use it to pick an asymmetric activation
  // grid; the pass is structural, so the choice never depends on data.
  // (Runs before the tuner below: in_nonneg is part of the shape key.)
  {
    std::vector<bool> nonneg(cc.vnumel.size(), false);
    for (BuildStep& st : cc.steps) {
      st.in_nonneg = st.in != 0 && nonneg[st.in];
      bool out_nn;
      if (st.act == Act::kRelu || st.act == Act::kSigmoid) {
        out_nn = true;
      } else if (st.act != Act::kNone) {
        out_nn = false;  // tanh and friends re-sign
      } else {
        switch (st.kind) {
          case OpKind::kMaxPool:
          case OpKind::kGlobalAvgPool:
          case OpKind::kActivation:  // act == kNone: identity
            out_nn = st.in_nonneg;
            break;
          case OpKind::kAdd:  // out += in: needs both operands nonneg
            out_nn = st.in_nonneg && nonneg[st.out];
            break;
          default:  // conv/linear/scale-shift outputs are signed
            out_nn = false;
        }
      }
      nonneg[st.out] = out_nn;
    }
  }

  // The fixed batch partition (needed by the tuner's shape key and by the
  // scratch sizing below).
  const size_t nchunks = std::min<size_t>(
      batch, static_cast<size_t>(std::max(1, parallel_threads())));

  // --- Per-step algorithm decisions. ---
  // One AlgoChoice per step (non-GEMM steps keep the default). Priority:
  // forced choices (tests, the tuner's own candidate compiles) > the
  // tuner (kCached replays the persistent cache, measuring only missing
  // shapes; kFull re-measures everything) > all-default, which the
  // application passes below reproduce as the exact pre-tuner behavior.
  const TuneMode mode = resolve_tune_mode(opts.tune);
  std::vector<AlgoChoice> choices(cc.steps.size());
  {
    tune::AlgoCache* cache = nullptr;
    size_t t = 0;  // index among conv/linear steps (force_choices indexing)
    for (size_t i = 0; i < cc.steps.size(); ++i) {
      const BuildStep& st = cc.steps[i];
      if (st.kind != OpKind::kConv && st.kind != OpKind::kLinear) continue;
      if (!opts.force_choices.empty()) {
        choices[i] =
            opts.force_choices[std::min(t, opts.force_choices.size() - 1)];
      } else if (mode == TuneMode::kCached || mode == TuneMode::kFull) {
        if (cache == nullptr) cache = &tune::cache_for(opts.algo_cache);
        tune::TuneShape shape;
        shape.is_conv = st.kind == OpKind::kConv;
        shape.geom = st.geom;
        shape.out_c = st.out_c;
        shape.in_features = st.in_features;
        shape.out_features = st.out_features;
        shape.quantized = quantize;
        shape.qbits = quantize ? opts.bits : 0;
        shape.in_nonneg = st.in_nonneg;
        shape.batch = batch;
        shape.chunks = nchunks;
        shape.plan_backend = backend->name;
        choices[i] = tune::choose(shape, mode, *cache);
      }
      ++t;
    }
    if (cache != nullptr) cache->save();
  }

  // Conv strategy selection. The heuristic (Strategy::kAuto) lowers
  // eligible convs (stride 1, odd kernel, same-size padding) to the
  // shifted-GEMM form; narrow maps stay on the chunk-batched im2col path,
  // where their border fraction (2*pad / W) makes the repair pass cost
  // more than im2col saves. A kShiftGemm choice overrides the
  // profitability test but never the hard geometry bound (an ineligible
  // force falls back to im2col); kIm2col always sticks. Quantized plans
  // keep every conv on the im2col path — one qgemm per chunk with one
  // activation scale, instead of K*K partial GEMMs plus a float repair
  // pass. Packing the per-offset w9 slices happens here, after BN folding
  // has finished rewriting `w`.
  for (size_t i = 0; i < cc.steps.size(); ++i) {
    BuildStep& st = cc.steps[i];
    if (quantize || st.kind != OpKind::kConv) continue;
    const ConvGeom& g = st.geom;
    bool want;
    switch (choices[i].strategy) {
      case AlgoChoice::Strategy::kShiftGemm:
        want = shift_hard_eligible(g);
        break;
      case AlgoChoice::Strategy::kIm2col:
        want = false;
        break;
      case AlgoChoice::Strategy::kAuto:
      default:
        want = shift_hard_eligible(g) &&
               !(g.kernel > 1 &&
                 (g.in_w < 16 * g.pad || g.in_h > kMaxShiftH));
        break;
    }
    if (!want) continue;
    st.shift_gemm = true;
    if (g.kernel == 1) continue;  // 1x1 multiplies `w` against x directly
    const size_t k = g.kernel, ci = g.in_c, co = st.out_c;
    st.w9 = Tensor({k * k, co, ci});
    for (size_t o = 0; o < co; ++o)
      for (size_t c = 0; c < ci; ++c)
        for (size_t kh = 0; kh < k; ++kh)
          for (size_t kw = 0; kw < k; ++kw)
            st.w9.at(((kh * k + kw) * co + o) * ci + c) =
                st.w.at(o, (c * k + kh) * k + kw);
  }

  // Apply the rest of each choice: per-step backend, tile, chunk grid.
  // Every step carries a backend pointer (the plan backend when the choice
  // leaves it open); a named backend must exist and share the plan's
  // datapath — the packed weight panels have one ABI per datapath. Tiles
  // only stick on backends exposing a tiled GEMM entry; chunk overrides
  // only on chunk-batched (non-shift) convs.
  for (size_t i = 0; i < cc.steps.size(); ++i) {
    BuildStep& st = cc.steps[i];
    st.be = backend;
    if (st.kind != OpKind::kConv && st.kind != OpKind::kLinear) continue;
    const AlgoChoice& ch = choices[i];
    if (!ch.backend.empty()) {
      const kernels::KernelBackend* b = kernels::find_backend(ch.backend);
      ALF_CHECK(b != nullptr)
          << "engine: step '" << st.name << "': unknown tuned backend '"
          << ch.backend << "'";
      ALF_CHECK(b->quantized_datapath == quantize)
          << "engine: step '" << st.name << "': tuned backend '" << ch.backend
          << "' is on the wrong datapath for this plan";
      st.be = b;
    }
    if (st.be->gemm_tiled != nullptr) st.tile = ch.tile;
    if (st.kind == OpKind::kConv && !st.shift_gemm) st.chunk = ch.chunk;
  }

  // int8 lowering: export the (BN-folded) weights of every conv/linear
  // step as packed symmetric-int8 panels, calibrated per output channel
  // (each row of W gets its own max-abs step size — BN folding scales rows
  // independently, so a per-tensor grid would waste its range on the
  // largest channel). Convs keep the [Co, Ci*K*K] GEMM layout; linear
  // weights transpose to the [in, out] B-panel layout the qgemm consumes
  // (activations arrive as the A panel there).
  if (quantize) {
    const float levels = static_cast<float>((1 << (opts.bits - 1)) - 1);
    for (BuildStep& st : cc.steps) {
      if (st.kind != OpKind::kConv && st.kind != OpKind::kLinear) continue;
      const size_t rows = st.w.dim(0), cols = st.w.dim(1);
      st.quantized = true;
      st.qbits = opts.bits;
      st.qw.resize(rows * cols);
      st.qw_scales.resize(rows);
      std::vector<int8_t> qrow(cols);
      for (size_t o = 0; o < rows; ++o) {
        const float* wrow = st.w.data() + o * cols;
        const float wmax = max_abs_view(wrow, cols);
        QuantParams qp;
        qp.bits = opts.bits;
        qp.scale = wmax > 0.0f ? wmax / levels : 1.0f;
        if (wmax > 0.0f) {
          // MSE-optimal clipping: max-abs calibration spends the whole
          // grid on the largest element; sweeping a few clip fractions and
          // keeping the min-MSE one trades outlier saturation for finer
          // steps everywhere else. Compile-time only — runtime sees just
          // the chosen scale.
          double best_mse = -1.0;
          float best_scale = qp.scale;
          for (int c = 0; c <= 6; ++c) {
            const float clip = 1.0f - 0.05f * static_cast<float>(c);
            const float scale = wmax * clip / levels;
            double mse = 0.0;
            for (size_t j = 0; j < cols; ++j) {
              float q = std::round(wrow[j] / scale);
              q = std::max(-levels, std::min(levels, q));
              const double d =
                  static_cast<double>(wrow[j]) - static_cast<double>(q * scale);
              mse += d * d;
            }
            if (best_mse < 0.0 || mse < best_mse) {
              best_mse = mse;
              best_scale = scale;
            }
          }
          qp.scale = best_scale;
        }
        st.qw_scales[o] = qp.scale;
        if (st.kind == OpKind::kConv) {
          quantize_view(wrow, cols, qp, st.qw.data() + o * cols);
        } else {
          // Transposed pack: output feature o becomes column o.
          quantize_view(wrow, cols, qp, qrow.data());
          for (size_t j = 0; j < cols; ++j) st.qw[j * rows + o] = qrow[j];
        }
      }
      // The float weights are dead from here on — the runtime reads only
      // qw/qw_scales (geometry lives in out_c/geom/in+out_features), and
      // keeping them would hand every deployed int8 plan 4 bytes of unused
      // float per weight.
      st.w = Tensor();
    }
  }

  // --- Linear-scan slot assignment over virtual-buffer live ranges. ---
  const size_t nvirt = cc.vnumel.size();
  const size_t final_buf = cc.cur;
  std::vector<size_t> last_use(nvirt, 0);
  for (size_t i = 0; i < cc.steps.size(); ++i) {
    last_use[cc.steps[i].in] = i;
    last_use[cc.steps[i].out] = i;
  }
  last_use[final_buf] = cc.steps.size();  // survives the whole plan

  std::vector<long> slot_of(nvirt, -1);
  std::vector<size_t> free_slots;
  size_t nslots = 0;
  for (size_t i = 0; i < cc.steps.size(); ++i) {
    BuildStep& st = cc.steps[i];
    ALF_CHECK(st.out != 0) << "engine: step writes the input buffer";
    ALF_CHECK(st.in == 0 || slot_of[st.in] >= 0) << "engine: use before def";
    if (slot_of[st.out] < 0) {
      if (free_slots.empty()) {
        slot_of[st.out] = static_cast<long>(nslots++);
      } else {
        slot_of[st.out] = static_cast<long>(free_slots.back());
        free_slots.pop_back();
      }
    }
    // Buffers whose last use is this step return their slot to the pool.
    for (size_t v = 1; v < nvirt; ++v) {
      if (last_use[v] == i && slot_of[v] >= 0)
        free_slots.push_back(static_cast<size_t>(slot_of[v]));
    }
  }

  std::shared_ptr<Plan> plan(new Plan());
  plan->name_ = opts.name;
  plan->backend_ = backend;
  plan->quant_ = quantize;
  plan->batch_ = batch;
  plan->in_c_ = in_c;
  plan->in_h_ = in_h;
  plan->in_w_ = in_w;
  plan->classes_ = cc.vnumel[final_buf];
  plan->slots_ = nslots;
  // Uniform slots sized for the largest live activation keep the free list
  // trivial; the waste is bounded by slots (<= 3 for the model zoo).
  size_t max_act = 0;
  for (size_t v = 1; v < nvirt; ++v) max_act = std::max(max_act, cc.vnumel[v]);
  plan->slot_stride_ = batch * max_act;
  plan->nchunks_ = nchunks;
  // Chunk-batched convs unfold a whole chunk of images into one im2col
  // matrix and land the GEMM in a result scratch before the NCHW scatter;
  // both regions are per-chunk slices at the arena tail. A step with a
  // tuned chunk override runs a *coarser* grid (fewer, larger chunks), so
  // its scratch need is computed from its own effective grid — the sizing
  // below takes the max over every step's grid, and the runtime partition
  // (Plan::step_chunks) can never outgrow it.
  const auto eff_imgs = [&](const BuildStep& st) {
    const size_t nch =
        st.chunk != 0 ? std::min<size_t>(st.chunk, nchunks) : nchunks;
    return (batch + nch - 1) / nch;
  };
  size_t max_col = 0, max_res = 0;
  for (const BuildStep& st : cc.steps) {
    if (st.kind != OpKind::kConv || st.shift_gemm) continue;
    max_col = std::max(
        max_col, st.geom.col_rows() * st.geom.col_cols() * eff_imgs(st));
    max_res = std::max(max_res, st.out_sz * eff_imgs(st));
  }
  plan->col_sz_ = max_col;
  plan->res_sz_ = max_res;
  plan->col_off_ = plan->slots_ * plan->slot_stride_;
  plan->res_off_ = plan->col_off_ + plan->nchunks_ * plan->col_sz_;

  // Quantized plans additionally size int8 activation scratch: per-chunk
  // quantized-im2col slices (same geometry as the float col scratch) and,
  // for linear steps, a whole-batch quantized-input region. Conv chunks
  // and linear steps never overlap in time, so one buffer serves both.
  // The qbs region carries the per-image column scales (and inverses)
  // handed to the qgemm requantization.
  if (quantize) {
    size_t max_lin = 0;
    for (const BuildStep& st : cc.steps)
      if (st.kind == OpKind::kLinear)
        max_lin = std::max(max_lin, batch * st.in_features);
    plan->qws_sz_ = std::max(plan->nchunks_ * plan->col_sz_, max_lin);
    size_t max_cols = batch;  // linear steps use one scale per batch row
    for (const BuildStep& st : cc.steps)
      if (st.kind == OpKind::kConv && !st.shift_gemm)
        max_cols = std::max(max_cols, st.geom.col_cols() * eff_imgs(st));
    plan->qbs_sz_ = max_cols;
  }

  // Rebind steps from virtual buffers to arena slots (slot 0 = input x).
  for (BuildStep& st : cc.steps) {
    st.in = st.in == 0 ? 0 : static_cast<size_t>(slot_of[st.in]) + 1;
    st.out = static_cast<size_t>(slot_of[st.out]) + 1;
  }

  // --- Freeze: pack every owning payload into the single weight arena. ---
  // Sections are laid out in step order at kWeightAlign boundaries; the
  // table is the authority the views are bound from, and exactly what
  // alf::plan::save serializes — a loaded blob re-runs only the binding.
  struct Pending {
    WeightSection sec;
    const void* src;
  };
  std::vector<Pending> pending;
  uint64_t arena_bytes = 0;
  const auto stage = [&](size_t step, WeightField field, const void* src,
                         uint64_t bytes, uint32_t elem_size,
                         const size_t* dims, size_t rank) {
    if (bytes == 0) return;
    arena_bytes = (arena_bytes + kWeightAlign - 1) & ~uint64_t{kWeightAlign - 1};
    WeightSection sec;
    sec.step = static_cast<uint32_t>(step);
    sec.field = field;
    sec.offset = arena_bytes;
    sec.bytes = bytes;
    sec.elem_size = elem_size;
    sec.rank = static_cast<uint32_t>(rank);
    for (size_t d = 0; d < rank; ++d) sec.dims[d] = dims[d];
    pending.push_back(Pending{sec, src});
    arena_bytes += bytes;
  };
  const auto stage_tensor = [&](size_t step, WeightField field,
                                const Tensor& t) {
    if (t.empty()) return;
    ALF_CHECK(t.rank() >= 1 && t.rank() <= TensorView::kMaxRank);
    size_t dims[TensorView::kMaxRank] = {0, 0, 0};
    for (size_t d = 0; d < t.rank(); ++d) dims[d] = t.dim(d);
    stage(step, field, t.data(), t.numel() * sizeof(float), sizeof(float),
          dims, t.rank());
  };
  for (size_t i = 0; i < cc.steps.size(); ++i) {
    const BuildStep& bs = cc.steps[i];
    stage_tensor(i, WeightField::kW, bs.w);
    stage_tensor(i, WeightField::kBias, bs.bias);
    stage_tensor(i, WeightField::kScale, bs.scale);
    stage_tensor(i, WeightField::kShift, bs.shift);
    stage_tensor(i, WeightField::kW9, bs.w9);
    const size_t qw_len = bs.qw.size();
    stage(i, WeightField::kQw, bs.qw.data(), qw_len, 1, &qw_len, 1);
    const size_t qs_len = bs.qw_scales.size();
    stage(i, WeightField::kQwScales, bs.qw_scales.data(),
          qs_len * sizeof(float), sizeof(float), &qs_len, 1);
  }
  plan->arena_ = WeightArena::allocate(arena_bytes);
  plan->sections_.reserve(pending.size());
  for (const Pending& p : pending) {
    std::memcpy(plan->arena_.mutable_data() + p.sec.offset, p.src,
                p.sec.bytes);
    plan->sections_.push_back(p.sec);
  }

  // Emit the final Steps: metadata copies; weight views bound below.
  plan->steps_.resize(cc.steps.size());
  for (size_t i = 0; i < cc.steps.size(); ++i) {
    const BuildStep& bs = cc.steps[i];
    Step& st = plan->steps_[i];
    st.kind = bs.kind;
    st.name = bs.name;
    st.in = bs.in;
    st.out = bs.out;
    st.act = bs.act;
    st.in_sz = bs.in_sz;
    st.out_sz = bs.out_sz;
    st.geom = bs.geom;
    st.out_c = bs.out_c;
    st.window = bs.window;
    st.in_features = bs.in_features;
    st.out_features = bs.out_features;
    st.shift_gemm = bs.shift_gemm;
    st.quantized = bs.quantized;
    st.qbits = bs.qbits;
    st.in_nonneg = bs.in_nonneg;
    st.be = bs.be;
    st.tile = bs.tile;
    st.chunk = bs.chunk;
  }
  bind_weight_views(plan->steps_, plan->sections_, plan->arena_);
#ifndef NDEBUG
  // Debug builds validate every freshly compiled plan; release builds
  // rely on the test suite calling verify() explicitly (plan_verify.cpp).
  plan->verify();
#endif
  return plan;
}

const char* Plan::backend_name() const {
  return backend_ != nullptr ? backend_->name : "?";
}

std::string Plan::str() const {
  std::string s;
  char line[320];
  std::snprintf(line, sizeof(line),
                "engine plan: %zu steps, %zu activation slots x %zu floats, "
                "%zu x %zu im2col scratch (batch %zu, backend %s%s)\n",
                steps_.size(), slots_, slot_stride_, nchunks_, col_sz_,
                batch_, backend_name(), quant_ ? " quantized" : "");
  s += line;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& st = steps_[i];
    // Per-step algorithm decision: backend (when it differs from the
    // plan's), tile blocking and chunk-grid override — the full choice a
    // tuned plan (or a loaded blob) carries, so dumps diff meaningfully.
    char algo[96] = "";
    if (st.kind == OpKind::kConv || st.kind == OpKind::kLinear) {
      size_t off = 0;
      if (st.be != nullptr && st.be != backend_)
        off += static_cast<size_t>(std::snprintf(
            algo + off, sizeof(algo) - off, " be=%s", st.be->name));
      if (!st.tile.is_default() && off < sizeof(algo))
        off += static_cast<size_t>(
            std::snprintf(algo + off, sizeof(algo) - off, " tile=%ux%ux%u",
                          st.tile.mc, st.tile.kc, st.tile.nc));
      if (st.chunk != 0 && off < sizeof(algo))
        std::snprintf(algo + off, sizeof(algo) - off, " chunk=%u", st.chunk);
    }
    char geom[144] = "";
    if (st.kind == OpKind::kConv) {
      std::snprintf(geom, sizeof(geom), "  [%zux%zux%zu] %s%s", st.out_c,
                    st.geom.out_h(), st.geom.out_w(),
                    st.quantized ? "qgemm-int8"
                                 : (st.shift_gemm ? "shift-gemm" : "im2col"),
                    algo);
    } else if (st.kind == OpKind::kLinear) {
      std::snprintf(geom, sizeof(geom), "  [%zu -> %zu]%s%s", st.in_features,
                    st.out_features, st.quantized ? " qgemm-int8" : "", algo);
    }
    std::snprintf(line, sizeof(line), "  %2zu %-11s %-28s s%zu -> s%zu%s%s%s\n",
                  i, op_kind_name(st.kind), st.name.c_str(), st.in, st.out,
                  geom, st.bias.empty() ? "" : " +bias",
                  st.act == Act::kNone ? "" : (std::string(" +") +
                                               act_name(st.act)).c_str());
    s += line;
  }
  return s;
}

}  // namespace alf
