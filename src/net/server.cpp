#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace alf::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

std::chrono::steady_clock::time_point now_tp() {
  return std::chrono::steady_clock::now();
}

}  // namespace

int listen_on(uint16_t port, bool reuseport, int backlog) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("bind/listen");
  }
  return fd;
}

uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

// ---------------------------------------------------------------------------
// Internal state. All of it is owned by the single event-loop thread; the
// only cross-thread structure is CompletionQueue.
// ---------------------------------------------------------------------------

/// One engine result (or typed shed) travelling worker thread -> loop.
struct NetServer::Completion {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  uint32_t rows = 0;
  WireStatus status = WireStatus::kInternal;
  Tensor logits;  ///< kOk only
};

/// Worker-to-loop handoff: callbacks push under the mutex and poke the
/// eventfd; the loop swaps the vector out. Held by shared_ptr from both
/// sides so a straggling callback never touches a dead NetServer.
struct NetServer::CompletionQueue {
  Mutex m;
  std::vector<Completion> items ALF_GUARDED_BY(m);
  int event_fd = -1;

  ~CompletionQueue() {
    if (event_fd >= 0) ::close(event_fd);
  }

  void push(Completion&& c) {
    {
      MutexLock lk(m);
      items.push_back(std::move(c));
    }
    poke();
  }

  /// Async-signal-safe (one write() on an eventfd).
  void poke() const {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(event_fd, &one, sizeof(one));
  }
};

struct NetServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  std::vector<uint8_t> rbuf;  ///< unparsed request bytes from rpos on
  size_t rpos = 0;
  std::vector<uint8_t> wbuf;  ///< unsent response bytes from wpos on
  size_t wpos = 0;
  size_t inflight = 0;      ///< submitted, response not yet queued to wbuf
  bool want_write = false;  ///< EPOLLOUT currently armed
  bool drop_input = false;  ///< stop parsing (fatal reject or drain)
  bool closing = false;     ///< close once inflight == 0 and wbuf flushed
  bool dead = false;        ///< scheduled for reaping (never touch again)
  bool frame_timed = false;
  std::chrono::steady_clock::time_point frame_t0{};  ///< first byte seen
};

struct NetServer::Loop {
  static constexpr uint64_t kListenId = 0;
  static constexpr uint64_t kEventId = 1;
  static constexpr size_t kReadChunk = 64 * 1024;

  NetServer& S;
  int ep = -1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  std::vector<uint64_t> dead_ids;
  uint64_t next_id = 2;
  bool listening = true;
  bool draining = false;

  explicit Loop(NetServer& s) : S(s) {
    ep = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep < 0) throw_errno("epoll_create1");
    add(S.listen_fd_, kListenId, EPOLLIN);
    add(S.completions_->event_fd, kEventId, EPOLLIN);
  }

  ~Loop() {
    for (auto& [id, c] : conns)
      if (c->fd >= 0) ::close(c->fd);
    if (listening && S.listen_fd_ >= 0) {
      ::close(S.listen_fd_);
      S.listen_fd_ = -1;
    }
    if (ep >= 0) ::close(ep);
  }

  void add(int fd, uint64_t id, uint32_t events) const {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    if (::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) != 0)
      throw_errno("epoll_ctl(ADD)");
  }

  // --- stats (loop thread is the only writer) ---

  void count_response(WireStatus st, bool submitted) {
    MutexLock lk(S.stats_m_);
    S.stats_.by_status[static_cast<size_t>(st)]++;
    if (st == WireStatus::kOk)
      S.stats_.ok++;
    else if (submitted)
      S.stats_.shed++;
    else
      S.stats_.rejected++;
  }

  void run() {
    epoll_event events[64];
    for (;;) {
      if (S.drain_.load(std::memory_order_acquire)) begin_drain();
      drain_completions();
      reap();
      if (draining && conns.empty()) return;
      const int n = ::epoll_wait(ep, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("epoll_wait");
      }
      for (int i = 0; i < n; ++i) {
        const uint64_t id = events[i].data.u64;
        if (id == kListenId) {
          accept_ready();
        } else if (id == kEventId) {
          uint64_t count = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(S.completions_->event_fd, &count, sizeof(count));
        } else {
          const auto it = conns.find(id);
          if (it == conns.end()) continue;
          Conn& c = *it->second;
          if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
            on_peer_gone(c);
            continue;
          }
          if ((events[i].events & EPOLLIN) != 0) conn_readable(c);
          if ((events[i].events & EPOLLOUT) != 0) flush(c);
        }
      }
    }
  }

  void accept_ready() {
    if (!listening) return;
    for (;;) {
      const int fd =
          ::accept4(S.listen_fd_, nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN, or transient (ECONNABORTED/EMFILE)
      if (draining) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      c->id = next_id++;
      add(fd, c->id, EPOLLIN | EPOLLET);
      conns.emplace(c->id, std::move(c));
      MutexLock lk(S.stats_m_);
      S.stats_.connections++;
    }
  }

  void conn_readable(Conn& c) {
    if (c.dead || c.drop_input) return;
    bool eof = false;
    for (;;) {  // edge-triggered: read until EAGAIN or EOF
      const size_t old = c.rbuf.size();
      c.rbuf.resize(old + kReadChunk);
      const ssize_t r = ::read(c.fd, c.rbuf.data() + old, kReadChunk);
      if (r > 0) {
        c.rbuf.resize(old + static_cast<size_t>(r));
        if (!c.frame_timed && c.rbuf.size() > c.rpos) {
          c.frame_timed = true;  // first byte of a new frame: start of
          c.frame_t0 = now_tp();  // the time-on-wire clock
        }
        continue;
      }
      c.rbuf.resize(old);
      if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) eof = true;
      break;
    }
    parse(c);
    if (c.dead) return;
    if (eof) {
      if (!c.drop_input && c.rbuf.size() > c.rpos) {
        // The peer hung up inside a frame: nothing to respond to, but the
        // rejection is typed in the stats.
        MutexLock lk(S.stats_m_);
        S.stats_.truncated++;
        S.stats_.by_status[static_cast<size_t>(WireStatus::kTruncated)]++;
      }
      c.drop_input = true;
      c.closing = true;
      finish_if_done(c);
    }
  }

  void parse(Conn& c) {
    while (!c.dead && !c.drop_input) {
      const size_t avail = c.rbuf.size() - c.rpos;
      if (avail < sizeof(RequestHeader)) break;
      RequestHeader h;
      std::memcpy(&h, c.rbuf.data() + c.rpos, sizeof(h));
      WireStatus fatal = WireStatus::kOk;
      if (h.magic != kMagic)
        fatal = WireStatus::kBadMagic;
      else if (h.version != kWireVersion)
        fatal = WireStatus::kBadVersion;
      else if (h.model_len == 0 || h.model_len > kMaxModelName)
        fatal = WireStatus::kBadHeader;
      else if (h.payload_bytes > S.cfg_.max_frame_bytes)
        fatal = WireStatus::kTooLarge;
      if (fatal != WireStatus::kOk) {
        // The stream is no longer trustworthy: answer, then close after
        // every in-flight response has flushed.
        respond(c, h.seq, fatal, 0, nullptr, 0, /*submitted=*/false);
        c.drop_input = true;
        c.closing = true;
        finish_if_done(c);
        break;
      }
      const size_t total = sizeof(h) + h.model_len + h.payload_bytes;
      if (avail < total) break;  // wait for the rest of the frame
      {
        MutexLock lk(S.stats_m_);
        S.stats_.frames++;
      }
      const char* name =
          reinterpret_cast<const char*>(c.rbuf.data() + c.rpos + sizeof(h));
      const uint8_t* payload =
          c.rbuf.data() + c.rpos + sizeof(h) + h.model_len;
      S.handle_frame(*this, c, h, name, payload);
      c.rpos += total;
      c.frame_timed = c.rbuf.size() > c.rpos;
      if (c.frame_timed) c.frame_t0 = now_tp();
    }
    // Compact once the parse pointer has moved past everything (or far).
    if (c.rpos > 0 &&
        (c.rpos == c.rbuf.size() || c.rpos >= (1u << 20))) {
      c.rbuf.erase(c.rbuf.begin(),
                   c.rbuf.begin() + static_cast<ptrdiff_t>(c.rpos));
      c.rpos = 0;
    }
  }

  /// Serializes one response frame and tries to flush it.
  void respond(Conn& c, uint64_t seq, WireStatus st, uint32_t rows,
               const void* payload, size_t payload_bytes, bool submitted) {
    if (c.dead) return;
    const char* msg = nullptr;
    if (st != WireStatus::kOk && payload == nullptr) {
      msg = status_name(st);
      payload = msg;
      payload_bytes = std::strlen(msg);
    }
    ResponseHeader rh{};
    rh.magic = kMagic;
    rh.version = kWireVersion;
    rh.status = static_cast<uint16_t>(st);
    rh.rows = rows;
    rh.seq = seq;
    rh.payload_bytes = payload_bytes;
    const size_t old = c.wbuf.size();
    c.wbuf.resize(old + sizeof(rh) + payload_bytes);
    std::memcpy(c.wbuf.data() + old, &rh, sizeof(rh));
    if (payload_bytes > 0)
      std::memcpy(c.wbuf.data() + old + sizeof(rh), payload, payload_bytes);
    count_response(st, submitted);
    flush(c);
  }

  void flush(Conn& c) {
    if (c.dead) return;
    while (c.wpos < c.wbuf.size()) {
      const ssize_t w = ::send(c.fd, c.wbuf.data() + c.wpos,
                               c.wbuf.size() - c.wpos, MSG_NOSIGNAL);
      if (w > 0) {
        c.wpos += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      on_peer_gone(c);  // EPIPE/ECONNRESET: responses are undeliverable
      return;
    }
    if (c.wpos == c.wbuf.size()) {
      c.wbuf.clear();
      c.wpos = 0;
    }
    update_interest(c);
    finish_if_done(c);
  }

  void update_interest(Conn& c) {
    const bool want = c.wpos < c.wbuf.size();
    if (want == c.want_write || c.dead) return;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | (want ? EPOLLOUT : 0u);
    ev.data.u64 = c.id;
    if (::epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev) == 0) c.want_write = want;
  }

  void on_peer_gone(Conn& c) {
    if (c.dead) return;
    c.dead = true;
    dead_ids.push_back(c.id);
  }

  void finish_if_done(Conn& c) {
    if (!c.dead && c.closing && c.inflight == 0 && c.wpos == c.wbuf.size()) {
      c.dead = true;
      dead_ids.push_back(c.id);
    }
  }

  void reap() {
    for (const uint64_t id : dead_ids) {
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      ::epoll_ctl(ep, EPOLL_CTL_DEL, it->second->fd, nullptr);
      ::close(it->second->fd);
      conns.erase(it);
    }
    dead_ids.clear();
  }

  void drain_completions() {
    std::vector<Completion> items;
    {
      MutexLock lk(S.completions_->m);
      items.swap(S.completions_->items);
    }
    for (Completion& comp : items) {
      const auto it = conns.find(comp.conn_id);
      if (it == conns.end() || it->second->dead) {
        MutexLock lk(S.stats_m_);
        S.stats_.orphaned++;
        continue;
      }
      Conn& c = *it->second;
      c.inflight--;
      if (comp.status == WireStatus::kOk) {
        respond(c, comp.seq, WireStatus::kOk, comp.rows, comp.logits.data(),
                comp.logits.numel() * sizeof(float), /*submitted=*/true);
      } else {
        respond(c, comp.seq, comp.status, 0, nullptr, 0, /*submitted=*/true);
      }
      finish_if_done(c);
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    if (listening) {
      ::epoll_ctl(ep, EPOLL_CTL_DEL, S.listen_fd_, nullptr);
      ::close(S.listen_fd_);
      S.listen_fd_ = -1;
      listening = false;
    }
    for (auto& [id, c] : conns) {
      if (c->dead) continue;
      c->drop_input = true;
      c->closing = true;
      finish_if_done(*c);
    }
  }
};

// ---------------------------------------------------------------------------
// NetServer
// ---------------------------------------------------------------------------

NetServer::NetServer(ModelServer& server, int listen_fd, NetServerConfig cfg)
    : server_(server), cfg_(cfg), listen_fd_(listen_fd) {
  ALF_CHECK(listen_fd >= 0) << "NetServer needs a listening socket";
  port_ = local_port(listen_fd);
  completions_ = std::make_shared<CompletionQueue>();
  completions_->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (completions_->event_fd < 0) {
    ::close(listen_fd_);
    throw_errno("eventfd");
  }
}

NetServer::~NetServer() {
  if (!ran_.load() && listen_fd_ >= 0) ::close(listen_fd_);
}

void NetServer::request_drain() {
  drain_.store(true, std::memory_order_release);
  completions_->poke();
}

NetStats NetServer::stats() const {
  MutexLock lk(stats_m_);
  return stats_;
}

void NetServer::run() {
  ALF_CHECK(!ran_.exchange(true)) << "NetServer::run is one-shot";
  ALF_CHECK(server_.started())
      << "start() the ModelServer before serving sockets";
  Loop loop(*this);
  loop.run();
}

void NetServer::handle_frame(Loop& loop, Conn& conn, const RequestHeader& h,
                             const char* name, const uint8_t* payload) {
  const auto reject = [&](WireStatus st) {
    loop.respond(conn, h.seq, st, 0, nullptr, 0, /*submitted=*/false);
  };
  if (drain_.load(std::memory_order_acquire)) {
    reject(WireStatus::kShuttingDown);
    return;
  }
  const std::string model(name, h.model_len);
  const Plan* plan = nullptr;
  try {
    plan = &server_.plan(model);
  } catch (const CheckError&) {
    reject(WireStatus::kUnknownModel);
    return;
  }
  if (h.rows == 0 || h.rows > plan->batch() ||
      h.payload_bytes !=
          static_cast<uint64_t>(h.rows) * plan->image_floats() *
              sizeof(float)) {
    reject(WireStatus::kBadShape);
    return;
  }
  if (h.deadline_us == 0 || h.deadline_us > cfg_.max_deadline_us) {
    reject(WireStatus::kBadDeadline);
    return;
  }
  // Deadline propagation: the wire budget is measured from the client's
  // send, best approximated by the first byte of the frame; what remains
  // after time-on-wire is the server-side budget.
  const uint64_t wire_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          now_tp() - conn.frame_t0)
          .count());
  if (wire_us >= h.deadline_us) {
    reject(WireStatus::kDeadlineExpired);
    return;
  }
  Tensor x({h.rows, plan->in_c(), plan->in_h(), plan->in_w()});
  std::memcpy(x.data(), payload, h.payload_bytes);
  const auto cq = completions_;
  const uint64_t cid = conn.id;
  const uint64_t seq = h.seq;
  const uint32_t rows = h.rows;
  ModelServer::SubmitOptions opts;
  opts.deadline_us = h.deadline_us - wire_us;
  try {
    server_.submit(
        model, std::move(x),
        [cq, cid, seq, rows](Tensor&& logits) {
          cq->push({cid, seq, rows, WireStatus::kOk, std::move(logits)});
        },
        [cq, cid, seq, rows](std::exception_ptr ep) {
          WireStatus st = WireStatus::kInternal;
          try {
            std::rethrow_exception(std::move(ep));
          } catch (const QueueFullError&) {
            st = WireStatus::kQueueFull;
          } catch (const DeadlineExpiredError&) {
            st = WireStatus::kDeadlineExpired;
          } catch (...) {
          }
          cq->push({cid, seq, rows, st, Tensor()});
        },
        opts);
  } catch (const QueueFullError&) {
    reject(WireStatus::kQueueFull);
    return;
  } catch (const std::exception&) {
    reject(WireStatus::kInternal);
    return;
  }
  conn.inflight++;
  MutexLock lk(stats_m_);
  stats_.submitted++;
}

}  // namespace alf::net
