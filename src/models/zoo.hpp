// Runnable model builders: Plain-20, ResNet-20 (CIFAR scale) and a
// width/depth-faithful ResNet-18 for the reduced-scale ImageNet-like task.
//
// Builders are parameterized over a ConvMaker so the same topology can be
// instantiated with plain Conv2d layers (vanilla / baseline-pruned models)
// or with ALF blocks (alf::make_alf_conv_maker) without duplicating the
// architecture definitions. Convolution names follow the paper's Fig. 3
// labels (conv1, conv211 ... conv432).
#pragma once

#include <functional>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace alf {

/// Factory producing the convolution unit of a layer. The returned layer
/// must map [N, ci, H, W] -> [N, co, H', W'] with the given geometry; it may
/// internally be a plain conv or a full ALF block.
using ConvMaker = std::function<LayerPtr(
    const std::string& name, size_t ci, size_t co, size_t k, size_t stride,
    size_t pad)>;

/// Architecture hyper-parameters.
struct ModelConfig {
  size_t classes = 10;
  size_t base_width = 16;  ///< width of the first stage (paper: 16)
  size_t in_channels = 3;
  size_t in_hw = 32;
  Init init = Init::kHe;  ///< init for plain convs and the FC head
};

/// ConvMaker producing standard Conv2d layers. `rng` must outlive the maker.
ConvMaker standard_conv_maker(Init init, Rng* rng);

/// Plain-20: 19 sequential 3x3 convs (no skips) + GAP + FC.
std::unique_ptr<Sequential> build_plain20(const ModelConfig& cfg, Rng& rng,
                                          const ConvMaker& make_conv);

/// ResNet-20: conv1 + 9 basic residual blocks + GAP + FC.
std::unique_ptr<Sequential> build_resnet20(const ModelConfig& cfg, Rng& rng,
                                           const ConvMaker& make_conv);

/// ResNet-18 topology (4 stages x 2 basic blocks, widths w..8w) with a 3x3
/// stem suited to the reduced-resolution ImageNet-like task.
std::unique_ptr<Sequential> build_resnet18(const ModelConfig& cfg, Rng& rng,
                                           const ConvMaker& make_conv);

/// Collects pointers to all Conv2d layers in build order.
std::vector<Conv2d*> collect_convs(Sequential& model);

}  // namespace alf
