// Engine vs layer tree — batched inference throughput of the deployment
// path (compile-once plan + workspace arena + fused conv+BN+ReLU kernels)
// against the training-framework Sequential::forward eval walk.
//
// Covers ResNet-20, Plain-20 and an ALF-compressed ResNet-20 (masks pruned
// to the paper's operating point) across batch sizes and thread counts.
// Writes BENCH_engine.json (default; override with --json <path>) so the
// speedup is recorded per-PR. The acceptance bar for the engine refactor is
// >= 1.5x over the layer tree on ResNet-20 at batch 32.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "engine/engine.hpp"
#include "engine/plan_io.hpp"
#include "tune/tuner.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

/// Multiply-adds of one image under the compiled plan (conv + linear).
double plan_madds(const Engine& eng) {
  double madds = 0.0;
  for (const Step& st : eng.steps()) {
    if (st.kind == OpKind::kConv)
      madds += static_cast<double>(st.w.dim(0)) * st.w.dim(1) *
               st.geom.col_cols();
    else if (st.kind == OpKind::kLinear)
      madds += static_cast<double>(st.in_features) * st.out_features;
  }
  return madds;
}

/// Best-of-reps wall time in milliseconds for `fn()` (min filters out
/// scheduler noise on shared machines).
template <typename Fn>
double time_ms(size_t reps, Fn&& fn) {
  double best = 1e30;
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct ModelUnderTest {
  const char* name;
  std::unique_ptr<Sequential> model;
};

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::string json_path = parse_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_engine.json";
  const size_t reps = std::strcmp(s.name, "quick") == 0 ? 3 : 7;

  std::printf("Engine vs layer tree (scale=%s, hw=%zu, width=%zu)\n\n",
              s.name, s.hw, s.width);

  Rng rng(17);
  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;

  std::vector<ModelUnderTest> models;
  models.push_back(
      {"resnet20", build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng))});
  models.push_back(
      {"plain20", build_plain20(mc, rng, standard_conv_maker(mc.init, &rng))});
  {
    // ALF-compressed ResNet-20: prune ~2/3 of each block's code filters
    // (the paper's Table II operating point) without a training run — the
    // deployed kernels only care about the surviving-filter count.
    AlfConfig acfg;
    std::vector<AlfConv*> blocks;
    auto m = build_resnet20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
    for (AlfConv* b : blocks) {
      Tensor& mask = b->mask();
      for (size_t i = 0; i < mask.numel(); ++i)
        if (i % 3 != 0) mask.at(i) = 0.0f;
    }
    models.push_back({"alf_resnet20", std::move(m)});
  }
  for (auto& mut : models) warm_bn(*mut.model, mc.in_channels, s.hw, rng);

  const int hw_threads = parallel_threads();
  const size_t batches[] = {1, 8, 32};
  std::vector<int> threads = {1};
  if (hw_threads > 1) threads.push_back(hw_threads);

  BenchJson json("bench_engine", s.name);
  // Every engine row below runs the heuristic (untuned) plan; the autotuned
  // comparison carries its own rows. Stamped so a perf trajectory across
  // PRs never mixes tuned and untuned numbers silently.
  json.row("meta/tune").extra_str["tune_mode"] = "heuristic";
  Table table("Engine vs Sequential::forward (eval)");
  table.set_header({"model", "batch", "threads", "layers[ms]", "engine[ms]",
                    "speedup", "engine G madds/s"});

  double resnet_b32_speedup = 0.0;
  for (auto& mut : models) {
    for (const size_t batch : batches) {
      Tensor x = random_input({batch, mc.in_channels, s.hw, s.hw}, rng);
      for (const int t : threads) {
        set_parallel_threads(t);
        Engine eng =
            Engine::compile(*mut.model, batch, mc.in_channels, s.hw, s.hw);
        Tensor out({batch, eng.classes()});
        // Untimed warmup round for both paths.
        mut.model->forward(x, false);
        eng.run(x, out);
        const double layers_ms =
            time_ms(reps, [&] { mut.model->forward(x, false); });
        const double engine_ms = time_ms(reps, [&] { eng.run(x, out); });
        const double speedup = layers_ms / engine_ms;
        const double gmadds =
            plan_madds(eng) * static_cast<double>(batch) / (engine_ms * 1e6);
        if (std::strcmp(mut.name, "resnet20") == 0 && batch == 32 &&
            t == hw_threads)
          resnet_b32_speedup = speedup;

        table.add_row({mut.name, Table::fmt_int(static_cast<long long>(batch)),
                       Table::fmt_int(t), Table::fmt(layers_ms, 3),
                       Table::fmt(engine_ms, 3), Table::fmt(speedup, 2),
                       Table::fmt(gmadds, 2)});
        char row_name[96];
        std::snprintf(row_name, sizeof(row_name), "%s/b%zu/t%d/engine",
                      mut.name, batch, t);
        BenchRow& row = json.row(row_name);
        row.wall_ms = engine_ms;
        row.gmadds_per_s = gmadds;
        row.extra["speedup_vs_layers"] = speedup;
        row.extra["layers_ms"] = layers_ms;
      }
    }
  }
  set_parallel_threads(0);

  // --- Cold start: Plan::compile from the model vs alf::plan::load of a
  // saved blob (the compile-once/deploy-many split). Per zoo model and
  // datapath: the compile cost a deploying process avoids, the load cost
  // it pays instead, and the blob it ships. ---
  namespace fs = std::filesystem;
  Table cold("Cold start: Plan::compile vs plan::load (batch 32)");
  cold.set_header(
      {"model", "dtype", "compile[ms]", "load[ms]", "speedup", "blob[KiB]"});
  const fs::path blob_dir = fs::temp_directory_path() / "alf_bench_plans";
  fs::create_directories(blob_dir);
  for (auto& mut : models) {
    for (const char* backend : {"", "int8"}) {
      const char* dtype = *backend ? "int8" : "f32";
      const auto compile = [&] {
        return Plan::compile(*mut.model, 32, mc.in_channels, s.hw, s.hw,
                             {.backend = backend, .bits = 8,
                              .name = std::string(mut.name)});
      };
      const double compile_ms = time_ms(reps, [&] { compile(); });
      const fs::path file =
          blob_dir / (std::string(mut.name) + "_" + dtype + ".plan");
      plan::save(*compile(), file.string());
      const double blob_kib =
          static_cast<double>(fs::file_size(file)) / 1024.0;
      const double load_ms =
          time_ms(reps, [&] { plan::load(file.string()); });
      cold.add_row({mut.name, dtype, Table::fmt(compile_ms, 2),
                    Table::fmt(load_ms, 2),
                    Table::fmt(compile_ms / load_ms, 1),
                    Table::fmt(blob_kib, 1)});
      char row_name[96];
      std::snprintf(row_name, sizeof(row_name), "cold_start/%s_%s",
                    mut.name, dtype);
      BenchRow& row = json.row(row_name);
      row.wall_ms = load_ms;
      row.extra["compile_ms"] = compile_ms;
      row.extra["plan_load_ms"] = load_ms;
      row.extra["speedup_vs_compile"] = compile_ms / load_ms;
      row.extra["blob_kib"] = blob_kib;
    }
  }
  std::error_code cleanup_ec;
  fs::remove_all(blob_dir, cleanup_ec);
  cold.print();

  // --- Per-shape autotuner (src/tune/): tuned plan vs heuristic plan. ---
  // Per zoo model x datapath at batch 32: compile once with the hand-written
  // predicates, once under TuneMode::kCached (first model pays the
  // microbenchmarks, later ones replay shared shapes), and race the two
  // plans on identical input. The tuner's 3% hysteresis means the tuned
  // plan can only confirm or beat the heuristic, never regress it — the
  // speedup column is the acceptance record.
  Table tuned_tab("Autotuned plan vs heuristic plan (batch 32)");
  tuned_tab.set_header(
      {"model", "dtype", "heuristic[ms]", "tuned[ms]", "speedup"});
  const fs::path cache_file =
      fs::temp_directory_path() / "alf_bench_engine_algo.cache";
  std::error_code tune_ec;
  fs::remove(cache_file, tune_ec);  // cold cache: measure, don't inherit
  tune::set_reps(std::strcmp(s.name, "quick") == 0 ? 2 : 3);
  for (auto& mut : models) {
    Tensor x = random_input({32, mc.in_channels, s.hw, s.hw}, rng);
    for (const char* backend : {"", "int8"}) {
      const char* dtype = *backend ? "int8" : "f32";
      EngineOptions heur_opts;
      heur_opts.backend = backend;
      heur_opts.bits = 8;
      heur_opts.tune = TuneMode::kHeuristic;
      EngineOptions tuned_opts = heur_opts;
      tuned_opts.tune = TuneMode::kCached;
      tuned_opts.algo_cache = cache_file.string();
      Engine heur =
          Engine::compile(*mut.model, 32, mc.in_channels, s.hw, s.hw,
                          heur_opts);
      Engine tuned =
          Engine::compile(*mut.model, 32, mc.in_channels, s.hw, s.hw,
                          tuned_opts);
      Tensor out({32, heur.classes()});
      heur.run(x, out);  // warmup both
      tuned.run(x, out);
      const double heur_ms = time_ms(reps, [&] { heur.run(x, out); });
      const double tuned_ms = time_ms(reps, [&] { tuned.run(x, out); });
      tuned_tab.add_row({mut.name, dtype, Table::fmt(heur_ms, 3),
                         Table::fmt(tuned_ms, 3),
                         Table::fmt(heur_ms / tuned_ms, 2)});
      char row_name[96];
      std::snprintf(row_name, sizeof(row_name), "tuned/%s_%s", mut.name,
                    dtype);
      BenchRow& row = json.row(row_name);
      row.wall_ms = tuned_ms;
      row.extra["heuristic_ms"] = heur_ms;
      row.extra["speedup_vs_heuristic"] = heur_ms / tuned_ms;
      row.extra_str["tune_mode"] = "cached";
    }
  }
  fs::remove(cache_file, tune_ec);
  tuned_tab.print();

  table.print();
  if (json.write(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("resnet20 batch-32 speedup at %d threads: %.2fx (target 1.5x)\n",
              hw_threads, resnet_b32_speedup);
  return 0;
}
