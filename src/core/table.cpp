#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/check.hpp"

namespace alf {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    ALF_CHECK_EQ(row.size(), header_.size()) << "row width mismatch";
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

}  // namespace alf
