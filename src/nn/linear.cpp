#include "nn/linear.hpp"

#include "core/check.hpp"
#include "kernels/backend.hpp"
#include "tensor/ops.hpp"

namespace alf {

Linear::Linear(std::string name, size_t in_features, size_t out_features,
               Init scheme, Rng& rng)
    : name_(std::move(name)),
      in_(in_features),
      out_(out_features),
      w_(name_ + ".w", {out_features, in_features}),
      b_(name_ + ".b", {out_features}, /*apply_decay=*/false) {
  init_tensor(w_.value, scheme, in_, out_, rng);
}

void linear_forward_view(const float* x, size_t n, size_t in_features,
                         const float* w, size_t out_features, const float* b,
                         Act act, float* y, const kernels::KernelBackend* be) {
  if (be == nullptr) be = kernels::default_backend();
  // y = x [n, in] * W^T [in, out]
  be->gemm(x, in_features, false, w, in_features, true, y, out_features, n,
           in_features, out_features, 1.0f, 0.0f);
  if (b != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      float* row = y + i * out_features;
      for (size_t j = 0; j < out_features; ++j) row[j] += b[j];
    }
  }
  act_inplace(act, y, n * out_features);
}

Tensor Linear::forward(const Tensor& x, bool train) {
  ALF_CHECK_EQ(x.rank(), size_t{2});
  ALF_CHECK_EQ(x.dim(1), in_);
  if (train) cached_x_ = x;
  Tensor y({x.dim(0), out_});
  linear_forward_view(x.data(), x.dim(0), in_, w_.value.data(), out_,
                      b_.value.data(), Act::kNone, y.data());
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_x_.empty()) << "backward before forward";
  const size_t n = cached_x_.dim(0);
  ALF_CHECK_EQ(grad_out.dim(0), n);
  ALF_CHECK_EQ(grad_out.dim(1), out_);
  // dW += gout^T * x ; db += sum_n gout ; dx = gout * W
  gemm(grad_out, true, cached_x_, false, w_.grad, 1.0f, 1.0f);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < out_; ++j) b_.grad.at(j) += grad_out.at(i, j);
  return matmul(grad_out, w_.value, false, false);
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  if (train) cached_shape_ = x.shape();
  ALF_CHECK(x.rank() >= 2);
  size_t features = 1;
  for (size_t d = 1; d < x.rank(); ++d) features *= x.dim(d);
  return x.reshaped({x.dim(0), features});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_shape_.empty()) << "backward before forward";
  return grad_out.reshaped(cached_shape_);
}

}  // namespace alf
