// Shared vocabulary of the serving layer: typed overload/deadline errors,
// shed policies, the per-model statistics snapshot, and the internal
// request record the queue/scheduler/dispatch layers pass around.
//
// The serving stack is built in layers on the Plan/ExecContext split
// (engine/plan.hpp):
//
//   types.hpp        — this file: errors, policies, stats, Request
//   model_queue.hpp  — per-model bounded queue + batch former (no locking
//                      of its own; runs under the server's mutex)
//   scheduler.hpp    — weighted fair pick across backlogged models
//   model_server.hpp — the registry + shared worker pool tying them together
//   batch_server.hpp — the single-model facade (the pre-multi-tenant API)
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>

#include "tensor/tensor.hpp"

namespace alf {

/// Typed overload signal: submit() found the queue at max_queue (policy
/// kReject), or the request was the oldest in a full queue and got shed
/// (policy kDropOldest; delivered through the error callback / future).
/// Deliberately NOT a CheckError — overload is an operating condition the
/// caller handles (shed, retry with backoff, degrade), not a programming
/// error.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Typed latency-SLO signal: the request's deadline_us budget expired
/// before batch formation, so the server shed it instead of spending
/// engine time on a result the client has already given up on. Like
/// QueueFullError this is an operating condition, not misuse.
class DeadlineExpiredError : public std::runtime_error {
 public:
  explicit DeadlineExpiredError(const std::string& what)
      : std::runtime_error(what) {}
};

/// What to do with a submit() that finds the queue at max_queue.
enum class ShedPolicy {
  kReject,      ///< fail the NEW request fast with QueueFullError
  kDropOldest,  ///< admit it; shed the OLDEST queued request instead (its
                ///< future/error callback completes with QueueFullError)
};

/// Per-model serving counters. stats() returns one struct copied under the
/// server's single queue mutex, so every snapshot is coherent: the
/// conservation identity
///
///   accepted == completed + dropped_oldest + expired + queued + in_flight
///
/// holds exactly at every instant (and rejected counts submits that never
/// entered the queue at all). Dispatch counters (requests/images/batches)
/// are aggregated at batch-formation time, so they are final for a request
/// as soon as its result is delivered.
struct ServeStats {
  // Admission.
  size_t accepted = 0;        ///< submits that entered the queue
  size_t rejected = 0;        ///< submits refused by admission control
  size_t dropped_oldest = 0;  ///< queued requests shed by kDropOldest
  size_t expired = 0;         ///< queued requests shed by their deadline

  // Dispatch.
  size_t requests = 0;      ///< requests dispatched to the engine
  size_t images = 0;        ///< images dispatched
  size_t batches = 0;       ///< engine invocations
  size_t full_batches = 0;  ///< invocations that filled the plan batch
  size_t max_fill = 0;      ///< largest images-per-invocation seen

  // Lifecycle (snapshot fields of the conservation identity).
  size_t completed = 0;  ///< requests whose completion callback has fired
  size_t in_flight = 0;  ///< popped for dispatch, result not yet delivered
  size_t queued = 0;     ///< requests waiting in the queue right now

  /// Mean images per engine invocation (0 before the first dispatch).
  double avg_fill() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(images) /
                              static_cast<double>(batches);
  }
};

/// Receives the per-request logits [n, classes] on a worker thread.
using ServeCallback = std::function<void(Tensor&&)>;

/// Receives the typed error when the server sheds an accepted request
/// (QueueFullError under kDropOldest, DeadlineExpiredError past the SLO).
/// Optional on the callback submit path; the future path always wires it.
using ServeErrorCallback = std::function<void(std::exception_ptr)>;

namespace serve {

/// One accepted request as it moves queue -> batch -> delivery.
struct Request {
  Tensor x;
  size_t n = 0;  ///< images in x
  ServeCallback done;
  ServeErrorCallback fail;  ///< may be null (callback submits without one)
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};

}  // namespace serve
}  // namespace alf
