#include "nn/loss.hpp"

#include <cmath>

#include "core/check.hpp"

namespace alf {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  ALF_CHECK_EQ(logits.rank(), size_t{2});
  const size_t n = logits.dim(0), c = logits.dim(1);
  ALF_CHECK_EQ(labels.size(), n);

  LossResult res;
  res.grad_logits = Tensor(logits.shape());
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const int label = labels[i];
    ALF_CHECK(label >= 0 && static_cast<size_t>(label) < c);

    float mx = row[0];
    size_t arg = 0;
    for (size_t j = 1; j < c; ++j) {
      if (row[j] > mx) {
        mx = row[j];
        arg = j;
      }
    }
    if (arg == static_cast<size_t>(label)) ++res.correct;

    double z = 0.0;
    for (size_t j = 0; j < c; ++j) z += std::exp(static_cast<double>(row[j] - mx));
    const double logz = std::log(z);
    total += logz - (row[label] - mx);

    float* grow = res.grad_logits.data() + i * c;
    const float invn = 1.0f / static_cast<float>(n);
    for (size_t j = 0; j < c; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - mx)) / z;
      grow[j] = static_cast<float>(p) * invn;
    }
    grow[label] -= invn;
  }
  res.loss = total / static_cast<double>(n);
  return res;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  ALF_CHECK_EQ(logits.rank(), size_t{2});
  const size_t n = logits.dim(0), c = logits.dim(1);
  ALF_CHECK_EQ(labels.size(), n);
  ALF_CHECK(n > 0);
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    size_t arg = 0;
    for (size_t j = 1; j < c; ++j)
      if (row[j] > row[arg]) arg = j;
    if (arg == static_cast<size_t>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace alf
