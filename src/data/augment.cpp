#include "data/augment.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace alf {

void hflip_image(Tensor& x, size_t i) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t c = x.dim(1), h = x.dim(2), w = x.dim(3);
  ALF_CHECK(i < x.dim(0));
  float* img = x.data() + i * c * h * w;
  for (size_t ch = 0; ch < c; ++ch) {
    for (size_t row = 0; row < h; ++row) {
      float* r = img + (ch * h + row) * w;
      std::reverse(r, r + w);
    }
  }
}

void shift_image(Tensor& x, size_t i, int dy, int dx) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t c = x.dim(1), h = x.dim(2), w = x.dim(3);
  ALF_CHECK(i < x.dim(0));
  if (dy == 0 && dx == 0) return;
  float* img = x.data() + i * c * h * w;
  std::vector<float> tmp(h * w);
  for (size_t ch = 0; ch < c; ++ch) {
    float* plane = img + ch * h * w;
    std::fill(tmp.begin(), tmp.end(), 0.0f);
    for (size_t y = 0; y < h; ++y) {
      const long sy = static_cast<long>(y) - dy;
      if (sy < 0 || sy >= static_cast<long>(h)) continue;
      for (size_t xx = 0; xx < w; ++xx) {
        const long sx = static_cast<long>(xx) - dx;
        if (sx < 0 || sx >= static_cast<long>(w)) continue;
        tmp[y * w + xx] = plane[static_cast<size_t>(sy) * w +
                                static_cast<size_t>(sx)];
      }
    }
    std::copy(tmp.begin(), tmp.end(), plane);
  }
}

void augment_batch(Tensor& x, const AugmentConfig& config, Rng& rng) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t n = x.dim(0);
  for (size_t i = 0; i < n; ++i) {
    if (config.hflip && rng.uniform() < 0.5) hflip_image(x, i);
    if (config.max_shift > 0) {
      const int span = 2 * config.max_shift + 1;
      const int dy =
          static_cast<int>(rng.uniform_index(span)) - config.max_shift;
      const int dx =
          static_cast<int>(rng.uniform_index(span)) - config.max_shift;
      shift_image(x, i, dy, dx);
    }
  }
}

}  // namespace alf
