// Tensor kernels: GEMM, im2col/col2im, elementwise helpers.
//
// These are the computational substrate of the NN framework. The GEMM entry
// points forward into the dispatchable kernel-backend layer
// (kernels/backend.hpp — scalar / simd / int8 implementations selected via
// ALF_BACKEND or CPU features); im2col/col2im and the elementwise helpers
// live here. Every backend is parallelized over output rows with
// deterministic partitioning (each output element is written by exactly one
// thread and accumulated in a thread-count-independent order), so results
// are bit-stable.
#pragma once

#include "tensor/tensor.hpp"

namespace alf {

/// C = alpha * op(A) * op(B) + beta * C, with op(X) = X or X^T.
/// A is [M, K] (or [K, M] when trans_a), B is [K, N] (or [N, K] when
/// trans_b), C must be preallocated to [M, N].
///
/// Dispatches to the process-default kernel backend (see
/// kernels/backend.hpp). Per output element the accumulation order is fixed
/// by the backend's k-block grid (never by the thread partition), so for a
/// fixed backend results are bit-identical for any thread count.
void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha = 1.0f, float beta = 0.0f);

/// Raw-pointer core of gemm() over row-major views: op(A) is [M, K] with
/// leading dimension lda, op(B) is [K, N] with leading dimension ldb, C is
/// an [M, N] block with leading dimension ldc (ldc >= n; pass n for a dense
/// result). Lets callers target slices of a larger buffer — one image of a
/// batch tensor, an engine arena slot, or a column window of an output map
/// (the engine's shifted-GEMM convolutions rely on ldc > n). Same
/// blocking/threading/determinism as the Tensor form.
void gemm_view(const float* a, size_t lda, bool trans_a, const float* b,
               size_t ldb, bool trans_b, float* c, size_t ldc, size_t m,
               size_t k, size_t n, float alpha = 1.0f, float beta = 0.0f);

/// Reference GEMM: serial textbook triple loop, no blocking, no threading.
/// Kept as the oracle for tests and the baseline for bench_micro; do not
/// use on hot paths.
void gemm_naive(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
                Tensor& c, float alpha = 1.0f, float beta = 0.0f);

/// Convenience: returns op(A)*op(B) as a fresh [M, N] tensor.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Geometry of a convolution used by im2col/col2im and the Conv2d layer.
struct ConvGeom {
  size_t in_c = 0, in_h = 0, in_w = 0;
  size_t kernel = 1;
  size_t stride = 1;
  size_t pad = 0;

  size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix = Ci * K * K.
  size_t col_rows() const { return in_c * kernel * kernel; }
  /// Columns of the im2col matrix = Ho * Wo.
  size_t col_cols() const { return out_h() * out_w(); }
};

/// Unfolds one image `img` [Ci, H, W] into `col` [Ci*K*K, Ho*Wo].
/// `col` must be preallocated; zero-padding is materialized as zeros.
void im2col(const Tensor& img, const ConvGeom& g, Tensor& col);

/// Batch-offset overload: unfolds image `image` of `x` [N, Ci, H, W]
/// directly into `col`, with no staging copy of the image.
void im2col(const Tensor& x, size_t image, const ConvGeom& g, Tensor& col);

/// Raw core of im2col: `img` points at Ci*H*W floats, `col` at
/// col_rows()*col_cols() floats. No shape checks — callers own them.
void im2col_view(const float* img, const ConvGeom& g, float* col);

/// Strided variant: writes the unfold as an [col_rows, col_cols] block of a
/// wider matrix with leading dimension `ld_col` (>= col_cols). The engine
/// uses it to unfold several images side by side into one [Ci*K*K,
/// G*Ho*Wo] matrix so a whole chunk runs as a single GEMM.
void im2col_view(const float* img, const ConvGeom& g, float* col,
                 size_t ld_col);

/// Accumulates the columns of `col` [Ci*K*K, Ho*Wo] back into image
/// gradient `img` [Ci, H, W] (adds into img; caller zeroes it first).
void col2im(const Tensor& col, const ConvGeom& g, Tensor& img);

/// Batch-offset overload: accumulates into image `image` of `x`
/// [N, Ci, H, W] (caller zeroes that slice first).
void col2im(const Tensor& col, const ConvGeom& g, Tensor& x, size_t image);

/// Raw core of col2im; see im2col_view for the pointer contracts.
void col2im_view(const float* col, const ConvGeom& g, float* img);

/// out[i] = a[i] * b[i]; shapes must match.
Tensor hadamard(const Tensor& a, const Tensor& b);

/// axpy: y += alpha * x.
void axpy(float alpha, const Tensor& x, Tensor& y);

/// Mean squared error between two same-shape tensors.
double mse(const Tensor& a, const Tensor& b);

/// Transposes a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

}  // namespace alf
