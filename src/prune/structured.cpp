#include "prune/structured.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.hpp"

namespace alf {

std::vector<double> filter_saliency(const Tensor& w, PruneRule rule) {
  ALF_CHECK_EQ(w.rank(), size_t{4});
  const size_t co = w.dim(0);
  const size_t fsize = w.numel() / co;
  std::vector<double> sal(co, 0.0);

  switch (rule) {
    case PruneRule::kMagnitude: {
      for (size_t f = 0; f < co; ++f) {
        const float* p = w.data() + f * fsize;
        double s = 0.0;
        for (size_t j = 0; j < fsize; ++j) s += std::abs(p[j]);
        sal[f] = s;
      }
      break;
    }
    case PruneRule::kFpgm: {
      // FPGM: a filter minimizing the sum of distances to all other filters
      // sits near the geometric median and is *most replaceable*. Saliency is
      // therefore that distance sum itself (small = prune).
      for (size_t a = 0; a < co; ++a) {
        const float* pa = w.data() + a * fsize;
        double total = 0.0;
        for (size_t b = 0; b < co; ++b) {
          if (a == b) continue;
          const float* pb = w.data() + b * fsize;
          double d2 = 0.0;
          for (size_t j = 0; j < fsize; ++j) {
            const double d = static_cast<double>(pa[j]) - pb[j];
            d2 += d * d;
          }
          total += std::sqrt(d2);
        }
        sal[a] = total;
      }
      break;
    }
  }
  return sal;
}

std::vector<bool> select_filters(const Tensor& w, double keep_frac,
                                 PruneRule rule) {
  const size_t co = w.dim(0);
  const size_t kept = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::clamp(keep_frac, 0.0, 1.0) * co)));
  const std::vector<double> sal = filter_saliency(w, rule);
  std::vector<size_t> order(co);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&sal](size_t a, size_t b) { return sal[a] > sal[b]; });
  std::vector<bool> keep(co, false);
  for (size_t i = 0; i < kept; ++i) keep[order[i]] = true;
  return keep;
}

void zero_pruned_filters(Conv2d& conv, const std::vector<bool>& keep) {
  Tensor& w = conv.weight().value;
  const size_t co = w.dim(0);
  ALF_CHECK_EQ(keep.size(), co);
  const size_t fsize = w.numel() / co;
  for (size_t f = 0; f < co; ++f) {
    if (keep[f]) continue;
    float* p = w.data() + f * fsize;
    std::fill(p, p + fsize, 0.0f);
  }
}

double PrunePlan::kept_fraction() const {
  size_t total = 0, k = 0;
  for (const auto& layer : keep) {
    total += layer.size();
    for (bool b : layer) k += b ? 1 : 0;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(k) / static_cast<double>(total);
}

PrunePlan uniform_plan(const std::vector<Conv2d*>& convs, double keep_frac,
                       PruneRule rule, bool skip_first) {
  PrunePlan plan;
  for (size_t i = 0; i < convs.size(); ++i) {
    const Tensor& w = convs[i]->weight().value;
    if (i == 0 && skip_first) {
      plan.keep.emplace_back(w.dim(0), true);
    } else {
      plan.keep.push_back(select_filters(w, keep_frac, rule));
    }
  }
  return plan;
}

PrunePlan per_layer_plan(const std::vector<Conv2d*>& convs,
                         const std::vector<double>& keep_fracs,
                         PruneRule rule) {
  ALF_CHECK_EQ(convs.size(), keep_fracs.size());
  PrunePlan plan;
  for (size_t i = 0; i < convs.size(); ++i) {
    plan.keep.push_back(
        select_filters(convs[i]->weight().value, keep_fracs[i], rule));
  }
  return plan;
}

void apply_plan(const std::vector<Conv2d*>& convs, const PrunePlan& plan) {
  ALF_CHECK_EQ(convs.size(), plan.keep.size());
  for (size_t i = 0; i < convs.size(); ++i)
    zero_pruned_filters(*convs[i], plan.keep[i]);
}

ModelCost apply_filter_pruning(
    const ModelCost& vanilla,
    const std::map<std::string, double>& keep_frac_by_name,
    const std::string& new_name) {
  ModelCost out;
  out.name = new_name;
  // Running map from channel count "co of the previous conv" — when a conv's
  // vanilla ci equals the previous conv's vanilla co, the chain propagates
  // the pruned count; otherwise (branches/shortcuts) ci stays vanilla.
  size_t prev_vanilla_co = 0, prev_pruned_co = 0;
  for (const LayerCost& l : vanilla.layers) {
    LayerCost nl = l;
    if (l.kind == "conv") {
      size_t ci = l.ci;
      if (prev_vanilla_co == l.ci && prev_pruned_co > 0) ci = prev_pruned_co;
      size_t co = l.co;
      auto it = keep_frac_by_name.find(l.name);
      if (it != keep_frac_by_name.end()) {
        co = std::max<size_t>(
            1, static_cast<size_t>(std::ceil(
                   std::clamp(it->second, 0.0, 1.0) * l.co)));
      }
      nl.ci = ci;
      nl.co = co;
      nl.params = static_cast<unsigned long long>(l.k) * l.k * ci * co;
      nl.macs = nl.params * l.out_h * l.out_w;
      prev_vanilla_co = l.co;
      prev_pruned_co = co;
    } else if (l.kind == "fc") {
      // After a global pool the FC input features scale with the last conv's
      // channel count.
      size_t in_features = l.ci;
      if (prev_vanilla_co > 0 && l.ci % prev_vanilla_co == 0) {
        const size_t spatial = l.ci / prev_vanilla_co;
        in_features = spatial * prev_pruned_co;
      }
      nl.ci = in_features;
      nl.params = static_cast<unsigned long long>(in_features) * l.co;
      nl.macs = nl.params;
    }
    out.layers.push_back(nl);
  }
  return out;
}

}  // namespace alf
