// Per-shape autotuner (tune/): algo-cache lifecycle (round-trip through
// disk, stamp invalidation, typed corrupt-file rejection, concurrent
// warm-cache readers), bit-identity of cache-applied vs directly forced
// candidates, zero-measurement warm-cache compiles, and tuned-blob
// round-trips through plan save/load.
#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "engine/exec_context.hpp"
#include "engine/plan.hpp"
#include "engine/plan_io.hpp"
#include "grad_check.hpp"
#include "kernels/backend.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tune/algo_cache.hpp"
#include "tune/tuner.hpp"

namespace alf {
namespace {

namespace fs = std::filesystem;
using testing::random_input;
using tune::AlgoCache;
using tune::TuneError;

/// Unique scratch directory, recursively removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "alf_tune_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr) << "mkdtemp: " << std::strerror(errno);
    path = made != nullptr ? fs::path(made) : fs::path();
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) fs::remove_all(path, ec);
  }
};

/// Tiny tunable model: two conv shapes (one shift-eligible, one strided)
/// plus a linear head — covers every TuneShape kind cheaply.
std::unique_ptr<Sequential> tiny_model(Rng& rng) {
  auto m = std::make_unique<Sequential>("tiny");
  m->emplace<Conv2d>("c1", 3, 6, 3, 1, 1, Init::kHe, rng);
  m->emplace<Activation>("c1_relu", Act::kRelu);
  m->emplace<Conv2d>("c2", 6, 8, 3, 2, 1, Init::kHe, rng);
  m->emplace<Flatten>("flatten");
  m->emplace<Linear>("fc", 8 * 6 * 6, 5, Init::kHe, rng);
  return m;
}

constexpr size_t kHw = 12;
constexpr size_t kBatch = 4;

std::shared_ptr<const Plan> compile_tiny(const EngineOptions& opts) {
  Rng rng(93);
  auto model = tiny_model(rng);
  return Plan::compile(*model, kBatch, 3, kHw, kHw, opts);
}

std::string read_text(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.good()) << p;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void write_text(const fs::path& p, const std::string& text) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  ASSERT_TRUE(f.good()) << p;
}

/// Recomputes the trailing crc line after a test mutates cache text.
std::string restamp_cache(std::string text) {
  const size_t pos = text.rfind("crc 0x");
  EXPECT_NE(pos, std::string::npos);
  char line[24];
  std::snprintf(line, sizeof(line), "crc 0x%08x\n",
                plan::crc32(text.data(), pos));
  return text.substr(0, pos) + line;
}

TEST(Tune, ShapeKeyIsStableAndDistinct) {
  tune::TuneShape conv;
  conv.is_conv = true;
  conv.geom = ConvGeom{8, 16, 16, 3, 1, 1};
  conv.out_c = 8;
  conv.batch = 4;
  conv.chunks = 4;
  EXPECT_EQ(tune::shape_key(conv), "conv:c8:h16:w16:k3:s1:p1:o8:q0:nn0:b4:t4");
  tune::TuneShape lin;
  lin.is_conv = false;
  lin.in_features = 256;
  lin.out_features = 10;
  lin.in_nonneg = true;
  lin.batch = 4;
  EXPECT_EQ(tune::shape_key(lin), "linear:i256:o10:q0:nn1:b4");
  // Quantization widens the key: different grids must never share a entry.
  lin.quantized = true;
  lin.qbits = 6;
  EXPECT_EQ(tune::shape_key(lin), "linear:i256:o10:q6:nn1:b4");
}

TEST(Tune, CandidateEnumeration) {
  tune::TuneShape shape;
  shape.is_conv = true;
  shape.geom = ConvGeom{4, 12, 12, 3, 1, 1};
  shape.out_c = 6;
  shape.batch = 4;
  shape.chunks = 2;
  shape.plan_backend = "scalar";
  const auto cands = tune::candidates(shape);
  ASSERT_FALSE(cands.empty());
  // The heuristic default leads, so choose() can never regress it.
  EXPECT_EQ(cands[0].strategy, AlgoChoice::Strategy::kAuto);
  EXPECT_TRUE(cands[0].backend.empty());
  EXPECT_TRUE(cands[0].tile.is_default());
  bool has_shift = false, has_im2col = false, has_tile = false;
  for (const AlgoChoice& c : cands) {
    has_shift |= c.strategy == AlgoChoice::Strategy::kShiftGemm;
    has_im2col |= c.strategy == AlgoChoice::Strategy::kIm2col;
    has_tile |= !c.tile.is_default();
    // Float shape: every named backend must be on the float datapath.
    if (!c.backend.empty()) {
      const kernels::KernelBackend* be = kernels::find_backend(c.backend);
      ASSERT_NE(be, nullptr);
      EXPECT_FALSE(be->quantized_datapath);
    }
  }
  EXPECT_TRUE(has_shift);   // 3x3 stride-1 same-pad is shift-eligible
  EXPECT_TRUE(has_im2col);
  EXPECT_TRUE(has_tile);    // scalar always exposes a tiled GEMM

  // Quantized shapes only offer quantized backends, im2col only.
  shape.quantized = true;
  shape.qbits = 8;
  shape.plan_backend = "int8";
  for (const AlgoChoice& c : tune::candidates(shape)) {
    EXPECT_NE(c.strategy, AlgoChoice::Strategy::kShiftGemm);
    EXPECT_TRUE(c.tile.is_default());
    if (!c.backend.empty()) {
      const kernels::KernelBackend* be = kernels::find_backend(c.backend);
      ASSERT_NE(be, nullptr);
      EXPECT_TRUE(be->quantized_datapath);
    }
  }
}

TEST(Tune, CacheRoundTripReplaysIdenticalChoicesWithZeroMeasurements) {
  TempDir td;
  const std::string cpath = (td.path / "algo.cache").string();
  tune::set_reps(1);

  EngineOptions opts;
  opts.tune = TuneMode::kCached;
  opts.algo_cache = cpath;
  const auto before = tune::stats();
  auto p1 = compile_tiny(opts);
  const auto after_cold = tune::stats();
  EXPECT_GT(after_cold.measure_runs, before.measure_runs)
      << "cold cache must microbenchmark";
  ASSERT_TRUE(fs::exists(cpath)) << "tuning must persist the cache";

  // Drop the in-memory state and replay from disk: identical choices,
  // ZERO measurement runs (the acceptance counter).
  tune::cache_for(cpath).reload();
  auto p2 = compile_tiny(opts);
  const auto after_warm = tune::stats();
  EXPECT_EQ(after_warm.measure_runs, after_cold.measure_runs)
      << "warm-cache compile must not microbenchmark";
  EXPECT_GT(after_warm.cache_hits, after_cold.cache_hits);
  EXPECT_EQ(p1->str(), p2->str());

  // The replayed plan runs and matches the first compile bit for bit.
  Rng rng(11);
  Tensor x = random_input({kBatch, 3, kHw, kHw}, rng);
  ExecContext c1(p1), c2(p2);
  Tensor o1 = c1.run(x), o2 = c2.run(x);
  ASSERT_EQ(o1.numel(), o2.numel());
  EXPECT_EQ(std::memcmp(o1.data(), o2.data(), o1.numel() * sizeof(float)), 0);
  for (size_t i = 0; i < o1.numel(); ++i) EXPECT_TRUE(std::isfinite(o1.at(i)));
  tune::set_reps(3);
}

TEST(Tune, CpuFeatureMaskInvalidatesEntries) {
  if (kernels::detected_cpu_features() == 0)
    GTEST_SKIP() << "host has no maskable CPU features";
  TempDir td;
  AlgoCache cache((td.path / "algo.cache").string());
  AlgoChoice c;
  c.backend = "scalar";
  cache.insert("conv:test", c, 1.0);
  AlgoChoice out;
  EXPECT_TRUE(cache.lookup("conv:test", &out));
  // Narrow the feature mask: the host stamp changes, so every decision
  // taken under the old mask is invalid (a tuned backend may no longer be
  // selectable, and relative speeds shifted).
  kernels::set_cpu_feature_mask(0);
  EXPECT_FALSE(cache.lookup("conv:test", &out));
  EXPECT_EQ(cache.size(), size_t{0});
  kernels::set_cpu_feature_mask(~0u);
}

TEST(Tune, StaleGeometryStampDiscardsEntriesWithoutError) {
  TempDir td;
  const std::string cpath = (td.path / "algo.cache").string();
  {
    AlgoCache cache(cpath);
    AlgoChoice c;
    c.strategy = AlgoChoice::Strategy::kIm2col;
    c.tile = {64, 256, 256};
    cache.insert("conv:stale", c, 2.5);
    cache.save();
  }
  // Forge a different packing geometry (as if kPanelLayoutVersion bumped):
  // structurally valid file, wrong host. Entries are discarded, not
  // migrated, and no error is raised.
  std::string text = read_text(cpath);
  const size_t pos = text.find("geom panel=");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::strlen("geom panel="), "geom panel=99");
  write_text(cpath, restamp_cache(text));
  AlgoCache stale(cpath);
  AlgoChoice out;
  EXPECT_FALSE(stale.lookup("conv:stale", &out));
  EXPECT_EQ(stale.size(), size_t{0});
}

TEST(Tune, CorruptCacheFilesRejectedWithTypedErrors) {
  TempDir td;
  const std::string cpath = (td.path / "algo.cache").string();
  const auto fresh = [&] {
    AlgoCache cache(cpath);
    AlgoChoice c;
    cache.insert("conv:x", c, 1.0);
    cache.save();
    return read_text(cpath);
  };
  const auto expect_code = [&](const std::string& text, TuneError::Code want) {
    write_text(cpath, text);
    AlgoCache cache(cpath);
    try {
      cache.size();
      FAIL() << "corrupt cache accepted";
    } catch (const TuneError& e) {
      EXPECT_EQ(static_cast<int>(e.code()), static_cast<int>(want))
          << e.what();
    }
  };
  const std::string good = fresh();

  std::string bad_magic = good;
  bad_magic.replace(0, 7, "BOGUSXX");
  expect_code(restamp_cache(bad_magic), TuneError::Code::kBadMagic);

  std::string bad_version = good;
  bad_version.replace(8, 1, "9");
  expect_code(restamp_cache(bad_version), TuneError::Code::kBadVersion);

  std::string bad_crc = good;
  bad_crc[bad_crc.find("entry")] ^= 1;  // flip a byte, keep the old crc
  expect_code(bad_crc, TuneError::Code::kBadCrc);

  expect_code(good.substr(0, good.size() / 2),  // no trailing crc line
              TuneError::Code::kBadCrc);

  std::string bad_line = good;
  bad_line.insert(bad_line.find("entry"), "mystery line\n");
  expect_code(restamp_cache(bad_line), TuneError::Code::kParse);

  std::string bad_entry = good;
  const size_t ep = bad_entry.find("entry conv:x");
  bad_entry.replace(ep, std::strlen("entry conv:x"), "entry conv:x broken");
  expect_code(restamp_cache(bad_entry), TuneError::Code::kParse);
}

TEST(Tune, ConcurrentReadersShareOneWarmCache) {
  TempDir td;
  const std::string cpath = (td.path / "algo.cache").string();
  tune::set_reps(1);
  EngineOptions opts;
  opts.tune = TuneMode::kCached;
  opts.algo_cache = cpath;
  auto warm = compile_tiny(opts);  // populates the cache
  const auto before = tune::stats();

  // Two threads compile against the same warm cache concurrently — the
  // TSan leg proves the shared AlgoCache is race-free; both must be pure
  // replays (zero measurements) and agree with the warm plan.
  std::shared_ptr<const Plan> plans[2];
  std::thread t0([&] { plans[0] = compile_tiny(opts); });
  std::thread t1([&] { plans[1] = compile_tiny(opts); });
  t0.join();
  t1.join();
  const auto after = tune::stats();
  EXPECT_EQ(after.measure_runs, before.measure_runs);
  EXPECT_EQ(plans[0]->str(), warm->str());
  EXPECT_EQ(plans[1]->str(), warm->str());
  tune::set_reps(3);
}

TEST(Tune, CacheAppliedChoiceBitIdenticalToForcedChoice) {
  // For EVERY candidate of a representative conv shape: compiling with the
  // choice delivered through the cache must produce output bit-identical
  // to compiling with the choice forced directly — the cache is a pure
  // transport, never a semantic layer.
  Rng rng(29);
  auto model = std::make_unique<Sequential>("probe");
  model->emplace<Conv2d>("conv", 4, 6, 3, 1, 1, Init::kHe, rng);
  const size_t batch = 4, hw = 12;
  Tensor x = random_input({batch, 4, hw, hw}, rng);

  tune::TuneShape shape;
  shape.is_conv = true;
  shape.geom = ConvGeom{4, hw, hw, 3, 1, 1};
  shape.out_c = 6;
  shape.batch = batch;
  shape.chunks = std::min<size_t>(
      batch, static_cast<size_t>(std::max(1, parallel_threads())));
  shape.plan_backend = kernels::default_backend()->name;

  TempDir td;
  size_t idx = 0;
  for (const AlgoChoice& cand : tune::candidates(shape)) {
    EngineOptions forced;
    forced.force_choices = {cand};
    auto pf = Plan::compile(*model, batch, 4, hw, hw, forced);

    const std::string cpath =
        (td.path / ("cand" + std::to_string(idx++) + ".cache")).string();
    AlgoCache& cache = tune::cache_for(cpath);
    cache.insert(tune::shape_key(shape), cand, 1.0);
    EngineOptions cached;
    cached.tune = TuneMode::kCached;
    cached.algo_cache = cpath;
    const auto before = tune::stats();
    auto pc = Plan::compile(*model, batch, 4, hw, hw, cached);
    EXPECT_EQ(tune::stats().measure_runs, before.measure_runs);

    EXPECT_EQ(pf->str(), pc->str());
    ExecContext cf(pf), cc(pc);
    Tensor of = cf.run(x), oc = cc.run(x);
    ASSERT_EQ(of.numel(), oc.numel());
    EXPECT_EQ(std::memcmp(of.data(), oc.data(), of.numel() * sizeof(float)),
              0)
        << "candidate " << idx - 1 << " diverges between forced and cached";
    for (size_t i = 0; i < of.numel(); ++i)
      ASSERT_TRUE(std::isfinite(of.at(i)));
  }
}

TEST(Tune, TunedChoicesSurviveBlobSaveLoad) {
  // A plan carrying explicit non-default choices (named backend, tile,
  // chunk override) round-trips through the v2 blob: identical dump,
  // bit-identical output, zero re-tuning at load.
  TempDir td;
  AlgoChoice ch;
  ch.strategy = AlgoChoice::Strategy::kIm2col;
  ch.backend = "scalar";
  ch.tile = {0, 256, 256};
  ch.chunk = 1;
  EngineOptions opts;
  opts.backend = "scalar";
  opts.name = "tuned";
  opts.force_choices = {ch};
  auto p1 = compile_tiny(opts);

  const std::string bpath = (td.path / "tuned.plan").string();
  const auto before = tune::stats();
  plan::save(*p1, bpath);
  auto p2 = plan::load(bpath);
  EXPECT_EQ(tune::stats().measure_runs, before.measure_runs)
      << "blob load must replay, never re-tune";
  EXPECT_EQ(p1->str(), p2->str());
  // The loaded steps carry the exact choice.
  bool saw_choice = false;
  for (const Step& st : p2->steps()) {
    if (st.kind != OpKind::kConv) continue;
    ASSERT_NE(st.be, nullptr);
    EXPECT_STREQ(st.be->name, "scalar");
    EXPECT_EQ(st.tile.kc, 256u);
    EXPECT_EQ(st.chunk, 1u);
    saw_choice = true;
  }
  EXPECT_TRUE(saw_choice);

  Rng rng(17);
  Tensor x = random_input({kBatch, 3, kHw, kHw}, rng);
  ExecContext c1(p1), c2(p2);
  Tensor o1 = c1.run(x), o2 = c2.run(x);
  EXPECT_EQ(std::memcmp(o1.data(), o2.data(), o1.numel() * sizeof(float)), 0);
}

TEST(Tune, PlanDumpShowsFullChoice) {
  AlgoChoice ch;
  ch.strategy = AlgoChoice::Strategy::kIm2col;
  ch.backend = "scalar";
  ch.tile = {0, 128, 512};
  ch.chunk = 2;
  EngineOptions opts;
  opts.force_choices = {ch};
  auto p = compile_tiny(opts);
  const std::string dump = p->str();
  // Strategy, backend, tile and chunk are all visible per step.
  EXPECT_NE(dump.find("im2col"), std::string::npos);
  EXPECT_NE(dump.find("tile=0x128x512"), std::string::npos);
  EXPECT_NE(dump.find("chunk=2"), std::string::npos);
  if (kernels::default_backend() != kernels::find_backend("scalar")) {
    EXPECT_NE(dump.find("be=scalar"), std::string::npos);
  }
}

TEST(Tune, ForcedShiftOnIneligibleGeometryFallsBackToIm2col) {
  // Strided conv can never run the shifted strategy; a forced kShiftGemm
  // must fall back instead of compiling an unrunnable plan.
  Rng rng(5);
  auto model = std::make_unique<Sequential>("stride");
  model->emplace<Conv2d>("conv", 3, 4, 3, 2, 1, Init::kHe, rng);
  AlgoChoice ch;
  ch.strategy = AlgoChoice::Strategy::kShiftGemm;
  EngineOptions opts;
  opts.force_choices = {ch};
  auto p = Plan::compile(*model, 2, 3, 12, 12, opts);
  EXPECT_FALSE(p->steps()[0].shift_gemm);
  p->verify();
}

}  // namespace
}  // namespace alf
