// WeightedScheduler: the cross-model arbitration layer.
//
// Deficit-round-robin-style weighted fair queuing over the hosted models,
// in its simplest exact form: track the images each model has been served
// and always pick the eligible model with the smallest weight-normalized
// service (served / weight — a virtual time). Under saturation the
// dispatched-image shares converge to weight_i / sum(weights); an idle
// model never blocks a backlogged one (ineligible models are simply
// skipped), and a model returning from idle re-enters at its accumulated
// virtual time, so it cannot starve the others by hoarding credit.
//
// THREADING: no lock of its own — like ModelQueue, the owning server's
// Mutex is threaded through every state-touching method and enforced with
// ALF_REQUIRES(m) (core/thread_annotations.hpp), so "runs under the
// server's mutex" is checked by clang -Wthread-safety, not trusted.
// Eligibility arrives as a bitmap computed by the caller while it holds
// the lock — a predicate callable would hide guarded reads inside a
// lambda body, which the per-function analysis cannot see into.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.hpp"
#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"

namespace alf::serve {

class WeightedScheduler {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Registers the next model (index = registration order).
  void add([[maybe_unused]] Mutex& m, double weight) ALF_REQUIRES(m) {
    ALF_CHECK(weight > 0.0) << "scheduler: weight must be positive";
    entries_.push_back(Entry{weight, 0});
  }

  size_t size([[maybe_unused]] Mutex& m) const ALF_REQUIRES(m) {
    return entries_.size();
  }

  /// Picks the eligible model with the smallest virtual time; ties go to
  /// the lowest index (deterministic — the service counters themselves
  /// rotate the pick). `eligible[i] != 0` marks model i pickable (entries
  /// past eligible.size() are skipped); returns npos when nothing is.
  size_t pick([[maybe_unused]] Mutex& m,
              const std::vector<uint8_t>& eligible) const ALF_REQUIRES(m) {
    size_t best = npos;
    double best_vt = 0.0;
    for (size_t i = 0; i < entries_.size() && i < eligible.size(); ++i) {
      if (eligible[i] == 0) continue;
      const double vt =
          static_cast<double>(entries_[i].served) / entries_[i].weight;
      if (best == npos || vt < best_vt) {
        best = i;
        best_vt = vt;
      }
    }
    return best;
  }

  /// Accounts `images` dispatched for model `idx`.
  void charge([[maybe_unused]] Mutex& m, size_t idx, size_t images)
      ALF_REQUIRES(m) {
    ALF_CHECK(idx < entries_.size());
    entries_[idx].served += images;
  }

  /// Images served so far (the scheduler's own view; tests compare shares).
  uint64_t served([[maybe_unused]] Mutex& m, size_t idx) const
      ALF_REQUIRES(m) {
    ALF_CHECK(idx < entries_.size());
    return entries_[idx].served;
  }

 private:
  struct Entry {
    double weight = 1.0;
    uint64_t served = 0;  ///< images dispatched so far
  };
  std::vector<Entry> entries_;
};

}  // namespace alf::serve
