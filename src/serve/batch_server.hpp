// BatchServer: single-model facade over the multi-tenant ModelServer.
//
// The original batched inference server owned one compiled Engine, one
// request queue, and one dispatcher thread. That exact API survives here
// as the 1-model special case of ModelServer (model_server.hpp): the
// constructor registers the engine's Plan as the only hosted model on a
// 1-worker pool, and every method forwards. Semantics are unchanged —
// dynamic batching per tick (max_wait_us, early-out on a full batch,
// longest-prefix packing), admission control (max_queue + shed policy),
// pause/resume backlog staging, drain-on-stop, coherent stats snapshots —
// because they now live one layer down, shared with the multi-model case.
//
// New since the facade: Config::shed selects what happens at max_queue
// (kReject fails the new submit with QueueFullError; kDropOldest admits it
// and sheds the oldest queued request, whose future completes with
// QueueFullError and stats().dropped_oldest counts it), and submits may
// carry a per-request deadline_us latency budget — requests still queued
// past it are shed before batch formation with DeadlineExpiredError,
// counted in stats().expired.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>

#include "engine/engine.hpp"
#include "serve/model_server.hpp"

namespace alf {

/// Owns a compiled Engine plus the serving machinery around its Plan.
class BatchServer {
 public:
  using Callback = ModelServer::Callback;
  using ErrorCallback = ModelServer::ErrorCallback;
  using SubmitOptions = ModelServer::SubmitOptions;

  struct Config {
    using ShedPolicy = alf::ShedPolicy;
    /// How long a tick waits for the queue to fill once it holds at least
    /// one request. 0 dispatches whatever is queued immediately (lowest
    /// lone-request latency, least batching).
    uint64_t max_wait_us = 200;
    /// Admission control: maximum requests the queue may hold. 0 =
    /// unbounded, the pre-existing behavior.
    size_t max_queue = 0;
    /// What a submit() arriving at a full queue does: kReject fails it
    /// fast with QueueFullError; kDropOldest admits it and sheds the
    /// oldest queued request instead.
    ShedPolicy shed = ShedPolicy::kReject;
    /// Start with the dispatcher paused (see pause()/resume()); used by
    /// tests and replay harnesses to stage a backlog deterministically.
    bool start_paused = false;
  };

  /// Takes ownership of the compiled engine — precisely, of its shared
  /// Plan: the engine's own ExecContext arena is released here (the
  /// dispatch worker runs its own context; see engine()). Starts the
  /// dispatcher. (Two overloads instead of a defaulted Config argument: a
  /// nested class's member initializers are not available for in-class
  /// default arguments of its enclosing class.)
  explicit BatchServer(Engine engine);
  BatchServer(Engine engine, Config cfg);

  /// Hosts an already-compiled (possibly shared) Plan directly — the
  /// post-split spelling; no transient ExecContext is ever allocated.
  explicit BatchServer(std::shared_ptr<const Plan> plan);
  BatchServer(std::shared_ptr<const Plan> plan, Config cfg);
  ~BatchServer() = default;  // ModelServer drains + joins

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueues `x` [n, Ci, H, W] (1 <= n <= engine().batch()); `done` fires
  /// once with the logits. Throws CheckError on shape mismatch or after
  /// stop(), QueueFullError when admission control refuses the request
  /// (Config::max_queue under kReject; the callback is never invoked in
  /// either case). `fail` (optional overload) receives the typed error if
  /// the request is accepted and later shed (kDropOldest / deadline).
  void submit(Tensor x, Callback done);
  void submit(Tensor x, Callback done, ErrorCallback fail,
              SubmitOptions opts = {});

  /// Future-returning forms. Synchronous errors (shape misuse, kReject
  /// overload) are thrown from the call; shed-after-accept errors
  /// (QueueFullError under kDropOldest, DeadlineExpiredError past
  /// opts.deadline_us) arrive through the future.
  std::future<Tensor> submit(Tensor x);
  std::future<Tensor> submit(Tensor x, SubmitOptions opts);

  /// Suspends batch formation: a batch already packed keeps executing, but
  /// once pause() returns no new batch forms — queued and newly submitted
  /// requests are held (an open tick waiting for batch-mates is abandoned
  /// back to the queue). resume() restarts dispatch. stop() overrides a
  /// pause to drain.
  void pause();
  void resume();

  /// Drains the queue, then joins the dispatcher. Idempotent; called by
  /// the destructor.
  void stop();

  /// Requests currently queued (not yet dispatched).
  size_t pending() const;

  /// Coherent snapshot: one struct copied under the queue mutex, so the
  /// conservation identity accepted == completed + dropped_oldest +
  /// expired + queued + in_flight holds exactly (see serve/types.hpp).
  ServeStats stats() const;

  /// Facade view of the hosted model, materialized lazily on first call
  /// (an Engine owns an ExecContext arena the dispatch path never touches
  /// — the workers run their own contexts — so the server does not keep
  /// one alive unless someone asks). Shares the hosted Plan; thread-safe.
  const Engine& engine() const;
  /// The hosted compiled plan (what dispatch actually runs).
  const std::shared_ptr<const Plan>& plan() const { return plan_; }
  const Config& config() const { return cfg_; }

 private:
  static constexpr const char* kModel = "default";

  std::shared_ptr<const Plan> plan_;
  mutable std::once_flag engine_once_;
  mutable std::unique_ptr<Engine> engine_;  ///< engine() accessor only
  Config cfg_;
  ModelServer server_;
};

}  // namespace alf
