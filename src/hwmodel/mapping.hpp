// Row-stationary mapping of a conv workload onto the PE array + memory
// hierarchy, and its analytical evaluation (Timeloop-style access counting).
//
// Spatial scheme (row-stationary, Eyeriss ISCA'16): the R filter rows of a
// PE set span PE-array rows; `e` output rows span columns; whole sets are
// replicated across the array over `ms` filters and `cs` input channels.
// Temporal scheme: three tiling levels — per-PE register file (t0), global
// buffer (t1) and DRAM (t2) — over the dims {M, C, P, Q, N}. S stays
// innermost in the RF; R is fully spatial; P is not tiled at the RF level
// (it is covered spatially by `e` and temporally above).
#pragma once

#include <string>

#include "hwmodel/arch.hpp"
#include "hwmodel/workload.hpp"

namespace alf {

/// A complete mapping decision.
struct Mapping {
  // Spatial factors.
  size_t e = 1;   ///< output rows per PE set (across columns)
  size_t ms = 1;  ///< set replication over output channels
  size_t cs = 1;  ///< set replication over input channels

  /// Temporal tile factors of one level for {M, C, P, Q, N}.
  struct Levels {
    size_t m = 1, c = 1, p = 1, q = 1, n = 1;
  };
  Levels t0;  ///< register-file level (t0.p must stay 1)
  Levels t1;  ///< global-buffer level
  Levels t2;  ///< DRAM level

  /// PEs occupied by the mapping.
  size_t used_pes(const ConvWorkload& w) const { return w.r * e * ms * cs; }

  /// Covered (over-approximated) dimension products, >= true dims.
  size_t covered_m() const { return ms * t0.m * t1.m * t2.m; }
  size_t covered_c() const { return cs * t0.c * t1.c * t2.c; }
  size_t covered_p() const { return e * t1.p * t2.p; }
  size_t covered_q() const { return t0.q * t1.q * t2.q; }
  size_t covered_n() const { return t0.n * t1.n * t2.n; }

  std::string to_string() const;
};

/// Access counts and derived metrics of a mapping on a workload.
struct LayerEval {
  std::string name;
  // Energy per category in units of one RF read. The register category
  // includes inter-PE (NoC) traffic, which in row-stationary dataflow is
  // register-to-register forwarding.
  double e_rf = 0.0;
  double e_gb = 0.0;
  double e_dram = 0.0;
  double energy() const { return e_rf + e_gb + e_dram; }

  double cycles = 0.0;        ///< normalized latency (1 word/cycle register BW)
  double utilization = 0.0;   ///< used PEs / total PEs
  unsigned long long dram_words = 0;
  unsigned long long gb_words = 0;
  Mapping mapping;
  bool valid = false;
};

/// True if the mapping fits the array, the RF and the GB, and covers the
/// whole workload.
bool mapping_valid(const ConvWorkload& w, const EyerissConfig& arch,
                   const Mapping& map);

/// Evaluates a (valid) mapping; returns valid=false otherwise.
LayerEval evaluate_mapping(const ConvWorkload& w, const EyerissConfig& arch,
                           const Mapping& map);

}  // namespace alf
