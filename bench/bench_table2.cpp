// Table II — pruned CNNs on the CIFAR-10 substitute.
//
//   Method          Policy       Params        OPs[1e6]      Acc[%]
//   Plain-20        --           0.27M         81.1          90.5
//   ResNet-20       --           0.27M         81.1          91.3
//   AMC             RL-Agent     0.12M (-55%)  39.4 (-51%)   90.2
//   FPGM            Handcrafted  --            36.2 (-54%)   90.6
//   ALF (ours)      Automatic    0.07M (-70%)  31.5 (-61%)   89.4
//
// Params/OPs are computed on the full-scale (width-16, 32x32) architectures
// by carrying the per-layer compression measured at reduced scale onto the
// analytic cost model. Accuracy is measured on the reduced-scale synthetic
// task — compare *relative* drops and the ranking, not absolute values.
#include <cstdio>

#include "bench_common.hpp"
#include "prune/amc.hpp"
#include "prune/finetune.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

struct Row {
  std::string method, policy;
  unsigned long long params, ops;
  double acc;
};

/// Trains a fresh vanilla model deterministically (same seeds => same model).
std::unique_ptr<Sequential> train_vanilla(
    const Scale& s, bool residual, const SyntheticImageDataset& train,
    const SyntheticImageDataset& test, double* acc) {
  Rng rng(11);
  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;
  auto maker = standard_conv_maker(mc.init, &rng);
  auto model = residual ? build_resnet20(mc, rng, maker)
                        : build_plain20(mc, rng, maker);
  const auto hist = Trainer(*model, train, test, train_config(s)).run();
  if (acc != nullptr) *acc = hist.back().test_acc;
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::printf("Table II: pruned CNNs on CIFAR-10 substitute (scale=%s)\n\n",
              s.name);

  const DataConfig task = cifar_task(s);
  SyntheticImageDataset train(task, s.train_n, 1);
  SyntheticImageDataset test(task, s.test_n, 2);

  // Full-scale analytic costs (paper numbers).
  const ModelCost plain_cost = cost_plain20();
  const ModelCost resnet_cost = cost_resnet20();
  const unsigned long long base_params = resnet_cost.total_params();
  const unsigned long long base_ops = resnet_cost.total_ops();

  std::vector<Row> rows;

  // --- Plain-20 / ResNet-20 references. ---
  double plain_acc = 0.0, resnet_acc = 0.0;
  train_vanilla(s, /*residual=*/false, train, test, &plain_acc);
  std::printf("trained Plain-20 (acc %.1f%%)\n", 100 * plain_acc);
  std::fflush(stdout);
  rows.push_back({"Plain-20", "-", plain_cost.total_params(),
                  plain_cost.total_ops(), plain_acc});
  auto resnet = train_vanilla(s, /*residual=*/true, train, test, &resnet_acc);
  std::printf("trained ResNet-20 (acc %.1f%%)\n", 100 * resnet_acc);
  std::fflush(stdout);
  rows.push_back({"ResNet-20", "-", base_params, base_ops, resnet_acc});

  // --- AMC-lite (learning-based policy). ---
  {
    auto convs = collect_convs(*resnet);
    const ModelCost scaled_cost = cost_resnet20(10, s.width, s.hw);
    AmcConfig acfg;
    acfg.target_ops_frac = 0.55;
    const AmcResult res = amc_search(*resnet, convs, scaled_cost, test, acfg);
    PrunePlan plan = per_layer_plan(convs, res.keep_fracs, acfg.rule);
    FinetuneConfig fcfg;
    fcfg.epochs = std::max<size_t>(2, s.epochs / 4);
    fcfg.batch_size = s.batch;
    const double acc = finetune_pruned(*resnet, convs, plan, train, test, fcfg);
    const ModelCost pruned = apply_filter_pruning(
        resnet_cost, keep_by_name(convs, res.keep_fracs), "AMC");
    rows.push_back({"AMC", "RL-Agent", pruned.total_params(),
                    pruned.total_ops(), acc});
    std::printf("AMC done (ops frac %.2f, acc %.1f%%)\n", res.ops_frac,
                100 * acc);
    std::fflush(stdout);
  }

  // --- FPGM (handcrafted geometric-median pruning). ---
  {
    auto resnet2 = train_vanilla(s, /*residual=*/true, train, test, nullptr);
    auto convs = collect_convs(*resnet2);
    // Uniform keep rate: OPs scale ~keep^2 through chained conv layers
    // (~45% reduction), slightly gentler than ALF's operating point so the
    // paper's ordering (ALF most compressed) is reproducible at this scale.
    const double keep = 0.75;
    PrunePlan plan = uniform_plan(convs, keep, PruneRule::kFpgm);
    FinetuneConfig fcfg;
    fcfg.epochs = std::max<size_t>(2, s.epochs / 4);
    fcfg.batch_size = s.batch;
    const double acc =
        finetune_pruned(*resnet2, convs, plan, train, test, fcfg);
    std::map<std::string, double> keeps;
    for (size_t i = 1; i < convs.size(); ++i) keeps[convs[i]->name()] = keep;
    const ModelCost pruned = apply_filter_pruning(resnet_cost, keeps, "FPGM");
    rows.push_back({"FPGM", "Handcrafted", pruned.total_params(),
                    pruned.total_ops(), acc});
    std::printf("FPGM done (acc %.1f%%)\n", 100 * acc);
    std::fflush(stdout);
  }

  // --- ALF (ours, automatic). ---
  std::map<std::string, double> alf_fracs;
  {
    Rng rng(11);
    ModelConfig mc;
    mc.base_width = s.width;
    mc.in_hw = s.hw;
    AlfConfig acfg = alf_config(s);
    std::vector<AlfConv*> blocks;
    auto model =
        build_resnet20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
    const auto hist = Trainer(*model, train, test, train_config(s)).run();
    alf_fracs = fractions_by_name(blocks);
    const ModelCost compressed =
        apply_alf_fractions(resnet_cost, alf_fracs, "ALF-ResNet-20");
    rows.push_back({"ALF (ours)", "Automatic", compressed.total_params(),
                    compressed.total_ops(), hist.back().test_acc});
    std::printf("ALF done (remaining %.1f%%, acc %.1f%%)\n",
                100 * hist.back().remaining_filters,
                100 * hist.back().test_acc);
    std::fflush(stdout);

    Table detail("ALF per-layer compression (Ccode' vs Co, Eq. 2 bound)");
    detail.set_header({"layer", "Co", "Ccode'", "Ccode,max", "kept[%]"});
    for (AlfConv* b : blocks) {
      const CompressedConvDesc d = describe_block(*b);
      detail.add_row({d.name, Table::fmt_int(static_cast<long long>(d.co)),
                      Table::fmt_int(static_cast<long long>(d.ccode)),
                      Table::fmt_int(static_cast<long long>(d.ccode_max)),
                      Table::fmt(100.0 * d.ccode / d.co, 1)});
    }
    std::printf("\n");
    detail.print();
  }

  Table table("Table II — CIFAR-10 substitute, conv+fc accounting");
  table.set_header(
      {"Method", "Policy", "Params", "OPs[1e6]", "Acc[%] (scaled task)"});
  for (const Row& r : rows) {
    table.add_row({r.method, r.policy, params_cell(r.params, base_params),
                   ops_cell(r.ops, base_ops), Table::fmt(100.0 * r.acc, 1)});
  }
  std::printf("\n");
  table.print();
  table.write_csv("table2.csv");

  std::printf(
      "\nPaper reference: ALF 0.07M (-70%%) params, 31.5 (-61%%) MOPs, "
      "acc drop 1.9%% vs ResNet-20.\n");
  return 0;
}
