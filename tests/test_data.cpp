#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "data/synthetic.hpp"

namespace alf {
namespace {

TEST(Dataset, SizesAndLabels) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 100, /*split_seed=*/1);
  EXPECT_EQ(ds.size(), 100u);
  std::map<int, int> counts;
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.label(i), 0);
    EXPECT_LT(ds.label(i), static_cast<int>(cfg.classes));
    counts[ds.label(i)]++;
  }
  // Round-robin labelling keeps classes balanced.
  for (const auto& [label, count] : counts) EXPECT_EQ(count, 10);
}

TEST(Dataset, DeterministicForSameSeeds) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset a(cfg, 20, 5), b(cfg, 20, 5);
  Tensor xa, xb;
  std::vector<int> ya, yb;
  a.full_batch(xa, ya);
  b.full_batch(xb, yb);
  EXPECT_EQ(ya, yb);
  for (size_t i = 0; i < xa.numel(); ++i) EXPECT_EQ(xa.at(i), xb.at(i));
}

TEST(Dataset, SplitSeedChangesSamplesNotTask) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset train(cfg, 20, 5), test(cfg, 20, 6);
  Tensor xa, xb;
  std::vector<int> ya, yb;
  train.full_batch(xa, ya);
  test.full_batch(xb, yb);
  EXPECT_EQ(ya, yb);  // same round-robin labels
  bool differs = false;
  for (size_t i = 0; i < xa.numel() && !differs; ++i)
    differs = xa.at(i) != xb.at(i);
  EXPECT_TRUE(differs);
}

TEST(Dataset, PixelsBounded) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 10, 3);
  Tensor x;
  std::vector<int> y;
  ds.full_batch(x, y);
  EXPECT_EQ(x.shape(), (Shape{10, 3, 32, 32}));
  for (size_t i = 0; i < x.numel(); ++i) {
    EXPECT_GE(x.at(i), -2.0f);
    EXPECT_LE(x.at(i), 2.0f);
  }
}

TEST(Dataset, ClassesAreSeparable) {
  // Same-class images correlate more with each other than cross-class —
  // the minimal condition for the task to be learnable.
  DataConfig cfg = DataConfig::cifar_like();
  cfg.noise_std = 0.1f;
  cfg.max_shift = 0;
  SyntheticImageDataset ds(cfg, 40, 7);
  Tensor x;
  std::vector<int> y;
  ds.full_batch(x, y);
  const size_t numel = 3 * 32 * 32;
  auto corr = [&](size_t a, size_t b) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    const float* pa = x.data() + a * numel;
    const float* pb = x.data() + b * numel;
    for (size_t i = 0; i < numel; ++i) {
      dot += static_cast<double>(pa[i]) * pb[i];
      na += static_cast<double>(pa[i]) * pa[i];
      nb += static_cast<double>(pb[i]) * pb[i];
    }
    return dot / std::sqrt(na * nb);
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (size_t a = 0; a < 40; ++a) {
    for (size_t b = a + 1; b < 40; ++b) {
      if (y[a] == y[b]) {
        same += corr(a, b);
        ++same_n;
      } else {
        cross += corr(a, b);
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.1);
}

TEST(BatchIterator, CoversDatasetOncePerEpoch) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 25, 1);
  BatchIterator it(ds, 8, /*seed=*/3);
  Tensor x;
  std::vector<int> y;
  size_t total = 0, batches = 0;
  while (it.next(x, y)) {
    total += y.size();
    ++batches;
  }
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(batches, 4u);  // 8+8+8+1
  EXPECT_EQ(it.batches_per_epoch(), 4u);
}

TEST(BatchIterator, ShuffleChangesOrderAcrossEpochs) {
  DataConfig cfg = DataConfig::cifar_like();
  cfg.classes = 5;
  SyntheticImageDataset ds(cfg, 30, 1);
  BatchIterator it(ds, 30, /*seed=*/3);
  Tensor x;
  std::vector<int> y1, y2;
  it.next(x, y1);
  it.reset();
  it.next(x, y2);
  EXPECT_NE(y1, y2);
}

TEST(BatchIterator, NoShuffleKeepsOrder) {
  DataConfig cfg = DataConfig::cifar_like();
  SyntheticImageDataset ds(cfg, 12, 1);
  BatchIterator it(ds, 12, /*seed=*/3, /*shuffle=*/false);
  Tensor x;
  std::vector<int> y;
  it.next(x, y);
  for (size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], ds.label(i));
}

TEST(DataConfig, ImagenetLikeHasMoreClasses) {
  const DataConfig c = DataConfig::cifar_like();
  const DataConfig i = DataConfig::imagenet_like();
  EXPECT_GT(i.classes, c.classes);
}

}  // namespace
}  // namespace alf
