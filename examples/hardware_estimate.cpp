// Estimating energy and latency of a CNN on an Eyeriss-like accelerator —
// the hardware-model workflow of the paper's Sec. IV-B as a standalone tool.
//
// Takes a model name and optional compression fraction, maps every conv
// layer with the row-stationary mapper, and prints the per-layer energy
// breakdown (Register / Global Buffer / DRAM), latency and PE utilization.
//
// Usage: hardware_estimate [plain20|resnet20|resnet18] [keep_fraction]
//   keep_fraction < 1 applies uniform ALF compression to every conv layer.
// Example: hardware_estimate resnet20 0.4
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "alf/deploy.hpp"
#include "core/table.hpp"
#include "hwmodel/mapper.hpp"
#include "models/cost.hpp"

using namespace alf;

int main(int argc, char** argv) {
  std::string model_name = argc > 1 ? argv[1] : "plain20";
  const double keep = argc > 2 ? std::atof(argv[2]) : 1.0;

  ModelCost cost;
  if (model_name == "plain20") {
    cost = cost_plain20();
  } else if (model_name == "resnet20") {
    cost = cost_resnet20();
  } else if (model_name == "resnet18") {
    cost = cost_resnet18_imagenet();
  } else {
    std::fprintf(stderr,
                 "unknown model '%s' (try plain20|resnet20|resnet18)\n",
                 model_name.c_str());
    return 1;
  }

  if (keep < 1.0) {
    std::map<std::string, double> fracs;
    for (const LayerCost& l : cost.layers)
      if (l.kind == "conv") fracs[l.name] = keep;
    cost = apply_alf_fractions(cost, fracs, cost.name + "-ALF");
    std::printf("applied uniform ALF compression: keep %.0f%%\n\n",
                100.0 * keep);
  }

  const EyerissConfig arch;  // the paper's setup: 16x16 PEs, 220-word RFs,
                             // 128KB GB, weights bypassing the GB
  const MapperConfig mapper_cfg;
  const size_t batch = 16;

  std::printf("mapping %s (batch %zu) on Eyeriss: %zux%zu PEs, "
              "%zu-word RFs, %zuKB global buffer...\n\n",
              cost.name.c_str(), batch, arch.pe_rows, arch.pe_cols,
              arch.rf_words_per_pe, arch.gb_words * 2 / 1024);

  Table t(cost.name + " on Eyeriss (energy in RF-read units)");
  t.set_header({"layer", "E_register", "E_globalbuf", "E_dram", "latency",
                "PE util[%]"});
  double e_rf = 0, e_gb = 0, e_dram = 0, cycles = 0;
  for (const LayerCost& l : cost.layers) {
    if (l.kind == "fc") continue;
    const LayerEval ev = map_layer(workload_from_cost(l, batch), arch,
                                   mapper_cfg);
    t.add_row({l.name, Table::fmt(ev.e_rf / 1e6, 2) + "e6",
               Table::fmt(ev.e_gb / 1e6, 2) + "e6",
               Table::fmt(ev.e_dram / 1e6, 2) + "e6",
               Table::fmt(ev.cycles / 1e6, 3) + "e6",
               Table::fmt(100.0 * ev.utilization, 1)});
    e_rf += ev.e_rf;
    e_gb += ev.e_gb;
    e_dram += ev.e_dram;
    cycles += ev.cycles;
  }
  t.print();

  std::printf("\ntotals: energy %.1fe6 RF-reads "
              "(register %.0f%%, global buffer %.0f%%, DRAM %.0f%%), "
              "latency %.2fe6 cycles\n",
              (e_rf + e_gb + e_dram) / 1e6,
              100 * e_rf / (e_rf + e_gb + e_dram),
              100 * e_gb / (e_rf + e_gb + e_dram),
              100 * e_dram / (e_rf + e_gb + e_dram), cycles / 1e6);
  return 0;
}
