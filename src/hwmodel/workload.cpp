#include "hwmodel/workload.hpp"

#include "core/check.hpp"

namespace alf {

ConvWorkload workload_from_cost(const LayerCost& layer, size_t batch) {
  ALF_CHECK(layer.kind != "fc") << layer.name;
  ConvWorkload w;
  w.name = layer.name;
  w.r = layer.k;
  w.s = layer.k;
  w.p = layer.out_h;
  w.q = layer.out_w;
  w.c = layer.ci;
  w.m = layer.co;
  w.n = batch;
  w.stride = layer.stride;
  // Consistency with the analytic MAC count (per image).
  ALF_CHECK_EQ(w.macs() / batch, layer.macs) << layer.name;
  return w;
}

std::vector<ConvWorkload> workloads_from_model(const ModelCost& cost,
                                               size_t batch) {
  std::vector<ConvWorkload> out;
  for (const LayerCost& l : cost.layers) {
    if (l.kind == "fc") continue;
    out.push_back(workload_from_cost(l, batch));
  }
  return out;
}

}  // namespace alf
