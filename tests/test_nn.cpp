#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.hpp"
#include "core/check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace alf {
namespace {

using testing::grad_check;
using testing::random_input;

constexpr double kTol = 2e-2;  // float32 finite differences

TEST(Activations, ParseNames) {
  EXPECT_EQ(parse_act("relu"), Act::kRelu);
  EXPECT_EQ(parse_act("none"), Act::kNone);
  EXPECT_EQ(parse_act("tanh"), Act::kTanh);
  EXPECT_EQ(parse_act("sigmoid"), Act::kSigmoid);
  EXPECT_THROW(parse_act("gelu"), CheckError);
}

TEST(Activations, ForwardValues) {
  Tensor x({4}, {-2.0f, -0.5f, 0.0f, 1.5f});
  Tensor r = act_forward(Act::kRelu, x);
  EXPECT_FLOAT_EQ(r.at(0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(3), 1.5f);
  Tensor t = act_forward(Act::kTanh, x);
  EXPECT_NEAR(t.at(3), std::tanh(1.5), 1e-6);
  Tensor s = act_forward(Act::kSigmoid, x);
  EXPECT_NEAR(s.at(2), 0.5, 1e-6);
  Tensor n = act_forward(Act::kNone, x);
  EXPECT_FLOAT_EQ(n.at(1), -0.5f);
}

class ActivationGrad : public ::testing::TestWithParam<Act> {};

TEST_P(ActivationGrad, MatchesFiniteDifference) {
  Rng rng(42);
  Activation layer("act", GetParam());
  Tensor x = random_input({2, 3, 4, 4}, rng);
  // Shift away from ReLU's kink at zero for numeric stability.
  for (size_t i = 0; i < x.numel(); ++i)
    if (std::abs(x.at(i)) < 0.05f) x.at(i) += 0.1f;
  auto res = grad_check(layer, x, rng);
  EXPECT_LT(res.max_rel_err, kTol);
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGrad,
                         ::testing::Values(Act::kNone, Act::kRelu, Act::kTanh,
                                           Act::kSigmoid));

struct ConvCase {
  size_t n, ci, h, w, co, k, stride, pad;
};

class ConvGrad : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGrad, MatchesFiniteDifference) {
  const ConvCase& c = GetParam();
  Rng rng(c.ci * 100 + c.co * 10 + c.k);
  Conv2d layer("conv", c.ci, c.co, c.k, c.stride, c.pad, Init::kHe, rng);
  Tensor x = random_input({c.n, c.ci, c.h, c.w}, rng);
  auto res = grad_check(layer, x, rng);
  EXPECT_LT(res.max_rel_err, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGrad,
    ::testing::Values(ConvCase{1, 2, 5, 5, 3, 3, 1, 1},
                      ConvCase{2, 3, 6, 6, 4, 3, 2, 1},
                      ConvCase{1, 4, 4, 4, 2, 1, 1, 0},
                      ConvCase{1, 1, 7, 5, 2, 3, 2, 0},
                      ConvCase{2, 2, 8, 8, 2, 5, 1, 2}));

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv("c", 3, 8, 3, 2, 1, Init::kHe, rng);
  Tensor x({2, 3, 32, 32});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 16, 16}));
}

TEST(Conv2d, KnownValue) {
  // Single 2x2 input, 2x2 kernel of ones, no pad: output = sum of inputs.
  Rng rng(1);
  Conv2d conv("c", 1, 1, 2, 1, 0, Init::kHe, rng);
  conv.weight().value.fill(1.0f);
  Tensor x({1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 10.0f);
}

TEST(BatchNorm, NormalizesBatch) {
  Rng rng(3);
  BatchNorm2d bn("bn", 4);
  Tensor x = random_input({4, 4, 5, 5}, rng);
  Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  const size_t hw = 25, n = 4, c = 4;
  for (size_t ch = 0; ch < c; ++ch) {
    double s = 0.0, sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* p = y.data() + (i * c + ch) * hw;
      for (size_t j = 0; j < hw; ++j) {
        s += p[j];
        sq += p[j] * p[j];
      }
    }
    const double mean = s / (n * hw);
    const double var = sq / (n * hw) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(4);
  BatchNorm2d bn("bn", 2);
  Tensor x = random_input({8, 2, 4, 4}, rng);
  for (int i = 0; i < 50; ++i) bn.forward(x, /*train=*/true);
  Tensor ytrain = bn.forward(x, /*train=*/true);
  Tensor yeval = bn.forward(x, /*train=*/false);
  // After many identical batches the running stats converge to the batch
  // stats, so eval output approaches train output.
  double max_diff = 0.0;
  for (size_t i = 0; i < yeval.numel(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(yeval.at(i)) -
                                 ytrain.at(i)));
  EXPECT_LT(max_diff, 0.05);
}

TEST(BatchNorm, GradMatchesFiniteDifference) {
  Rng rng(5);
  BatchNorm2d bn("bn", 3);
  Tensor x = random_input({3, 3, 4, 4}, rng);
  auto res = grad_check(bn, x, rng, /*eps=*/5e-3f);
  EXPECT_LT(res.max_rel_err, 5e-2);
}

TEST(BatchNorm, NoDecayOnScaleShift) {
  Rng rng(6);
  BatchNorm2d bn("bn", 2);
  for (Param* p : bn.params()) EXPECT_FALSE(p->decay);
}

TEST(Linear, GradMatchesFiniteDifference) {
  Rng rng(7);
  Linear fc("fc", 6, 4, Init::kXavier, rng);
  Tensor x = random_input({3, 6}, rng);
  auto res = grad_check(fc, x, rng);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(Linear, BiasApplied) {
  Rng rng(8);
  Linear fc("fc", 2, 2, Init::kXavier, rng);
  fc.weight().value.fill(0.0f);
  fc.bias().value = Tensor({2}, {1.5f, -2.0f});
  Tensor x({1, 2}, {3.0f, 4.0f});
  Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -2.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten f("fl");
  Tensor x({2, 3, 4, 5});
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor gx = f.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(GlobalAvgPool, AveragesAndBackprops) {
  Rng rng(9);
  GlobalAvgPool gap("gap");
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = gap.forward(x, true);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 25.0f);
  auto res = grad_check(gap, testing::random_input({2, 3, 4, 4}, rng), rng);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(MaxPool, SelectsMaxAndRoutesGrad) {
  MaxPool2d mp("mp", 2);
  Tensor x({1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  Tensor y = mp.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 5.0f);
  Tensor g({1, 1, 1, 1}, {2.0f});
  Tensor gx = mp.backward(g);
  EXPECT_FLOAT_EQ(gx.at(1), 2.0f);  // grad goes to the max position
  EXPECT_FLOAT_EQ(gx.at(0), 0.0f);
}

TEST(MaxPool, GradMatchesFiniteDifference) {
  Rng rng(10);
  MaxPool2d mp("mp", 2);
  Tensor x = random_input({2, 2, 4, 4}, rng);
  auto res = grad_check(mp, x, rng, /*eps=*/1e-3f);
  EXPECT_LT(res.max_rel_err, 5e-2);
}

TEST(Sequential, ComposesAndBackprops) {
  Rng rng(11);
  Sequential seq("s");
  seq.emplace<Conv2d>("c1", 2, 3, 3, 1, 1, Init::kHe, rng);
  seq.emplace<Activation>("r", Act::kTanh);  // smooth: reliable FD check
  seq.emplace<Conv2d>("c2", 3, 2, 3, 1, 1, Init::kHe, rng);
  Tensor x = random_input({1, 2, 5, 5}, rng);
  auto res = grad_check(seq, x, rng);
  EXPECT_LT(res.max_rel_err, 6e-2);
  EXPECT_EQ(seq.params().size(), 2u);
}

TEST(Residual, IdentityShortcutGrad) {
  Rng rng(12);
  auto body = std::make_unique<Sequential>("body");
  body->emplace<Conv2d>("c1", 2, 2, 3, 1, 1, Init::kHe, rng);
  ResidualBlock block("res", std::move(body), nullptr);
  Tensor x = random_input({1, 2, 4, 4}, rng);
  auto res = grad_check(block, x, rng);
  EXPECT_LT(res.max_rel_err, 6e-2);
}

TEST(Residual, ProjectionShortcutShape) {
  Rng rng(13);
  auto body = std::make_unique<Sequential>("body");
  body->emplace<Conv2d>("c1", 2, 4, 3, 2, 1, Init::kHe, rng);
  auto sc = std::make_unique<Sequential>("sc");
  sc->emplace<Conv2d>("proj", 2, 4, 1, 2, 0, Init::kHe, rng);
  ResidualBlock block("res", std::move(body), std::move(sc));
  Tensor x = random_input({1, 2, 6, 6}, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 3, 3}));
}

TEST(Residual, OutputIsNonNegative) {
  Rng rng(14);
  auto body = std::make_unique<Sequential>("body");
  body->emplace<Conv2d>("c1", 2, 2, 3, 1, 1, Init::kHe, rng);
  ResidualBlock block("res", std::move(body), nullptr);
  Tensor y = block.forward(random_input({1, 2, 4, 4}, rng), false);
  for (size_t i = 0; i < y.numel(); ++i) EXPECT_GE(y.at(i), 0.0f);
}

TEST(Loss, PerfectPredictionLowLoss) {
  Tensor logits({2, 3});
  logits.at(0, 0) = 100.0f;
  logits.at(1, 2) = 100.0f;
  LossResult res = softmax_cross_entropy(logits, {0, 2});
  EXPECT_LT(res.loss, 1e-3);
  EXPECT_EQ(res.correct, 2u);
}

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits({1, 10});
  LossResult res = softmax_cross_entropy(logits, {4});
  EXPECT_NEAR(res.loss, std::log(10.0), 1e-5);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(15);
  Tensor logits = random_input({4, 5}, rng);
  LossResult res = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (size_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < 5; ++j) s += res.grad_logits.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(16);
  Tensor logits = random_input({3, 4}, rng);
  const std::vector<int> labels{1, 3, 0};
  LossResult res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (size_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits.at(i);
    logits.at(i) = orig + eps;
    const double lp = softmax_cross_entropy(logits, labels).loss;
    logits.at(i) = orig - eps;
    const double lm = softmax_cross_entropy(logits, labels).loss;
    logits.at(i) = orig;
    EXPECT_NEAR(res.grad_logits.at(i), (lp - lm) / (2 * eps), 1e-3);
  }
}

TEST(Loss, AccuracyCounts) {
  Tensor logits({2, 2});
  logits.at(0, 1) = 1.0f;  // predicts 1
  logits.at(1, 0) = 1.0f;  // predicts 0
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1}), 0.0);
}

}  // namespace
}  // namespace alf
