// End-to-end training integration tests on a reduced-scale task: the
// two-player ALF scheme must simultaneously learn the task and prune
// filters, and the baselines (fine-tuning, AMC search) must run end to end.
#include <gtest/gtest.h>

#include "alf/deploy.hpp"
#include "alf/trainer.hpp"
#include "models/zoo.hpp"
#include "prune/amc.hpp"
#include "prune/finetune.hpp"

namespace alf {
namespace {

DataConfig tiny_task() {
  DataConfig cfg;
  cfg.classes = 4;
  cfg.height = 16;
  cfg.width = 16;
  cfg.noise_std = 0.25f;
  cfg.max_shift = 1;
  cfg.seed = 77;
  return cfg;
}

/// Small 4-conv CNN for fast integration tests.
std::unique_ptr<Sequential> tiny_cnn(const ConvMaker& make_conv, Rng& rng,
                                     size_t classes) {
  auto seq = std::make_unique<Sequential>("tiny");
  auto add = [&](const std::string& name, size_t ci, size_t co,
                 size_t stride) {
    seq->add(make_conv(name, ci, co, 3, stride, 1));
    seq->emplace<BatchNorm2d>(name + "_bn", co);
    seq->emplace<Activation>(name + "_relu", Act::kRelu);
  };
  add("c1", 3, 8, 1);
  add("c2", 8, 8, 2);
  add("c3", 8, 16, 2);
  add("c4", 16, 16, 1);
  seq->emplace<GlobalAvgPool>("gap");
  seq->emplace<Flatten>("flat");
  seq->emplace<Linear>("fc", 16, classes, Init::kXavier, rng);
  return seq;
}

TEST(Trainer, VanillaModelLearnsAboveChance) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 160, 1), test(task, 80, 2);
  Rng rng(5);
  auto model = tiny_cnn(standard_conv_maker(Init::kHe, &rng), rng,
                        task.classes);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.task.lr = 0.05f;
  auto hist = Trainer(*model, train, test, cfg).run();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_GT(hist.back().test_acc, 0.5);  // chance = 0.25
  EXPECT_LT(hist.back().train_loss, hist.front().train_loss);
  EXPECT_DOUBLE_EQ(hist.back().remaining_filters, 1.0);  // no ALF blocks
}

TEST(Trainer, AlfModelLearnsAndPrunes) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 160, 1), test(task, 80, 2);
  Rng rng(6);
  // Scaled-task hyper-parameters: the few optimizer steps of a unit test
  // need a faster mask descent than the paper's 200-epoch schedule, and a
  // lower pruning ceiling keeps the narrow test layers functional.
  AlfConfig acfg;
  acfg.lr_ae = 3e-2f;
  acfg.threshold = 0.5f;
  acfg.pr_max = 0.5f;
  std::vector<AlfConv*> blocks;
  auto model =
      tiny_cnn(make_alf_conv_maker(acfg, &rng, &blocks), rng, task.classes);
  ASSERT_EQ(blocks.size(), 4u);

  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.task.lr = 0.05f;
  cfg.ae_steps_per_batch = 3;
  auto hist = Trainer(*model, train, test, cfg).run();
  EXPECT_GT(hist.back().test_acc, 0.4);
  // The sparsity trajectory must be monotonically non-increasing per epoch
  // snapshot... not strictly (recovery is allowed), but must end pruned.
  EXPECT_LT(hist.back().remaining_filters, 1.0);
  EXPECT_GT(hist.back().remaining_filters, 0.0);
  // Autoencoder telemetry populated.
  EXPECT_GT(hist.front().mean_nu_prune, 0.0);
}

TEST(Trainer, AlfDeploymentConsistentAfterTraining) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 80, 1), test(task, 40, 2);
  Rng rng(7);
  AlfConfig acfg;
  acfg.lr_ae = 1e-2f;
  std::vector<AlfConv*> blocks;
  auto model =
      tiny_cnn(make_alf_conv_maker(acfg, &rng, &blocks), rng, task.classes);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  Trainer(*model, train, test, cfg).run();
  // Every trained block deploys to an equivalent dense unit.
  Tensor x;
  std::vector<int> y;
  test.fill_batch({0, 1}, x, y);
  Tensor cur = x;
  for (AlfConv* b : blocks) {
    Tensor probe({2, b->in_channels(), 8, 8});
    Rng prng(17);
    for (size_t i = 0; i < probe.numel(); ++i)
      probe.at(i) = static_cast<float>(prng.uniform(-1, 1));
    EXPECT_LT(deployment_error(*b, probe, rng), 1e-4f) << b->name();
  }
}

TEST(Trainer, BnRecalibrateTracksWeightChange) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 80, 1), test(task, 80, 2);
  Rng rng(12);
  auto model = tiny_cnn(standard_conv_maker(Init::kHe, &rng), rng,
                        task.classes);
  // Populate running stats, then rescale all conv weights: eval-mode outputs
  // now disagree with train-mode until recalibration.
  bn_recalibrate(*model, train);
  for (Conv2d* c : collect_convs(*model)) c->weight().value *= 3.0f;
  Tensor x;
  std::vector<int> y;
  train.fill_batch({0, 1, 2, 3}, x, y);
  Tensor stale = model->forward(x, /*train=*/false);
  bn_recalibrate(*model, train);
  Tensor fresh_eval = model->forward(x, /*train=*/false);
  Tensor train_mode = model->forward(x, /*train=*/true);
  // After recalibration eval is much closer to train-mode behaviour.
  double err_stale = 0.0, err_fresh = 0.0;
  for (size_t i = 0; i < stale.numel(); ++i) {
    err_stale += std::abs(stale.at(i) - train_mode.at(i));
    err_fresh += std::abs(fresh_eval.at(i) - train_mode.at(i));
  }
  EXPECT_LT(err_fresh, err_stale);
}

TEST(Trainer, BnRecalibrateNoopWithoutBn) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 40, 1);
  Rng rng(13);
  Sequential model("nobn");
  model.emplace<Conv2d>("c", 3, 4, 3, 1, 1, Init::kHe, rng);
  model.emplace<GlobalAvgPool>("gap");
  model.emplace<Flatten>("fl");
  model.emplace<Linear>("fc", 4, task.classes, Init::kXavier, rng);
  EXPECT_NO_THROW(bn_recalibrate(model, train));
}

TEST(Trainer, EvaluateIsDeterministic) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 40, 1), test(task, 40, 2);
  Rng rng(8);
  auto model = tiny_cnn(standard_conv_maker(Init::kHe, &rng), rng,
                        task.classes);
  const double a = Trainer::evaluate(*model, test);
  const double b = Trainer::evaluate(*model, test);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Finetune, RecoversAccuracyAndKeepsZeros) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 160, 1), test(task, 80, 2);
  Rng rng(9);
  auto model = tiny_cnn(standard_conv_maker(Init::kHe, &rng), rng,
                        task.classes);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 16;
  Trainer(*model, train, test, tcfg).run();

  auto convs = collect_convs(*model);
  PrunePlan plan = uniform_plan(convs, 0.6, PruneRule::kFpgm);
  FinetuneConfig fcfg;
  fcfg.epochs = 2;
  fcfg.batch_size = 16;
  const double acc = finetune_pruned(*model, convs, plan, train, test, fcfg);
  EXPECT_GT(acc, 0.4);
  // Pruned filters stayed zero through fine-tuning.
  for (size_t i = 0; i < convs.size(); ++i) {
    const Tensor& w = convs[i]->weight().value;
    const size_t fsize = w.numel() / w.dim(0);
    for (size_t f = 0; f < plan.keep[i].size(); ++f) {
      if (plan.keep[i][f]) continue;
      for (size_t j = 0; j < fsize; ++j)
        ASSERT_FLOAT_EQ(w.at(f * fsize + j), 0.0f);
    }
  }
}

TEST(Amc, SearchProducesValidPolicy) {
  const DataConfig task = tiny_task();
  SyntheticImageDataset train(task, 120, 1), test(task, 60, 2);
  Rng rng(10);
  auto model = tiny_cnn(standard_conv_maker(Init::kHe, &rng), rng,
                        task.classes);
  TrainConfig tcfg;
  tcfg.epochs = 3;
  tcfg.batch_size = 16;
  Trainer(*model, train, test, tcfg).run();

  auto convs = collect_convs(*model);
  // Matching analytic cost for the tiny CNN.
  CostBuilder b("tiny", 3, 16, 16);
  b.conv("c1", 8, 3, 1, 1).conv("c2", 8, 3, 2, 1).conv("c3", 16, 3, 2, 1);
  b.conv("c4", 16, 3, 1, 1);
  b.global_pool();
  b.fc("fc", task.classes);
  const ModelCost cost = b.finish();

  AmcConfig acfg;
  acfg.population = 6;
  acfg.iterations = 2;
  acfg.eval_samples = 60;
  acfg.target_ops_frac = 0.6;
  const AmcResult res = amc_search(*model, convs, cost, test, acfg);
  ASSERT_EQ(res.keep_fracs.size(), convs.size());
  for (double f : res.keep_fracs) {
    EXPECT_GE(f, acfg.min_keep);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_GT(res.accuracy, 0.0);
  // Weights restored after the search (candidates were non-destructive).
  double nonzero = 0.0;
  for (Conv2d* c : convs) nonzero += c->weight().value.l2_norm();
  EXPECT_GT(nonzero, 0.0);
}

}  // namespace
}  // namespace alf
