// Socket load generators for the ALFN network front end (src/net/) —
// the measurement half of "serve real traffic over a wire".
//
// Two loop models, deliberately side by side:
//
//   run_closed_loop  C connections, each send -> wait -> send. The classic
//                    benchmark loop — and the classic lie: when the server
//                    stalls, the clients stop offering load, so queueing
//                    delay never shows up in the sample (coordinated
//                    omission). Offered load is capped at what the server
//                    sustains; use it to probe capacity, not tails.
//
//   run_open_loop    Poisson arrivals at a fixed offered rate, DRAWN AHEAD
//                    OF TIME: request i's intended send instant is
//                    start + sum of Exp(rate) inter-arrivals, computed
//                    before the first byte moves. Latency is measured from
//                    the INTENDED instant, not the actual send, so a
//                    stalled sender or a backed-up server shows up as
//                    latency instead of silently thinning the load. This
//                    is the curve that bends at saturation.
//
// Both stamp requests with the wire deadline budget, so shed requests come
// back as typed error frames (kDeadlineExpired / kQueueFull) and are
// tallied per status rather than vanishing.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "net/client.hpp"
#include "net/server.hpp"  // NetError: send/connect failures
#include "net/wire.hpp"

namespace alf::bench {

struct NetLoadConfig {
  uint16_t port = 0;
  std::string host = "127.0.0.1";
  std::string model;
  size_t image_floats = 0;   ///< floats per single-image request row
  const float* row = nullptr;  ///< one image, reused for every request
  size_t requests = 200;     ///< total requests to issue
  size_t conns = 4;          ///< connections (and receiver threads)
  uint64_t deadline_us = 50'000;  ///< wire budget stamped on every frame
  double offered_rps = 0.0;  ///< open loop only: Poisson arrival rate
  uint64_t seed = 99;        ///< open loop only: arrival-process seed
};

struct NetLoadResult {
  std::vector<double> latency_ms;  ///< kOk responses only
  size_t sent = 0;
  size_t ok = 0;
  size_t errors = 0;      ///< typed error frames received
  size_t unanswered = 0;  ///< gave up waiting (server/conn died)
  std::array<size_t, net::kNumStatus> by_status{};
  double offered_rps = 0.0;   ///< open loop: configured rate
  double achieved_rps = 0.0;  ///< kOk responses per second of wall time
  double duration_s = 0.0;

  double error_fraction() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(errors + unanswered) /
                           static_cast<double>(sent);
  }
};

/// One blocking round trip; used to wait for a (possibly still-loading)
/// server: the connection sits in the accept backlog until the shard is
/// up. Throws on connection failure or a non-kOk answer.
inline void net_warmup(const NetLoadConfig& cfg) {
  net::WireClient c;
  c.connect(cfg.port, cfg.host);
  c.send(cfg.model, 0, net::kMaxDeadlineUs, cfg.row, 1, cfg.image_floats);
  net::WireClient::Response r;
  if (c.recv(&r) != 1 || r.status != net::WireStatus::kOk)
    throw net::WireError(r.status, "warmup request to '" + cfg.model +
                                       "' failed: " + r.message);
}

/// Closed loop: cfg.conns threads, each issuing cfg.requests/conns
/// send->wait round trips as fast as they complete. latency_ms is service
/// latency (send to response). achieved_rps approximates server capacity
/// for this request shape.
inline NetLoadResult run_closed_loop(const NetLoadConfig& cfg) {
  const size_t conns = std::max<size_t>(1, cfg.conns);
  const size_t per_conn = std::max<size_t>(1, cfg.requests / conns);
  std::vector<std::vector<double>> lat(conns);
  std::vector<NetLoadResult> part(conns);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (size_t t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      net::WireClient c;
      c.connect(cfg.port, cfg.host);
      for (size_t i = 0; i < per_conn; ++i) {
        const auto s0 = std::chrono::steady_clock::now();
        try {
          c.send(cfg.model, i, cfg.deadline_us, cfg.row, 1, cfg.image_floats);
        } catch (const net::NetError&) {
          break;  // server gone mid-run (e.g. drained): stop this connection
        }
        part[t].sent++;
        net::WireClient::Response r;
        const int got = c.recv(&r, /*timeout_ms=*/60'000);
        if (got != 1) {
          part[t].unanswered++;
          break;  // server gone; stop this connection's loop
        }
        part[t].by_status[static_cast<size_t>(r.status)]++;
        if (r.status == net::WireStatus::kOk) {
          part[t].ok++;
          lat[t].push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - s0)
                               .count());
        } else {
          part[t].errors++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  NetLoadResult res;
  res.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (size_t t = 0; t < conns; ++t) {
    res.latency_ms.insert(res.latency_ms.end(), lat[t].begin(), lat[t].end());
    res.sent += part[t].sent;
    res.ok += part[t].ok;
    res.errors += part[t].errors;
    res.unanswered += part[t].unanswered;
    for (size_t s = 0; s < res.by_status.size(); ++s)
      res.by_status[s] += part[t].by_status[s];
  }
  if (res.duration_s > 0)
    res.achieved_rps = static_cast<double>(res.ok) / res.duration_s;
  return res;
}

/// Open loop: Poisson arrivals at cfg.offered_rps. All intended send
/// instants are drawn up front; one sender thread walks the schedule
/// (requests round-robin across cfg.conns pipelined connections), one
/// receiver thread per connection collects responses. latency_ms is
/// response latency measured from the INTENDED send instant — the
/// coordinated-omission-free number.
inline NetLoadResult run_open_loop(const NetLoadConfig& cfg) {
  using clock = std::chrono::steady_clock;
  const size_t conns = std::max<size_t>(1, cfg.conns);
  const size_t n = cfg.requests;
  const double rate = cfg.offered_rps;

  // The whole arrival process, before the first byte moves.
  Rng rng(cfg.seed);
  std::vector<double> offset_s(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += -std::log(1.0 - rng.uniform()) / rate;  // Exp(rate) gap
    offset_s[i] = acc;
  }
  const clock::time_point start = clock::now() + std::chrono::milliseconds(10);
  std::vector<clock::time_point> intended(n);
  for (size_t i = 0; i < n; ++i)
    intended[i] = start + std::chrono::duration_cast<clock::duration>(
                              std::chrono::duration<double>(offset_s[i]));

  std::vector<net::WireClient> clients(conns);
  for (auto& c : clients) c.connect(cfg.port, cfg.host);
  std::vector<size_t> expected(conns, 0);
  for (size_t i = 0; i < n; ++i) expected[i % conns]++;

  std::atomic<bool> sender_done{false};
  // Per-receiver tallies; merged after the join (no shared mutable state).
  std::vector<std::vector<double>> lat(conns);
  std::vector<NetLoadResult> part(conns);

  std::vector<std::thread> receivers;
  receivers.reserve(conns);
  for (size_t t = 0; t < conns; ++t) {
    receivers.emplace_back([&, t] {
      size_t got = 0;
      // Every accepted frame is answered (possibly with a typed error),
      // so receive until this connection's share arrived; the deadline
      // bound plus slack is the give-up horizon if the server dies.
      while (got < expected[t]) {
        net::WireClient::Response r;
        int rc;
        try {
          rc = clients[t].recv(&r, /*timeout_ms=*/250);
        } catch (const net::WireError&) {
          break;  // stream corrupt/truncated: count the rest unanswered
        }
        if (rc == 1) {
          ++got;
          part[t].by_status[static_cast<size_t>(r.status)]++;
          if (r.status == net::WireStatus::kOk) {
            part[t].ok++;
            lat[t].push_back(std::chrono::duration<double, std::milli>(
                                 clock::now() - intended[r.seq])
                                 .count());
          } else {
            part[t].errors++;
          }
          continue;
        }
        if (rc == 0) break;  // server closed; remainder unanswered
        // Timeout: keep waiting while the run is live or budgets can
        // still expire server-side.
        if (sender_done.load(std::memory_order_acquire) &&
            clock::now() > intended.back() +
                               std::chrono::microseconds(cfg.deadline_us) +
                               std::chrono::seconds(3)) {
          break;
        }
      }
      part[t].unanswered = expected[t] - got;
    });
  }

  // The sender walks the precomputed schedule. If it falls behind, the
  // requests go out late — and the lateness is charged to latency via the
  // intended instants, exactly as open loop demands. A send that fails
  // (server drained/died mid-run) marks the connection dead; its
  // unanswerable requests surface through the receivers' give-up horizon.
  std::vector<bool> conn_dead(conns, false);
  for (size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(intended[i]);
    if (conn_dead[i % conns]) continue;
    try {
      clients[i % conns].send(cfg.model, i, cfg.deadline_us, cfg.row, 1,
                              cfg.image_floats);
    } catch (const net::NetError&) {
      conn_dead[i % conns] = true;
    }
  }
  sender_done.store(true, std::memory_order_release);
  for (auto& th : receivers) th.join();
  const clock::time_point end = clock::now();

  NetLoadResult res;
  res.sent = n;
  res.offered_rps = rate;
  res.duration_s = std::chrono::duration<double>(end - start).count();
  for (size_t t = 0; t < conns; ++t) {
    res.latency_ms.insert(res.latency_ms.end(), lat[t].begin(), lat[t].end());
    res.ok += part[t].ok;
    res.errors += part[t].errors;
    res.unanswered += part[t].unanswered;
    for (size_t s = 0; s < res.by_status.size(); ++s)
      res.by_status[s] += part[t].by_status[s];
  }
  if (res.duration_s > 0)
    res.achieved_rps = static_cast<double>(res.ok) / res.duration_s;
  return res;
}

}  // namespace alf::bench
