#include <gtest/gtest.h>

#include "core/check.hpp"
#include "hwmodel/mapper.hpp"
#include "models/cost.hpp"

namespace alf {
namespace {

ConvWorkload small_layer() {
  ConvWorkload w;
  w.name = "test";
  w.r = w.s = 3;
  w.p = w.q = 8;
  w.c = 8;
  w.m = 16;
  w.n = 2;
  w.stride = 1;
  return w;
}

TEST(Workload, DerivedSizes) {
  ConvWorkload w = small_layer();
  EXPECT_EQ(w.in_h(), 10u);  // (8-1)*1 + 3
  EXPECT_EQ(w.ifmap_words(), 2ull * 8 * 10 * 10);
  EXPECT_EQ(w.weight_words(), 16ull * 8 * 9);
  EXPECT_EQ(w.ofmap_words(), 2ull * 16 * 8 * 8);
  EXPECT_EQ(w.macs(), 2ull * 16 * 8 * 8 * 8 * 9);
}

TEST(Workload, FromCostLayer) {
  CostBuilder b("m", 3, 32, 32);
  b.conv("c1", 16, 3, 2, 1);
  const ModelCost cost = b.finish();
  const ConvWorkload w = workload_from_cost(cost.layers[0], 4);
  EXPECT_EQ(w.p, 16u);
  EXPECT_EQ(w.stride, 2u);
  EXPECT_EQ(w.n, 4u);
  EXPECT_EQ(w.macs(), 4 * cost.layers[0].macs);
}

TEST(Workload, FcLayersSkipped) {
  CostBuilder b("m", 3, 8, 8);
  b.conv("c1", 4, 3, 1, 1);
  b.global_pool();
  b.fc("fc", 10);
  const auto ws = workloads_from_model(b.finish(), 1);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(Mapping, TrivialMappingValid) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping map;  // everything 1 spatially, tiles of 1
  map.t2 = {16, 8, 8, 8, 2};  // all iteration at DRAM
  EXPECT_TRUE(mapping_valid(w, arch, map));
}

TEST(Mapping, RejectsUndersizedCoverage) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping map;
  map.t2 = {16, 8, 8, 8, 1};  // batch not covered
  EXPECT_FALSE(mapping_valid(w, arch, map));
}

TEST(Mapping, RejectsRfOverflow) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  arch.rf_words_per_pe = 8;  // tiny RF
  Mapping map;
  map.t0.q = 8;  // ifmap row segment alone needs (8-1)+3 = 10 words
  map.t2 = {16, 8, 8, 1, 2};
  EXPECT_FALSE(mapping_valid(w, arch, map));
}

TEST(Mapping, RejectsGbOverflow) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  arch.gb_words = 16;
  Mapping map;
  map.t1 = {1, 1, 8, 8, 2};  // whole fmap tiles in GB
  map.t2 = {16, 8, 1, 1, 1};
  EXPECT_FALSE(mapping_valid(w, arch, map));
}

TEST(Mapping, RejectsArrayOverflow) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping map;
  map.e = 8;
  map.ms = 16;  // 3*8 set, 16 sets > (16/3)*(16/8) = 10
  map.t2 = {1, 8, 1, 8, 2};
  EXPECT_FALSE(mapping_valid(w, arch, map));
}

TEST(Evaluate, EnergyAndCyclesPositive) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping map;
  map.t2 = {16, 8, 8, 8, 2};
  const LayerEval ev = evaluate_mapping(w, arch, map);
  ASSERT_TRUE(ev.valid);
  EXPECT_GT(ev.e_rf, 0.0);
  EXPECT_GT(ev.e_gb, 0.0);
  EXPECT_GT(ev.e_dram, 0.0);
  EXPECT_GT(ev.cycles, 0.0);
  EXPECT_GT(ev.utilization, 0.0);
  EXPECT_LE(ev.utilization, 1.0);
}

TEST(Evaluate, RfEnergyAtLeastFourPerMac) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping map;
  map.t2 = {16, 8, 8, 8, 2};
  const LayerEval ev = evaluate_mapping(w, arch, map);
  EXPECT_GE(ev.e_rf, 4.0 * static_cast<double>(w.macs()));
}

TEST(Evaluate, SpatialReuseReducesWeightTraffic) {
  // Iterating P in time (t1.p) without ifmap residency forces weight
  // refetches; holding more work spatially (e) amortizes them.
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping serial;
  serial.t1 = {1, 1, 1, 1, 1};
  serial.t2 = {16, 8, 8, 8, 2};
  Mapping spatial = serial;
  spatial.e = 8;
  spatial.t2 = {16, 8, 1, 8, 2};
  const LayerEval a = evaluate_mapping(w, arch, serial);
  const LayerEval b = evaluate_mapping(w, arch, spatial);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_LT(b.cycles, a.cycles);  // more PEs -> fewer cycles
}

TEST(Evaluate, ChannelSpillCostsDramTraffic) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping nospill;
  nospill.t1 = {1, 8, 1, 1, 1};  // C resident within GB level
  nospill.t2 = {16, 1, 8, 8, 2};
  Mapping spill;
  spill.t1 = {1, 1, 1, 1, 1};
  spill.t2 = {16, 8, 8, 8, 2};  // C iterated at DRAM -> psum spills
  const LayerEval a = evaluate_mapping(w, arch, nospill);
  const LayerEval b = evaluate_mapping(w, arch, spill);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_GT(b.dram_words, a.dram_words);
}

TEST(Mapper, FindsValidMapping) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  MapperConfig cfg;
  MapperStats stats;
  const LayerEval best = map_layer(w, arch, cfg, &stats);
  EXPECT_TRUE(best.valid);
  EXPECT_GT(stats.valid, 0u);
  EXPECT_GT(stats.evaluated, stats.valid / 2);
}

TEST(Mapper, BeatsTrivialMapping) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  Mapping trivial;
  trivial.t2 = {16, 8, 8, 8, 2};
  const LayerEval base = evaluate_mapping(w, arch, trivial);
  const LayerEval best = map_layer(w, arch, MapperConfig{});
  EXPECT_LT(best.energy() * best.cycles, base.energy() * base.cycles);
}

TEST(Mapper, Deterministic) {
  ConvWorkload w = small_layer();
  EyerissConfig arch;
  const LayerEval a = map_layer(w, arch, MapperConfig{});
  const LayerEval b = map_layer(w, arch, MapperConfig{});
  EXPECT_EQ(a.energy(), b.energy());
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Mapper, CompressedLayerCheaper) {
  // Same geometry, fewer output channels (the ALF code conv) must map to
  // lower energy and latency.
  ConvWorkload big = small_layer();
  ConvWorkload small = big;
  small.m = 6;
  EyerissConfig arch;
  const LayerEval a = map_layer(big, arch, MapperConfig{});
  const LayerEval b = map_layer(small, arch, MapperConfig{});
  EXPECT_LT(b.energy(), a.energy());
  EXPECT_LE(b.cycles, a.cycles);
}

TEST(Mapper, ModelMappingCoversConvLayers) {
  const ModelCost cost = cost_plain20(10, 8);  // narrow for speed
  EyerissConfig arch;
  MapperConfig cfg;
  cfg.max_iterations = 20000;
  const auto evals = map_model(cost, 2, arch, cfg);
  size_t convs = 0;
  for (const auto& l : cost.layers)
    if (l.kind != "fc") ++convs;
  EXPECT_EQ(evals.size(), convs);
  for (const auto& ev : evals) EXPECT_TRUE(ev.valid);
}

TEST(Mapper, KernelTallerThanArrayThrows) {
  ConvWorkload w = small_layer();
  w.r = 20;
  EyerissConfig arch;
  EXPECT_THROW(map_layer(w, arch, MapperConfig{}), CheckError);
}

TEST(Arch, ScaledToBitsRescalesEnergyCapacityAndBandwidth) {
  const EyerissConfig base;
  const EyerissConfig int8 = scaled_to_bits(base, 8);
  // Half-width words: half the access energy, double the word capacity and
  // word bandwidth (same SRAM bytes, same bytes/cycle).
  EXPECT_DOUBLE_EQ(int8.e_rf, base.e_rf * 0.5);
  EXPECT_DOUBLE_EQ(int8.e_noc, base.e_noc * 0.5);
  EXPECT_DOUBLE_EQ(int8.e_gb, base.e_gb * 0.5);
  EXPECT_DOUBLE_EQ(int8.e_dram, base.e_dram * 0.5);
  EXPECT_EQ(int8.rf_words_per_pe, base.rf_words_per_pe * 2);
  EXPECT_EQ(int8.gb_words, base.gb_words * 2);
  EXPECT_DOUBLE_EQ(int8.dram_bw, base.dram_bw * 2.0);
  EXPECT_DOUBLE_EQ(int8.gb_bw, base.gb_bw * 2.0);
  // Identity at the native width; loud rejection outside the grid range.
  const EyerissConfig same = scaled_to_bits(base, 16);
  EXPECT_DOUBLE_EQ(same.e_dram, base.e_dram);
  EXPECT_EQ(same.gb_words, base.gb_words);
  EXPECT_THROW(scaled_to_bits(base, 1), CheckError);
  EXPECT_THROW(scaled_to_bits(base, 32), CheckError);
}

TEST(Arch, Int8MappingCostsLessEnergyThanFloat16) {
  // End-to-end through the mapper: the same layer mapped on the int8-word
  // machine must find an (at worst) cheaper-energy operating point.
  ConvWorkload w = small_layer();
  const EyerissConfig fp16;
  const EyerissConfig int8 = scaled_to_bits(fp16, 8);
  MapperConfig quick;
  quick.max_iterations = 20000;
  quick.victory = 10000;
  const LayerEval e16 = map_layer(w, fp16, quick);
  const LayerEval e8 = map_layer(w, int8, quick);
  ASSERT_TRUE(e16.valid);
  ASSERT_TRUE(e8.valid);
  EXPECT_LT(e8.energy(), e16.energy());
  EXPECT_LE(e8.cycles, e16.cycles);
}

}  // namespace
}  // namespace alf
