#include "serve/model_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "engine/plan_io.hpp"

namespace alf {

using serve::ModelQueue;
using serve::Request;
using serve::WeightedScheduler;
using std::chrono::steady_clock;

ModelServer::PlanSlot::PlanSlot(const std::shared_ptr<const Plan>& plan)
    : ctx(plan),
      in(plan->batch() * plan->image_floats(), 0.0f),
      out(plan->batch() * plan->classes(), 0.0f) {}

ModelServer::ModelServer() : ModelServer(Config()) {}

ModelServer::ModelServer(Config cfg) : cfg_(cfg), paused_(cfg.start_paused) {
  ALF_CHECK(cfg_.workers >= 1) << "ModelServer: needs at least one worker";
}

ModelServer::~ModelServer() { stop(); }

void ModelServer::add_model(const std::string& name,
                            std::shared_ptr<const Plan> plan,
                            ModelConfig cfg) {
  ALF_CHECK(!started_) << "ModelServer: add_model after start";
  ALF_CHECK(!name.empty()) << "ModelServer: empty model name";
  ALF_CHECK(plan != nullptr) << "ModelServer: null plan for '" << name << "'";
  ALF_CHECK(index_.find(name) == index_.end())
      << "ModelServer: duplicate model '" << name << "'";
  // Registration is single-threaded by contract (before start), but the
  // guarded members still demand the lock — the annotations don't know
  // the workers haven't spawned yet, and the uncontended acquire is free.
  MutexLock lk(m_);
  index_.emplace(name, models_.size());
  plans_.push_back(plan);
  names_.push_back(name);
  models_.push_back(
      std::make_unique<ModelQueue>(name, std::move(plan), cfg));
  sched_.add(m_, cfg.weight);
}

std::vector<std::string> ModelServer::add_models_from_dir(
    const std::string& dir, ModelConfig cfg) {
  // The compile-once/deploy-many path: every model this server hosts was
  // compiled elsewhere (alf_planc); registration is mmap + validate per
  // blob, so adding a model costs milliseconds, not a compile.
  std::vector<std::string> names;
  for (auto& [stem, plan] : plan::load_dir(dir)) {
    add_model(stem, std::move(plan), cfg);
    names.push_back(stem);
  }
  ALF_CHECK(!names.empty()) << "ModelServer: no *.plan blobs in '" << dir
                            << "'";
  return names;
}

void ModelServer::start() {
  ALF_CHECK(!started_) << "ModelServer: start called twice";
  ALF_CHECK(!plans_.empty()) << "ModelServer: start with no models";
  workers_.resize(cfg_.workers);
  for (Worker& wk : workers_) {
    wk.slots.reserve(plans_.size());
    for (const auto& plan : plans_) wk.slots.emplace_back(plan);
  }
  started_ = true;
  for (size_t wi = 0; wi < workers_.size(); ++wi)
    workers_[wi].thread = std::thread([this, wi] { worker_loop(wi); });
}

size_t ModelServer::model_index(const std::string& name) const {
  const auto it = index_.find(name);
  ALF_CHECK(it != index_.end()) << "ModelServer: unknown model '" << name
                                << "'";
  return it->second;
}

void ModelServer::submit(const std::string& model, Tensor x, Callback done) {
  submit(model, std::move(x), std::move(done), nullptr, SubmitOptions{});
}

void ModelServer::submit(const std::string& model, Tensor x, Callback done,
                         ErrorCallback fail) {
  submit(model, std::move(x), std::move(done), std::move(fail),
         SubmitOptions{});
}

void ModelServer::submit(const std::string& model, Tensor x, Callback done,
                         ErrorCallback fail, SubmitOptions opts) {
  ALF_CHECK(started_) << "ModelServer: submit before start";
  ALF_CHECK(done != nullptr) << "ModelServer: null completion callback";
  const size_t mi = model_index(model);
  // Shape checks run against the immutable Plan, off-lock (plans_ is
  // frozen once start() returns and submit checks started_ above).
  const Plan& p = *plans_[mi];
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t n = x.dim(0);
  ALF_CHECK(n >= 1 && n <= p.batch())
      << "ModelServer: request of " << n << " images, model '" << model
      << "' batch " << p.batch();
  ALF_CHECK_EQ(x.dim(1), p.in_c());
  ALF_CHECK_EQ(x.dim(2), p.in_h());
  ALF_CHECK_EQ(x.dim(3), p.in_w());

  Request r;
  r.x = std::move(x);
  r.n = n;
  r.done = std::move(done);
  r.fail = std::move(fail);
  if (opts.deadline_us != 0) {
    r.has_deadline = true;
    r.deadline =
        steady_clock::now() + std::chrono::microseconds(opts.deadline_us);
  }

  Request dropped;
  bool have_dropped = false;
  {
    MutexLock lk(m_);
    ALF_CHECK(!stop_) << "ModelServer: submit after stop";
    const ModelQueue::Admit verdict =
        models_[mi]->admit(m_, std::move(r), &dropped);
    if (verdict == ModelQueue::Admit::kRejected) {
      throw QueueFullError("ModelServer: queue full for model '" + model +
                           "' (" + std::to_string(models_[mi]->size(m_)) +
                           " of max " +
                           std::to_string(models_[mi]->config().max_queue) +
                           " requests queued)");
    }
    have_dropped = verdict == ModelQueue::Admit::kDropped;
  }
  work_cv_.notify_all();
  if (have_dropped && dropped.fail != nullptr) {
    dropped.fail(std::make_exception_ptr(QueueFullError(
        "ModelServer: request shed from model '" + model +
        "' by kDropOldest admission (queue at max_queue)")));
  }
}

std::future<Tensor> ModelServer::submit(const std::string& model, Tensor x) {
  return submit(model, std::move(x), SubmitOptions{});
}

std::future<Tensor> ModelServer::submit(const std::string& model, Tensor x,
                                        SubmitOptions opts) {
  auto promise = std::make_shared<std::promise<Tensor>>();
  std::future<Tensor> fut = promise->get_future();
  submit(
      model, std::move(x),
      [promise](Tensor&& logits) { promise->set_value(std::move(logits)); },
      [promise](std::exception_ptr err) { promise->set_exception(err); },
      opts);
  return fut;
}

void ModelServer::pause() {
  {
    MutexLock lk(m_);
    paused_ = true;
  }
  // Wake mid-tick workers so an open tick is abandoned promptly, not at
  // its batching deadline.
  work_cv_.notify_all();
}

void ModelServer::resume() {
  {
    MutexLock lk(m_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void ModelServer::stop() {
  {
    MutexLock lk(m_);
    stop_ = true;
    paused_ = false;  // a paused server still drains on shutdown
  }
  work_cv_.notify_all();
  for (Worker& wk : workers_)
    if (wk.thread.joinable()) wk.thread.join();
}

size_t ModelServer::pending(const std::string& model) const {
  const size_t mi = model_index(model);
  MutexLock lk(m_);
  return models_[mi]->size(m_);
}

size_t ModelServer::pending() const {
  MutexLock lk(m_);
  size_t total = 0;
  for (const auto& mq : models_) total += mq->size(m_);
  return total;
}

ServeStats ModelServer::stats(const std::string& model) const {
  const size_t mi = model_index(model);
  MutexLock lk(m_);
  return models_[mi]->stats(m_);
}

ServeStats ModelServer::stats() const {
  MutexLock lk(m_);
  ServeStats total;
  for (const auto& mq : models_) {
    const ServeStats s = mq->stats(m_);
    total.accepted += s.accepted;
    total.rejected += s.rejected;
    total.dropped_oldest += s.dropped_oldest;
    total.expired += s.expired;
    total.requests += s.requests;
    total.images += s.images;
    total.batches += s.batches;
    total.full_batches += s.full_batches;
    total.max_fill = std::max(total.max_fill, s.max_fill);
    total.completed += s.completed;
    total.in_flight += s.in_flight;
    total.queued += s.queued;
  }
  return total;
}

const Plan& ModelServer::plan(const std::string& model) const {
  return *plans_[model_index(model)];
}

std::vector<std::string> ModelServer::model_names() const { return names_; }

bool ModelServer::any_eligible() const {
  for (const auto& mq : models_)
    if (!mq->forming(m_) && !mq->empty(m_)) return true;
  return false;
}

bool ModelServer::all_queues_empty() const {
  for (const auto& mq : models_)
    if (!mq->empty(m_)) return false;
  return true;
}

void ModelServer::deliver_failures(std::vector<Request>& reqs,
                                   const char* what, bool queue_full) {
  for (Request& r : reqs) {
    if (r.fail == nullptr) continue;  // counted in stats either way
    if (queue_full) {
      r.fail(std::make_exception_ptr(QueueFullError(what)));
    } else {
      r.fail(std::make_exception_ptr(DeadlineExpiredError(what)));
    }
  }
  reqs.clear();
}

void ModelServer::worker_loop(size_t wi) {
  Worker& wk = workers_[wi];
  // With a multi-worker pool each worker runs its batches inline so K
  // batches get K-way parallelism instead of serializing on the process
  // worker pool; a single worker keeps the pool fan-out of the original
  // single-model dispatcher. Either way, bit-identical results (the chunk
  // grid is fixed in the Plan).
  std::unique_ptr<InlineExecutionGuard> inline_guard;
  if (cfg_.workers > 1) inline_guard = std::make_unique<InlineExecutionGuard>();

  std::vector<Request> expired;
  std::vector<uint8_t> eligible;
  MutexLock lk(m_);
  while (true) {
    // Explicit wait loop (not a predicate lambda): the predicate reads
    // guarded state, and -Wthread-safety analyzes per function — a lambda
    // body would sit outside its view of the held lock.
    while (!stop_ && (paused_ || !any_eligible())) lk.wait(work_cv_);
    if (stop_ && all_queues_empty()) return;
    // Eligibility snapshot under the lock; the scheduler takes a bitmap
    // for the same analysis-visibility reason as the wait loop above.
    eligible.assign(models_.size(), 0);
    for (size_t i = 0; i < models_.size(); ++i)
      eligible[i] =
          (!models_[i]->forming(m_) && !models_[i]->empty(m_)) ? 1 : 0;
    const size_t mi = sched_.pick(m_, eligible);
    if (mi == WeightedScheduler::npos) {
      // Backlog exists but another worker holds every tick. During a stop
      // drain the predicate above is always true, so yield briefly
      // instead of spinning on the mutex.
      if (stop_) lk.wait_for(work_cv_, std::chrono::microseconds(100));
      continue;
    }
    ModelQueue& q = *models_[mi];
    q.set_forming(m_, true);
    expired.clear();
    q.purge_expired(m_, steady_clock::now(), expired);
    bool abandoned = q.empty(m_);  // everything expired: nothing to form
    if (!abandoned && !stop_ && q.config().max_wait_us > 0 &&
        q.queued_images(m_) < q.plan().batch()) {
      // A tick is open: give arrivals max_wait_us to fill the batch,
      // leaving early once enough images are queued. During shutdown the
      // deadline is skipped so the drain runs back-to-back.
      const auto tick_deadline =
          steady_clock::now() + std::chrono::microseconds(q.config().max_wait_us);
      while (!stop_ && !paused_ && q.queued_images(m_) < q.plan().batch()) {
        if (lk.wait_until(work_cv_, tick_deadline) == std::cv_status::timeout)
          break;
      }
    }
    // pause() landed mid-tick: abandon the tick and hold the backlog. Both
    // flags are checked under m_, so once pause() returns no new batch can
    // form until resume().
    if (paused_ && !stop_) abandoned = true;
    std::vector<Request> take;
    size_t take_images = 0;
    if (!abandoned) {
      q.purge_expired(m_, steady_clock::now(), expired);
      take = q.form_batch(m_);
      for (const Request& r : take) take_images += r.n;
      if (!take.empty()) sched_.charge(m_, mi, take_images);
    }
    q.set_forming(m_, false);
    // The model may still be backlogged (prefix packing left a tail, or
    // the tick was abandoned); peers skipped it while forming, so re-open
    // it for them before the (lock-free) engine run.
    if (!q.empty(m_)) work_cv_.notify_all();
    lk.unlock();

    deliver_failures(expired, "ModelServer: deadline expired before batch "
                              "formation", /*queue_full=*/false);
    if (!take.empty()) {
      // Pack request rows contiguously, one engine dispatch on THIS
      // worker's context, scatter logit rows back.
      PlanSlot& slot = wk.slots[mi];
      const size_t img_floats = slot.ctx.plan().image_floats();
      const size_t classes = slot.ctx.plan().classes();
      float* dst = slot.in.data();
      for (const Request& r : take) {
        std::memcpy(dst, r.x.data(), r.n * img_floats * sizeof(float));
        dst += r.n * img_floats;
      }
      slot.ctx.run_rows(slot.in.data(), take_images, slot.out.data());
      const float* src = slot.out.data();
      for (Request& r : take) {
        Tensor logits({r.n, classes});
        std::memcpy(logits.data(), src, r.n * classes * sizeof(float));
        src += r.n * classes;
        r.done(std::move(logits));
      }
    }

    lk.lock();
    if (!take.empty()) {
      // Reacquired m_: the annotations see the relock through MutexLock,
      // so these guarded calls check clean.
      q.delivered(m_, take.size());
      take.clear();
      // A stop() drain may be waiting on peers: completions change the
      // exit predicate.
      if (stop_) work_cv_.notify_all();
    }
  }
}

}  // namespace alf
