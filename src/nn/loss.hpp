// Softmax cross-entropy loss with integrated gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace alf {

/// Result of a loss evaluation over a batch.
struct LossResult {
  double loss = 0.0;     ///< mean cross-entropy over the batch
  size_t correct = 0;    ///< top-1 correct predictions
  Tensor grad_logits;    ///< dL/dlogits, already divided by batch size
};

/// Computes mean softmax cross-entropy of `logits` [N, C] against integer
/// labels (each in [0, C)). Numerically stabilized (max-subtraction).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Top-1 accuracy of `logits` [N, C] against labels (no gradient).
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace alf
