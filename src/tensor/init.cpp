#include "tensor/init.hpp"

#include <cmath>

#include "core/check.hpp"

namespace alf {

Init parse_init(const std::string& name) {
  if (name == "he") return Init::kHe;
  if (name == "xavier") return Init::kXavier;
  if (name == "rand") return Init::kRand;
  if (name == "identity") return Init::kIdentity;
  ALF_CHECK(false) << "unknown init scheme: " << name;
  return Init::kRand;  // unreachable
}

const char* init_name(Init init) {
  switch (init) {
    case Init::kHe:
      return "he";
    case Init::kXavier:
      return "xavier";
    case Init::kRand:
      return "rand";
    case Init::kIdentity:
      return "identity";
  }
  return "?";
}

void init_tensor(Tensor& t, Init scheme, size_t fan_in, size_t fan_out,
                 Rng& rng) {
  switch (scheme) {
    case Init::kHe: {
      ALF_CHECK(fan_in > 0);
      const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
      for (size_t i = 0; i < t.numel(); ++i)
        t.at(i) = static_cast<float>(rng.normal(0.0, stddev));
      break;
    }
    case Init::kXavier: {
      ALF_CHECK(fan_in + fan_out > 0);
      const double limit =
          std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
      for (size_t i = 0; i < t.numel(); ++i)
        t.at(i) = static_cast<float>(rng.uniform(-limit, limit));
      break;
    }
    case Init::kRand: {
      for (size_t i = 0; i < t.numel(); ++i)
        t.at(i) = static_cast<float>(rng.uniform(-0.05, 0.05));
      break;
    }
    case Init::kIdentity: {
      ALF_CHECK(t.rank() == 2 && t.shape()[0] == t.shape()[1])
          << "identity init needs a square matrix, got "
          << shape_str(t.shape());
      const size_t n = t.shape()[0];
      for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
          t.at(i * n + j) = (i == j ? 1.0f : 0.0f) +
                            static_cast<float>(rng.uniform(-0.01, 0.01));
      break;
    }
  }
}

void conv_fans(const Shape& filter_shape, size_t& fan_in, size_t& fan_out) {
  ALF_CHECK_EQ(filter_shape.size(), size_t{4});
  const size_t co = filter_shape[0], ci = filter_shape[1];
  const size_t kh = filter_shape[2], kw = filter_shape[3];
  fan_in = ci * kh * kw;
  fan_out = co * kh * kw;
}

}  // namespace alf
