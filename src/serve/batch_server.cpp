#include "serve/batch_server.hpp"

#include <utility>

namespace alf {
namespace {

ModelServer::Config single_model(bool start_paused) {
  ModelServer::Config cfg;
  cfg.workers = 1;
  cfg.start_paused = start_paused;
  return cfg;
}

}  // namespace

BatchServer::BatchServer(Engine engine)
    : BatchServer(engine.plan(), Config()) {}

// `engine` dies at the delegation, releasing its arena; only the shared
// immutable Plan survives into the server.
BatchServer::BatchServer(Engine engine, Config cfg)
    : BatchServer(engine.plan(), cfg) {}

BatchServer::BatchServer(std::shared_ptr<const Plan> plan)
    : BatchServer(std::move(plan), Config()) {}

BatchServer::BatchServer(std::shared_ptr<const Plan> plan, Config cfg)
    : plan_(std::move(plan)),
      cfg_(cfg),
      server_(single_model(cfg.start_paused)) {
  ModelServer::ModelConfig mc;
  mc.max_wait_us = cfg_.max_wait_us;
  mc.max_queue = cfg_.max_queue;
  mc.shed = cfg_.shed;
  server_.add_model(kModel, plan_, mc);
  server_.start();
}

const Engine& BatchServer::engine() const {
  std::call_once(engine_once_,
                 [this] { engine_ = std::make_unique<Engine>(plan_); });
  return *engine_;
}

void BatchServer::submit(Tensor x, Callback done) {
  server_.submit(kModel, std::move(x), std::move(done));
}

void BatchServer::submit(Tensor x, Callback done, ErrorCallback fail,
                         SubmitOptions opts) {
  server_.submit(kModel, std::move(x), std::move(done), std::move(fail),
                 opts);
}

std::future<Tensor> BatchServer::submit(Tensor x) {
  return server_.submit(kModel, std::move(x));
}

std::future<Tensor> BatchServer::submit(Tensor x, SubmitOptions opts) {
  return server_.submit(kModel, std::move(x), opts);
}

void BatchServer::pause() { server_.pause(); }

void BatchServer::resume() { server_.resume(); }

void BatchServer::stop() { server_.stop(); }

size_t BatchServer::pending() const { return server_.pending(kModel); }

ServeStats BatchServer::stats() const { return server_.stats(kModel); }

}  // namespace alf
