// The "int8" backend: a real quantized GEMM, not fake-quant floats.
//
// qgemm multiplies pre-quantized int8 panels (symmetric per-tensor scheme;
// see quant/quantize.hpp for the packing helpers) accumulating in int32
// and requantizes to float on store: C[i,j] = a_scale * b_scale *
// sum_k (A[i,k] - a_zp) * (B[k,j] - b_zp). Integer accumulation is exact,
// so the result is independent of any blocking or thread partition by
// construction — the determinism contract comes for free.
//
// Overflow headroom: |a - zp|, |b - zp| <= 255, so the int32 accumulator
// holds k up to ~2^15 exactly even in the asymmetric worst case; the
// engine's largest reduction (Ci*K*K of a wide conv) is orders of
// magnitude below that.
//
// The backend's f32 gemm entry forwards to the best float backend so a
// plan compiled with backend="int8" still runs its non-quantized steps
// (pooling epilogues, repair passes, any layer the lowering keeps in
// float) at full speed.
#include "kernels/internal.hpp"

namespace alf::kernels {

namespace {

void gemm_forward_best_float(const float* a, size_t lda, bool trans_a,
                             const float* b, size_t ldb, bool trans_b,
                             float* c, size_t ldc, size_t m, size_t k,
                             size_t n, float alpha, float beta) {
  const KernelBackend* be = simd_backend();
  (be != nullptr ? be->gemm : &detail::gemm_scalar)(a, lda, trans_a, b, ldb,
                                                    trans_b, c, ldc, m, k, n,
                                                    alpha, beta);
}

}  // namespace

namespace detail {

// Baseline-ISA instantiation of the shared body; the simd backend carries
// a second instantiation compiled with wider vector flags (identical
// integer math, so the two are bit-equal).
void qgemm_int8(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p) {
  qgemm_int8_body(a, lda, b, ldb, c, ldc, m, k, n, p);
}

}  // namespace detail

const KernelBackend* int8_backend() {
  // Prefer the simd TU's wide-ISA instantiation of the same integer body
  // when the host can run it.
  static const KernelBackend be{.name = "int8",
                                .quantized_datapath = true,
                                .gemm = &gemm_forward_best_float,
                                .qgemm = simd_backend() != nullptr
                                             ? simd_backend()->qgemm
                                             : &detail::qgemm_int8};
  return &be;
}

}  // namespace alf::kernels
