// AMC-lite: learning-based compression-policy search (substitute for the
// DDPG agent of He et al. [14] — see DESIGN.md).
//
// The agent learns a per-layer keep fraction by cross-entropy-method policy
// search: sample candidate policies from a per-layer Gaussian, evaluate
// reward = accuracy(pruned model, no fine-tuning) - lambda * max(0,
// ops_frac - target), refit the Gaussian on the elite candidates. This
// mirrors AMC's key traits (learned layer-wise ratios, reward combining
// accuracy and an efficiency constraint, no intermediate fine-tuning).
#pragma once

#include "data/synthetic.hpp"
#include "models/cost.hpp"
#include "nn/sequential.hpp"
#include "prune/structured.hpp"

namespace alf {

/// Search hyper-parameters.
struct AmcConfig {
  size_t population = 10;
  size_t elites = 3;
  size_t iterations = 4;
  double target_ops_frac = 0.5;  ///< desired OPs(pruned)/OPs(vanilla)
  double lambda = 4.0;           ///< penalty weight for exceeding the target
  double init_keep_mean = 0.7;
  double init_keep_std = 0.2;
  double min_keep = 0.15;
  size_t eval_samples = 512;  ///< validation subset for the reward
  PruneRule rule = PruneRule::kMagnitude;
  uint64_t seed = 99;
  bool verbose = false;
};

/// Result of a policy search.
struct AmcResult {
  std::vector<double> keep_fracs;  ///< per conv layer, collect_convs order
  double reward = 0.0;
  double accuracy = 0.0;   ///< reward-eval accuracy of the best candidate
  double ops_frac = 1.0;   ///< OPs ratio of the best candidate
};

/// Runs the CEM policy search on a trained model. `vanilla_cost` must list
/// the conv layers with names matching the runnable model's conv layers.
/// The model's weights are restored to their original values afterwards
/// (the returned plan still has to be applied + fine-tuned by the caller).
AmcResult amc_search(Sequential& model, const std::vector<Conv2d*>& convs,
                     const ModelCost& vanilla_cost,
                     const SyntheticImageDataset& val_set,
                     const AmcConfig& config);

}  // namespace alf
