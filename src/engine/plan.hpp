// Plan: the immutable half of the compiled-model split.
//
// Engine::compile used to weld what was compiled (steps, folded weights,
// packed/int8 weight blobs, strategy choices, arena layout) to what runs
// it (one mutable workspace arena). That limits a compiled model to one
// in-flight batch. The split here mirrors the compiled-blob-vs-execution-
// context separation every serious inference stack converges on:
//
//   Plan        — everything Plan::compile produced. Immutable after
//                 compile and shared via shared_ptr<const Plan>; any
//                 number of ExecContexts (one per server worker) execute
//                 it concurrently, race-free by construction because a
//                 run only ever writes its own context.
//   ExecContext — per-worker storage: arena, im2col/qgemm scratch
//                 (exec_context.hpp).
//   Engine      — thin compatibility facade owning one Plan + one
//                 context (engine.hpp); pre-split call sites compile
//                 unchanged.
//
// The Plan carries not just the step list but the arena *layout* (slot
// count/stride, scratch offsets, the fixed chunk grid), so every context
// allocates exactly the same geometry and results are bit-identical
// across contexts, workers, and thread counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels/tile.hpp"
#include "nn/activations.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "tensor/view.hpp"

namespace alf {

namespace kernels {
struct KernelBackend;
}  // namespace kernels

/// Height bound for the shifted-GEMM border-repair stack buffer; taller
/// maps fall back to the chunk-batched strategy at compile time. One
/// definition shared by the compiler (plan.cpp), the runtime
/// (exec_context.cpp), and the blob header stamp (plan_io.cpp) — a plan
/// packed under a different bound must not load.
constexpr size_t kMaxShiftH = 512;

/// Alignment of every weight section inside the plan arena (cache-line,
/// and a multiple of every element type the kernels read).
constexpr size_t kWeightAlign = 64;

/// Alignment of the arena base itself: one page, so a loaded blob can
/// mmap the arena in place and N processes share the page-cache copy.
constexpr size_t kArenaAlign = 4096;

/// Which weight payload of a Step a section carries.
enum class WeightField : uint32_t {
  kW = 0,      ///< float GEMM matrix (rank 2)
  kBias,       ///< folded bias (rank 1)
  kScale,      ///< kScaleShift per-channel scale (rank 1)
  kShift,      ///< kScaleShift per-channel shift (rank 1)
  kW9,         ///< shift-GEMM [K*K, Co, Ci] pack (rank 3)
  kQw,         ///< int8 weight panel (rank 2)
  kQwScales,   ///< per-output-channel weight scales (rank 1)
};
constexpr size_t kWeightFieldCount = 7;

/// One row of the plan's section table: where inside the arena one step's
/// weight payload lives, and the shape it must be read as. This is the
/// authority the steps' views are bound from — and exactly what
/// alf::plan::save serializes, so a loaded plan rebinds by fixup alone.
struct WeightSection {
  uint32_t step = 0;                    ///< index into Plan::steps()
  WeightField field = WeightField::kW;
  uint64_t offset = 0;                  ///< bytes from the arena base
  uint64_t bytes = 0;
  uint32_t elem_size = 4;               ///< 4 (float) or 1 (int8)
  uint32_t rank = 0;
  uint64_t dims[TensorView::kMaxRank] = {0, 0, 0};
};

/// The plan's single weight allocation. Exactly one of two modes:
///   - owned: page-aligned zeroed storage a fresh compile packs into;
///   - mapped: an adopted read-only file mapping (plan_io.cpp load path),
///     munmap'd on destruction — the arena bytes are the page cache's,
///     shared across every process that loaded the same blob.
class WeightArena {
 public:
  WeightArena() = default;
  ~WeightArena();

  WeightArena(WeightArena&& o) noexcept;
  WeightArena& operator=(WeightArena&& o) noexcept;
  WeightArena(const WeightArena&) = delete;
  WeightArena& operator=(const WeightArena&) = delete;

  /// Owned mode: zeroed storage of `bytes` aligned to kArenaAlign.
  static WeightArena allocate(size_t bytes);

  /// Mapped mode: adopts [base, base + map_bytes) (munmap'd by the dtor);
  /// the arena data is the `bytes`-long run at base + data_off.
  static WeightArena adopt_mapping(void* base, size_t map_bytes,
                                   size_t data_off, size_t bytes);

  const uint8_t* data() const { return data_; }
  /// Writable base; only valid in owned mode (the compile-time packer).
  uint8_t* mutable_data();
  size_t bytes() const { return bytes_; }
  bool mapped() const { return map_base_ != nullptr; }

 private:
  uint8_t* data_ = nullptr;
  size_t bytes_ = 0;
  void* map_base_ = nullptr;  ///< non-null in mapped mode
  size_t map_bytes_ = 0;
  bool owned_ = false;
};

/// Kernel selector of one compiled step.
enum class OpKind {
  kConv,          ///< im2col+GEMM conv, folded-BN bias + activation epilogue
  kLinear,        ///< fully-connected, bias + activation epilogue
  kGlobalAvgPool, ///< [N,C,H,W] -> [N,C]
  kMaxPool,       ///< non-overlapping window max
  kAdd,           ///< residual merge: out = act(out + in)
  kScaleShift,    ///< per-channel affine (BatchNorm that could not be folded)
  kActivation,    ///< standalone activation (could not be fused)
};

/// Printable kind tag.
const char* op_kind_name(OpKind kind);

/// How Plan::compile selects per-step algorithms (conv strategy, kernel
/// backend, tile parameters, chunk grid).
enum class TuneMode {
  /// Resolve from the ALF_TUNE environment variable ("off" / "cached" /
  /// "full"); unset or unrecognized means kHeuristic.
  kDefault,
  /// The hand-written predicates and the built-in blocking constants —
  /// exactly the pre-tuner behavior, zero microbenchmark runs.
  kHeuristic,
  /// Replay the persistent algo cache (src/tune/); shapes missing from the
  /// cache are measured once, recorded, and the cache file rewritten.
  kCached,
  /// Re-measure every shape and update the cache (ignore stale winners).
  kFull,
};

/// One per-GEMM-step algorithm decision: what the tuner records per shape,
/// what the plan carries per step, and what a blob persists (plan_io.cpp).
/// The all-default AlgoChoice reproduces the heuristic path exactly.
struct AlgoChoice {
  /// Conv execution strategy; kAuto applies the compile-time predicate.
  /// Quantized convs always run im2col (Plan::verify enforces it).
  enum class Strategy : uint8_t { kAuto = 0, kShiftGemm = 1, kIm2col = 2 };
  Strategy strategy = Strategy::kAuto;
  /// Per-step kernel backend name; "" = the plan's backend. Must share the
  /// plan backend's datapath (float plans pick float backends, quantized
  /// plans pick quantized ones — the packed panels have one ABI).
  std::string backend;
  /// f32 GEMM cache blocking; all-zero = the backend's built-in constants.
  kernels::TileParams tile;
  /// Conv chunk-grid override (e.g. 1 = unfold the whole batch as one
  /// im2col GEMM); 0 = the plan's compile-time grid. Numerics-neutral:
  /// results are bit-identical across batch packings by contract.
  uint32_t chunk = 0;
};

/// One stateless kernel invocation. Weight fields are non-owning views
/// into the Plan's weight arena (bound from the section table), with BN
/// already folded in; activations are addressed by arena slot index.
/// Slot 0 is the external input tensor of run() and is never written.
struct Step {
  OpKind kind = OpKind::kConv;
  std::string name;      ///< source layer name(s), for plan dumps
  size_t in = 0;         ///< arena slot holding the input activation
  size_t out = 0;        ///< arena slot receiving the output activation
  Act act = Act::kNone;  ///< fused epilogue activation

  // Per-image element counts of the in/out activations.
  size_t in_sz = 0;
  size_t out_sz = 0;

  // kConv / kMaxPool / kGlobalAvgPool / kScaleShift geometry.
  ConvGeom geom;
  size_t out_c = 0;
  size_t window = 0;  ///< kMaxPool

  // kLinear geometry.
  size_t in_features = 0;
  size_t out_features = 0;

  TensorView w;     ///< [Co, Ci*K*K] (kConv) or [out, in] (kLinear); released
                    ///< (empty) on int8-lowered steps, which read only qw
  TensorView bias;  ///< folded bias [Co]/[out]; empty = no bias
  TensorView scale, shift;  ///< kScaleShift per-channel affine

  /// Conv execution strategy, chosen at compile time per layer:
  /// - shift_gemm (wide maps and all 1x1s): no im2col at all — K*K GEMMs of
  ///   per-offset weight slices against shifted views of the input planes,
  ///   then the `pad` border columns are recomputed directly. `w9` holds
  ///   the compile-time repacking [K*K, Co, Ci] of `w` (empty for 1x1).
  /// - chunk-batched im2col (narrow maps, strided convs): all images of a
  ///   batch chunk unfold side by side into one [Ci*K*K, G*Ho*Wo] matrix,
  ///   one GEMM computes the chunk, and the result scatters back to NCHW.
  /// Both exploit what only a compiled plan has: pre-packed weights and
  /// arena scratch sized once for the whole batch.
  bool shift_gemm = false;
  TensorView w9;

  /// int8 lowering (plans compiled with a quantized-datapath backend):
  /// the step runs the backend's qgemm instead of a float GEMM. `qw` is
  /// the pre-quantized weight panel — [Co, Ci*K*K] for kConv, the
  /// transposed [in, out] B panel for kLinear — on the symmetric `qbits`
  /// grid with one step size per output channel (`qw_scales`; BN folding
  /// runs first and leaves rows with very different ranges, so per-tensor
  /// weight calibration would burn most of the grid). Activations are
  /// quantized per run into context scratch with one max-abs scale PER
  /// IMAGE — the scales depend only on image content, never on the chunk
  /// grid, which is what keeps quantized runs bit-identical across thread
  /// counts and batch packings.
  bool quantized = false;
  ConstSpan<int8_t> qw;
  ConstSpan<float> qw_scales;
  int qbits = 8;
  /// Compile-time proof that this step's input activation is non-negative
  /// (produced through a ReLU/sigmoid chain). Quantized steps then use an
  /// asymmetric activation grid (zero-point at the bottom of the int8
  /// range), doubling the resolution the symmetric grid would spend on
  /// values that cannot occur.
  bool in_nonneg = false;

  /// Per-step kernel backend (tuner- or blob-chosen; the plan backend when
  /// untuned). Never null on conv/linear steps after compile()/load; other
  /// kinds issue no GEMMs and leave it at the plan backend too.
  const kernels::KernelBackend* be = nullptr;
  /// f32 GEMM cache blocking for this step (all-zero = backend defaults).
  kernels::TileParams tile;
  /// Conv chunk-grid override; 0 = the plan's grid (Plan::chunks()).
  uint32_t chunk = 0;
};

/// Typed error thrown by Plan::verify() when a compiled plan violates one
/// of the invariants the execution layer relies on. The message names the
/// first failing invariant and the step it failed on.
class PlanVerifyError : public std::runtime_error {
 public:
  explicit PlanVerifyError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Compile-time options of a plan.
struct EngineOptions {
  /// Kernel-backend name ("scalar" / "simd" / "int8" / a registered
  /// plugin); "" resolves the process default (ALF_BACKEND env or best
  /// available). The registry is consulted exactly once, at compile: the
  /// plan holds the backend pointer for its lifetime. Selecting "int8"
  /// also lowers every conv/linear step to the quantized datapath, e.g.
  ///   Plan::compile(model, batch, c, h, w, {.backend = "int8"});
  std::string backend;
  /// Quantization grid width for int8-lowered steps (2..8; the paper's
  /// Table 3 bit-width sweeps narrow this while storage stays int8).
  int bits = 8;
  /// Model name stamped into the plan (and into saved blob headers —
  /// plan_io.cpp); "" is fine for plans that are never serialized.
  /// (Existing call sites designated-initialize the fields above by
  /// position; new fields go below this line.)
  std::string name;
  /// Per-shape algorithm selection mode; kDefault reads $ALF_TUNE.
  TuneMode tune = TuneMode::kDefault;
  /// Algo-cache file for kCached/kFull; "" = $ALF_ALGO_CACHE, else the
  /// built-in default path (tune/algo_cache.hpp).
  std::string algo_cache;
  /// Forced per-step choices (tests, the tuner's own candidate compiles):
  /// the i-th conv/linear step takes force_choices[min(i, size-1)] and the
  /// tuner is bypassed entirely. Empty = no forcing.
  std::vector<AlgoChoice> force_choices;
};

/// Compiled model: flat step list, folded/packed weights, strategy choices,
/// pinned kernel backend, and the arena layout every ExecContext allocates.
/// Immutable after compile() and shared by const pointer: concurrent runs
/// on distinct contexts never touch Plan state, so a ModelServer hosts one
/// Plan under many workers with no copies and no locks.
class Plan {
 public:
  /// Compiles `model` for inference at the given maximum batch size and
  /// input geometry. The model is read, not mutated; weights are copied
  /// (with BN folded), so the Plan outlives the model. Layers that cannot
  /// be lowered (e.g. AlfConv with BN_inter) fail with a CheckError.
  static std::shared_ptr<const Plan> compile(const Sequential& model,
                                             size_t batch, size_t in_c,
                                             size_t in_h, size_t in_w,
                                             const EngineOptions& opts = {});

  // Shared immutable object: neither copied nor moved after compile().
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  const std::vector<Step>& steps() const { return steps_; }
  /// Model name (EngineOptions::name at compile, blob header at load).
  const std::string& name() const { return name_; }
  size_t batch() const { return batch_; }
  size_t classes() const { return classes_; }
  size_t in_c() const { return in_c_; }
  size_t in_h() const { return in_h_; }
  size_t in_w() const { return in_w_; }
  /// Floats of one input image (= in_c * in_h * in_w).
  size_t image_floats() const { return in_c_ * in_h_ * in_w_; }
  /// Kernel backend the plan was compiled against.
  const kernels::KernelBackend* backend() const { return backend_; }
  const char* backend_name() const;
  /// True when conv/linear steps were lowered to the int8 qgemm datapath.
  bool quantized() const { return quant_; }

  // --- Arena layout (what one ExecContext allocates) ------------------------
  size_t activation_slots() const { return slots_; }
  size_t slot_stride() const { return slot_stride_; }
  /// Total float arena of one context (activation slots + conv scratch).
  size_t workspace_floats() const { return res_off_ + nchunks_ * res_sz_; }
  size_t col_offset() const { return col_off_; }
  size_t col_floats() const { return col_sz_; }
  size_t result_offset() const { return res_off_; }
  size_t result_floats() const { return res_sz_; }
  /// Fixed batch partition (chosen at compile for determinism).
  size_t chunks() const { return nchunks_; }
  /// The chunk grid one step actually runs under: its tuned override when
  /// set, the plan grid otherwise. The scratch sizing (compile) and the
  /// runtime (run_conv) both consult this, so a per-step override can only
  /// ever widen a chunk into scratch that was sized for it.
  size_t step_chunks(const Step& st) const {
    return st.chunk != 0 ? std::min<size_t>(st.chunk, nchunks_) : nchunks_;
  }
  /// int8 activation scratch bytes of one context (0 on float plans).
  size_t qws_bytes() const { return qws_sz_; }
  /// Per-image scale-slice stride of the qgemm scratch.
  size_t qbs_stride() const { return qbs_sz_; }
  /// Total per-image scale/inverse scratch floats (0 on float plans).
  size_t qbs_floats() const { return quant_ ? nchunks_ * 2 * qbs_sz_ : 0; }

  // --- Weight storage (what save/load serializes) ---------------------------
  /// The single arena holding every weight payload the steps view.
  const WeightArena& weight_arena() const { return arena_; }
  /// Section table binding (step, field) -> arena (offset, dims).
  const std::vector<WeightSection>& weight_sections() const {
    return sections_;
  }

  /// Human-readable plan: one line per step with fused ops and slots.
  std::string str() const;

  /// Static validator (plan_verify.cpp): checks every invariant the
  /// execution layer assumes instead of re-checking — slot indices and
  /// arena bounds, def-before-use slot dataflow with per-step shape
  /// chaining, scratch sizing against every conv's chunk geometry, weight
  /// panel shapes, int8 steps carrying complete/finite scales, and that
  /// the pinned backend is live in the kernel registry. Throws
  /// PlanVerifyError naming the first violated invariant. Runs
  /// automatically at the end of compile() in debug builds; tests call it
  /// directly (including against deliberately corrupted plans).
  void verify() const;

 private:
  Plan() = default;

  /// Test-only backdoor (defined in tests): lets corruption fixtures
  /// mutate a compiled plan to prove verify() rejects each broken
  /// invariant. Nothing in the library defines or uses it.
  friend struct PlanTestPeer;

  /// Serializer backdoor: alf::plan::save/load (plan_io.cpp) read and
  /// reconstruct the private state below; nothing else uses it.
  friend struct PlanIo;

  /// Rebinds every step's weight views from the section table over the
  /// arena — the one fixup both compile (after packing) and load (after
  /// mmap + validation) run. Checks section bounds/alignment; geometric
  /// consistency is verify()'s job.
  static void bind_weight_views(std::vector<Step>& steps,
                                const std::vector<WeightSection>& sections,
                                const WeightArena& arena);

  std::vector<Step> steps_;
  std::string name_;
  WeightArena arena_;                     ///< all weight payload bytes
  std::vector<WeightSection> sections_;   ///< arena layout of the payloads
  const kernels::KernelBackend* backend_ = nullptr;
  bool quant_ = false;  ///< conv/linear steps lowered to qgemm

  size_t batch_ = 0;
  size_t in_c_ = 0, in_h_ = 0, in_w_ = 0;
  size_t classes_ = 0;
  size_t slots_ = 0;        ///< number of activation slots
  size_t slot_stride_ = 0;  ///< floats per activation slot
  size_t col_off_ = 0;      ///< arena offset of the im2col scratch block
  size_t col_sz_ = 0;       ///< floats per per-chunk im2col scratch slice
  size_t res_off_ = 0;      ///< arena offset of the GEMM-result scratch
  size_t res_sz_ = 0;       ///< floats per per-chunk result scratch slice
  size_t nchunks_ = 0;      ///< fixed batch partition (determinism)
  size_t qws_sz_ = 0;       ///< int8 activation scratch bytes (quantized)
  size_t qbs_sz_ = 0;       ///< floats per scale slice (max GEMM columns)
};

}  // namespace alf
