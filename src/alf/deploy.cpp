#include "alf/deploy.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace alf {

CompressedConvDesc describe_block(const AlfConv& block) {
  CompressedConvDesc d;
  d.name = block.name();
  d.ci = block.in_channels();
  d.co = block.out_channels();
  d.ccode = block.out_channels() - block.zero_filters();
  d.k = block.kernel();
  d.stride = block.stride();
  d.pad = block.pad();
  d.ccode_max = block.ccode_max();
  return d;
}

std::vector<CompressedConvDesc> collect_compressed_descs(Sequential& model) {
  std::vector<CompressedConvDesc> out;
  for (AlfConv* b : collect_alf_convs(model)) out.push_back(describe_block(*b));
  return out;
}

std::vector<size_t> deployed_filters(const AlfConv& block) {
  const Tensor mprune = block.compute_mprune();
  std::vector<size_t> kept;
  for (size_t i = 0; i < mprune.numel(); ++i)
    if (mprune.at(i) != 0.0f) kept.push_back(i);
  if (kept.empty()) {
    // Degenerate case: keep the strongest filter so the layer still works.
    size_t best = 0;
    float best_val = 0.0f;
    const Tensor& mask = block.mask();
    for (size_t i = 0; i < mask.numel(); ++i) {
      if (std::abs(mask.at(i)) >= best_val) {
        best_val = std::abs(mask.at(i));
        best = i;
      }
    }
    kept.push_back(best);
  }
  return kept;
}

LayerPtr make_deployed_unit(AlfConv& block, Rng& rng) {
  ALF_CHECK(block.bn_inter() == nullptr)
      << block.name() << ": BN_inter blocks are a training-only config";
  const std::vector<size_t> kept = deployed_filters(block);
  const size_t ccode = kept.size();
  const size_t ci = block.in_channels(), co = block.out_channels();
  const size_t k = block.kernel();

  auto unit = std::make_unique<Sequential>(block.name() + "_deployed");
  auto* code_conv = unit->emplace<Conv2d>(block.name() + "_code", ci, ccode,
                                          k, block.stride(), block.pad(),
                                          Init::kHe, rng);
  // Copy the surviving rows of Wcode (post mask & sigma_ae — the exact
  // weights the training-time conv used).
  const Tensor wcode = block.compute_wcode();  // [Co, Ci*K*K]
  const size_t row = ci * k * k;
  for (size_t r = 0; r < ccode; ++r) {
    const float* src = wcode.data() + kept[r] * row;
    std::copy(src, src + row, code_conv->weight().value.data() + r * row);
  }

  if (block.config().sigma_inter != Act::kNone) {
    unit->emplace<Activation>(block.name() + "_inter",
                              block.config().sigma_inter);
  }

  auto* exp_conv = unit->emplace<Conv2d>(block.name() + "_exp", ccode, co, 1,
                                         1, 0, Init::kHe, rng);
  // Wexp is stored [Co, Ccode=Co]; keep only the surviving input channels.
  const Tensor& wexp = block.wexp().value;
  for (size_t o = 0; o < co; ++o)
    for (size_t r = 0; r < ccode; ++r)
      exp_conv->weight().value.at(o * ccode + r) = wexp.at(o, kept[r]);
  return unit;
}

Engine compile_deployed(const Sequential& model, size_t batch, size_t in_c,
                        size_t in_hw) {
  return Engine::compile(model, batch, in_c, in_hw, in_hw);
}

float deployment_error(AlfConv& block, const Tensor& input, Rng& rng) {
  LayerPtr deployed = make_deployed_unit(block, rng);
  Tensor a = block.forward(input, /*train=*/false);
  Tensor b = deployed->forward(input, /*train=*/false);
  ALF_CHECK(same_shape(a, b));
  float err = 0.0f;
  for (size_t i = 0; i < a.numel(); ++i)
    err = std::max(err, std::abs(a.at(i) - b.at(i)));
  return err;
}

namespace {

ModelCost apply_compression_impl(
    const ModelCost& vanilla, const std::string& new_name,
    const std::function<bool(const LayerCost&, size_t&)>& ccode_for) {
  ModelCost out;
  out.name = new_name;
  for (const LayerCost& l : vanilla.layers) {
    size_t ccode = 0;
    if (l.kind != "conv" || !ccode_for(l, ccode)) {
      out.layers.push_back(l);
      continue;
    }
    ALF_CHECK(ccode >= 1 && ccode <= l.co) << l.name;
    LayerCost code = l;
    code.kind = "conv_code";
    code.co = ccode;
    code.params = static_cast<unsigned long long>(l.k) * l.k * l.ci * ccode;
    code.macs = code.params * l.out_h * l.out_w;
    out.layers.push_back(code);

    LayerCost exp;
    exp.name = l.name + "_exp";
    exp.kind = "conv_exp";
    exp.ci = ccode;
    exp.co = l.co;
    exp.k = 1;
    exp.stride = 1;
    exp.out_h = l.out_h;
    exp.out_w = l.out_w;
    exp.params = static_cast<unsigned long long>(ccode) * l.co;
    exp.macs = exp.params * l.out_h * l.out_w;
    out.layers.push_back(exp);
  }
  return out;
}

}  // namespace

ModelCost apply_alf_compression(
    const ModelCost& vanilla,
    const std::map<std::string, size_t>& ccode_by_name,
    const std::string& new_name) {
  return apply_compression_impl(
      vanilla, new_name,
      [&ccode_by_name](const LayerCost& l, size_t& ccode) {
        auto it = ccode_by_name.find(l.name);
        if (it == ccode_by_name.end()) return false;
        ccode = it->second;
        return true;
      });
}

ModelCost apply_alf_fractions(
    const ModelCost& vanilla,
    const std::map<std::string, double>& frac_by_name,
    const std::string& new_name) {
  return apply_compression_impl(
      vanilla, new_name, [&frac_by_name](const LayerCost& l, size_t& ccode) {
        auto it = frac_by_name.find(l.name);
        if (it == frac_by_name.end()) return false;
        const double f = std::clamp(it->second, 0.0, 1.0);
        ccode = std::max<size_t>(
            1, static_cast<size_t>(std::lround(f * static_cast<double>(l.co))));
        return true;
      });
}

}  // namespace alf
