// Table III — benchmarking on the ImageNet substitute: full-scale Params and
// OPs for SqueezeNet, GoogLeNet, ResNet-18 and pruned ResNet-18 variants
// (LCNN, FPGM, AMC, ALF), plus accuracy on the reduced-scale synthetic task
// for the trainable variants.
//
// Paper findings to reproduce: ALF sits on the params/OPs/accuracy pareto
// front — far fewer OPs than FPGM/AMC at some accuracy cost, more accurate
// than LCNN at higher OPs.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "prune/amc.hpp"
#include "prune/finetune.hpp"
#include "prune/lcnn.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

struct Row {
  std::string method, policy;
  unsigned long long params, ops;
  std::string acc;  ///< formatted (may be "-")
};

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::printf("Table III: ImageNet-substitute benchmark (scale=%s)\n\n",
              s.name);

  const DataConfig task = imagenet_task(s);
  SyntheticImageDataset train(task, s.train_n, 1);
  SyntheticImageDataset test(task, s.test_n, 2);

  const ModelCost squeeze = cost_squeezenet_imagenet();
  const ModelCost google = cost_googlenet_imagenet();
  const ModelCost resnet18 = cost_resnet18_imagenet();

  std::vector<Row> rows;
  rows.push_back({"SqueezeNet", "-", squeeze.total_params(),
                  squeeze.total_ops(), "-"});
  rows.push_back({"GoogLeNet", "-", google.total_params(), google.total_ops(),
                  "-"});

  auto fmt_acc = [](double a) { return Table::fmt(100.0 * a, 1); };

  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;
  mc.classes = task.classes;

  // --- Vanilla ResNet-18 (trained at reduced scale). ---
  double vanilla_acc = 0.0;
  {
    Rng rng(31);
    auto model = build_resnet18(mc, rng, standard_conv_maker(mc.init, &rng));
    const auto hist = Trainer(*model, train, test, train_config(s)).run();
    vanilla_acc = hist.back().test_acc;
    rows.push_back({"ResNet-18", "-", resnet18.total_params(),
                    resnet18.total_ops(), fmt_acc(vanilla_acc)});
    std::printf("trained ResNet-18 (acc %.1f%%)\n", 100 * vanilla_acc);
    std::fflush(stdout);
  }

  // --- LCNN: dictionary filter-sharing on a trained model. ---
  {
    Rng rng(31);
    auto model = build_resnet18(mc, rng, standard_conv_maker(mc.init, &rng));
    Trainer(*model, train, test, train_config(s)).run();
    auto convs = collect_convs(*model);
    LcnnConfig lcfg;
    lcfg.dict_frac = 0.25;
    Rng krng(55);
    std::map<std::string, size_t> dict_sizes;
    for (Conv2d* c : convs) {
      const LcnnLayerResult res =
          lcnn_compress_layer(c->weight().value, lcfg, krng);
      lcnn_apply(*c, res);
      // Dictionary size carried onto the full-scale layer.
      for (const LayerCost& l : resnet18.layers) {
        if (l.name == c->name()) {
          dict_sizes[l.name] = std::max<size_t>(
              lcfg.min_dict,
              static_cast<size_t>(std::lround(lcfg.dict_frac * l.co)));
        }
      }
    }
    const double acc = Trainer::evaluate(*model, test);
    const ModelCost lcost =
        apply_lcnn_cost(resnet18, dict_sizes, lcfg.lookup_terms, "LCNN");
    rows.push_back({"LCNN", "Automatic", lcost.total_params(),
                    lcost.total_ops(), fmt_acc(acc)});
    std::printf("LCNN done (acc %.1f%%)\n", 100 * acc);
    std::fflush(stdout);
  }

  // --- FPGM: uniform geometric-median pruning + fine-tune. ---
  {
    Rng rng(31);
    auto model = build_resnet18(mc, rng, standard_conv_maker(mc.init, &rng));
    Trainer(*model, train, test, train_config(s)).run();
    auto convs = collect_convs(*model);
    const double keep = 0.78;  // mild pruning, like the paper's FPGM row
    PrunePlan plan = uniform_plan(convs, keep, PruneRule::kFpgm);
    FinetuneConfig fcfg;
    fcfg.epochs = std::max<size_t>(2, s.epochs / 4);
    fcfg.batch_size = s.batch;
    const double acc = finetune_pruned(*model, convs, plan, train, test, fcfg);
    std::map<std::string, double> keeps;
    for (size_t i = 1; i < convs.size(); ++i) keeps[convs[i]->name()] = keep;
    const ModelCost pruned = apply_filter_pruning(resnet18, keeps, "FPGM");
    rows.push_back({"FPGM", "Handcrafted", pruned.total_params(),
                    pruned.total_ops(), fmt_acc(acc)});
    std::printf("FPGM done (acc %.1f%%)\n", 100 * acc);
    std::fflush(stdout);
  }

  // --- AMC-lite: learned per-layer ratios + fine-tune. ---
  {
    Rng rng(31);
    auto model = build_resnet18(mc, rng, standard_conv_maker(mc.init, &rng));
    Trainer(*model, train, test, train_config(s)).run();
    auto convs = collect_convs(*model);
    // The reward needs relative OPs only, so the full-scale cost (with
    // matching layer names) serves directly.
    AmcConfig acfg;
    acfg.target_ops_frac = 0.5;
    const AmcResult res = amc_search(*model, convs, resnet18, test, acfg);
    PrunePlan plan = per_layer_plan(convs, res.keep_fracs, acfg.rule);
    FinetuneConfig fcfg;
    fcfg.epochs = std::max<size_t>(2, s.epochs / 4);
    fcfg.batch_size = s.batch;
    const double acc = finetune_pruned(*model, convs, plan, train, test, fcfg);
    const ModelCost pruned = apply_filter_pruning(
        resnet18, keep_by_name(convs, res.keep_fracs), "AMC");
    rows.push_back({"AMC", "RL-Agent", pruned.total_params(),
                    pruned.total_ops(), fmt_acc(acc)});
    std::printf("AMC done (acc %.1f%%)\n", 100 * acc);
    std::fflush(stdout);
  }

  // --- ALF (ours). ---
  {
    Rng rng(31);
    AlfConfig acfg = alf_config(s);
    std::vector<AlfConv*> blocks;
    auto model =
        build_resnet18(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
    const auto hist = Trainer(*model, train, test, train_config(s)).run();
    const ModelCost compressed = apply_alf_fractions(
        resnet18, fractions_by_name(blocks), "ALF-ResNet-18");
    rows.push_back({"ALF (ours)", "Automatic", compressed.total_params(),
                    compressed.total_ops(), fmt_acc(hist.back().test_acc)});
    std::printf("ALF done (remaining %.1f%%, acc %.1f%%)\n",
                100 * hist.back().remaining_filters,
                100 * hist.back().test_acc);
    std::fflush(stdout);
  }

  Table table("Table III — ImageNet substitute (Params/OPs at full scale)");
  table.set_header(
      {"Method", "Policy", "Params", "OPs[1e6]", "Acc[%] (scaled task)"});
  const unsigned long long bp = resnet18.total_params();
  const unsigned long long bo = resnet18.total_ops();
  for (const Row& r : rows) {
    table.add_row({r.method, r.policy, params_cell(r.params, bp),
                   ops_cell(r.ops, bo), r.acc});
  }
  std::printf("\n");
  table.print();
  table.write_csv("table3.csv");

  std::printf(
      "\nPaper reference: SqueezeNet 1.23M/1722, GoogLeNet 6.8M/3004, "
      "ResNet-18 11.83M/3743; pruned ResNet-18: LCNN 749 MOPs/62.2%%, "
      "FPGM 2178/67.8%%, AMC 8.9M/1874/67.7%%, ALF 4.24M/1239/64.3%%.\n");
  return 0;
}
