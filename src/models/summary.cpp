#include "models/summary.hpp"

#include "core/table.hpp"

namespace alf {

std::vector<LayerSummary> summarize(Sequential& model) {
  std::vector<LayerSummary> rows;
  model.visit([&rows](Layer& l) {
    // Containers contribute no parameters of their own; their children are
    // visited separately.
    const std::string kind = l.kind();
    if (kind == "sequential" || kind == "residual") return;
    LayerSummary s;
    s.name = l.name();
    s.kind = kind;
    for (Param* p : l.params()) {
      s.param_count += p->value.numel();
      if (!s.shape_note.empty()) s.shape_note += " + ";
      std::string dims;
      for (size_t d = 0; d < p->value.rank(); ++d) {
        if (d) dims += "x";
        dims += std::to_string(p->value.dim(d));
      }
      s.shape_note += dims;
    }
    rows.push_back(std::move(s));
  });
  return rows;
}

size_t count_parameters(Sequential& model) {
  size_t total = 0;
  for (Param* p : model.params()) total += p->value.numel();
  return total;
}

std::string summary_table(Sequential& model) {
  Table t("model: " + model.name());
  t.set_header({"layer", "kind", "params", "shapes"});
  size_t total = 0;
  for (const LayerSummary& s : summarize(model)) {
    t.add_row({s.name, s.kind,
               std::to_string(s.param_count),
               s.shape_note.empty() ? "-" : s.shape_note});
    total += s.param_count;
  }
  t.add_row({"TOTAL", "", std::to_string(total), ""});
  return t.to_string();
}

}  // namespace alf
