#include <gtest/gtest.h>

#include <cmath>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace alf {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double lo = -1.0,
                     double hi = 1.0) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

/// Naive reference GEMM.
Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const size_t m = ta ? a.dim(1) : a.dim(0);
  const size_t k = ta ? a.dim(0) : a.dim(1);
  const size_t n = tb ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  for (size_t i = 0; i < m; ++i)
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a.at(kk, i) : a.at(i, kk);
        const float bv = tb ? b.at(j, kk) : b.at(kk, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

TEST(Tensor, ShapeAndFill) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3u);
  t.fill(2.5f);
  EXPECT_FLOAT_EQ(t.at(13), 2.5f);
  EXPECT_DOUBLE_EQ(t.sum(), 24 * 2.5);
  EXPECT_DOUBLE_EQ(t.mean(), 2.5);
}

TEST(Tensor, ConstructFromData) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t.at(1, 2) = 7.0f;
  Tensor r = t.reshaped({3, 4});
  EXPECT_FLOAT_EQ(r.at(2, 0), 7.0f);  // flat index 8
  EXPECT_THROW(t.reshaped({5, 5}), CheckError);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, {1.0f, 2.0f, 3.0f});
  Tensor b({3}, {10.0f, 20.0f, 30.0f});
  a += b;
  EXPECT_FLOAT_EQ(a.at(2), 33.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a.at(2), 3.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a.at(0), 2.0f);
}

TEST(Tensor, NormsAndAbsMax) {
  Tensor t({2}, {3.0f, -4.0f});
  EXPECT_DOUBLE_EQ(t.l2_norm(), 5.0);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t.at(t.numel() - 1), 9.0f);
  EXPECT_THROW(t.at4(2, 0, 0, 0), CheckError);
}

struct GemmCase {
  size_t m, k, n;
  bool ta, tb;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaive) {
  const GemmCase& c = GetParam();
  Rng rng(c.m * 31 + c.k * 7 + c.n + (c.ta ? 1000 : 0) + (c.tb ? 2000 : 0));
  Tensor a = c.ta ? random_tensor({c.k, c.m}, rng)
                  : random_tensor({c.m, c.k}, rng);
  Tensor b = c.tb ? random_tensor({c.n, c.k}, rng)
                  : random_tensor({c.k, c.n}, rng);
  Tensor got = matmul(a, b, c.ta, c.tb);
  Tensor want = naive_matmul(a, b, c.ta, c.tb);
  for (size_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got.at(i), want.at(i), 1e-4) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposes, GemmTest,
    ::testing::Values(GemmCase{4, 5, 6, false, false},
                      GemmCase{4, 5, 6, false, true},
                      GemmCase{4, 5, 6, true, false},
                      GemmCase{4, 5, 6, true, true},
                      GemmCase{1, 1, 1, false, false},
                      GemmCase{17, 33, 9, false, false},
                      GemmCase{17, 33, 9, true, true},
                      GemmCase{64, 128, 32, false, false},
                      GemmCase{300, 7, 5, false, true}));

TEST(Gemm, AlphaBetaAccumulate) {
  Rng rng(3);
  Tensor a = random_tensor({3, 4}, rng);
  Tensor b = random_tensor({4, 2}, rng);
  Tensor c({3, 2}, 1.0f);
  gemm(a, false, b, false, c, 2.0f, 0.5f);
  Tensor want = naive_matmul(a, b, false, false);
  for (size_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c.at(i), 2.0f * want.at(i) + 0.5f, 1e-4);
}

// The blocked kernel must agree with the serial reference on shapes that
// straddle the (k, n) block boundaries, for every transpose combination and
// a beta != 0 accumulate.
TEST(Gemm, BlockedMatchesNaiveReferenceOddShapes) {
  struct Case {
    size_t m, k, n;
    bool ta, tb;
  };
  const Case cases[] = {
      {3, 129, 513, false, false},  // one past both block edges
      {5, 127, 511, false, true},   // one short of both block edges
      {17, 200, 650, true, false},  // straddles interior block boundaries
      {9, 130, 30, true, true},
      {1, 300, 1, false, false},    // degenerate vector shapes
      {33, 1, 77, false, true},
  };
  for (const Case& cs : cases) {
    Rng rng(cs.m * 131 + cs.k * 17 + cs.n);
    Tensor a = cs.ta ? random_tensor({cs.k, cs.m}, rng)
                     : random_tensor({cs.m, cs.k}, rng);
    Tensor b = cs.tb ? random_tensor({cs.n, cs.k}, rng)
                     : random_tensor({cs.k, cs.n}, rng);
    Tensor got = random_tensor({cs.m, cs.n}, rng);
    Tensor want = got;  // identical beta source
    gemm(a, cs.ta, b, cs.tb, got, 1.5f, 0.25f);
    gemm_naive(a, cs.ta, b, cs.tb, want, 1.5f, 0.25f);
    for (size_t i = 0; i < got.numel(); ++i)
      ASSERT_NEAR(got.at(i), want.at(i), 2e-3)
          << "m=" << cs.m << " k=" << cs.k << " n=" << cs.n
          << " ta=" << cs.ta << " tb=" << cs.tb << " i=" << i;
  }
}

TEST(Gemm, BetaAccumulateNonSquare) {
  Rng rng(11);
  Tensor a = random_tensor({7, 13}, rng);
  Tensor b = random_tensor({13, 5}, rng);
  Tensor init = random_tensor({7, 5}, rng);
  Tensor c = init;
  gemm(a, false, b, false, c, 1.5f, 0.25f);
  Tensor want = naive_matmul(a, b, false, false);
  for (size_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c.at(i), 1.5f * want.at(i) + 0.25f * init.at(i), 1e-4);
}

TEST(Gemm, BetaOneLeavesExistingSum) {
  Rng rng(13);
  Tensor a = random_tensor({3, 9}, rng);
  Tensor b = random_tensor({9, 4}, rng);
  Tensor c({3, 4}, 2.0f);
  gemm(a, false, b, false, c, 1.0f, 1.0f);
  Tensor want = naive_matmul(a, b, false, false);
  for (size_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c.at(i), want.at(i) + 2.0f, 1e-4);
}

// The row partition feeds a persistent thread pool; per output element the
// accumulation order is fixed by the global k-block grid, so 1-thread and
// N-thread runs must be bit-identical (the determinism contract the trainer
// tests rely on).
TEST(Gemm, BitIdenticalAcrossThreadCounts) {
  Rng rng(29);
  Tensor a = random_tensor({97, 161}, rng);
  Tensor b = random_tensor({161, 45}, rng);
  set_parallel_threads(1);
  Tensor c1 = matmul(a, b);
  set_parallel_threads(8);
  Tensor c8 = matmul(a, b);
  set_parallel_threads(3);
  Tensor c3 = matmul(a, b);
  set_parallel_threads(0);
  for (size_t i = 0; i < c1.numel(); ++i) {
    ASSERT_EQ(c1.at(i), c8.at(i)) << "i=" << i;
    ASSERT_EQ(c1.at(i), c3.at(i)) << "i=" << i;
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  Tensor c({2, 5});
  EXPECT_THROW(gemm(a, false, b, false, c), CheckError);
}

TEST(Im2col, IdentityKernelReproducesImage) {
  // 1x1 kernel, stride 1, no padding: col equals the flattened image.
  Rng rng(5);
  Tensor img = random_tensor({2, 3, 4}, rng);
  const ConvGeom g{2, 3, 4, 1, 1, 0};
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(img, g, col);
  for (size_t i = 0; i < img.numel(); ++i)
    EXPECT_FLOAT_EQ(col.at(i), img.at(i));
}

TEST(Im2col, PaddingProducesZeros) {
  Tensor img({1, 2, 2}, 1.0f);
  const ConvGeom g{1, 2, 2, 3, 1, 1};
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(img, g, col);
  // Top-left kernel position at output (0,0) reads the padded corner.
  EXPECT_FLOAT_EQ(col.at(0, 0), 0.0f);
  // Center kernel tap (kh=1,kw=1) at output (0,0) reads img(0,0).
  EXPECT_FLOAT_EQ(col.at(4, 0), 1.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property that
  // makes conv backward correct.
  Rng rng(9);
  const ConvGeom g{3, 6, 5, 3, 2, 1};
  Tensor x = random_tensor({3, 6, 5}, rng);
  Tensor y = random_tensor({g.col_rows(), g.col_cols()}, rng);
  Tensor colx({g.col_rows(), g.col_cols()});
  im2col(x, g, colx);
  double lhs = 0.0;
  for (size_t i = 0; i < colx.numel(); ++i)
    lhs += static_cast<double>(colx.at(i)) * y.at(i);
  Tensor xback({3, 6, 5});
  col2im(y, g, xback);
  double rhs = 0.0;
  for (size_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x.at(i)) * xback.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, HadamardAndAxpy) {
  Tensor a({3}, {1.0f, 2.0f, 3.0f});
  Tensor b({3}, {4.0f, 5.0f, 6.0f});
  Tensor h = hadamard(a, b);
  EXPECT_FLOAT_EQ(h.at(1), 10.0f);
  axpy(2.0f, a, b);
  EXPECT_FLOAT_EQ(b.at(2), 12.0f);
}

TEST(Ops, MseIsMeanSquaredError) {
  Tensor a({2}, {1.0f, 3.0f});
  Tensor b({2}, {2.0f, 1.0f});
  EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 4.0) / 2.0);
}

TEST(Ops, Transpose2d) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
}

TEST(Init, ParseAndNames) {
  EXPECT_EQ(parse_init("he"), Init::kHe);
  EXPECT_EQ(parse_init("xavier"), Init::kXavier);
  EXPECT_EQ(parse_init("rand"), Init::kRand);
  EXPECT_THROW(parse_init("bogus"), CheckError);
  EXPECT_STREQ(init_name(Init::kXavier), "xavier");
}

TEST(Init, HeVarianceMatchesFanIn) {
  Rng rng(31);
  Tensor t({64, 16, 3, 3});
  size_t fan_in = 0, fan_out = 0;
  conv_fans(t.shape(), fan_in, fan_out);
  EXPECT_EQ(fan_in, 16u * 9u);
  EXPECT_EQ(fan_out, 64u * 9u);
  init_tensor(t, Init::kHe, fan_in, fan_out, rng);
  double sq = 0.0;
  for (size_t i = 0; i < t.numel(); ++i)
    sq += static_cast<double>(t.at(i)) * t.at(i);
  const double var = sq / t.numel();
  EXPECT_NEAR(var, 2.0 / fan_in, 0.3 * 2.0 / fan_in);
}

TEST(Init, XavierBounded) {
  Rng rng(37);
  Tensor t({100, 100});
  init_tensor(t, Init::kXavier, 100, 100, rng);
  const double limit = std::sqrt(6.0 / 200.0);
  EXPECT_LE(t.abs_max(), limit + 1e-6);
  EXPECT_GT(t.abs_max(), 0.5 * limit);  // actually spreads out
}

TEST(Init, IdentityIsNearIdentity) {
  Rng rng(41);
  Tensor t({16, 16});
  init_tensor(t, Init::kIdentity, 16, 16, rng);
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < 16; ++j) {
      const float v = t.at(i, j);
      if (i == j) {
        EXPECT_NEAR(v, 1.0f, 0.011f);
      } else {
        EXPECT_NEAR(v, 0.0f, 0.011f);
        EXPECT_NE(v, 0.0f);  // noise actually applied
      }
    }
  }
}

TEST(Init, IdentityRequiresSquareMatrix) {
  Rng rng(43);
  Tensor rect({4, 5});
  EXPECT_THROW(init_tensor(rect, Init::kIdentity, 4, 5, rng), CheckError);
  Tensor cube({3, 3, 3});
  EXPECT_THROW(init_tensor(cube, Init::kIdentity, 9, 3, rng), CheckError);
}

TEST(Init, ParseIdentity) {
  EXPECT_EQ(parse_init("identity"), Init::kIdentity);
  EXPECT_STREQ(init_name(Init::kIdentity), "identity");
}

}  // namespace
}  // namespace alf
