// Human-readable model summaries: walks a runnable network and reports
// every layer with its parameter count — the `model.summary()` a downstream
// user expects from a training framework.
#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace alf {

/// One row of a model summary.
struct LayerSummary {
  std::string name;
  std::string kind;
  size_t param_count = 0;   ///< task parameters (value tensors)
  std::string shape_note;   ///< e.g. "16x8x3x3" for a conv filter bank
};

/// Flattened per-layer summary (containers are descended, not listed).
std::vector<LayerSummary> summarize(Sequential& model);

/// Total task parameters of the model.
size_t count_parameters(Sequential& model);

/// Renders the summary as an aligned table string.
std::string summary_table(Sequential& model);

}  // namespace alf
