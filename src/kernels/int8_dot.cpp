// Register-tiled int8 qgemm kernels over x86 dot-product instructions:
//
//   int8-avx2 — sign-extends A/B to int16 pairs at pack time and uses
//               vpmaddwd (exact: s8-ranged products can never saturate the
//               32-bit lanes, unlike vpmaddubsw whose 16-bit intermediate
//               overflows at 255*127*2).
//   int8-vnni — vpdpbusd, VEX (AVX-VNNI) or EVEX-256 (AVX512-VNNI+VL)
//               encoding, whichever the CPU has. vpdpbusd is u8*s8, so A
//               is packed as u8 = s8 + 128 (a byte XOR 0x80) and the shift
//               is folded into the zero-point decomposition by using
//               azp_eff = a_zp + 128 against the unsigned row sums.
//
// Both kernels share one structure: B is packed once per call (serially,
// by the calling thread) into kNr-column-interleaved panels whose k groups
// match the instruction's step (int16 pairs / byte quads), then the row
// range is partitioned exactly like every other backend (rows are the only
// parallel axis) and each worker packs its own A rows into kMr-row panels
// and sweeps all B panels with an 8-accumulator 4x16 register tile.
//
// Bit-identity with the scalar oracle (qgemm_int8_body) is structural:
// integer accumulation is exact in any order, zero-point corrections are
// integer, and store_tile() replicates the oracle's float expressions
// operation for operation. That also makes results independent of the
// thread partition for free.
//
// This TU is compiled with -mavx2 when CMake's ALF_SIMD is ON (see
// set_source_files_properties); without it — or on non-x86 hosts — the
// factories return nullptr and the generic int8 backend stays on the
// portable body.
#include <cmath>
#include <cstdint>

#include "kernels/internal.hpp"

#if defined(__AVX2__) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ALF_INT8_DOT 1
// vpdpbusd needs per-function target support and the avxvnni intrinsic
// header; both arrived in GCC 11 / clang 12. Older compilers still build
// the AVX2 kernel.
#if (defined(__clang__) && __clang_major__ >= 12) || \
    (!defined(__clang__) && defined(__GNUC__) && __GNUC__ >= 11)
#define ALF_INT8_VNNI 1
#endif
#endif

#if defined(ALF_INT8_DOT)
#include <immintrin.h>
#endif

namespace alf::kernels {

#if defined(ALF_INT8_DOT)

namespace {

constexpr size_t kMr = 4;   // register-tile rows
constexpr size_t kNr = 16;  // register-tile columns (two ymm of int32)
/// Below this madd count the pack/correction overhead loses to the plain
/// body; delegate there (bit-identical, so the cutoff is invisible).
constexpr size_t kScalarCutoffMadds = size_t{1} << 12;
/// Same per-worker floor as the other backends (core/parallel chunking).
constexpr size_t kMaddsPerWorker = size_t{1} << 16;

inline int32_t load_i32(const void* p) {
  int32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Applies the zero-point corrections to one kMr x kNr integer tile and
/// requantizes into C. The float expressions below must stay operation-
/// for-operation identical to qgemm_int8_body's store loop — that is what
/// makes every backend bit-identical.
///
/// `acc` holds the raw dot products Σ_k a'[i,k]*b[k,j] (a' being whatever
/// encoding the kernel packed: signed for avx2, +128-shifted unsigned for
/// vnni). `azp_eff` is the zero point in that same encoding and `rowsum`
/// (nullable when bzp == 0) the per-row sums of a', indexed from the tile's
/// first row. `colsum` (nullable when azp_eff == 0) has global column
/// indices.
inline void store_tile(const int32_t* acc, size_t i0, size_t pr, size_t j0,
                       size_t cols, size_t k, const int32_t* colsum,
                       const int32_t* rowsum, int32_t azp_eff, int32_t bzp,
                       const QgemmParams& p, float* c, size_t ldc) {
  const int32_t kzz = static_cast<int32_t>(k) * azp_eff * bzp;
  if (cols == kNr) {
    // Full tile: the whole epilogue in two ymm per row. The integer
    // corrections are exact either way and the float ops below pair up
    // 1:1 (same association) with the scalar branch, so both store
    // bit-identical values.
    __m256i corr0 = _mm256_setzero_si256();
    __m256i corr1 = _mm256_setzero_si256();
    if (azp_eff != 0) {
      const __m256i az = _mm256_set1_epi32(azp_eff);
      corr0 = _mm256_mullo_epi32(
          az, _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(colsum + j0)));
      corr1 = _mm256_mullo_epi32(
          az, _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(colsum + j0 + 8)));
    }
    __m256 bs0 = _mm256_setzero_ps(), bs1 = _mm256_setzero_ps();
    if (p.b_scales != nullptr) {
      bs0 = _mm256_loadu_ps(p.b_scales + j0);
      bs1 = _mm256_loadu_ps(p.b_scales + j0 + 8);
    }
    for (size_t r = 0; r < pr; ++r) {
      const size_t i = i0 + r;
      const int32_t row_corr =
          kzz - (rowsum != nullptr ? bzp * rowsum[r] : 0);
      const float sa = p.a_scales != nullptr ? p.a_scales[i] : p.a_scale;
      const int32_t* arow = acc + r * kNr;
      const __m256i rc = _mm256_set1_epi32(row_corr);
      __m256i v0 = _mm256_add_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow)), rc);
      __m256i v1 = _mm256_add_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow + 8)),
          rc);
      v0 = _mm256_sub_epi32(v0, corr0);
      v1 = _mm256_sub_epi32(v1, corr1);
      __m256 s0, s1;
      if (p.b_scales == nullptr) {
        s0 = s1 = _mm256_set1_ps(sa * p.b_scale);
      } else {
        const __m256 sav = _mm256_set1_ps(sa);
        s0 = _mm256_mul_ps(sav, bs0);
        s1 = _mm256_mul_ps(sav, bs1);
      }
      float* crow = c + i * ldc + j0;
      _mm256_storeu_ps(crow, _mm256_mul_ps(s0, _mm256_cvtepi32_ps(v0)));
      _mm256_storeu_ps(crow + 8,
                       _mm256_mul_ps(s1, _mm256_cvtepi32_ps(v1)));
    }
    return;
  }
  for (size_t r = 0; r < pr; ++r) {
    const size_t i = i0 + r;
    const int32_t row_corr = kzz - (rowsum != nullptr ? bzp * rowsum[r] : 0);
    const float sa = p.a_scales != nullptr ? p.a_scales[i] : p.a_scale;
    const float scale = sa * p.b_scale;
    float* crow = c + i * ldc + j0;
    const int32_t* arow = acc + r * kNr;
    for (size_t j = 0; j < cols; ++j) {
      int32_t v = arow[j] + row_corr;
      if (azp_eff != 0) v -= azp_eff * colsum[j0 + j];
      crow[j] = p.b_scales == nullptr
                    ? scale * static_cast<float>(v)
                    : sa * p.b_scales[j0 + j] * static_cast<float>(v);
    }
  }
}

/// Row partition shared by both drivers: identical gating to the other
/// backends, so call sites see one consistent threading policy.
template <typename F>
void partition_rows(size_t m, size_t k, size_t n, const F& process_rows) {
  const size_t madds_per_row = std::max<size_t>(1, k * n);
  const size_t min_rows = std::max<size_t>(1, kMaddsPerWorker / madds_per_row);
  if (in_parallel_region() || m <= min_rows || parallel_threads() <= 1) {
    process_rows(0, m);
    return;
  }
  parallel_for_chunked(0, m, process_rows, min_rows);
}

// --- AVX2 vpmaddwd kernel --------------------------------------------------

/// 4x16 tile over int16 pairs: `ap` is [k/2][4 rows][2 k] int16, `bp` is
/// [k/2][16 cols][2 k] int16 (64 bytes — a cache line — per pair step).
/// vpmaddwd multiplies the (k0,k1) pair against each column's matching pair
/// and adds horizontally into the int32 lane; s8-ranged operands keep
/// every intermediate far from the lane limits, so accumulation is exact.
void qgemm_micro_avx2(const int16_t* ap, const int16_t* bp, size_t kp,
                      int32_t* acc) {
  __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
  for (size_t q = 0; q < kp; ++q) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
    bp += 32;
    __m256i va = _mm256_set1_epi32(load_i32(ap));
    c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(va, b0));
    c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(va, b1));
    va = _mm256_set1_epi32(load_i32(ap + 2));
    c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(va, b0));
    c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(va, b1));
    va = _mm256_set1_epi32(load_i32(ap + 4));
    c20 = _mm256_add_epi32(c20, _mm256_madd_epi16(va, b0));
    c21 = _mm256_add_epi32(c21, _mm256_madd_epi16(va, b1));
    va = _mm256_set1_epi32(load_i32(ap + 6));
    c30 = _mm256_add_epi32(c30, _mm256_madd_epi16(va, b0));
    c31 = _mm256_add_epi32(c31, _mm256_madd_epi16(va, b1));
    ap += 8;
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0), c00);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 8), c01);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 16), c10);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 24), c11);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 32), c20);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 40), c21);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 48), c30);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 56), c31);
}

/// colsum[j] = sum over k of B[kk][j], vectorized 16 columns at a time
/// with the accumulators held in registers across the whole k sweep.
inline void colsum_s8(const int8_t* b, size_t ldb, size_t k, size_t n,
                      int32_t* colsum) {
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256i lo = _mm256_setzero_si256();
    __m256i hi = _mm256_setzero_si256();
    for (size_t kk = 0; kk < k; ++kk) {
      const __m256i v16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + kk * ldb + j)));
      lo = _mm256_add_epi32(
          lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v16)));
      hi = _mm256_add_epi32(
          hi, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(v16, 1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + j), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + j + 8), hi);
  }
  for (; j < n; ++j) {
    int32_t s = 0;
    for (size_t kk = 0; kk < k; ++kk)
      s += static_cast<int32_t>(b[kk * ldb + j]);
    colsum[j] = s;
  }
}

/// Packs one full 2-k x 16-col B tile into the [16 cols][2 k] int16 pair
/// layout: sign-extend both rows, interleave words, then fix the lane
/// order (unpack interleaves per 128-bit lane).
inline void pack_b_pair16(const int8_t* r0, const int8_t* r1, int16_t* dst) {
  const __m256i a = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0)));
  const __m256i b = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1)));
  const __m256i lo = _mm256_unpacklo_epi16(a, b);
  const __m256i hi = _mm256_unpackhi_epi16(a, b);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_permute2x128_si256(lo, hi, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 16),
                      _mm256_permute2x128_si256(lo, hi, 0x31));
}

/// Packs one full 4-k x 16-col B tile into the [16 cols][4 k] byte-quad
/// layout — a 4x16 byte transpose in two unpack stages.
inline void pack_b_quad16(const int8_t* r0, const int8_t* r1,
                          const int8_t* r2, const int8_t* r3, int8_t* dst) {
  const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0));
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1));
  const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2));
  const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3));
  const __m128i ab_lo = _mm_unpacklo_epi8(a, b);  // a0 b0 a1 b1 .. (cols 0-7)
  const __m128i ab_hi = _mm_unpackhi_epi8(a, b);  // cols 8-15
  const __m128i cd_lo = _mm_unpacklo_epi8(c, d);
  const __m128i cd_hi = _mm_unpackhi_epi8(c, d);
  __m128i* out = reinterpret_cast<__m128i*>(dst);
  _mm_storeu_si128(out + 0, _mm_unpacklo_epi16(ab_lo, cd_lo));  // cols 0-3
  _mm_storeu_si128(out + 1, _mm_unpackhi_epi16(ab_lo, cd_lo));  // cols 4-7
  _mm_storeu_si128(out + 2, _mm_unpacklo_epi16(ab_hi, cd_hi));  // cols 8-11
  _mm_storeu_si128(out + 3, _mm_unpackhi_epi16(ab_hi, cd_hi));  // 12-15
}

void qgemm_avx2(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p) {
  if (m * k * n < kScalarCutoffMadds) {
    detail::qgemm_int8(a, lda, b, ldb, c, ldc, m, k, n, p);
    return;
  }
  const int32_t azp = p.a_zp, bzp = p.b_zp;
  const size_t kp = (k + 1) / 2;
  const size_t npan = (n + kNr - 1) / kNr;
  const size_t b_panel_words = kp * 2 * kNr;
  // Pack op-ready B panels once, shared read-only across the row
  // partition (the caller blocks in parallel_for_chunked, so the
  // thread_local buffers outlive every worker's use of them).
  thread_local std::vector<int16_t> bpack_tls;
  thread_local std::vector<int32_t> colsum_tls;
  bpack_tls.resize(npan * b_panel_words);
  int16_t* const bpack = bpack_tls.data();
  int32_t* colsum = nullptr;
  if (azp != 0) {
    colsum_tls.resize(n);
    colsum = colsum_tls.data();
    colsum_s8(b, ldb, k, n, colsum);
  }
  for (size_t jp = 0; jp < npan; ++jp) {
    int16_t* panel = bpack + jp * b_panel_words;
    const size_t j0 = jp * kNr;
    const size_t cols = std::min(kNr, n - j0);
    for (size_t q = 0; q < kp; ++q) {
      const size_t k0 = 2 * q;
      const size_t ks = std::min<size_t>(2, k - k0);
      int16_t* dst = panel + q * (2 * kNr);
      if (cols == kNr && ks == 2) {
        // Full tile: vector transpose (16-byte loads stay in bounds —
        // j0 + kNr <= n <= ldb).
        const int8_t* brow = b + k0 * ldb + j0;
        pack_b_pair16(brow, brow + ldb, dst);
        continue;
      }
      std::memset(dst, 0, 2 * kNr * sizeof(int16_t));
      for (size_t s = 0; s < ks; ++s) {
        const int8_t* brow = b + (k0 + s) * ldb + j0;
        for (size_t cc = 0; cc < cols; ++cc)
          dst[cc * 2 + s] = static_cast<int16_t>(brow[cc]);
      }
    }
  }

  const auto process_rows = [=](size_t r0, size_t r1) {
    thread_local std::vector<int16_t> apack_tls;
    thread_local std::vector<int32_t> rowsum_tls;
    const size_t rows = r1 - r0;
    const size_t rpan = (rows + kMr - 1) / kMr;
    const size_t a_panel_words = kp * 2 * kMr;
    apack_tls.resize(rpan * a_panel_words);
    int16_t* const apack = apack_tls.data();
    int32_t* rowsum = nullptr;
    if (bzp != 0) {
      rowsum_tls.resize(rows);
      rowsum = rowsum_tls.data();
    }
    for (size_t rp = 0; rp < rpan; ++rp) {
      int16_t* panel = apack + rp * a_panel_words;
      const size_t i0 = r0 + rp * kMr;
      const size_t pr = std::min(kMr, r1 - i0);
      for (size_t q = 0; q < kp; ++q) {
        const size_t k0 = 2 * q;
        const size_t ks = std::min<size_t>(2, k - k0);
        int16_t* dst = panel + q * (2 * kMr);
        std::memset(dst, 0, 2 * kMr * sizeof(int16_t));
        for (size_t r = 0; r < pr; ++r) {
          const int8_t* arow = a + (i0 + r) * lda + k0;
          for (size_t s = 0; s < ks; ++s)
            dst[r * 2 + s] = static_cast<int16_t>(arow[s]);
        }
      }
      if (rowsum != nullptr) {
        for (size_t r = 0; r < pr; ++r) {
          const int8_t* arow = a + (i0 + r) * lda;
          int32_t s = 0;
          for (size_t kk = 0; kk < k; ++kk)
            s += static_cast<int32_t>(arow[kk]);
          rowsum[i0 - r0 + r] = s;
        }
      }
    }
    alignas(32) int32_t acc[kMr * kNr];
    for (size_t jp = 0; jp < npan; ++jp) {
      const size_t j0 = jp * kNr;
      const size_t cols = std::min(kNr, n - j0);
      const int16_t* bpanel = bpack + jp * b_panel_words;
      for (size_t rp = 0; rp < rpan; ++rp) {
        const size_t i0 = r0 + rp * kMr;
        const size_t pr = std::min(kMr, r1 - i0);
        qgemm_micro_avx2(apack + rp * a_panel_words, bpanel, kp, acc);
        store_tile(acc, i0, pr, j0, cols, k, colsum,
                   rowsum != nullptr ? rowsum + (i0 - r0) : nullptr, azp, bzp,
                   p, c, ldc);
      }
    }
  };
  partition_rows(m, k, n, process_rows);
}

// --- Quantize helpers ------------------------------------------------------

/// Narrows two ymm of clamped int32 (16 lanes, in order) to 16 int8.
/// packs_epi32/16 interleave per 128-bit lane, hence the qword shuffle;
/// saturation never fires — the inputs are pre-clamped to ±levels.
inline void store_16xi8(__m256i a, __m256i b, int8_t* dst) {
  __m256i w = _mm256_packs_epi32(a, b);   // [a0-3 b0-3 | a4-7 b4-7] words
  w = _mm256_permute4x64_epi64(w, 0xD8);  // [a0-7 | b0-7] words
  const __m256i bytes = _mm256_packs_epi16(w, w);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(dst),
                   _mm256_castsi256_si128(bytes));
  _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + 8),
                   _mm256_extracti128_si256(bytes, 1));
}

inline __m256i quant_8(__m256 v, __m256 vinv, __m256i vzp, __m256i vlo,
                       __m256i vhi) {
  // cvtps_epi32 rounds per MXCSR — nearest-even, exactly the scalar
  // tail's rintf. Inputs are bounded by the caller's max-abs scaling, so
  // the out-of-range indefinite result can't occur.
  __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(v, vinv));
  q = _mm256_add_epi32(q, vzp);
  return _mm256_min_epi32(_mm256_max_epi32(q, vlo), vhi);
}

void quantize_row_i8_avx2(const float* src, int8_t* dst, size_t n, float inv,
                          int32_t zp, int32_t levels) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i vzp = _mm256_set1_epi32(zp);
  const __m256i vlo = _mm256_set1_epi32(-levels);
  const __m256i vhi = _mm256_set1_epi32(levels);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i a =
        quant_8(_mm256_loadu_ps(src + i), vinv, vzp, vlo, vhi);
    const __m256i b =
        quant_8(_mm256_loadu_ps(src + i + 8), vinv, vzp, vlo, vhi);
    store_16xi8(a, b, dst + i);
  }
  for (; i < n; ++i) {
    int32_t v = static_cast<int32_t>(std::rintf(src[i] * inv)) + zp;
    v = std::min(levels, std::max(-levels, v));
    dst[i] = static_cast<int8_t>(v);
  }
}

void quantize_cols_i8_avx2(const float* src, int8_t* dst, size_t n,
                           const float* inv, int32_t zp, int32_t levels) {
  const __m256i vzp = _mm256_set1_epi32(zp);
  const __m256i vlo = _mm256_set1_epi32(-levels);
  const __m256i vhi = _mm256_set1_epi32(levels);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i a = quant_8(_mm256_loadu_ps(src + i),
                              _mm256_loadu_ps(inv + i), vzp, vlo, vhi);
    const __m256i b = quant_8(_mm256_loadu_ps(src + i + 8),
                              _mm256_loadu_ps(inv + i + 8), vzp, vlo, vhi);
    store_16xi8(a, b, dst + i);
  }
  for (; i < n; ++i) {
    int32_t v = static_cast<int32_t>(std::rintf(src[i] * inv[i])) + zp;
    v = std::min(levels, std::max(-levels, v));
    dst[i] = static_cast<int8_t>(v);
  }
}

void max_abs_col_blocks_avx2(const float* src, size_t rows, size_t ld,
                             size_t block, size_t nblocks, float* out) {
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const size_t vend = block & ~size_t{7};
  for (size_t jb = 0; jb < nblocks; ++jb) {
    const float* base = src + jb * block;
    __m256 vmax = _mm256_setzero_ps();
    float smax = 0.0f;
    for (size_t r = 0; r < rows; ++r) {
      const float* p = base + r * ld;
      for (size_t c = 0; c < vend; c += 8)
        vmax = _mm256_max_ps(
            vmax, _mm256_and_ps(_mm256_loadu_ps(p + c), absmask));
      for (size_t c = vend; c < block; ++c)
        smax = std::max(smax, std::fabs(p[c]));
    }
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(vmax),
                          _mm256_extractf128_ps(vmax, 1));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    out[jb] = std::max(smax, _mm_cvtss_f32(m));
  }
}

// --- VNNI vpdpbusd kernel --------------------------------------------------

#if defined(ALF_INT8_VNNI)

using VnniMicroFn = void (*)(const uint8_t*, const int8_t*, size_t, int32_t*);

#define ALF_VNNI_FN qgemm_micro_vnni_vex
#define ALF_VNNI_TARGET "avx2,avxvnni"
#define ALF_VNNI_DPBUSD _mm256_dpbusd_avx_epi32
#include "kernels/int8_dot_vnni.inc"

#define ALF_VNNI_FN qgemm_micro_vnni_evex
#define ALF_VNNI_TARGET "avx2,avx512vnni,avx512vl"
#define ALF_VNNI_DPBUSD _mm256_dpbusd_epi32
#include "kernels/int8_dot_vnni.inc"

/// The flavor the host can execute; VEX preferred (no EVEX prefix cost,
/// and it is what AVX512-less client cores ship). Resolved once.
VnniMicroFn vnni_micro() {
  static const VnniMicroFn fn =
      (detected_cpu_features() & kCpuAvxVnni) != 0 ? &qgemm_micro_vnni_vex
                                                   : &qgemm_micro_vnni_evex;
  return fn;
}

void qgemm_vnni(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p) {
  if (m * k * n < kScalarCutoffMadds) {
    detail::qgemm_int8(a, lda, b, ldb, c, ldc, m, k, n, p);
    return;
  }
  const VnniMicroFn micro = vnni_micro();
  // A is packed unsigned (s8 + 128 == byte XOR 0x80), so the effective A
  // zero point is a_zp + 128 — never zero, so the column-sum correction is
  // always on. B stays signed; padding bytes are 0 on both sides, so
  // padded k positions contribute 0 to every accumulator.
  const int32_t azp_eff = p.a_zp + 128;
  const int32_t bzp = p.b_zp;
  const size_t kq = (k + 3) / 4;
  const size_t npan = (n + kNr - 1) / kNr;
  const size_t b_panel_bytes = kq * 4 * kNr;
  thread_local std::vector<int8_t> bpack_tls;
  thread_local std::vector<int32_t> colsum_tls;
  bpack_tls.resize(npan * b_panel_bytes);
  colsum_tls.resize(n);
  int8_t* const bpack = bpack_tls.data();
  int32_t* const colsum = colsum_tls.data();
  colsum_s8(b, ldb, k, n, colsum);
  for (size_t jp = 0; jp < npan; ++jp) {
    int8_t* panel = bpack + jp * b_panel_bytes;
    const size_t j0 = jp * kNr;
    const size_t cols = std::min(kNr, n - j0);
    for (size_t q = 0; q < kq; ++q) {
      const size_t k0 = 4 * q;
      const size_t ks = std::min<size_t>(4, k - k0);
      int8_t* dst = panel + q * (4 * kNr);
      if (cols == kNr && ks == 4) {
        // Full tile: 4x16 byte transpose (16-byte loads stay in bounds —
        // j0 + kNr <= n <= ldb).
        const int8_t* brow = b + k0 * ldb + j0;
        pack_b_quad16(brow, brow + ldb, brow + 2 * ldb, brow + 3 * ldb, dst);
        continue;
      }
      std::memset(dst, 0, 4 * kNr);
      for (size_t s = 0; s < ks; ++s) {
        const int8_t* brow = b + (k0 + s) * ldb + j0;
        for (size_t cc = 0; cc < cols; ++cc) dst[cc * 4 + s] = brow[cc];
      }
    }
  }

  const auto process_rows = [=](size_t r0, size_t r1) {
    thread_local std::vector<uint8_t> apack_tls;
    thread_local std::vector<int32_t> rowsum_tls;
    const size_t rows = r1 - r0;
    const size_t rpan = (rows + kMr - 1) / kMr;
    const size_t a_panel_bytes = kq * 4 * kMr;
    apack_tls.resize(rpan * a_panel_bytes);
    uint8_t* const apack = apack_tls.data();
    int32_t* rowsum = nullptr;
    if (bzp != 0) {
      rowsum_tls.resize(rows);
      rowsum = rowsum_tls.data();
    }
    for (size_t rp = 0; rp < rpan; ++rp) {
      uint8_t* panel = apack + rp * a_panel_bytes;
      const size_t i0 = r0 + rp * kMr;
      const size_t pr = std::min(kMr, r1 - i0);
      for (size_t q = 0; q < kq; ++q) {
        const size_t k0 = 4 * q;
        const size_t ks = std::min<size_t>(4, k - k0);
        uint8_t* dst = panel + q * (4 * kMr);
        std::memset(dst, 0, 4 * kMr);
        for (size_t r = 0; r < pr; ++r) {
          const int8_t* arow = a + (i0 + r) * lda + k0;
          for (size_t s = 0; s < ks; ++s)
            dst[r * 4 + s] =
                static_cast<uint8_t>(static_cast<uint8_t>(arow[s]) ^ 0x80u);
        }
      }
      if (rowsum != nullptr) {
        for (size_t r = 0; r < pr; ++r) {
          const int8_t* arow = a + (i0 + r) * lda;
          int32_t s = 0;
          for (size_t kk = 0; kk < k; ++kk)
            s += static_cast<int32_t>(arow[kk]);
          // Row sum of the *unsigned* packed row: signed sum + 128k.
          rowsum[i0 - r0 + r] = s + 128 * static_cast<int32_t>(k);
        }
      }
    }
    alignas(32) int32_t acc[kMr * kNr];
    for (size_t jp = 0; jp < npan; ++jp) {
      const size_t j0 = jp * kNr;
      const size_t cols = std::min(kNr, n - j0);
      const int8_t* bpanel = bpack + jp * b_panel_bytes;
      for (size_t rp = 0; rp < rpan; ++rp) {
        const size_t i0 = r0 + rp * kMr;
        const size_t pr = std::min(kMr, r1 - i0);
        micro(apack + rp * a_panel_bytes, bpanel, kq, acc);
        store_tile(acc, i0, pr, j0, cols, k, colsum,
                   rowsum != nullptr ? rowsum + (i0 - r0) : nullptr, azp_eff,
                   bzp, p, c, ldc);
      }
    }
  };
  partition_rows(m, k, n, process_rows);
}

#endif  // ALF_INT8_VNNI

}  // namespace

#endif  // ALF_INT8_DOT

namespace detail {

QuantizeRowFn quantize_row_i8_vec() {
#if defined(ALF_INT8_DOT)
  if ((detected_cpu_features() & kCpuAvx2) != 0)
    return &quantize_row_i8_avx2;
#endif
  return nullptr;
}

QuantizeColsFn quantize_cols_i8_vec() {
#if defined(ALF_INT8_DOT)
  if ((detected_cpu_features() & kCpuAvx2) != 0)
    return &quantize_cols_i8_avx2;
#endif
  return nullptr;
}

MaxAbsBlocksFn max_abs_col_blocks_vec() {
#if defined(ALF_INT8_DOT)
  if ((detected_cpu_features() & kCpuAvx2) != 0)
    return &max_abs_col_blocks_avx2;
#endif
  return nullptr;
}

}  // namespace detail

const KernelBackend* int8_avx2_backend() {
#if defined(ALF_INT8_DOT)
  if ((detected_cpu_features() & kCpuAvx2) != 0) {
    static const KernelBackend be{
        .name = "int8-avx2",
        .quantized_datapath = true,
        .required_features = kCpuAvx2,
        .gemm = &detail::gemm_forward_best_float,
        .qgemm = &qgemm_avx2,
    };
    return &be;
  }
#endif
  return nullptr;
}

const KernelBackend* int8_vnni_backend() {
#if defined(ALF_INT8_VNNI)
  const uint32_t det = detected_cpu_features();
  if ((det & (kCpuAvxVnni | kCpuAvx512Vnni)) != 0) {
    static const KernelBackend be{
        .name = "int8-vnni",
        .quantized_datapath = true,
        .required_features = (detected_cpu_features() & kCpuAvxVnni) != 0
                                 ? static_cast<uint32_t>(kCpuAvxVnni)
                                 : static_cast<uint32_t>(kCpuAvx512Vnni),
        .gemm = &detail::gemm_forward_best_float,
        .qgemm = &qgemm_vnni,
    };
    return &be;
  }
#endif
  return nullptr;
}

}  // namespace alf::kernels
