// Spatial pooling layers.
#pragma once

#include "nn/layer.hpp"

namespace alf {

/// Free global-average-pool kernel: x [n, c, hw] -> y [n, c] (double
/// accumulator per channel). Used by GlobalAvgPool::forward and the engine.
void global_avg_pool_view(const float* x, size_t n, size_t c, size_t hw,
                          float* y);

/// Free non-overlapping max-pool kernel: x [n, c, h, w] -> y with window ==
/// stride. `argmax` (flat input index per output element) may be nullptr
/// (inference). Used by MaxPool2d::forward and the engine.
void maxpool_view(const float* x, size_t n, size_t c, size_t h, size_t w,
                  size_t window, float* y, size_t* argmax);

/// Global average pooling: [N, C, H, W] -> [N, C, 1, 1].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : name_(std::move(name)) {}

  const char* kind() const override { return "gap"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  Shape cached_shape_;
};

/// Max pooling with square window and stride == window (non-overlapping).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, size_t window)
      : name_(std::move(name)), window_(window) {}

  const char* kind() const override { return "maxpool"; }
  const std::string& name() const override { return name_; }
  size_t window() const { return window_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  size_t window_;
  Shape cached_shape_;
  std::vector<size_t> argmax_;  // flat input index per output element
};

}  // namespace alf
