// Comparing compression methods on one trained model: magnitude pruning,
// FPGM (geometric median), AMC-lite (learned per-layer ratios), LCNN-style
// dictionary sharing, and ALF — the full baseline suite of the paper on a
// laptop-scale task.
//
// Usage: compare_pruners [--fast]
#include <cstdio>
#include <cstring>

#include "alf/deploy.hpp"
#include "alf/trainer.hpp"
#include "core/table.hpp"
#include "models/cost.hpp"
#include "models/zoo.hpp"
#include "prune/amc.hpp"
#include "prune/finetune.hpp"
#include "prune/lcnn.hpp"

using namespace alf;

namespace {

struct Entry {
  std::string method;
  double acc;
  double ops_frac;
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  DataConfig task = DataConfig::cifar_like();
  task.height = task.width = 16;
  task.max_shift = 1;
  SyntheticImageDataset train_set(task, fast ? 256 : 512, 1);
  SyntheticImageDataset test_set(task, fast ? 128 : 256, 2);

  ModelConfig mc;
  mc.base_width = 8;
  mc.in_hw = 16;
  TrainConfig tcfg;
  tcfg.epochs = fast ? 8 : 16;
  tcfg.batch_size = 32;
  tcfg.task.lr = 0.05f;
  tcfg.lr_milestones = {tcfg.epochs / 2};
  tcfg.ae_steps_per_batch = 2;

  const ModelCost scaled_cost = cost_plain20(10, mc.base_width, mc.in_hw);
  std::vector<Entry> entries;

  // A fresh deterministically-trained vanilla model per method (same seeds
  // => identical starting point; candidates never contaminate each other).
  auto trained_vanilla = [&]() {
    Rng rng(17);
    auto model = build_plain20(mc, rng, standard_conv_maker(mc.init, &rng));
    Trainer(*model, train_set, test_set, tcfg).run();
    return model;
  };

  auto ops_frac_of = [&](const std::map<std::string, double>& keeps) {
    const ModelCost pruned =
        apply_filter_pruning(scaled_cost, keeps, "pruned");
    return static_cast<double>(pruned.total_ops()) / scaled_cost.total_ops();
  };

  FinetuneConfig fcfg;
  fcfg.epochs = fast ? 2 : 4;
  fcfg.batch_size = 32;

  // ---- Vanilla reference. ----
  {
    auto model = trained_vanilla();
    entries.push_back({"vanilla", Trainer::evaluate(*model, test_set), 1.0});
    std::printf("vanilla done\n");
    std::fflush(stdout);
  }

  // ---- Magnitude (Han et al., filter-wise) + fine-tune. ----
  {
    auto model = trained_vanilla();
    auto convs = collect_convs(*model);
    PrunePlan plan = uniform_plan(convs, 0.6, PruneRule::kMagnitude);
    const double acc =
        finetune_pruned(*model, convs, plan, train_set, test_set, fcfg);
    std::map<std::string, double> keeps;
    for (size_t i = 1; i < convs.size(); ++i) keeps[convs[i]->name()] = 0.6;
    entries.push_back({"magnitude (keep 60%)", acc, ops_frac_of(keeps)});
    std::printf("magnitude done\n");
    std::fflush(stdout);
  }

  // ---- FPGM + fine-tune. ----
  {
    auto model = trained_vanilla();
    auto convs = collect_convs(*model);
    PrunePlan plan = uniform_plan(convs, 0.6, PruneRule::kFpgm);
    const double acc =
        finetune_pruned(*model, convs, plan, train_set, test_set, fcfg);
    std::map<std::string, double> keeps;
    for (size_t i = 1; i < convs.size(); ++i) keeps[convs[i]->name()] = 0.6;
    entries.push_back({"FPGM (keep 60%)", acc, ops_frac_of(keeps)});
    std::printf("FPGM done\n");
    std::fflush(stdout);
  }

  // ---- AMC-lite (learned layer-wise ratios) + fine-tune. ----
  {
    auto model = trained_vanilla();
    auto convs = collect_convs(*model);
    AmcConfig acfg;
    acfg.target_ops_frac = 0.5;
    acfg.eval_samples = test_set.size();
    const AmcResult res =
        amc_search(*model, convs, scaled_cost, test_set, acfg);
    PrunePlan plan = per_layer_plan(convs, res.keep_fracs, acfg.rule);
    const double acc =
        finetune_pruned(*model, convs, plan, train_set, test_set, fcfg);
    std::map<std::string, double> keeps;
    for (size_t i = 0; i < convs.size(); ++i)
      keeps[convs[i]->name()] = res.keep_fracs[i];
    entries.push_back({"AMC-lite (target 50% OPs)", acc, ops_frac_of(keeps)});
    std::printf("AMC done\n");
    std::fflush(stdout);
  }

  // ---- LCNN-style dictionary sharing (no fine-tune). ----
  {
    auto model = trained_vanilla();
    auto convs = collect_convs(*model);
    LcnnConfig lcfg;
    lcfg.dict_frac = 0.3;
    Rng krng(3);
    std::map<std::string, size_t> dicts;
    for (Conv2d* c : convs) {
      const LcnnLayerResult res =
          lcnn_compress_layer(c->weight().value, lcfg, krng);
      lcnn_apply(*c, res);
      dicts[c->name()] = res.dictionary.dim(0);
    }
    bn_recalibrate(*model, train_set);
    const double acc = Trainer::evaluate(*model, test_set);
    const ModelCost lc = apply_lcnn_cost(scaled_cost, dicts, 1, "lcnn");
    entries.push_back(
        {"LCNN (dict 30%)", acc,
         static_cast<double>(lc.total_ops()) / scaled_cost.total_ops()});
    std::printf("LCNN done\n");
    std::fflush(stdout);
  }

  // ---- ALF (trained from scratch with compression in the loop). ----
  {
    Rng rng(17);
    AlfConfig alf;
    alf.wae_init = Init::kIdentity;
    alf.lr_mask_mult = fast ? 200.0f : 100.0f;
    alf.threshold = 0.15f;
    alf.pr_max = 0.62f;
    alf.mask_warmup_steps = fast ? 24 : 64;
    std::vector<AlfConv*> blocks;
    auto model =
        build_plain20(mc, rng, make_alf_conv_maker(alf, &rng, &blocks));
    const auto hist = Trainer(*model, train_set, test_set, tcfg).run();
    std::map<std::string, double> fracs;
    for (AlfConv* b : blocks) fracs[b->name()] = b->remaining_fraction();
    const ModelCost compressed =
        apply_alf_fractions(scaled_cost, fracs, "alf");
    entries.push_back(
        {"ALF (ours)", hist.back().test_acc,
         static_cast<double>(compressed.total_ops()) /
             scaled_cost.total_ops()});
    std::printf("ALF done\n");
    std::fflush(stdout);
  }

  Table t("compression methods on Plain-20 / synthetic CIFAR");
  t.set_header({"method", "acc[%]", "OPs vs vanilla"});
  for (const Entry& e : entries) {
    t.add_row({e.method, Table::fmt(100.0 * e.acc, 1),
               Table::fmt(100.0 * e.ops_frac, 1) + "%"});
  }
  std::printf("\n");
  t.print();
  return 0;
}
