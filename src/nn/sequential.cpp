#include "nn/sequential.hpp"

#include <functional>

#include "core/check.hpp"

namespace alf {

Layer* Sequential::add(LayerPtr layer) {
  ALF_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

void Sequential::visit(const std::function<void(Layer&)>& fn) {
  for (auto& l : layers_) {
    fn(*l);
    if (auto* seq = dynamic_cast<Sequential*>(l.get())) {
      seq->visit(fn);
    } else if (auto* res = dynamic_cast<ResidualBlock*>(l.get())) {
      res->body().visit(fn);
      if (res->shortcut() != nullptr) res->shortcut()->visit(fn);
    }
  }
}

ResidualBlock::ResidualBlock(std::string name,
                             std::unique_ptr<Sequential> body,
                             std::unique_ptr<Sequential> shortcut)
    : name_(std::move(name)),
      body_(std::move(body)),
      shortcut_(std::move(shortcut)) {
  ALF_CHECK(body_ != nullptr);
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor main = body_->forward(x, train);
  Tensor skip = (shortcut_ != nullptr) ? shortcut_->forward(x, train) : x;
  ALF_CHECK(same_shape(main, skip))
      << name_ << ": body " << shape_str(main.shape()) << " vs shortcut "
      << shape_str(skip.shape());
  main += skip;
  if (train) cached_sum_ = main;
  // Final ReLU of the block.
  Tensor out(main.shape());
  for (size_t i = 0; i < main.numel(); ++i)
    out.at(i) = main.at(i) > 0.0f ? main.at(i) : 0.0f;
  return out;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_sum_.empty()) << "backward before forward";
  Tensor grad_sum(grad_out.shape());
  for (size_t i = 0; i < grad_out.numel(); ++i)
    grad_sum.at(i) = cached_sum_.at(i) > 0.0f ? grad_out.at(i) : 0.0f;

  Tensor grad_x = body_->backward(grad_sum);
  if (shortcut_ != nullptr) {
    grad_x += shortcut_->backward(grad_sum);
  } else {
    grad_x += grad_sum;
  }
  return grad_x;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> out = body_->params();
  if (shortcut_ != nullptr)
    for (Param* p : shortcut_->params()) out.push_back(p);
  return out;
}

}  // namespace alf
