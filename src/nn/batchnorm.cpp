#include "nn/batchnorm.hpp"

#include <cmath>

#include "core/check.hpp"

namespace alf {

BatchNorm2d::BatchNorm2d(std::string name, size_t channels, float momentum,
                         float eps)
    : name_(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(name_ + ".gamma", {channels}, /*apply_decay=*/false),
      beta_(name_ + ".beta", {channels}, /*apply_decay=*/false),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  gamma_.value.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  ALF_CHECK_EQ(x.dim(1), channels_);
  const size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const size_t hw = h * w;
  const size_t count = n * hw;
  ALF_CHECK(count > 0);

  Tensor out(x.shape());
  Tensor mean({channels_});
  Tensor inv_std({channels_});

  if (train) {
    for (size_t c = 0; c < channels_; ++c) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * hw;
        for (size_t j = 0; j < hw; ++j) s += p[j];
      }
      const double mu = s / static_cast<double>(count);
      double var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * hw;
        for (size_t j = 0; j < hw; ++j) {
          const double d = p[j] - mu;
          var += d * d;
        }
      }
      var /= static_cast<double>(count);
      mean.at(c) = static_cast<float>(mu);
      inv_std.at(c) = static_cast<float>(1.0 / std::sqrt(var + eps_));
      running_mean_.at(c) = (1.0f - momentum_) * running_mean_.at(c) +
                            momentum_ * static_cast<float>(mu);
      running_var_.at(c) = (1.0f - momentum_) * running_var_.at(c) +
                           momentum_ * static_cast<float>(var);
    }
  } else {
    for (size_t c = 0; c < channels_; ++c) {
      mean.at(c) = running_mean_.at(c);
      inv_std.at(c) =
          1.0f / std::sqrt(running_var_.at(c) + eps_);
    }
  }

  Tensor xhat(x.shape());
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < channels_; ++c) {
      const float mu = mean.at(c);
      const float is = inv_std.at(c);
      const float g = gamma_.value.at(c);
      const float b = beta_.value.at(c);
      const float* px = x.data() + (i * channels_ + c) * hw;
      float* ph = xhat.data() + (i * channels_ + c) * hw;
      float* po = out.data() + (i * channels_ + c) * hw;
      for (size_t j = 0; j < hw; ++j) {
        ph[j] = (px[j] - mu) * is;
        po[j] = g * ph[j] + b;
      }
    }
  }

  if (train) {
    cached_xhat_ = std::move(xhat);
    cached_inv_std_ = std::move(inv_std);
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
  }
  return out;
}

void bn_fold_scale_shift(const BatchNorm2d& bn, Tensor& scale, Tensor& shift) {
  const size_t c = bn.channels();
  scale = Tensor({c});
  shift = Tensor({c});
  for (size_t i = 0; i < c; ++i) {
    const float s = bn.gamma().value.at(i) /
                    std::sqrt(bn.running_var().at(i) + bn.eps());
    scale.at(i) = s;
    shift.at(i) = bn.beta().value.at(i) - bn.running_mean().at(i) * s;
  }
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_xhat_.empty()) << "backward before forward(train)";
  const size_t n = cached_n_, hw = cached_h_ * cached_w_;
  const size_t count = n * hw;
  Tensor grad_x(grad_out.shape());

  for (size_t c = 0; c < channels_; ++c) {
    // Accumulate dgamma, dbeta and the two batch sums needed for dx.
    double dgamma = 0.0, dbeta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* pg = grad_out.data() + (i * channels_ + c) * hw;
      const float* ph = cached_xhat_.data() + (i * channels_ + c) * hw;
      for (size_t j = 0; j < hw; ++j) {
        dgamma += static_cast<double>(pg[j]) * ph[j];
        dbeta += pg[j];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(dgamma);
    beta_.grad.at(c) += static_cast<float>(dbeta);

    const float g = gamma_.value.at(c);
    const float is = cached_inv_std_.at(c);
    const float inv_count = 1.0f / static_cast<float>(count);
    const float mean_dy = static_cast<float>(dbeta) * inv_count;
    const float mean_dy_xhat = static_cast<float>(dgamma) * inv_count;
    for (size_t i = 0; i < n; ++i) {
      const float* pg = grad_out.data() + (i * channels_ + c) * hw;
      const float* ph = cached_xhat_.data() + (i * channels_ + c) * hw;
      float* px = grad_x.data() + (i * channels_ + c) * hw;
      for (size_t j = 0; j < hw; ++j) {
        px[j] = g * is * (pg[j] - mean_dy - ph[j] * mean_dy_xhat);
      }
    }
  }
  return grad_x;
}

}  // namespace alf
