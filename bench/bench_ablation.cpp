// Ablation studies of the design choices DESIGN.md calls out (not a paper
// figure — supporting evidence for the reproduction):
//  1. STE vs exact gradients through the autoencoder (Sec. III-B claims the
//     STE is needed for healthy information flow).
//  2. Pruning ceiling pr_max: controls the sparsity/accuracy equilibrium.
//  3. sigma_ae: tanh (paper choice) vs identity.
//  4. Deployment consistency: max |deployed - training block| output error.
#include <cstdio>

#include "bench_common.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

struct Result {
  double acc;
  double remaining;
  float max_deploy_err;
};

Result run(const Scale& s, const AlfConfig& acfg, uint64_t seed) {
  const DataConfig task = cifar_task(s);
  SyntheticImageDataset train(task, s.sweep_train_n, 1);
  SyntheticImageDataset test(task, s.test_n, 2);
  Rng rng(seed);
  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;
  std::vector<AlfConv*> blocks;
  auto model = build_plain20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
  TrainConfig tcfg = train_config(s, seed);
  tcfg.epochs = s.sweep_epochs;
  const auto hist = Trainer(*model, train, test, tcfg).run();

  float max_err = 0.0f;
  if (!acfg.bn_inter) {
    Rng drng(99);
    for (AlfConv* b : blocks) {
      Tensor probe({1, b->in_channels(), 8, 8});
      for (size_t i = 0; i < probe.numel(); ++i)
        probe.at(i) = static_cast<float>(drng.uniform(-1, 1));
      max_err = std::max(max_err, deployment_error(*b, probe, drng));
    }
  }
  return {hist.back().test_acc,
          Trainer::remaining_filters(blocks), max_err};
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::printf("Ablations: STE, pruning ceiling, sigma_ae, deployment "
              "(scale=%s)\n\n", s.name);

  Table table("ALF ablations on Plain-20 / CIFAR-10 substitute");
  table.set_header({"variant", "acc[%]", "remaining_filters[%]",
                    "max deploy err"});

  auto add = [&table](const std::string& label, const Result& r) {
    table.add_row({label, Table::fmt(100.0 * r.acc, 1),
                   Table::fmt(100.0 * r.remaining, 1),
                   Table::fmt(r.max_deploy_err, 6)});
    std::printf("done: %s\n", label.c_str());
    std::fflush(stdout);
  };

  {
    AlfConfig cfg = alf_config(s);
    add("baseline (STE, tanh, pr_max=" + Table::fmt(s.pr_max, 2) + ")",
        run(s, cfg, 7));
  }
  {
    AlfConfig cfg = alf_config(s);
    cfg.use_ste = false;
    add("no STE (exact gradients)", run(s, cfg, 7));
  }
  {
    AlfConfig cfg = alf_config(s);
    cfg.pr_max = 0.3f;
    add("pr_max=0.30 (mild pruning)", run(s, cfg, 7));
  }
  {
    AlfConfig cfg = alf_config(s);
    cfg.pr_max = 0.85f;
    add("pr_max=0.85 (paper value)", run(s, cfg, 7));
  }
  {
    AlfConfig cfg = alf_config(s);
    cfg.sigma_ae = Act::kNone;
    add("sigma_ae=identity", run(s, cfg, 7));
  }

  std::printf("\n");
  table.print();
  table.write_csv("ablation.csv");
  return 0;
}
