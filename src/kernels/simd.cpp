// The "simd" backend: explicitly vectorized GEMM with panel packing.
//
// The inner kernel is a 4x16 register tile — four C rows times two 8-float
// vectors — expressed in portable GCC/Clang vector extensions (no
// intrinsics): the k-loop broadcasts one packed A element per row and FMAs
// it against two B vectors, keeping 8 vector accumulators live.
//
// Both operands are packed. op(B) is packed once per call (by the calling
// thread, before the row partition) into kNr-column-interleaved panels —
// each k step of a panel is one contiguous 64-byte line — which also
// absorbs trans_b at pack time. A panels are packed per (row-block,
// k-block) into kMr-interleaved strips, so both orientations of A (and in
// particular the strided trans_a reads of the backward pass) stream
// contiguously through the kernel. The sweep is blocked over columns
// (kNc) and k (kKc) so the resident set — one kKc x kNc B block plus one
// kMc x kKc A block — fits in L2 and each B panel is reused across the
// full M sweep; without the column blocking, im2col conv shapes (n in the
// thousands) re-stream all of B from memory once per row panel.
//
// Blocking mirrors the scalar backend: a global k-block grid fixes the
// accumulation order of every C element independent of the thread
// partition, so results are bit-identical for any thread count. The row
// range is the only parallel axis.
//
// Build/ISA: CMake's ALF_SIMD=ON compiles this file with wider vector
// flags (-mavx2 -mfma) when the compiler supports them; simd_backend()
// then gates registration on runtime CPU support, so a binary built on a
// new machine still boots on an old one (the registry falls back to
// "scalar"). Without vector extensions (non-GCC/Clang) the backend is
// absent entirely.
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/parallel.hpp"
#include "kernels/internal.hpp"

namespace alf::kernels {

#if defined(__GNUC__) || defined(__clang__)

namespace {

typedef float v8 __attribute__((vector_size(32)));

constexpr size_t kMr = 4;    // C rows per register tile
constexpr size_t kNr = 16;   // C cols per register tile (two v8)
constexpr size_t kMc = 64;   // rows packed per A block (~64KB with kKc)
constexpr size_t kKc = 256;  // k extent of one block (global grid)
constexpr size_t kNc = 256;  // cols per B block (kKc x kNc = 256KB in L2)

// Below this many multiply-adds the packing overhead outweighs the wider
// kernel; delegate to the scalar backend (also covers degenerate shapes).
constexpr size_t kScalarCutoffMadds = size_t{1} << 12;

// Same per-worker arithmetic floor as the scalar backend.
constexpr size_t kMaddsPerWorker = size_t{1} << 16;

inline v8 loadu(const float* p) {
  v8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void storeu(float* p, v8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline v8 splat(float s) { return v8{s, s, s, s, s, s, s, s}; }

/// Packs rows [i0, i0+rows) x k-range [k0, k0+kb) of op(A) into kMr-wide
/// panels: dst panel p holds rows i0+p*kMr.., laid out [kk][r] so the
/// microkernel reads one contiguous kMr group per k step. Short panels are
/// zero-padded (the padded lanes are computed and discarded).
void pack_a(const float* a, size_t lda, bool trans_a, size_t i0, size_t rows,
            size_t k0, size_t kb, float* dst) {
  for (size_t p = 0; p < rows; p += kMr) {
    const size_t pr = std::min(kMr, rows - p);
    float* panel = dst + p * kb;  // each panel is kb * kMr floats
    for (size_t kk = 0; kk < kb; ++kk) {
      for (size_t r = 0; r < kMr; ++r) {
        const size_t i = i0 + p + r;
        panel[kk * kMr + r] =
            r < pr ? (trans_a ? a[(k0 + kk) * lda + i] : a[i * lda + k0 + kk])
                   : 0.0f;
      }
    }
  }
}

/// The register tile over packed panels: C[0:pr, 16 cols] += alpha *
/// apanel * bpanel. `bpanel` walks one packed B panel — 16 contiguous
/// floats (one cache line) per k step.
inline void micro_4x16p(const float* apanel, size_t kb, const float* bpanel,
                        float alpha, float* c, size_t ldc, size_t pr) {
  v8 acc[kMr][2] = {};
  for (size_t kk = 0; kk < kb; ++kk) {
    const v8 b0 = loadu(bpanel);
    const v8 b1 = loadu(bpanel + 8);
    bpanel += kNr;
    const float* ap = apanel + kk * kMr;
    for (size_t r = 0; r < kMr; ++r) {
      const v8 av = splat(ap[r]);
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  const v8 va = splat(alpha);
  for (size_t r = 0; r < pr; ++r) {
    float* crow = c + r * ldc;
    storeu(crow, loadu(crow) + va * acc[r][0]);
    storeu(crow + 8, loadu(crow + 8) + va * acc[r][1]);
  }
}

/// Column tail (n % 16): same vector accumulation over the zero-padded
/// last panel, spilled to a stack row so only the live columns store.
inline void micro_4x16p_partial(const float* apanel, size_t kb,
                                const float* bpanel, float alpha, float* c,
                                size_t ldc, size_t pr, size_t cols) {
  v8 acc[kMr][2] = {};
  for (size_t kk = 0; kk < kb; ++kk) {
    const v8 b0 = loadu(bpanel);
    const v8 b1 = loadu(bpanel + 8);
    bpanel += kNr;
    const float* ap = apanel + kk * kMr;
    for (size_t r = 0; r < kMr; ++r) {
      const v8 av = splat(ap[r]);
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  float tmp[kNr];
  for (size_t r = 0; r < pr; ++r) {
    storeu(tmp, acc[r][0]);
    storeu(tmp + 8, acc[r][1]);
    float* crow = c + r * ldc;
    for (size_t j = 0; j < cols; ++j) crow[j] += alpha * tmp[j];
  }
}

/// The packed kernel body with the (mc, kc, nc) cache-block extents as
/// parameters. gemm_simd pins the historical constants; the tiled entry
/// substitutes tuner-chosen ones (mc rounded up to the kMr register rows,
/// nc down to whole kNr panels — the register tile itself is fixed). For
/// one (kc) choice the k-block grid is global, so each tile candidate is
/// individually bit-stable across thread counts.
void gemm_simd_blocked(const float* pa, size_t lda, bool trans_a,
                       const float* pb, size_t ldb, bool trans_b, float* pc,
                       size_t ldc, size_t m, size_t k, size_t n, float alpha,
                       float beta, size_t mc, size_t kc, size_t nc) {
  if (m * k * n < kScalarCutoffMadds || n < kNr / 2 || k == 0) {
    detail::gemm_scalar(pa, lda, trans_a, pb, ldb, trans_b, pc, ldc, m, k, n,
                        alpha, beta);
    return;
  }
  mc = (std::max<size_t>(mc, kMr) + kMr - 1) & ~(kMr - 1);
  kc = std::max<size_t>(kc, 1);
  nc = std::max<size_t>(nc & ~(kNr - 1), kNr);

  const size_t madds_per_row = std::max<size_t>(1, k * n);
  const size_t min_rows = std::max<size_t>(1, kMaddsPerWorker / madds_per_row);
  const bool inline_run =
      in_parallel_region() || m <= min_rows || parallel_threads() <= 1;

  // Pack op(B) once into kNr-column panels: panel jp holds columns
  // [jp*16, jp*16+16) laid out [kk][16] (zero-padded past n), so every k
  // step of the microkernel is one contiguous cache line and trans_b costs
  // nothing downstream. Packed by the calling thread, then shared
  // read-only across the row partition (the caller blocks in
  // parallel_for_chunked, so the buffer outlives every worker's use).
  const size_t npan = (n + kNr - 1) / kNr;
  const size_t panel_stride = k * kNr;
  thread_local std::vector<float> bpack_tls;
  bpack_tls.resize(npan * panel_stride);
  float* const bp = bpack_tls.data();
  if (!trans_b) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* brow = pb + kk * ldb;
      for (size_t jp = 0; jp < npan; ++jp) {
        const size_t j0 = jp * kNr;
        const size_t cols = std::min(kNr, n - j0);
        float* dst = bp + jp * panel_stride + kk * kNr;
        size_t jj = 0;
        for (; jj < cols; ++jj) dst[jj] = brow[j0 + jj];
        for (; jj < kNr; ++jj) dst[jj] = 0.0f;
      }
    }
  } else {
    // B is stored [N, K]: each source row is one output column, read
    // contiguously and scattered down its panel.
    for (size_t jp = 0; jp < npan; ++jp) {
      float* panel = bp + jp * panel_stride;
      for (size_t jj = 0; jj < kNr; ++jj) {
        const size_t j = jp * kNr + jj;
        if (j < n) {
          const float* bcol = pb + j * ldb;
          for (size_t kk = 0; kk < k; ++kk) panel[kk * kNr + jj] = bcol[kk];
        } else {
          for (size_t kk = 0; kk < k; ++kk) panel[kk * kNr + jj] = 0.0f;
        }
      }
    }
  }

  const size_t pan_per_block = nc / kNr;  // B panels per column block
  const auto process_rows = [=](size_t r0, size_t r1) {
    // Per-thread A packing scratch, persistent across calls (pool workers
    // live for the process).
    thread_local std::vector<float> apack_tls;
    apack_tls.resize(mc * kc);
    float* const apack = apack_tls.data();

    for (size_t i = r0; i < r1; ++i) {
      float* crow = pc + i * ldc;
      if (beta == 0.0f) {
        std::memset(crow, 0, n * sizeof(float));
      } else if (beta != 1.0f) {
        for (size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    for (size_t bj = 0; bj < npan; bj += pan_per_block) {
      const size_t pe = std::min(npan, bj + pan_per_block);
      for (size_t k0 = 0; k0 < k; k0 += kc) {
        const size_t kb = std::min(k, k0 + kc) - k0;
        for (size_t i0 = r0; i0 < r1; i0 += mc) {
          const size_t rows = std::min(r1, i0 + mc) - i0;
          pack_a(pa, lda, trans_a, i0, rows, k0, kb, apack);
          for (size_t jp = bj; jp < pe; ++jp) {
            const float* bpanel = bp + jp * panel_stride + k0 * kNr;
            const size_t j0 = jp * kNr;
            const size_t cols = std::min(kNr, n - j0);
            for (size_t p = 0; p < rows; p += kMr) {
              const size_t pr = std::min(kMr, rows - p);
              const float* apanel = apack + p * kb;
              float* cpan = pc + (i0 + p) * ldc + j0;
              if (cols == kNr)
                micro_4x16p(apanel, kb, bpanel, alpha, cpan, ldc, pr);
              else
                micro_4x16p_partial(apanel, kb, bpanel, alpha, cpan, ldc, pr,
                                    cols);
            }
          }
        }
      }
    }
  };

  if (inline_run) {
    process_rows(0, m);
    return;
  }
  parallel_for_chunked(0, m, process_rows, min_rows);
}

void gemm_simd(const float* pa, size_t lda, bool trans_a, const float* pb,
               size_t ldb, bool trans_b, float* pc, size_t ldc, size_t m,
               size_t k, size_t n, float alpha, float beta) {
  gemm_simd_blocked(pa, lda, trans_a, pb, ldb, trans_b, pc, ldc, m, k, n,
                    alpha, beta, kMc, kKc, kNc);
}

void gemm_simd_tiled(const float* pa, size_t lda, bool trans_a,
                     const float* pb, size_t ldb, bool trans_b, float* pc,
                     size_t ldc, size_t m, size_t k, size_t n, float alpha,
                     float beta, const TileParams& t) {
  gemm_simd_blocked(pa, lda, trans_a, pb, ldb, trans_b, pc, ldc, m, k, n,
                    alpha, beta, t.mc != 0 ? t.mc : kMc,
                    t.kc != 0 ? t.kc : kKc, t.nc != 0 ? t.nc : kNc);
}

/// The shared int8 body instantiated under this file's (possibly wider)
/// ISA flags — same exact integer math as detail::qgemm_int8, usually
/// auto-vectorized much harder.
void qgemm_simd(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p) {
  detail::qgemm_int8_body(a, lda, b, ldb, c, ldc, m, k, n, p);
}

/// True when the host CPU can execute the ISA this file was compiled for.
bool cpu_supported() {
#if defined(__AVX2__) && defined(__x86_64__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return true;  // baseline vector extensions only
#endif
}

}  // namespace

const KernelBackend* simd_backend() {
  if (!cpu_supported()) return nullptr;
  static const KernelBackend be{.name = "simd",
#if defined(__AVX2__) && defined(__x86_64__)
                                .required_features = kCpuAvx2 | kCpuFma,
#endif
                                .gemm = &gemm_simd,
                                .qgemm = &qgemm_simd,
                                .gemm_tiled = &gemm_simd_tiled};
  return &be;
}

#else  // !(__GNUC__ || __clang__)

const KernelBackend* simd_backend() { return nullptr; }

#endif

}  // namespace alf::kernels
