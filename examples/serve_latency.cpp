// Serving-latency sketch: what the batched inference server's hot loop
// will look like once it wraps Engine::run (see ROADMAP).
//
// Compiles ResNet-20 once for the maximum batch, then replays a stream of
// requests with varying batch sizes through the same plan — no per-request
// allocation, no recompilation — and reports latency percentiles and
// throughput against the layer-tree eval path.
//
//   ./serve_latency [--quick|--full] [--requests N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/parallel.hpp"
#include "core/table.hpp"
#include "engine/engine.hpp"
#include "models/zoo.hpp"

using namespace alf;

namespace {

Tensor random_input(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  size_t hw = 16, width = 8, requests = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) requests = 40;
    if (std::strcmp(argv[i], "--full") == 0) {
      hw = 32;
      width = 16;
      requests = 400;
    }
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = static_cast<size_t>(std::max(1L, std::atol(argv[++i])));
  }
  const size_t max_batch = 32;

  Rng rng(23);
  ModelConfig mc;
  mc.base_width = width;
  mc.in_hw = hw;
  auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
  // A couple of training-mode passes so BN statistics are realistic.
  for (int i = 0; i < 2; ++i) {
    Tensor x = random_input({8, mc.in_channels, hw, hw}, rng);
    model->forward(x, true);
  }

  Engine eng = Engine::compile(*model, max_batch, mc.in_channels, hw, hw);
  std::printf("%s\n", eng.plan_str().c_str());

  // Request stream: batch sizes mimic a bursty queue (mostly small, some
  // full batches after a backlog).
  std::vector<size_t> sizes(requests);
  for (size_t i = 0; i < requests; ++i) {
    const double u = rng.uniform();
    sizes[i] = u < 0.5 ? 1 + rng.uniform_index(4)
                       : (u < 0.85 ? 8 + rng.uniform_index(8) : max_batch);
  }
  Tensor x = random_input({max_batch, mc.in_channels, hw, hw}, rng);
  // Output tensors preallocated per batch size outside the serving loop —
  // the engine request path itself performs no allocations.
  std::vector<Tensor> outs(max_batch + 1);
  for (const size_t n : sizes)
    if (outs[n].empty()) outs[n] = Tensor({n, eng.classes()});

  Table table("ResNet-20 serving latency over " +
              std::to_string(requests) + " requests (ms)");
  table.set_header({"path", "p50", "p95", "p99", "images/s"});
  for (const bool use_engine : {false, true}) {
    std::vector<double> lat;
    lat.reserve(requests);
    size_t images = 0;
    const auto t_begin = std::chrono::steady_clock::now();
    for (const size_t n : sizes) {
      Tensor req({n, mc.in_channels, hw, hw});
      std::copy(x.data(), x.data() + req.numel(), req.data());
      const auto t0 = std::chrono::steady_clock::now();
      if (use_engine) {
        eng.run(req, outs[n]);
      } else {
        model->forward(req, false);
      }
      const auto t1 = std::chrono::steady_clock::now();
      lat.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
      images += n;
    }
    const double total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_begin)
            .count();
    table.add_row({use_engine ? "engine" : "layer tree",
                   Table::fmt(percentile(lat, 0.50), 3),
                   Table::fmt(percentile(lat, 0.95), 3),
                   Table::fmt(percentile(lat, 0.99), 3),
                   Table::fmt(static_cast<double>(images) / total_s, 0)});
  }
  table.print();
  std::printf(
      "\nThe batched server (ROADMAP) wraps the engine path: dynamic "
      "batching fills `x` up to batch %zu, one Engine::run per tick.\n",
      max_batch);
  return 0;
}
