#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "alf/checkpoint.hpp"
#include "alf/trainer.hpp"
#include "core/check.hpp"
#include "models/zoo.hpp"

namespace alf {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Small model with every stateful layer kind: conv, BN, ALF block, FC.
std::unique_ptr<Sequential> make_model(uint64_t seed,
                                       std::vector<AlfConv*>* blocks) {
  Rng rng(seed);
  AlfConfig acfg;
  acfg.wae_init = Init::kIdentity;
  auto model = std::make_unique<Sequential>("ckpt");
  model->emplace<Conv2d>("c1", 3, 6, 3, 1, 1, Init::kHe, rng);
  model->emplace<BatchNorm2d>("c1_bn", 6);
  model->emplace<Activation>("c1_relu", Act::kRelu);
  auto maker = make_alf_conv_maker(acfg, &rng, blocks);
  model->add(maker("c2", 6, 8, 3, 2, 1));
  model->emplace<BatchNorm2d>("c2_bn", 8);
  model->emplace<GlobalAvgPool>("gap");
  model->emplace<Flatten>("fl");
  model->emplace<Linear>("fc", 8, 4, Init::kXavier, rng);
  return model;
}

TEST(Checkpoint, StateDictCoversAllState) {
  std::vector<AlfConv*> blocks;
  auto model = make_model(1, &blocks);
  const auto refs = state_dict(*model);
  std::set<std::string> names;
  for (const auto& r : refs) names.insert(r.name);
  EXPECT_EQ(names.size(), refs.size());  // unique names
  EXPECT_TRUE(names.count("c1.w"));
  EXPECT_TRUE(names.count("c1_bn.gamma"));
  EXPECT_TRUE(names.count("c1_bn.running_mean"));
  EXPECT_TRUE(names.count("c2.w"));
  EXPECT_TRUE(names.count("c2.wexp"));
  EXPECT_TRUE(names.count("c2.wenc"));
  EXPECT_TRUE(names.count("c2.wdec"));
  EXPECT_TRUE(names.count("c2.mask"));
  EXPECT_TRUE(names.count("fc.w"));
  EXPECT_TRUE(names.count("fc.b"));
}

TEST(Checkpoint, SaveLoadRoundTripBitExact) {
  const std::string path = temp_path("alf_ckpt_roundtrip.bin");
  std::vector<AlfConv*> blocks_a;
  auto a = make_model(7, &blocks_a);

  // Perturb state so defaults do not mask bugs: train-ish mutations.
  Rng rng(99);
  for (const auto& r : state_dict(*a))
    for (size_t i = 0; i < r.tensor->numel(); ++i)
      r.tensor->at(i) += static_cast<float>(rng.uniform(-0.1, 0.1));

  ASSERT_TRUE(save_checkpoint(*a, path));

  std::vector<AlfConv*> blocks_b;
  auto b = make_model(8, &blocks_b);  // different seed => different weights
  load_checkpoint(*b, path);

  const auto ra = state_dict(*a);
  const auto rb = state_dict(*b);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].name, rb[i].name);
    for (size_t j = 0; j < ra[i].tensor->numel(); ++j)
      ASSERT_EQ(ra[i].tensor->at(j), rb[i].tensor->at(j)) << ra[i].name;
  }
  // Identical forward outputs.
  Tensor x({2, 3, 8, 8}, 0.5f);
  Tensor ya = a->forward(x, false);
  Tensor yb = b->forward(x, false);
  for (size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya.at(i), yb.at(i));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  const std::string path = temp_path("alf_ckpt_mismatch.bin");
  std::vector<AlfConv*> blocks;
  auto a = make_model(1, &blocks);
  ASSERT_TRUE(save_checkpoint(*a, path));

  Rng rng(2);
  Sequential other("other");
  other.emplace<Conv2d>("weird", 3, 6, 3, 1, 1, Init::kHe, rng);
  EXPECT_THROW(load_checkpoint(other, path), CheckError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFile) {
  const std::string path = temp_path("alf_ckpt_corrupt.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTACKPT-garbage";
  }
  std::vector<AlfConv*> blocks;
  auto model = make_model(1, &blocks);
  EXPECT_THROW(load_checkpoint(*model, path), CheckError);
  EXPECT_THROW(load_checkpoint(*model, temp_path("does_not_exist.bin")),
               CheckError);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumedTrainingMatchesUninterrupted) {
  // Train 4 epochs straight vs 2 epochs + checkpoint round-trip + 2 epochs:
  // the restored run must produce identical evaluation (full state saved).
  DataConfig task;
  task.classes = 4;
  task.height = task.width = 8;
  SyntheticImageDataset train(task, 64, 1), test(task, 32, 2);
  const std::string path = temp_path("alf_ckpt_resume.bin");

  auto train_epochs = [&](Sequential& m, size_t epochs, uint64_t seed) {
    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 16;
    cfg.seed = seed;
    Trainer(m, train, test, cfg).run();
  };

  std::vector<AlfConv*> b1;
  auto straight = make_model(5, &b1);
  train_epochs(*straight, 2, 100);

  std::vector<AlfConv*> b2;
  auto resumed = make_model(6, &b2);
  {
    std::vector<AlfConv*> btmp;
    auto first_half = make_model(5, &btmp);
    train_epochs(*first_half, 2, 100);
    ASSERT_TRUE(save_checkpoint(*first_half, path));
  }
  load_checkpoint(*resumed, path);

  const double acc_a = Trainer::evaluate(*straight, test);
  const double acc_b = Trainer::evaluate(*resumed, test);
  EXPECT_DOUBLE_EQ(acc_a, acc_b);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace alf
