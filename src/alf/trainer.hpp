// Two-player training procedure (Sec. III-B).
//
// Each mini-batch: (1) the task optimizer takes an SGD step on
// Ltask = LCE + nu_wd * Lreg for all task parameters (W and Wexp of every
// ALF block, BN scale/shift, FC head), with STE gradients inside the blocks;
// (2) every ALF block's dedicated autoencoder optimizer takes a step on
// Lae = Lrec + nu_prune * Lprune, updating Wenc, Wdec and the mask M.
#pragma once

#include <vector>

#include "alf/alf_conv.hpp"
#include "data/synthetic.hpp"
#include "nn/sequential.hpp"
#include "optim/sgd.hpp"

namespace alf {

/// Training hyper-parameters.
struct TrainConfig {
  size_t epochs = 30;
  size_t batch_size = 32;
  SgdConfig task{0.05f, 0.9f, 1e-4f};
  std::vector<size_t> lr_milestones;  ///< epochs at which lr is scaled
  float lr_factor = 0.1f;
  size_t ae_steps_per_batch = 1;  ///< autoencoder updates per task update
  uint64_t seed = 7;
  bool verbose = false;
};

/// Per-epoch telemetry (drives the Fig. 2c curves).
struct EpochStats {
  size_t epoch = 0;
  double train_loss = 0.0;
  double train_acc = 0.0;
  double test_acc = 0.0;
  double remaining_filters = 1.0;  ///< non-zero code filters / total filters
  double mean_l_rec = 0.0;         ///< mean autoencoder reconstruction loss
  double mean_nu_prune = 0.0;      ///< mean pruning-pressure scale
};

/// Refreshes BatchNorm running statistics by running `batches` forward
/// passes in training mode (no parameter updates). ALF's mask and code
/// evolve faster than BN's exponential averages track, so eval-mode
/// accuracy is only meaningful after re-calibration — the same practice
/// pruning frameworks apply before validating a pruned model.
void bn_recalibrate(Sequential& model, const SyntheticImageDataset& ds,
                    size_t batches = 4, size_t batch_size = 64,
                    uint64_t seed = 3);

/// Trains a model (with or without ALF blocks) on a synthetic dataset.
class Trainer {
 public:
  Trainer(Sequential& model, const SyntheticImageDataset& train_set,
          const SyntheticImageDataset& test_set, TrainConfig config);

  /// Runs the full schedule; returns one entry per epoch.
  std::vector<EpochStats> run();

  /// Top-1 accuracy of `model` on `ds` in eval mode.
  static double evaluate(Sequential& model, const SyntheticImageDataset& ds,
                         size_t batch_size = 64);

  /// Filter-count-weighted fraction of remaining (non-zero) code filters
  /// across all ALF blocks; 1.0 if the model has none.
  static double remaining_filters(const std::vector<AlfConv*>& blocks);

 private:
  Sequential& model_;
  const SyntheticImageDataset& train_set_;
  const SyntheticImageDataset& test_set_;
  TrainConfig config_;
};

}  // namespace alf
