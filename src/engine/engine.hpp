// Plan-based inference engine: the deployment execution substrate.
//
// The training framework walks the Layer tree and allocates a fresh Tensor
// per layer per call — right for autograd, wasteful for serving. The engine
// instead compiles a model once into a flat plan:
//
//   Engine eng = Engine::compile(model, batch, in_c, h, w);
//   eng.run(x, logits);   // zero heap allocations per call
//
// Engine is now a thin compatibility facade over the split that serving
// needed: an immutable, shareable Plan (steps, folded weights, packed and
// int8 weight blobs, strategy choices, arena layout — see plan.hpp) plus
// one per-worker ExecContext (arena storage and scratch — see
// exec_context.hpp). An Engine owns one of each, so everything that
// compiled against the welded class keeps working; multi-tenant serving
// (serve/model_server.hpp) instead shares one Plan across a worker pool
// where every worker owns its own context.
//
// Compilation walks the model (descending into Sequential and
// ResidualBlock, and lowering AlfConv blocks to their deployed dense
// code-conv + 1x1-expansion pair), folds inference-mode BatchNorm into the
// preceding conv/linear weights and bias, fuses trailing activations into
// the kernel epilogues, and binds every step to a slot of one preallocated
// workspace arena. Activation slots are reused by a linear-scan register
// allocator (ping-pong for straight-line stretches, a third slot across
// residual shortcuts); per-chunk im2col scratch lives at the end of the
// arena so the batched conv steps never allocate.
//
// All kernels are the free functions the nn/ layers themselves forward
// through (conv2d_image_forward, linear_forward_view, pooling views), so
// there is no duplicated math. Results are bit-identical for any thread
// count: the batch partition is fixed at compile time and each image is
// written by exactly one worker.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/exec_context.hpp"
#include "engine/plan.hpp"

namespace alf {

/// Compiled model facade: one immutable Plan + one ExecContext. Movable,
/// not copyable (the context arena is large; share the plan() instead).
class Engine {
 public:
  /// Compiles `model` for inference at the given maximum batch size and
  /// input geometry. The model is read, not mutated; weights are copied
  /// (with BN folded), so the Engine outlives the model. Layers the engine
  /// cannot lower (e.g. AlfConv with BN_inter) fail with a CheckError.
  static Engine compile(const Sequential& model, size_t batch, size_t in_c,
                        size_t in_h, size_t in_w);

  /// As above with explicit options: kernel backend (resolved against the
  /// registry once, at compile time) and, for backend "int8", the
  /// quantization bit width of the lowered conv/linear steps.
  static Engine compile(const Sequential& model, size_t batch, size_t in_c,
                        size_t in_h, size_t in_w, const EngineOptions& opts);

  /// Facade over an already-compiled (possibly shared) plan: allocates a
  /// fresh ExecContext for it. This is how a caller gets a second
  /// independent executor of one compiled model without recompiling.
  explicit Engine(std::shared_ptr<const Plan> plan);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the plan on x [n, Ci, H, W] with n <= batch(); writes the
  /// logits into `out` [n, classes] (preallocated by the caller). Performs
  /// zero heap allocations when the batch runs as a single chunk (1-core
  /// host, 1 compile-time thread, or n == 1); multi-chunk runs pay one
  /// pool-dispatch closure per conv step.
  void run(const Tensor& x, Tensor& out) { ctx_.run(x, out); }

  /// Convenience overload that allocates the output tensor.
  Tensor run(const Tensor& x) { return ctx_.run(x); }

  /// Raw row-range form of run(): executes the plan on the first `n` images
  /// at `x` (n * in_c()*in_h()*in_w() floats, NCHW) and writes n * classes()
  /// logit floats to `out`. No shape objects are consulted, so a caller can
  /// pack several requests into contiguous rows of one preallocated buffer
  /// and serve a partial batch without reshaping tensors — this is the
  /// serving dispatch path. Pointer extents are the caller's contract; n is
  /// checked against the compiled batch.
  void run_rows(const float* x, size_t n, float* out) {
    ctx_.run_rows(x, n, out);
  }

  // --- Introspection --------------------------------------------------------

  /// The immutable compiled plan, shareable across engines/servers: any
  /// number of ExecContexts may execute it concurrently.
  const std::shared_ptr<const Plan>& plan() const { return plan_; }
  /// This engine's own execution context.
  ExecContext& context() { return ctx_; }
  const ExecContext& context() const { return ctx_; }

  const std::vector<Step>& steps() const { return plan_->steps(); }
  size_t batch() const { return plan_->batch(); }
  size_t classes() const { return plan_->classes(); }
  size_t in_c() const { return plan_->in_c(); }
  size_t in_h() const { return plan_->in_h(); }
  size_t in_w() const { return plan_->in_w(); }
  /// Floats of one input image (= in_c * in_h * in_w).
  size_t image_floats() const { return plan_->image_floats(); }
  /// Total arena floats (activation slots + im2col scratch).
  size_t workspace_floats() const { return ctx_.workspace_floats(); }
  /// Arena base pointer; stable across run() calls (tests assert no growth).
  const float* workspace_data() const { return ctx_.workspace_data(); }
  size_t activation_slots() const { return plan_->activation_slots(); }
  /// Kernel backend the plan was compiled against.
  const kernels::KernelBackend* backend() const { return plan_->backend(); }
  const char* backend_name() const { return plan_->backend_name(); }
  /// True when conv/linear steps were lowered to the int8 qgemm datapath.
  bool quantized() const { return plan_->quantized(); }

  /// Human-readable plan: one line per step with fused ops and slots.
  std::string plan_str() const { return plan_->str(); }

 private:
  std::shared_ptr<const Plan> plan_;
  ExecContext ctx_;
};

}  // namespace alf
