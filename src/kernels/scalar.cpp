// The "scalar" backend: the cache-blocked (k, n)-tiled GEMM that used to
// live in tensor/ops.cpp, moved behind the KernelBackend seam unchanged.
// It is the portable floor every host can run, the equivalence oracle for
// the vectorized backends, and the fallback the registry hands out when
// nothing better is available.
#include <algorithm>
#include <cstring>

#include "core/parallel.hpp"
#include "kernels/internal.hpp"

namespace alf::kernels {

namespace {

// Cache-block sizes: one (kBlockK x kBlockN) tile of B is ~256 KB and stays
// resident in L2 while every row of the current row-block consumes it.
constexpr size_t kBlockK = 128;
constexpr size_t kBlockN = 512;

// Target multiply-adds per worker chunk; row-blocks smaller than this are
// not worth a task handoff.
constexpr size_t kMaddsPerWorker = size_t{1} << 16;

}  // namespace

namespace detail {

/// The blocked kernel body with the (k, n) tile extents as parameters; the
/// public gemm_scalar pins the historical constants, the tiled entry below
/// substitutes tuner-chosen ones. The k-block grid stays global for any
/// given block_k, so each (block_k, block_n) choice is individually
/// deterministic across thread counts.
void gemm_scalar_blocked(const float* pa, size_t lda, bool trans_a,
                         const float* pb, size_t ldb, bool trans_b, float* pc,
                         size_t ldc, size_t m, size_t k, size_t n, float alpha,
                         float beta, size_t block_k, size_t block_n) {
  // Each worker owns a contiguous block of C rows; inside a row-block the
  // (k, n) loop nest is tiled so the active B tile stays in cache. The
  // k-block grid is global (not per-thread), so every C element sees the
  // same accumulation order regardless of where the row partition falls.
  const auto process_rows = [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      float* crow = pc + i * ldc;
      if (beta == 0.0f) {
        std::memset(crow, 0, n * sizeof(float));
      } else if (beta != 1.0f) {
        for (size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    for (size_t k0 = 0; k0 < k; k0 += block_k) {
      const size_t k1 = std::min(k, k0 + block_k);
      for (size_t j0 = 0; j0 < n; j0 += block_n) {
        const size_t j1 = std::min(n, j0 + block_n);
        for (size_t i = r0; i < r1; ++i) {
          float* crow = pc + i * ldc;
          if (!trans_a && !trans_b) {
            // C[i,j0:j1] += alpha * sum_k A[i,k] * B[k,j0:j1]
            const float* arow = pa + i * lda;
            for (size_t kk = k0; kk < k1; ++kk) {
              const float av = alpha * arow[kk];
              if (av == 0.0f) continue;
              const float* brow = pb + kk * ldb;
              for (size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
            }
          } else if (!trans_a && trans_b) {
            // C[i,j] += alpha * dot(A[i,k0:k1], B[j,k0:k1])
            const float* arow = pa + i * lda;
            for (size_t j = j0; j < j1; ++j) {
              const float* brow = pb + j * ldb;
              float acc = 0.0f;
              for (size_t kk = k0; kk < k1; ++kk) acc += arow[kk] * brow[kk];
              crow[j] += alpha * acc;
            }
          } else if (trans_a && !trans_b) {
            // C[i,j0:j1] += alpha * sum_k A[k,i] * B[k,j0:j1]
            for (size_t kk = k0; kk < k1; ++kk) {
              const float av = alpha * pa[kk * lda + i];
              if (av == 0.0f) continue;
              const float* brow = pb + kk * ldb;
              for (size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
            }
          } else {
            // C[i,j] += alpha * sum_k A[k,i] * B[j,k]
            for (size_t j = j0; j < j1; ++j) {
              float acc = 0.0f;
              for (size_t kk = k0; kk < k1; ++kk)
                acc += pa[kk * lda + i] * pb[j * ldb + kk];
              crow[j] += alpha * acc;
            }
          }
        }
      }
    }
  };

  // Hand a worker at least kMaddsPerWorker of arithmetic; small products
  // (and any gemm issued from inside a parallel region, e.g. the per-image
  // conv GEMMs) run inline — without even the dispatch round trip, which
  // costs a std::function allocation per call and dominates the many small
  // GEMMs the engine's shifted convolutions issue.
  const size_t madds_per_row = std::max<size_t>(1, k * n);
  const size_t min_rows =
      std::max<size_t>(1, kMaddsPerWorker / madds_per_row);
  if (in_parallel_region() || m <= min_rows || parallel_threads() <= 1) {
    process_rows(0, m);
    return;
  }
  parallel_for_chunked(0, m, process_rows, min_rows);
}

void gemm_scalar(const float* pa, size_t lda, bool trans_a, const float* pb,
                 size_t ldb, bool trans_b, float* pc, size_t ldc, size_t m,
                 size_t k, size_t n, float alpha, float beta) {
  gemm_scalar_blocked(pa, lda, trans_a, pb, ldb, trans_b, pc, ldc, m, k, n,
                      alpha, beta, kBlockK, kBlockN);
}

}  // namespace detail

namespace {

void gemm_scalar_tiled(const float* pa, size_t lda, bool trans_a,
                       const float* pb, size_t ldb, bool trans_b, float* pc,
                       size_t ldc, size_t m, size_t k, size_t n, float alpha,
                       float beta, const TileParams& t) {
  detail::gemm_scalar_blocked(pa, lda, trans_a, pb, ldb, trans_b, pc, ldc, m,
                              k, n, alpha, beta, t.kc != 0 ? t.kc : kBlockK,
                              t.nc != 0 ? t.nc : kBlockN);
}

}  // namespace

const KernelBackend* scalar_backend() {
  static const KernelBackend be{.name = "scalar",
                                .gemm = &detail::gemm_scalar,
                                .qgemm = &detail::qgemm_int8,
                                .gemm_tiled = &gemm_scalar_tiled};
  return &be;
}

}  // namespace alf::kernels
