// BatchServer: dynamic batching correctness (batched results bit-identical
// to direct per-request Engine::run), queue/CV behavior under concurrent
// producers (the ThreadSanitizer CI target), starvation bounds, drain-on-
// stop semantics, and loud rejection of malformed submissions.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "grad_check.hpp"
#include "models/zoo.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "serve/batch_server.hpp"

namespace alf {
namespace {

using testing::random_input;

constexpr size_t kHw = 8;
constexpr size_t kInC = 3;
constexpr size_t kClasses = 5;
constexpr size_t kBatch = 8;

/// Small conv net — big enough to exercise conv/BN-fold/linear steps,
/// small enough that serve tests stay fast under TSan.
std::unique_ptr<Sequential> toy_model(Rng& rng) {
  auto m = std::make_unique<Sequential>("toy");
  m->emplace<Conv2d>("c1", kInC, 8, 3, 1, 1, Init::kHe, rng);
  m->emplace<BatchNorm2d>("c1_bn", 8);
  m->emplace<Activation>("c1_relu", Act::kRelu);
  m->emplace<GlobalAvgPool>("gap");
  m->emplace<Flatten>("flatten");
  m->emplace<Linear>("fc", 8, kClasses, Init::kHe, rng);
  return m;
}

void warm_bn(Sequential& model, Rng& rng) {
  bench::warm_bn(model, kInC, kHw, rng, /*passes=*/3, /*batch=*/4);
}

Engine toy_engine(const Sequential& model) {
  return Engine::compile(model, kBatch, kInC, kHw, kHw);
}

TEST(BatchServer, BatchedResultsBitIdenticalToDirectEngineRun) {
  Rng rng(51);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  // Two engines compiled from the same model produce identical plans; one
  // serves, the other is the per-request reference.
  Engine ref = toy_engine(*model);

  BatchServer::Config cfg;
  cfg.start_paused = true;  // stage the whole backlog, then release it
  cfg.max_wait_us = 1000;
  BatchServer server(toy_engine(*model), cfg);

  // Prefix batching over a staged queue is deterministic: [3,2,1] = 6 (the
  // 8 does not fit), [8] full, [4,4] full, [2,1,1] = 4 on the tail tick.
  const std::vector<size_t> sizes = {3, 2, 1, 8, 4, 4, 2, 1, 1};
  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (const size_t n : sizes) {
    inputs.push_back(random_input({n, kInC, kHw, kHw}, rng));
    futures.push_back(server.submit(inputs.back()));
  }
  EXPECT_EQ(server.pending(), sizes.size());
  server.resume();
  for (size_t i = 0; i < sizes.size(); ++i) {
    Tensor got = futures[i].get();
    ASSERT_EQ(got.dim(0), sizes[i]);
    ASSERT_EQ(got.dim(1), kClasses);
    const Tensor want = ref.run(inputs[i]);
    for (size_t j = 0; j < want.numel(); ++j)
      EXPECT_EQ(want.at(j), got.at(j)) << "request " << i << " elem " << j;
  }
  const ServeStats st = server.stats();
  EXPECT_EQ(st.requests, sizes.size());
  EXPECT_EQ(st.images, size_t{26});
  EXPECT_EQ(st.batches, size_t{4});
  EXPECT_EQ(st.full_batches, size_t{2});
  EXPECT_EQ(st.max_fill, kBatch);
  EXPECT_DOUBLE_EQ(st.avg_fill(), 26.0 / 4.0);
}

TEST(BatchServer, ConcurrentProducersAllServedCorrectly) {
  Rng rng(52);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  Engine ref = toy_engine(*model);
  set_parallel_threads(2);  // engine dispatch exercises the worker pool
  BatchServer server(toy_engine(*model));

  constexpr size_t kProducers = 4, kPerProducer = 20;
  struct Issued {
    Tensor x;
    std::future<Tensor> fut;
  };
  std::vector<std::vector<Issued>> issued(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng prng(100 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        const size_t n = 1 + prng.uniform_index(4);
        Tensor x = random_input({n, kInC, kHw, kHw}, prng);
        std::future<Tensor> fut = server.submit(x);
        issued[p].push_back(Issued{std::move(x), std::move(fut)});
      }
    });
  }
  for (auto& t : producers) t.join();

  for (auto& per_producer : issued) {
    for (Issued& rq : per_producer) {
      Tensor got = rq.fut.get();
      const Tensor want = ref.run(rq.x);
      ASSERT_TRUE(same_shape(want, got));
      for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
    }
  }
  server.stop();
  set_parallel_threads(0);
  const ServeStats st = server.stats();
  EXPECT_EQ(st.requests, kProducers * kPerProducer);
  EXPECT_EQ(server.pending(), size_t{0});
  EXPECT_GE(st.batches, size_t{1});
  EXPECT_LE(st.batches, st.requests);
}

TEST(BatchServer, RuntimePauseHoldsTheBacklogUntilResume) {
  // pause() on a live server (not just start_paused) must stop new batch
  // formation: requests stay queued — even one submitted just before the
  // pause, whose tick the dispatcher abandons — until resume().
  Rng rng(57);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.max_wait_us = 200000;  // 200ms: the open tick outlives the pause below
  BatchServer server(toy_engine(*model), cfg);

  std::vector<std::future<Tensor>> futures;
  // The first submission opens a tick that waits for batch-mates; pause()
  // lands inside that wait and must abandon the tick, not dispatch it.
  futures.push_back(server.submit(random_input({1, kInC, kHw, kHw}, rng)));
  server.pause();
  for (int i = 0; i < 4; ++i)
    futures.push_back(server.submit(random_input({1, kInC, kHw, kHw}, rng)));
  // Sleep past the abandoned tick's deadline: nothing may have dispatched.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(server.pending(), size_t{5});
  EXPECT_EQ(server.stats().batches, size_t{0});
  server.resume();
  for (auto& fut : futures) EXPECT_EQ(fut.get().dim(0), size_t{1});
  EXPECT_EQ(server.pending(), size_t{0});
  EXPECT_EQ(server.stats().images, size_t{5});
}

TEST(BatchServer, LoneRequestIsNotStarvedPastTheWaitBudget) {
  Rng rng(53);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.max_wait_us = 500;
  BatchServer server(toy_engine(*model), cfg);

  Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  std::future<Tensor> fut = server.submit(x);
  // Generous bound: the tick closes after max_wait_us, not a full batch.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_EQ(fut.get().dim(0), size_t{1});
  EXPECT_EQ(server.stats().batches, size_t{1});
}

TEST(BatchServer, StopDrainsEveryQueuedRequest) {
  Rng rng(54);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.start_paused = true;
  BatchServer server(toy_engine(*model), cfg);

  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(server.submit(random_input({2, kInC, kHw, kHw}, rng)));
  EXPECT_EQ(server.pending(), size_t{10});
  server.stop();  // overrides the pause and drains before joining
  EXPECT_EQ(server.pending(), size_t{0});
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(fut.get().dim(0), size_t{2});
  }
  EXPECT_EQ(server.stats().requests, size_t{10});
}

TEST(BatchServer, CallbackOverloadDeliversLogits) {
  Rng rng(55);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer server(toy_engine(*model));

  std::promise<Tensor> done;
  std::future<Tensor> fut = done.get_future();
  server.submit(random_input({3, kInC, kHw, kHw}, rng),
                [&done](Tensor&& logits) { done.set_value(std::move(logits)); });
  Tensor got = fut.get();
  EXPECT_EQ(got.dim(0), size_t{3});
  EXPECT_EQ(got.dim(1), kClasses);
}

TEST(BatchServer, MalformedSubmissionsFailLoudly) {
  Rng rng(56);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer server(toy_engine(*model));

  // Oversized request, wrong channel count, wrong spatial size, wrong rank.
  EXPECT_THROW(server.submit(Tensor({kBatch + 1, kInC, kHw, kHw})),
               CheckError);
  EXPECT_THROW(server.submit(Tensor({1, kInC + 1, kHw, kHw})), CheckError);
  EXPECT_THROW(server.submit(Tensor({1, kInC, kHw, kHw + 2})), CheckError);
  EXPECT_THROW(server.submit(Tensor({kInC, kHw, kHw})), CheckError);
  EXPECT_THROW(server.submit(Tensor({1, kInC, kHw, kHw}), nullptr),
               CheckError);

  server.stop();
  EXPECT_THROW(server.submit(Tensor({1, kInC, kHw, kHw})), CheckError);
  // stop() is idempotent.
  server.stop();
}

TEST(BatchServer, AdmissionControlRejectsPastMaxQueue) {
  Rng rng(57);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  Engine ref = toy_engine(*model);

  BatchServer::Config cfg;
  cfg.start_paused = true;  // hold the backlog so the bound is hit exactly
  cfg.max_queue = 3;
  BatchServer server(toy_engine(*model), cfg);

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> accepted;
  for (size_t i = 0; i < cfg.max_queue; ++i) {
    inputs.push_back(random_input({1, kInC, kHw, kHw}, rng));
    accepted.push_back(server.submit(inputs.back()));
  }
  EXPECT_EQ(server.pending(), cfg.max_queue);

  // The bound is on requests held, and the error is the typed overload
  // signal — not CheckError, which stays reserved for misuse.
  Tensor extra = random_input({1, kInC, kHw, kHw}, rng);
  EXPECT_THROW(server.submit(extra), QueueFullError);
  try {
    server.submit(extra);
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
  }
  EXPECT_EQ(server.pending(), cfg.max_queue);  // rejects never enqueue
  EXPECT_EQ(server.stats().rejected, size_t{2});

  // Draining the backlog reopens admission; every accepted request is
  // still served exactly (rejection sheds load, it never corrupts).
  server.resume();
  for (size_t i = 0; i < accepted.size(); ++i) {
    Tensor got = accepted[i].get();
    const Tensor want = ref.run(inputs[i]);
    for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
  }
  std::future<Tensor> reopened = server.submit(extra);
  const Tensor want = ref.run(extra);
  Tensor got = reopened.get();
  for (size_t j = 0; j < want.numel(); ++j) EXPECT_EQ(want.at(j), got.at(j));
  const ServeStats st = server.stats();
  EXPECT_EQ(st.requests, cfg.max_queue + 1);
  EXPECT_EQ(st.rejected, size_t{2});
}

TEST(BatchServer, UnboundedQueueByDefault) {
  Rng rng(58);
  auto model = toy_model(rng);
  warm_bn(*model, rng);
  BatchServer::Config cfg;
  cfg.start_paused = true;
  BatchServer server(toy_engine(*model), cfg);
  // Far past any batch multiple: nothing rejects with max_queue = 0.
  std::vector<std::future<Tensor>> futs;
  for (size_t i = 0; i < 4 * kBatch; ++i)
    futs.push_back(server.submit(random_input({1, kInC, kHw, kHw}, rng)));
  EXPECT_EQ(server.pending(), 4 * kBatch);
  EXPECT_EQ(server.stats().rejected, size_t{0});
  server.resume();
  for (auto& f : futs) f.get();
}

}  // namespace
}  // namespace alf
