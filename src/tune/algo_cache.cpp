#include "tune/algo_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "engine/plan_io.hpp"
#include "kernels/backend.hpp"

namespace alf::tune {

namespace {

std::atomic<uint64_t> g_measure_runs{0};
std::atomic<uint64_t> g_cache_hits{0};
std::atomic<uint64_t> g_cache_misses{0};

std::string resolve_path(const std::string& path) {
  if (!path.empty()) return path;
  if (const char* env = std::getenv("ALF_ALGO_CACHE");
      env != nullptr && env[0] != '\0')
    return env;
  return kDefaultAlgoCachePath;
}

/// Serializes one AlgoChoice as the tail of an `entry` line. The backend
/// name "-" stands for "" (plan backend) so the line always has exactly
/// eight fields after the key.
std::string format_choice(const AlgoChoice& c, double best_ms) {
  std::ostringstream os;
  os << static_cast<int>(c.strategy) << ' '
     << (c.backend.empty() ? "-" : c.backend) << ' ' << c.tile.mc << ' '
     << c.tile.kc << ' ' << c.tile.nc << ' ' << c.chunk << ' ' << best_ms;
  return os.str();
}

}  // namespace

std::string host_stamp() {
  std::ostringstream os;
  char cpu[16];
  std::snprintf(cpu, sizeof(cpu), "0x%08x", kernels::allowed_cpu_features());
  os << "cpu " << cpu << '\n';
  os << "geom panel=" << kernels::kPanelLayoutVersion
     << " shift=" << kMaxShiftH << " align=" << kWeightAlign << '\n';
  // Sorted so the stamp is independent of registration order.
  std::vector<std::string> names = kernels::backend_names();
  std::sort(names.begin(), names.end());
  os << "backends ";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i != 0) os << ',';
    os << names[i];
  }
  os << '\n';
  return os.str();
}

AlgoCache::AlgoCache(std::string path) : path_(resolve_path(path)) {}

void AlgoCache::parse_locked(const std::string& text) {
  // The trailing "crc 0x........\n" line checks everything before it.
  const size_t crc_pos = text.rfind("crc 0x");
  if (crc_pos == std::string::npos || crc_pos + 15 > text.size())
    throw TuneError(TuneError::Code::kBadCrc, "missing crc line in " + path_);
  uint32_t stored = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc 0x%8x", &stored) != 1)
    throw TuneError(TuneError::Code::kBadCrc, "bad crc line in " + path_);
  const uint32_t actual = plan::crc32(text.data(), crc_pos);
  if (actual != stored)
    throw TuneError(TuneError::Code::kBadCrc, "checksum mismatch in " + path_);

  std::istringstream in(text.substr(0, crc_pos));
  std::string line;
  if (!std::getline(in, line))
    throw TuneError(TuneError::Code::kBadMagic, "empty file " + path_);
  std::istringstream magic(line);
  std::string word;
  uint32_t version = 0;
  if (!(magic >> word) || word != "ALFALGO")
    throw TuneError(TuneError::Code::kBadMagic, "not an algo cache: " + path_);
  if (!(magic >> version) || version != kAlgoCacheVersion)
    throw TuneError(TuneError::Code::kBadVersion,
                    "unsupported version in " + path_);

  // Stamp lines (cpu/geom/backends), verbatim. A stamp that differs from
  // this host's is NOT an error — the entries just don't apply here.
  std::string file_stamp;
  std::map<std::string, AlgoEntry> parsed;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "cpu" || tag == "geom" || tag == "backends") {
      file_stamp += line;
      file_stamp += '\n';
      continue;
    }
    if (tag != "entry")
      throw TuneError(TuneError::Code::kParse,
                      "unknown line '" + tag + "' in " + path_);
    std::string key, backend;
    int strategy = 0;
    uint32_t mc = 0, kc = 0, nc = 0, chunk = 0;
    double ms = 0.0;
    if (!(ls >> key >> strategy >> backend >> mc >> kc >> nc >> chunk >> ms) ||
        strategy < 0 || strategy > 2)
      throw TuneError(TuneError::Code::kParse, "bad entry line in " + path_);
    AlgoEntry e;
    e.choice.strategy = static_cast<AlgoChoice::Strategy>(strategy);
    e.choice.backend = backend == "-" ? std::string() : backend;
    e.choice.tile = {mc, kc, nc};
    e.choice.chunk = chunk;
    e.best_ms = ms;
    parsed.emplace(std::move(key), std::move(e));
  }

  if (file_stamp == host_stamp()) {
    stamp_ = file_stamp;
    entries_.insert(parsed.begin(), parsed.end());
  } else {
    // Stale for this host: discard, re-tune. Keep the current stamp so
    // fresh inserts are recorded under it.
    stamp_ = host_stamp();
  }
}

void AlgoCache::ensure_loaded_locked() {
  if (loaded_) return;
  loaded_ = true;
  stamp_ = host_stamp();
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return;  // missing file == empty cache
  std::ostringstream buf;
  buf << in.rdbuf();
  parse_locked(buf.str());
}

bool AlgoCache::lookup(const std::string& key, AlgoChoice* out) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_loaded_locked();
  // Re-check against the live process state: set_cpu_feature_mask (or a
  // backend registration) after load invalidates held entries exactly like
  // a stale file would.
  if (stamp_ != host_stamp()) {
    entries_.clear();
    stamp_ = host_stamp();
  }
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  *out = it->second.choice;
  return true;
}

void AlgoCache::insert(const std::string& key, const AlgoChoice& choice,
                       double best_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_loaded_locked();
  if (stamp_ != host_stamp()) {
    entries_.clear();
    stamp_ = host_stamp();
  }
  entries_[key] = AlgoEntry{choice, best_ms};
  dirty_ = true;
}

void AlgoCache::save() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_) return;
  std::ostringstream os;
  os << "ALFALGO " << kAlgoCacheVersion << '\n';
  os << stamp_;
  // Sorted keys so rewrites of identical content are byte-identical.
  std::map<std::string, const AlgoEntry*> ordered;
  for (const auto& [k, e] : entries_) ordered.emplace(k, &e);
  for (const auto& [k, e] : ordered)
    os << "entry " << k << ' ' << format_choice(e->choice, e->best_ms)
       << '\n';
  std::string body = os.str();
  char crc_line[24];
  std::snprintf(crc_line, sizeof(crc_line), "crc 0x%08x\n",
                plan::crc32(body.data(), body.size()));
  body += crc_line;

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      throw TuneError(TuneError::Code::kOpen, "cannot write " + tmp);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out.good())
      throw TuneError(TuneError::Code::kOpen, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw TuneError(TuneError::Code::kOpen, "cannot rename onto " + path_);
  }
  dirty_ = false;
}

void AlgoCache::reload() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stamp_.clear();
  loaded_ = false;
  dirty_ = false;
}

size_t AlgoCache::size() {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_loaded_locked();
  if (stamp_ != host_stamp()) {
    entries_.clear();
    stamp_ = host_stamp();
  }
  return entries_.size();
}

AlgoCache& cache_for(const std::string& path) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<AlgoCache>>* registry =
      new std::map<std::string, std::unique_ptr<AlgoCache>>();
  const std::string resolved = resolve_path(path);
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*registry)[resolved];
  if (!slot) slot = std::make_unique<AlgoCache>(resolved);
  return *slot;
}

TuneStats stats() {
  return TuneStats{g_measure_runs.load(std::memory_order_relaxed),
                   g_cache_hits.load(std::memory_order_relaxed),
                   g_cache_misses.load(std::memory_order_relaxed)};
}

void reset_stats() {
  g_measure_runs.store(0, std::memory_order_relaxed);
  g_cache_hits.store(0, std::memory_order_relaxed);
  g_cache_misses.store(0, std::memory_order_relaxed);
}

void note_measure_run() {
  g_measure_runs.fetch_add(1, std::memory_order_relaxed);
}
void note_cache_hit() { g_cache_hits.fetch_add(1, std::memory_order_relaxed); }
void note_cache_miss() {
  g_cache_misses.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace alf::tune
