#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/server.hpp"  // NetError

namespace alf::net {

namespace {

/// Cap on a response payload we are willing to buffer; a header claiming
/// more means the stream is corrupt.
constexpr uint64_t kMaxResponsePayload = 64ull << 20;

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

WireClient::~WireClient() { close(); }

void WireClient::connect(uint16_t port, const std::string& host) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetError("inet_pton: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WireClient::hard_close() {
  if (fd_ >= 0) {
    linger lin{};
    lin.l_onoff = 1;
    lin.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  }
  close();
}

void WireClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void WireClient::write_all(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

void WireClient::send(const std::string& model, uint64_t seq,
                      uint64_t deadline_us, const float* rows, uint32_t n,
                      size_t floats_per_row) {
  RequestHeader h{};
  h.magic = kMagic;
  h.version = kWireVersion;
  h.model_len = static_cast<uint16_t>(model.size());
  h.rows = n;
  h.seq = seq;
  h.deadline_us = deadline_us;
  h.payload_bytes =
      static_cast<uint64_t>(n) * floats_per_row * sizeof(float);
  std::vector<uint8_t> frame(sizeof(h) + model.size() + h.payload_bytes);
  std::memcpy(frame.data(), &h, sizeof(h));
  std::memcpy(frame.data() + sizeof(h), model.data(), model.size());
  if (h.payload_bytes > 0)
    std::memcpy(frame.data() + sizeof(h) + model.size(), rows,
                h.payload_bytes);
  write_all(frame.data(), frame.size());
}

void WireClient::send_raw(const void* data, size_t n) {
  write_all(data, n);
}

bool WireClient::read_full(void* buf, size_t n, bool eof_ok_at_start) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd_, p + off, n - off);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      if (off == 0 && eof_ok_at_start) return false;
      throw WireError(WireStatus::kTruncated,
                      "connection closed mid-response");
    }
    throw_errno("read");
  }
  return true;
}

int WireClient::recv(Response* out, int timeout_ms) {
  if (timeout_ms >= 0) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int r;
    do {
      r = ::poll(&pfd, 1, timeout_ms);
    } while (r < 0 && errno == EINTR);
    if (r < 0) throw_errno("poll");
    if (r == 0) return -1;
  }
  ResponseHeader rh{};
  if (!read_full(&rh, sizeof(rh), /*eof_ok_at_start=*/true)) return 0;
  if (rh.magic != kMagic)
    throw WireError(WireStatus::kBadMagic, "response without ALFN magic");
  if (rh.version != kWireVersion)
    throw WireError(WireStatus::kBadVersion, "response version mismatch");
  if (rh.payload_bytes > kMaxResponsePayload)
    throw WireError(WireStatus::kTooLarge, "response payload too large");
  const auto st = static_cast<WireStatus>(rh.status);
  out->seq = rh.seq;
  out->rows = rh.rows;
  out->status = st;
  out->payload.clear();
  out->message.clear();
  if (st == WireStatus::kOk) {
    if (rh.payload_bytes % sizeof(float) != 0)
      throw WireError(WireStatus::kBadHeader,
                      "kOk payload not a float array");
    out->payload.resize(rh.payload_bytes / sizeof(float));
    if (rh.payload_bytes > 0)
      read_full(out->payload.data(), rh.payload_bytes, false);
  } else if (rh.payload_bytes > 0) {
    out->message.resize(rh.payload_bytes);
    read_full(out->message.data(), rh.payload_bytes, false);
  }
  return 1;
}

}  // namespace alf::net
