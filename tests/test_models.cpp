#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "models/cost.hpp"
#include "models/zoo.hpp"

namespace alf {
namespace {

TEST(Cost, ConvLayerMath) {
  CostBuilder b("m", 3, 32, 32);
  b.conv("c1", 16, 3, 1, 1);
  const ModelCost cost = b.finish();
  ASSERT_EQ(cost.layers.size(), 1u);
  const LayerCost& l = cost.layers[0];
  EXPECT_EQ(l.params, 3ull * 16 * 9);
  EXPECT_EQ(l.out_h, 32u);
  EXPECT_EQ(l.macs, l.params * 32 * 32);
  EXPECT_EQ(cost.total_ops(), 2 * cost.total_macs());
}

TEST(Cost, StridedConvShape) {
  CostBuilder b("m", 8, 33, 33);
  b.conv("c", 4, 3, 2, 1);
  EXPECT_EQ(b.cur_h(), 17u);
  b.pool(3, 2, 1);
  EXPECT_EQ(b.cur_h(), 9u);
  b.global_pool();
  EXPECT_EQ(b.cur_h(), 1u);
}

TEST(Cost, AlfConvPair) {
  CostBuilder b("m", 16, 8, 8);
  b.alf_conv("c", 10, 32, 3, 1, 1);
  const ModelCost cost = b.finish();
  ASSERT_EQ(cost.layers.size(), 2u);
  EXPECT_EQ(cost.layers[0].kind, "conv_code");
  EXPECT_EQ(cost.layers[0].params, 16ull * 10 * 9);
  EXPECT_EQ(cost.layers[1].kind, "conv_exp");
  EXPECT_EQ(cost.layers[1].params, 10ull * 32);
  EXPECT_EQ(cost.layers[1].out_h, 8u);
}

TEST(Cost, Plain20MatchesPaperScale) {
  const ModelCost c = cost_plain20();
  // Paper Table II: 0.27M params, 81.1 MOPs (conv layers only convention;
  // our count includes the tiny FC head).
  EXPECT_NEAR(static_cast<double>(c.total_params()), 0.27e6, 0.02e6);
  EXPECT_NEAR(static_cast<double>(c.total_ops()), 81.1e6, 2e6);
  // 19 conv layers + FC.
  size_t convs = 0;
  for (const auto& l : c.layers)
    if (l.kind == "conv") ++convs;
  EXPECT_EQ(convs, 19u);
}

TEST(Cost, ResNet20AddsProjections) {
  const ModelCost r = cost_resnet20();
  const ModelCost p = cost_plain20();
  EXPECT_GT(r.total_params(), p.total_params());
  size_t shortcuts = 0;
  for (const auto& l : r.layers)
    if (l.name.find("shortcut") != std::string::npos) ++shortcuts;
  EXPECT_EQ(shortcuts, 2u);
  // Still ~0.27M/81.1 MOPs at paper precision.
  EXPECT_NEAR(static_cast<double>(r.total_ops()), 81.1e6, 3e6);
}

TEST(Cost, ResNet18ImagenetMatchesPaper) {
  const ModelCost c = cost_resnet18_imagenet();
  // Paper Table III: 11.83M params, 3743 MOPs.
  EXPECT_NEAR(static_cast<double>(c.total_params()), 11.83e6, 0.4e6);
  EXPECT_NEAR(static_cast<double>(c.total_ops()), 3743e6, 200e6);
}

TEST(Cost, SqueezeNetMatchesPaper) {
  const ModelCost c = cost_squeezenet_imagenet();
  // Paper Table III: 1.23M params, 1722 MOPs.
  EXPECT_NEAR(static_cast<double>(c.total_params()), 1.23e6, 0.15e6);
  EXPECT_NEAR(static_cast<double>(c.total_ops()), 1722e6, 200e6);
}

TEST(Cost, GoogLeNetMatchesPaper) {
  const ModelCost c = cost_googlenet_imagenet();
  // Paper Table III: 6.80M params, 3004 MOPs.
  EXPECT_NEAR(static_cast<double>(c.total_params()), 6.8e6, 0.5e6);
  EXPECT_NEAR(static_cast<double>(c.total_ops()), 3004e6, 300e6);
}

TEST(Cost, ConvParamsExcludeFc) {
  const ModelCost c = cost_plain20();
  EXPECT_LT(c.conv_params(), c.total_params());
}

TEST(Zoo, Plain20ForwardShape) {
  Rng rng(1);
  ModelConfig cfg;
  cfg.base_width = 4;  // narrow for test speed
  auto model = build_plain20(cfg, rng, standard_conv_maker(cfg.init, &rng));
  Tensor x({2, 3, 32, 32});
  Tensor y = model->forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  EXPECT_EQ(collect_convs(*model).size(), 19u);
}

TEST(Zoo, ResNet20ForwardShape) {
  Rng rng(2);
  ModelConfig cfg;
  cfg.base_width = 4;
  auto model = build_resnet20(cfg, rng, standard_conv_maker(cfg.init, &rng));
  Tensor x({1, 3, 32, 32});
  Tensor y = model->forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 10}));
  // 19 body convs + 2 projection shortcuts.
  EXPECT_EQ(collect_convs(*model).size(), 21u);
}

TEST(Zoo, ResNet18ForwardShape) {
  Rng rng(3);
  ModelConfig cfg;
  cfg.base_width = 4;
  cfg.classes = 20;
  auto model = build_resnet18(cfg, rng, standard_conv_maker(cfg.init, &rng));
  Tensor x({1, 3, 32, 32});
  Tensor y = model->forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 20}));
  // 17 body convs + 3 projections.
  EXPECT_EQ(collect_convs(*model).size(), 20u);
}

TEST(Zoo, ConvNamesMatchCostModel) {
  Rng rng(4);
  ModelConfig cfg;
  cfg.base_width = 4;
  auto model = build_plain20(cfg, rng, standard_conv_maker(cfg.init, &rng));
  const ModelCost cost = cost_plain20(10, 4);
  auto convs = collect_convs(*model);
  size_t matched = 0;
  for (Conv2d* c : convs) {
    for (const auto& l : cost.layers) {
      if (l.name == c->name()) {
        EXPECT_EQ(l.ci, c->in_channels()) << l.name;
        EXPECT_EQ(l.co, c->out_channels()) << l.name;
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, convs.size());
}

TEST(Zoo, TrainEvalConsistentShapes) {
  Rng rng(5);
  ModelConfig cfg;
  cfg.base_width = 4;
  auto model = build_resnet20(cfg, rng, standard_conv_maker(cfg.init, &rng));
  Tensor x({2, 3, 32, 32});
  Tensor yt = model->forward(x, true);
  Tensor ye = model->forward(x, false);
  EXPECT_EQ(yt.shape(), ye.shape());
}

}  // namespace
}  // namespace alf
