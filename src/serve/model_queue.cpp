#include "serve/model_queue.hpp"

#include <algorithm>
#include <utility>

#include "core/check.hpp"

namespace alf::serve {

ModelQueue::ModelQueue(std::string name, std::shared_ptr<const Plan> plan,
                       Config cfg)
    : name_(std::move(name)), plan_(std::move(plan)), cfg_(cfg) {
  ALF_CHECK(plan_ != nullptr) << "ModelQueue: null plan";
  ALF_CHECK(cfg_.weight > 0.0)
      << "ModelQueue '" << name_ << "': weight must be positive, got "
      << cfg_.weight;
}

ModelQueue::Admit ModelQueue::admit([[maybe_unused]] Mutex& m, Request&& r,
                                   Request* dropped) {
  if (cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue) {
    if (cfg_.shed == ShedPolicy::kReject) {
      // Fail fast under overload: counting happens under the server lock,
      // so stats().rejected is exact, and the request is never owned by
      // the server (no callback, nothing to drain).
      ++stats_.rejected;
      return Admit::kRejected;
    }
    // kDropOldest: the new request carries fresher work than the stale
    // head; shed the oldest in its favor. The dropped request WAS
    // accepted, so it leaves through dropped_oldest (conservation:
    // accepted = completed + dropped + expired + queued + in_flight).
    ALF_CHECK(dropped != nullptr);
    *dropped = std::move(queue_.front());
    queue_.pop_front();
    queued_images_ -= dropped->n;
    ++stats_.dropped_oldest;
    queue_.push_back(std::move(r));
    queued_images_ += queue_.back().n;
    ++stats_.accepted;
    return Admit::kDropped;
  }
  queue_.push_back(std::move(r));
  queued_images_ += queue_.back().n;
  ++stats_.accepted;
  return Admit::kOk;
}

void ModelQueue::purge_expired([[maybe_unused]] Mutex& m,
                               std::chrono::steady_clock::time_point now,
                               std::vector<Request>& expired) {
  // Deadlines are per-request, not FIFO-ordered, so scan the whole queue
  // (erase-compact in one pass; queues are short by design — max_queue).
  size_t kept = 0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    Request& r = queue_[i];
    if (r.has_deadline && r.deadline <= now) {
      queued_images_ -= r.n;
      ++stats_.expired;
      expired.push_back(std::move(r));
      continue;
    }
    if (kept != i) queue_[kept] = std::move(r);
    ++kept;
  }
  queue_.resize(kept);
}

std::vector<Request> ModelQueue::form_batch([[maybe_unused]] Mutex& m) {
  std::vector<Request> take;
  if (queue_.empty()) return take;
  const size_t batch = plan_->batch();
  size_t n = 0;
  while (!queue_.empty() && n + queue_.front().n <= batch) {
    n += queue_.front().n;
    take.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  queued_images_ -= n;
  stats_.batches += 1;
  stats_.requests += take.size();
  stats_.images += n;
  stats_.max_fill = std::max(stats_.max_fill, n);
  if (n == batch) stats_.full_batches += 1;
  stats_.in_flight += take.size();
  return take;
}

void ModelQueue::delivered([[maybe_unused]] Mutex& m, size_t nreq) {
  ALF_CHECK(stats_.in_flight >= nreq);
  stats_.in_flight -= nreq;
  stats_.completed += nreq;
}

ServeStats ModelQueue::stats([[maybe_unused]] Mutex& m) const {
  ServeStats s = stats_;
  s.queued = queue_.size();
  return s;
}

}  // namespace alf::serve
