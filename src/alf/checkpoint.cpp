#include "alf/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "core/check.hpp"
#include "nn/batchnorm.hpp"

namespace alf {
namespace {

constexpr char kMagic[8] = {'A', 'L', 'F', 'C', 'K', 'P', 'T', '1'};

void write_u32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint32_t read_u32(std::istream& is) {
  uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  ALF_CHECK(static_cast<bool>(is)) << "truncated checkpoint";
  return v;
}
uint64_t read_u64(std::istream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  ALF_CHECK(static_cast<bool>(is)) << "truncated checkpoint";
  return v;
}

}  // namespace

std::vector<NamedTensorRef> state_dict(Sequential& model) {
  std::vector<NamedTensorRef> refs;
  // Task parameters (stable order: build order).
  for (Param* p : model.params()) refs.push_back({p->name, &p->value});
  // BatchNorm running statistics and ALF autoencoder state.
  model.visit([&refs](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      refs.push_back({bn->name() + ".running_mean",
                      &bn->mutable_running_mean()});
      refs.push_back({bn->name() + ".running_var",
                      &bn->mutable_running_var()});
    }
    if (auto* blk = dynamic_cast<AlfConv*>(&l)) {
      refs.push_back({blk->name() + ".wenc", &blk->wenc()});
      refs.push_back({blk->name() + ".wdec", &blk->wdec()});
      refs.push_back({blk->name() + ".mask", &blk->mask()});
      if (BatchNorm2d* bni = blk->bn_inter()) {
        refs.push_back({bni->name() + ".running_mean",
                        &bni->mutable_running_mean()});
        refs.push_back({bni->name() + ".running_var",
                        &bni->mutable_running_var()});
      }
    }
  });
  return refs;
}

bool save_checkpoint(Sequential& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  const auto refs = state_dict(model);
  os.write(kMagic, sizeof(kMagic));
  write_u64(os, refs.size());
  for (const NamedTensorRef& r : refs) {
    write_u32(os, static_cast<uint32_t>(r.name.size()));
    os.write(r.name.data(), static_cast<std::streamsize>(r.name.size()));
    write_u32(os, static_cast<uint32_t>(r.tensor->rank()));
    for (size_t d = 0; d < r.tensor->rank(); ++d)
      write_u64(os, r.tensor->dim(d));
    os.write(reinterpret_cast<const char*>(r.tensor->data()),
             static_cast<std::streamsize>(r.tensor->numel() * sizeof(float)));
  }
  return static_cast<bool>(os);
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ALF_CHECK(static_cast<bool>(is)) << "cannot open checkpoint: " << path;
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  ALF_CHECK(static_cast<bool>(is) && std::equal(magic, magic + 8, kMagic))
      << "not an ALF checkpoint: " << path;

  const auto refs = state_dict(model);
  const uint64_t count = read_u64(is);
  ALF_CHECK_EQ(count, refs.size()) << "checkpoint/model tensor count";

  for (const NamedTensorRef& r : refs) {
    const uint32_t name_len = read_u32(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    ALF_CHECK(static_cast<bool>(is)) << "truncated checkpoint";
    ALF_CHECK(name == r.name)
        << "tensor order mismatch: file has '" << name << "', model expects '"
        << r.name << "'";
    const uint32_t rank = read_u32(is);
    ALF_CHECK_EQ(static_cast<size_t>(rank), r.tensor->rank()) << name;
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d)
      shape[d] = static_cast<size_t>(read_u64(is));
    ALF_CHECK(shape == r.tensor->shape())
        << name << ": shape " << shape_str(shape) << " vs model "
        << shape_str(r.tensor->shape());
    is.read(reinterpret_cast<char*>(r.tensor->data()),
            static_cast<std::streamsize>(r.tensor->numel() * sizeof(float)));
    ALF_CHECK(static_cast<bool>(is)) << "truncated tensor data: " << name;
  }
}

}  // namespace alf
