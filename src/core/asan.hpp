// AddressSanitizer manual-poisoning helpers (no-ops without ASan).
//
// ASan only faults on accesses to memory it knows is bad; a long-lived
// arena that recycles slots between plan steps looks like one big valid
// allocation to it, so a step reading a DEAD slot (stale activations from
// an earlier step or a previous run) silently succeeds. Manual poisoning
// closes that gap: the engine poisons arena slots the moment their last
// reader has run (exec_context.cpp), so any cross-slot read faults with
// "use-after-poison" instead of silently consuming stale data.
//
// Poisoning granularity is ASan's 8-byte shadow granule; partial granules
// at region edges stay addressable, which is conservative in the right
// direction (no false positives). All helpers compile to nothing when the
// build is not instrumented, so the hooks can stay in the hot path
// unconditionally guarded by `if constexpr (asan_enabled())`.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define ALF_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ALF_ASAN_ENABLED 1
#endif
#endif
#ifndef ALF_ASAN_ENABLED
#define ALF_ASAN_ENABLED 0
#endif

#if ALF_ASAN_ENABLED
#include <sanitizer/asan_interface.h>
#endif

namespace alf {

/// True when this translation unit is built with AddressSanitizer.
constexpr bool asan_enabled() { return ALF_ASAN_ENABLED != 0; }

/// Marks [p, p+n) as unreadable/unwritable until unpoisoned. The region
/// must stay owned by the caller (heap blocks may be freed while poisoned;
/// ASan's allocator handles that).
inline void asan_poison([[maybe_unused]] const void* p,
                       [[maybe_unused]] size_t n) {
#if ALF_ASAN_ENABLED
  __asan_poison_memory_region(p, n);
#endif
}

/// Re-enables access to [p, p+n).
inline void asan_unpoison([[maybe_unused]] const void* p,
                         [[maybe_unused]] size_t n) {
#if ALF_ASAN_ENABLED
  __asan_unpoison_memory_region(p, n);
#endif
}

/// True when the byte at `p` is currently poisoned (always false in
/// uninstrumented builds). Test hook for the arena-poisoning contract.
inline bool asan_is_poisoned([[maybe_unused]] const void* p) {
#if ALF_ASAN_ENABLED
  return __asan_address_is_poisoned(p) != 0;
#else
  return false;
#endif
}

}  // namespace alf
