// WireClient: minimal blocking client for the ALFN wire protocol
// (net/wire.hpp) — the test and load-generator side of NetServer.
//
// One WireClient is one TCP connection. send() frames a request; recv()
// blocks (optionally with a timeout) for the next response frame. Because
// `seq` is echoed by the server, a client may pipeline: send() from one
// thread while a second thread recv()s — the two directions of the socket
// are independent, and WireClient keeps no shared mutable state between
// them. What it does NOT do: reorder, retry, reconnect. Load harnesses
// (bench/netload.hpp) and tests compose those on top.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace alf::net {

class WireClient {
 public:
  /// One decoded response frame.
  struct Response {
    uint64_t seq = 0;
    uint32_t rows = 0;
    WireStatus status = WireStatus::kInternal;
    std::vector<float> payload;  ///< logit rows (kOk only)
    std::string message;         ///< server's error text (non-kOk)
  };

  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  WireClient(WireClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  WireClient& operator=(WireClient&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects (blocking) to host:port; IPv4 dotted-quad hosts only.
  /// Throws NetError (via wire.hpp's WireError sibling) on failure.
  void connect(uint16_t port, const std::string& host = "127.0.0.1");
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Aborts the connection with a TCP RST (SO_LINGER 0) instead of a
  /// graceful FIN — simulates a client vanishing mid-request, the path
  /// that orphans server-side completions.
  void hard_close();

  /// Half-closes the send direction, telling the server this client is
  /// done submitting; pending responses still arrive until clean EOF.
  void shutdown_write();

  /// Frames and sends one request: `n` rows of `floats_per_row` floats
  /// from `rows`, with the client-chosen `seq` and the mandatory
  /// `deadline_us` budget. Blocks until fully written.
  void send(const std::string& model, uint64_t seq, uint64_t deadline_us,
            const float* rows, uint32_t n, size_t floats_per_row);

  /// Sends raw bytes verbatim — the hostile-frame path for tests.
  void send_raw(const void* data, size_t n);

  /// Receives the next response frame. Returns 1 on a frame (decoded into
  /// *out), 0 on clean EOF before any byte of a frame, -1 when
  /// `timeout_ms` >= 0 elapsed before the first byte. Throws WireError on
  /// a malformed or truncated response stream.
  int recv(Response* out, int timeout_ms = -1);

 private:
  void write_all(const void* data, size_t n);
  /// False on clean EOF at a frame boundary; throws WireError(kTruncated)
  /// on EOF mid-read.
  bool read_full(void* buf, size_t n, bool eof_ok_at_start);

  int fd_ = -1;
};

}  // namespace alf::net
