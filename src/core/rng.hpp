// Deterministic random number generation.
//
// Every stochastic component of the library (weight init, data synthesis,
// augmentation, mapper sampling, CEM agent) draws from an explicitly seeded
// alf::Rng so experiments are reproducible bit-for-bit across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alf {

/// Small, fast, deterministic PRNG (xoshiro256** core seeded via SplitMix64).
///
/// Not cryptographic. Identical sequences on every platform for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t uniform_index(uint64_t n);

  /// Standard normal (Box–Muller, cached second value).
  double normal();

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<size_t> permutation(size_t n);

  /// Derive an independent child generator (for per-layer streams).
  Rng fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace alf
