// Spatial pooling layers.
#pragma once

#include "nn/layer.hpp"

namespace alf {

/// Global average pooling: [N, C, H, W] -> [N, C, 1, 1].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : name_(std::move(name)) {}

  const char* kind() const override { return "gap"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  Shape cached_shape_;
};

/// Max pooling with square window and stride == window (non-overlapping).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, size_t window)
      : name_(std::move(name)), window_(window) {}

  const char* kind() const override { return "maxpool"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  size_t window_;
  Shape cached_shape_;
  std::vector<size_t> argmax_;  // flat input index per output element
};

}  // namespace alf
