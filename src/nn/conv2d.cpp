#include "nn/conv2d.hpp"

#include <mutex>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "kernels/backend.hpp"

namespace alf {

Conv2d::Conv2d(std::string name, size_t in_c, size_t out_c, size_t kernel,
               size_t stride, size_t pad, Init scheme, Rng& rng)
    : name_(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      w_(name_ + ".w", {out_c, in_c, kernel, kernel}) {
  size_t fan_in = 0, fan_out = 0;
  conv_fans(w_.value.shape(), fan_in, fan_out);
  init_tensor(w_.value, scheme, fan_in, fan_out, rng);
}

void conv2d_image_forward(const float* x_img, const float* w_mat,
                          const float* bias, Act act, const ConvGeom& g,
                          size_t out_c, float* col_scratch, float* out_img,
                          const kernels::KernelBackend* be) {
  if (be == nullptr) be = kernels::default_backend();
  im2col_view(x_img, g, col_scratch);
  be->gemm(w_mat, g.col_rows(), false, col_scratch, g.col_cols(), false,
           out_img, g.col_cols(), out_c, g.col_rows(), g.col_cols(), 1.0f,
           0.0f);
  bias_act_inplace(out_img, out_c, g.col_cols(), bias, act);
}

Tensor conv2d_forward(const Tensor& x, const Tensor& w_mat, const ConvGeom& g,
                      size_t out_c) {
  ALF_CHECK_EQ(x.rank(), size_t{4});
  const size_t n = x.dim(0);
  ALF_CHECK_EQ(x.dim(1), g.in_c);
  ALF_CHECK_EQ(x.dim(2), g.in_h);
  ALF_CHECK_EQ(x.dim(3), g.in_w);
  ALF_CHECK_EQ(w_mat.dim(0), out_c);
  ALF_CHECK_EQ(w_mat.dim(1), g.col_rows());

  const size_t ho = g.out_h(), wo = g.out_w();
  Tensor out({n, out_c, ho, wo});
  const size_t in_sz = g.in_c * g.in_h * g.in_w;
  const size_t out_sz = out_c * ho * wo;
  // Data-parallel over the batch; each worker owns per-image im2col scratch
  // and reads/writes the batch tensors in place (no staging copies). The
  // inner GEMMs stay serial (few rows), so there is no nested parallelism.
  // The backend is resolved once for the whole batch.
  const kernels::KernelBackend* be = kernels::default_backend();
  parallel_for_chunked(
      0, n,
      [&](size_t lo, size_t hi) {
        Tensor col({g.col_rows(), g.col_cols()});
        for (size_t i = lo; i < hi; ++i) {
          conv2d_image_forward(x.data() + i * in_sz, w_mat.data(),
                               /*bias=*/nullptr, Act::kNone, g, out_c,
                               col.data(), out.data() + i * out_sz, be);
        }
      },
      /*min_per_worker=*/1);
  return out;
}

Tensor conv2d_backward(const Tensor& x, const Tensor& w_mat,
                       const ConvGeom& g, size_t out_c,
                       const Tensor& grad_out, Tensor* grad_w) {
  const size_t n = x.dim(0);
  const size_t ho = g.out_h(), wo = g.out_w();
  ALF_CHECK_EQ(grad_out.dim(0), n);
  ALF_CHECK_EQ(grad_out.dim(1), out_c);
  ALF_CHECK_EQ(grad_out.dim(2), ho);
  ALF_CHECK_EQ(grad_out.dim(3), wo);

  Tensor grad_x(x.shape());
  const size_t out_sz = out_c * ho * wo;

  // Data-parallel over the batch; each worker accumulates its weight
  // gradient locally and merges under a mutex (cheap vs. the GEMMs).
  const kernels::KernelBackend* be = kernels::default_backend();
  std::mutex grad_w_mutex;
  parallel_for_chunked(
      0, n,
      [&](size_t lo, size_t hi) {
        Tensor col({g.col_rows(), g.col_cols()});
        Tensor gcol({g.col_rows(), g.col_cols()});
        Tensor local_gw;
        if (grad_w != nullptr) local_gw = Tensor(grad_w->shape());
        for (size_t i = lo; i < hi; ++i) {
          im2col(x, i, g, col);
          // gout_i is read in place from the batch gradient.
          const float* gout_i = grad_out.data() + i * out_sz;
          if (grad_w != nullptr) {
            // dW += gout_i [Co, HoWo] * col^T [HoWo, CiKK]
            be->gemm(gout_i, ho * wo, false, col.data(), g.col_cols(), true,
                     local_gw.data(), g.col_rows(), out_c, ho * wo,
                     g.col_rows(), 1.0f, 1.0f);
          }
          // dcol = W^T [CiKK, Co] * gout_i [Co, HoWo]
          be->gemm(w_mat.data(), g.col_rows(), true, gout_i, ho * wo, false,
                   gcol.data(), ho * wo, g.col_rows(), out_c, ho * wo, 1.0f,
                   0.0f);
          // grad_x is zero-initialized and each image slice is owned by
          // exactly one worker, so col2im accumulates into it directly.
          col2im(gcol, g, grad_x, i);
        }
        if (grad_w != nullptr) {
          const std::lock_guard<std::mutex> lock(grad_w_mutex);
          *grad_w += local_gw;
        }
      },
      /*min_per_worker=*/1);
  return grad_x;
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  const ConvGeom g{in_c_, x.dim(2), x.dim(3), kernel_, stride_, pad_};
  const Tensor w_mat = w_.value.reshaped({out_c_, in_c_ * kernel_ * kernel_});
  return conv2d_forward(x, w_mat, g, out_c_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  ALF_CHECK(!cached_x_.empty()) << "backward before forward";
  const ConvGeom g{in_c_, cached_x_.dim(2), cached_x_.dim(3), kernel_, stride_,
                   pad_};
  const Tensor w_mat = w_.value.reshaped({out_c_, in_c_ * kernel_ * kernel_});
  Tensor grad_w_mat = w_.grad.reshaped({out_c_, in_c_ * kernel_ * kernel_});
  Tensor grad_x = conv2d_backward(cached_x_, w_mat, g, out_c_, grad_out,
                                  &grad_w_mat);
  w_.grad = grad_w_mat.reshaped(w_.grad.shape());
  return grad_x;
}

}  // namespace alf
