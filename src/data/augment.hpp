// Training-time data augmentation: random horizontal flips and integer
// translations with zero padding — the standard CIFAR recipe the paper's
// base implementations use.
#pragma once

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace alf {

/// Augmentation policy.
struct AugmentConfig {
  bool hflip = true;      ///< flip each image left-right with p = 0.5
  int max_shift = 2;      ///< uniform translation in [-max_shift, max_shift]
};

/// Flips image `i` of batch `x` [N, C, H, W] left-right, in place.
void hflip_image(Tensor& x, size_t i);

/// Translates image `i` of batch `x` by (dy, dx), zero-filling, in place.
void shift_image(Tensor& x, size_t i, int dy, int dx);

/// Applies the policy independently to every image of the batch.
void augment_batch(Tensor& x, const AugmentConfig& config, Rng& rng);

}  // namespace alf
