#include "tune/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string_view>

#include "core/rng.hpp"
#include "engine/exec_context.hpp"
#include "kernels/backend.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace alf::tune {

namespace {

std::atomic<int> g_reps{3};

/// Hard shift-GEMM eligibility: the geometric constraints the runtime
/// relies on (stride-1, odd-kernel, same-pad, border-repair stack bound),
/// as opposed to the compile-time *heuristic* (which additionally wants
/// wide maps). A forced kShiftGemm choice outside these falls back to
/// im2col at compile; the tuner never emits such a candidate.
bool shift_eligible(const ConvGeom& g) {
  return g.stride == 1 && g.kernel % 2 == 1 && g.pad == (g.kernel - 1) / 2 &&
         g.in_h <= kMaxShiftH && (g.pad == 0 || g.in_w > 2 * g.pad);
}

/// Backends a candidate may name for this shape: registered, executable
/// under the current feature mask, and on the shape's datapath (float
/// plans pick float backends, quantized plans quantized ones — the packed
/// weight panels have one ABI per datapath).
std::vector<const kernels::KernelBackend*> usable_backends(bool quantized) {
  std::vector<const kernels::KernelBackend*> out;
  const uint32_t allowed = kernels::allowed_cpu_features();
  for (const std::string& name : kernels::backend_names()) {
    const kernels::KernelBackend* be = kernels::find_backend(name);
    if (be == nullptr) continue;
    if (be->quantized_datapath != quantized) continue;
    if ((be->required_features & ~allowed) != 0) continue;
    out.push_back(be);
  }
  return out;
}

/// Tile grid offered on a backend's im2col GEMMs. Values are (mc, kc, nc)
/// in the backend's own blocking terms; {0,0,0} (the default constants) is
/// always offered first by the caller.
std::vector<kernels::TileParams> tile_grid(const kernels::KernelBackend* be) {
  if (be->gemm_tiled == nullptr) return {};
  if (std::string_view(be->name) == "simd")
    return {{128, 256, 256}, {64, 512, 256}, {64, 256, 512}};
  return {{0, 256, 256}};  // scalar-style (k, n) blocking
}

}  // namespace

std::string shape_key(const TuneShape& s) {
  std::ostringstream os;
  const int q = s.quantized ? s.qbits : 0;
  if (s.is_conv) {
    os << "conv:c" << s.geom.in_c << ":h" << s.geom.in_h << ":w"
       << s.geom.in_w << ":k" << s.geom.kernel << ":s" << s.geom.stride
       << ":p" << s.geom.pad << ":o" << s.out_c << ":q" << q << ":nn"
       << (s.in_nonneg ? 1 : 0) << ":b" << s.batch << ":t" << s.chunks;
  } else {
    os << "linear:i" << s.in_features << ":o" << s.out_features << ":q" << q
       << ":nn" << (s.in_nonneg ? 1 : 0) << ":b" << s.batch;
  }
  return os.str();
}

std::vector<AlgoChoice> candidates(const TuneShape& shape) {
  std::vector<AlgoChoice> out;
  out.push_back(AlgoChoice{});  // the heuristic default, always first

  const auto backends = usable_backends(shape.quantized);

  if (!shape.is_conv) {
    // Linear: backend choice only. Tiles are not plumbed through the
    // linear runtime path, and the chunk grid does not apply.
    for (const kernels::KernelBackend* be : backends) {
      AlgoChoice c;
      c.backend = be->name;
      out.push_back(std::move(c));
    }
    return out;
  }

  // Conv. Chunk-grid variants only make sense when the plan actually
  // splits the batch (chunk=1 unfolds the whole batch as one GEMM).
  std::vector<uint32_t> chunk_set = {0};
  if (shape.batch > 1 && shape.chunks > 1) chunk_set.push_back(1);

  for (const kernels::KernelBackend* be : backends) {
    if (!shape.quantized && shift_eligible(shape.geom)) {
      AlgoChoice c;
      c.strategy = AlgoChoice::Strategy::kShiftGemm;
      c.backend = be->name;
      out.push_back(std::move(c));
    }
    std::vector<kernels::TileParams> tiles = {{}};
    if (!shape.quantized)
      for (const kernels::TileParams& t : tile_grid(be)) tiles.push_back(t);
    for (const kernels::TileParams& t : tiles) {
      for (uint32_t chunk : chunk_set) {
        AlgoChoice c;
        c.strategy = AlgoChoice::Strategy::kIm2col;
        c.backend = be->name;
        c.tile = t;
        c.chunk = chunk;
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

double measure_choice(const TuneShape& shape, const AlgoChoice& choice) {
  // A throwaway single-layer model of the exact shape. The Rng seed is
  // fixed so every candidate times the same weights and the same input.
  Rng rng(0x7a11e5);
  auto model = std::make_unique<Sequential>("tune-probe");
  // in_nonneg shapes reach their GEMM through a ReLU chain; reproduce that
  // so quantized candidates run the same asymmetric activation grid. The
  // ReLU cost is identical across candidates, so rankings are unaffected.
  if (shape.in_nonneg)
    model->emplace<Activation>("relu", Act::kRelu);
  size_t in_c, in_h, in_w;
  if (shape.is_conv) {
    in_c = shape.geom.in_c;
    in_h = shape.geom.in_h;
    in_w = shape.geom.in_w;
    model->emplace<Conv2d>("conv", shape.geom.in_c, shape.out_c,
                           shape.geom.kernel, shape.geom.stride,
                           shape.geom.pad, Init::kHe, rng);
  } else {
    in_c = shape.in_features;
    in_h = 1;
    in_w = 1;
    model->emplace<Flatten>("flatten");
    model->emplace<Linear>("fc", shape.in_features, shape.out_features,
                           Init::kHe, rng);
  }

  // Enough batch to exercise the chunk grid, small enough to keep tuning
  // cheap; the per-image kernel work is what differs between candidates.
  const size_t bench_batch = std::max<size_t>(1, std::min<size_t>(shape.batch, 8));

  EngineOptions mopts;
  mopts.backend = shape.plan_backend;
  mopts.bits = shape.qbits;
  mopts.tune = TuneMode::kHeuristic;  // recursion guard: forced, never tuned
  mopts.force_choices = {choice};
  auto plan = Plan::compile(*model, bench_batch, in_c, in_h, in_w, mopts);
  ExecContext ctx(plan);

  Tensor x(Shape{bench_batch, in_c, in_h, in_w});
  for (size_t i = 0; i < x.numel(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  Tensor out = ctx.run(x);  // warmup: faults pages, fills TLS scratch

  // min-of-K: scheduling noise on a shared machine is one-sided, so the
  // minimum is the best estimate of the candidate's intrinsic cost.
  double best_ms = 0.0;
  const int k = reps();
  for (int r = 0; r < k; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    ctx.run(x, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  note_measure_run();
  return best_ms;
}

AlgoChoice choose(const TuneShape& shape, TuneMode mode, AlgoCache& cache) {
  if (mode != TuneMode::kCached && mode != TuneMode::kFull)
    return AlgoChoice{};  // heuristic modes never reach the tuner

  const std::string key = shape_key(shape);
  if (mode == TuneMode::kCached) {
    AlgoChoice hit;
    if (cache.lookup(key, &hit)) {
      note_cache_hit();
      return hit;
    }
    note_cache_miss();
  }

  const std::vector<AlgoChoice> cands = candidates(shape);
  // The heuristic baseline (cands[0]) is measured first and holds the
  // title unless a challenger beats it by >3% — so a tuned plan is never
  // slower than the untuned one beyond measurement noise.
  AlgoChoice best = cands[0];
  double best_ms = measure_choice(shape, cands[0]);
  for (size_t i = 1; i < cands.size(); ++i) {
    const double ms = measure_choice(shape, cands[i]);
    if (ms < best_ms * 0.97) {
      best_ms = ms;
      best = cands[i];
    }
  }
  cache.insert(key, best, best_ms);
  return best;
}

void set_reps(int r) { g_reps.store(std::max(1, r), std::memory_order_relaxed); }
int reps() { return g_reps.load(std::memory_order_relaxed); }

}  // namespace alf::tune
