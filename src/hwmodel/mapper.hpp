// Mapping search ("mapper") over the row-stationary mapping space.
//
// Mirrors the paper's Timeloop setup: exhaustive enumeration of tiling
// factors with a hard iteration cap (100K) and a victory condition (stop
// after 1K consecutive evaluations without improvement), minimizing the
// energy-delay product.
#pragma once

#include "hwmodel/mapping.hpp"

namespace alf {

/// Search telemetry.
struct MapperStats {
  size_t evaluated = 0;  ///< mappings evaluated (valid or not)
  size_t valid = 0;      ///< mappings passing validity checks
  bool hit_cap = false;  ///< stopped by max_iterations
};

/// Finds the best mapping for one layer. Throws CheckError if no valid
/// mapping exists (cannot happen for workloads fitting basic constraints:
/// kernel height <= PE rows).
LayerEval map_layer(const ConvWorkload& w, const EyerissConfig& arch,
                    const MapperConfig& mapper, MapperStats* stats = nullptr);

/// Maps every conv layer of a model; returns per-layer results in order.
std::vector<LayerEval> map_model(const ModelCost& cost, size_t batch,
                                 const EyerissConfig& arch,
                                 const MapperConfig& mapper);

}  // namespace alf
