// Fig. 2c — training dynamics of five ALF variants on Plain-20:
// remaining filters [%] and accuracy [%] vs training epoch, for different
// autoencoder learning rates and clipping thresholds, plus the uncompressed
// Plain-20 reference.
//
// Paper finding to reproduce: larger thresholds prune more aggressively;
// smaller autoencoder learning rates prune less (fewer mask updates); the
// reference Plain-20 stays at 100% filters.
//
// Scaled hyper-parameters: the paper's (lr_ae, t) pairs are scaled by the
// optimizer-step budget — see EXPERIMENTS.md; relative ordering is what the
// figure demonstrates.
#include <cstdio>

#include "bench_common.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

struct Variant {
  std::string label;
  float mask_mult;  ///< mask-lr multiplier (scaled stand-in for lr_ae)
  float threshold;
  bool alf;  ///< false = uncompressed reference
};

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::printf("Fig. 2c: remaining filters and accuracy vs epoch (scale=%s)\n\n",
              s.name);

  // Scaled analogues of the paper's five (lr_ae, t) variants. The paper
  // sweeps the mask-update speed via lr_ae directly; at reduced scale the
  // mask learning rate is lr_ae * mult (see EXPERIMENTS.md), so the sweep
  // is over (mult, t): low mult ~ "lr=1e-5", mid ~ "1e-4", high ~ "1e-3".
  const Variant variants[] = {
      {"Plain20 (reference)", 0.0f, 0.0f, false},
      {"ALF(lr~1e-5, t~1e-4)", 10.0f, 0.15f, true},   // low lr: few updates
      {"ALF(lr~1e-4, t~1e-4)", 30.0f, 0.15f, true},
      {"ALF(lr~1e-3, t~5e-5)", 80.0f, 0.08f, true},   // small t
      {"ALF(lr~1e-3, t~1e-4)", 80.0f, 0.15f, true},
      {"ALF(lr~1e-3, t~5e-4)", 80.0f, 0.25f, true},   // large t: aggressive
  };

  const DataConfig task = cifar_task(s);
  SyntheticImageDataset train(task, s.train_n, 1);
  SyntheticImageDataset test(task, s.test_n, 2);

  Table table("Fig. 2c — per-epoch series");
  table.set_header(
      {"variant", "epoch", "remaining_filters[%]", "test_acc[%]"});

  Table summary("Fig. 2c — final state per variant");
  summary.set_header({"variant", "remaining_filters[%]", "test_acc[%]"});

  for (const Variant& v : variants) {
    Rng rng(41);
    ModelConfig mc;
    mc.base_width = s.width;
    mc.in_hw = s.hw;
    std::vector<AlfConv*> blocks;
    std::unique_ptr<Sequential> model;
    if (v.alf) {
      AlfConfig acfg = alf_config(s);
      acfg.lr_mask_mult = v.mask_mult;
      acfg.threshold = v.threshold;
      model = build_plain20(mc, rng, make_alf_conv_maker(acfg, &rng, &blocks));
    } else {
      model = build_plain20(mc, rng, standard_conv_maker(mc.init, &rng));
    }
    const auto hist = Trainer(*model, train, test, train_config(s)).run();
    for (const EpochStats& e : hist) {
      table.add_row({v.label, Table::fmt_int(static_cast<long long>(e.epoch)),
                     Table::fmt(100.0 * e.remaining_filters, 2),
                     Table::fmt(100.0 * e.test_acc, 1)});
    }
    summary.add_row({v.label,
                     Table::fmt(100.0 * hist.back().remaining_filters, 2),
                     Table::fmt(100.0 * hist.back().test_acc, 1)});
    std::printf("done: %s (remaining %.1f%%, acc %.1f%%)\n", v.label.c_str(),
                100.0 * hist.back().remaining_filters,
                100.0 * hist.back().test_acc);
    std::fflush(stdout);
  }

  std::printf("\n");
  summary.print();
  std::printf("\n");
  table.print();
  table.write_csv("fig2c.csv");
  return 0;
}
