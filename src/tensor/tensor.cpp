#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "core/check.hpp"

namespace alf {

size_t shape_numel(const Shape& shape) {
  if (shape.empty()) return 0;
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  ALF_CHECK_EQ(data_.size(), shape_numel(shape_)) << shape_str(shape_);
}

size_t Tensor::dim(size_t d) const {
  ALF_CHECK(d < shape_.size()) << "dim " << d << " of " << shape_str(shape_);
  return shape_[d];
}

float& Tensor::at(size_t i) {
  ALF_CHECK(i < data_.size());
  return data_[i];
}

float Tensor::at(size_t i) const {
  ALF_CHECK(i < data_.size());
  return data_[i];
}

float& Tensor::at(size_t r, size_t c) {
  ALF_CHECK_EQ(rank(), size_t{2});
  ALF_CHECK(r < shape_[0] && c < shape_[1]);
  return data_[r * shape_[1] + c];
}

float Tensor::at(size_t r, size_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

float& Tensor::at4(size_t a, size_t b, size_t c, size_t d) {
  ALF_CHECK_EQ(rank(), size_t{4});
  ALF_CHECK(a < shape_[0] && b < shape_[1] && c < shape_[2] && d < shape_[3]);
  return data_[((a * shape_[1] + b) * shape_[2] + c) * shape_[3] + d];
}

float Tensor::at4(size_t a, size_t b, size_t c, size_t d) const {
  return const_cast<Tensor*>(this)->at4(a, b, c, d);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape_inplace(std::move(new_shape));
  return out;
}

void Tensor::reshape_inplace(Shape new_shape) {
  ALF_CHECK_EQ(shape_numel(new_shape), data_.size())
      << "reshape " << shape_str(shape_) << " -> " << shape_str(new_shape);
  shape_ = std::move(new_shape);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  ALF_CHECK(same_shape(*this, other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  ALF_CHECK(same_shape(*this, other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::mean() const {
  ALF_CHECK(!data_.empty());
  return sum() / static_cast<double>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace alf
