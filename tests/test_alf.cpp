#include <gtest/gtest.h>

#include <cmath>

#include "alf/alf_conv.hpp"
#include "alf/deploy.hpp"
#include "grad_check.hpp"
#include "models/zoo.hpp"
#include "tensor/ops.hpp"

namespace alf {
namespace {

using testing::random_input;

AlfConfig default_cfg() { return AlfConfig{}; }

TEST(AlfConv, ForwardShapeMatchesPlainConv) {
  Rng rng(1);
  AlfConv block("b", 3, 8, 3, 2, 1, default_cfg(), rng);
  Tensor x = random_input({2, 3, 9, 9}, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 5, 5}));
  EXPECT_EQ(block.last_out_h(), 5u);
}

TEST(AlfConv, CcodeMaxMatchesEq2) {
  Rng rng(2);
  // Eq. 2 example: Ci=16, Co=32, K=3 -> floor(16*32*9 / (16*9 + 32)) = 26.
  AlfConv block("b", 16, 32, 3, 1, 1, default_cfg(), rng);
  EXPECT_EQ(block.ccode_max(), (16u * 32 * 9) / (16 * 9 + 32));
  EXPECT_EQ(block.ccode_max(), 26u);
  EXPECT_LT(block.ccode_max(), 32u);  // bound is strictly below Co
}

TEST(AlfConv, MaskStartsFullyActive) {
  Rng rng(3);
  AlfConv block("b", 4, 6, 3, 1, 1, default_cfg(), rng);
  EXPECT_EQ(block.zero_filters(), 0u);
  EXPECT_DOUBLE_EQ(block.remaining_fraction(), 1.0);
}

TEST(AlfConv, ClippingZeroesSubThresholdMaskEntries) {
  Rng rng(4);
  AlfConfig cfg = default_cfg();
  cfg.threshold = 0.5f;
  AlfConv block("b", 2, 4, 3, 1, 1, cfg, rng);
  block.mask() = Tensor({4}, {1.0f, 0.4f, -0.6f, 0.49f});
  Tensor mp = block.compute_mprune();
  EXPECT_FLOAT_EQ(mp.at(0), 1.0f);
  EXPECT_FLOAT_EQ(mp.at(1), 0.0f);
  EXPECT_FLOAT_EQ(mp.at(2), -0.6f);  // clip keeps the signed value
  EXPECT_FLOAT_EQ(mp.at(3), 0.0f);
  EXPECT_EQ(block.zero_filters(), 2u);
}

TEST(AlfConv, MaskRecoveryIsPossible) {
  // A clipped entry is not dead: the stored mask value keeps training and
  // can re-cross the threshold (the paper's "recover a channel" property).
  Rng rng(5);
  AlfConfig cfg = default_cfg();
  cfg.threshold = 0.5f;
  AlfConv block("b", 2, 4, 3, 1, 1, cfg, rng);
  block.mask() = Tensor({4}, {1.0f, 0.4f, 1.0f, 1.0f});
  EXPECT_EQ(block.zero_filters(), 1u);
  block.mask().at(1) = 0.7f;  // e.g. an optimizer update
  EXPECT_EQ(block.zero_filters(), 0u);
}

TEST(AlfConv, ZeroedFilterProducesZeroCodeRow) {
  Rng rng(6);
  AlfConfig cfg = default_cfg();
  cfg.threshold = 0.5f;
  AlfConv block("b", 2, 4, 3, 1, 1, cfg, rng);
  block.mask() = Tensor({4}, {1.0f, 0.1f, 1.0f, 1.0f});
  Tensor wcode = block.compute_wcode();
  const size_t cols = wcode.dim(1);
  for (size_t j = 0; j < cols; ++j)
    EXPECT_FLOAT_EQ(wcode.at(1 * cols + j), 0.0f);  // tanh(0) = 0
}

TEST(AlfConv, DisabledMaskPrunesNothing) {
  Rng rng(7);
  AlfConfig cfg = default_cfg();
  cfg.mask_enabled = false;
  AlfConv block("b", 2, 4, 3, 1, 1, cfg, rng);
  block.mask() = Tensor({4}, {0.0f, 0.0f, 0.0f, 0.0f});
  EXPECT_EQ(block.zero_filters(), 0u);
}

TEST(AlfConv, TaskParamsExcludeAutoencoder) {
  Rng rng(8);
  AlfConv block("b", 2, 4, 3, 1, 1, default_cfg(), rng);
  auto params = block.params();
  ASSERT_EQ(params.size(), 2u);  // W, Wexp
  EXPECT_FALSE(params[0]->decay);  // no regularization on W (Sec. III-B)
}

TEST(AlfConv, SteGradientEqualsConvGradWrtWcode) {
  // With STE the gradient reaching W must be exactly dL/dWcode: perturbing
  // Wcode directly (finite differences through the conv only) must match
  // block.backward's accumulated w().grad.
  Rng rng(9);
  AlfConfig cfg = default_cfg();
  AlfConv block("b", 2, 3, 3, 1, 1, cfg, rng);
  Tensor x = random_input({1, 2, 4, 4}, rng);
  Tensor y = block.forward(x, true);
  Tensor coeff = testing::random_coeffs(y.shape(), rng);
  block.zero_grad();
  block.backward(coeff);

  const Tensor wcode = block.compute_wcode();
  const ConvGeom g{2, 4, 4, 3, 1, 1};
  const float eps = 1e-2f;
  Tensor wc = wcode;
  for (size_t i = 0; i < wc.numel(); i += 7) {  // sample positions
    const float orig = wc.at(i);
    wc.at(i) = orig + eps;
    const double lp = testing::weighted_sum(
        conv2d_forward(
            act_forward(cfg.sigma_inter,
                        conv2d_forward(x, wc, g, 3)),
            block.wexp().value, ConvGeom{3, 4, 4, 1, 1, 0}, 3),
        coeff);
    wc.at(i) = orig - eps;
    const double lm = testing::weighted_sum(
        conv2d_forward(
            act_forward(cfg.sigma_inter,
                        conv2d_forward(x, wc, g, 3)),
            block.wexp().value, ConvGeom{3, 4, 4, 1, 1, 0}, 3),
        coeff);
    wc.at(i) = orig;
    EXPECT_NEAR(block.w().grad.at(i), (lp - lm) / (2 * eps), 5e-2) << i;
  }
}

TEST(AlfConv, NonSteGradientMatchesFiniteDifference) {
  // With use_ste=false the full chain is differentiated, so a standard
  // end-to-end gradient check through W must pass.
  Rng rng(10);
  AlfConfig cfg = default_cfg();
  cfg.use_ste = false;
  AlfConv block("b", 2, 3, 3, 1, 1, cfg, rng);
  Tensor x = random_input({1, 2, 4, 4}, rng);
  auto res = testing::grad_check(block, x, rng);
  EXPECT_LT(res.max_rel_err, 6e-2);
}

TEST(AlfConv, ExpansionGradientMatchesFiniteDifference) {
  // Wexp is a plain task parameter in both STE modes.
  Rng rng(11);
  AlfConv block("b", 2, 3, 3, 1, 1, default_cfg(), rng);
  Tensor x = random_input({1, 2, 4, 4}, rng);
  Tensor y = block.forward(x, true);
  Tensor coeff = testing::random_coeffs(y.shape(), rng);
  block.zero_grad();
  block.backward(coeff);
  const float eps = 1e-2f;
  for (size_t i = 0; i < block.wexp().value.numel(); i += 3) {
    const float orig = block.wexp().value.at(i);
    block.wexp().value.at(i) = orig + eps;
    const double lp = testing::weighted_sum(block.forward(x, true), coeff);
    block.wexp().value.at(i) = orig - eps;
    const double lm = testing::weighted_sum(block.forward(x, true), coeff);
    block.wexp().value.at(i) = orig;
    EXPECT_NEAR(block.wexp().grad.at(i), (lp - lm) / (2 * eps), 5e-2);
  }
}

TEST(AlfConv, AutoencoderStepReducesReconstruction) {
  Rng rng(12);
  AlfConfig cfg = default_cfg();
  cfg.mask_enabled = false;  // isolate the reconstruction objective
  cfg.lr_ae = 5e-2f;
  AlfConv block("b", 4, 8, 3, 1, 1, cfg, rng);
  const double first = block.autoencoder_step().l_rec;
  double last = first;
  for (int i = 0; i < 800; ++i) last = block.autoencoder_step().l_rec;
  EXPECT_LT(last, first * 0.8);
}

TEST(AlfConv, PruningPressureDrivesMaskDown) {
  Rng rng(13);
  AlfConfig cfg = default_cfg();
  cfg.lr_ae = 5e-2f;
  cfg.threshold = 0.3f;
  AlfConv block("b", 4, 8, 3, 1, 1, cfg, rng);
  for (int i = 0; i < 400; ++i) block.autoencoder_step();
  EXPECT_GT(block.zero_filters(), 0u);
}

TEST(AlfConv, NuPruneDecaysWithSparsity) {
  Rng rng(14);
  AlfConfig cfg = default_cfg();
  AlfConv block("b", 2, 10, 3, 1, 1, cfg, rng);
  // theta = 0 -> nu = 1 - exp(-m*pr_max), close to 1.
  AeStepStats s0 = block.autoencoder_step();
  EXPECT_NEAR(s0.nu_prune, 1.0 - std::exp(8.0 * (0.0 - 0.85)), 1e-9);
  // Force high sparsity: zero out 9 of 10 mask entries.
  for (size_t i = 1; i < 10; ++i) block.mask().at(i) = 0.0f;
  AeStepStats s1 = block.autoencoder_step();
  EXPECT_LT(s1.nu_prune, s0.nu_prune);
  // At theta >= pr_max the pressure vanishes entirely.
  EXPECT_NEAR(s1.nu_prune, std::max(0.0, 1.0 - std::exp(8.0 * (0.9 - 0.85))),
              1e-9);
  EXPECT_EQ(s1.nu_prune, 0.0);
}

TEST(AlfConv, MaskWarmupFreezesMaskOnly) {
  Rng rng(21);
  AlfConfig cfg = default_cfg();
  cfg.lr_ae = 5e-2f;
  cfg.mask_warmup_steps = 50;
  AlfConv block("b", 4, 8, 3, 1, 1, cfg, rng);
  const Tensor mask_before = block.mask();
  const Tensor enc_before = block.wenc();
  for (int i = 0; i < 20; ++i) block.autoencoder_step();
  // Encoder trained, mask untouched during warmup.
  EXPECT_GT((block.wenc().l2_norm() != enc_before.l2_norm()), 0);
  for (size_t i = 0; i < 8; ++i)
    EXPECT_FLOAT_EQ(block.mask().at(i), mask_before.at(i));
  // After warmup the mask moves.
  for (int i = 0; i < 60; ++i) block.autoencoder_step();
  bool moved = false;
  for (size_t i = 0; i < 8; ++i)
    moved |= block.mask().at(i) != mask_before.at(i);
  EXPECT_TRUE(moved);
}

TEST(AlfConv, MaskLrMultiplierAcceleratesPruning) {
  auto run = [](float mult) {
    Rng rng(22);
    AlfConfig cfg;
    cfg.lr_ae = 1e-3f;
    cfg.lr_mask_mult = mult;
    AlfConv block("b", 4, 8, 3, 1, 1, cfg, rng);
    for (int i = 0; i < 100; ++i) block.autoencoder_step();
    double sum = 0.0;
    for (size_t i = 0; i < 8; ++i) sum += std::abs(block.mask().at(i));
    return sum / 8.0;  // mean |m| after identical step counts
  };
  // Higher mask lr drives |m| down faster under the same L1 pressure.
  EXPECT_LT(run(100.0f), run(1.0f));
}

TEST(AlfConv, IdentityInitCodeApproximatesW) {
  // With near-identity encoder and tanh in its linear region, the initial
  // code is close to the raw filter bank — the precondition for the STE.
  Rng rng(23);
  AlfConfig cfg = default_cfg();
  cfg.wae_init = Init::kIdentity;
  AlfConv block("b", 4, 8, 3, 1, 1, cfg, rng);
  const Tensor wmat =
      block.w().value.reshaped({8, 4 * 9});
  const Tensor wcode = block.compute_wcode();
  // tanh compresses slightly; correlation must be near 1.
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < wmat.numel(); ++i) {
    dot += static_cast<double>(wmat.at(i)) * wcode.at(i);
    na += static_cast<double>(wmat.at(i)) * wmat.at(i);
    nb += static_cast<double>(wcode.at(i)) * wcode.at(i);
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.99);
}

TEST(Deploy, DescribeBlockFields) {
  Rng rng(15);
  AlfConv block("conv31", 8, 16, 3, 2, 1, default_cfg(), rng);
  const CompressedConvDesc d = describe_block(block);
  EXPECT_EQ(d.name, "conv31");
  EXPECT_EQ(d.ci, 8u);
  EXPECT_EQ(d.co, 16u);
  EXPECT_EQ(d.ccode, 16u);  // nothing pruned yet
  EXPECT_EQ(d.stride, 2u);
  EXPECT_EQ(d.ccode_max, block.ccode_max());
}

TEST(Deploy, DeployedUnitMatchesBlockExactly) {
  Rng rng(16);
  AlfConfig cfg = default_cfg();
  cfg.threshold = 0.5f;
  AlfConv block("b", 3, 6, 3, 1, 1, cfg, rng);
  // Prune half the filters.
  block.mask() = Tensor({6}, {1.0f, 0.1f, -0.8f, 0.2f, 0.6f, 0.0f});
  Tensor x = random_input({2, 3, 7, 7}, rng);
  const float err = deployment_error(block, x, rng);
  EXPECT_LT(err, 1e-5f);
}

TEST(Deploy, DeployedUnitWithSigmaInter) {
  Rng rng(17);
  AlfConfig cfg = default_cfg();
  cfg.sigma_inter = Act::kRelu;
  cfg.threshold = 0.5f;
  AlfConv block("b", 2, 4, 3, 1, 1, cfg, rng);
  block.mask() = Tensor({4}, {1.0f, 0.2f, 0.9f, 1.0f});
  Tensor x = random_input({1, 2, 5, 5}, rng);
  EXPECT_LT(deployment_error(block, x, rng), 1e-5f);
}

TEST(Deploy, AllPrunedKeepsOneFilter) {
  Rng rng(18);
  AlfConfig cfg = default_cfg();
  cfg.threshold = 0.5f;
  AlfConv block("b", 2, 4, 3, 1, 1, cfg, rng);
  block.mask() = Tensor({4}, {0.1f, 0.2f, 0.3f, 0.05f});
  EXPECT_EQ(block.zero_filters(), 4u);
  LayerPtr unit = make_deployed_unit(block, rng);
  Tensor x = random_input({1, 2, 5, 5}, rng);
  Tensor y = unit->forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 5, 5}));
}

TEST(Deploy, CompressionCostMath) {
  ModelCost vanilla;
  vanilla.name = "v";
  CostBuilder b("v", 3, 8, 8);
  b.conv("c1", 16, 3, 1, 1);
  vanilla = b.finish();
  const ModelCost comp =
      apply_alf_compression(vanilla, {{"c1", 4}}, "v-alf");
  ASSERT_EQ(comp.layers.size(), 2u);
  EXPECT_EQ(comp.layers[0].params, 3ull * 4 * 9);
  EXPECT_EQ(comp.layers[1].params, 4ull * 16);
  // ccode=4 < ccode_max -> cheaper than vanilla.
  EXPECT_LT(comp.total_macs(), vanilla.total_macs());
}

TEST(Deploy, Eq2BoundaryOnCost) {
  // At ccode == ccode_max the ALF pair should not exceed the vanilla conv
  // MACs; above it, it should.
  CostBuilder b("v", 16, 8, 8);
  b.conv("c", 32, 3, 1, 1);
  const ModelCost vanilla = b.finish();
  const size_t ccode_max = (16 * 32 * 9) / (16 * 9 + 32);  // Eq. 2
  const ModelCost at =
      apply_alf_compression(vanilla, {{"c", ccode_max}}, "at");
  EXPECT_LE(at.total_macs(), vanilla.total_macs());
  const ModelCost above =
      apply_alf_compression(vanilla, {{"c", ccode_max + 1}}, "above");
  EXPECT_GT(above.total_macs(), vanilla.total_macs());
}

TEST(Deploy, FractionsApplyToMatchingLayers) {
  CostBuilder b("v", 3, 8, 8);
  b.conv("c1", 16, 3, 1, 1);
  b.conv("c2", 32, 3, 1, 1);
  const ModelCost vanilla = b.finish();
  const ModelCost comp =
      apply_alf_fractions(vanilla, {{"c1", 0.5}}, "half");
  ASSERT_EQ(comp.layers.size(), 3u);  // c1 pair + untouched c2
  EXPECT_EQ(comp.layers[0].co, 8u);
  EXPECT_EQ(comp.layers[2].name, "c2");
  EXPECT_EQ(comp.layers[2].params, vanilla.layers[1].params);
}

TEST(Deploy, MakerRegistersBlocks) {
  Rng rng(19);
  std::vector<AlfConv*> registry;
  ModelConfig cfg;
  cfg.base_width = 4;
  auto maker = make_alf_conv_maker(default_cfg(), &rng, &registry);
  auto model = build_plain20(cfg, rng, maker);
  EXPECT_EQ(registry.size(), 19u);
  EXPECT_EQ(collect_alf_convs(*model).size(), 19u);
  // Forward works end to end.
  Tensor x({1, 3, 32, 32});
  EXPECT_EQ(model->forward(x, false).shape(), (Shape{1, 10}));
}

}  // namespace
}  // namespace alf
