// Model checkpointing: save / load the full training state of a network —
// task parameters, BatchNorm running statistics, and for ALF blocks the
// autoencoder state (Wenc, Wdec, mask M) — to a portable binary file.
//
// Format (little-endian):
//   magic "ALFCKPT1" | u64 tensor-count |
//   per tensor: u32 name-len | name bytes | u32 rank | u64 dims[] | f32 data[]
//
// Loading requires an exactly matching architecture (same names, same
// shapes); mismatches throw CheckError with a precise message.
#pragma once

#include <string>
#include <vector>

#include "alf/alf_conv.hpp"
#include "nn/sequential.hpp"

namespace alf {

/// A named reference to one state tensor of a model.
struct NamedTensorRef {
  std::string name;
  Tensor* tensor = nullptr;
};

/// Collects every state tensor of `model` in a deterministic order:
/// task parameters, BN running statistics, ALF autoencoder state.
std::vector<NamedTensorRef> state_dict(Sequential& model);

/// Writes the full state to `path`. Returns false on I/O failure.
bool save_checkpoint(Sequential& model, const std::string& path);

/// Restores state saved by save_checkpoint. Throws CheckError if the file
/// is malformed or does not match the model's architecture.
void load_checkpoint(Sequential& model, const std::string& path);

}  // namespace alf
