// serve — closed-loop load generator for the batched inference server.
//
// C client threads replay a bursty request stream (mostly small requests
// back-to-back, occasional think-time gaps) against two serving paths under
// the same offered load:
//
//   layer-tree : the pre-engine baseline — every request runs its own
//                Sequential::forward on a per-client model replica
//   engine     : one shared BatchServer — mutex/CV queue, dynamic batching
//                up to Engine::batch() images per tick, a single
//                Engine::run_rows per dispatch
//
// Reports per-request p50/p95/p99 latency (nearest-rank percentile() from
// bench_common.hpp), sustained images/s, and the server's batch-fill
// counters, which show the dynamic batcher aggregating bursts. With --json
// the record lands in BENCH_serve.json (row names deliberately include
// quoted policy strings — the writer must escape them).
//
//   ./serve [--quick|--full] [--requests N] [--clients N] [--json <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "serve/batch_server.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

/// One scripted request of a client's closed loop.
struct PlannedRequest {
  size_t n = 0;            ///< images in the request
  unsigned think_us = 0;   ///< pause before submitting (burst gap)
};

/// Bursty per-client script: ~75% of requests follow the previous one
/// back-to-back (a burst), the rest arrive after a 100-900us gap; request
/// sizes are mostly 1-4 images with an occasional 8-image straggler.
std::vector<std::vector<PlannedRequest>> make_plan(size_t clients,
                                                   size_t per_client,
                                                   Rng& rng) {
  std::vector<std::vector<PlannedRequest>> plan(clients);
  for (auto& reqs : plan) {
    reqs.resize(per_client);
    for (PlannedRequest& r : reqs) {
      const double u = rng.uniform();
      r.n = u < 0.8 ? 1 + rng.uniform_index(4) : 8;
      r.think_us = rng.uniform() < 0.75
                       ? 0
                       : static_cast<unsigned>(100 + rng.uniform_index(800));
    }
  }
  return plan;
}

struct LoadResult {
  std::vector<double> latencies_ms;  // per request, all clients merged
  double images_per_s = 0.0;
};

/// Drives the scripted closed loop: each client thread issues its requests
/// in order (sleep think_us, call serve_one, measure). `serve_one(client,
/// x)` must block until the request completes.
template <typename ServeOne>
LoadResult run_load(const std::vector<std::vector<PlannedRequest>>& plan,
                    const std::vector<Tensor>& inputs_by_n,
                    ServeOne&& serve_one) {
  const size_t clients = plan.size();
  std::vector<std::vector<double>> lat(clients);
  size_t images = 0;
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs) images += r.n;

  const auto t_begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(plan[c].size());
      for (const PlannedRequest& r : plan[c]) {
        if (r.think_us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(r.think_us));
        const Tensor& x = inputs_by_n[r.n];
        const auto t0 = std::chrono::steady_clock::now();
        serve_one(c, x);
        const auto t1 = std::chrono::steady_clock::now();
        lat[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();

  LoadResult res;
  for (auto& v : lat)
    res.latencies_ms.insert(res.latencies_ms.end(), v.begin(), v.end());
  res.images_per_s = static_cast<double>(images) / total_s;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::string json_path = parse_json_path(argc, argv);
  if (json_path.empty()) json_path = "BENCH_serve.json";

  size_t per_client = 100, clients = 6;
  if (std::strcmp(s.name, "quick") == 0) {
    per_client = 40;
    clients = 4;
  } else if (std::strcmp(s.name, "full") == 0) {
    per_client = 200;
    clients = 8;
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0)
      per_client = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
    if (std::strcmp(argv[i], "--clients") == 0)
      clients = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
  }
  const size_t max_batch = 32;
  const uint64_t max_wait_us = 200;

  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;

  // One model replica per layer-tree client (forward caches per-layer state,
  // so replicas keep the baseline race-free); identical weights everywhere
  // via the fixed seed. The engine compiles from replica 0.
  std::vector<std::unique_ptr<Sequential>> replicas(clients);
  for (auto& m : replicas) {
    Rng rng(17);
    m = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
    warm_bn(*m, mc.in_channels, s.hw, rng);
  }

  Rng rng(29);
  std::vector<Tensor> inputs_by_n(max_batch + 1);
  const auto plan = make_plan(clients, per_client, rng);
  for (const auto& reqs : plan)
    for (const PlannedRequest& r : reqs)
      if (inputs_by_n[r.n].empty())
        inputs_by_n[r.n] =
            random_input({r.n, mc.in_channels, s.hw, s.hw}, rng);

  std::printf(
      "serve: %zu clients x %zu closed-loop requests, engine batch %zu, "
      "max_wait %lluus (scale=%s)\n\n",
      clients, per_client, max_batch,
      static_cast<unsigned long long>(max_wait_us), s.name);

  // --- Baseline: per-request layer-tree forward on the client thread. ---
  for (size_t c = 0; c < clients; ++c)  // untimed warmup
    replicas[c]->forward(inputs_by_n[1], false);
  const LoadResult layers = run_load(
      plan, inputs_by_n,
      [&](size_t c, const Tensor& x) { replicas[c]->forward(x, false); });

  // --- Engine path: shared BatchServer, dynamic batching. ---
  BatchServer::Config cfg;
  cfg.max_wait_us = max_wait_us;
  BatchServer server(
      Engine::compile(*replicas[0], max_batch, mc.in_channels, s.hw, s.hw),
      cfg);
  server.submit(inputs_by_n[1]).get();  // untimed warmup
  const ServeStats warm = server.stats();
  const LoadResult engine = run_load(
      plan, inputs_by_n,
      [&](size_t, const Tensor& x) { server.submit(x).get(); });
  ServeStats st = server.stats();
  server.stop();
  st.batches -= warm.batches;  // exclude the warmup dispatch
  st.requests -= warm.requests;
  st.images -= warm.images;

  Table table("Closed-loop serving latency per request (ms)");
  table.set_header({"path", "p50", "p95", "p99", "images/s"});
  const auto add = [&](const char* name, const LoadResult& r) {
    table.add_row({name, Table::fmt(percentile(r.latencies_ms, 0.50), 3),
                   Table::fmt(percentile(r.latencies_ms, 0.95), 3),
                   Table::fmt(percentile(r.latencies_ms, 0.99), 3),
                   Table::fmt(r.images_per_s, 0)});
  };
  add("layer tree", layers);
  add("engine+batching", engine);
  table.print();
  std::printf(
      "\nbatcher: %zu dispatches for %zu requests (%zu images), avg fill "
      "%.1f/%zu images, %zu full batches, max fill %zu\n",
      st.batches, st.requests, st.images, st.avg_fill(), max_batch,
      st.full_batches, st.max_fill);
  const double p50_layers = percentile(layers.latencies_ms, 0.50);
  const double p50_engine = percentile(engine.latencies_ms, 0.50);
  std::printf("engine-path p50 %.3fms vs layer-tree p50 %.3fms (%s)\n",
              p50_engine, p50_layers,
              p50_engine <= p50_layers ? "OK: no worse" : "SLOWER");

  BenchJson json("serve", s.name);
  BenchRow& lt = json.row("layer_tree/per_request");
  lt.wall_ms = p50_layers;
  lt.extra["p95_ms"] = percentile(layers.latencies_ms, 0.95);
  lt.extra["p99_ms"] = percentile(layers.latencies_ms, 0.99);
  lt.extra["images_per_s"] = layers.images_per_s;
  // The policy string carries quotes on purpose: the JSON writer must
  // escape row names or the trajectory diff breaks (see json_escape).
  char name[96];
  std::snprintf(name, sizeof(name),
                "engine/policy=\"batch=%zu,max_wait=%lluus\"", max_batch,
                static_cast<unsigned long long>(max_wait_us));
  BenchRow& en = json.row(name);
  en.wall_ms = p50_engine;
  en.extra["p95_ms"] = percentile(engine.latencies_ms, 0.95);
  en.extra["p99_ms"] = percentile(engine.latencies_ms, 0.99);
  en.extra["images_per_s"] = engine.images_per_s;
  en.extra["avg_fill"] = st.avg_fill();
  en.extra["full_batches"] = static_cast<double>(st.full_batches);
  en.extra["dispatches"] = static_cast<double>(st.batches);
  en.extra["speedup_p50_vs_layers"] = p50_layers / p50_engine;
  if (json.write(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
