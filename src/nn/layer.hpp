// Layer abstraction for the manual-backprop NN framework.
//
// Layers own their parameters (value + gradient buffers) and cache whatever
// they need between forward() and backward(). The framework is single-stream:
// backward(grad) must follow the matching forward(x, train=true).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace alf {

/// A trainable parameter: value, gradient accumulator and optimizer policy.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Whether the task optimizer applies L2 weight decay to this parameter.
  /// (The paper applies no regularization to W inside ALF blocks and none to
  /// BN scale/shift.)
  bool decay = true;

  Param() = default;
  Param(std::string n, Shape shape, bool apply_decay = true)
      : name(std::move(n)),
        value(shape),
        grad(std::move(shape)),
        decay(apply_decay) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class of every network building block.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Short type tag ("conv", "bn", "relu", "alf_conv", ...).
  virtual const char* kind() const = 0;

  /// Instance name (used in stats tables, e.g. "conv2_1_1").
  virtual const std::string& name() const = 0;

  /// Computes the layer output. `train` selects training behaviour
  /// (BN batch statistics, caching for backward).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after forward(x, /*train=*/true).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Parameters updated by the *task* optimizer.
  virtual std::vector<Param*> params() { return {}; }

  /// Zeroes all task-parameter gradients.
  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace alf
