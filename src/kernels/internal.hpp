// Internals shared between the built-in kernel backends. Not installed on
// the public include path of the library's users (tests include it via the
// source tree to reach the raw kernels directly).
#pragma once

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/parallel.hpp"
#include "kernels/backend.hpp"

namespace alf::kernels::detail {

/// The int8 GEMM kernel entry shared by every built-in backend: k-blocked,
/// int32 accumulation, requantize-to-float store. Defined in int8.cpp at
/// the baseline ISA; simd.cpp compiles the same body (qgemm_int8_body
/// below) with wider vector flags and the int8 backend picks the fastest
/// usable variant at registration. Integer accumulation is exact, so every
/// variant produces bit-identical floats for any thread count.
void qgemm_int8(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p);

/// The moved cache-blocked scalar f32 kernel (defined in scalar.cpp); the
/// simd backend falls back to it for shapes below its packing break-even.
void gemm_scalar(const float* a, size_t lda, bool trans_a, const float* b,
                 size_t ldb, bool trans_b, float* c, size_t ldc, size_t m,
                 size_t k, size_t n, float alpha, float beta);

/// The scalar kernel body with its (k, n) cache-block extents exposed —
/// the seam behind the scalar backend's gemm_tiled entry. gemm_scalar is
/// exactly this with the historical kBlockK/kBlockN constants.
void gemm_scalar_blocked(const float* a, size_t lda, bool trans_a,
                         const float* b, size_t ldb, bool trans_b, float* c,
                         size_t ldc, size_t m, size_t k, size_t n, float alpha,
                         float beta, size_t block_k, size_t block_n);

/// f32 gemm entry shared by every quantized backend: forwards to the best
/// float backend the feature mask allows (simd when usable, else scalar),
/// so non-lowered steps of an int8 plan keep full float speed. Defined in
/// int8.cpp; the pick is cached and flushed by reset_int8_dispatch_cache.
void gemm_forward_best_float(const float* a, size_t lda, bool trans_a,
                             const float* b, size_t ldb, bool trans_b,
                             float* c, size_t ldc, size_t m, size_t k,
                             size_t n, float alpha, float beta);

/// Flushes the cached kernel picks of the generic "int8" backend (best
/// qgemm variant + best float forward). Called by set_cpu_feature_mask so
/// dispatch re-resolves under the new mask. Defined in int8.cpp.
void reset_int8_dispatch_cache();

/// The vectorized int8 qgemm kernels (defined in int8_dot.cpp, compiled
/// with wide vector-ISA flags; both are bit-identical to qgemm_int8_body —
/// integer accumulation is exact, and the requantizing store replicates
/// the oracle's float expression order). Null on hosts or builds without
/// the ISA; backed by the "int8-avx2" / "int8-vnni" backends.
using QgemmFn = void (*)(const int8_t*, size_t, const int8_t*, size_t,
                         float*, size_t, size_t, size_t, size_t,
                         const QgemmParams&);

/// Vectorized bodies of the public quantize_row_i8 / quantize_cols_i8
/// helpers. Defined in int8_dot.cpp (the -mavx2 TU); the getters return
/// nullptr when the build or the detected CPU lacks AVX2, and int8.cpp
/// substitutes its baseline loops — same rint-based expression, so both
/// paths agree bit for bit.
using QuantizeRowFn = void (*)(const float*, int8_t*, size_t, float,
                               int32_t, int32_t);
using QuantizeColsFn = void (*)(const float*, int8_t*, size_t, const float*,
                                int32_t, int32_t);
using MaxAbsBlocksFn = void (*)(const float*, size_t, size_t, size_t, size_t,
                                float*);
QuantizeRowFn quantize_row_i8_vec();
QuantizeColsFn quantize_cols_i8_vec();
MaxAbsBlocksFn max_abs_col_blocks_vec();

/// Body of the int8 GEMM, inline so each backend TU instantiates it under
/// its own ISA flags. Row-parallel (same per-worker floor as the float
/// backends); per-thread int32 accumulator row reused across calls.
///
/// Zero points use the classic decomposition so the inner loop is always
/// the pure sum of raw products:
///   sum_k (a-azp)(b-bzp)
///     = sum_k a*b - bzp*rowsum(a)[i] - azp*colsum(b)[j] + k*azp*bzp,
/// with the row/column sums O(mk + kn) side passes folded into the store.
inline void qgemm_int8_body(const int8_t* a, size_t lda, const int8_t* b,
                            size_t ldb, float* c, size_t ldc, size_t m,
                            size_t k, size_t n, const QgemmParams& p) {
  constexpr size_t kMaddsPerWorker = size_t{1} << 16;
  const int32_t azp = p.a_zp, bzp = p.b_zp;
  // Column sums of B are shared by every row; integer, so computing them
  // up front (outside the row partition) keeps determinism trivial. The
  // scratch is thread_local so steady-state calls never allocate (the
  // engine's run path relies on that), but workers must reach the CALLER's
  // buffer — a thread_local name inside the lambda would resolve to each
  // worker's own (empty) instance — so the lambda captures a plain
  // pointer. The caller blocks in parallel_for_chunked, so the buffer
  // outlives every worker's use of it.
  thread_local std::vector<int32_t> colsum_tls;
  const int32_t* colsum = nullptr;
  if (azp != 0) {
    colsum_tls.resize(n);
    int32_t* cs = colsum_tls.data();
    std::memset(cs, 0, n * sizeof(int32_t));
    for (size_t kk = 0; kk < k; ++kk) {
      const int8_t* brow = b + kk * ldb;
      for (size_t j = 0; j < n; ++j) cs[j] += static_cast<int32_t>(brow[j]);
    }
    colsum = cs;
  }
  const int32_t kzz = static_cast<int32_t>(k) * azp * bzp;

  const auto process_rows = [&](size_t r0, size_t r1) {
    thread_local std::vector<int32_t> acc;
    acc.resize(n);
    for (size_t i = r0; i < r1; ++i) {
      std::memset(acc.data(), 0, n * sizeof(int32_t));
      const int8_t* arow = a + i * lda;
      int32_t* ap = acc.data();
      int32_t rowsum = 0;
      // Four k steps per accumulator pass: the loop is bound by acc[]
      // load/add/store traffic, so amortizing it over four products is
      // worth ~3x; zero A elements (pruned weights) skip in groups.
      size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        const int32_t av0 = static_cast<int32_t>(arow[kk]);
        const int32_t av1 = static_cast<int32_t>(arow[kk + 1]);
        const int32_t av2 = static_cast<int32_t>(arow[kk + 2]);
        const int32_t av3 = static_cast<int32_t>(arow[kk + 3]);
        rowsum += av0 + av1 + av2 + av3;
        if ((av0 | av1 | av2 | av3) == 0) continue;
        const int8_t* b0 = b + kk * ldb;
        const int8_t* b1 = b0 + ldb;
        const int8_t* b2 = b1 + ldb;
        const int8_t* b3 = b2 + ldb;
        for (size_t j = 0; j < n; ++j)
          ap[j] += av0 * static_cast<int32_t>(b0[j]) +
                   av1 * static_cast<int32_t>(b1[j]) +
                   av2 * static_cast<int32_t>(b2[j]) +
                   av3 * static_cast<int32_t>(b3[j]);
      }
      for (; kk < k; ++kk) {
        const int32_t av = static_cast<int32_t>(arow[kk]);
        rowsum += av;
        if (av == 0) continue;
        const int8_t* brow = b + kk * ldb;
        for (size_t j = 0; j < n; ++j)
          ap[j] += av * static_cast<int32_t>(brow[j]);
      }
      // Fold the zero-point corrections into the accumulator, then
      // requantize on store. Per-row A scales (per-output-channel weight
      // quantization) and per-column B scales land here too — the integer
      // accumulation never sees scales.
      const int32_t row_corr = kzz - bzp * rowsum;
      if (bzp != 0 || azp != 0) {
        if (azp != 0) {
          for (size_t j = 0; j < n; ++j)
            ap[j] += row_corr - azp * colsum[j];
        } else {
          for (size_t j = 0; j < n; ++j) ap[j] += row_corr;
        }
      }
      const float sa = p.a_scales != nullptr ? p.a_scales[i] : p.a_scale;
      float* crow = c + i * ldc;
      if (p.b_scales == nullptr) {
        const float scale = sa * p.b_scale;
        for (size_t j = 0; j < n; ++j)
          crow[j] = scale * static_cast<float>(ap[j]);
      } else {
        for (size_t j = 0; j < n; ++j)
          crow[j] = sa * p.b_scales[j] * static_cast<float>(ap[j]);
      }
    }
  };

  const size_t madds_per_row = std::max<size_t>(1, k * n);
  const size_t min_rows = std::max<size_t>(1, kMaddsPerWorker / madds_per_row);
  if (in_parallel_region() || m <= min_rows || parallel_threads() <= 1) {
    process_rows(0, m);
    return;
  }
  parallel_for_chunked(0, m, process_rows, min_rows);
}

}  // namespace alf::kernels::detail
