// TileParams: per-call cache-blocking override for the f32 GEMM kernels.
//
// The built-in backends tuned their blocking constants (scalar's
// kBlockK/kBlockN, simd's kMc/kKc/kNc) for a generic L2; the per-shape
// autotuner (src/tune/) instead measures a small grid of alternatives per
// conv/linear shape and records the winner in the plan. A backend that can
// re-block per call exposes a `gemm_tiled` entry (kernels/backend.hpp)
// taking this struct; a zero field means "this backend's default", so the
// all-zero TileParams is always a valid candidate and reproduces the
// untuned kernel exactly.
//
// Blocking choices never change results: every backend keeps its global
// k-block accumulation-order contract *per (kc)*, so two different
// TileParams may differ in float rounding (different k grids), but one
// TileParams is bit-stable across thread counts, contexts, and batch
// packings — which is all the determinism contract promises.
//
// This header is deliberately tiny and dependency-free: the engine's Step
// (engine/plan.hpp) embeds a TileParams by value without pulling in the
// backend registry.
#pragma once

#include <cstdint>

namespace alf::kernels {

struct TileParams {
  uint32_t mc = 0;  ///< A-block rows per pack (simd); 0 = backend default
  uint32_t kc = 0;  ///< k extent of one accumulation block; 0 = default
  uint32_t nc = 0;  ///< column extent of one B block; 0 = default

  bool is_default() const { return mc == 0 && kc == 0 && nc == 0; }

  friend bool operator==(const TileParams& a, const TileParams& b) {
    return a.mc == b.mc && a.kc == b.kc && a.nc == b.nc;
  }
  friend bool operator!=(const TileParams& a, const TileParams& b) {
    return !(a == b);
  }
};

}  // namespace alf::kernels
