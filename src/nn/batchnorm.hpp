// Batch normalization over NCHW feature maps (per-channel statistics).
#pragma once

#include "nn/layer.hpp"

namespace alf {

/// BatchNorm2d with learnable scale/shift and running statistics.
///
/// Training mode normalizes with batch statistics and updates the running
/// mean/variance with exponential moving average; eval mode uses the running
/// statistics. gamma/beta are excluded from weight decay.
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, size_t channels, float momentum = 0.1f,
              float eps = 1e-5f);

  const char* kind() const override { return "bn"; }
  const std::string& name() const override { return name_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }

  size_t channels() const { return channels_; }
  float eps() const { return eps_; }
  Param& gamma() { return gamma_; }
  const Param& gamma() const { return gamma_; }
  Param& beta() { return beta_; }
  const Param& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  /// Mutable access for checkpoint restore.
  Tensor& mutable_running_mean() { return running_mean_; }
  Tensor& mutable_running_var() { return running_var_; }

  /// EMA momentum of the running statistics. bn_recalibrate() sets this to
  /// 1/i per calibration batch to compute an exact cumulative average.
  float momentum() const { return momentum_; }
  void set_momentum(float momentum) { momentum_ = momentum; }

 private:
  std::string name_;
  size_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;

  // Caches for backward.
  Tensor cached_xhat_;     // normalized input
  Tensor cached_inv_std_;  // 1/sqrt(var + eps), per channel
  size_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

/// Inference-mode BN expressed as a per-channel affine:
///   scale[c] = gamma[c] / sqrt(running_var[c] + eps)
///   shift[c] = beta[c] - running_mean[c] * scale[c]
/// so that bn(x) == scale[c] * x + shift[c] in eval mode. This is the form
/// the engine folds into the preceding conv's weights/bias at compile time;
/// tests validate it numerically against the unfused layer.
void bn_fold_scale_shift(const BatchNorm2d& bn, Tensor& scale, Tensor& shift);

}  // namespace alf
