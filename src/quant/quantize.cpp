#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace alf {

QuantParams calibrate_quant(const Tensor& t, int bits) {
  ALF_CHECK(bits >= 2 && bits <= 16) << "bits=" << bits;
  QuantParams p;
  p.bits = bits;
  const float max_abs = t.abs_max();
  const float levels = static_cast<float>((1 << (bits - 1)) - 1);
  p.scale = max_abs > 0.0f ? max_abs / levels : 1.0f;
  return p;
}

double quantize_dequantize(Tensor& t, const QuantParams& params) {
  ALF_CHECK(params.scale > 0.0f);
  const float inv = 1.0f / params.scale;
  const float qmax = static_cast<float>((1 << (params.bits - 1)) - 1);
  double err = 0.0;
  for (size_t i = 0; i < t.numel(); ++i) {
    const float orig = t.at(i);
    float q = std::round(orig * inv);
    q = std::max(-qmax, std::min(qmax, q));
    const float deq = q * params.scale;
    const double d = static_cast<double>(orig) - deq;
    err += d * d;
    t.at(i) = deq;
  }
  return t.numel() > 0 ? err / static_cast<double>(t.numel()) : 0.0;
}

PackedInt8 quantize_tensor(const Tensor& t, int bits) {
  PackedInt8 out;
  out.data.resize(t.numel());
  static_cast<PackedInt8Meta&>(out) =
      quantize_tensor_into(t, bits, out.data.data());
  return out;
}

PackedInt8Meta quantize_tensor_into(const Tensor& t, int bits, int8_t* dst) {
  ALF_CHECK(bits >= 2 && bits <= 8) << "packed int8 export: bits=" << bits;
  PackedInt8Meta meta;
  meta.shape = t.shape();
  meta.params = calibrate_quant(t, bits);
  quantize_view(t.data(), t.numel(), meta.params, dst);
  return meta;
}

void quantize_view(const float* src, size_t n, const QuantParams& params,
                   int8_t* dst) {
  ALF_CHECK(params.scale > 0.0f);
  ALF_CHECK(params.bits >= 2 && params.bits <= 8) << "bits=" << params.bits;
  const float inv = 1.0f / params.scale;
  const float qmax = static_cast<float>((1 << (params.bits - 1)) - 1);
  for (size_t i = 0; i < n; ++i) {
    float q = std::round(src[i] * inv);
    q = std::max(-qmax, std::min(qmax, q));
    dst[i] = static_cast<int8_t>(q);
  }
}

float max_abs_view(const float* src, size_t n) {
  float m = 0.0f;
  for (size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(src[i]));
  return m;
}

ModelQuantStats quantize_model_weights(Sequential& model, int bits) {
  ModelQuantStats stats;
  double total = 0.0;
  for (Param* p : model.params()) {
    // Skip BN scale/shift (recognizable: decay disabled AND rank-1 named
    // gamma/beta). Weights and biases of conv/linear layers are quantized.
    const bool is_bn = p->name.find(".gamma") != std::string::npos ||
                       p->name.find(".beta") != std::string::npos;
    if (is_bn) continue;
    const QuantParams qp = calibrate_quant(p->value, bits);
    total += quantize_dequantize(p->value, qp);
    ++stats.tensors;
  }
  if (stats.tensors > 0) stats.mean_sq_error = total / stats.tensors;
  return stats;
}

}  // namespace alf
