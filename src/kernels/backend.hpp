// Dispatchable kernel-backend layer: the compute substrate behind every
// GEMM in the library.
//
// tensor/ops.cpp::gemm/gemm_view, the nn/ layers and the engine's two conv
// strategies all route their matrix products through one KernelBackend
// chosen at startup (or, for a compiled model, once at Plan::compile time —
// the Plan pins the backend pointer for its lifetime). A backend bundles
// the two entry points the library needs:
//
//   gemm   — f32 C = alpha * op(A) * op(B) + beta * C over row-major views
//            (the gemm_view shape: lda/ldb/ldc strides, trans flags).
//   qgemm  — real int8 GEMM: pre-quantized A/B int8 panels with symmetric
//            per-tensor scales and zero-points, int32 accumulation,
//            requantized to float on store.
//
// Three implementations ship in-tree (see the matching .cpp files):
//   scalar — the cache-blocked kernel the library grew up with; always
//            registered, the portable fallback and the equivalence oracle.
//   simd   — explicitly vectorized 4x16 inner tile over portable GCC/Clang
//            vector extensions (no intrinsics), with A-panel packing so the
//            trans_a/trans_b variants read contiguously. Compiled with
//            wider vector ISA flags when CMake's ALF_SIMD is ON; selected
//            at runtime only if the CPU supports what was compiled in.
//   int8   — the quantized datapath: qgemm is the real kernel; its f32
//            gemm forwards to the best float backend so non-lowered steps
//            (pool/add epilogues, odd layers) keep working.
//
// Selection: set_default_backend("name") wins, else the ALF_BACKEND
// environment variable, else the best available (simd when usable, scalar
// otherwise). Adding an ISA or dtype is a one-file drop-in: implement the
// two entry points and register_backend() it.
//
// Every backend must be deterministic: for a fixed backend the result is
// bit-identical for any thread count (accumulation order per C element
// depends only on the k-block grid, never on the thread partition).
//
// Every backend must also be re-entrant: a multi-tenant server runs many
// ExecContexts concurrently from different worker threads, so concurrent
// calls into the same entry point (over disjoint output buffers) must be
// race-free. Keep per-call scratch on the stack or thread_local, as the
// built-ins do — never in shared mutable statics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/tile.hpp"

namespace alf::kernels {

// --- CPU feature gating ----------------------------------------------------
//
// Backends compiled for a wider ISA than the baseline declare what they
// need in KernelBackend::required_features; auto-selection (the process
// default and the int8 datapath's best-kernel pick) only considers a
// backend whose requirements are a subset of allowed_cpu_features().
// Explicit forcing (ALF_BACKEND= / set_default_backend / find_backend)
// deliberately bypasses the mask — the user asked for that backend by
// name — but registration itself is still gated on the *detected* CPU, so
// a forced backend is always executable.

enum CpuFeature : uint32_t {
  kCpuAvx2 = 1u << 0,
  kCpuFma = 1u << 1,
  kCpuAvxVnni = 1u << 2,      ///< VEX-encoded AVX-VNNI (vpdpbusd)
  kCpuAvx512Vnni = 1u << 3,   ///< EVEX AVX512-VNNI (paired with AVX512VL)
};

/// ABI version of the packed weight-panel layouts every backend consumes:
/// conv int8 panels as [Co, Ci*K*K] rows, linear int8 panels as the
/// transposed [in, out] B panel, shift-GEMM float packs as [K*K, Co, Ci].
/// Plan blobs stamp this (engine/plan_io.cpp); bump it whenever a kernel
/// changes what it expects packed, so stale blobs are rejected at load
/// with a clear message instead of mis-read by the kernels.
constexpr uint32_t kPanelLayoutVersion = 1;

/// Features the host CPU can actually execute (cached cpuid probe; 0 on
/// non-x86 hosts).
uint32_t detected_cpu_features();

/// detected_cpu_features() minus anything disabled via the ALF_CPU_DISABLE
/// environment variable (comma-separated names: "avx2,fma,avxvnni,
/// avx512vnni") or set_cpu_feature_mask(). This — not the raw detection —
/// is what auto-selection consults, so dispatch decisions are testable on
/// hardware that has (or lacks) any given ISA.
uint32_t allowed_cpu_features();

/// Test/benchmark seam: caps allowed_cpu_features() to `detected & mask`
/// (pass ~0u to lift the cap). Masking can only *restrict*, never enable
/// an ISA the CPU lacks. Resets every cached auto-selection (the process
/// default backend and the int8 datapath's kernel pick) so subsequent
/// dispatch re-resolves under the new mask.
void set_cpu_feature_mask(uint32_t mask);

/// "avx2,fma,avxvnni"-style name list for a feature set (bench stamping).
std::string cpu_feature_names(uint32_t features);

/// Quantization metadata of one qgemm call. The in-tree scheme is
/// symmetric (zero-points are 0); the zp fields exist so an asymmetric
/// backend drops in without an interface change. Scales are per-tensor by
/// default; the optional pointer fields refine them per output channel —
/// per-row of A (how the engine quantizes BN-folded conv weights, whose
/// rows carry very different ranges) or per-column of B (transposed linear
/// weights). Requantization happens on store, so the integer accumulation
/// never sees scales.
struct QgemmParams {
  float a_scale = 1.0f;  ///< float value of one integer step of A
  float b_scale = 1.0f;  ///< float value of one integer step of B
  int32_t a_zp = 0;      ///< zero-point of A (0 for symmetric)
  int32_t b_zp = 0;      ///< zero-point of B (0 for symmetric)
  /// Optional per-row scales of A (length M); overrides a_scale.
  const float* a_scales = nullptr;
  /// Optional per-column scales of B (length N); overrides b_scale.
  const float* b_scales = nullptr;
};

/// One kernel backend: a named pair of GEMM entry points. Instances are
/// immutable statics with program lifetime; the registry stores pointers.
struct KernelBackend {
  const char* name;

  /// True when this backend IS a quantized datapath: selecting it asks the
  /// engine to lower conv/linear steps to qgemm. Keyed here (not on the
  /// name) so an alternative quantized backend — e.g. a VNNI-class qgemm —
  /// registers under its own name and still triggers the lowering.
  bool quantized_datapath = false;

  /// CpuFeature bits this backend's kernels execute. Auto-selection skips
  /// the backend unless required_features ⊆ allowed_cpu_features(); 0
  /// (baseline ISA) is never skipped.
  uint32_t required_features = 0;

  /// f32 GEMM over row-major views — the gemm_view contract: op(A) is
  /// [M, K] with leading dimension lda (of the *stored* matrix), op(B) is
  /// [K, N] with ldb, C is an [M, N] block with ldc >= n.
  /// C = alpha * op(A) * op(B) + beta * C.
  void (*gemm)(const float* a, size_t lda, bool trans_a, const float* b,
               size_t ldb, bool trans_b, float* c, size_t ldc, size_t m,
               size_t k, size_t n, float alpha, float beta);

  /// int8 GEMM: A is an [M, K] row-major int8 panel with leading dimension
  /// lda, B a [K, N] row-major int8 panel with ldb (both pre-quantized by
  /// the caller; see quant/quantize.hpp). Accumulates
  /// sum_k (A[i,k] - a_zp) * (B[k,j] - b_zp) in int32 and stores
  /// C[i,j] = acc * a_scale * b_scale as float (overwriting C).
  void (*qgemm)(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p);

  /// Optional tile-parametrized variant of `gemm` (same contract) with the
  /// cache blocking chosen per call; a zero TileParams field selects this
  /// backend's default, so gemm_tiled(..., {}) == gemm(...). Null when the
  /// backend's blocking is fixed (the int8 dot kernels have a hard panel
  /// ABI) — the tuner then only ever offers the default-tile candidate.
  /// Declared LAST so existing aggregate initializers stay valid.
  void (*gemm_tiled)(const float* a, size_t lda, bool trans_a, const float* b,
                     size_t ldb, bool trans_b, float* c, size_t ldc, size_t m,
                     size_t k, size_t n, float alpha, float beta,
                     const TileParams& tile) = nullptr;
};

/// Routes one f32 GEMM through `be` with the tuned blocking `tile`: the
/// tiled entry when the backend has one and the tile is non-default, the
/// plain entry otherwise (so untuned plans keep the exact pre-tuner code
/// path, constexpr blocking included).
inline void gemm_dispatch(const KernelBackend* be, const TileParams& tile,
                          const float* a, size_t lda, bool trans_a,
                          const float* b, size_t ldb, bool trans_b, float* c,
                          size_t ldc, size_t m, size_t k, size_t n,
                          float alpha, float beta) {
  if (be->gemm_tiled != nullptr && !tile.is_default())
    be->gemm_tiled(a, lda, trans_a, b, ldb, trans_b, c, ldc, m, k, n, alpha,
                   beta, tile);
  else
    be->gemm(a, lda, trans_a, b, ldb, trans_b, c, ldc, m, k, n, alpha, beta);
}

/// Registers a backend under backend->name (program-lifetime pointer).
/// Later registrations of an existing name shadow earlier ones, so a test
/// or plugin can override a built-in. Thread-safe.
void register_backend(const KernelBackend* backend);

/// Looks up a backend by name; nullptr if absent. "scalar" and "int8" are
/// always present; "simd", "int8-avx2" and "int8-vnni" only on hosts whose
/// CPU can execute the instructions they were compiled with.
const KernelBackend* find_backend(const std::string& name);

/// Registered backend names, registration order.
std::vector<std::string> backend_names();

/// The process-wide default used by tensor/ops.cpp and the nn/ layers:
/// set_default_backend() override, else $ALF_BACKEND, else "simd" when
/// available, else "scalar". Resolved once and cached (cheap atomic read
/// afterwards — this sits under every small GEMM the engine issues).
const KernelBackend* default_backend();

/// Overrides the default ("" re-resolves from the environment). Throws
/// CheckError for an unknown name. Intended for tests and benchmarks.
void set_default_backend(const std::string& name);

// --- Built-in backends (defined one per .cpp file) -------------------------

/// The moved cache-blocked scalar kernel; never nullptr.
const KernelBackend* scalar_backend();

/// Packed+vectorized backend; nullptr when the host CPU cannot run the
/// instruction set it was compiled for.
const KernelBackend* simd_backend();

/// Quantized backend: real int8 qgemm; f32 gemm forwards to the best float
/// backend. Never nullptr. Its qgemm entry dispatches to the fastest
/// registered quantized kernel the feature mask allows (int8-vnni →
/// int8-avx2 → the auto-vectorized portable body), resolved once and
/// cached.
const KernelBackend* int8_backend();

/// Register-tiled int8 qgemm over AVX2 pmaddwd (sign-extended 16-bit
/// pairs — exact, unlike pmaddubsw, which saturates). nullptr when the
/// host CPU (or the build) lacks AVX2.
const KernelBackend* int8_avx2_backend();

/// Register-tiled int8 qgemm over the vpdpbusd dot-product instruction
/// (VEX AVX-VNNI or EVEX AVX512-VNNI+VL, whichever the CPU has). nullptr
/// when the host supports neither encoding.
const KernelBackend* int8_vnni_backend();

/// The quantized backend auto-selection would hand the engine under the
/// current feature mask: best of int8-vnni / int8-avx2 / the generic int8
/// fallback. Exposed so dispatch decisions are testable.
const KernelBackend* best_quantized_backend();

// --- Quantization helpers --------------------------------------------------
//
// The engine's dynamic activation quantization is pure element-wise work
// (scale, round, clamp, narrow) over the full im2col matrix of every
// lowered step — at small M it rivals the GEMM itself, so it lives here
// where a wide-ISA TU can serve it. Rounding is round-to-nearest-even
// (rintf semantics — what float->int conversion hardware implements), and
// the scalar fallback uses the identical expression, so results never
// depend on which path ran.

/// dst[i] = clamp(rint(src[i] * inv) + zp, -levels, levels) as int8.
void quantize_row_i8(const float* src, int8_t* dst, size_t n, float inv,
                     int32_t zp, int32_t levels);

/// Same with a per-element inverse scale (the conv path's per-image column
/// blocks): dst[i] = clamp(rint(src[i] * inv[i]) + zp, -levels, levels).
void quantize_cols_i8(const float* src, int8_t* dst, size_t n,
                      const float* inv, int32_t zp, int32_t levels);

/// Per-column-block max-abs over a row-major [rows x ld] panel:
/// out[j] = max |src[r*ld + j*block + c]| over r < rows, c < block.
/// The engine's per-image dynamic-range scan of an im2col matrix (image j
/// owns one `block`-wide column stripe). max is order-independent, so the
/// vectorized and baseline paths agree exactly.
void max_abs_col_blocks(const float* src, size_t rows, size_t ld,
                        size_t block, size_t nblocks, float* out);

}  // namespace alf::kernels
