// alf_served: the deploy-many half of compile-once/deploy-many, over the
// wire. Serves every "*.plan" blob in --plan-dir (compiled by alf_planc)
// on one TCP port, speaking the ALFN protocol (src/net/wire.hpp), across
// --shards N processes that share the port via SO_REUSEPORT — the kernel
// hash-balances connections, the mmap-loaded blobs keep one physical copy
// of the weights across all shards.
//
//   alf_planc --quick --tune --out plans/
//   alf_served --plan-dir plans/ --port 7411 --shards 4 --workers 2
//
// The parent creates ALL listening sockets before forking (SO_REUSEPORT
// set before bind; with --port 0 the first socket resolves the ephemeral
// port the rest then bind), so connections queue in the accept backlog
// from the moment "ready port=..." is printed — no shard startup race.
//
// SIGTERM drains gracefully: every shard stops accepting, answers every
// request it already accepted, flushes, and exits 0 (the parent forwards
// the signal and exits with the worst child status). See
// src/net/server.hpp for the drain identity the per-shard stats line
// reports.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "serve/model_server.hpp"

namespace {

struct Options {
  std::string plan_dir;
  int port = 0;  // 0 = ephemeral, resolved and printed on the ready line
  int shards = 1;
  size_t workers = 2;
  size_t max_queue = 8192;
  uint64_t max_wait_us = 200;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --plan-dir DIR [--port P] [--shards N] [--workers K]\n"
      "          [--max-queue Q] [--max-wait-us U]\n"
      "Serves every *.plan blob in DIR over TCP (ALFN protocol); model\n"
      "name = blob stem. --port 0 picks an ephemeral port (printed on the\n"
      "'ready port=...' line). --shards N forks N SO_REUSEPORT processes.\n"
      "SIGTERM drains gracefully and exits 0.\n",
      argv0);
  return 2;
}

// --- per-shard SIGTERM -> graceful drain ---------------------------------

std::atomic<alf::net::NetServer*> g_server{nullptr};
std::atomic<bool> g_term{false};

void shard_on_term(int) {
  g_term.store(true, std::memory_order_release);
  alf::net::NetServer* s = g_server.load(std::memory_order_acquire);
  if (s != nullptr) s->request_drain();  // async-signal-safe
}

void install_handler(void (*fn)(int)) {
  struct sigaction sa{};
  sa.sa_handler = fn;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

/// Runs one shard to drain completion. Owns `listen_fd`.
int run_shard(int listen_fd, const Options& opt) {
  install_handler(shard_on_term);
  try {
    alf::ModelServer::Config scfg;
    scfg.workers = opt.workers;
    alf::ModelServer ms(scfg);
    alf::ModelServer::ModelConfig mc;
    mc.max_wait_us = opt.max_wait_us;
    mc.max_queue = opt.max_queue;
    const std::vector<std::string> names =
        ms.add_models_from_dir(opt.plan_dir, mc);
    ms.start();
    alf::net::NetServer srv(ms, listen_fd);
    g_server.store(&srv, std::memory_order_release);
    // A signal delivered while the plans were loading saw a null server;
    // honor it now.
    if (g_term.load(std::memory_order_acquire)) srv.request_drain();
    std::fprintf(stderr, "alf_served[%d]: serving %zu models on port %u\n",
                 static_cast<int>(::getpid()), names.size(), srv.port());
    srv.run();
    g_server.store(nullptr, std::memory_order_release);
    ms.stop();
    const alf::net::NetStats st = srv.stats();
    std::fprintf(stderr,
                 "alf_served[%d]: drained: submitted=%llu ok=%llu "
                 "shed=%llu rejected=%llu orphaned=%llu\n",
                 static_cast<int>(::getpid()),
                 static_cast<unsigned long long>(st.submitted),
                 static_cast<unsigned long long>(st.ok),
                 static_cast<unsigned long long>(st.shed),
                 static_cast<unsigned long long>(st.rejected),
                 static_cast<unsigned long long>(st.orphaned));
    return st.submitted == st.ok + st.shed + st.orphaned ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "alf_served[%d]: fatal: %s\n",
                 static_cast<int>(::getpid()), e.what());
    return 1;
  }
}

// --- parent: fork/forward/reap -------------------------------------------

constexpr int kMaxShards = 64;
pid_t g_pids[kMaxShards];
std::atomic<int> g_nchildren{0};
std::atomic<bool> g_parent_term{false};

void parent_on_term(int) {
  g_parent_term.store(true, std::memory_order_release);
  const int n = g_nchildren.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) ::kill(g_pids[i], SIGTERM);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--plan-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.plan_dir = v;
    } else if (a == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.port = std::atoi(v);
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.shards = std::atoi(v);
    } else if (a == "--workers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.workers = static_cast<size_t>(std::atoi(v));
    } else if (a == "--max-queue") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.max_queue = static_cast<size_t>(std::atoll(v));
    } else if (a == "--max-wait-us") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.max_wait_us = static_cast<uint64_t>(std::atoll(v));
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.plan_dir.empty() || opt.shards < 1 || opt.shards > kMaxShards ||
      opt.port < 0 || opt.port > 65535 || opt.workers < 1) {
    return usage(argv[0]);
  }

  // All listening sockets exist before any child runs: connections queue
  // in the backlog while shards load plans, and the ready line below is
  // true the instant it prints.
  std::vector<int> fds;
  try {
    const bool reuse = opt.shards > 1;
    fds.push_back(alf::net::listen_on(static_cast<uint16_t>(opt.port), reuse));
    const uint16_t port = alf::net::local_port(fds[0]);
    for (int s = 1; s < opt.shards; ++s)
      fds.push_back(alf::net::listen_on(port, true));
    std::printf("alf_served: ready port=%u shards=%d\n", port, opt.shards);
    std::fflush(stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "alf_served: %s\n", e.what());
    return 1;
  }

  if (opt.shards == 1) return run_shard(fds[0], opt);

  // Fork BEFORE any thread exists in this process (ModelServer spawns its
  // pool inside the children) — forking a multithreaded process can
  // inherit held mutexes.
  install_handler(parent_on_term);
  for (int s = 0; s < opt.shards; ++s) {
    if (g_parent_term.load(std::memory_order_acquire)) break;
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("alf_served: fork");
      parent_on_term(SIGTERM);
      break;
    }
    if (pid == 0) {
      for (int t = 0; t < opt.shards; ++t)
        if (t != s) ::close(fds[static_cast<size_t>(t)]);
      ::_exit(run_shard(fds[static_cast<size_t>(s)], opt));
    }
    g_pids[g_nchildren.load(std::memory_order_relaxed)] = pid;
    g_nchildren.fetch_add(1, std::memory_order_release);
  }
  for (int s = 0; s < opt.shards; ++s) ::close(fds[static_cast<size_t>(s)]);

  int rc = 0;
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;  // ECHILD: all reaped
    }
    const int child_rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    if (child_rc != 0) {
      rc = child_rc;
      parent_on_term(SIGTERM);  // one shard failed: bring the rest down
    }
  }
  return rc;
}
