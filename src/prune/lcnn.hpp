// LCNN-style dictionary filter-sharing (substitute for Bagherinezhad et al.
// [19] — see DESIGN.md).
//
// Each layer's filters are clustered into a small shared dictionary
// (deterministic k-means); every original filter is replaced by its nearest
// dictionary atom. At inference the dictionary convolution is computed once
// (D filters) and each output channel is a lookup/recombination of
// dictionary responses — the cost model in apply_lcnn_cost reflects this:
// MACs = D * Ci * K^2 * Ho * Wo (dictionary conv) + s * Co * Ho * Wo
// (recombination with s terms per output channel).
#pragma once

#include <map>

#include "core/rng.hpp"
#include "models/cost.hpp"
#include "nn/conv2d.hpp"

namespace alf {

/// Dictionary-sharing hyper-parameters.
struct LcnnConfig {
  double dict_frac = 0.3;  ///< dictionary size as a fraction of Co
  size_t min_dict = 2;
  size_t kmeans_iters = 20;
  size_t lookup_terms = 1;  ///< s: dictionary responses combined per channel
};

/// Result of compressing one layer.
struct LcnnLayerResult {
  Tensor dictionary;               ///< [D, Ci*K*K]
  std::vector<size_t> assignment;  ///< per original filter, index into dict
  double recon_mse = 0.0;          ///< ||W - W_shared||^2 / numel
};

/// Clusters the filters of `w` [Co, Ci, K, K] into a dictionary.
LcnnLayerResult lcnn_compress_layer(const Tensor& w, const LcnnConfig& config,
                                    Rng& rng);

/// Replaces every filter of `conv` by its dictionary atom (weight sharing).
void lcnn_apply(Conv2d& conv, const LcnnLayerResult& result);

/// Analytic cost of an LCNN-compressed model: every conv named in
/// `dict_size_by_name` is replaced by a dictionary conv + lookup stage.
ModelCost apply_lcnn_cost(const ModelCost& vanilla,
                          const std::map<std::string, size_t>& dict_size_by_name,
                          size_t lookup_terms, const std::string& new_name);

}  // namespace alf
