// ModelQueue: the per-model admission + batch-formation layer.
//
// One ModelQueue exists per model hosted by a ModelServer: a bounded FIFO
// of accepted requests plus everything that decides what enters it
// (admission control, shed policy) and what leaves it (deadline purge,
// longest-prefix batch formation) — and the per-model ServeStats those
// decisions update, all of it behind one struct so a stats() snapshot is
// coherent by construction.
//
// THREADING: a ModelQueue has no lock of its own, and the contract is no
// longer a comment — it is machine-checked. Every method that touches
// queue state takes the owning server's Mutex as its first parameter,
// annotated ALF_REQUIRES(m): building with clang -Wthread-safety fails on
// any call site that does not hold the server mutex it passes. The queue
// is pure bookkeeping and never blocks, sleeps, or calls user code
// (callbacks are delivered by the server AFTER it releases the mutex,
// from the Request lists these methods hand back). Accessors of
// construction-time immutable state (name/plan/config) need no lock.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"
#include "engine/plan.hpp"
#include "serve/types.hpp"

namespace alf::serve {

class ModelQueue {
 public:
  struct Config {
    /// How long a tick waits for the queue to fill once it holds at least
    /// one request. 0 dispatches whatever is queued immediately (lowest
    /// lone-request latency, least batching).
    uint64_t max_wait_us = 200;
    /// Admission control: maximum requests the queue may hold. 0 =
    /// unbounded. What happens at the bound is `shed`.
    size_t max_queue = 0;
    /// Overload behavior at max_queue: fail the new submit (kReject) or
    /// shed the oldest queued request in its favor (kDropOldest).
    ShedPolicy shed = ShedPolicy::kReject;
    /// Scheduling weight: under saturation this model receives a share of
    /// dispatched images proportional to weight / sum(weights).
    double weight = 1.0;
  };

  ModelQueue(std::string name, std::shared_ptr<const Plan> plan, Config cfg);

  /// Admission verdict of one submit.
  enum class Admit {
    kOk,       ///< request entered the queue
    kRejected, ///< queue full under kReject: request untouched, not owned
    kDropped,  ///< request entered; *dropped received the shed oldest one
  };

  /// Applies admission control and, on success, enqueues `r`. On kDropped
  /// the caller owns delivering QueueFullError to *dropped (off-lock). On
  /// kRejected `r` is left intact for the caller to fail synchronously.
  /// Updates accepted/rejected/dropped_oldest and the queued gauge.
  Admit admit(Mutex& m, Request&& r, Request* dropped) ALF_REQUIRES(m);

  /// Sheds every queued request whose deadline is at or before `now` into
  /// `expired` (appended; the caller delivers DeadlineExpiredError
  /// off-lock) and counts them in stats().expired. Runs at batch-formation
  /// time — the last moment before the server would spend engine time on
  /// the request.
  void purge_expired(Mutex& m, std::chrono::steady_clock::time_point now,
                     std::vector<Request>& expired) ALF_REQUIRES(m);

  /// Pops the longest queue prefix whose images fit plan().batch() (the
  /// head always fits: admission bounds every request by the batch) and
  /// accounts the dispatch: batches/requests/images/full_batches/max_fill
  /// and the in_flight gauge. Returns the popped requests in queue order;
  /// empty when the queue is empty.
  std::vector<Request> form_batch(Mutex& m) ALF_REQUIRES(m);

  /// Marks `nreq` dispatched requests delivered (moves them from in_flight
  /// to completed). Called by the server after the callbacks have run.
  void delivered(Mutex& m, size_t nreq) ALF_REQUIRES(m);

  bool empty([[maybe_unused]] Mutex& m) const ALF_REQUIRES(m) {
    return queue_.empty();
  }
  size_t size([[maybe_unused]] Mutex& m) const ALF_REQUIRES(m) {
    return queue_.size();
  }
  size_t queued_images([[maybe_unused]] Mutex& m) const ALF_REQUIRES(m) {
    return queued_images_;
  }

  /// Coherent snapshot (the caller holds the server mutex, so the copy is
  /// atomic with respect to every counter update above).
  ServeStats stats(Mutex& m) const ALF_REQUIRES(m);

  const std::string& name() const { return name_; }
  const Plan& plan() const { return *plan_; }
  const std::shared_ptr<const Plan>& plan_ptr() const { return plan_; }
  const Config& config() const { return cfg_; }

  /// Batch-formation ownership flag, maintained by the server: true while
  /// one worker holds this model's tick (waiting for batch-mates or about
  /// to pop). Other workers skip a forming model when picking, so exactly
  /// one batch forms per model at a time; it lives here (not in the
  /// worker) so eligibility is a pure function of the queue.
  bool forming([[maybe_unused]] Mutex& m) const ALF_REQUIRES(m) {
    return forming_;
  }
  void set_forming([[maybe_unused]] Mutex& m, bool v) ALF_REQUIRES(m) {
    forming_ = v;
  }

 private:
  std::string name_;
  std::shared_ptr<const Plan> plan_;
  Config cfg_;
  // Queue state: every access runs under the owning server's mutex,
  // enforced by the ALF_REQUIRES(m) annotations on the methods above.
  std::deque<Request> queue_;
  size_t queued_images_ = 0;
  ServeStats stats_;
  bool forming_ = false;
};

}  // namespace alf::serve
