// Lightweight runtime-check macros used across the library.
//
// All public entry points validate their preconditions with ALF_CHECK; a
// failed check throws alf::CheckError carrying the source location and the
// failed expression, so tests can assert on misuse and applications get a
// diagnosable error instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace alf {

/// Error thrown when a runtime precondition or invariant check fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

/// Stream-collecting helper so ALF_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(file_, line_, expr_, os_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace alf

/// Checks `cond`; on failure throws alf::CheckError. Extra context can be
/// streamed: ALF_CHECK(i < n) << "i=" << i;
#define ALF_CHECK(cond)                                         \
  if ((cond)) {                                                 \
  } else                                                        \
    ::alf::detail::CheckMessage(__FILE__, __LINE__, #cond)

/// Equality check with both values reported.
#define ALF_CHECK_EQ(a, b) \
  ALF_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
