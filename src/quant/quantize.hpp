// Post-training weight quantization — the paper's Sec. II notes that
// quantization "is orthogonal to this work and can be applied in
// conjunction with the proposed ALF method"; this module demonstrates that
// claim (see tests/test_quant.cpp and examples/compare_pruners.cpp).
//
// Scheme: uniform symmetric quantization to the integer grid
// [-2^(bits-1)+1, 2^(bits-1)-1] with a per-tensor max-abs scale. Two
// consumers share it:
//   - fake-quant (quantize_dequantize / quantize_model_weights): values are
//     rounded to the grid and immediately de-quantized, so the float
//     pipeline is unchanged while weights carry exactly `bits` bits.
//   - packed export (quantize_tensor / quantize_view): values are rounded
//     to the grid and *kept* as int8 panels + scale, feeding the kernel
//     layer's real int8 qgemm (kernels/backend.hpp) — this is how a
//     compiled Engine lowers whole conv/linear steps to integer
//     arithmetic (Engine::compile with backend="int8").
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace alf {

/// Per-tensor quantization parameters.
struct QuantParams {
  int bits = 8;
  float scale = 1.0f;  ///< float value of one integer step

  /// Largest representable magnitude.
  float max_value() const {
    return scale * static_cast<float>((1 << (bits - 1)) - 1);
  }
};

/// Chooses a symmetric max-abs scale for `t`. bits must be in [2, 16].
QuantParams calibrate_quant(const Tensor& t, int bits);

/// In-place fake quantization of `t` with the given parameters.
/// Returns the mean squared quantization error.
double quantize_dequantize(Tensor& t, const QuantParams& params);

/// Result of quantizing a whole model.
struct ModelQuantStats {
  size_t tensors = 0;
  double mean_sq_error = 0.0;  ///< averaged over quantized tensors
};

/// Fake-quantizes every task parameter of the model (conv/FC weights and
/// biases; BatchNorm scale/shift are left in float, the usual practice).
ModelQuantStats quantize_model_weights(Sequential& model, int bits);

/// Metadata of a packed int8 panel: the source shape and the grid, WITHOUT
/// the payload bytes. This is the split compiled plans keep — metadata in
/// the step list, the int8 payload resident in the plan's single weight
/// arena — so a serialized plan mmaps its panels back in place instead of
/// re-quantizing (engine/plan_io.hpp). Standalone users get the owning
/// bundle below.
struct PackedInt8Meta {
  Shape shape;
  QuantParams params;  ///< scale chosen by max-abs calibration

  /// De-quantized float value of one grid element (exact: grid * scale).
  float dequant_value(int8_t q) const {
    return static_cast<float>(q) * params.scale;
  }
};

/// Owning bundle: metadata plus the payload, the packed int8 form the
/// kernel layer's qgemm consumes — row-major int8 values on the symmetric
/// grid, one per source element. `bits` <= 8 narrows the grid (Table 3
/// bit-width sweeps) while the storage stays int8.
struct PackedInt8 : PackedInt8Meta {
  std::vector<int8_t> data;

  /// De-quantized float value of element i.
  float dequant(size_t i) const { return dequant_value(data[i]); }
};

/// Calibrates (max-abs symmetric) and packs `t` to int8. bits in [2, 8].
PackedInt8 quantize_tensor(const Tensor& t, int bits);

/// Arena-resident form: calibrates `t` and packs it into caller storage
/// `dst` (t.numel() bytes, e.g. a slice of a plan's weight arena);
/// returns only the metadata. quantize_tensor composes this with an
/// owning buffer.
PackedInt8Meta quantize_tensor_into(const Tensor& t, int bits, int8_t* dst);

/// Raw packing core: rounds `n` floats onto the symmetric grid of
/// `params` and stores them as int8. Used per-run by the engine to
/// quantize activations into arena scratch without allocating.
void quantize_view(const float* src, size_t n, const QuantParams& params,
                   int8_t* dst);

/// Max-abs over a raw range (the calibration statistic for quantize_view).
float max_abs_view(const float* src, size_t n);

}  // namespace alf
