// ModelServer: multi-tenant batched inference over shared compiled Plans.
//
// One process, N named models, K workers. Each hosted model is an
// immutable Plan (engine/plan.hpp) plus a per-model config (batching wait,
// queue bound, shed policy, scheduling weight) and a bounded request queue
// with its own batch former (model_queue.hpp). A shared pool of K workers
// serves all of them: every worker owns one ExecContext per hosted plan,
// so a float ResNet-20, its int8 twin, and an ALF-pruned variant run
// concurrently from one process with no duplicated weights — the Plans are
// shared, only the cheap per-worker contexts multiply.
//
// Dispatch path of one batch:
//   1. A worker picks the backlogged model with the smallest
//      weight-normalized service (scheduler.hpp) and claims its tick.
//   2. Deadline-expired requests are shed, then the tick waits up to the
//      model's max_wait_us for batch-mates (leaving early on a full
//      batch), exactly the single-model policy.
//   3. The longest queue prefix fitting Plan::batch() is packed into the
//      worker's staging buffer and executed on the worker's OWN
//      ExecContext for that plan — no lock held during the run.
//   4. Logit rows scatter back through the request callbacks (they run on
//      the worker thread; keep them light), and the model's stats move
//      the requests from in_flight to completed.
//
// With workers > 1 each worker pins its engine runs inline
// (InlineExecutionGuard), so K batches crunch on K cores concurrently
// instead of serializing on the process worker pool; with workers == 1 the
// single worker fans each batch out across the pool, matching the
// pre-multi-tenant BatchServer. Either way results are bit-identical to a
// direct single-threaded Engine::run of the same plan: chunk grids are
// fixed at compile time, backends accumulate in thread-independent order,
// and quantization scales are per-image.
//
// LOCKING (machine-checked; see core/thread_annotations.hpp): all
// queue/scheduler/dispatch state lives under the ONE annotated Mutex m_,
// so stats() is a coherent snapshot and the conservation identity in
// types.hpp holds exactly. The ALF_GUARDED_BY/ALF_REQUIRES annotations
// below make clang -Wthread-safety reject any access outside the lock.
// Registration metadata that submit() reads lock-free (name -> index map,
// per-model Plan pointers) is split into separate members that become
// immutable once start() spawns the workers. stop() (and the destructor)
// drains every accepted request of every model before joining the workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"
#include "engine/exec_context.hpp"
#include "engine/plan.hpp"
#include "serve/model_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/types.hpp"

namespace alf {

class ModelServer {
 public:
  using Callback = ServeCallback;
  using ErrorCallback = ServeErrorCallback;
  using ShedPolicy = alf::ShedPolicy;
  using ModelConfig = serve::ModelQueue::Config;

  struct Config {
    /// Workers in the shared pool. Each owns one ExecContext per hosted
    /// plan; 1 reproduces the single-dispatcher BatchServer behavior.
    size_t workers = 1;
    /// Start with dispatch paused (see pause()/resume()); used by tests
    /// and replay harnesses to stage backlogs deterministically.
    bool start_paused = false;
  };

  /// Per-submit options.
  struct SubmitOptions {
    /// Latency budget in microseconds from the submit call; 0 = none. A
    /// request still queued when the budget runs out is shed before batch
    /// formation: its future (or error callback) completes with
    /// DeadlineExpiredError and stats().expired counts it.
    uint64_t deadline_us = 0;
  };

  ModelServer();
  explicit ModelServer(Config cfg);
  ~ModelServer();  ///< stop()s: drains every model, then joins the pool

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Registers a named model. Only valid before start(); duplicate names
  /// and null plans fail with CheckError. The plan is shared, not copied.
  void add_model(const std::string& name, std::shared_ptr<const Plan> plan,
                 ModelConfig cfg = {});

  /// Registers every "*.plan" blob in `dir` via alf::plan::load, model
  /// name = file stem, lexicographic order — the compile-once/deploy-many
  /// path (blobs come from alf_planc). All models share `cfg`. Returns the
  /// registered names; throws PlanIoError/PlanVerifyError on a bad blob
  /// and CheckError if the directory holds no blobs. Only valid before
  /// start().
  std::vector<std::string> add_models_from_dir(const std::string& dir,
                                               ModelConfig cfg = {});

  /// Allocates every worker's per-plan ExecContexts and staging buffers,
  /// then spawns the pool. Requires at least one model.
  void start();
  bool started() const { return started_; }

  /// Enqueues `x` [n, Ci, H, W] (1 <= n <= the model's Plan::batch()) for
  /// `model`; `done` fires once with the logits [n, classes] on a worker
  /// thread. `fail` (optional) receives the typed error if the server
  /// sheds the accepted request (kDropOldest / deadline). Throws
  /// CheckError on unknown model, shape mismatch, null `done`, or after
  /// stop(); QueueFullError when admission control rejects (kReject).
  /// (Overloads instead of defaulted arguments: a nested class's member
  /// initializers are not available for in-class default arguments of its
  /// enclosing class.)
  void submit(const std::string& model, Tensor x, Callback done);
  void submit(const std::string& model, Tensor x, Callback done,
              ErrorCallback fail);
  void submit(const std::string& model, Tensor x, Callback done,
              ErrorCallback fail, SubmitOptions opts);

  /// Future-returning form. Admission errors (kReject) are thrown from the
  /// call; shed-after-accept errors arrive through the future.
  std::future<Tensor> submit(const std::string& model, Tensor x);
  std::future<Tensor> submit(const std::string& model, Tensor x,
                             SubmitOptions opts);

  /// Suspends batch formation across all models: a batch already packed
  /// keeps executing, but once pause() returns no new batch forms — open
  /// ticks are abandoned back to their queues. resume() restarts dispatch.
  /// stop() overrides a pause to drain.
  void pause();
  void resume();

  /// Drains every model's queue, then joins the workers. Idempotent;
  /// called by the destructor. Submissions after stop() fail (CheckError).
  void stop();

  /// Requests currently queued (one model / all models).
  size_t pending(const std::string& model) const;
  size_t pending() const;

  /// Coherent per-model snapshot (single struct copied under the mutex).
  ServeStats stats(const std::string& model) const;
  /// Field-wise sum over all models (max_fill is the max).
  ServeStats stats() const;

  const Plan& plan(const std::string& model) const;
  std::vector<std::string> model_names() const;  ///< registration order
  const Config& config() const { return cfg_; }

 private:
  /// Per-worker, per-model execution state: the worker's own context plus
  /// the packing buffers one dispatch writes (worker-thread-only).
  struct PlanSlot {
    ExecContext ctx;
    std::vector<float> in;   ///< [batch * image_floats] packed input rows
    std::vector<float> out;  ///< [batch * classes] packed logit rows
    explicit PlanSlot(const std::shared_ptr<const Plan>& plan);
  };
  struct Worker {
    std::vector<PlanSlot> slots;  ///< one per hosted model, model order
    std::thread thread;
  };

  size_t model_index(const std::string& name) const;
  void worker_loop(size_t wi);
  /// True when some model can take a tick right now.
  bool any_eligible() const ALF_REQUIRES(m_);
  bool all_queues_empty() const ALF_REQUIRES(m_);
  /// Completes shed requests with the given typed error (call off-lock).
  static void deliver_failures(std::vector<serve::Request>& reqs,
                               const char* what, bool queue_full);

  Config cfg_;
  // Registration metadata, immutable once start() spawns the pool: the
  // lock-free fast path of submit()/plan() reads these (name lookup,
  // shape checks against the immutable Plan) without touching m_.
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::shared_ptr<const Plan>> plans_;
  std::vector<std::string> names_;
  std::vector<Worker> workers_;  ///< indexed state owned by each worker
  std::atomic<bool> started_{false};

  mutable Mutex m_;
  std::condition_variable work_cv_;
  // Everything below runs under m_ — enforced at compile time (clang
  // -Wthread-safety) by the annotations, not by convention. The queue
  // objects themselves are reached only through models_: GUARDED_BY
  // covers the vector, PT_GUARDED_BY the pointed-to queues, and each
  // ModelQueue method additionally REQUIRES the mutex it is passed.
  std::vector<std::unique_ptr<serve::ModelQueue>> models_
      ALF_GUARDED_BY(m_) ALF_PT_GUARDED_BY(m_);
  serve::WeightedScheduler sched_ ALF_GUARDED_BY(m_);
  bool paused_ ALF_GUARDED_BY(m_) = false;
  bool stop_ ALF_GUARDED_BY(m_) = false;
};

}  // namespace alf
