// Analytic Params / MACs / OPs accounting.
//
// The paper reports Params and OPs (= 2 * MACs: one multiply + one add) for
// conv and FC layers only — BatchNorm and bias terms are excluded, matching
// the "for Conv layers only" convention of Table II. The full-scale ImageNet
// architectures of Table III (ResNet-18, SqueezeNet, GoogLeNet) are encoded
// here exactly, so Params/OPs columns are computed at paper scale even though
// training runs at reduced scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace alf {

/// Cost of one layer.
struct LayerCost {
  std::string name;
  std::string kind;  // "conv", "fc", "conv_code", "conv_exp"
  size_t ci = 0, co = 0, k = 0, stride = 1;
  size_t out_h = 1, out_w = 1;
  unsigned long long params = 0;
  unsigned long long macs = 0;
};

/// Cost of a whole model.
struct ModelCost {
  std::string name;
  std::vector<LayerCost> layers;

  unsigned long long total_params() const;
  unsigned long long total_macs() const;
  /// OPs = 2 * MACs (multiply + accumulate), the paper's convention.
  unsigned long long total_ops() const { return 2 * total_macs(); }

  /// Subset matching a kind ("conv" includes conv_code/conv_exp).
  unsigned long long conv_params() const;
};

/// Incremental builder tracking the running feature-map shape.
class CostBuilder {
 public:
  CostBuilder(std::string model_name, size_t in_c, size_t in_h, size_t in_w);

  /// Standard convolution; updates the running shape.
  CostBuilder& conv(const std::string& name, size_t co, size_t k,
                    size_t stride, size_t pad);

  /// ALF-compressed convolution: code conv (co -> ccode filters) followed by
  /// the 1x1 expansion conv back to co channels. Updates shape as `conv`.
  CostBuilder& alf_conv(const std::string& name, size_t ccode, size_t co,
                        size_t k, size_t stride, size_t pad);

  /// Pooling layers change shape only (no params / MACs counted).
  CostBuilder& pool(size_t k, size_t stride, size_t pad = 0);
  CostBuilder& global_pool();

  /// Fully-connected layer from the current flattened shape.
  CostBuilder& fc(const std::string& name, size_t out_features);

  /// Side-channel for inception-style branches: current dims.
  size_t cur_c() const { return c_; }
  size_t cur_h() const { return h_; }
  size_t cur_w() const { return w_; }
  /// Overrides the running channel count (after manual branch accounting).
  void set_c(size_t c) { c_ = c; }

  /// Appends an externally computed layer (parallel branch, projection
  /// shortcut) without touching the running shape.
  CostBuilder& add_layer(LayerCost layer);

  ModelCost finish() const { return cost_; }

 private:
  ModelCost cost_;
  size_t c_, h_, w_;
};

/// CIFAR models (Table II scale: 32x32 input, width 16/32/64).
ModelCost cost_plain20(size_t classes = 10, size_t base_width = 16,
                       size_t in_hw = 32);
ModelCost cost_resnet20(size_t classes = 10, size_t base_width = 16,
                        size_t in_hw = 32);

/// Full-scale ImageNet architectures (Table III).
ModelCost cost_resnet18_imagenet();
ModelCost cost_squeezenet_imagenet();
ModelCost cost_googlenet_imagenet();

}  // namespace alf
