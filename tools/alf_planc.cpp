// alf_planc — the compile-once half of compile-once/deploy-many.
//
// --out DIR compiles the model zoo (float and int8 twins of each net) and
// saves one plan blob per model (engine/plan_io.hpp); deployment hosts
// then load the blobs (serve --plan-dir, ModelServer::add_models_from_dir)
// instead of paying BN folding + quantization + panel packing per process.
// --check DIR is the deploy-side gate: load + verify + smoke-run every
// blob, reporting the cold-start cost actually bought.
//
// Models are seeded exactly like bench/serve.cpp (Rng(17) + the shared
// warm_bn), so a generated resnet20_f32.plan is bit-identical in weights
// to the plan serve would compile itself at the same scale.
//
//   alf_planc --out DIR   [--quick|--full] [--batch N]
//   alf_planc --check DIR
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/exec_context.hpp"
#include "engine/plan_io.hpp"
#include "models/zoo.hpp"
#include "tune/tuner.hpp"

using namespace alf;
using namespace alf::bench;

namespace {

namespace fs = std::filesystem;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The zoo a blob directory carries: every builder serve/bench compile.
struct ZooEntry {
  const char* name;
  std::unique_ptr<Sequential> (*build)(const ModelConfig&, Rng&,
                                       const ConvMaker&);
};

int compile_dir(const std::string& dir, const Scale& s, size_t batch,
                bool tune) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "alf_planc: cannot create '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  ModelConfig mc;
  mc.base_width = s.width;
  mc.in_hw = s.hw;

  const ZooEntry zoo[] = {
      {"plain20", &build_plain20},
      {"resnet18", &build_resnet18},
      {"resnet20", &build_resnet20},
  };

  Table table("alf_planc --out " + dir);
  table.set_header({"blob", "compile[ms]", "save[ms]", "size[KiB]"});
  for (const ZooEntry& z : zoo) {
    // Fresh fixed seed per model: the blob is reproducible, and resnet20
    // matches what serve compiles from its own Rng(17) replicas.
    Rng rng(17);
    auto model = z.build(mc, rng, standard_conv_maker(mc.init, &rng));
    warm_bn(*model, mc.in_channels, s.hw, rng);
    for (const char* backend : {"", "int8"}) {
      const bool quant = *backend != '\0';
      const std::string stem =
          std::string(z.name) + (quant ? "_int8" : "_f32");
      const auto t0 = std::chrono::steady_clock::now();
      EngineOptions opts;
      opts.backend = backend;
      opts.bits = 8;
      opts.name = stem;
      // --tune: per-shape autotuned plans. The winners persist in the algo
      // cache AND in the blob itself (v2 StepRecord), so deploy hosts
      // replay the decisions with zero microbenchmark runs.
      if (tune) opts.tune = TuneMode::kCached;
      auto plan = Plan::compile(*model, batch, mc.in_channels, s.hw, s.hw,
                                opts);
      const double compile_ms = ms_since(t0);
      const std::string path = dir + "/" + stem + ".plan";
      const auto t1 = std::chrono::steady_clock::now();
      plan::save(*plan, path);
      const double save_ms = ms_since(t1);
      const double kib =
          static_cast<double>(fs::file_size(path)) / 1024.0;
      table.add_row({stem + ".plan", Table::fmt(compile_ms, 2),
                     Table::fmt(save_ms, 2), Table::fmt(kib, 1)});
    }
  }
  table.print();
  if (tune) {
    // Machine-readable for CI: a second --tune run against the same cache
    // must report measured=0 (100% hit rate).
    const tune::TuneStats st = tune::stats();
    std::printf("tune_stats measured=%llu hits=%llu misses=%llu\n",
                static_cast<unsigned long long>(st.measure_runs),
                static_cast<unsigned long long>(st.cache_hits),
                static_cast<unsigned long long>(st.cache_misses));
  }
  return 0;
}

int check_dir(const std::string& dir) {
  std::vector<fs::path> blobs;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".plan") blobs.push_back(e.path());
  }
  if (ec || blobs.empty()) {
    std::fprintf(stderr, "alf_planc: no *.plan blobs in '%s'\n",
                 dir.c_str());
    return 1;
  }
  std::sort(blobs.begin(), blobs.end());

  Rng rng(29);
  Table table("alf_planc --check " + dir);
  table.set_header({"blob", "backend", "steps", "load[ms]", "smoke"});
  double total_load_ms = 0.0;
  for (const fs::path& p : blobs) {
    const auto t0 = std::chrono::steady_clock::now();
    auto plan = plan::load(p.string());  // load runs Plan::verify() too
    const double load_ms = ms_since(t0);
    total_load_ms += load_ms;
    ExecContext ctx(plan);
    const Tensor x =
        random_input({1, plan->in_c(), plan->in_h(), plan->in_w()}, rng);
    const Tensor out = ctx.run(x);
    bool finite = out.numel() == plan->classes();
    for (size_t i = 0; i < out.numel(); ++i)
      finite = finite && std::isfinite(out.at(i));
    table.add_row({p.filename().string(), plan->backend_name(),
                   Table::fmt_int(static_cast<long long>(
                       plan->steps().size())),
                   Table::fmt(load_ms, 2), finite ? "ok" : "FAIL"});
    if (!finite) {
      table.print();
      std::fprintf(stderr, "alf_planc: smoke run of '%s' failed\n",
                   p.string().c_str());
      return 1;
    }
  }
  table.print();
  std::printf("%zu blobs, %.2fms total cold start (%.2fms/model)\n",
              blobs.size(), total_load_ms,
              total_load_ms / static_cast<double>(blobs.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale s = parse_scale(argc, argv);
  std::string out_dir, check;
  size_t batch = s.batch;
  bool tune = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tune") == 0) tune = true;
    if (i + 1 >= argc) break;
    if (std::strcmp(argv[i], "--out") == 0) out_dir = argv[i + 1];
    if (std::strcmp(argv[i], "--check") == 0) check = argv[i + 1];
    if (std::strcmp(argv[i], "--batch") == 0)
      batch = static_cast<size_t>(std::max(1L, std::atol(argv[i + 1])));
  }
  if (out_dir.empty() == check.empty()) {
    std::fprintf(stderr,
                 "usage: alf_planc --out DIR [--quick|--full] [--batch N] "
                 "[--tune]\n"
                 "       alf_planc --check DIR\n");
    return 2;
  }
  // --quick also shortens the microbenchmarks (2 reps instead of 3).
  if (tune && std::strcmp(s.name, "quick") == 0) tune::set_reps(2);
  try {
    return check.empty() ? compile_dir(out_dir, s, batch, tune)
                         : check_dir(check);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "alf_planc: %s\n", e.what());
    return 1;
  }
}
