// Compressing ResNet-20 with ALF, end to end — the paper's headline use
// case (Table II) as a single self-contained program:
//
//   * train a vanilla ResNet-20 and an ALF ResNet-20 on the same synthetic
//     CIFAR-like task;
//   * carry the measured per-layer compression onto the full-scale
//     (width-16, 32x32) cost model;
//   * report Params/OPs/accuracy side by side, plus the Eq. 2 efficiency
//     bound per layer.
//
// Usage: compress_resnet [--fast]
#include <cstdio>
#include <cstring>

#include "alf/deploy.hpp"
#include "alf/trainer.hpp"
#include "core/table.hpp"
#include "models/cost.hpp"
#include "models/zoo.hpp"

using namespace alf;

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  DataConfig task = DataConfig::cifar_like();
  task.height = task.width = 16;
  task.max_shift = 1;
  SyntheticImageDataset train_set(task, fast ? 256 : 512, 1);
  SyntheticImageDataset test_set(task, fast ? 128 : 256, 2);

  ModelConfig mc;
  mc.base_width = 8;  // training width (cost accounting uses full width 16)
  mc.in_hw = 16;

  TrainConfig tcfg;
  tcfg.epochs = fast ? 10 : 24;
  tcfg.batch_size = 32;
  tcfg.task.lr = 0.05f;
  tcfg.lr_milestones = {tcfg.epochs / 2, (3 * tcfg.epochs) / 4};
  tcfg.ae_steps_per_batch = 2;

  // ---- Vanilla reference. ----
  std::printf("training vanilla ResNet-20...\n");
  double vanilla_acc = 0.0;
  {
    Rng rng(5);
    auto model = build_resnet20(mc, rng, standard_conv_maker(mc.init, &rng));
    const auto hist = Trainer(*model, train_set, test_set, tcfg).run();
    vanilla_acc = hist.back().test_acc;
  }
  std::printf("  accuracy %.1f%%\n", 100 * vanilla_acc);

  // ---- ALF-compressed run. ----
  std::printf("training ALF ResNet-20 (two-player game)...\n");
  Rng rng(5);
  AlfConfig alf;
  alf.wae_init = Init::kIdentity;
  alf.lr_mask_mult = fast ? 200.0f : 80.0f;
  alf.threshold = 0.15f;
  alf.pr_max = 0.62f;
  alf.mask_warmup_steps = fast ? 24 : 64;
  std::vector<AlfConv*> blocks;
  auto model = build_resnet20(mc, rng, make_alf_conv_maker(alf, &rng, &blocks));
  const auto hist = Trainer(*model, train_set, test_set, tcfg).run();
  std::printf("  accuracy %.1f%%, remaining filters %.1f%%\n",
              100 * hist.back().test_acc,
              100 * hist.back().remaining_filters);

  // ---- Full-scale cost accounting. ----
  const ModelCost vanilla_cost = cost_resnet20();
  std::map<std::string, double> fracs;
  Table per_layer("per-layer result (trained at width 8; cost at width 16)");
  per_layer.set_header({"layer", "kept/Co", "kept[%]", "Ccode,max[%]"});
  for (AlfConv* b : blocks) {
    const CompressedConvDesc d = describe_block(*b);
    fracs[d.name] = b->remaining_fraction();
    per_layer.add_row(
        {d.name, std::to_string(d.ccode) + "/" + std::to_string(d.co),
         Table::fmt(100.0 * d.ccode / d.co, 1),
         Table::fmt(100.0 * d.ccode_max / d.co, 1)});
  }
  const ModelCost alf_cost =
      apply_alf_fractions(vanilla_cost, fracs, "ALF-ResNet-20");

  per_layer.print();
  std::printf("\n");

  Table summary("ResNet-20 vs ALF-ResNet-20 (full-scale accounting)");
  summary.set_header({"model", "Params", "OPs[1e6]", "Acc[%] (this task)"});
  summary.add_row({"ResNet-20",
                   Table::fmt(vanilla_cost.total_params() / 1e6, 3) + "M",
                   Table::fmt(vanilla_cost.total_ops() / 1e6, 1),
                   Table::fmt(100 * vanilla_acc, 1)});
  const double dp = 100.0 * (1.0 - static_cast<double>(alf_cost.total_params()) /
                                       vanilla_cost.total_params());
  const double dops = 100.0 * (1.0 - static_cast<double>(alf_cost.total_ops()) /
                                         vanilla_cost.total_ops());
  summary.add_row({"ALF-ResNet-20",
                   Table::fmt(alf_cost.total_params() / 1e6, 3) + "M (-" +
                       Table::fmt(dp, 0) + "%)",
                   Table::fmt(alf_cost.total_ops() / 1e6, 1) + " (-" +
                       Table::fmt(dops, 0) + "%)",
                   Table::fmt(100 * hist.back().test_acc, 1)});
  summary.print();
  return 0;
}
