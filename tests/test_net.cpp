// Network front-end tests (src/net/): wire protocol round trips, hostile
// frames (typed reject codes; connection survival per the protocol spec),
// deadline propagation from the wire budget into the ModelServer queue,
// and the SIGTERM drain identity (every accepted request answered).
// Runs under the TSan and ASan/UBSan CI legs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/check.hpp"
#include "engine/engine.hpp"
#include "grad_check.hpp"
#include "models/zoo.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "serve/model_server.hpp"

namespace alf {
namespace {

using testing::random_input;

constexpr size_t kHw = 8;
constexpr size_t kInC = 3;
constexpr size_t kClasses = 5;
constexpr size_t kBatch = 8;
constexpr size_t kImageFloats = kInC * kHw * kHw;
constexpr uint64_t kBigBudgetUs = 10ull * 1000 * 1000;  // 10 s: never expires

std::unique_ptr<Sequential> toy_model(Rng& rng) {
  auto m = std::make_unique<Sequential>("toy");
  m->emplace<Conv2d>("c1", kInC, 8, 3, 1, 1, Init::kHe, rng);
  m->emplace<BatchNorm2d>("c1_bn", 8);
  m->emplace<Activation>("c1_relu", Act::kRelu);
  m->emplace<GlobalAvgPool>("gap");
  m->emplace<Flatten>("flatten");
  m->emplace<Linear>("fc", 8, kClasses, Init::kHe, rng);
  return m;
}

/// One toy model served over a real socket, event loop on its own thread.
struct NetHarness {
  std::shared_ptr<const Plan> plan;
  ModelServer ms;
  std::unique_ptr<net::NetServer> srv;
  std::thread loop;

  explicit NetHarness(ModelServer::Config cfg = {},
                      ModelServer::ModelConfig mc = {},
                      net::NetServerConfig ncfg = {})
      : ms([&] {
          if (cfg.workers == 0) cfg.workers = 2;
          return cfg;
        }()) {
    Rng rng(71);
    auto model = toy_model(rng);
    bench::warm_bn(*model, kInC, kHw, rng, /*passes=*/3, /*batch=*/4);
    plan = Plan::compile(*model, kBatch, kInC, kHw, kHw);
    ms.add_model("toy", plan, mc);
    ms.start();
    srv = std::make_unique<net::NetServer>(ms, net::listen_on(0), ncfg);
    loop = std::thread([this] { srv->run(); });
  }

  ~NetHarness() {
    srv->request_drain();
    loop.join();
    ms.stop();
  }

  uint16_t port() const { return srv->port(); }

  net::WireClient client() const {
    net::WireClient c;
    c.connect(port());
    return c;
  }
};

/// Polls `pred` for up to `ms` milliseconds (loop-thread stats land async).
template <typename F>
bool eventually(F pred, int ms = 3000) {
  for (int i = 0; i < ms; i += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

std::vector<uint8_t> raw_frame(const net::RequestHeader& h,
                               const std::string& name,
                               const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out(sizeof(h) + name.size() + payload.size());
  std::memcpy(out.data(), &h, sizeof(h));
  std::memcpy(out.data() + sizeof(h), name.data(), name.size());
  if (!payload.empty())
    std::memcpy(out.data() + sizeof(h) + name.size(), payload.data(),
                payload.size());
  return out;
}

net::RequestHeader good_header(uint32_t rows, uint64_t seq,
                               uint64_t deadline_us = kBigBudgetUs) {
  net::RequestHeader h{};
  h.magic = net::kMagic;
  h.version = net::kWireVersion;
  h.model_len = 3;  // "toy"
  h.rows = rows;
  h.seq = seq;
  h.deadline_us = deadline_us;
  h.payload_bytes = static_cast<uint64_t>(rows) * kImageFloats * sizeof(float);
  return h;
}

TEST(NetServer, RoundTripMatchesDirectExecution) {
  NetHarness h;
  Engine ref(h.plan);
  Rng rng(72);
  const Tensor x = random_input({3, kInC, kHw, kHw}, rng);
  const Tensor want = ref.run(x);

  net::WireClient c = h.client();
  c.send("toy", /*seq=*/7, kBigBudgetUs, x.data(), 3, kImageFloats);
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_EQ(r.seq, 7u);
  EXPECT_EQ(r.rows, 3u);
  ASSERT_EQ(r.payload.size(), 3 * kClasses);
  for (size_t j = 0; j < want.numel(); ++j)
    EXPECT_EQ(want.at(j), r.payload[j]) << "elem " << j;
}

TEST(NetServer, PipelinedRequestsAllAnsweredWhateverTheOrder) {
  NetHarness h;
  Engine ref(h.plan);
  Rng rng(73);
  constexpr size_t kN = 20;
  std::map<uint64_t, Tensor> inputs;
  net::WireClient c = h.client();
  for (uint64_t seq = 0; seq < kN; ++seq) {
    const size_t rows = 1 + seq % kBatch;
    Tensor x = random_input({rows, kInC, kHw, kHw}, rng);
    c.send("toy", seq, kBigBudgetUs, x.data(),
           static_cast<uint32_t>(rows), kImageFloats);
    inputs.emplace(seq, std::move(x));
  }
  for (size_t i = 0; i < kN; ++i) {
    net::WireClient::Response r;
    ASSERT_EQ(c.recv(&r), 1);
    ASSERT_EQ(r.status, net::WireStatus::kOk);
    const auto it = inputs.find(r.seq);
    ASSERT_NE(it, inputs.end()) << "unknown or duplicate seq " << r.seq;
    const Tensor want = ref.run(it->second);
    ASSERT_EQ(r.payload.size(), want.numel());
    for (size_t j = 0; j < want.numel(); ++j)
      EXPECT_EQ(want.at(j), r.payload[j]);
    inputs.erase(it);
  }
  EXPECT_TRUE(inputs.empty());
}

// --- hostile frames -------------------------------------------------------

TEST(NetServer, TruncatedHeaderCountsTruncatedAndCloses) {
  NetHarness h;
  net::WireClient c = h.client();
  const net::RequestHeader hd = good_header(1, 1);
  c.send_raw(&hd, 10);  // 10 of 40 header bytes
  c.shutdown_write();
  net::WireClient::Response r;
  EXPECT_EQ(c.recv(&r), 0);  // no response frame; server closes
  EXPECT_TRUE(eventually([&] { return h.srv->stats().truncated == 1; }));
  EXPECT_EQ(h.srv->stats().submitted, 0u);
}

TEST(NetServer, TruncatedPayloadCountsTruncatedAndCloses) {
  NetHarness h;
  net::WireClient c = h.client();
  const net::RequestHeader hd = good_header(2, 1);
  std::vector<uint8_t> frame =
      raw_frame(hd, "toy", std::vector<uint8_t>(kImageFloats * 4, 0));
  c.send_raw(frame.data(), frame.size());  // one of two promised rows
  c.shutdown_write();
  net::WireClient::Response r;
  EXPECT_EQ(c.recv(&r), 0);
  EXPECT_TRUE(eventually([&] { return h.srv->stats().truncated == 1; }));
}

TEST(NetServer, BadMagicGetsTypedRejectThenClose) {
  NetHarness h;
  net::WireClient c = h.client();
  net::RequestHeader hd = good_header(1, 9);
  hd.magic = 0xDEADBEEFu;
  c.send_raw(&hd, sizeof(hd));
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadMagic);
  EXPECT_EQ(r.seq, 9u);
  EXPECT_EQ(r.message, "bad_magic");
  EXPECT_EQ(c.recv(&r), 0);  // framing-fatal: server closed
  EXPECT_TRUE(eventually([&] { return h.srv->stats().rejected == 1; }));
}

TEST(NetServer, BadVersionGetsTypedRejectThenClose) {
  NetHarness h;
  net::WireClient c = h.client();
  net::RequestHeader hd = good_header(1, 2);
  hd.version = 99;
  c.send_raw(&hd, sizeof(hd));
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadVersion);
  EXPECT_EQ(c.recv(&r), 0);
}

TEST(NetServer, BadModelLenGetsTypedRejectThenClose) {
  NetHarness h;
  net::WireClient c = h.client();
  net::RequestHeader hd = good_header(1, 3);
  hd.model_len = 0;
  c.send_raw(&hd, sizeof(hd));
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadHeader);
  EXPECT_EQ(c.recv(&r), 0);
}

TEST(NetServer, OversizedPayloadGetsTypedRejectThenClose) {
  net::NetServerConfig ncfg;
  ncfg.max_frame_bytes = 1024;  // refuse to buffer more than 1 KiB
  NetHarness h({}, {}, ncfg);
  net::WireClient c = h.client();
  net::RequestHeader hd = good_header(kBatch, 4);  // 6 KiB payload claim
  c.send_raw(&hd, sizeof(hd));
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kTooLarge);
  EXPECT_EQ(c.recv(&r), 0);
}

TEST(NetServer, UnknownModelRejectedButConnectionSurvives) {
  NetHarness h;
  Rng rng(74);
  const Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  net::WireClient c = h.client();
  c.send("nope", 1, kBigBudgetUs, x.data(), 1, kImageFloats);
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kUnknownModel);
  // Frame-level reject: the same connection keeps working.
  c.send("toy", 2, kBigBudgetUs, x.data(), 1, kImageFloats);
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_EQ(r.seq, 2u);
}

TEST(NetServer, ZeroAndAbsurdDeadlinesRejectedButConnectionSurvives) {
  NetHarness h;
  Rng rng(75);
  const Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  net::WireClient c = h.client();
  c.send("toy", 1, /*deadline_us=*/0, x.data(), 1, kImageFloats);
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadDeadline);
  c.send("toy", 2, net::kMaxDeadlineUs + 1, x.data(), 1, kImageFloats);
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadDeadline);
  c.send("toy", 3, kBigBudgetUs, x.data(), 1, kImageFloats);
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kOk);
}

TEST(NetServer, BadShapesRejectedButConnectionSurvives) {
  NetHarness h;
  Rng rng(76);
  net::WireClient c = h.client();
  net::WireClient::Response r;

  // rows = 0.
  net::RequestHeader hd = good_header(0, 1);
  c.send_raw(raw_frame(hd, "toy", {}).data(), sizeof(hd) + 3);
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadShape);

  // rows above the plan's batch capacity.
  const std::vector<float> big((kBatch + 1) * kImageFloats, 0.5f);
  c.send("toy", 2, kBigBudgetUs, big.data(),
         static_cast<uint32_t>(kBatch + 1), kImageFloats);
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadShape);

  // payload_bytes inconsistent with rows.
  hd = good_header(2, 3);
  hd.payload_bytes = kImageFloats * sizeof(float);  // one row's worth
  const std::vector<uint8_t> pay(kImageFloats * sizeof(float), 0);
  const auto frame = raw_frame(hd, "toy", pay);
  c.send_raw(frame.data(), frame.size());
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kBadShape);

  // And the connection still serves.
  const Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  c.send("toy", 4, kBigBudgetUs, x.data(), 1, kImageFloats);
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kOk);
}

TEST(NetServer, QueueFullSurfacesAsTypedRejectAndConnectionSurvives) {
  ModelServer::Config cfg;
  cfg.start_paused = true;  // nothing drains while we overfill
  ModelServer::ModelConfig mc;
  mc.max_queue = 1;  // admission rejects the second request
  NetHarness h(cfg, mc);
  Rng rng(77);
  const Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  net::WireClient c = h.client();
  c.send("toy", 1, kBigBudgetUs, x.data(), 1, kImageFloats);
  c.send("toy", 2, kBigBudgetUs, x.data(), 1, kImageFloats);
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kQueueFull);
  EXPECT_EQ(r.seq, 2u);
  h.ms.resume();
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kOk);
  EXPECT_EQ(r.seq, 1u);
}

// --- deadline propagation -------------------------------------------------

TEST(NetServer, WireBudgetSmallerThanQueueWaitExpiresTyped) {
  ModelServer::Config cfg;
  cfg.start_paused = true;  // pin the request in the queue past its budget
  NetHarness h(cfg);
  Rng rng(78);
  const Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  net::WireClient c = h.client();
  c.send("toy", 1, /*deadline_us=*/30'000, x.data(), 1, kImageFloats);
  EXPECT_TRUE(eventually([&] { return h.srv->stats().submitted == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  h.ms.resume();
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kDeadlineExpired);
  EXPECT_EQ(r.seq, 1u);
  EXPECT_GE(h.ms.stats("toy").expired, 1u);  // ServeStats ticked too
  EXPECT_TRUE(eventually([&] { return h.srv->stats().shed == 1; }));
}

TEST(NetServer, TimeOnWireComesOutOfTheBudget) {
  NetHarness h;
  net::WireClient c = h.client();
  // Send the header + name of a frame with a 50 ms budget, then stall
  // longer than the budget before delivering the payload.
  const net::RequestHeader hd = good_header(1, 1, /*deadline_us=*/50'000);
  const auto head = raw_frame(hd, "toy", {});
  c.send_raw(head.data(), head.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const std::vector<uint8_t> pay(kImageFloats * sizeof(float), 0);
  c.send_raw(pay.data(), pay.size());
  net::WireClient::Response r;
  ASSERT_EQ(c.recv(&r), 1);
  EXPECT_EQ(r.status, net::WireStatus::kDeadlineExpired);
  // Never reached the ModelServer: rejected at the front door.
  EXPECT_EQ(h.srv->stats().submitted, 0u);
  EXPECT_EQ(h.ms.stats("toy").requests, 0u);
}

// --- drain ----------------------------------------------------------------

TEST(NetServer, DrainAnswersEveryAcceptedRequestThenRefusesNew) {
  ModelServer::Config cfg;
  cfg.start_paused = true;  // stage a backlog, then drain through it
  NetHarness h(cfg);
  Rng rng(79);
  const Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  constexpr uint64_t kN = 6;
  net::WireClient c = h.client();
  for (uint64_t seq = 0; seq < kN; ++seq)
    c.send("toy", seq, kBigBudgetUs, x.data(), 1, kImageFloats);
  ASSERT_TRUE(eventually([&] { return h.srv->stats().submitted == kN; }));

  h.srv->request_drain();
  h.ms.resume();
  // Every accepted request is answered, then the connection closes.
  size_t got = 0;
  net::WireClient::Response r;
  while (c.recv(&r) == 1) {
    EXPECT_EQ(r.status, net::WireStatus::kOk);
    ++got;
  }
  EXPECT_EQ(got, kN);

  const net::NetStats st = h.srv->stats();
  EXPECT_EQ(st.submitted, kN);
  EXPECT_EQ(st.ok, kN);
  EXPECT_EQ(st.responses(), kN);
  EXPECT_EQ(st.submitted, st.ok + st.shed + st.orphaned);  // drain identity

  // The listen socket is gone: new connections are refused.
  net::WireClient fresh;
  EXPECT_THROW(fresh.connect(h.port()), net::NetError);
}

TEST(NetServer, ClientVanishingMidRequestCountsOrphaned) {
  ModelServer::Config cfg;
  cfg.start_paused = true;
  NetHarness h(cfg);
  Rng rng(80);
  const Tensor x = random_input({1, kInC, kHw, kHw}, rng);
  net::WireClient c = h.client();
  c.send("toy", 1, kBigBudgetUs, x.data(), 1, kImageFloats);
  ASSERT_TRUE(eventually([&] { return h.srv->stats().submitted == 1; }));
  c.hard_close();  // RST: the client vanishes before the answer exists
  // Give the loop a beat to reap the reset connection before the result
  // lands, so the completion has no connection to go to.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  h.ms.resume();
  EXPECT_TRUE(eventually([&] { return h.srv->stats().orphaned == 1; }));
  const net::NetStats st = h.srv->stats();
  EXPECT_EQ(st.submitted, st.ok + st.shed + st.orphaned);
}

TEST(NetServer, ConcurrentClientsAllServed) {
  NetHarness h;
  constexpr size_t kClients = 4, kPer = 10;
  std::vector<std::thread> threads;
  std::atomic<size_t> ok{0};
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(90 + t);
      net::WireClient c;
      c.connect(h.port());
      for (uint64_t seq = 0; seq < kPer; ++seq) {
        const size_t rows = 1 + (t + seq) % kBatch;
        const Tensor x = random_input({rows, kInC, kHw, kHw}, rng);
        c.send("toy", seq, kBigBudgetUs, x.data(),
               static_cast<uint32_t>(rows), kImageFloats);
        net::WireClient::Response r;
        if (c.recv(&r) == 1 && r.status == net::WireStatus::kOk &&
            r.seq == seq && r.rows == rows) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kClients * kPer);
  const net::NetStats st = h.srv->stats();
  EXPECT_EQ(st.connections, kClients);
  EXPECT_EQ(st.ok, kClients * kPer);
}

}  // namespace
}  // namespace alf
