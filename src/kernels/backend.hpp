// Dispatchable kernel-backend layer: the compute substrate behind every
// GEMM in the library.
//
// tensor/ops.cpp::gemm/gemm_view, the nn/ layers and the engine's two conv
// strategies all route their matrix products through one KernelBackend
// chosen at startup (or, for a compiled model, once at Plan::compile time —
// the Plan pins the backend pointer for its lifetime). A backend bundles
// the two entry points the library needs:
//
//   gemm   — f32 C = alpha * op(A) * op(B) + beta * C over row-major views
//            (the gemm_view shape: lda/ldb/ldc strides, trans flags).
//   qgemm  — real int8 GEMM: pre-quantized A/B int8 panels with symmetric
//            per-tensor scales and zero-points, int32 accumulation,
//            requantized to float on store.
//
// Three implementations ship in-tree (see the matching .cpp files):
//   scalar — the cache-blocked kernel the library grew up with; always
//            registered, the portable fallback and the equivalence oracle.
//   simd   — explicitly vectorized 4x16 inner tile over portable GCC/Clang
//            vector extensions (no intrinsics), with A-panel packing so the
//            trans_a/trans_b variants read contiguously. Compiled with
//            wider vector ISA flags when CMake's ALF_SIMD is ON; selected
//            at runtime only if the CPU supports what was compiled in.
//   int8   — the quantized datapath: qgemm is the real kernel; its f32
//            gemm forwards to the best float backend so non-lowered steps
//            (pool/add epilogues, odd layers) keep working.
//
// Selection: set_default_backend("name") wins, else the ALF_BACKEND
// environment variable, else the best available (simd when usable, scalar
// otherwise). Adding an ISA or dtype is a one-file drop-in: implement the
// two entry points and register_backend() it.
//
// Every backend must be deterministic: for a fixed backend the result is
// bit-identical for any thread count (accumulation order per C element
// depends only on the k-block grid, never on the thread partition).
//
// Every backend must also be re-entrant: a multi-tenant server runs many
// ExecContexts concurrently from different worker threads, so concurrent
// calls into the same entry point (over disjoint output buffers) must be
// race-free. Keep per-call scratch on the stack or thread_local, as the
// built-ins do — never in shared mutable statics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alf::kernels {

/// Quantization metadata of one qgemm call. The in-tree scheme is
/// symmetric (zero-points are 0); the zp fields exist so an asymmetric
/// backend drops in without an interface change. Scales are per-tensor by
/// default; the optional pointer fields refine them per output channel —
/// per-row of A (how the engine quantizes BN-folded conv weights, whose
/// rows carry very different ranges) or per-column of B (transposed linear
/// weights). Requantization happens on store, so the integer accumulation
/// never sees scales.
struct QgemmParams {
  float a_scale = 1.0f;  ///< float value of one integer step of A
  float b_scale = 1.0f;  ///< float value of one integer step of B
  int32_t a_zp = 0;      ///< zero-point of A (0 for symmetric)
  int32_t b_zp = 0;      ///< zero-point of B (0 for symmetric)
  /// Optional per-row scales of A (length M); overrides a_scale.
  const float* a_scales = nullptr;
  /// Optional per-column scales of B (length N); overrides b_scale.
  const float* b_scales = nullptr;
};

/// One kernel backend: a named pair of GEMM entry points. Instances are
/// immutable statics with program lifetime; the registry stores pointers.
struct KernelBackend {
  const char* name;

  /// True when this backend IS a quantized datapath: selecting it asks the
  /// engine to lower conv/linear steps to qgemm. Keyed here (not on the
  /// name) so an alternative quantized backend — e.g. a VNNI-class qgemm —
  /// registers under its own name and still triggers the lowering.
  bool quantized_datapath = false;

  /// f32 GEMM over row-major views — the gemm_view contract: op(A) is
  /// [M, K] with leading dimension lda (of the *stored* matrix), op(B) is
  /// [K, N] with ldb, C is an [M, N] block with ldc >= n.
  /// C = alpha * op(A) * op(B) + beta * C.
  void (*gemm)(const float* a, size_t lda, bool trans_a, const float* b,
               size_t ldb, bool trans_b, float* c, size_t ldc, size_t m,
               size_t k, size_t n, float alpha, float beta);

  /// int8 GEMM: A is an [M, K] row-major int8 panel with leading dimension
  /// lda, B a [K, N] row-major int8 panel with ldb (both pre-quantized by
  /// the caller; see quant/quantize.hpp). Accumulates
  /// sum_k (A[i,k] - a_zp) * (B[k,j] - b_zp) in int32 and stores
  /// C[i,j] = acc * a_scale * b_scale as float (overwriting C).
  void (*qgemm)(const int8_t* a, size_t lda, const int8_t* b, size_t ldb,
                float* c, size_t ldc, size_t m, size_t k, size_t n,
                const QgemmParams& p);
};

/// Registers a backend under backend->name (program-lifetime pointer).
/// Later registrations of an existing name shadow earlier ones, so a test
/// or plugin can override a built-in. Thread-safe.
void register_backend(const KernelBackend* backend);

/// Looks up a backend by name; nullptr if absent. The three built-ins
/// ("scalar", "simd", "int8") are always present, except "simd" on hosts
/// whose CPU cannot execute the instructions it was compiled with.
const KernelBackend* find_backend(const std::string& name);

/// Registered backend names, registration order.
std::vector<std::string> backend_names();

/// The process-wide default used by tensor/ops.cpp and the nn/ layers:
/// set_default_backend() override, else $ALF_BACKEND, else "simd" when
/// available, else "scalar". Resolved once and cached (cheap atomic read
/// afterwards — this sits under every small GEMM the engine issues).
const KernelBackend* default_backend();

/// Overrides the default ("" re-resolves from the environment). Throws
/// CheckError for an unknown name. Intended for tests and benchmarks.
void set_default_backend(const std::string& name);

// --- Built-in backends (defined one per .cpp file) -------------------------

/// The moved cache-blocked scalar kernel; never nullptr.
const KernelBackend* scalar_backend();

/// Packed+vectorized backend; nullptr when the host CPU cannot run the
/// instruction set it was compiled for.
const KernelBackend* simd_backend();

/// Quantized backend: real int8 qgemm; f32 gemm forwards to the best float
/// backend. Never nullptr.
const KernelBackend* int8_backend();

}  // namespace alf::kernels
