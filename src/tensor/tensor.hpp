// Dense float32 tensor.
//
// The whole library standardizes on contiguous, row-major float tensors.
// Feature maps use NCHW layout; convolution filter banks use [Co, Ci, K, K];
// the ALF autoencoder views a filter bank as the matrix [K*K*Ci, Co].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace alf {

/// Shape of a tensor; empty shape denotes an empty tensor.
using Shape = std::vector<size_t>;

/// Returns the element count of a shape (1 for rank-0 is not used; empty -> 0).
size_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form.
std::string shape_str(const Shape& shape);

/// Contiguous row-major float32 tensor with value semantics.
///
/// Copies are deep; moves are cheap. All indexing is bounds-checked in debug
/// flavor via ALF_CHECK in at(); hot loops use data() pointers.
class Tensor {
 public:
  /// Empty tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor from explicit data; data.size() must equal shape_numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Size of dimension `d`; checked.
  size_t dim(size_t d) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Bounds-checked flat element access.
  float& at(size_t i);
  float at(size_t i) const;

  /// Bounds-checked 2-D access; requires rank()==2.
  float& at(size_t r, size_t c);
  float at(size_t r, size_t c) const;

  /// Bounds-checked 4-D access; requires rank()==4.
  float& at4(size_t a, size_t b, size_t c, size_t d);
  float at4(size_t a, size_t b, size_t c, size_t d) const;

  /// Sets every element to `value`.
  void fill(float value);

  /// Returns a copy with a new shape of identical numel.
  Tensor reshaped(Shape new_shape) const;

  /// In-place reshape (no data movement); numel must match.
  void reshape_inplace(Shape new_shape);

  /// Elementwise in-place operations.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// Sum of all elements (double accumulator).
  double sum() const;

  /// Mean of all elements; requires numel() > 0.
  double mean() const;

  /// Max absolute element; 0 for empty tensors.
  float abs_max() const;

  /// L2 norm (double accumulator).
  double l2_norm() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// True if both tensors have identical shape.
bool same_shape(const Tensor& a, const Tensor& b);

}  // namespace alf
