#include "core/rng.hpp"

#include <cmath>
#include <numbers>

#include "core/check.hpp"

namespace alf {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa from the top bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

uint64_t Rng::uniform_index(uint64_t n) {
  ALF_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform. uniform() draws from [0, 1) on a 2^-53 grid, so
  // the only degenerate value is exactly 0.0 — std::log(0.0) is -inf and
  // would poison the whole downstream computation. Redraw until nonzero;
  // every other grid point (>= 2^-53) keeps log() finite.
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<size_t> Rng::permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(uniform_index(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace alf
