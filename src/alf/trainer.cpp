#include "alf/trainer.hpp"

#include <cstdio>

#include "core/check.hpp"
#include "nn/loss.hpp"

namespace alf {

Trainer::Trainer(Sequential& model, const SyntheticImageDataset& train_set,
                 const SyntheticImageDataset& test_set, TrainConfig config)
    : model_(model),
      train_set_(train_set),
      test_set_(test_set),
      config_(std::move(config)) {
  ALF_CHECK(config_.epochs > 0);
}

void bn_recalibrate(Sequential& model, const SyntheticImageDataset& ds,
                    size_t batches, size_t batch_size, uint64_t seed) {
  // Collect every BatchNorm in the model, including BN_inter layers hidden
  // inside ALF blocks (not visited as child layers).
  std::vector<BatchNorm2d*> bns;
  model.visit([&bns](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) bns.push_back(bn);
    if (auto* blk = dynamic_cast<AlfConv*>(&l)) {
      if (blk->bn_inter() != nullptr) bns.push_back(blk->bn_inter());
    }
  });
  if (bns.empty()) return;
  std::vector<float> saved;
  saved.reserve(bns.size());
  for (BatchNorm2d* bn : bns) saved.push_back(bn->momentum());

  BatchIterator it(ds, batch_size, seed, /*shuffle=*/true);
  Tensor x;
  std::vector<int> y;
  for (size_t b = 0; b < batches && it.next(x, y); ++b) {
    // momentum = 1/(b+1) turns the EMA into an exact cumulative average
    // over the calibration batches (batch 1 fully replaces stale stats).
    const float m = 1.0f / static_cast<float>(b + 1);
    for (BatchNorm2d* bn : bns) bn->set_momentum(m);
    (void)model.forward(x, /*train=*/true);
  }
  for (size_t i = 0; i < bns.size(); ++i) bns[i]->set_momentum(saved[i]);
}

double Trainer::evaluate(Sequential& model, const SyntheticImageDataset& ds,
                         size_t batch_size) {
  BatchIterator it(ds, batch_size, /*seed=*/1, /*shuffle=*/false);
  Tensor x;
  std::vector<int> y;
  size_t correct = 0, total = 0;
  while (it.next(x, y)) {
    Tensor logits = model.forward(x, /*train=*/false);
    correct += static_cast<size_t>(accuracy(logits, y) * y.size() + 0.5);
    total += y.size();
  }
  ALF_CHECK(total > 0);
  return static_cast<double>(correct) / static_cast<double>(total);
}

double Trainer::remaining_filters(const std::vector<AlfConv*>& blocks) {
  if (blocks.empty()) return 1.0;
  size_t total = 0, zero = 0;
  for (AlfConv* b : blocks) {
    total += b->out_channels();
    zero += b->zero_filters();
  }
  ALF_CHECK(total > 0);
  return 1.0 - static_cast<double>(zero) / static_cast<double>(total);
}

std::vector<EpochStats> Trainer::run() {
  std::vector<AlfConv*> blocks = collect_alf_convs(model_);
  Sgd task_opt(model_.params(), config_.task);
  StepLrSchedule schedule(config_.task.lr, config_.lr_milestones,
                          config_.lr_factor);
  BatchIterator it(train_set_, config_.batch_size, config_.seed ^ 0xBA7C4,
                   /*shuffle=*/true);

  std::vector<EpochStats> history;
  history.reserve(config_.epochs);
  Tensor x;
  std::vector<int> y;

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    task_opt.set_lr(schedule.lr_at(epoch));
    it.reset();

    double loss_sum = 0.0, lrec_sum = 0.0, nu_sum = 0.0;
    size_t correct = 0, seen = 0, batches = 0, ae_updates = 0;
    while (it.next(x, y)) {
      // --- Player 1: task optimizer. ---
      task_opt.zero_grad();
      Tensor logits = model_.forward(x, /*train=*/true);
      LossResult res = softmax_cross_entropy(logits, y);
      model_.backward(res.grad_logits);
      task_opt.step();

      loss_sum += res.loss;
      correct += res.correct;
      seen += y.size();
      ++batches;

      // --- Player 2: autoencoder optimizers (one per block). ---
      for (size_t s = 0; s < config_.ae_steps_per_batch; ++s) {
        for (AlfConv* b : blocks) {
          const AeStepStats st = b->autoencoder_step();
          lrec_sum += st.l_rec;
          nu_sum += st.nu_prune;
          ++ae_updates;
        }
      }
    }
    ALF_CHECK(batches > 0);

    EpochStats st;
    st.epoch = epoch;
    st.train_loss = loss_sum / static_cast<double>(batches);
    st.train_acc = static_cast<double>(correct) / static_cast<double>(seen);
    // The ALF code/mask moves faster than BN's running averages; refresh
    // them before eval so test accuracy reflects the current weights.
    bn_recalibrate(model_, train_set_);
    st.test_acc = evaluate(model_, test_set_);
    st.remaining_filters = remaining_filters(blocks);
    if (ae_updates > 0) {
      st.mean_l_rec = lrec_sum / static_cast<double>(ae_updates);
      st.mean_nu_prune = nu_sum / static_cast<double>(ae_updates);
    }
    history.push_back(st);

    if (config_.verbose) {
      std::printf(
          "epoch %3zu  loss %.4f  train %.3f  test %.3f  filters %.1f%%  "
          "lrec %.5f  nu %.3f\n",
          epoch, st.train_loss, st.train_acc, st.test_acc,
          100.0 * st.remaining_filters, st.mean_l_rec, st.mean_nu_prune);
      std::fflush(stdout);
    }
  }
  return history;
}

}  // namespace alf
