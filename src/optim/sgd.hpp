// Stochastic gradient descent with momentum and decoupled L2 weight decay.
//
// Used both as the task optimizer (Ltask = LCE + nu_wd * Lreg, realized by
// adding nu_wd * w to the gradient of decay-enabled params) and as the
// per-ALF-block autoencoder optimizer (no decay, plain SGD per the paper).
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"

namespace alf {

/// SGD hyper-parameters.
struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;  ///< applied only to Param::decay == true
};

/// Momentum SGD over an explicit parameter list.
class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  /// Applies one update step using the gradients currently stored in the
  /// parameters; does not zero them.
  void step();

  /// Zeroes gradients of all managed parameters.
  void zero_grad();

  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }
  const SgdConfig& config() const { return config_; }
  const std::vector<Param*>& params() const { return params_; }

 private:
  std::vector<Param*> params_;
  SgdConfig config_;
  std::vector<Tensor> velocity_;  // parallel to params_
};

/// Piecewise-constant learning-rate schedule: lr * factor^(#milestones passed).
class StepLrSchedule {
 public:
  StepLrSchedule(float base_lr, std::vector<size_t> milestones,
                 float factor = 0.1f);

  /// Learning rate for a given epoch (0-based).
  float lr_at(size_t epoch) const;

 private:
  float base_lr_;
  std::vector<size_t> milestones_;
  float factor_;
};

}  // namespace alf
